# Empty dependencies file for kosha_nfs.
# This may be replaced when dependencies are built.

#include "net/fault_plan.hpp"

#include <algorithm>

namespace kosha::net {

namespace {

bool contains(const std::vector<HostId>& group, HostId host) {
  return std::find(group.begin(), group.end(), host) != group.end();
}

}  // namespace

FaultPlan::Delivery FaultPlan::judge(HostId src, HostId dst, SimDuration now) {
  if (src == dst) return Delivery::kDeliver;
  ++judged_;
  // The drop draw is consumed unconditionally (when configured) so the Rng
  // stream position depends only on how many messages were judged, not on
  // which windows happened to be active — keeps replays aligned.
  const bool random_drop =
      config_.drop_probability > 0.0 && rng_.next_bool(config_.drop_probability);
  if (std::find(forced_drops_.begin(), forced_drops_.end(), judged_) != forced_drops_.end()) {
    return Delivery::kDrop;
  }
  if (partitioned(src, dst, now)) return Delivery::kPartitioned;
  if (in_brownout(src, now) || in_brownout(dst, now)) return Delivery::kBrownout;
  if (random_drop) return Delivery::kDrop;
  return Delivery::kDeliver;
}

SimDuration FaultPlan::draw_spike() {
  if (config_.latency_spike_probability <= 0.0) return {};
  return rng_.next_bool(config_.latency_spike_probability) ? config_.latency_spike
                                                           : SimDuration{};
}

bool FaultPlan::in_brownout(HostId host, SimDuration now) const {
  for (const Brownout& b : brownouts_) {
    if (b.host == host && b.start <= now && now < b.end) return true;
  }
  return false;
}

SimDuration FaultPlan::brownout_end(HostId host, SimDuration now) const {
  SimDuration end = now;
  for (const Brownout& b : brownouts_) {
    if (b.host == host && b.start <= now && now < b.end && b.end > end) end = b.end;
  }
  return end;
}

bool FaultPlan::partitioned(HostId x, HostId y, SimDuration now) const {
  for (const Partition& p : partitions_) {
    if (now < p.start || now >= p.end) continue;
    if ((contains(p.a, x) && contains(p.b, y)) || (contains(p.a, y) && contains(p.b, x))) {
      return true;
    }
  }
  return false;
}

}  // namespace kosha::net

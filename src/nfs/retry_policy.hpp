#pragma once

// Client-side RPC retry policy.
//
// Transient message loss (fault-plan drops, brownouts, partitions) is
// retried with exponential backoff charged on the virtual clock; a host
// that is *permanently* down (SimNetwork liveness flag) or absent from the
// server directory fails in one timeout without retries, so the binary
// up/down experiments keep their seed cost model. Retransmissions reuse
// the original xid — the server's duplicate-request cache relies on that
// to make retried non-idempotent ops safe (NFSv3 practice).

#include "common/sim_clock.hpp"

namespace kosha::nfs {

struct RetryPolicy {
  /// Total attempts per RPC (first try included). 1 = never retry.
  unsigned max_attempts = 4;
  /// Backoff before the first retransmission; doubles per attempt.
  SimDuration initial_backoff = SimDuration::millis(10);
  double multiplier = 2.0;
  /// Backoff ceiling.
  SimDuration max_backoff = SimDuration::millis(320);
  /// Uniform jitter added per backoff, as a fraction of the backoff
  /// (decorrelates clients that lost the same message).
  double jitter = 0.25;

  [[nodiscard]] SimDuration backoff_for(unsigned attempt) const {
    SimDuration d = initial_backoff;
    for (unsigned i = 0; i < attempt && d < max_backoff; ++i) {
      d = SimDuration::nanos(static_cast<std::int64_t>(static_cast<double>(d.ns) * multiplier));
    }
    return d < max_backoff ? d : max_backoff;
  }
};

}  // namespace kosha::nfs

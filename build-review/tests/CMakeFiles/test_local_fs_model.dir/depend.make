# Empty dependencies file for test_local_fs_model.
# This may be replaced when dependencies are built.

#pragma once

// Storage backend seam — the abstract operation vocabulary of a node's
// /kosha_store partition.
//
// The paper treats each node's contributed partition as an opaque local
// disk (§5); this interface makes that opacity real in the code. Every
// layer above the store (nfs_server, replication, audit, repair, cluster)
// speaks StorageBackend; the concrete representation is chosen per cluster
// via StorageConfig and constructed through make_backend():
//
//   kFlat  LocalFs      — inode table with inline file data (the original
//                         representation; the deterministic baseline).
//   kCas   CasFs        — same namespace, but file content is chunked into
//                         SHA-1-addressed blocks held in a refcounted
//                         store with a per-file Merkle-style manifest:
//                         cross-file/cross-replica dedup plus hash-verified
//                         reads (corruption surfaces as FsStatus::kCorrupt).
//
// The block-level hooks (file_blocks/has_block/verify_subtree) default to
// "no blocks" so flat stores answer them trivially; replication uses them
// to transfer only missing blocks between CAS stores and to probe replica
// integrity during anti-entropy sweeps.

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace kosha::fs {

/// errno-like status codes (subset of the NFSv3 error vocabulary).
enum class FsStatus {
  kOk,
  kNoEnt,     // no such file or directory
  kExist,     // entry already exists
  kNotDir,    // component is not a directory
  kIsDir,     // operation needs a non-directory
  kNotEmpty,  // directory not empty
  kNoSpace,   // capacity exceeded
  kInval,     // invalid argument (bad name, bad offset)
  kStale,     // inode no longer exists (stale handle)
  kCorrupt,   // stored block failed hash verification (CAS backends)
};

[[nodiscard]] const char* to_string(FsStatus status);

/// Inode number; 0 is invalid, 1 is the root directory.
using InodeId = std::uint64_t;
inline constexpr InodeId kInvalidInode = 0;

enum class FileType : std::uint8_t { kFile, kDirectory, kSymlink };

/// Subset of NFS fattr3.
struct Attr {
  FileType type = FileType::kFile;
  std::uint32_t mode = 0644;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t size = 0;
  std::uint64_t mtime = 0;  // logical modification counter
  InodeId inode = kInvalidInode;
  std::uint64_t generation = 0;
};

struct DirEntry {
  std::string name;
  InodeId inode = kInvalidInode;
  FileType type = FileType::kFile;
};

struct FsConfig {
  /// Contributed partition size in bytes.
  std::uint64_t capacity_bytes = 35ull << 30;
  /// Fraction of capacity above which new allocations are refused — the
  /// "pre-specified utilization" that triggers Kosha redirection (§3.3).
  double utilization_threshold = 1.0;
};

template <typename T>
using FsResult = Result<T, FsStatus>;

/// Which concrete store representation backs a node's partition.
enum class BackendKind : std::uint8_t {
  kFlat,  // inode table with inline file data (LocalFs)
  kCas,   // content-addressed chunked blocks with dedup (CasFs)
};

[[nodiscard]] const char* to_string(BackendKind kind);
/// Parse "flat"/"cas"; returns false (leaving *out untouched) otherwise.
[[nodiscard]] bool parse_backend(std::string_view text, BackendKind* out);

/// Per-cluster storage selection (KoshaConfig::storage). chunk_bytes and
/// verify_reads only matter for kCas.
struct StorageConfig {
  BackendKind backend = BackendKind::kFlat;
  /// CAS chunk size: file content is split into blocks of this many bytes
  /// (last block short). Smaller chunks dedup better and cost more hashes.
  std::uint64_t chunk_bytes = 64 * 1024;
  /// Re-hash every block a read touches and fail the read with kCorrupt on
  /// mismatch (integrity by hash, the Merkle-DAG property).
  bool verify_reads = true;
  FsConfig fs;
};

/// SHA-1 content address of one block.
using BlockId = std::array<std::uint8_t, 20>;

/// One entry of a file's manifest, as exposed to replication: the block's
/// address and its length in bytes.
struct BlockRef {
  BlockId id{};
  std::uint32_t bytes = 0;
};

/// Dedup/integrity observability (all zero for flat stores).
struct StorageStats {
  /// Logical bytes minus physical block bytes: what dedup saved.
  std::uint64_t dedup_bytes = 0;
  /// Distinct blocks currently referenced.
  std::uint64_t blocks_live = 0;
  /// Reads that failed hash verification since construction/purge.
  std::uint64_t verify_failures = 0;
};

/// Abstract per-node store. Capacity accounting is LOGICAL everywhere —
/// used_bytes() sums file sizes as written, not deduplicated block bytes —
/// so placement, redirection and the audit invariant
/// (subtree_bytes(root) == used_bytes) behave identically on every
/// backend; dedup savings are reported separately via stats().
class StorageBackend {
 public:
  StorageBackend() = default;
  virtual ~StorageBackend() = default;
  StorageBackend(const StorageBackend&) = delete;
  StorageBackend& operator=(const StorageBackend&) = delete;

  [[nodiscard]] virtual BackendKind kind() const = 0;
  [[nodiscard]] virtual InodeId root() const = 0;

  // --- name-space operations (all take a directory inode + name) ---
  [[nodiscard]] virtual FsResult<InodeId> lookup(InodeId dir, std::string_view name) const = 0;
  [[nodiscard]] virtual FsResult<InodeId> create(InodeId dir, std::string_view name,
                                                 std::uint32_t mode = 0644,
                                                 std::uint32_t uid = 0,
                                                 std::uint32_t gid = 0) = 0;
  [[nodiscard]] virtual FsResult<InodeId> mkdir(InodeId dir, std::string_view name,
                                                std::uint32_t mode = 0755,
                                                std::uint32_t uid = 0,
                                                std::uint32_t gid = 0) = 0;
  [[nodiscard]] virtual FsResult<InodeId> symlink(InodeId dir, std::string_view name,
                                                  std::string_view target) = 0;
  [[nodiscard]] virtual FsResult<Unit> remove(InodeId dir, std::string_view name) = 0;
  [[nodiscard]] virtual FsResult<Unit> rmdir(InodeId dir, std::string_view name) = 0;
  [[nodiscard]] virtual FsResult<Unit> rename(InodeId from_dir, std::string_view from_name,
                                              InodeId to_dir, std::string_view to_name) = 0;
  [[nodiscard]] virtual FsResult<std::vector<DirEntry>> readdir(InodeId dir) const = 0;

  // --- inode operations ---
  [[nodiscard]] virtual FsResult<Attr> getattr(InodeId inode) const = 0;
  [[nodiscard]] virtual FsResult<Unit> set_mode(InodeId inode, std::uint32_t mode) = 0;
  [[nodiscard]] virtual FsResult<Unit> truncate(InodeId inode, std::uint64_t size) = 0;
  [[nodiscard]] virtual FsResult<std::uint32_t> write(InodeId inode, std::uint64_t offset,
                                                      std::string_view data) = 0;
  [[nodiscard]] virtual FsResult<std::string> read(InodeId inode, std::uint64_t offset,
                                                   std::uint32_t count) const = 0;
  [[nodiscard]] virtual FsResult<std::string> readlink(InodeId inode) const = 0;

  // --- path conveniences (absolute paths within this store) ---
  [[nodiscard]] virtual FsResult<InodeId> resolve(std::string_view path) const = 0;
  /// mkdir -p; returns the deepest directory's inode.
  [[nodiscard]] virtual FsResult<InodeId> mkdir_p(std::string_view path) = 0;
  /// Remove an entry and, for directories, its whole subtree.
  [[nodiscard]] virtual FsResult<Unit> remove_recursive(InodeId dir, std::string_view name) = 0;

  // --- capacity (logical bytes; see class comment) ---
  [[nodiscard]] virtual std::uint64_t capacity_bytes() const = 0;
  [[nodiscard]] virtual std::uint64_t used_bytes() const = 0;
  [[nodiscard]] virtual double utilization() const = 0;
  /// True when storing `extra` more bytes would cross the threshold.
  [[nodiscard]] virtual bool would_exceed(std::uint64_t extra) const = 0;

  /// Total bytes of all files under an inode (the inode's own data for
  /// files, recursive for directories).
  [[nodiscard]] virtual std::uint64_t subtree_bytes(InodeId inode) const = 0;
  /// Number of regular files under an inode (recursive).
  [[nodiscard]] virtual std::uint64_t subtree_file_count(InodeId inode) const = 0;

  /// Drop everything (paper §4.3: a revived node purges all Kosha data).
  virtual void purge() = 0;

  [[nodiscard]] virtual std::size_t live_inode_count() const = 0;

  // --- block-level hooks (inert on flat stores) ---
  /// Dedup/integrity gauges; all zero unless the backend dedups.
  [[nodiscard]] virtual StorageStats stats() const { return {}; }
  /// The file's manifest, or empty when the backend has no block notion
  /// (also empty for an empty or non-file inode).
  [[nodiscard]] virtual std::vector<BlockRef> file_blocks(InodeId inode) const {
    (void)inode;
    return {};
  }
  /// Whether this store already holds the block (so a replica transfer can
  /// skip its bytes).
  [[nodiscard]] virtual bool has_block(const BlockId& id) const {
    (void)id;
    return false;
  }
  /// Re-hash every block of every file under `path` and return how many
  /// chunks fail verification (0 on flat stores and on resolve failure).
  /// Anti-entropy treats a non-zero answer like a missing replica.
  [[nodiscard]] virtual std::uint64_t verify_subtree(std::string_view path) const {
    (void)path;
    return 0;
  }
  /// Test hook: flip a byte in the stored block holding chunk
  /// `chunk_index` of `inode`. Returns false when there is no such block
  /// (flat store, bad inode, out-of-range chunk).
  virtual bool corrupt_file_block(InodeId inode, std::size_t chunk_index) {
    (void)inode;
    (void)chunk_index;
    return false;
  }
};

/// Construct the configured backend. The FsConfig inside `config` sizes
/// the partition exactly as the old LocalFs(FsConfig) constructor did.
[[nodiscard]] std::unique_ptr<StorageBackend> make_backend(const StorageConfig& config);

}  // namespace kosha::fs

#include "sim/overload_sim.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "sim/concurrency_driver.hpp"

namespace kosha::sim {

namespace {

/// Deterministic hot-file content: depends only on (file, size).
std::string hot_content(std::size_t file, std::size_t bytes) {
  const std::string stamp = "h" + std::to_string(file) + ":";
  std::string out;
  out.reserve(bytes);
  while (out.size() < bytes) {
    out.append(stamp, 0, std::min(stamp.size(), bytes - out.size()));
  }
  return out;
}

/// One closed-loop reader. Base agents run for the whole measurement;
/// spike agents only inside the flash-crowd window.
struct Agent {
  std::unique_ptr<KoshaMount> mount;
  Rng rng{0};
  SimDuration think{};
  SimDuration local{};  // next op issues at this virtual time
  SimDuration stop{};   // no new ops at or past this time
};

/// Small deterministic think-time jitter in [0, think/8] so same-think
/// agents do not phase-lock into one synchronized arrival train.
SimDuration think_jitter(Rng& rng, SimDuration think) {
  if (think.ns <= 0) return {};
  return SimDuration::nanos(static_cast<std::int64_t>(
      rng.next_below(static_cast<std::uint64_t>(think.ns / 8) + 1)));
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

FlashCrowdResult simulate_flash_crowd(const FlashCrowdConfig& config) {
  FlashCrowdResult result;

  ClusterConfig cluster_config;
  cluster_config.nodes = config.nodes;
  cluster_config.seed = config.seed;
  cluster_config.event_driven = true;
  cluster_config.kosha.replicas = config.replicas;
  cluster_config.kosha.retry = config.retry;
  if (config.controlled) {
    cluster_config.kosha.overload = config.overload;
    cluster_config.kosha.overload.enabled = true;
  }
  KoshaCluster cluster(cluster_config);
  SimClock& clock = cluster.clock();
  const std::vector<net::HostId> hosts = cluster.live_hosts();
  if (hosts.empty() || config.hot_files == 0 || config.window.ns <= 0) return result;

  // --- Setup (before the measurement clock starts) -----------------------
  // One hot anchor: every file under /hot lives on the directory's owner
  // node, so the whole reader population converges on one service queue.
  std::vector<std::string> paths(config.hot_files);
  std::vector<std::string> contents(config.hot_files);
  {
    KoshaMount setup(&cluster.daemon(hosts[0]));
    (void)setup.mkdir_p("/hot");
    for (std::size_t f = 0; f < config.hot_files; ++f) {
      paths[f] = "/hot/h" + std::to_string(f);
      contents[f] = hot_content(f, config.file_bytes);
      // A fresh, unloaded cluster cannot reject these, but a half-seeded
      // tree must not be measured as if it were whole.
      if (!setup.write_file(paths[f], contents[f]).ok()) return result;
    }
  }

  const ZipfSampler popularity(config.hot_files, config.zipf_s > 0 ? config.zipf_s : 1e-9);
  const Rng root(config.seed ^ 0xf1a5'c07dull);

  const std::size_t total_agents = config.base_clients + config.spike_clients;
  std::vector<Agent> agents(total_agents);
  for (std::size_t i = 0; i < total_agents; ++i) {
    Agent& a = agents[i];
    a.mount = std::make_unique<KoshaMount>(&cluster.daemon(hosts[i % hosts.size()]));
    a.rng = root.fork(i);
    // Warm each agent's virtual-handle cache so the measured steady state
    // is one read RPC per op, not resolve + read.
    for (std::size_t f = 0; f < config.hot_files; ++f) {
      // kosha-lint: allow(ignore-status): warm-up resolve; only the handle-cache side effect matters, the payload is discarded
      (void)a.mount->read_file(paths[f]);
    }
  }

  const SimDuration t0 = clock.now();
  const SimDuration t_end = t0 + config.duration;
  for (std::size_t i = 0; i < total_agents; ++i) {
    Agent& a = agents[i];
    const bool spike = i >= config.base_clients;
    a.think = spike ? config.spike_think : config.base_think;
    a.local = spike ? t0 + config.spike_start : t0;
    a.stop = spike ? t0 + config.spike_end : t_end;
    // Stagger the first op inside one think period (spike agents inside a
    // much smaller slice — a flash crowd arrives nearly at once).
    a.local += SimDuration::nanos(static_cast<std::int64_t>(
        a.rng.next_below(static_cast<std::uint64_t>(a.think.ns) + 1)));
  }

  const std::size_t num_windows =
      static_cast<std::size_t>((config.duration.ns + config.window.ns - 1) / config.window.ns);
  result.windows.resize(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    result.windows[w].start = SimDuration::nanos(static_cast<std::int64_t>(w) * config.window.ns);
  }

  // --- Main loop: conservative per-agent timeline interleaving -----------
  // Always advance the agent with the lowest local time (lowest index on
  // ties), hopping the cluster clock between timelines, exactly like
  // run_multi_client_workload — the hot node's queue sees arrivals in
  // timestamp order and the schedule is a pure function of the seed.
  for (;;) {
    std::size_t pick = agents.size();
    for (std::size_t i = 0; i < agents.size(); ++i) {
      if (agents[i].local >= agents[i].stop) continue;
      if (pick == agents.size() || agents[i].local < agents[pick].local) pick = i;
    }
    if (pick == agents.size()) break;

    Agent& a = agents[pick];
    clock.set_now(a.local);
    const std::size_t file = popularity.sample(a.rng);
    const auto read = a.mount->read_file(paths[file]);
    const bool ok = read.ok() && read.value() == contents[file];

    const SimDuration done = clock.now();
    if (done >= t0 && done < t_end) {
      const auto w = static_cast<std::size_t>((done - t0).ns / config.window.ns);
      FlashCrowdWindow& window = result.windows[w];
      if (ok) {
        ++window.ok;
        ++result.ops_ok;
      } else {
        ++window.failed;
        ++result.ops_failed;
      }
    }
    a.local = done + a.think + think_jitter(a.rng, a.think);
  }

  // Let abandoned request chains still queued at the hot node settle, so
  // the counters below include every piece of dead work the run created.
  (void)cluster.loop().run_until_idle();

  // --- Counters ----------------------------------------------------------
  const net::NetStats& net = cluster.network().stats();
  result.timeouts = net.timeouts;
  result.retries = net.retries;
  result.admission_rejected = net.admission_rejected;
  result.deadline_rejected = net.deadline_rejected;
  result.expired = net.expired;
  result.shed_low_priority = net.shed_low_priority;
  result.inflight_peak = net.inflight_peak;
  for (const net::HostId host : cluster.live_hosts()) {
    const auto client = cluster.daemon(host).nfs_client().overload_stats();
    result.overloaded_replies += client.overloaded_replies;
    result.budget_exhausted += client.budget_exhausted;
    result.breaker_opens += client.breaker_opens;
    result.breaker_fast_fails += client.breaker_fast_fails;
    result.server_deadline_rejects += cluster.server(host).deadline_rejects();
    result.ladder_deadline_aborts += cluster.daemon(host).stats().ladder_deadline_aborts;
  }

  // --- Goodput phases ----------------------------------------------------
  const auto ws = static_cast<std::size_t>(config.spike_start.ns / config.window.ns);
  const auto we = static_cast<std::size_t>(config.spike_end.ns / config.window.ns);
  const auto mean_ok = [&](std::size_t lo, std::size_t hi) {
    if (hi <= lo) return 0.0;
    double sum = 0;
    for (std::size_t w = lo; w < hi; ++w) sum += static_cast<double>(result.windows[w].ok);
    return sum / static_cast<double>(hi - lo);
  };
  result.baseline_ops = mean_ok(std::min<std::size_t>(1, ws), ws);
  result.spike_ops = mean_ok(ws, std::min(we, num_windows));
  const std::size_t post = std::min(we, num_windows);
  const std::size_t tail = std::min<std::size_t>(4, num_windows - post);
  result.post_ops = mean_ok(num_windows - tail, num_windows);
  result.post_over_baseline =
      result.baseline_ops > 0 ? result.post_ops / result.baseline_ops : 0.0;

  // Recovery: longest suffix of post-spike windows all at >= 95% baseline.
  const double threshold = 0.95 * result.baseline_ops;
  std::size_t first_good = num_windows;
  for (std::size_t w = num_windows; w > post; --w) {
    if (static_cast<double>(result.windows[w - 1].ok) < threshold) break;
    first_good = w - 1;
  }
  result.recovered = first_good < num_windows && result.baseline_ops > 0;
  if (result.recovered) {
    const SimDuration good_end =
        SimDuration::nanos(static_cast<std::int64_t>(first_good + 1) * config.window.ns);
    result.recovery_after_spike = good_end - config.spike_end;
    if (result.recovery_after_spike.ns < 0) result.recovery_after_spike = {};
  } else {
    result.recovery_after_spike = config.duration - config.spike_end;
  }

  // --- Deterministic serialization & digest ------------------------------
  std::string csv = "arm," + std::string(config.controlled ? "controlled" : "uncontrolled") +
                    ",seed," + std::to_string(config.seed) + "\n";
  for (const FlashCrowdWindow& w : result.windows) {
    csv += "W," + std::to_string(w.start.ns / 1'000'000) + "," + std::to_string(w.ok) + "," +
           std::to_string(w.failed) + "\n";
  }
  csv += "G,baseline," + fmt(result.baseline_ops) + ",spike," + fmt(result.spike_ops) +
         ",post," + fmt(result.post_ops) + ",ratio," + fmt(result.post_over_baseline) + "\n";
  csv += "R," + std::string(result.recovered ? "1" : "0") + "," +
         std::to_string(result.recovery_after_spike.ns / 1'000'000) + "\n";
  csv += "C,timeouts," + std::to_string(result.timeouts) + ",retries," +
         std::to_string(result.retries) + ",admission_rejected," +
         std::to_string(result.admission_rejected) + ",deadline_rejected," +
         std::to_string(result.deadline_rejected) + ",expired," + std::to_string(result.expired) +
         ",shed_low_priority," + std::to_string(result.shed_low_priority) + "\n";
  csv += "C,overloaded_replies," + std::to_string(result.overloaded_replies) +
         ",budget_exhausted," + std::to_string(result.budget_exhausted) + ",breaker_opens," +
         std::to_string(result.breaker_opens) + ",breaker_fast_fails," +
         std::to_string(result.breaker_fast_fails) + ",server_deadline_rejects," +
         std::to_string(result.server_deadline_rejects) + ",ladder_deadline_aborts," +
         std::to_string(result.ladder_deadline_aborts) + "\n";
  result.timeline_csv = std::move(csv);

  const auto digest = Sha1::hash(result.timeline_csv);
  static constexpr char kHex[] = "0123456789abcdef";
  result.digest.reserve(digest.size() * 2);
  for (const std::uint8_t byte : digest) {
    result.digest += kHex[byte >> 4];
    result.digest += kHex[byte & 0xF];
  }
  return result;
}

}  // namespace kosha::sim

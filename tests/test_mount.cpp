// KoshaMount (path-level API) tests, including large chunked I/O.

#include <gtest/gtest.h>

#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "trace/mab.hpp"

namespace kosha {
namespace {

struct Fixture {
  KoshaCluster cluster;
  KoshaMount mount;

  Fixture()
      : cluster([] {
          ClusterConfig config;
          config.nodes = 6;
          config.kosha.distribution_level = 2;
          config.kosha.replicas = 1;
          config.seed = 17;
          return config;
        }()),
        mount(&cluster.daemon(0)) {}
};

TEST(Mount, MkdirPIdempotent) {
  Fixture fx;
  const auto first = fx.mount.mkdir_p("/a/b/c");
  ASSERT_TRUE(first.ok());
  const auto second = fx.mount.mkdir_p("/a/b/c");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

TEST(Mount, MkdirPRejectsFileComponent) {
  Fixture fx;
  ASSERT_TRUE(fx.mount.write_file("/file", "x").ok());
  EXPECT_EQ(fx.mount.mkdir_p("/file/sub").error(), nfs::NfsStat::kNotDir);
}

TEST(Mount, WriteFileSizes) {
  Fixture fx;
  ASSERT_TRUE(fx.mount.mkdir_p("/sizes").ok());
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, std::size_t{64 * 1024}, std::size_t{1 << 20}}) {
    const std::string path = "/sizes/f" + std::to_string(size);
    const std::string content = trace::mab_content(size, size);
    ASSERT_TRUE(fx.mount.write_file(path, content).ok()) << size;
    const auto read = fx.mount.read_file(path);
    ASSERT_TRUE(read.ok()) << size;
    EXPECT_EQ(read.value(), content) << size;
    EXPECT_EQ(fx.mount.stat(path)->size, size);
  }
}

TEST(Mount, OverwriteShrinks) {
  Fixture fx;
  ASSERT_TRUE(fx.mount.write_file("/f", std::string(1000, 'a')).ok());
  ASSERT_TRUE(fx.mount.write_file("/f", "tiny").ok());
  EXPECT_EQ(fx.mount.read_file("/f").value(), "tiny");
}

TEST(Mount, WriteFileRejectsDirectoryTarget) {
  Fixture fx;
  ASSERT_TRUE(fx.mount.mkdir_p("/d").ok());
  EXPECT_EQ(fx.mount.write_file("/d", "x").error(), nfs::NfsStat::kIsDir);
}

TEST(Mount, ExistsAndStat) {
  Fixture fx;
  EXPECT_FALSE(fx.mount.exists("/nope"));
  ASSERT_TRUE(fx.mount.write_file("/yes", "1").ok());
  EXPECT_TRUE(fx.mount.exists("/yes"));
  EXPECT_EQ(fx.mount.stat("/yes")->type, fs::FileType::kFile);
  EXPECT_EQ(fx.mount.stat("/").value().type, fs::FileType::kDirectory);
}

TEST(Mount, RemoveAllDeepTree) {
  Fixture fx;
  ASSERT_TRUE(fx.mount.mkdir_p("/tree/a/b").ok());
  ASSERT_TRUE(fx.mount.mkdir_p("/tree/c").ok());
  ASSERT_TRUE(fx.mount.write_file("/tree/a/b/f1", "1").ok());
  ASSERT_TRUE(fx.mount.write_file("/tree/c/f2", "2").ok());
  ASSERT_TRUE(fx.mount.write_file("/tree/f3", "3").ok());
  ASSERT_TRUE(fx.mount.remove_all("/tree").ok());
  EXPECT_FALSE(fx.mount.exists("/tree"));
  // Everything physically reclaimed (no live user bytes anywhere).
  std::uint64_t total = 0;
  for (const auto host : fx.cluster.live_hosts()) {
    total += fx.cluster.server(host).store().used_bytes();
  }
  EXPECT_EQ(total, 0u);
}

TEST(Mount, RootOperationsRejected) {
  Fixture fx;
  EXPECT_EQ(fx.mount.remove("/").error(), nfs::NfsStat::kInval);
  EXPECT_EQ(fx.mount.rmdir("/").error(), nfs::NfsStat::kInval);
}

TEST(Mount, CacheSurvivesRemoveRecreate) {
  Fixture fx;
  ASSERT_TRUE(fx.mount.write_file("/cycle", "one").ok());
  ASSERT_TRUE(fx.mount.remove("/cycle").ok());
  EXPECT_FALSE(fx.mount.exists("/cycle"));
  ASSERT_TRUE(fx.mount.write_file("/cycle", "two").ok());
  EXPECT_EQ(fx.mount.read_file("/cycle").value(), "two");
}

TEST(Mount, ListReflectsChanges) {
  Fixture fx;
  ASSERT_TRUE(fx.mount.mkdir_p("/ls").ok());
  EXPECT_TRUE(fx.mount.list("/ls")->empty());
  ASSERT_TRUE(fx.mount.write_file("/ls/a", "x").ok());
  ASSERT_TRUE(fx.mount.mkdir_p("/ls/b").ok());
  EXPECT_EQ(fx.mount.list("/ls")->size(), 2u);
  ASSERT_TRUE(fx.mount.remove("/ls/a").ok());
  EXPECT_EQ(fx.mount.list("/ls")->size(), 1u);
}

}  // namespace
}  // namespace kosha

#pragma once

// Ground-truth DHT ring.
//
// A sorted view of all live node ids. Gives O(log N) exact answers for
// "who owns this key" and "who are the K closest neighbors" — the
// invariants the full message-passing overlay must agree with. The
// figure-level simulators (Figures 5-7 are simulations in the paper too)
// use the Ring directly; the overlay tests use it as the oracle.

#include <cstdint>
#include <vector>

#include "pastry/types.hpp"

namespace kosha::pastry {

class Ring {
 public:
  /// Opaque per-node tag supplied at insert (e.g. a host index).
  using Tag = std::uint32_t;

  Ring() = default;

  /// Bulk-build from (id, tag) pairs.
  explicit Ring(std::vector<std::pair<NodeId, Tag>> nodes);

  void insert(NodeId id, Tag tag);
  void remove(NodeId id);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] bool contains(NodeId id) const;

  /// Node numerically closest to `key` (ties -> smaller id). Ring must be
  /// non-empty.
  [[nodiscard]] NodeId owner(Key key) const;
  [[nodiscard]] Tag owner_tag(Key key) const;

  /// The `k` nodes (other than `id` itself) closest to `id` in the ring —
  /// the leaf-set neighbors replica placement uses. Fewer if the ring is
  /// small.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id, std::size_t k) const;

  /// Tag registered for an id.
  [[nodiscard]] Tag tag_of(NodeId id) const;

  /// All ids in ascending order.
  [[nodiscard]] const std::vector<std::pair<NodeId, Tag>>& sorted() const { return nodes_; }

 private:
  [[nodiscard]] std::size_t lower_bound_index(NodeId id) const;

  std::vector<std::pair<NodeId, Tag>> nodes_;  // sorted by id
};

}  // namespace kosha::pastry

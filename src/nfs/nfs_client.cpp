#include "nfs/nfs_client.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <string>

#include "common/metrics.hpp"
#include "common/profile.hpp"
#include "common/tracing.hpp"
#include "nfs/wire.hpp"

namespace kosha::nfs {

NfsClient::NfsClient(net::SimNetwork* network, const ServerDirectory* directory,
                     net::HostId self, RetryPolicy retry, std::uint64_t jitter_seed,
                     std::uint64_t boot)
    : network_(network),
      directory_(directory),
      self_(self),
      boot_(boot),
      retry_(retry),
      jitter_rng_(jitter_seed ^ (0x9E3779B97F4A7C15ull * (self + 1))) {
  assert(network_ != nullptr && directory_ != nullptr);
}

NfsClient::SendOutcome NfsClient::send_request(net::HostId server, std::size_t request_bytes,
                                               NfsServer** out) {
  NfsServer* s = directory_->find(server);
  if (s == nullptr || !network_->is_up(server)) return SendOutcome::kHardDown;
  if (!network_->try_message(self_, server, request_bytes)) return SendOutcome::kLost;
  *out = s;
  return SendOutcome::kSent;
}

bool NfsClient::deliver_reply(net::HostId server, std::size_t reply_bytes) {
  return network_->try_message(server, self_, reply_bytes);
}

SimDuration NfsClient::backoff_duration(unsigned attempt) {
  return retry_.jittered_backoff(attempt, jitter_rng_);
}

void NfsClient::backoff(unsigned attempt) { network_->clock().advance(backoff_duration(attempt)); }

NfsClient::ProcMetrics& NfsClient::proc_metrics(NfsProc proc) {
  ProcMetrics& pm = proc_metrics_[proc_slot(proc)];
  if (!pm.resolved) {
    MetricsRegistry* metrics = network_->metrics();
    const std::string base = std::string("nfs.client.") + proc_name(proc);
    pm.latency = metrics->histogram(base + ".latency_us");
    pm.ok = metrics->counter(base + ".ok");
    pm.error = metrics->counter(base + ".error");
    pm.resolved = true;
  }
  return pm;
}

RpcContext NfsClient::rpc_ctx(std::uint32_t xid) const {
  RpcContext ctx{self_, xid, boot_};
  if (const Tracer* tracer = network_->tracer(); tracer != nullptr && tracer->enabled()) {
    ctx.trace = tracer->current();
  }
  // Zero unless koshad stamped an op budget: deadline propagation costs a
  // copy of an always-present field, nothing else.
  ctx.deadline = op_deadline_;
  return ctx;
}

CircuitBreaker* NfsClient::breaker_for(net::HostId server) {
  if (!overload_.enabled || overload_.breaker_threshold == 0) return nullptr;
  auto it = breakers_.find(server);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(server,
                      CircuitBreaker(overload_.breaker_threshold, overload_.breaker_cooldown))
             .first;
  }
  return &it->second;
}

OverloadClientStats NfsClient::overload_stats() const {
  OverloadClientStats s;
  if (budget_.has_value()) {
    s.budget_exhausted = budget_->exhausted();
    s.budget_tokens = budget_->tokens();
  }
  s.overloaded_replies = overloaded_replies_;
  for (const auto& [host, breaker] : breakers_) {
    (void)host;
    s.breaker_opens += breaker.opens();
    s.breaker_fast_fails += breaker.fast_fails();
    if (breaker.state() != CircuitBreaker::State::kClosed) ++s.breakers_open;
  }
  return s;
}

template <typename ReplyT, typename Invoke, typename ReplyBytes>
NfsResult<ReplyT> NfsClient::transact(NfsProc proc, net::HostId server,
                                      std::size_t request_bytes, Invoke&& invoke,
                                      ReplyBytes&& reply_bytes) {
  SpanScope span(network_->tracer(), rpc_span_name(proc), self_);
  if (span.active()) span.tag("server", std::to_string(server));
  const SimDuration start = network_->clock().now();
  NfsResult<ReplyT> reply = transact_impl<ReplyT>(
      proc_slot(proc), server, request_bytes, std::forward<Invoke>(invoke),
      std::forward<ReplyBytes>(reply_bytes));
  if (network_->metrics() != nullptr) {
    ProcMetrics& pm = proc_metrics(proc);
    pm.latency->record((network_->clock().now() - start).to_micros());
    (reply.ok() ? pm.ok : pm.error)->inc();
  }
  if (SimProfiler* prof = network_->profiler(); prof != nullptr) prof->note_op();
  if (!reply.ok()) span.status(to_string(reply.error()));
  return reply;
}

template <typename ReplyT, typename Invoke, typename ReplyBytes>
NfsResult<ReplyT> NfsClient::transact_impl(std::size_t proc_slot, net::HostId server,
                                           std::size_t request_bytes, Invoke&& invoke,
                                           ReplyBytes&& reply_bytes) {
  // Event-driven execution: run the RPC through the completion-based core
  // and drive the loop until our completion fires — the thin synchronous
  // wrapper of the async split. A paused clock falls back to the serial
  // path, where charges are already no-ops (background work must not
  // occupy real service-queue time).
  if (EventLoop* loop = network_->loop();
      loop != nullptr && !network_->clock().paused()) {
    std::optional<NfsResult<ReplyT>> final_reply;
    call_async<ReplyT>(proc_slot, server, request_bytes, std::forward<Invoke>(invoke),
                       std::forward<ReplyBytes>(reply_bytes),
                       [&final_reply](NfsResult<ReplyT> r) { final_reply = std::move(r); });
    loop->run_until([&final_reply] { return final_reply.has_value(); });
    assert(final_reply.has_value());
    if (!final_reply.has_value()) return NfsStat::kTimedOut;
    return *std::move(final_reply);
  }

  if (overload_.enabled) {
    if (budget_.has_value()) budget_->earn();
    // Serial callers are the legacy execution model or background work
    // under a paused clock; the latter is low-priority and sheds at the
    // tighter admission bound so anti-entropy yields to client RPCs.
    const bool low_priority = network_->clock().paused();
    const SimDuration now = network_->clock().now();
    // Background work runs between foreground ops, when the last stamped
    // op deadline is stale — it sheds on the low-priority bound only.
    const SimDuration deadline = low_priority ? SimDuration{} : op_deadline_;
    if (network_->admit(server, now, deadline, low_priority) !=
        net::SimNetwork::Admit::kAdmit) {
      return NfsStat::kOverloaded;
    }
    if (CircuitBreaker* b = breaker_for(server); b != nullptr && !b->allow(now)) {
      return NfsStat::kOverloaded;
    }
  }

  const unsigned attempts = std::max(1u, retry_.max_attempts);
  // Whether any request was delivered (and thus the procedure executed at
  // least once). Decides the give-up status: kTimedOut when the op may
  // have taken effect, kUnreachable when it certainly did not.
  bool executed = false;
  for (unsigned attempt = 0;; ++attempt) {
    NfsServer* s = nullptr;
    switch (send_request(server, request_bytes, &s)) {
      case SendOutcome::kHardDown:
        // Permanent death is detected in one timeout and never retried:
        // failover (not retransmission) is the right reaction.
        network_->charge_timeout();
        network_->note_proc_timeout(proc_slot);
        if (CircuitBreaker* b = breaker_for(server)) b->on_failure(network_->clock().now());
        return executed ? NfsStat::kTimedOut : NfsStat::kUnreachable;
      case SendOutcome::kLost:
        network_->charge_timeout();
        network_->note_proc_timeout(proc_slot);
        if (CircuitBreaker* b = breaker_for(server)) b->on_failure(network_->clock().now());
        break;
      case SendOutcome::kSent: {
        executed = true;
        network_->note_proc_message(proc_slot, request_bytes);
        NfsResult<ReplyT> reply = invoke(*s);
        const std::size_t rb = reply_bytes(reply);
        if (deliver_reply(server, rb)) {
          network_->note_proc_message(proc_slot, rb);
          if (overload_.enabled) {
            if (!reply.ok() && reply.error() == NfsStat::kOverloaded) {
              ++overloaded_replies_;
              if (CircuitBreaker* b = breaker_for(server)) {
                b->on_failure(network_->clock().now());
              }
            } else if (CircuitBreaker* b = breaker_for(server)) {
              b->on_success();
            }
          }
          return reply;
        }
        // Reply lost: the op may have executed — the retransmission below
        // reuses the xid so the server's DRC returns this very reply.
        network_->charge_timeout();
        network_->note_proc_timeout(proc_slot);
        if (CircuitBreaker* b = breaker_for(server)) b->on_failure(network_->clock().now());
        break;
      }
    }
    if (attempt + 1 >= attempts) {
      return executed ? NfsStat::kTimedOut : NfsStat::kUnreachable;
    }
    if (overload_.enabled && budget_.has_value() && !budget_->spend()) {
      // Out of retry tokens: shed our own retransmission.
      return executed ? NfsStat::kTimedOut : NfsStat::kOverloaded;
    }
    network_->count_retry(proc_slot);
    backoff(attempt);
  }
}

NfsResult<FileHandle> NfsClient::mount(net::HostId server) {
  return transact<FileHandle>(
      NfsProc::kMount, server, encode_mount_call(next_xid()).size(),
      [](NfsServer& s) -> NfsResult<FileHandle> { return s.root_handle(); },
      [](const NfsResult<FileHandle>&) { return kReplyBytes; });
}

NfsResult<HandleReply> NfsClient::lookup(FileHandle dir, std::string_view name) {
  return transact<HandleReply>(
      NfsProc::kLookup, dir.server,
      encode_diropargs_call(next_xid(), NfsProc::kLookup, dir, name).size(),
      [&](NfsServer& s) { return s.lookup(dir, name); },
      [](const NfsResult<HandleReply>&) { return kReplyBytes; });
}

NfsResult<fs::Attr> NfsClient::getattr(FileHandle obj) {
  return transact<fs::Attr>(
      NfsProc::kGetattr, obj.server,
      encode_handle_call(next_xid(), NfsProc::kGetattr, obj).size(),
      [&](NfsServer& s) { return s.getattr(obj); },
      [](const NfsResult<fs::Attr>&) { return kReplyBytes; });
}

NfsResult<fs::Attr> NfsClient::set_mode(FileHandle obj, std::uint32_t mode) {
  // SETATTR is non-idempotent on the wire: the retransmission carries the
  // same xid so the server's DRC answers an already-executed request.
  const std::uint32_t xid = next_xid();
  return transact<fs::Attr>(
      NfsProc::kSetattr, obj.server,
      encode_setattr_call(xid, obj, true, mode, false, 0).size(),
      [&](NfsServer& s) { return s.set_mode(obj, mode, rpc_ctx(xid)); },
      [](const NfsResult<fs::Attr>&) { return kReplyBytes; });
}

NfsResult<fs::Attr> NfsClient::truncate(FileHandle obj, std::uint64_t size) {
  const std::uint32_t xid = next_xid();
  return transact<fs::Attr>(
      NfsProc::kSetattr, obj.server,
      encode_setattr_call(xid, obj, false, 0, true, size).size(),
      [&](NfsServer& s) { return s.truncate(obj, size, rpc_ctx(xid)); },
      [](const NfsResult<fs::Attr>&) { return kReplyBytes; });
}

NfsResult<ReadReply> NfsClient::read(FileHandle file, std::uint64_t offset,
                                     std::uint32_t count) {
  return transact<ReadReply>(
      NfsProc::kRead, file.server,
      encode_read_call(next_xid(), file, offset, count).size(),
      [&](NfsServer& s) { return s.read(file, offset, count); },
      [](const NfsResult<ReadReply>& r) {
        return kReplyBytes + (r.ok() ? r.value().data.size() : 0);
      });
}

NfsResult<std::uint32_t> NfsClient::write(FileHandle file, std::uint64_t offset,
                                          std::string_view data) {
  // WRITE is idempotent at a fixed offset, so no DRC context is needed:
  // re-execution stores the same bytes.
  return transact<std::uint32_t>(
      NfsProc::kWrite, file.server,
      encode_write_call(next_xid(), file, offset, data).size(),
      [&](NfsServer& s) { return s.write(file, offset, data); },
      [](const NfsResult<std::uint32_t>&) { return kReplyBytes; });
}

NfsResult<HandleReply> NfsClient::create(FileHandle dir, std::string_view name,
                                         std::uint32_t mode, std::uint32_t uid,
                                         std::uint32_t gid) {
  const std::uint32_t xid = next_xid();
  return transact<HandleReply>(
      NfsProc::kCreate, dir.server,
      encode_create_call(xid, NfsProc::kCreate, dir, name, mode, uid).size(),
      [&](NfsServer& s) { return s.create(dir, name, mode, uid, gid, rpc_ctx(xid)); },
      [](const NfsResult<HandleReply>&) { return kReplyBytes; });
}

NfsResult<HandleReply> NfsClient::mkdir(FileHandle dir, std::string_view name,
                                        std::uint32_t mode, std::uint32_t uid,
                                        std::uint32_t gid) {
  const std::uint32_t xid = next_xid();
  return transact<HandleReply>(
      NfsProc::kMkdir, dir.server,
      encode_create_call(xid, NfsProc::kMkdir, dir, name, mode, uid).size(),
      [&](NfsServer& s) { return s.mkdir(dir, name, mode, uid, gid, rpc_ctx(xid)); },
      [](const NfsResult<HandleReply>&) { return kReplyBytes; });
}

NfsResult<HandleReply> NfsClient::symlink(FileHandle dir, std::string_view name,
                                          std::string_view target) {
  const std::uint32_t xid = next_xid();
  return transact<HandleReply>(
      NfsProc::kSymlink, dir.server,
      encode_symlink_call(xid, dir, name, target).size(),
      [&](NfsServer& s) { return s.symlink(dir, name, target, rpc_ctx(xid)); },
      [](const NfsResult<HandleReply>&) { return kReplyBytes; });
}

NfsResult<std::string> NfsClient::readlink(FileHandle link) {
  return transact<std::string>(
      NfsProc::kReadlink, link.server,
      encode_handle_call(next_xid(), NfsProc::kReadlink, link).size(),
      [&](NfsServer& s) { return s.readlink(link); },
      [](const NfsResult<std::string>& r) {
        return kReplyBytes + (r.ok() ? r.value().size() : 0);
      });
}

NfsResult<Unit> NfsClient::remove(FileHandle dir, std::string_view name) {
  const std::uint32_t xid = next_xid();
  return transact<Unit>(
      NfsProc::kRemove, dir.server,
      encode_diropargs_call(xid, NfsProc::kRemove, dir, name).size(),
      [&](NfsServer& s) { return s.remove(dir, name, rpc_ctx(xid)); },
      [](const NfsResult<Unit>&) { return kReplyBytes; });
}

NfsResult<Unit> NfsClient::rmdir(FileHandle dir, std::string_view name) {
  const std::uint32_t xid = next_xid();
  return transact<Unit>(
      NfsProc::kRmdir, dir.server,
      encode_diropargs_call(xid, NfsProc::kRmdir, dir, name).size(),
      [&](NfsServer& s) { return s.rmdir(dir, name, rpc_ctx(xid)); },
      [](const NfsResult<Unit>&) { return kReplyBytes; });
}

NfsResult<Unit> NfsClient::rename(FileHandle from_dir, std::string_view from_name,
                                  FileHandle to_dir, std::string_view to_name) {
  if (from_dir.server != to_dir.server) return NfsStat::kInval;
  const std::uint32_t xid = next_xid();
  return transact<Unit>(
      NfsProc::kRename, from_dir.server,
      encode_rename_call(xid, from_dir, from_name, to_dir, to_name).size(),
      [&](NfsServer& s) {
        return s.rename(from_dir, from_name, to_dir, to_name, rpc_ctx(xid));
      },
      [](const NfsResult<Unit>&) { return kReplyBytes; });
}

NfsResult<ReaddirReply> NfsClient::readdir(FileHandle dir) {
  return transact<ReaddirReply>(
      NfsProc::kReaddir, dir.server,
      encode_handle_call(next_xid(), NfsProc::kReaddir, dir).size(),
      [&](NfsServer& s) { return s.readdir(dir); },
      [](const NfsResult<ReaddirReply>& r) {
        return kReplyBytes + (r.ok() ? r.value().entries.size() * 40 : 0);
      });
}

NfsResult<FsstatReply> NfsClient::fsstat(net::HostId server) {
  return transact<FsstatReply>(
      NfsProc::kFsstat, server,
      encode_handle_call(next_xid(), NfsProc::kFsstat, FileHandle{server, 1, 1}).size(),
      [&](NfsServer& s) { return s.fsstat(); },
      [](const NfsResult<FsstatReply>&) { return kReplyBytes; });
}

}  // namespace kosha::nfs

file(REMOVE_RECURSE
  "CMakeFiles/test_sims.dir/test_sims.cpp.o"
  "CMakeFiles/test_sims.dir/test_sims.cpp.o.d"
  "test_sims"
  "test_sims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/kosha_stat.dir/kosha_stat.cpp.o"
  "CMakeFiles/kosha_stat.dir/kosha_stat.cpp.o.d"
  "kosha_stat"
  "kosha_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

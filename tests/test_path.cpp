// Path utility unit + property tests.

#include <gtest/gtest.h>

#include "common/path.hpp"
#include "common/rng.hpp"

namespace kosha {
namespace {

TEST(Path, SplitBasics) {
  EXPECT_EQ(split_path("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_path("/").empty());
  EXPECT_TRUE(split_path("").empty());
  EXPECT_EQ(split_path("//a///b/"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_path("relative/x"), (std::vector<std::string>{"relative", "x"}));
}

TEST(Path, JoinBasics) {
  EXPECT_EQ(join_path({}), "/");
  EXPECT_EQ(join_path({"a"}), "/a");
  EXPECT_EQ(join_path({"a", "b"}), "/a/b");
}

TEST(Path, ChildAppends) {
  EXPECT_EQ(path_child("/", "a"), "/a");
  EXPECT_EQ(path_child("/a", "b"), "/a/b");
  EXPECT_EQ(path_child("/a/", "b"), "/a/b");
}

TEST(Path, ParentWalksUp) {
  EXPECT_EQ(path_parent("/a/b"), "/a");
  EXPECT_EQ(path_parent("/a"), "/");
  EXPECT_EQ(path_parent("/"), "/");
}

TEST(Path, Basename) {
  EXPECT_EQ(path_basename("/a/b"), "b");
  EXPECT_EQ(path_basename("/a"), "a");
  EXPECT_EQ(path_basename("/"), "");
}

TEST(Path, NormalizeCollapsesAndResolvesDot) {
  EXPECT_EQ(normalize_path("//a/./b//"), "/a/b");
  EXPECT_EQ(normalize_path("/."), "/");
  EXPECT_EQ(normalize_path(""), "/");
}

TEST(Path, NormalizeRejectsDotDot) {
  EXPECT_EQ(normalize_path("/a/../b"), "");
}

TEST(Path, Depth) {
  EXPECT_EQ(path_depth("/"), 0u);
  EXPECT_EQ(path_depth("/a"), 1u);
  EXPECT_EQ(path_depth("/a/b/c"), 3u);
}

TEST(Path, IsWithin) {
  EXPECT_TRUE(path_is_within("/a/b/c", "/a"));
  EXPECT_TRUE(path_is_within("/a", "/a"));
  EXPECT_TRUE(path_is_within("/a", "/"));
  EXPECT_FALSE(path_is_within("/ab", "/a"));
  EXPECT_FALSE(path_is_within("/a", "/a/b"));
}

class PathProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathProperty, SplitJoinRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::string> parts;
    const std::size_t depth = rng.next_below(6);
    for (std::size_t i = 0; i < depth; ++i) parts.push_back(rng.next_name(1 + rng.next_below(10)));
    const std::string joined = join_path(parts);
    EXPECT_EQ(split_path(joined), parts);
    EXPECT_EQ(path_depth(joined), parts.size());
    EXPECT_EQ(normalize_path(joined), joined);
  }
}

TEST_P(PathProperty, ParentChildInverse) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::string> parts;
    const std::size_t depth = 1 + rng.next_below(5);
    for (std::size_t i = 0; i < depth; ++i) parts.push_back(rng.next_name(4));
    const std::string path = join_path(parts);
    EXPECT_EQ(path_child(path_parent(path), path_basename(path)), path);
    EXPECT_TRUE(path_is_within(path, path_parent(path)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathProperty, ::testing::Values(11, 12, 13));

}  // namespace
}  // namespace kosha

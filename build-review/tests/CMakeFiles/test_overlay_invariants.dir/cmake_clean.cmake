file(REMOVE_RECURSE
  "CMakeFiles/test_overlay_invariants.dir/test_overlay_invariants.cpp.o"
  "CMakeFiles/test_overlay_invariants.dir/test_overlay_invariants.cpp.o.d"
  "test_overlay_invariants"
  "test_overlay_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

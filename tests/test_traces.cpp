// Workload/trace generator tests: determinism and aggregate statistics.

#include <gtest/gtest.h>

#include <set>

#include "common/path.hpp"
#include "trace/availability.hpp"
#include "trace/fs_trace.hpp"
#include "trace/mab.hpp"

namespace kosha::trace {
namespace {

// --- MAB ---------------------------------------------------------------------

TEST(Mab, Deterministic) {
  MabConfig config;
  const auto a = generate_mab(config);
  const auto b = generate_mab(config);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].path, b.files[i].path);
    EXPECT_EQ(a.files[i].size, b.files[i].size);
  }
}

TEST(Mab, MatchesConfiguredTotals) {
  MabConfig config;
  const auto workload = generate_mab(config);
  EXPECT_EQ(workload.files.size(), config.files);
  EXPECT_EQ(workload.directories.size(), config.total_dirs);
  // Within 20% of the configured 51 MB (clamping shifts the total a bit).
  EXPECT_NEAR(static_cast<double>(workload.total_bytes),
              static_cast<double>(config.total_bytes),
              0.2 * static_cast<double>(config.total_bytes));
}

TEST(Mab, RespectsDepthCapAndParentOrder) {
  MabConfig config;
  config.max_depth = 4;
  const auto workload = generate_mab(config);
  std::set<std::string> seen{"/"};
  for (const auto& dir : workload.directories) {
    EXPECT_LE(path_depth(dir), 4u);
    EXPECT_TRUE(seen.count(path_parent(dir))) << dir << " created before its parent";
    seen.insert(dir);
  }
  for (const auto& file : workload.files) {
    EXPECT_TRUE(seen.count(path_parent(file.path))) << file.path;
  }
}

TEST(Mab, PrefixIsolatesRuns) {
  MabConfig a;
  a.prefix = "r0";
  MabConfig b;
  b.prefix = "r1";
  EXPECT_NE(generate_mab(a).directories[0], generate_mab(b).directories[0]);
}

TEST(Mab, CopyPathMapsTopLevel) {
  EXPECT_EQ(mab_copy_path("/r0_d1/s2/f.c"), "/r0_d1c/s2/f.c");
  EXPECT_EQ(mab_copy_path("/top"), "/topc");
}

TEST(Mab, ContentSizeAndDeterminism) {
  EXPECT_EQ(mab_content(1000, 5).size(), 1000u);
  EXPECT_EQ(mab_content(1000, 5), mab_content(1000, 5));
  EXPECT_NE(mab_content(1000, 5), mab_content(1000, 6));
  EXPECT_TRUE(mab_content(0, 1).empty());
}

// --- departmental FS trace -----------------------------------------------------

TEST(FsTrace, MatchesPaperAggregates) {
  FsTraceConfig config;  // defaults: 130 users, 221k files, 17.9 GB
  const auto trace = generate_fs_trace(config);
  EXPECT_EQ(trace.files.size(), 221'000u);
  std::set<std::string> users;
  for (const auto& file : trace.files) users.insert(split_path(file.path)[0]);
  EXPECT_EQ(users.size(), 130u);
  EXPECT_NEAR(static_cast<double>(trace.total_bytes),
              static_cast<double>(config.total_bytes),
              0.15 * static_cast<double>(config.total_bytes));
}

TEST(FsTrace, Deterministic) {
  FsTraceConfig config;
  config.files = 5000;
  config.users = 20;
  const auto a = generate_fs_trace(config);
  const auto b = generate_fs_trace(config);
  ASSERT_EQ(a.files.size(), b.files.size());
  EXPECT_EQ(a.files[1234].path, b.files[1234].path);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
}

TEST(FsTrace, DirectoriesParentFirstAndDepthCapped) {
  FsTraceConfig config;
  config.files = 20000;
  config.users = 25;
  config.max_depth = 6;
  const auto trace = generate_fs_trace(config);
  std::set<std::string> seen{"/"};
  for (const auto& dir : trace.directories) {
    EXPECT_LE(path_depth(dir), 6u);
    EXPECT_TRUE(seen.count(path_parent(dir))) << dir;
    seen.insert(dir);
  }
}

TEST(FsTrace, SkewedAcrossUsers) {
  FsTraceConfig config;
  config.files = 50000;
  config.users = 50;
  const auto trace = generate_fs_trace(config);
  std::map<std::string, std::size_t> per_user;
  for (const auto& file : trace.files) ++per_user[split_path(file.path)[0]];
  // Zipf: the busiest user has many times the files of the median user.
  std::vector<std::size_t> counts;
  for (const auto& [user, count] : per_user) counts.push_back(count);
  std::sort(counts.begin(), counts.end());
  EXPECT_GT(counts.back(), 3 * counts[counts.size() / 2]);
}

TEST(FsTrace, AnchorNameFollowsDistributionLevel) {
  EXPECT_EQ(file_anchor_name("/u1/a/b/f", 1), "u1");
  EXPECT_EQ(file_anchor_name("/u1/a/b/f", 2), "a");
  EXPECT_EQ(file_anchor_name("/u1/a/b/f", 3), "b");
  EXPECT_EQ(file_anchor_name("/u1/a/b/f", 9), "b");  // clamps at dir depth
  EXPECT_EQ(file_anchor_name("/rootfile", 3), "/");
}

// --- availability trace --------------------------------------------------------

TEST(AvailabilityTrace, ShapeAndSpike) {
  AvailabilityConfig config;
  config.machines = 500;
  const auto trace = generate_availability_trace(config);
  EXPECT_EQ(trace.up.size(), 840u);
  EXPECT_EQ(trace.up[0].size(), 500u);
  // Background availability is high...
  EXPECT_GT(trace.mean_availability(), 0.95);
  // ...but the spike hour stands out.
  const double spike_down = static_cast<double>(trace.down_count(config.spike_hour)) / 500.0;
  EXPECT_GT(spike_down, 0.08);
  const double normal_down = static_cast<double>(trace.down_count(100)) / 500.0;
  EXPECT_LT(normal_down, 0.05);
  EXPECT_GT(spike_down, 2 * normal_down);
}

TEST(AvailabilityTrace, SpikeRecovers) {
  AvailabilityConfig config;
  config.machines = 500;
  const auto trace = generate_availability_trace(config);
  const auto after = trace.down_count(config.spike_hour + config.spike_duration_hours + 1);
  EXPECT_LT(after, trace.down_count(config.spike_hour) / 2);
}

TEST(AvailabilityTrace, Deterministic) {
  AvailabilityConfig config;
  config.machines = 100;
  const auto a = generate_availability_trace(config);
  const auto b = generate_availability_trace(config);
  EXPECT_EQ(a.up, b.up);
}

}  // namespace
}  // namespace kosha::trace

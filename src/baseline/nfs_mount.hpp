#pragma once

// Unmodified-NFS baseline: one client host cross-mounting one central NFS
// server over the same simulated network and cost model Kosha uses. This
// is the comparison point for Tables 1 and 2 (paper §6.1: "The NFS
// configuration consists of two nodes with one running as a client, and
// the other running as a server").

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nfs/nfs_client.hpp"

namespace kosha::baseline {

/// Path-level wrapper over a plain NFS client/server pair. Mirrors the
/// KoshaMount interface so the same benchmark driver runs both. Handles
/// are cached per path, as the kernel's NFS client would.
class NfsMount {
 public:
  NfsMount(net::SimNetwork* network, const nfs::ServerDirectory* directory,
           net::HostId client, net::HostId server);

  [[nodiscard]] nfs::NfsResult<nfs::FileHandle> resolve(std::string_view path);
  [[nodiscard]] nfs::NfsResult<nfs::FileHandle> mkdir_p(std::string_view path);
  [[nodiscard]] nfs::NfsResult<Unit> write_file(std::string_view path,
                                                std::string_view content);
  [[nodiscard]] nfs::NfsResult<std::string> read_file(std::string_view path);
  [[nodiscard]] nfs::NfsResult<fs::Attr> stat(std::string_view path);
  [[nodiscard]] bool exists(std::string_view path);
  [[nodiscard]] nfs::NfsResult<std::vector<fs::DirEntry>> list(std::string_view path);
  [[nodiscard]] nfs::NfsResult<Unit> remove(std::string_view path);
  [[nodiscard]] nfs::NfsResult<Unit> rmdir(std::string_view path);
  [[nodiscard]] nfs::NfsResult<Unit> remove_all(std::string_view path);
  [[nodiscard]] nfs::NfsResult<Unit> rename(std::string_view from, std::string_view to);

 private:
  [[nodiscard]] nfs::NfsResult<nfs::FileHandle> lookup_cached(const std::string& path);
  void invalidate(const std::string& path);

  nfs::NfsClient client_;
  net::HostId server_;
  std::unordered_map<std::string, nfs::FileHandle> handle_cache_;
};

}  // namespace kosha::baseline

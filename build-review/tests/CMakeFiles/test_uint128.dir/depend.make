# Empty dependencies file for test_uint128.
# This may be replaced when dependencies are built.

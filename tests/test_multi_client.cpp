// Multi-client semantics: every host's koshad sees one shared namespace
// (paper §4.1.1: "every user sees the same instance of a file").

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

TEST(MultiClient, WritesVisibleEverywhereImmediately) {
  ClusterConfig config;
  config.nodes = 6;
  config.kosha.distribution_level = 1;
  config.seed = 51;
  KoshaCluster cluster(config);
  std::vector<std::unique_ptr<KoshaMount>> mounts;
  for (const auto host : cluster.live_hosts()) {
    mounts.push_back(std::make_unique<KoshaMount>(&cluster.daemon(host)));
  }

  ASSERT_TRUE(mounts[0]->mkdir_p("/shared").ok());
  for (std::size_t writer = 0; writer < mounts.size(); ++writer) {
    const std::string path = "/shared/from" + std::to_string(writer);
    ASSERT_TRUE(mounts[writer]->write_file(path, "w" + std::to_string(writer)).ok());
    for (std::size_t reader = 0; reader < mounts.size(); ++reader) {
      const auto content = mounts[reader]->read_file(path);
      ASSERT_TRUE(content.ok()) << writer << "->" << reader;
      EXPECT_EQ(content.value(), "w" + std::to_string(writer));
    }
  }
}

TEST(MultiClient, LastWriterWins) {
  ClusterConfig config;
  config.nodes = 4;
  config.seed = 52;
  KoshaCluster cluster(config);
  KoshaMount a(&cluster.daemon(0));
  KoshaMount b(&cluster.daemon(1));
  ASSERT_TRUE(a.write_file("/f", "from-a").ok());
  ASSERT_TRUE(b.write_file("/f", "from-b").ok());
  EXPECT_EQ(a.read_file("/f").value(), "from-b");
  EXPECT_EQ(b.read_file("/f").value(), "from-b");
}

TEST(MultiClient, RemoveByOneClientStalesOthersHandles) {
  ClusterConfig config;
  config.nodes = 4;
  config.seed = 53;
  KoshaCluster cluster(config);
  KoshaMount a(&cluster.daemon(0));
  KoshaMount b(&cluster.daemon(1));
  ASSERT_TRUE(a.write_file("/gone", "x").ok());
  const auto vh = b.resolve("/gone");
  ASSERT_TRUE(vh.ok());
  ASSERT_TRUE(a.remove("/gone").ok());
  // b's cached handle must not resurrect the file.
  const auto read = cluster.daemon(1).read(*vh, 0, 10);
  EXPECT_FALSE(read.ok());
  EXPECT_FALSE(b.exists("/gone"));
}

TEST(MultiClient, InterleavedDirectoryCreation) {
  ClusterConfig config;
  config.nodes = 6;
  config.kosha.distribution_level = 2;
  config.seed = 54;
  KoshaCluster cluster(config);
  Rng rng(99);
  std::vector<std::unique_ptr<KoshaMount>> mounts;
  for (const auto host : cluster.live_hosts()) {
    mounts.push_back(std::make_unique<KoshaMount>(&cluster.daemon(host)));
  }
  // Two clients race to create the same tree; exactly one mkdir wins each
  // directory, and both end up with identical views.
  for (int round = 0; round < 20; ++round) {
    const std::string dir = "/race/d" + std::to_string(rng.next_below(5));
    auto& first = *mounts[rng.next_below(mounts.size())];
    auto& second = *mounts[rng.next_below(mounts.size())];
    (void)first.mkdir_p(dir);
    (void)second.mkdir_p(dir);  // idempotent from the namespace's view
    EXPECT_TRUE(first.exists(dir));
    EXPECT_TRUE(second.exists(dir));
  }
  const auto l0 = mounts[0]->list("/race");
  const auto l1 = mounts.back()->list("/race");
  ASSERT_TRUE(l0.ok());
  ASSERT_TRUE(l1.ok());
  EXPECT_EQ(l0->size(), l1->size());
}

TEST(MultiClient, CreateConflictSurfacesAsExist) {
  ClusterConfig config;
  config.nodes = 4;
  config.seed = 55;
  KoshaCluster cluster(config);
  auto& da = cluster.daemon(0);
  auto& db = cluster.daemon(1);
  const auto ra = da.root();
  const auto rb = db.root();
  ASSERT_TRUE(da.create(*ra, "same").ok());
  EXPECT_EQ(db.create(*rb, "same").error(), nfs::NfsStat::kExist);
}

}  // namespace
}  // namespace kosha

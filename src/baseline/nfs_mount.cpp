#include "baseline/nfs_mount.hpp"

#include "common/path.hpp"

namespace kosha::baseline {

NfsMount::NfsMount(net::SimNetwork* network, const nfs::ServerDirectory* directory,
                   net::HostId client, net::HostId server)
    : client_(network, directory, client), server_(server) {}

void NfsMount::invalidate(const std::string& path) {
  // kosha-lint: allow(unordered-iter): erase-sweep — survivors independent of visit order
  for (auto it = handle_cache_.begin(); it != handle_cache_.end();) {
    if (path_is_within(it->first, path)) {
      it = handle_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

nfs::NfsResult<nfs::FileHandle> NfsMount::lookup_cached(const std::string& path) {
  if (const auto it = handle_cache_.find(path); it != handle_cache_.end()) return it->second;
  if (path == "/") {
    const auto root = client_.mount(server_);
    if (!root.ok()) return root;
    handle_cache_["/"] = root.value();
    return root;
  }
  const auto parent = lookup_cached(path_parent(path));
  if (!parent.ok()) return parent;
  const auto looked = client_.lookup(*parent, path_basename(path));
  if (!looked.ok()) return looked.error();
  handle_cache_[path] = looked->handle;
  return looked->handle;
}

nfs::NfsResult<nfs::FileHandle> NfsMount::resolve(std::string_view path) {
  return lookup_cached(normalize_path(path));
}

nfs::NfsResult<nfs::FileHandle> NfsMount::mkdir_p(std::string_view path) {
  auto current = lookup_cached("/");
  if (!current.ok()) return current;
  std::string prefix;
  for (const auto& component : split_path(path)) {
    prefix += '/';
    prefix += component;
    auto next = client_.lookup(*current, component);
    if (!next.ok()) {
      if (next.error() != nfs::NfsStat::kNoEnt) return next.error();
      next = client_.mkdir(*current, component);
      if (!next.ok()) return next.error();
    }
    handle_cache_[prefix] = next->handle;
    current = next->handle;
  }
  return current;
}

nfs::NfsResult<Unit> NfsMount::write_file(std::string_view path, std::string_view content) {
  const std::string normalized = normalize_path(path);
  const auto parent = lookup_cached(path_parent(normalized));
  if (!parent.ok()) return parent.error();
  const std::string name = path_basename(normalized);

  auto file = client_.lookup(*parent, name);
  nfs::FileHandle handle;
  if (file.ok()) {
    handle = file->handle;
    if (const auto truncated = client_.truncate(handle, 0); !truncated.ok()) {
      return truncated.error();
    }
  } else if (file.error() == nfs::NfsStat::kNoEnt) {
    const auto created = client_.create(*parent, name);
    if (!created.ok()) return created.error();
    handle = created->handle;
  } else {
    return file.error();
  }
  handle_cache_[normalized] = handle;
  const auto written = client_.write(handle, 0, content);
  if (!written.ok()) return written.error();
  return Unit{};
}

nfs::NfsResult<std::string> NfsMount::read_file(std::string_view path) {
  const auto handle = resolve(path);
  if (!handle.ok()) return handle.error();
  std::string out;
  constexpr std::uint32_t kChunk = 64 * 1024;
  for (;;) {
    const auto chunk = client_.read(*handle, out.size(), kChunk);
    if (!chunk.ok()) return chunk.error();
    out += chunk->data;
    if (chunk->eof || chunk->data.empty()) break;
  }
  return out;
}

nfs::NfsResult<fs::Attr> NfsMount::stat(std::string_view path) {
  const auto handle = resolve(path);
  if (!handle.ok()) return handle.error();
  auto attr = client_.getattr(*handle);
  if (!attr.ok() && attr.error() == nfs::NfsStat::kStale) {
    // Stale cached handle (file replaced behind our back): revalidate.
    invalidate(normalize_path(path));
    const auto fresh = resolve(path);
    if (!fresh.ok()) return fresh.error();
    attr = client_.getattr(*fresh);
  }
  return attr;
}

bool NfsMount::exists(std::string_view path) { return stat(path).ok(); }

nfs::NfsResult<std::vector<fs::DirEntry>> NfsMount::list(std::string_view path) {
  const auto handle = resolve(path);
  if (!handle.ok()) return handle.error();
  const auto listing = client_.readdir(*handle);
  if (!listing.ok()) return listing.error();
  return listing->entries;
}

nfs::NfsResult<Unit> NfsMount::remove(std::string_view path) {
  const std::string normalized = normalize_path(path);
  const auto parent = lookup_cached(path_parent(normalized));
  if (!parent.ok()) return parent.error();
  const auto removed = client_.remove(*parent, path_basename(normalized));
  if (!removed.ok()) return removed.error();
  invalidate(normalized);
  return Unit{};
}

nfs::NfsResult<Unit> NfsMount::rmdir(std::string_view path) {
  const std::string normalized = normalize_path(path);
  const auto parent = lookup_cached(path_parent(normalized));
  if (!parent.ok()) return parent.error();
  const auto removed = client_.rmdir(*parent, path_basename(normalized));
  if (!removed.ok()) return removed.error();
  invalidate(normalized);
  return Unit{};
}

nfs::NfsResult<Unit> NfsMount::remove_all(std::string_view path) {
  const auto attr = stat(path);
  if (!attr.ok()) return attr.error();
  if (attr->type == fs::FileType::kDirectory) {
    const auto listing = list(path);
    if (!listing.ok()) return listing.error();
    for (const auto& entry : listing.value()) {
      const auto removed = remove_all(path_child(path, entry.name));
      if (!removed.ok()) return removed;
    }
    return rmdir(path);
  }
  return remove(path);
}

nfs::NfsResult<Unit> NfsMount::rename(std::string_view from, std::string_view to) {
  const std::string from_norm = normalize_path(from);
  const std::string to_norm = normalize_path(to);
  const auto from_parent = lookup_cached(path_parent(from_norm));
  if (!from_parent.ok()) return from_parent.error();
  const auto to_parent = lookup_cached(path_parent(to_norm));
  if (!to_parent.ok()) return to_parent.error();
  const auto renamed = client_.rename(*from_parent, path_basename(from_norm), *to_parent,
                                      path_basename(to_norm));
  if (!renamed.ok()) return renamed.error();
  invalidate(from_norm);
  return Unit{};
}

}  // namespace kosha::baseline


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_virtual_handles.cpp" "tests/CMakeFiles/test_virtual_handles.dir/test_virtual_handles.cpp.o" "gcc" "tests/CMakeFiles/test_virtual_handles.dir/test_virtual_handles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/kosha/CMakeFiles/kosha_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baseline/CMakeFiles/kosha_baseline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/kosha_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/kosha_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nfs/CMakeFiles/kosha_nfs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fs/CMakeFiles/kosha_fs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pastry/CMakeFiles/kosha_pastry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/kosha_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/kosha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ablation_read_replicas.dir/ablation_read_replicas.cpp.o"
  "CMakeFiles/ablation_read_replicas.dir/ablation_read_replicas.cpp.o.d"
  "ablation_read_replicas"
  "ablation_read_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_read_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

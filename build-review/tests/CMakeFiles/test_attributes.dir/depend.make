# Empty dependencies file for test_attributes.
# This may be replaced when dependencies are built.

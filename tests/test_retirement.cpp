// Graceful node departure: data survives retirement even with zero
// replicas, and the cluster audits clean afterwards.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kosha/audit.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

TEST(Retirement, DataSurvivesWithZeroReplicas) {
  ClusterConfig config;
  config.nodes = 6;
  config.kosha.distribution_level = 1;
  config.kosha.replicas = 0;  // crash-failure would lose data here
  config.seed = 81;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  for (int i = 0; i < 6; ++i) {
    const std::string dir = "/d" + std::to_string(i);
    ASSERT_TRUE(mount.mkdir_p(dir).ok());
    ASSERT_TRUE(mount.write_file(dir + "/f", "content-" + std::to_string(i)).ok());
  }

  // Retire every node except the client, one at a time.
  for (const auto host : cluster.live_hosts()) {
    if (host == 0) continue;
    cluster.retire_node(host);
  }
  EXPECT_EQ(cluster.live_hosts().size(), 1u);
  for (int i = 0; i < 6; ++i) {
    const auto content = mount.read_file("/d" + std::to_string(i) + "/f");
    ASSERT_TRUE(content.ok()) << i;
    EXPECT_EQ(content.value(), "content-" + std::to_string(i));
  }
}

TEST(Retirement, RetiredNodeHoldsNoPrimaries) {
  ClusterConfig config;
  config.nodes = 5;
  config.kosha.replicas = 1;
  config.seed = 82;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/x").ok());
  ASSERT_TRUE(mount.write_file("/x/f", "v").ok());
  const net::HostId victim = cluster.live_hosts().back();
  cluster.retire_node(victim);
  EXPECT_TRUE(cluster.replicas(victim).primaries().empty());
  EXPECT_FALSE(cluster.is_up(victim));
}

TEST(Retirement, AuditCleanAfterMixedChurn) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.distribution_level = 2;
  config.kosha.replicas = 2;
  config.seed = 83;
  KoshaCluster cluster(config);
  Rng rng(84);
  KoshaMount mount(&cluster.daemon(0));
  for (int round = 0; round < 30; ++round) {
    const unsigned action = static_cast<unsigned>(rng.next_below(8));
    if (action < 5) {
      const std::string dir = "/m" + std::to_string(rng.next_below(3));
      (void)mount.mkdir_p(dir);
      (void)mount.write_file(dir + "/f" + std::to_string(rng.next_below(4)),
                             rng.next_name(10));
    } else if (action == 5) {
      const auto hosts = cluster.live_hosts();
      if (hosts.size() > 4) cluster.retire_node(hosts[1 + rng.next_below(hosts.size() - 1)]);
    } else if (action == 6) {
      const auto hosts = cluster.live_hosts();
      if (hosts.size() > 4) cluster.fail_node(hosts[1 + rng.next_below(hosts.size() - 1)]);
    } else {
      (void)cluster.add_node();
    }
  }
  const auto report = audit_cluster(cluster);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(Retirement, RetireThenRejoin) {
  ClusterConfig config;
  config.nodes = 4;
  config.kosha.replicas = 1;
  config.seed = 85;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.write_file("/persist", "here").ok());
  const net::HostId victim = cluster.live_hosts().back();
  cluster.retire_node(victim);
  cluster.revive_node(victim);  // comes back purged under a fresh id
  EXPECT_TRUE(cluster.is_up(victim));
  EXPECT_EQ(mount.read_file("/persist").value(), "here");
  const auto report = audit_cluster(cluster);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(Retirement, RpcToRetiredServerFailsCleanly) {
  // Regression: a retired/failed node is erased from the server directory,
  // and an RPC addressed to it must fail through the clean unreachable
  // path — one timeout, kUnreachable — never via a stale server pointer.
  ClusterConfig config;
  config.nodes = 4;
  config.kosha.replicas = 1;
  config.seed = 86;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.write_file("/f", "v").ok());

  const net::HostId victim = cluster.live_hosts().back();
  cluster.retire_node(victim);
  EXPECT_EQ(cluster.runtime().servers->find(victim), nullptr);

  nfs::NfsClient client(&cluster.network(), cluster.runtime().servers, 0);
  const auto before = cluster.network().stats().timeouts;
  EXPECT_EQ(client.mount(victim).error(), nfs::NfsStat::kUnreachable);
  EXPECT_EQ(cluster.network().stats().timeouts, before + 1);
  EXPECT_EQ(cluster.network().stats().retries, 0u);

  // Same clean failure when the directory entry is gone but the host is
  // still marked up (the mid-retirement window).
  const net::HostId victim2 = cluster.live_hosts().back();
  cluster.runtime().servers->erase(victim2);
  EXPECT_EQ(client.mount(victim2).error(), nfs::NfsStat::kUnreachable);
  EXPECT_EQ(cluster.network().stats().timeouts, before + 2);
  cluster.runtime().servers->add(&cluster.server(victim2));  // restore
  const auto report = audit_cluster(cluster);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

}  // namespace
}  // namespace kosha

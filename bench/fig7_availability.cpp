// Figure 7 — file availability over an 840-hour machine-availability trace
// for replica counts 0-4 (paper §6.3). Distribution level 3. The trace has
// a mass correlated failure at hour 615 (the paper's 4890-machine event).
//
// Flags: --runs N (default 3; paper used 100), --machines N (default 2000),
// --files N, --seed, --repair-hours H (default 1: a fresh replica takes an
// hour to copy), --csv (per-hour series).

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/availability_sim.hpp"

int main(int argc, char** argv) {
  using namespace kosha;
  const CliArgs args(argc, argv);
  if (const auto err = args.check_known("runs,seed,files,machines,repair-hours,csv");
      !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  trace::FsTraceConfig fs_config;
  fs_config.seed = seed;
  fs_config.files = static_cast<std::size_t>(args.get_int("files", 221'000));
  const auto fs = trace::generate_fs_trace(fs_config);

  trace::AvailabilityConfig avail_config;
  avail_config.seed = seed + 1;
  avail_config.machines = static_cast<std::size_t>(args.get_int("machines", 2000));
  const auto machines = trace::generate_availability_trace(avail_config);

  std::printf("Figure 7: file availability over %zu hours, %zu machines "
              "(mean machine availability %s), level 3, runs=%zu\n",
              machines.hours, machines.machines,
              TextTable::pct(machines.mean_availability(), 2).c_str(), runs);
  std::printf("mass failure at hour %zu: %zu machines down\n\n", avail_config.spike_hour,
              machines.down_count(avail_config.spike_hour));

  TextTable table({"replicas", "avg avail%", "min avail%", "min hour", "avail@615%"});
  std::vector<sim::AvailabilityResult> results;
  for (unsigned k = 0; k <= 4; ++k) {
    sim::AvailabilitySimConfig config;
    config.replicas = k;
    config.runs = runs;
    config.seed = seed + 2;
    config.repair_hours = static_cast<std::size_t>(args.get_int("repair-hours", 1));
    results.push_back(sim::simulate_availability(fs, machines, config));
    const auto& r = results.back();
    table.add_row({"Kosha-" + std::to_string(k), TextTable::fmt(r.average_pct, 4),
                   TextTable::fmt(r.min_pct, 2), std::to_string(r.min_hour),
                   TextTable::fmt(r.available_pct[avail_config.spike_hour], 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  if (args.get_bool("csv", false)) {
    std::printf("\nhour,k0,k1,k2,k3,k4\n");
    for (std::size_t h = 0; h < machines.hours; ++h) {
      std::printf("%zu,%.4f,%.4f,%.4f,%.4f,%.4f\n", h, results[0].available_pct[h],
                  results[1].available_pct[h], results[2].available_pct[h],
                  results[3].available_pct[h], results[4].available_pct[h]);
    }
  }
  return 0;
}

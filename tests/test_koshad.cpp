// koshad semantics tests: distribution, special links, redirection, the
// NFS operation mapping of paper §4.1, and daemon statistics.

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/path.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "kosha/placement.hpp"

namespace kosha {
namespace {

/// CI re-runs this suite with KOSHA_TEST_BACKEND=cas to prove the whole
/// stack is backend-agnostic; default (unset/flat) runs are untouched.
void apply_test_backend(ClusterConfig* config) {
  fs::BackendKind backend = fs::BackendKind::kFlat;
  if (fs::parse_backend(env_or("KOSHA_TEST_BACKEND", "flat"), &backend)) {
    config->kosha.storage.backend = backend;
  }
}

ClusterConfig config_for(std::size_t nodes, unsigned level, unsigned replicas = 1,
                         std::uint64_t seed = 7) {
  ClusterConfig config;
  config.nodes = nodes;
  config.kosha.distribution_level = level;
  config.kosha.replicas = replicas;
  config.node_capacity_bytes = 1ull << 30;
  config.seed = seed;
  apply_test_backend(&config);
  return config;
}

net::HostId host_of_path(KoshaCluster& cluster, net::HostId client, std::string_view path) {
  KoshaMount mount(&cluster.daemon(client));
  const auto vh = mount.resolve(path);
  EXPECT_TRUE(vh.ok());
  return cluster.daemon(client).handle_table().find(*vh)->real.server;
}

TEST(Koshad, DistributedDirectoryLandsOnHashedNode) {
  KoshaCluster cluster(config_for(8, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/projects").ok());
  const net::HostId expected =
      cluster.overlay().ring().owner_tag(key_for_name("projects"));
  EXPECT_EQ(host_of_path(cluster, 0, "/projects"), expected);
}

TEST(Koshad, FilesShareTheirDirectoryNode) {
  // Paper §3.1: "all the files in a directory reside on the same node".
  KoshaCluster cluster(config_for(8, 2));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/p/sub").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(mount.write_file("/p/sub/f" + std::to_string(i), "x").ok());
  }
  const net::HostId dir_host = host_of_path(cluster, 0, "/p/sub");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(host_of_path(cluster, 0, "/p/sub/f" + std::to_string(i)), dir_host);
  }
}

TEST(Koshad, BelowDistributionLevelStaysWithParent) {
  KoshaCluster cluster(config_for(8, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/top/deep/deeper").ok());
  const net::HostId top = host_of_path(cluster, 0, "/top");
  EXPECT_EQ(host_of_path(cluster, 0, "/top/deep"), top);
  EXPECT_EQ(host_of_path(cluster, 0, "/top/deep/deeper"), top);
}

TEST(Koshad, SpecialLinkPlantedInParent) {
  KoshaCluster cluster(config_for(4, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/docs").ok());
  // The root owner's store must contain a symlink "docs" -> effective name.
  const net::HostId root_owner = cluster.overlay().ring().owner_tag(root_key());
  auto& store = cluster.server(root_owner).store();
  const auto root_dir = store.resolve(root_stored_path());
  ASSERT_TRUE(root_dir.ok());
  const auto link = store.lookup(*root_dir, "docs");
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(store.getattr(*link)->type, fs::FileType::kSymlink);
  EXPECT_EQ(plain_name(store.readlink(*link).value()), "docs");
}

TEST(Koshad, ReaddirPresentsLinksAsDirectories) {
  KoshaCluster cluster(config_for(4, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/dir").ok());
  ASSERT_TRUE(mount.write_file("/file", "x").ok());
  const auto listing = mount.list("/");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 2u);
  for (const auto& entry : listing.value()) {
    if (entry.name == "dir") {
      EXPECT_EQ(entry.type, fs::FileType::kDirectory);
    }
    if (entry.name == "file") {
      EXPECT_EQ(entry.type, fs::FileType::kFile);
    }
  }
}

TEST(Koshad, ReservedNamesRejected) {
  KoshaCluster cluster(config_for(2, 1));
  auto& daemon = cluster.daemon(0);
  const auto root = daemon.root();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(daemon.mkdir(*root, "with#salt").error(), nfs::NfsStat::kInval);
  EXPECT_EQ(daemon.create(*root, ".r").error(), nfs::NfsStat::kInval);
  EXPECT_EQ(daemon.create(*root, ".a").error(), nfs::NfsStat::kInval);
  EXPECT_EQ(daemon.create(*root, "MIGRATION_NOT_COMPLETE").error(), nfs::NfsStat::kInval);
  EXPECT_EQ(daemon.create(*root, "a/b").error(), nfs::NfsStat::kInval);
  EXPECT_EQ(daemon.create(*root, "").error(), nfs::NfsStat::kInval);
}

TEST(Koshad, MkdirExistingFails) {
  KoshaCluster cluster(config_for(4, 2));
  auto& daemon = cluster.daemon(0);
  const auto root = daemon.root();
  ASSERT_TRUE(daemon.mkdir(*root, "d").ok());
  EXPECT_EQ(daemon.mkdir(*root, "d").error(), nfs::NfsStat::kExist);
  ASSERT_TRUE(daemon.create(*root, "f").ok());
  EXPECT_EQ(daemon.create(*root, "f").error(), nfs::NfsStat::kExist);
}

TEST(Koshad, RemoveRejectsDirectories) {
  KoshaCluster cluster(config_for(4, 1));
  auto& daemon = cluster.daemon(0);
  const auto root = daemon.root();
  ASSERT_TRUE(daemon.mkdir(*root, "d").ok());
  EXPECT_EQ(daemon.remove(*root, "d").error(), nfs::NfsStat::kIsDir);
}

TEST(Koshad, RmdirRequiresEmpty) {
  KoshaCluster cluster(config_for(4, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/d").ok());
  ASSERT_TRUE(mount.write_file("/d/f", "x").ok());
  EXPECT_EQ(mount.rmdir("/d").error(), nfs::NfsStat::kNotEmpty);
  ASSERT_TRUE(mount.remove("/d/f").ok());
  EXPECT_TRUE(mount.rmdir("/d").ok());
  EXPECT_FALSE(mount.exists("/d"));
}

TEST(Koshad, RmdirDistributedCleansStorageNode) {
  KoshaCluster cluster(config_for(4, 2, 0));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/x/y").ok());
  const net::HostId host = host_of_path(cluster, 0, "/x/y");
  ASSERT_TRUE(mount.rmdir("/x/y").ok());
  // The anchor container (and its scaffolding) must be gone from the node.
  auto& store = cluster.server(host).store();
  bool any_container = false;
  const auto area = store.resolve(std::string("/") + kAnchorArea);
  if (area.ok()) {
    const auto entries = store.readdir(*area);
    ASSERT_TRUE(entries.ok());
    for (const auto& entry : entries.value()) {
      if (plain_name(entry.name) == "y") any_container = true;
    }
  }
  EXPECT_FALSE(any_container);
  // And the link is gone from the parent.
  EXPECT_FALSE(mount.exists("/x/y"));
  const auto listing = mount.list("/x");
  EXPECT_TRUE(listing->empty());
}

TEST(Koshad, RenameLinkFastPathKeepsStoredName) {
  // Paper §4.1.4: renaming a distributed directory renames only the link;
  // the stored (hashed) name is unchanged so nothing migrates.
  KoshaCluster cluster(config_for(4, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/oldname").ok());
  ASSERT_TRUE(mount.write_file("/oldname/f", "payload").ok());
  const net::HostId before = host_of_path(cluster, 0, "/oldname");

  ASSERT_TRUE(mount.rename("/oldname", "/newname").ok());
  EXPECT_FALSE(mount.exists("/oldname"));
  EXPECT_EQ(mount.read_file("/newname/f").value(), "payload");
  // Still on the node chosen by hash("oldname"): only the link moved.
  EXPECT_EQ(host_of_path(cluster, 0, "/newname"), before);
  EXPECT_EQ(before, cluster.overlay().ring().owner_tag(key_for_name("oldname")));
}

TEST(Koshad, RenameFileAcrossDirectories) {
  KoshaCluster cluster(config_for(8, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/src").ok());
  ASSERT_TRUE(mount.mkdir_p("/dst").ok());
  ASSERT_TRUE(mount.write_file("/src/f", "moving data").ok());
  ASSERT_TRUE(mount.rename("/src/f", "/dst/g").ok());
  EXPECT_FALSE(mount.exists("/src/f"));
  EXPECT_EQ(mount.read_file("/dst/g").value(), "moving data");
}

TEST(Koshad, RenameDistributedDirAcrossParentsCopiesSubtree) {
  KoshaCluster cluster(config_for(8, 2));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/a/tree").ok());
  ASSERT_TRUE(mount.write_file("/a/tree/f1", "one").ok());
  ASSERT_TRUE(mount.mkdir_p("/a/tree/deep").ok());
  ASSERT_TRUE(mount.write_file("/a/tree/deep/f2", "two").ok());
  ASSERT_TRUE(mount.mkdir_p("/b").ok());

  ASSERT_TRUE(mount.rename("/a/tree", "/b/tree").ok());
  EXPECT_FALSE(mount.exists("/a/tree"));
  EXPECT_EQ(mount.read_file("/b/tree/f1").value(), "one");
  EXPECT_EQ(mount.read_file("/b/tree/deep/f2").value(), "two");
}

TEST(Koshad, RenameRejectsExistingTargetAndCycles) {
  KoshaCluster cluster(config_for(4, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/d1").ok());
  ASSERT_TRUE(mount.mkdir_p("/d2").ok());
  EXPECT_EQ(mount.rename("/d1", "/d2").error(), nfs::NfsStat::kExist);
  EXPECT_EQ(mount.rename("/d1", "/d1/inside").error(), nfs::NfsStat::kInval);
}

TEST(Koshad, SetModeAndGetattr) {
  KoshaCluster cluster(config_for(4, 1));
  auto& daemon = cluster.daemon(0);
  const auto root = daemon.root();
  const auto file = daemon.create(*root, "f", 0644);
  ASSERT_TRUE(file.ok());
  const auto chmod = daemon.set_mode(file->handle, 0400);
  ASSERT_TRUE(chmod.ok());
  EXPECT_EQ(daemon.getattr(file->handle)->mode, 0400u);
}

TEST(Koshad, StatsCountRemoteAndDhtActivity) {
  KoshaCluster cluster(config_for(8, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/stats").ok());
  ASSERT_TRUE(mount.write_file("/stats/f", "x").ok());
  const auto& stats = cluster.daemon(0).stats();
  EXPECT_GT(stats.rpcs_forwarded, 0u);
  EXPECT_GT(stats.dht_lookups, 0u);
  EXPECT_EQ(stats.failovers, 0u);
}

TEST(Koshad, CapacityRedirectionSaltsDirectories) {
  // Fill one node past the threshold; the next directory that hashes to it
  // must be redirected (salted) elsewhere.
  ClusterConfig config = config_for(4, 1, 0);
  config.node_capacity_bytes = 1 << 20;  // 1 MiB nodes
  config.kosha.redirect_threshold = 0.5;
  config.kosha.max_redirects = 8;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));

  // Create directories until nodes cross 50%; redirection must spread the
  // load so most creations keep succeeding (occasional failures are
  // legitimate: a salt sequence can miss the under-threshold nodes).
  std::size_t created = 0;
  for (int i = 0; i < 40; ++i) {
    const std::string dir = "/dir" + std::to_string(i);
    if (!mount.mkdir_p(dir).ok()) continue;
    if (!mount.write_file(dir + "/blob", std::string(64 * 1024, 'x')).ok()) continue;
    ++created;
  }
  EXPECT_GE(created, 20u);  // 40 * 64KiB = 2.5 MiB spread over 4 MiB total
  EXPECT_GT(cluster.daemon(0).stats().redirects, 0u);
}

TEST(Koshad, RedirectedDirectoryTransparentlyAccessible) {
  ClusterConfig config = config_for(4, 1, 0, 13);
  config.node_capacity_bytes = 1 << 20;
  config.kosha.redirect_threshold = 0.3;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  // Force utilization above threshold everywhere except via salts.
  for (int i = 0; i < 30; ++i) {
    const std::string dir = "/u" + std::to_string(i);
    if (!mount.mkdir_p(dir).ok()) continue;
    (void)mount.write_file(dir + "/pad", std::string(32 * 1024, 'p'));
  }
  // Every directory that was created must be fully usable.
  for (int i = 0; i < 30; ++i) {
    const std::string dir = "/u" + std::to_string(i);
    if (!mount.exists(dir)) continue;
    const auto content = mount.read_file(dir + "/pad");
    if (content.ok()) {
      EXPECT_EQ(content->size(), 32u * 1024);
    }
  }
}

TEST(Koshad, StaleVirtualHandleReturnsStale) {
  KoshaCluster cluster(config_for(2, 1));
  auto& daemon = cluster.daemon(0);
  EXPECT_EQ(daemon.getattr(VirtualHandle{9999}).error(), nfs::NfsStat::kStale);
  EXPECT_EQ(daemon.readdir(VirtualHandle{9999}).error(), nfs::NfsStat::kStale);
  EXPECT_EQ(daemon.create(VirtualHandle{9999}, "f").error(), nfs::NfsStat::kStale);
}

class KoshadLevels : public ::testing::TestWithParam<unsigned> {};

TEST_P(KoshadLevels, DeepTreeRoundTripAtEveryLevel) {
  KoshaCluster cluster(config_for(8, GetParam()));
  KoshaMount mount(&cluster.daemon(0));
  const std::string base = "/l1/l2/l3/l4/l5";
  ASSERT_TRUE(mount.mkdir_p(base).ok());
  for (int i = 0; i < 8; ++i) {
    const std::string path = base + "/file" + std::to_string(i);
    const std::string content = "content-" + std::to_string(i);
    ASSERT_TRUE(mount.write_file(path, content).ok());
    EXPECT_EQ(mount.read_file(path).value(), content);
  }
  const auto listing = mount.list(base);
  EXPECT_EQ(listing->size(), 8u);
  // And from a different client host.
  KoshaMount other(&cluster.daemon(3));
  EXPECT_EQ(other.read_file(base + "/file0").value(), "content-0");
}

INSTANTIATE_TEST_SUITE_P(Levels, KoshadLevels, ::testing::Values(1, 2, 3, 4, 6));

}  // namespace
}  // namespace kosha

// Cross-validation: the figure-level placement simulator and the real
// koshad stack must agree exactly on where files land when given the same
// node identifiers — the property that makes Figures 5-7 representative of
// the system the tables measure.

#include <gtest/gtest.h>

#include <map>

#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "kosha/placement.hpp"
#include "pastry/ring.hpp"
#include "trace/fs_trace.hpp"
#include "trace/mab.hpp"

namespace kosha {
namespace {

class SimVsStack : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimVsStack, PlacementAgreesWithRingSimulation) {
  const unsigned level = GetParam();
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.distribution_level = level;
  config.kosha.replicas = 0;                // count primary bytes only
  config.node_capacity_bytes = 8ull << 30;  // no redirection
  config.seed = 97;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));

  trace::FsTraceConfig trace_config;
  trace_config.files = 800;
  trace_config.users = 6;
  trace_config.total_bytes = 8 << 20;
  const auto trace = trace::generate_fs_trace(trace_config);

  // Drive the real stack.
  for (const auto& dir : trace.directories) ASSERT_TRUE(mount.mkdir_p(dir).ok());
  for (std::size_t i = 0; i < trace.files.size(); ++i) {
    ASSERT_TRUE(
        mount.write_file(trace.files[i].path, trace::mab_content(trace.files[i].size, i)).ok());
  }

  // Simulate placement over the same node ids.
  pastry::Ring ring;
  for (const auto host : cluster.live_hosts()) ring.insert(cluster.node_id(host), host);
  std::map<net::HostId, std::uint64_t> simulated;
  for (const auto& file : trace.files) {
    const std::string anchor = trace::file_anchor_name(file.path, level);
    simulated[ring.owner_tag(key_for_name(anchor))] += file.size;
  }

  // The stack's per-node *file* bytes must match the simulation exactly.
  for (const auto host : cluster.live_hosts()) {
    EXPECT_EQ(cluster.server(host).store().used_bytes(), simulated[host])
        << "host " << host << " at level " << level;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, SimVsStack, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace kosha

file(REMOVE_RECURSE
  "CMakeFiles/test_koshad.dir/test_koshad.cpp.o"
  "CMakeFiles/test_koshad.dir/test_koshad.cpp.o.d"
  "test_koshad"
  "test_koshad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_koshad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/kosha_lint.dir/kosha_lint.cpp.o"
  "CMakeFiles/kosha_lint.dir/kosha_lint.cpp.o.d"
  "kosha_lint"
  "kosha_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_chaos_soak.
# This may be replaced when dependencies are built.

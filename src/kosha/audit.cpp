#include "kosha/audit.hpp"

#include <algorithm>

#include "common/path.hpp"
#include "common/sha1.hpp"
#include "kosha/mount.hpp"
#include "kosha/placement.hpp"

namespace kosha {

namespace {

/// Structurally and byte-wise compare two subtrees; MIGRATION flag files
/// are ignored. Appends human-readable differences to `issues`.
void compare_trees(const fs::StorageBackend& a, const std::string& a_path, const fs::StorageBackend& b,
                   const std::string& b_path, const std::string& label,
                   std::vector<std::string>& issues) {
  const auto a_inode = a.resolve(a_path);
  const auto b_inode = b.resolve(b_path);
  if (!a_inode.ok() || !b_inode.ok()) {
    issues.push_back(label + ": missing side (" + a_path + " vs " + b_path + ")");
    return;
  }
  const auto a_attr = *a.getattr(*a_inode);
  const auto b_attr = *b.getattr(*b_inode);
  if (a_attr.type != b_attr.type) {
    issues.push_back(label + ": type mismatch at " + a_path);
    return;
  }
  switch (a_attr.type) {
    case fs::FileType::kFile: {
      const auto a_data = a.read(*a_inode, 0, static_cast<std::uint32_t>(a_attr.size));
      const auto b_data = b.read(*b_inode, 0, static_cast<std::uint32_t>(b_attr.size));
      if (!a_data.ok() || !b_data.ok() || a_data.value() != b_data.value()) {
        issues.push_back(label + ": content mismatch at " + a_path);
      }
      return;
    }
    case fs::FileType::kSymlink: {
      if (a.readlink(*a_inode).value() != b.readlink(*b_inode).value()) {
        issues.push_back(label + ": link target mismatch at " + a_path);
      }
      return;
    }
    case fs::FileType::kDirectory:
      break;
  }
  const auto a_entries = *a.readdir(*a_inode);
  const auto b_entries = *b.readdir(*b_inode);
  auto names = [](const std::vector<fs::DirEntry>& entries) {
    std::vector<std::string> out;
    for (const auto& e : entries) {
      if (e.name != kMigrationFlag) out.push_back(e.name);
    }
    return out;
  };
  const auto a_names = names(a_entries);
  const auto b_names = names(b_entries);
  if (a_names != b_names) {
    issues.push_back(label + ": directory listing mismatch at " + a_path);
    return;
  }
  for (const auto& name : a_names) {
    compare_trees(a, path_child(a_path, name), b, path_child(b_path, name), label, issues);
  }
}

/// Recursively resolve + read the whole virtual namespace.
void walk_namespace(KoshaMount& mount, const std::string& path,
                    std::vector<std::string>& issues, std::size_t* files) {
  const auto listing = mount.list(path);
  if (!listing.ok()) {
    issues.push_back("namespace: cannot list " + path + " (" +
                     nfs::to_string(listing.error()) + ")");
    return;
  }
  for (const auto& entry : listing.value()) {
    const std::string child = path_child(path, entry.name);
    if (entry.type == fs::FileType::kDirectory) {
      if (!mount.stat(child).ok()) {
        issues.push_back("namespace: special link does not resolve: " + child);
        continue;
      }
      walk_namespace(mount, child, issues, files);
    } else {
      if (!mount.read_file(child).ok()) {
        issues.push_back("namespace: unreadable file: " + child);
      } else {
        ++*files;
      }
    }
  }
}

/// Absorb one token followed by a NUL separator (keeps "ab"+"c" distinct
/// from "a"+"bc").
void absorb(Sha1& sha, std::string_view token) {
  sha.update(token);
  sha.update(std::string_view("\0", 1));
}

/// Depth-first walk of a store subtree in sorted entry order (readdir is
/// backed by a std::map), absorbing every attribute that defines durable
/// state. mtime is deliberately excluded: it is a logical counter whose
/// value depends on operation interleaving, not on the final contents.
void absorb_tree(Sha1& sha, const fs::StorageBackend& store, const std::string& path) {
  const auto inode = store.resolve(path);
  if (!inode.ok()) return;
  const auto attr = store.getattr(*inode);
  if (!attr.ok()) return;
  absorb(sha, path);
  absorb(sha, std::to_string(static_cast<int>(attr->type)));
  absorb(sha, std::to_string(attr->mode));
  absorb(sha, std::to_string(attr->uid));
  absorb(sha, std::to_string(attr->size));
  switch (attr->type) {
    case fs::FileType::kFile: {
      const auto data = store.read(*inode, 0, static_cast<std::uint32_t>(attr->size));
      if (data.ok()) absorb(sha, data.value());
      return;
    }
    case fs::FileType::kSymlink: {
      const auto target = store.readlink(*inode);
      if (target.ok()) absorb(sha, target.value());
      return;
    }
    case fs::FileType::kDirectory:
      break;
  }
  const auto entries = store.readdir(*inode);
  if (!entries.ok()) return;
  for (const auto& entry : entries.value()) {
    absorb_tree(sha, store, path_child(path, entry.name));
  }
}

}  // namespace

std::string AuditReport::to_string() const {
  if (clean()) return "audit clean";
  std::string out = "audit found " + std::to_string(issues.size()) + " issue(s):\n";
  for (const auto& issue : issues) out += "  " + issue + "\n";
  return out;
}

AuditReport audit_cluster(KoshaCluster& cluster, net::HostId client_host) {
  AuditReport report;
  auto& overlay = cluster.overlay();

  for (const net::HostId host : cluster.live_hosts()) {
    const auto& rm = cluster.replicas(host);
    auto& store = cluster.server(host).store();

    // 1. Registered anchors exist here and this node owns their keys.
    for (const auto& [anchor, effective] : rm.primaries()) {
      if (!store.resolve(anchor).ok()) {
        report.issues.push_back("host " + std::to_string(host) +
                                ": registered anchor missing on disk: " + anchor);
      }
      const auto owner = overlay.ring().owner(key_for_name(effective));
      if (owner != cluster.node_id(host)) {
        report.issues.push_back("host " + std::to_string(host) +
                                ": not the ring owner of anchor " + anchor + " (name '" +
                                effective + "')");
      }

      // 3. Every replica target holds an identical copy.
      for (const auto target : rm.targets()) {
        if (!overlay.is_live(target)) {
          report.issues.push_back("host " + std::to_string(host) +
                                  ": dead replica target for " + anchor);
          continue;
        }
        const net::HostId target_host = overlay.host_of(target);
        auto& target_store = cluster.server(target_host).store();
        const std::string hidden = ReplicaManager::hidden_root(cluster.node_id(host));
        if (target_store.resolve(path_child(hidden, kMigrationFlag)).ok()) {
          continue;  // migration in progress: divergence is expected
        }
        compare_trees(store, anchor, target_store, hidden + anchor,
                      "replica of " + anchor + " on host " + std::to_string(target_host),
                      report.issues);
      }
    }

    // 4. Byte accounting is internally consistent.
    const auto recomputed = store.subtree_bytes(store.root());
    if (recomputed != store.used_bytes()) {
      report.issues.push_back("host " + std::to_string(host) + ": used_bytes " +
                              std::to_string(store.used_bytes()) + " != recomputed " +
                              std::to_string(recomputed));
    }
  }

  // 2. The full namespace resolves from a fresh client walk.
  KoshaMount mount(&cluster.daemon(client_host));
  std::size_t files = 0;
  walk_namespace(mount, "/", report.issues, &files);

  return report;
}

std::string audit_digest(KoshaCluster& cluster) {
  Sha1 sha;
  for (const net::HostId host : cluster.live_hosts()) {
    absorb(sha, "host:" + std::to_string(host));
    absorb_tree(sha, cluster.server(host).store(), "/");
  }
  const auto digest = sha.digest();
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (const std::uint8_t byte : digest) {
    out += kHex[byte >> 4];
    out += kHex[byte & 0xF];
  }
  return out;
}

}  // namespace kosha

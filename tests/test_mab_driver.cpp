// Integration tests for the Modified Andrew Benchmark driver against both
// mounts, plus cross-system sanity of the phase accounting.

#include <gtest/gtest.h>

#include "baseline/nfs_mount.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "trace/mab.hpp"

namespace kosha {
namespace {

trace::MabConfig tiny_mab(std::uint64_t seed) {
  trace::MabConfig config;
  config.seed = seed;
  config.files = 40;
  config.total_dirs = 16;
  config.total_bytes = 2 << 20;
  return config;
}

TEST(MabDriver, RunsOnKoshaAndCleansUp) {
  ClusterConfig config;
  config.nodes = 4;
  config.kosha.distribution_level = 2;
  config.kosha.replicas = 1;
  config.seed = 71;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  const auto workload = trace::generate_mab(tiny_mab(1));

  const auto times = trace::run_mab(mount, workload, cluster.clock());
  EXPECT_GT(times.mkdir_s, 0.0);
  EXPECT_GT(times.copy_s, 0.0);
  EXPECT_GT(times.stat_s, 0.0);
  EXPECT_GT(times.grep_s, 0.0);
  EXPECT_GT(times.compile_s, 0.0);
  EXPECT_GT(times.total(), times.compile_s);

  // The copy tree exists and matches the workload.
  for (const auto& file : workload.files) {
    const auto content = mount.read_file(trace::mab_copy_path(file.path));
    ASSERT_TRUE(content.ok()) << file.path;
    EXPECT_EQ(content->size(), file.size);
  }

  trace::cleanup_mab(mount, workload);
  // Cleanup reclaims every byte (replicas included).
  std::uint64_t total = 0;
  for (const auto host : cluster.live_hosts()) {
    total += cluster.server(host).store().used_bytes();
  }
  EXPECT_EQ(total, 0u);
}

TEST(MabDriver, RunsOnPlainNfs) {
  SimClock clock;
  net::SimNetwork network({}, &clock);
  const net::HostId client = network.add_host();
  const net::HostId server_host = network.add_host();
  nfs::NfsServer server(server_host, {}, {}, &clock);
  nfs::ServerDirectory directory;
  directory.add(&server);
  baseline::NfsMount mount(&network, &directory, client, server_host);

  const auto workload = trace::generate_mab(tiny_mab(2));
  const auto times = trace::run_mab(mount, workload, clock);
  EXPECT_GT(times.total(), 0.0);
  trace::cleanup_mab(mount, workload);
  EXPECT_EQ(server.store().used_bytes(), 0u);
}

TEST(MabDriver, KoshaOverheadIsBoundedAndPositive) {
  // A coarse guard on the paper's headline: Kosha costs more than plain
  // NFS, but not an order of magnitude more.
  const auto workload = trace::generate_mab(tiny_mab(3));

  double nfs_total = 0;
  {
    SimClock clock;
    net::SimNetwork network({}, &clock);
    const net::HostId client = network.add_host();
    const net::HostId server_host = network.add_host();
    nfs::NfsServer server(server_host, {}, {}, &clock);
    nfs::ServerDirectory directory;
    directory.add(&server);
    baseline::NfsMount mount(&network, &directory, client, server_host);
    nfs_total = trace::run_mab(mount, workload, clock).total();
  }
  double kosha_total = 0;
  {
    ClusterConfig config;
    config.nodes = 8;
    config.kosha.replicas = 1;
    config.seed = 73;
    KoshaCluster cluster(config);
    KoshaMount mount(&cluster.daemon(0));
    kosha_total = trace::run_mab(mount, workload, cluster.clock()).total();
  }
  EXPECT_GT(kosha_total, nfs_total);
  EXPECT_LT(kosha_total, nfs_total * 1.6);
}

TEST(MabDriver, PhaseTimesAccumulateAndAverage) {
  trace::MabPhaseTimes sum;
  trace::MabPhaseTimes one;
  one.mkdir_s = 1;
  one.copy_s = 2;
  one.stat_s = 3;
  one.grep_s = 4;
  one.compile_s = 5;
  sum += one;
  sum += one;
  sum /= 2.0;
  EXPECT_DOUBLE_EQ(sum.total(), 15.0);
  EXPECT_DOUBLE_EQ(sum.copy_s, 2.0);
}

}  // namespace
}  // namespace kosha

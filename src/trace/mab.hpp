#pragma once

// Modified Andrew Benchmark (paper §6.1).
//
// The authors ran a FreeBSD-adapted Andrew benchmark with a larger (51 MB,
// max depth 6) file distribution. We synthesise an equivalent tree and
// drive the same five phases — mkdir, copy, stat, grep, compile — against
// any mount with the common path-level interface (KoshaMount or the
// unmodified-NFS baseline). Phase times are read off the virtual clock;
// client CPU work (scanning in grep, compilation in compile) is charged
// identically for both systems, exactly as it would be on real hardware.

#include <string>
#include <string_view>
#include <vector>

#include "common/path.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"

namespace kosha::trace {

struct MabFile {
  std::string path;
  std::uint32_t size = 0;
};

struct MabWorkload {
  std::vector<std::string> directories;  // creation order, parents first
  std::vector<MabFile> files;
  std::uint64_t total_bytes = 0;
};

struct MabConfig {
  std::uint64_t seed = 1;
  /// Prefix for the top-level directories (lets repeated runs coexist and
  /// keeps them at distribution depth 1, like the paper's setup where the
  /// benchmark tree sits directly under /kosha).
  std::string prefix = "mab";
  std::size_t top_dirs = 8;
  std::size_t total_dirs = 160;
  unsigned max_depth = 6;  // paper: "maximum subdirectory level of 6"
  std::size_t files = 420;
  std::uint64_t total_bytes = 51ull << 20;  // paper: 51 MB
};

/// Deterministically synthesise the benchmark tree.
[[nodiscard]] MabWorkload generate_mab(const MabConfig& config);

/// Client-side CPU costs charged by the driver (identical for all mounts).
struct MabCosts {
  SimDuration grep_per_kib = SimDuration::micros(10);
  SimDuration compile_per_kib = SimDuration::micros(420);
  SimDuration compile_fixed = SimDuration::millis(12);
  /// Object files written by the compile phase, as a fraction of source.
  double object_ratio = 0.6;
};

struct MabPhaseTimes {
  double mkdir_s = 0;
  double copy_s = 0;
  double stat_s = 0;
  double grep_s = 0;
  double compile_s = 0;

  [[nodiscard]] double total() const {
    return mkdir_s + copy_s + stat_s + grep_s + compile_s;
  }

  MabPhaseTimes& operator+=(const MabPhaseTimes& other) {
    mkdir_s += other.mkdir_s;
    copy_s += other.copy_s;
    stat_s += other.stat_s;
    grep_s += other.grep_s;
    compile_s += other.compile_s;
    return *this;
  }
  MabPhaseTimes& operator/=(double k) {
    mkdir_s /= k;
    copy_s /= k;
    stat_s /= k;
    grep_s /= k;
    compile_s /= k;
    return *this;
  }
};

/// Cheap deterministic file content of the requested size.
[[nodiscard]] std::string mab_content(std::size_t size, std::uint64_t salt);

/// Destination path of the copy phase: the source tree is mirrored into a
/// parallel top-level tree (Andrew's copy phase re-creates the directory
/// hierarchy, which is exactly where Kosha pays the two-hash/special-link
/// cost the paper discusses in §6.1.4).
[[nodiscard]] std::string mab_copy_path(const std::string& path);

/// Run the five MAB phases against `mount`, timing each on `clock`.
/// The Mount type must provide mkdir_p/write_file/read_file/stat.
template <typename Mount>
MabPhaseTimes run_mab(Mount& mount, const MabWorkload& workload, SimClock& clock,
                      const MabCosts& costs = {}) {
  MabPhaseTimes times;

  {  // Phase 1: mkdir — create the source directory hierarchy
    const SimStopwatch watch(clock);
    for (const auto& dir : workload.directories) {
      if (!mount.mkdir_p(dir).ok()) return times;
    }
    times.mkdir_s = watch.elapsed().to_seconds();
  }
  {  // Phase 2: copy — re-create the hierarchy and copy every file into it
    const SimStopwatch watch(clock);
    for (const auto& dir : workload.directories) {
      if (!mount.mkdir_p(mab_copy_path(dir)).ok()) return times;
    }
    std::uint64_t salt = 0;
    for (const auto& file : workload.files) {
      if (!mount.write_file(mab_copy_path(file.path), mab_content(file.size, ++salt)).ok()) {
        return times;
      }
    }
    times.copy_s = watch.elapsed().to_seconds();
  }
  {  // Phase 3: stat (recursive status of every entry in the copy)
    const SimStopwatch watch(clock);
    for (const auto& dir : workload.directories) {
      if (!mount.stat(mab_copy_path(dir)).ok()) return times;
    }
    for (const auto& file : workload.files) {
      if (!mount.stat(mab_copy_path(file.path)).ok()) return times;
    }
    times.stat_s = watch.elapsed().to_seconds();
  }
  {  // Phase 4: grep (scan every byte)
    const SimStopwatch watch(clock);
    for (const auto& file : workload.files) {
      const auto content = mount.read_file(mab_copy_path(file.path));
      if (!content.ok()) return times;
      clock.advance(SimDuration::nanos(costs.grep_per_kib.ns *
                                       static_cast<std::int64_t>(content->size()) / 1024));
    }
    times.grep_s = watch.elapsed().to_seconds();
  }
  {  // Phase 5: compile (read sources, burn CPU, emit objects)
    const SimStopwatch watch(clock);
    std::uint64_t salt = 0x9e3779b9;
    for (const auto& file : workload.files) {
      const std::string path = mab_copy_path(file.path);
      const auto content = mount.read_file(path);
      if (!content.ok()) return times;
      clock.advance(costs.compile_fixed);
      clock.advance(SimDuration::nanos(costs.compile_per_kib.ns *
                                       static_cast<std::int64_t>(content->size()) / 1024));
      const auto object_size = static_cast<std::size_t>(
          static_cast<double>(content->size()) * costs.object_ratio);
      if (!mount.write_file(path + ".o", mab_content(object_size, ++salt)).ok()) {
        return times;
      }
    }
    times.compile_s = watch.elapsed().to_seconds();
  }
  return times;
}

/// Delete everything the workload created (untimed cleanup between runs).
template <typename Mount>
void cleanup_mab(Mount& mount, const MabWorkload& workload) {
  for (const auto& dir : workload.directories) {
    if (path_depth(dir) == 1) {
      // kosha-lint: allow(ignore-status): untimed best-effort cleanup; leftovers cannot affect the next measured phase
      (void)mount.remove_all(dir);
      // kosha-lint: allow(ignore-status): untimed best-effort cleanup; leftovers cannot affect the next measured phase
      (void)mount.remove_all(mab_copy_path(dir));
    }
  }
}

}  // namespace kosha::trace

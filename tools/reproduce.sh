#!/usr/bin/env bash
# Reproduce the paper end-to-end: build, test, run every table/figure
# harness at paper-sized repetition counts, and collect outputs (text +
# CSV + gnuplot-ready data) under results/.
#
# Usage: tools/reproduce.sh [--quick]
#   --quick  use the CI-sized run counts (seconds instead of minutes)

set -euo pipefail
cd "$(dirname "$0")/.."

RUNS_TABLE=50
RUNS_FIG=50
RUNS_AVAIL=20
if [[ "${1:-}" == "--quick" ]]; then
  RUNS_TABLE=5
  RUNS_FIG=10
  RUNS_AVAIL=3
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
run() {
  local name="$1"
  shift
  echo "== $name =="
  "./build/bench/$name" "$@" | tee "results/$name.txt"
}

run table1_scalability --runs "$RUNS_TABLE" --model
run table2_distlevel --runs "$RUNS_TABLE"
run fig5_load_distribution --runs "$RUNS_FIG"
run fig6_redirection --runs "$RUNS_FIG"
run fig7_availability --runs "$RUNS_AVAIL"
run ablation_read_replicas
run ablation_replication
./build/bench/micro_bench --metrics-out=results/BENCH_micro.json |
  tee results/micro_bench.txt

# CSV series for the plots.
./build/bench/fig5_load_distribution --runs "$RUNS_FIG" --csv |
  sed -n '/^dist-level,/,$p' > results/fig5.csv
./build/bench/fig7_availability --runs "$RUNS_AVAIL" --csv |
  sed -n '/^hour,/,$p' > results/fig7.csv

if command -v gnuplot >/dev/null 2>&1; then
  gnuplot tools/plot_fig5.gp tools/plot_fig7.gp
  echo "plots written to results/"
else
  echo "gnuplot not found; CSVs are in results/"
fi

// Table 2 — Modified Andrew Benchmark on Kosha as the distribution level
// grows (paper §6.1.4). 4 nodes; levels 1-4; overhead reported relative to
// level 1. Expect mkdir/copy to pay the most (extra hash + special-link
// creation), grep/compile the least.
//
// Flags: --runs N (default 5; paper used 50), --seed, --csv.

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "trace/mab.hpp"

namespace {

using namespace kosha;

trace::MabPhaseTimes run_level(unsigned level, std::size_t runs, std::uint64_t seed) {
  trace::MabPhaseTimes sum;
  for (std::size_t run = 0; run < runs; ++run) {
    ClusterConfig config;
    config.nodes = 4;  // paper: "the number of nodes was fixed at 4"
    config.kosha.distribution_level = level;
    config.kosha.replicas = 1;
    config.node_capacity_bytes = 64ull << 30;
    config.seed = seed + run * 1000;
    KoshaCluster cluster(config);
    KoshaMount mount(&cluster.daemon(0));

    trace::MabConfig mab;
    mab.seed = seed + run;
    mab.prefix = "r" + std::to_string(run);
    const auto workload = trace::generate_mab(mab);
    sum += trace::run_mab(mount, workload, cluster.clock());
    trace::cleanup_mab(mount, workload);
  }
  sum /= static_cast<double>(runs);
  return sum;
}

std::string overhead(double t, double base) {
  if (base <= 0) return "-";
  return TextTable::pct((t - base) / base, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const kosha::CliArgs args(argc, argv);
  if (const auto err = args.check_known("runs,seed,csv"); !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  std::printf("Table 2: MAB on Kosha, distribution level 1-4 (4 nodes, runs=%zu)\n\n", runs);

  std::vector<kosha::trace::MabPhaseTimes> levels;
  for (unsigned level = 1; level <= 4; ++level) levels.push_back(run_level(level, runs, seed));

  kosha::TextTable table(
      {"Benchmark", "L1", "L2", "ov%", "L3", "ov%", "L4", "ov%"});
  auto phase_row = [&](const char* name, auto select) {
    std::vector<std::string> row{name, kosha::TextTable::fmt(select(levels[0]), 2)};
    for (std::size_t i = 1; i < levels.size(); ++i) {
      row.push_back(kosha::TextTable::fmt(select(levels[i]), 2));
      row.push_back(overhead(select(levels[i]), select(levels[0])));
    }
    table.add_row(std::move(row));
  };
  phase_row("mkdir", [](const auto& t) { return t.mkdir_s; });
  phase_row("copy", [](const auto& t) { return t.copy_s; });
  phase_row("stat", [](const auto& t) { return t.stat_s; });
  phase_row("grep", [](const auto& t) { return t.grep_s; });
  phase_row("compile", [](const auto& t) { return t.compile_s; });
  phase_row("Total", [](const auto& t) { return t.total(); });

  std::fputs(table.to_string().c_str(), stdout);
  if (args.get_bool("csv", false)) std::fputs(table.to_csv().c_str(), stdout);
  return 0;
}

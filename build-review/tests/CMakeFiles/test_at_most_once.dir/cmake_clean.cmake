file(REMOVE_RECURSE
  "CMakeFiles/test_at_most_once.dir/test_at_most_once.cpp.o"
  "CMakeFiles/test_at_most_once.dir/test_at_most_once.cpp.o.d"
  "test_at_most_once"
  "test_at_most_once.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_at_most_once.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#pragma once

// NFS client: issues RPCs to servers across the simulated network.
//
// Destination selection uses the server id embedded in the (opaque) handle.
// Every call charges request and reply messages on the network; calls to a
// down host cost a timeout and fail with kUnreachable — this is the error
// Kosha's transparent fault handling reacts to (paper §4.4).

#include <string_view>
#include <unordered_map>

#include "nfs/nfs_server.hpp"

namespace kosha::nfs {

/// Host -> server registry (the simulation's stand-in for portmap/mountd).
class ServerDirectory {
 public:
  void add(NfsServer* server) { servers_[server->host()] = server; }
  void erase(net::HostId host) { servers_.erase(host); }
  [[nodiscard]] NfsServer* find(net::HostId host) const {
    const auto it = servers_.find(host);
    return it == servers_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<net::HostId, NfsServer*> servers_;
};

class NfsClient {
 public:
  NfsClient(net::SimNetwork* network, const ServerDirectory* directory, net::HostId self);

  [[nodiscard]] net::HostId self() const { return self_; }

  /// Fetch the root handle of a server's export (MOUNT protocol stand-in).
  [[nodiscard]] NfsResult<FileHandle> mount(net::HostId server);

  [[nodiscard]] NfsResult<HandleReply> lookup(FileHandle dir, std::string_view name);
  [[nodiscard]] NfsResult<fs::Attr> getattr(FileHandle obj);
  [[nodiscard]] NfsResult<fs::Attr> set_mode(FileHandle obj, std::uint32_t mode);
  [[nodiscard]] NfsResult<fs::Attr> truncate(FileHandle obj, std::uint64_t size);
  [[nodiscard]] NfsResult<ReadReply> read(FileHandle file, std::uint64_t offset,
                                          std::uint32_t count);
  [[nodiscard]] NfsResult<std::uint32_t> write(FileHandle file, std::uint64_t offset,
                                               std::string_view data);
  [[nodiscard]] NfsResult<HandleReply> create(FileHandle dir, std::string_view name,
                                              std::uint32_t mode = 0644,
                                              std::uint32_t uid = 0);
  [[nodiscard]] NfsResult<HandleReply> mkdir(FileHandle dir, std::string_view name,
                                             std::uint32_t mode = 0755, std::uint32_t uid = 0);
  [[nodiscard]] NfsResult<HandleReply> symlink(FileHandle dir, std::string_view name,
                                               std::string_view target);
  [[nodiscard]] NfsResult<std::string> readlink(FileHandle link);
  [[nodiscard]] NfsResult<Unit> remove(FileHandle dir, std::string_view name);
  [[nodiscard]] NfsResult<Unit> rmdir(FileHandle dir, std::string_view name);
  /// Both directories must live on the same server (always true in Kosha:
  /// files in one directory share a node).
  [[nodiscard]] NfsResult<Unit> rename(FileHandle from_dir, std::string_view from_name,
                                       FileHandle to_dir, std::string_view to_name);
  [[nodiscard]] NfsResult<ReaddirReply> readdir(FileHandle dir);
  [[nodiscard]] NfsResult<FsstatReply> fsstat(net::HostId server);

 private:
  /// Reachability check + request charge; returns the server or null.
  NfsServer* begin_rpc(net::HostId server, std::size_t request_bytes);
  void end_rpc(net::HostId server, std::size_t reply_bytes);
  std::uint32_t next_xid() { return ++xid_; }

  /// Replies are charged with a fixed header estimate plus payload; only
  /// the call direction is fully XDR-encoded (see nfs/wire.hpp).
  static constexpr std::size_t kReplyBytes = 96;

  net::SimNetwork* network_;
  const ServerDirectory* directory_;
  net::HostId self_;
  std::uint32_t xid_ = 0;
};

}  // namespace kosha::nfs

#pragma once

// Simulator self-profiling (DESIGN §9).
//
// Two instruments live here, both deterministic-by-construction in what
// they feed back into the simulation (nothing):
//
//   * SimProfiler — cost accounting for the simulator itself: per-event-
//     category wall-clock self time and counts (where does the *host* CPU
//     go), per-host virtual-time occupancy and queue wait (where does
//     *virtual* time go), and events/sec + NFS ops/sec throughput. Wall
//     clock is read exclusively through wall_now_ns(), whose definition in
//     profile.cpp is the one sanctioned wall-clock seam in the tree
//     (kosha_lint D1 allowlists that file; see tools/lint). The profiler
//     is a pure observer: recording never touches the SimClock, never
//     consumes RNG, and the EventLoop/SimNetwork hot paths hold a nullable
//     pointer resolved at construction, so a profiler-off run is
//     numerically identical to a build without the profiler at all.
//
//   * Causal critical-path analysis over trace spans (tracing.hpp): given
//     the span DAG of a request, walk backwards from each root's end
//     through the child whose interval bounds it, attributing every
//     nanosecond of the root's duration to exactly one span — and through
//     classify_stage() to exactly one pipeline stage (queue wait, service,
//     wire, retry/backoff, failover, replica fan-out, ...). Inputs are
//     virtual-time spans, so same-seed runs produce byte-identical
//     reports.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_clock.hpp"
#include "common/tracing.hpp"

namespace kosha {

class MetricsRegistry;

class SimProfiler {
 public:
  /// Monotonic wall-clock nanoseconds. The ONLY sanctioned wall-clock read
  /// in the repository: the definition lives in profile.cpp, which is the
  /// single file kosha_lint's D1 wall-clock rule allowlists for it. Never
  /// feed the result back into simulation state.
  [[nodiscard]] static std::uint64_t wall_now_ns();

  SimProfiler();

  /// One dispatched event of `category` that took `wall_self_ns` of host
  /// CPU (callback body only, queue management excluded).
  void record_event(const char* category, std::uint64_t wall_self_ns);
  /// `host` was busy serving a request for `busy` of virtual time.
  void add_host_busy(std::uint32_t host, SimDuration busy);
  /// A request waited `wait` of virtual time in `host`'s service queue.
  void add_host_queue_wait(std::uint32_t host, SimDuration wait);
  /// One completed client NFS RPC (feeds ops/sec).
  void note_op();

  struct CategoryStats {
    std::uint64_t count = 0;
    std::uint64_t wall_ns = 0;
  };
  struct HostStats {
    std::int64_t busy_ns = 0;
    std::int64_t queue_ns = 0;
  };

  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] std::uint64_t event_wall_ns() const { return event_wall_ns_; }
  [[nodiscard]] std::uint64_t ops() const { return ops_; }
  [[nodiscard]] const std::map<std::string, CategoryStats, std::less<>>& categories() const {
    return categories_;
  }
  [[nodiscard]] const std::map<std::uint32_t, HostStats>& hosts() const { return hosts_; }
  /// Wall time since construction (or the last reset).
  [[nodiscard]] std::uint64_t wall_elapsed_ns() const;

  /// Forget everything and restart the wall-elapsed origin.
  void reset();

  /// Mirror the accounting into `prof.*` gauges: totals, throughput
  /// (events/sec and ops/sec over wall_elapsed), per-category counts and
  /// wall self time, and virtual-time host occupancy (per-host gauges for
  /// small clusters, aggregates always — a 1k-node sweep should not emit
  /// 1k gauges). Wall-derived gauges vary run to run by nature; everything
  /// else is deterministic.
  void export_to(MetricsRegistry& metrics, SimDuration virtual_now) const;

  /// Hosts at or below this count get individual `prof.host.N.*` gauges.
  static constexpr std::size_t kPerHostGaugeLimit = 32;

 private:
  std::uint64_t wall_origin_ns_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t event_wall_ns_ = 0;
  std::uint64_t ops_ = 0;
  std::map<std::string, CategoryStats, std::less<>> categories_;
  std::map<std::uint32_t, HostStats> hosts_;
};

namespace prof {

/// Map a span name onto the request pipeline stage its self-time belongs
/// to: "client" (mount/POSIX seam), "koshad" (interposition + DHT
/// routing), "failover" (probing the ladder), "rpc_wire" (wire transit +
/// client-side RPC residual), "rpc_timeout", "rpc_backoff", "queue"
/// (service-queue wait), "service" (server execution), "replica"
/// (fan-out), "selfheal" (detector + repair daemon), or "other".
[[nodiscard]] std::string_view classify_stage(std::string_view span_name);

/// One segment of one trace's critical path: `ns` of the trace's makespan
/// attributed to `name` (and its stage).
struct CriticalSlice {
  std::string name;
  std::string_view stage;
  std::int64_t ns = 0;
};

/// The critical path of one root span, in chronological order.
struct TraceCritical {
  std::uint64_t trace_id = 0;
  std::string root;
  std::int64_t total_ns = 0;
  std::vector<CriticalSlice> slices;
};

struct StageTotal {
  std::int64_t ns = 0;
  std::uint64_t slices = 0;
};

/// Flame-style aggregation entry: total self-time of every span whose
/// root-to-span name path is the key (names joined with ';').
struct FlameEntry {
  std::uint64_t count = 0;
  std::int64_t self_ns = 0;
};

struct CriticalPathReport {
  std::vector<TraceCritical> traces;                       // by trace id
  std::map<std::string, StageTotal> stages;                // stage -> critical ns
  std::map<std::string, FlameEntry> flame;                 // path -> self time
  std::int64_t critical_total_ns = 0;                      // sum of trace totals
  std::size_t span_count = 0;
};

/// Reconstruct the span DAG (spans with an unknown parent are treated as
/// roots, so partial streams still analyze) and extract each root's
/// critical path plus the whole-DAG flame aggregation. Deterministic:
/// children are visited in (time, span-id) order and every aggregate is a
/// sorted map.
[[nodiscard]] CriticalPathReport analyze_critical_path(const std::vector<SpanRecord>& spans);

/// Human-readable report: stage breakdown with shares, then the top
/// `flame_top` flame paths by self time. Byte-identical for identical
/// span streams.
[[nodiscard]] std::string render_critical_report(const CriticalPathReport& report,
                                                 std::size_t flame_top = 20);

/// Machine-readable twin of render_critical_report (same determinism).
[[nodiscard]] std::string critical_report_json(const CriticalPathReport& report,
                                               std::size_t flame_top = 50);

}  // namespace prof

}  // namespace kosha

// kosha_prof — causal critical-path analysis and perf-trajectory gating.
//
// Two modes:
//
//   --trace FILE     analyze a trace stream (export_trace_jsonl output):
//                    reconstruct each request's span DAG, extract its
//                    critical path, and print the per-stage breakdown plus
//                    the flame-style aggregation. Deterministic: the same
//                    span stream renders byte-identically. --json emits the
//                    machine-readable twin; --out FILE writes it to a file
//                    (for committing BENCH baselines).
//
//   --base FILE --current FILE
//                    compare two benchmark JSON dumps (BENCH_scale.json /
//                    BENCH_sim_profile.json / micro_bench --metrics-out).
//                    Wall-clock-derived keys (containing "wall") are
//                    skipped; throughput keys (ending "_per_sec") gate on
//                    --min-ratio (current >= ratio * base, default 0.5 so
//                    only large regressions fail on noisy CI runners);
//                    every other number gates on relative --tol (default
//                    0.25). Exit 1 on any regression, listing each one.
//
// The compare mode is the committed perf trajectory's teeth: CI runs the
// sweep benches and diffs against results/*.baseline.json with this tool.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/profile.hpp"
#include "common/tracing.hpp"

namespace {

using namespace kosha;

bool slurp(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int analyze(const CliArgs& args) {
  const std::string path = args.get_string("trace", "");
  std::string text;
  if (!slurp(path, text)) {
    std::fprintf(stderr, "kosha_prof: cannot open %s\n", path.c_str());
    return 1;
  }
  const auto spans = parse_trace_jsonl(text);
  if (!spans.ok()) {
    std::fprintf(stderr, "kosha_prof: %s: %s\n", path.c_str(), spans.error().c_str());
    return 1;
  }
  const auto report = prof::analyze_critical_path(spans.value());
  const std::size_t flame_top =
      static_cast<std::size_t>(args.get_int("flame-top", args.get_bool("json", false) ? 50 : 20));
  const std::string rendered = args.get_bool("json", false)
                                   ? prof::critical_report_json(report, flame_top)
                                   : prof::render_critical_report(report, flame_top);
  if (const std::string out = args.get_string("out", ""); !out.empty()) {
    std::ofstream f(out, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "kosha_prof: cannot write %s\n", out.c_str());
      return 1;
    }
    f << rendered;
    return 0;
  }
  std::fputs(rendered.c_str(), stdout);
  return 0;
}

/// True when this metric is wall-clock-derived and therefore varies run to
/// run by nature: never gate on it.
bool wall_derived(const std::string& key) { return key.find("wall") != std::string::npos; }

/// True when this metric is a throughput figure gated by min-ratio rather
/// than symmetric tolerance (faster is always fine).
bool throughput_key(const std::string& key) {
  constexpr std::string_view suffix = "_per_sec";
  return key.size() >= suffix.size() &&
         key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0;
}

struct CompareState {
  double min_ratio = 0.5;
  double tol = 0.25;
  std::vector<std::string> regressions;
  std::vector<std::string> warnings;
};

void compare_values(const std::string& path, const JsonValue& base, const JsonValue& cur,
                    CompareState& st);

void compare_objects(const std::string& path, const JsonValue& base, const JsonValue& cur,
                     CompareState& st) {
  for (const auto& [key, bval] : base.members()) {
    const std::string child = path.empty() ? key : path + "." + key;
    const JsonValue* cval = cur.find(key);
    if (cval == nullptr) {
      st.warnings.push_back(child + ": missing from current (schema drift?)");
      continue;
    }
    compare_values(child, bval, *cval, st);
  }
}

void compare_values(const std::string& path, const JsonValue& base, const JsonValue& cur,
                    CompareState& st) {
  if (base.is_object() && cur.is_object()) {
    compare_objects(path, base, cur, st);
    return;
  }
  if (base.is_array() && cur.is_array()) {
    // Arrays (e.g. flame entries, sweep points) are compared positionally;
    // a length change is schema drift worth flagging, not a regression.
    if (base.items().size() != cur.items().size()) {
      st.warnings.push_back(path + ": array length " +
                            std::to_string(base.items().size()) + " -> " +
                            std::to_string(cur.items().size()));
    }
    const std::size_t n = std::min(base.items().size(), cur.items().size());
    for (std::size_t i = 0; i < n; ++i) {
      compare_values(path + "[" + std::to_string(i) + "]", base.items()[i], cur.items()[i], st);
    }
    return;
  }
  if (!base.is_number() || !cur.is_number()) return;  // strings/ids: informational only
  const std::string leaf = path.substr(path.rfind('.') + 1);
  if (wall_derived(leaf)) return;
  const double b = base.as_number();
  const double c = cur.as_number();
  char line[256];
  if (throughput_key(leaf)) {
    if (b > 0.0 && c < b * st.min_ratio) {
      std::snprintf(line, sizeof(line), "%s: throughput %.6g -> %.6g (< %.0f%% of baseline)",
                    path.c_str(), b, c, st.min_ratio * 100.0);
      st.regressions.emplace_back(line);
    }
    return;
  }
  const double denom = std::max(std::fabs(b), 1e-12);
  if (std::fabs(c - b) / denom > st.tol) {
    std::snprintf(line, sizeof(line), "%s: %.6g -> %.6g (tolerance %.0f%%)", path.c_str(), b, c,
                  st.tol * 100.0);
    st.regressions.emplace_back(line);
  }
}

int compare(const CliArgs& args) {
  const std::string base_path = args.get_string("base", "");
  const std::string cur_path = args.get_string("current", "");
  std::string base_text;
  std::string cur_text;
  if (!slurp(base_path, base_text)) {
    std::fprintf(stderr, "kosha_prof: cannot open %s\n", base_path.c_str());
    return 1;
  }
  if (!slurp(cur_path, cur_text)) {
    std::fprintf(stderr, "kosha_prof: cannot open %s\n", cur_path.c_str());
    return 1;
  }
  const auto base = parse_json(base_text);
  if (!base.ok()) {
    std::fprintf(stderr, "kosha_prof: %s: %s\n", base_path.c_str(), base.error().c_str());
    return 1;
  }
  const auto cur = parse_json(cur_text);
  if (!cur.ok()) {
    std::fprintf(stderr, "kosha_prof: %s: %s\n", cur_path.c_str(), cur.error().c_str());
    return 1;
  }

  CompareState st;
  st.min_ratio = args.get_double("min-ratio", 0.5);
  st.tol = args.get_double("tol", 0.25);
  compare_values("", base.value(), cur.value(), st);

  for (const std::string& w : st.warnings) {
    std::fprintf(stderr, "kosha_prof: warning: %s\n", w.c_str());
  }
  if (!st.regressions.empty()) {
    std::fprintf(stderr, "kosha_prof: %zu regression(s) vs %s:\n", st.regressions.size(),
                 base_path.c_str());
    for (const std::string& r : st.regressions) {
      std::fprintf(stderr, "  %s\n", r.c_str());
    }
    return 1;
  }
  std::printf("kosha_prof: %s within tolerance of %s (min-ratio %.2f, tol %.2f)\n",
              cur_path.c_str(), base_path.c_str(), st.min_ratio, st.tol);
  return 0;
}

int usage(int code) {
  std::fputs(
      "usage: kosha_prof (--trace FILE [--json] [--out FILE] [--flame-top N]\n"
      "                   | --base FILE --current FILE [--min-ratio R] [--tol T])\n"
      "  --trace FILE       critical-path analysis of a trace stream (JSONL)\n"
      "  --json             machine-readable report instead of the table\n"
      "  --out FILE         write the report to FILE instead of stdout\n"
      "  --flame-top N      flame paths to keep (default 20 table / 50 json)\n"
      "  --base/--current   compare two benchmark JSON dumps; exit 1 on regression\n"
      "  --min-ratio R      throughput (*_per_sec) must stay >= R * baseline (0.5)\n"
      "  --tol T            relative tolerance for other numbers (0.25)\n",
      code == 0 ? stdout : stderr);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const kosha::CliArgs args(argc, argv);
    if (const std::string err = args.check_known(
            "trace,json,out,flame-top,base,current,min-ratio,tol,help");
        !err.empty()) {
      std::fprintf(stderr, "kosha_prof: %s\n", err.c_str());
      return usage(2);
    }
    if (args.get_bool("help", false)) return usage(0);
    if (args.has("trace")) return analyze(args);
    if (args.has("base") && args.has("current")) return compare(args);
    return usage(2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kosha_prof: %s\n", e.what());
    return 2;
  }
}

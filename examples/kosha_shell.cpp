// kosha_shell — an interactive (or scriptable: pipe commands on stdin)
// shell driving a live Kosha cluster. Useful for poking at placement,
// failures, and recovery by hand.
//
//   $ build/examples/kosha_shell <<'EOF'
//   mkdir /alice
//   write /alice/hi hello world
//   cat /alice/hi
//   where /alice/hi
//   fail 3
//   cat /alice/hi
//   audit
//   EOF

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "kosha/audit.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace {

using namespace kosha;

void print_help() {
  std::printf(
      "commands:\n"
      "  mkdir <path>            create directories (mkdir -p)\n"
      "  write <path> <text...>  write a file\n"
      "  cat <path>              print a file\n"
      "  ls <path>               list a directory\n"
      "  stat <path>             show attributes\n"
      "  rm <path>               remove a file\n"
      "  rmdir <path>            remove an empty directory\n"
      "  mv <from> <to>          rename\n"
      "  where <path>            show which host stores the primary copy\n"
      "  nodes                   list hosts, liveness, utilization\n"
      "  fail <host> | revive <host> | retire <host> | add\n"
      "  audit                   run the consistency audit\n"
      "  stats                   daemon counters\n"
      "  help | quit\n");
}

void print_status(const char* op, nfs::NfsStat status) {
  std::printf("%s: %s\n", op, nfs::to_string(status));
}

}  // namespace

int main() {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.distribution_level = 2;
  config.kosha.replicas = 2;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  std::printf("kosha_shell: %zu nodes, level %u, %u replicas. 'help' for commands.\n",
              cluster.live_hosts().size(), config.kosha.distribution_level,
              config.kosha.replicas);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream input(line);
    std::string command;
    if (!(input >> command) || command[0] == '#') continue;
    std::string arg1;
    input >> arg1;

    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      print_help();
    } else if (command == "mkdir") {
      const auto result = mount.mkdir_p(arg1);
      if (!result.ok()) print_status("mkdir", result.error());
    } else if (command == "write") {
      std::string text;
      std::getline(input, text);
      if (!text.empty() && text[0] == ' ') text.erase(0, 1);
      const auto result = mount.write_file(arg1, text);
      if (!result.ok()) print_status("write", result.error());
    } else if (command == "cat") {
      const auto content = mount.read_file(arg1);
      if (content.ok()) {
        std::printf("%s\n", content->c_str());
      } else {
        print_status("cat", content.error());
      }
    } else if (command == "ls") {
      const auto listing = mount.list(arg1.empty() ? "/" : arg1);
      if (!listing.ok()) {
        print_status("ls", listing.error());
        continue;
      }
      for (const auto& entry : listing.value()) {
        std::printf("  %-4s %s\n", entry.type == fs::FileType::kDirectory ? "dir" : "file",
                    entry.name.c_str());
      }
    } else if (command == "stat") {
      const auto attr = mount.stat(arg1);
      if (attr.ok()) {
        std::printf("  type=%s size=%llu mode=%o uid=%u\n",
                    attr->type == fs::FileType::kDirectory ? "dir" : "file",
                    static_cast<unsigned long long>(attr->size), attr->mode, attr->uid);
      } else {
        print_status("stat", attr.error());
      }
    } else if (command == "rm") {
      const auto result = mount.remove(arg1);
      if (!result.ok()) print_status("rm", result.error());
    } else if (command == "rmdir") {
      const auto result = mount.rmdir(arg1);
      if (!result.ok()) print_status("rmdir", result.error());
    } else if (command == "mv") {
      std::string arg2;
      input >> arg2;
      const auto result = mount.rename(arg1, arg2);
      if (!result.ok()) print_status("mv", result.error());
    } else if (command == "where") {
      const auto vh = mount.resolve(arg1);
      if (!vh.ok()) {
        print_status("where", vh.error());
        continue;
      }
      const auto* entry = cluster.daemon(0).handle_table().find(*vh);
      std::printf("  host %u, stored path %s\n", entry->real.server,
                  entry->stored_path.c_str());
    } else if (command == "nodes") {
      for (net::HostId host = 0; host < cluster.network().host_count(); ++host) {
        const bool up = cluster.is_up(host);
        std::printf("  host %u: %s", host, up ? "up  " : "down");
        if (up) {
          std::printf("  %6.1f%% used, primary for %zu anchors",
                      100.0 * cluster.server(host).store().utilization(),
                      cluster.replicas(host).primaries().size());
        }
        std::printf("\n");
      }
    } else if (command == "fail") {
      const auto host = static_cast<net::HostId>(std::stoul(arg1));
      if (host == 0) {
        std::printf("host 0 runs this shell's daemon; pick another\n");
      } else {
        cluster.fail_node(host);
        std::printf("host %s crashed\n", arg1.c_str());
      }
    } else if (command == "revive") {
      cluster.revive_node(static_cast<net::HostId>(std::stoul(arg1)));
      std::printf("host %s revived (purged, fresh node id)\n", arg1.c_str());
    } else if (command == "retire") {
      const auto host = static_cast<net::HostId>(std::stoul(arg1));
      if (host == 0) {
        std::printf("host 0 runs this shell's daemon; pick another\n");
      } else {
        cluster.retire_node(host);
        std::printf("host %s retired gracefully\n", arg1.c_str());
      }
    } else if (command == "add") {
      const auto host = cluster.add_node();
      std::printf("host %u joined\n", host);
    } else if (command == "audit") {
      std::printf("%s", audit_cluster(cluster).to_string().c_str());
      std::printf("\n");
    } else if (command == "stats") {
      const auto& stats = cluster.daemon(0).stats();
      std::printf("  rpcs=%llu remote=%llu dht_lookups=%llu hops=%llu failovers=%llu "
                  "redirects=%llu\n",
                  static_cast<unsigned long long>(stats.rpcs_forwarded),
                  static_cast<unsigned long long>(stats.remote_rpcs),
                  static_cast<unsigned long long>(stats.dht_lookups),
                  static_cast<unsigned long long>(stats.dht_hops),
                  static_cast<unsigned long long>(stats.failovers),
                  static_cast<unsigned long long>(stats.redirects));
    } else {
      std::printf("unknown command '%s' ('help' lists commands)\n", command.c_str());
    }
  }
  return 0;
}

#include "kosha/cluster.hpp"

#include <stdexcept>

#include "kosha/placement.hpp"

namespace kosha {

KoshaCluster::KoshaCluster(ClusterConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      network_(config_.network, &clock_),
      overlay_(config_.kosha.pastry, &network_) {
  if (const std::string err = config_.kosha.validate(); !err.empty()) {
    throw std::invalid_argument("KoshaConfig: " + err);
  }
  runtime_.clock = &clock_;
  runtime_.network = &network_;
  runtime_.overlay = &overlay_;
  runtime_.servers = &servers_;
  runtime_.config = config_.kosha;
  runtime_.config.rng_seed = config_.seed;

  for (std::size_t i = 0; i < config_.nodes; ++i) {
    const std::uint64_t capacity =
        i < config_.capacities.size() ? config_.capacities[i] : config_.node_capacity_bytes;
    (void)add_node(capacity);
  }
}

KoshaCluster::~KoshaCluster() = default;

KoshaCluster::Node& KoshaCluster::node_ref(net::HostId host) {
  if (host >= nodes_.size() || nodes_[host] == nullptr) {
    throw std::invalid_argument("unknown host");
  }
  return *nodes_[host];
}

const KoshaCluster::Node& KoshaCluster::node_ref(net::HostId host) const {
  if (host >= nodes_.size() || nodes_[host] == nullptr) {
    throw std::invalid_argument("unknown host");
  }
  return *nodes_[host];
}

void KoshaCluster::join_overlay(Node& node) {
  const bool first = overlay_.ring().empty();
  overlay_.join(node.id, node.host);
  // The join's own leaf-set notification fired before the callback could be
  // registered; run it by hand, then subscribe for future changes.
  node.replicas->on_neighbors_changed();
  ReplicaManager* rm = node.replicas.get();
  overlay_.set_neighbor_callback(node.id, [rm] { rm->on_neighbors_changed(); });
  if (first) {
    // Bootstrap the virtual root: the first node owns every key, including
    // the root directory's. Create its anchor container and register it;
    // later ownership changes migrate it like any other anchor.
    (void)node.server->store().mkdir_p(root_stored_path());
    rm->register_primary(root_stored_path(), "/");
  }
}

net::HostId KoshaCluster::add_node(std::uint64_t capacity_bytes) {
  if (capacity_bytes == 0) capacity_bytes = config_.node_capacity_bytes;
  const net::HostId host = network_.add_host();
  auto node = std::make_unique<Node>();
  node->host = host;
  node->id = rng_.next_id();
  fs::FsConfig fs_config;
  fs_config.capacity_bytes = capacity_bytes;
  node->server = std::make_unique<nfs::NfsServer>(host, fs_config, config_.costs, &clock_);
  servers_.add(node->server.get());
  node->replicas = std::make_unique<ReplicaManager>(&runtime_, host, node->id);
  runtime_.replica_managers[host] = node->replicas.get();
  node->boot = next_boot_++;
  node->daemon = std::make_unique<Koshad>(&runtime_, host, node->boot);
  if (nodes_.size() <= host) nodes_.resize(host + 1);
  nodes_[host] = std::move(node);
  join_overlay(*nodes_[host]);
  return host;
}

void KoshaCluster::fail_node(net::HostId host) {
  Node& node = node_ref(host);
  if (!node.alive) return;
  node.alive = false;
  network_.set_up(host, false);
  // Drop the server from the directory too: a dead host must fail RPCs via
  // the clean unreachable path, never through a stale server pointer.
  servers_.erase(host);
  runtime_.replica_managers.erase(host);
  overlay_.fail(node.id);  // triggers repair, promotion, re-replication
}

void KoshaCluster::retire_node(net::HostId host) {
  Node& node = node_ref(host);
  if (!node.alive) return;
  // Hand over all primary content while the node is still reachable, then
  // depart like a failure (the overlay handles both identically; the data
  // is already gone from this node).
  node.replicas->evacuate();
  fail_node(host);
}

void KoshaCluster::revive_node(net::HostId host) {
  Node& node = node_ref(host);
  if (node.alive) return;
  // "All Kosha data on a revived node is purged" and it rejoins under a
  // fresh identifier (paper §4.3.2). The crash also lost the server's
  // volatile state: its duplicate-request cache must not survive into the
  // next life, or it could answer for requests the reborn store never saw.
  node.server->store().purge();
  node.server->clear_drc();
  node.id = rng_.next_id();
  node.alive = true;
  network_.set_up(host, true);
  servers_.add(node.server.get());
  node.replicas = std::make_unique<ReplicaManager>(&runtime_, host, node.id);
  runtime_.replica_managers[host] = node.replicas.get();
  // A fresh boot verifier: the reborn daemon's NfsClient restarts xids at
  // 0, and other servers' DRCs still hold (host, low-xid) entries from the
  // previous incarnation. The new verifier makes those entries inert.
  node.boot = next_boot_++;
  node.daemon = std::make_unique<Koshad>(&runtime_, host, node.boot);
  join_overlay(node);
}

std::vector<net::HostId> KoshaCluster::live_hosts() const {
  std::vector<net::HostId> out;
  for (const auto& node : nodes_) {
    if (node != nullptr && node->alive) out.push_back(node->host);
  }
  return out;
}

Koshad& KoshaCluster::daemon(net::HostId host) { return *node_ref(host).daemon; }

nfs::NfsServer& KoshaCluster::server(net::HostId host) { return *node_ref(host).server; }

ReplicaManager& KoshaCluster::replicas(net::HostId host) { return *node_ref(host).replicas; }

pastry::NodeId KoshaCluster::node_id(net::HostId host) const { return node_ref(host).id; }

}  // namespace kosha

file(REMOVE_RECURSE
  "CMakeFiles/test_retirement.dir/test_retirement.cpp.o"
  "CMakeFiles/test_retirement.dir/test_retirement.cpp.o.d"
  "test_retirement"
  "test_retirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_scalability.
# This may be replaced when dependencies are built.

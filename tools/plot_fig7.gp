# Figure 7 — file availability over 840 hours for replica counts 0-4.
# Input: results/fig7.csv (from fig7_availability --csv).
set datafile separator ','
set terminal svg size 900,480
set output 'results/fig7.svg'
set xlabel 'hour'
set ylabel 'files available (%)'
set yrange [85:100.5]
set key bottom right
plot 'results/fig7.csv' using 1:2 with lines title 'Kosha-0', \
     '' using 1:3 with lines title 'Kosha-1', \
     '' using 1:4 with lines title 'Kosha-2', \
     '' using 1:5 with lines title 'Kosha-3', \
     '' using 1:6 with lines title 'Kosha-4'

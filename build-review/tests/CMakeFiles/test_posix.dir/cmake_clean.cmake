file(REMOVE_RECURSE
  "CMakeFiles/test_posix.dir/test_posix.cpp.o"
  "CMakeFiles/test_posix.dir/test_posix.cpp.o.d"
  "test_posix"
  "test_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

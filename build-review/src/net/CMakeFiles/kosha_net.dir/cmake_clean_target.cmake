file(REMOVE_RECURSE
  "libkosha_net.a"
)

#include "common/profile.hpp"

// THE wall-clock seam. kosha_lint's D1 rule forbids wall-clock reads
// everywhere else in the tree; this file is allowlisted (tools/lint) so
// the profiler can measure where host CPU time goes. The contract: wall
// readings flow *out* (metrics, reports) and never back into simulation
// state, so determinism of the simulated timeline is untouched.

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>

#include "common/json.hpp"
#include "common/metrics.hpp"

namespace kosha {

std::uint64_t SimProfiler::wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SimProfiler::SimProfiler() : wall_origin_ns_(wall_now_ns()) {}

void SimProfiler::record_event(const char* category, std::uint64_t wall_self_ns) {
  ++events_;
  event_wall_ns_ += wall_self_ns;
  CategoryStats& cat = categories_[category != nullptr ? category : "event"];
  ++cat.count;
  cat.wall_ns += wall_self_ns;
}

void SimProfiler::add_host_busy(std::uint32_t host, SimDuration busy) {
  hosts_[host].busy_ns += busy.ns;
}

void SimProfiler::add_host_queue_wait(std::uint32_t host, SimDuration wait) {
  hosts_[host].queue_ns += wait.ns;
}

void SimProfiler::note_op() { ++ops_; }

std::uint64_t SimProfiler::wall_elapsed_ns() const {
  const std::uint64_t now = wall_now_ns();
  return now > wall_origin_ns_ ? now - wall_origin_ns_ : 0;
}

void SimProfiler::reset() {
  events_ = 0;
  event_wall_ns_ = 0;
  ops_ = 0;
  categories_.clear();
  hosts_.clear();
  wall_origin_ns_ = wall_now_ns();
}

void SimProfiler::export_to(MetricsRegistry& metrics, SimDuration virtual_now) const {
  const std::uint64_t elapsed = wall_elapsed_ns();
  const double elapsed_s = static_cast<double>(elapsed) * 1e-9;
  metrics.gauge("prof.events")->set(static_cast<double>(events_));
  metrics.gauge("prof.ops")->set(static_cast<double>(ops_));
  metrics.gauge("prof.virtual_ms")->set(virtual_now.to_millis());
  metrics.gauge("prof.wall_ms")->set(static_cast<double>(elapsed) * 1e-6);
  metrics.gauge("prof.event_wall_ms")->set(static_cast<double>(event_wall_ns_) * 1e-6);
  metrics.gauge("prof.events_per_sec")
      ->set(elapsed_s > 0 ? static_cast<double>(events_) / elapsed_s : 0.0);
  metrics.gauge("prof.ops_per_sec")
      ->set(elapsed_s > 0 ? static_cast<double>(ops_) / elapsed_s : 0.0);

  for (const auto& [name, cat] : categories_) {
    const std::string prefix = "prof.cat." + name;
    metrics.gauge(prefix + ".count")->set(static_cast<double>(cat.count));
    metrics.gauge(prefix + ".wall_us")->set(static_cast<double>(cat.wall_ns) * 1e-3);
  }

  // Virtual-time occupancy. Aggregates always; per-host gauges only for
  // small clusters so a 1k-node sweep stays readable.
  std::int64_t busy_total = 0;
  std::int64_t busy_max = 0;
  std::int64_t queue_total = 0;
  std::int64_t queue_max = 0;
  for (const auto& [host, hs] : hosts_) {
    (void)host;
    busy_total += hs.busy_ns;
    busy_max = std::max(busy_max, hs.busy_ns);
    queue_total += hs.queue_ns;
    queue_max = std::max(queue_max, hs.queue_ns);
  }
  metrics.gauge("prof.host.count")->set(static_cast<double>(hosts_.size()));
  metrics.gauge("prof.host.busy_total_ms")->set(static_cast<double>(busy_total) * 1e-6);
  metrics.gauge("prof.host.busy_max_ms")->set(static_cast<double>(busy_max) * 1e-6);
  metrics.gauge("prof.host.queue_total_ms")->set(static_cast<double>(queue_total) * 1e-6);
  metrics.gauge("prof.host.queue_max_ms")->set(static_cast<double>(queue_max) * 1e-6);
  if (hosts_.size() <= kPerHostGaugeLimit) {
    for (const auto& [host, hs] : hosts_) {
      const std::string prefix = "prof.host." + std::to_string(host);
      metrics.gauge(prefix + ".busy_ms")->set(static_cast<double>(hs.busy_ns) * 1e-6);
      metrics.gauge(prefix + ".queue_ms")->set(static_cast<double>(hs.queue_ns) * 1e-6);
    }
  }
}

namespace prof {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace

std::string_view classify_stage(std::string_view span_name) {
  if (starts_with(span_name, "mount.") || starts_with(span_name, "posix.")) return "client";
  if (span_name == "koshad.failover") return "failover";
  if (starts_with(span_name, "koshad.")) return "koshad";
  if (span_name == "net.queue") return "queue";
  if (span_name == "rpc.timeout") return "rpc_timeout";
  if (span_name == "rpc.backoff") return "rpc_backoff";
  // "nfs.CREATE"-style client RPC spans (wire.cpp rpc_span_name) and the
  // generic "rpc." residual both count as wire time.
  if (starts_with(span_name, "rpc.") || starts_with(span_name, "nfs.")) return "rpc_wire";
  if (starts_with(span_name, "server.")) return "service";
  if (starts_with(span_name, "replica.")) return "replica";
  if (starts_with(span_name, "fd.") || starts_with(span_name, "repair.")) return "selfheal";
  return "other";
}

namespace {

using ChildMap = std::map<std::uint64_t, std::vector<const SpanRecord*>>;

/// Attribute the interval [lo, hi] of `s` among `s` itself and its
/// children: walking backwards from hi, each child whose (clamped)
/// interval ends at or before the unattributed frontier owns its own
/// interval (recursively) and the gap above it belongs to `s`. Children
/// overlapping already-attributed time are skipped — in a causal DAG the
/// later-ending child is what bounded the parent's completion.
void walk_critical(const SpanRecord& s, const ChildMap& children, std::int64_t lo,
                   std::int64_t hi, std::vector<CriticalSlice>& out) {
  std::int64_t t = hi;
  const auto it = children.find(s.span_id);
  if (it != children.end()) {
    std::vector<const SpanRecord*> kids = it->second;
    std::sort(kids.begin(), kids.end(), [](const SpanRecord* a, const SpanRecord* b) {
      if (a->end_ns != b->end_ns) return a->end_ns > b->end_ns;
      return a->span_id > b->span_id;
    });
    for (const SpanRecord* k : kids) {
      if (k->end_ns > t) continue;  // overlaps attributed time: off the path
      const std::int64_t kend = k->end_ns;
      const std::int64_t kstart = std::max(k->start_ns, lo);
      if (kstart >= t) continue;  // no room left below the frontier
      if (t > kend) out.push_back({s.name, classify_stage(s.name), t - kend});
      walk_critical(*k, children, kstart, kend, out);
      t = kstart;
      if (t <= lo) break;
    }
  }
  if (t > lo) out.push_back({s.name, classify_stage(s.name), t - lo});
}

/// Flame aggregation: every span's self time (duration minus the union of
/// its children's clamped intervals) keyed by the root-to-span name path.
void walk_flame(const SpanRecord& s, const ChildMap& children, std::int64_t lo,
                std::int64_t hi, const std::string& parent_path,
                std::map<std::string, FlameEntry>& flame) {
  const std::string path =
      parent_path.empty() ? s.name : parent_path + ";" + s.name;
  std::int64_t covered = 0;
  const auto it = children.find(s.span_id);
  if (it != children.end()) {
    std::vector<std::pair<std::int64_t, std::int64_t>> intervals;
    intervals.reserve(it->second.size());
    for (const SpanRecord* k : it->second) {
      const std::int64_t a = std::max(k->start_ns, lo);
      const std::int64_t b = std::min(k->end_ns, hi);
      if (a < b) intervals.emplace_back(a, b);
      walk_flame(*k, children, std::max(k->start_ns, lo), std::min(k->end_ns, hi), path,
                 flame);
    }
    std::sort(intervals.begin(), intervals.end());
    std::int64_t cursor = lo;
    for (const auto& [a, b] : intervals) {
      const std::int64_t from = std::max(a, cursor);
      if (b > from) covered += b - from;
      cursor = std::max(cursor, b);
    }
  }
  FlameEntry& entry = flame[path];
  ++entry.count;
  entry.self_ns += std::max<std::int64_t>(0, (hi - lo) - covered);
}

}  // namespace

CriticalPathReport analyze_critical_path(const std::vector<SpanRecord>& spans) {
  CriticalPathReport report;
  report.span_count = spans.size();

  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) by_id.emplace(s.span_id, &s);
  ChildMap children;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent_id != 0 && by_id.count(s.parent_id) > 0) {
      children[s.parent_id].push_back(&s);
    } else {
      // True roots and orphans (parent missing from the stream) both
      // anchor an analysis tree, so partial captures still work.
      roots.push_back(&s);
    }
  }
  for (auto& [id, kids] : children) {
    (void)id;
    std::sort(kids.begin(), kids.end(), [](const SpanRecord* a, const SpanRecord* b) {
      if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
      return a->span_id < b->span_id;
    });
  }
  std::sort(roots.begin(), roots.end(), [](const SpanRecord* a, const SpanRecord* b) {
    if (a->trace_id != b->trace_id) return a->trace_id < b->trace_id;
    return a->span_id < b->span_id;
  });

  for (const SpanRecord* root : roots) {
    TraceCritical trace;
    trace.trace_id = root->trace_id;
    trace.root = root->name;
    trace.total_ns = std::max<std::int64_t>(0, root->end_ns - root->start_ns);

    std::vector<CriticalSlice> slices;
    walk_critical(*root, children, root->start_ns, root->end_ns, slices);
    std::reverse(slices.begin(), slices.end());  // emitted end -> start
    // Merge adjacent slices of the same span (gaps between consecutive
    // children both belong to the parent).
    for (const CriticalSlice& slice : slices) {
      if (!trace.slices.empty() && trace.slices.back().name == slice.name) {
        trace.slices.back().ns += slice.ns;
      } else {
        trace.slices.push_back(slice);
      }
    }

    for (const CriticalSlice& slice : trace.slices) {
      StageTotal& stage = report.stages[std::string(slice.stage)];
      stage.ns += slice.ns;
      ++stage.slices;
    }
    report.critical_total_ns += trace.total_ns;
    report.traces.push_back(std::move(trace));

    walk_flame(*root, children, root->start_ns, root->end_ns, "", report.flame);
  }
  return report;
}

namespace {

/// Flame entries by self time (descending), path as the tie-break.
std::vector<std::pair<std::string, FlameEntry>> top_flame(const CriticalPathReport& report,
                                                          std::size_t n) {
  std::vector<std::pair<std::string, FlameEntry>> rows(report.flame.begin(),
                                                       report.flame.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self_ns != b.second.self_ns) return a.second.self_ns > b.second.self_ns;
    return a.first < b.first;
  });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

std::vector<std::pair<std::string, StageTotal>> stages_by_time(
    const CriticalPathReport& report) {
  std::vector<std::pair<std::string, StageTotal>> rows(report.stages.begin(),
                                                       report.stages.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.ns != b.second.ns) return a.second.ns > b.second.ns;
    return a.first < b.first;
  });
  return rows;
}

}  // namespace

std::string render_critical_report(const CriticalPathReport& report, std::size_t flame_top) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "critical-path analysis: %zu trace(s), %zu spans, total %.3f ms\n\n",
                report.traces.size(), report.span_count,
                static_cast<double>(report.critical_total_ns) * 1e-6);
  out += line;

  out += "stage breakdown (share of critical path):\n";
  const double total = static_cast<double>(std::max<std::int64_t>(1, report.critical_total_ns));
  for (const auto& [name, stage] : stages_by_time(report)) {
    std::snprintf(line, sizeof(line), "  %-12s %6.1f%% %12.3f ms %8llu slice(s)\n",
                  name.c_str(), 100.0 * static_cast<double>(stage.ns) / total,
                  static_cast<double>(stage.ns) * 1e-6,
                  static_cast<unsigned long long>(stage.slices));
    out += line;
  }

  const auto rows = top_flame(report, flame_top);
  if (!rows.empty()) {
    out += "\nflame paths (self time, top " + std::to_string(rows.size()) + "):\n";
    for (const auto& [path, entry] : rows) {
      std::snprintf(line, sizeof(line), "  %12.3f ms %8llu x  %s\n",
                    static_cast<double>(entry.self_ns) * 1e-6,
                    static_cast<unsigned long long>(entry.count), path.c_str());
      out += line;
    }
  }
  return out;
}

std::string critical_report_json(const CriticalPathReport& report, std::size_t flame_top) {
  const double total = static_cast<double>(std::max<std::int64_t>(1, report.critical_total_ns));
  std::string out = "{\n";
  out += "  \"traces\": " + json_number(static_cast<double>(report.traces.size())) + ",\n";
  out += "  \"spans\": " + json_number(static_cast<double>(report.span_count)) + ",\n";
  out += "  \"critical_ns\": " + json_number(static_cast<double>(report.critical_total_ns)) +
         ",\n";
  out += "  \"stages\": {";
  bool first = true;
  for (const auto& [name, stage] : report.stages) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + json_escape(name) + "\": {\"ns\": " +
           json_number(static_cast<double>(stage.ns)) +
           ", \"share\": " + json_number(static_cast<double>(stage.ns) / total) +
           ", \"slices\": " + json_number(static_cast<double>(stage.slices)) + "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"flame\": [";
  first = true;
  for (const auto& [path, entry] : top_flame(report, flame_top)) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"path\": \"" + json_escape(path) +
           "\", \"count\": " + json_number(static_cast<double>(entry.count)) +
           ", \"self_ns\": " + json_number(static_cast<double>(entry.self_ns)) + "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace prof

}  // namespace kosha

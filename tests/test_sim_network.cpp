// Simulated network tests: latency charging, byte accounting, liveness,
// and timeouts.

#include <gtest/gtest.h>

#include "net/sim_network.hpp"

namespace kosha::net {
namespace {

TEST(SimNetwork, AddHostsStartUp) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(network.host_count(), 2u);
  EXPECT_TRUE(network.is_up(a));
  network.set_up(a, false);
  EXPECT_FALSE(network.is_up(a));
}

TEST(SimNetwork, RemoteMessageChargesHopLatency) {
  SimClock clock;
  NetworkConfig config;
  config.hop_latency = SimDuration::micros(100);
  config.per_byte = SimDuration::nanos(0);
  SimNetwork network(config, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  network.charge_message(a, b);
  EXPECT_EQ(clock.now().ns, SimDuration::micros(100).ns);
  EXPECT_EQ(network.stats().messages, 1u);
}

TEST(SimNetwork, LocalMessageChargesLoopbackLatency) {
  SimClock clock;
  NetworkConfig config;
  config.hop_latency = SimDuration::micros(100);
  config.local_latency = SimDuration::micros(10);
  config.per_byte = SimDuration::nanos(0);
  SimNetwork network(config, &clock);
  const HostId a = network.add_host();
  network.charge_message(a, a);
  EXPECT_EQ(clock.now().ns, SimDuration::micros(10).ns);
}

TEST(SimNetwork, PayloadBytesCharged) {
  SimClock clock;
  NetworkConfig config;
  config.hop_latency = SimDuration::micros(0);
  config.local_latency = SimDuration::micros(0);
  config.per_byte = SimDuration::nanos(80);
  SimNetwork network(config, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  network.charge_message(a, b, 1000);
  EXPECT_EQ(clock.now().ns, 80'000);
  EXPECT_EQ(network.stats().bytes, 1000u);
}

TEST(SimNetwork, RttIsTwoMessages) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  network.charge_rtt(a, b, 64);
  EXPECT_EQ(network.stats().messages, 2u);
  EXPECT_EQ(network.stats().bytes, 64u);  // reply payload not counted
}

TEST(SimNetwork, OverlayHopCountsOnlyRemote) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  network.charge_overlay_hop(a, a);
  EXPECT_EQ(network.stats().overlay_hops, 0u);
  network.charge_overlay_hop(a, b);
  EXPECT_EQ(network.stats().overlay_hops, 1u);
}

TEST(SimNetwork, TimeoutChargesAndCounts) {
  SimClock clock;
  NetworkConfig config;
  config.rpc_timeout = SimDuration::millis(500);
  SimNetwork network(config, &clock);
  network.charge_timeout();
  EXPECT_EQ(clock.now().ns, SimDuration::millis(500).ns);
  EXPECT_EQ(network.stats().timeouts, 1u);
}

TEST(SimNetwork, StatsReset) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  network.charge_message(a, b, 10);
  network.stats().reset();
  EXPECT_EQ(network.stats().messages, 0u);
  EXPECT_EQ(network.stats().bytes, 0u);
}

}  // namespace
}  // namespace kosha::net

// Structural invariants of the overlay state, checked after random churn:
// routing-table entries sit in the slot their prefix dictates, leaf sets
// are symmetric between ring neighbors, and every table references only
// known nodes.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/sim_network.hpp"
#include "pastry/overlay.hpp"

namespace kosha::pastry {
namespace {

class OverlayInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlayInvariants, HoldAfterChurn) {
  SimClock clock;
  net::SimNetwork network({}, &clock);
  PastryOverlay overlay({}, &network);
  Rng rng(GetParam());
  std::vector<NodeId> live;
  for (int i = 0; i < 48; ++i) {
    const NodeId id = rng.next_id();
    live.push_back(id);
    overlay.join(id, network.add_host());
  }
  for (int round = 0; round < 25; ++round) {
    if (rng.next_bool(0.45) && live.size() > 6) {
      const std::size_t victim = rng.next_below(live.size());
      overlay.fail(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const NodeId id = rng.next_id();
      live.push_back(id);
      overlay.join(id, network.add_host());
    }
  }

  const PastryConfig& config = overlay.config();
  for (const NodeId id : live) {
    // Routing-table entries are placed by shared prefix + next digit.
    const RoutingTable& table = overlay.routing_table(id);
    for (const NodeId entry : table.entries()) {
      const unsigned row = id.shared_prefix_length(entry, config.bits_per_digit);
      const unsigned column = entry.digit(row, config.bits_per_digit);
      EXPECT_EQ(table.entry(row, column), entry);
      EXPECT_NE(entry, id);
    }
    // Leaf sets never contain the owner and have bounded sides.
    const LeafSet& leaves = overlay.leaf_set(id);
    EXPECT_FALSE(leaves.contains(id));
    EXPECT_LE(leaves.side(false).size(), config.leaf_half());
    EXPECT_LE(leaves.side(true).size(), config.leaf_half());
  }

  // Immediate ring neighbors know each other (symmetry of adjacency).
  const auto& sorted = overlay.ring().sorted();
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const NodeId a = sorted[i].first;
    const NodeId b = sorted[(i + 1) % sorted.size()].first;
    if (a == b) continue;
    EXPECT_TRUE(overlay.leaf_set(a).contains(b))
        << a.to_hex() << " missing successor " << b.to_hex();
    EXPECT_TRUE(overlay.leaf_set(b).contains(a))
        << b.to_hex() << " missing predecessor " << a.to_hex();
  }

  // Every key routes to the ground-truth owner from every node.
  for (int trial = 0; trial < 60; ++trial) {
    const Key key = rng.next_id();
    const NodeId from = live[rng.next_below(live.size())];
    EXPECT_EQ(overlay.route(overlay.host_of(from), key).owner, overlay.ring().owner(key));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayInvariants,
                         ::testing::Values(7001, 7002, 7003, 7004, 7005, 7006));

}  // namespace
}  // namespace kosha::pastry

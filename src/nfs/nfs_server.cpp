#include "nfs/nfs_server.hpp"

#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace kosha::nfs {

namespace {
/// Stamp an error status on a server-side span and pass the status through.
NfsStat fail(SpanScope& span, NfsStat status) {
  span.status(to_string(status));
  return status;
}
}  // namespace

const char* to_string(NfsStat status) {
  switch (status) {
    case NfsStat::kOk:
      return "NFS_OK";
    case NfsStat::kNoEnt:
      return "NFS3ERR_NOENT";
    case NfsStat::kExist:
      return "NFS3ERR_EXIST";
    case NfsStat::kNotDir:
      return "NFS3ERR_NOTDIR";
    case NfsStat::kIsDir:
      return "NFS3ERR_ISDIR";
    case NfsStat::kNotEmpty:
      return "NFS3ERR_NOTEMPTY";
    case NfsStat::kNoSpace:
      return "NFS3ERR_NOSPC";
    case NfsStat::kInval:
      return "NFS3ERR_INVAL";
    case NfsStat::kStale:
      return "NFS3ERR_STALE";
    case NfsStat::kCorrupt:
      return "NFS3ERR_CORRUPT";
    case NfsStat::kUnreachable:
      return "NFS3ERR_UNREACHABLE";
    case NfsStat::kTimedOut:
      return "NFS3ERR_TIMEDOUT";
    case NfsStat::kOverloaded:
      return "NFS3ERR_OVERLOADED";
  }
  return "?";
}

NfsStat from_fs(fs::FsStatus status) {
  switch (status) {
    case fs::FsStatus::kOk:
      return NfsStat::kOk;
    case fs::FsStatus::kNoEnt:
      return NfsStat::kNoEnt;
    case fs::FsStatus::kExist:
      return NfsStat::kExist;
    case fs::FsStatus::kNotDir:
      return NfsStat::kNotDir;
    case fs::FsStatus::kIsDir:
      return NfsStat::kIsDir;
    case fs::FsStatus::kNotEmpty:
      return NfsStat::kNotEmpty;
    case fs::FsStatus::kNoSpace:
      return NfsStat::kNoSpace;
    case fs::FsStatus::kInval:
      return NfsStat::kInval;
    case fs::FsStatus::kStale:
      return NfsStat::kStale;
    case fs::FsStatus::kCorrupt:
      return NfsStat::kCorrupt;
  }
  return NfsStat::kInval;
}

NfsServer::NfsServer(net::HostId host, fs::StorageConfig storage, NfsCostModel costs,
                     SimClock* clock)
    : host_(host), store_(fs::make_backend(storage)), costs_(costs), clock_(clock) {}

void NfsServer::charge(SimDuration cost) {
  ++rpc_count_;
  if (clock_ != nullptr) clock_->advance(costs_.rpc_base + cost);
}

void NfsServer::charge_data(std::size_t bytes) {
  if (clock_ != nullptr) {
    clock_->advance(SimDuration::nanos(costs_.data_per_kib.ns *
                                       static_cast<std::int64_t>(bytes) / 1024));
  }
}

bool NfsServer::reject_expired(RpcContext ctx) {
  if (ctx.deadline.ns <= 0 || clock_ == nullptr || clock_->now() <= ctx.deadline) return false;
  // Decode cost only (rpc_base): shedding must stay far cheaper than the
  // metadata op it avoids, or rejection would not relieve the server.
  charge(SimDuration{});
  ++deadline_rejects_;
  return true;
}

const NfsServer::DrcEntry* NfsServer::drc_find(RpcContext ctx, ReplyShape want) {
  if (!ctx.valid()) return nullptr;
  const auto it = drc_.find(drc_key(ctx));
  if (it == drc_.end()) {
    if (drc_miss_ != nullptr) drc_miss_->inc();
    return nullptr;
  }
  if (it->second.boot != ctx.boot || it->second.shape != want) {
    // Stale entry from a previous client incarnation, or a (client, xid)
    // collision across procedure shapes: this is not a retransmission of
    // the cached request — re-execute instead of answering with a reply
    // that belongs to someone else.
    if (drc_miss_ != nullptr) drc_miss_->inc();
    return nullptr;
  }
  ++drc_stats_.hits;
  if (drc_hit_ != nullptr) drc_hit_->inc();
  return &it->second;
}

void NfsServer::drc_store(RpcContext ctx, DrcEntry entry) {
  if (!ctx.valid()) return;
  entry.boot = ctx.boot;
  const std::uint64_t key = drc_key(ctx);
  // insert_or_assign: a re-executed request whose key matched a stale entry
  // (incarnation or shape mismatch in drc_find) must replace that entry, or
  // its own retransmissions would re-execute on every arrival.
  if (drc_.insert_or_assign(key, std::move(entry)).second) {
    drc_order_.push_back(key);
    while (drc_order_.size() > kDrcCapacity) {
      drc_.erase(drc_order_.front());
      drc_order_.pop_front();
    }
  }
  ++drc_stats_.stores;
  if (drc_store_ != nullptr) drc_store_->inc();
}

void NfsServer::set_observability(MetricsRegistry* metrics, Tracer* tracer) {
  tracer_ = tracer;
  if (metrics != nullptr) {
    drc_hit_ = metrics->counter("nfs.server.drc.hit");
    drc_miss_ = metrics->counter("nfs.server.drc.miss");
    drc_store_ = metrics->counter("nfs.server.drc.store");
  } else {
    drc_hit_ = drc_miss_ = drc_store_ = nullptr;
  }
}

void NfsServer::clear_drc() {
  drc_.clear();
  drc_order_.clear();
}

NfsResult<fs::InodeId> NfsServer::resolve(FileHandle handle) const {
  if (!handle.valid() || handle.server != host_) return NfsStat::kStale;
  const auto attr = store_->getattr(handle.inode);
  if (!attr.ok()) return NfsStat::kStale;
  if (attr.value().generation != handle.generation) return NfsStat::kStale;
  return handle.inode;
}

FileHandle NfsServer::handle_for(fs::InodeId inode) const {
  const auto attr = store_->getattr(inode);
  return {host_, inode, attr.ok() ? attr.value().generation : 0};
}

FileHandle NfsServer::root_handle() const { return handle_for(store_->root()); }

NfsResult<HandleReply> NfsServer::lookup(FileHandle dir, std::string_view name) {
  SpanScope span(tracer_, "server.lookup", host_);
  charge(costs_.read_meta);
  const auto d = resolve(dir);
  if (!d.ok()) return fail(span, d.error());
  const auto inode = store_->lookup(d.value(), name);
  if (!inode.ok()) return fail(span, from_fs(inode.error()));
  const auto attr = store_->getattr(inode.value());
  if (!attr.ok()) return fail(span, from_fs(attr.error()));
  return HandleReply{handle_for(inode.value()), attr.value()};
}

NfsResult<fs::Attr> NfsServer::getattr(FileHandle obj) {
  SpanScope span(tracer_, "server.getattr", host_);
  charge(costs_.read_meta);
  const auto inode = resolve(obj);
  if (!inode.ok()) return fail(span, inode.error());
  const auto attr = store_->getattr(inode.value());
  if (!attr.ok()) return fail(span, from_fs(attr.error()));
  return attr.value();
}

NfsResult<fs::Attr> NfsServer::set_mode(FileHandle obj, std::uint32_t mode,
                                        RpcContext ctx) {
  SpanScope span(tracer_, ctx.trace, "server.set_mode", host_);
  if (reject_expired(ctx)) return fail(span, NfsStat::kOverloaded);
  if (const DrcEntry* hit = drc_find(ctx, ReplyShape::kAttr)) {
    span.tag("drc", "hit");
    charge(costs_.read_meta);
    return hit->attr_reply;
  }
  charge(costs_.metadata_op);
  const auto inode = resolve(obj);
  if (!inode.ok()) return fail(span, inode.error());
  NfsResult<fs::Attr> reply = NfsStat::kInval;
  if (const auto r = store_->set_mode(inode.value(), mode); !r.ok()) {
    reply = fail(span, from_fs(r.error()));
  } else {
    reply = *store_->getattr(inode.value());
  }
  drc_store(ctx, {.attr_reply = reply, .shape = ReplyShape::kAttr});
  return reply;
}

NfsResult<fs::Attr> NfsServer::truncate(FileHandle obj, std::uint64_t size,
                                        RpcContext ctx) {
  SpanScope span(tracer_, ctx.trace, "server.truncate", host_);
  if (reject_expired(ctx)) return fail(span, NfsStat::kOverloaded);
  if (const DrcEntry* hit = drc_find(ctx, ReplyShape::kAttr)) {
    span.tag("drc", "hit");
    charge(costs_.read_meta);
    return hit->attr_reply;
  }
  charge(costs_.metadata_op);
  const auto inode = resolve(obj);
  if (!inode.ok()) return fail(span, inode.error());
  NfsResult<fs::Attr> reply = NfsStat::kInval;
  if (const auto r = store_->truncate(inode.value(), size); !r.ok()) {
    reply = fail(span, from_fs(r.error()));
  } else {
    reply = *store_->getattr(inode.value());
  }
  drc_store(ctx, {.attr_reply = reply, .shape = ReplyShape::kAttr});
  return reply;
}

NfsResult<ReadReply> NfsServer::read(FileHandle file, std::uint64_t offset,
                                     std::uint32_t count) {
  SpanScope span(tracer_, "server.read", host_);
  charge(costs_.read_meta);
  const auto inode = resolve(file);
  if (!inode.ok()) return fail(span, inode.error());
  auto data = store_->read(inode.value(), offset, count);
  if (!data.ok()) return fail(span, from_fs(data.error()));
  charge_data(data.value().size());
  const auto attr = *store_->getattr(inode.value());
  const bool eof = offset + data.value().size() >= attr.size;
  return ReadReply{std::move(data.value()), eof};
}

NfsResult<std::uint32_t> NfsServer::write(FileHandle file, std::uint64_t offset,
                                          std::string_view data) {
  SpanScope span(tracer_, "server.write", host_);
  charge(costs_.read_meta);
  const auto inode = resolve(file);
  if (!inode.ok()) return fail(span, inode.error());
  const auto written = store_->write(inode.value(), offset, data);
  if (!written.ok()) return fail(span, from_fs(written.error()));
  charge_data(data.size());
  return written.value();
}

NfsResult<HandleReply> NfsServer::create(FileHandle dir, std::string_view name,
                                         std::uint32_t mode, std::uint32_t uid,
                                         std::uint32_t gid, RpcContext ctx) {
  // Parent under the trace context the RPC carried: on a retransmission the
  // execution still joins the originating client operation's trace.
  SpanScope span(tracer_, ctx.trace, "server.create", host_);
  if (reject_expired(ctx)) return fail(span, NfsStat::kOverloaded);
  if (const DrcEntry* hit = drc_find(ctx, ReplyShape::kHandle)) {
    span.tag("drc", "hit");
    charge(costs_.read_meta);
    return hit->handle_reply;
  }
  charge(costs_.metadata_op);
  const auto d = resolve(dir);
  if (!d.ok()) return fail(span, d.error());
  const auto inode = store_->create(d.value(), name, mode, uid, gid);
  if (!inode.ok()) {
    drc_store(ctx, {.handle_reply = from_fs(inode.error()), .shape = ReplyShape::kHandle});
    return fail(span, from_fs(inode.error()));
  }
  const HandleReply reply{handle_for(inode.value()), *store_->getattr(inode.value())};
  drc_store(ctx, {.handle_reply = reply, .shape = ReplyShape::kHandle});
  return reply;
}

NfsResult<HandleReply> NfsServer::mkdir(FileHandle dir, std::string_view name,
                                        std::uint32_t mode, std::uint32_t uid,
                                        std::uint32_t gid, RpcContext ctx) {
  SpanScope span(tracer_, ctx.trace, "server.mkdir", host_);
  if (reject_expired(ctx)) return fail(span, NfsStat::kOverloaded);
  if (const DrcEntry* hit = drc_find(ctx, ReplyShape::kHandle)) {
    span.tag("drc", "hit");
    charge(costs_.read_meta);
    return hit->handle_reply;
  }
  charge(costs_.metadata_op);
  const auto d = resolve(dir);
  if (!d.ok()) return fail(span, d.error());
  const auto inode = store_->mkdir(d.value(), name, mode, uid, gid);
  if (!inode.ok()) {
    drc_store(ctx, {.handle_reply = from_fs(inode.error()), .shape = ReplyShape::kHandle});
    return fail(span, from_fs(inode.error()));
  }
  const HandleReply reply{handle_for(inode.value()), *store_->getattr(inode.value())};
  drc_store(ctx, {.handle_reply = reply, .shape = ReplyShape::kHandle});
  return reply;
}

NfsResult<HandleReply> NfsServer::symlink(FileHandle dir, std::string_view name,
                                          std::string_view target, RpcContext ctx) {
  SpanScope span(tracer_, ctx.trace, "server.symlink", host_);
  if (reject_expired(ctx)) return fail(span, NfsStat::kOverloaded);
  if (const DrcEntry* hit = drc_find(ctx, ReplyShape::kHandle)) {
    span.tag("drc", "hit");
    charge(costs_.read_meta);
    return hit->handle_reply;
  }
  charge(costs_.metadata_op);
  const auto d = resolve(dir);
  if (!d.ok()) return fail(span, d.error());
  const auto inode = store_->symlink(d.value(), name, target);
  if (!inode.ok()) {
    drc_store(ctx, {.handle_reply = from_fs(inode.error()), .shape = ReplyShape::kHandle});
    return fail(span, from_fs(inode.error()));
  }
  const HandleReply reply{handle_for(inode.value()), *store_->getattr(inode.value())};
  drc_store(ctx, {.handle_reply = reply, .shape = ReplyShape::kHandle});
  return reply;
}

NfsResult<std::string> NfsServer::readlink(FileHandle link) {
  SpanScope span(tracer_, "server.readlink", host_);
  charge(costs_.read_meta);
  const auto inode = resolve(link);
  if (!inode.ok()) return fail(span, inode.error());
  auto target = store_->readlink(inode.value());
  if (!target.ok()) return fail(span, from_fs(target.error()));
  return target.value();
}

NfsResult<Unit> NfsServer::remove(FileHandle dir, std::string_view name, RpcContext ctx) {
  SpanScope span(tracer_, ctx.trace, "server.remove", host_);
  if (reject_expired(ctx)) return fail(span, NfsStat::kOverloaded);
  if (const DrcEntry* hit = drc_find(ctx, ReplyShape::kUnit)) {
    span.tag("drc", "hit");
    charge(costs_.read_meta);
    return hit->unit_reply;
  }
  charge(costs_.metadata_op);
  const auto d = resolve(dir);
  if (!d.ok()) return fail(span, d.error());
  NfsResult<Unit> reply = Unit{};
  if (const auto r = store_->remove(d.value(), name); !r.ok()) {
    reply = fail(span, from_fs(r.error()));
  }
  drc_store(ctx, {.unit_reply = reply, .shape = ReplyShape::kUnit});
  return reply;
}

NfsResult<Unit> NfsServer::rmdir(FileHandle dir, std::string_view name, RpcContext ctx) {
  SpanScope span(tracer_, ctx.trace, "server.rmdir", host_);
  if (reject_expired(ctx)) return fail(span, NfsStat::kOverloaded);
  if (const DrcEntry* hit = drc_find(ctx, ReplyShape::kUnit)) {
    span.tag("drc", "hit");
    charge(costs_.read_meta);
    return hit->unit_reply;
  }
  charge(costs_.metadata_op);
  const auto d = resolve(dir);
  if (!d.ok()) return fail(span, d.error());
  NfsResult<Unit> reply = Unit{};
  if (const auto r = store_->rmdir(d.value(), name); !r.ok()) {
    reply = fail(span, from_fs(r.error()));
  }
  drc_store(ctx, {.unit_reply = reply, .shape = ReplyShape::kUnit});
  return reply;
}

NfsResult<Unit> NfsServer::rename(FileHandle from_dir, std::string_view from_name,
                                  FileHandle to_dir, std::string_view to_name,
                                  RpcContext ctx) {
  SpanScope span(tracer_, ctx.trace, "server.rename", host_);
  if (reject_expired(ctx)) return fail(span, NfsStat::kOverloaded);
  if (const DrcEntry* hit = drc_find(ctx, ReplyShape::kUnit)) {
    span.tag("drc", "hit");
    charge(costs_.read_meta);
    return hit->unit_reply;
  }
  charge(costs_.metadata_op);
  const auto fd = resolve(from_dir);
  if (!fd.ok()) return fail(span, fd.error());
  const auto td = resolve(to_dir);
  if (!td.ok()) return fail(span, td.error());
  NfsResult<Unit> reply = Unit{};
  if (const auto r = store_->rename(fd.value(), from_name, td.value(), to_name); !r.ok()) {
    reply = fail(span, from_fs(r.error()));
  }
  drc_store(ctx, {.unit_reply = reply, .shape = ReplyShape::kUnit});
  return reply;
}

NfsResult<ReaddirReply> NfsServer::readdir(FileHandle dir) {
  SpanScope span(tracer_, "server.readdir", host_);
  charge(costs_.read_meta);
  const auto d = resolve(dir);
  if (!d.ok()) return fail(span, d.error());
  auto entries = store_->readdir(d.value());
  if (!entries.ok()) return fail(span, from_fs(entries.error()));
  return ReaddirReply{std::move(entries.value())};
}

NfsResult<FsstatReply> NfsServer::fsstat() {
  SpanScope span(tracer_, "server.fsstat", host_);
  charge(costs_.read_meta);
  return FsstatReply{store_->capacity_bytes(), store_->used_bytes(), store_->utilization()};
}

}  // namespace kosha::nfs

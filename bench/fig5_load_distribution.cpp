// Figure 5 — load balance of directory distribution vs per-file hashing
// (paper §6.2). 16 nodes, departmental trace, distribution level 1-10;
// reports mean and standard deviation across nodes of the per-node share
// of file count and bytes. The last row is the per-file-hashing upper
// bound (finest-grained distribution).
//
// Flags: --runs N (default 10; paper used 50), --files N, --seed, --csv.

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/load_sim.hpp"

int main(int argc, char** argv) {
  using namespace kosha;
  const CliArgs args(argc, argv);
  if (const auto err = args.check_known("runs,seed,files,csv"); !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  trace::FsTraceConfig trace_config;
  trace_config.seed = seed;
  trace_config.files = static_cast<std::size_t>(args.get_int("files", 221'000));
  const auto trace = trace::generate_fs_trace(trace_config);

  std::printf("Figure 5: per-node load distribution, 16 nodes, %zu files, %.1f GiB "
              "(runs=%zu)\n\n",
              trace.files.size(), static_cast<double>(trace.total_bytes) / (1ull << 30), runs);

  TextTable table({"dist-level", "count mean%", "count std%", "bytes mean%", "bytes std%"});
  for (unsigned level = 1; level <= 10; ++level) {
    sim::LoadSimConfig config;
    config.level = level;
    config.runs = runs;
    config.seed = seed;
    const auto result = sim::simulate_load_distribution(trace, config);
    table.add_row({std::to_string(level), TextTable::fmt(result.mean_count_pct, 2),
                   TextTable::fmt(result.std_count_pct, 2),
                   TextTable::fmt(result.mean_bytes_pct, 2),
                   TextTable::fmt(result.std_bytes_pct, 2)});
  }
  {
    sim::LoadSimConfig config;
    config.level = 0;  // per-file hashing bound
    config.runs = runs;
    config.seed = seed;
    const auto result = sim::simulate_load_distribution(trace, config);
    table.add_row({"per-file", TextTable::fmt(result.mean_count_pct, 2),
                   TextTable::fmt(result.std_count_pct, 2),
                   TextTable::fmt(result.mean_bytes_pct, 2),
                   TextTable::fmt(result.std_bytes_pct, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (args.get_bool("csv", false)) std::fputs(table.to_csv().c_str(), stdout);
  return 0;
}

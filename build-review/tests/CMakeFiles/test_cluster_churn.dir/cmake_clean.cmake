file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_churn.dir/test_cluster_churn.cpp.o"
  "CMakeFiles/test_cluster_churn.dir/test_cluster_churn.cpp.o.d"
  "test_cluster_churn"
  "test_cluster_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#pragma once

// Multi-client workload driver for the event-driven execution model.
//
// Runs N simulated clients against one cluster, each mounting /kosha on
// its own host and working in a private /u<c> subtree (mkdir, then a
// create/write pass, then a read pass that verifies content). Client
// timelines are interleaved conservatively: the driver always runs the
// client with the lowest local virtual time next (ties broken by lowest
// client index), hopping the cluster clock between per-client timelines,
// so service-queue contention at the storage nodes is observed in
// timestamp order and the schedule is deterministic for a given seed.
//
// With `overlap` off the same op sequence is charged serially — every
// client pays for every other client's ops — which is the legacy
// one-RPC-at-a-time model. bench/concurrency_bench compares the two.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"

namespace kosha {
class KoshaCluster;
}

namespace kosha::sim {

/// Seeded Zipf(s) popularity sampler over ranks [0, n): rank k is drawn
/// with probability proportional to 1/(k+1)^s. Built once (O(n) CDF),
/// sampled by inverse-CDF binary search, so every draw costs one uniform
/// from the caller's Rng — deterministic for a given seed and cheap enough
/// for per-op use in the workload drivers.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n == 0 ? 1 : n) {
    double total = 0.0;
    for (std::size_t k = 0; k < cdf_.size(); ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = total;
    }
    for (double& v : cdf_) v /= total;
    cdf_.back() = 1.0;  // guard against accumulated rounding
  }

  /// Draw a rank in [0, n); rank 0 is the most popular.
  [[nodiscard]] std::size_t sample(Rng& rng) const {
    const double u = rng.next_double();
    return static_cast<std::size_t>(
        std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

struct WorkloadConfig {
  std::size_t clients = 4;
  std::size_t files_per_client = 4;
  std::size_t file_bytes = 4096;
  /// Whole-file reads (with content verification) per file after the
  /// write pass.
  std::size_t reads_per_file = 2;
  /// true: client timelines overlap (makespan = latest finish − start).
  /// false: ops are charged back-to-back (makespan = sum of all ops).
  bool overlap = true;
  /// Read-pass popularity skew. 0 (default) keeps the legacy round-robin
  /// file selection; > 0 draws each read's file from Zipf(zipf_s) using a
  /// per-client stream forked from the cluster seed, so hot-file
  /// contention is reproducible run to run.
  double zipf_s = 0.0;
};

struct WorkloadResult {
  SimDuration makespan{};
  /// Sum of per-op latencies across all clients (the serial-equivalent
  /// cost of the same schedule).
  SimDuration busy{};
  SimDuration max_op{};
  std::size_t ops = 0;
  /// Ops that failed outright plus reads returning the wrong content.
  std::size_t failures = 0;

  [[nodiscard]] double mean_op_us() const {
    return ops == 0 ? 0.0 : busy.to_micros() / static_cast<double>(ops);
  }
};

/// Run the workload on `cluster` (which must outlive the call). The
/// cluster's clock ends at the workload's finish time.
[[nodiscard]] WorkloadResult run_multi_client_workload(KoshaCluster& cluster,
                                                       const WorkloadConfig& config);

}  // namespace kosha::sim

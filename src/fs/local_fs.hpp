#pragma once

// Per-node local file system — the node's /kosha_store partition.
//
// An in-memory, inode-based hierarchical file system with the operation
// vocabulary NFS needs (lookup/create/read/write/remove/rename/readdir/
// symlink) plus byte-capacity accounting. Each Kosha node dedicates one
// LocalFs instance as its contributed storage (paper §5: "A local disk
// partition is created and used for space contribution"); capacity and the
// utilization threshold drive the redirection mechanism of §3.3.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace kosha::fs {

/// errno-like status codes (subset of the NFSv3 error vocabulary).
enum class FsStatus {
  kOk,
  kNoEnt,     // no such file or directory
  kExist,     // entry already exists
  kNotDir,    // component is not a directory
  kIsDir,     // operation needs a non-directory
  kNotEmpty,  // directory not empty
  kNoSpace,   // capacity exceeded
  kInval,     // invalid argument (bad name, bad offset)
  kStale,     // inode no longer exists (stale handle)
};

[[nodiscard]] const char* to_string(FsStatus status);

/// Inode number; 0 is invalid, 1 is the root directory.
using InodeId = std::uint64_t;
inline constexpr InodeId kInvalidInode = 0;

enum class FileType : std::uint8_t { kFile, kDirectory, kSymlink };

/// Subset of NFS fattr3.
struct Attr {
  FileType type = FileType::kFile;
  std::uint32_t mode = 0644;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t size = 0;
  std::uint64_t mtime = 0;  // logical modification counter
  InodeId inode = kInvalidInode;
  std::uint64_t generation = 0;
};

struct DirEntry {
  std::string name;
  InodeId inode = kInvalidInode;
  FileType type = FileType::kFile;
};

struct FsConfig {
  /// Contributed partition size in bytes.
  std::uint64_t capacity_bytes = 35ull << 30;
  /// Fraction of capacity above which new allocations are refused — the
  /// "pre-specified utilization" that triggers Kosha redirection (§3.3).
  double utilization_threshold = 1.0;
};

template <typename T>
using FsResult = Result<T, FsStatus>;

class LocalFs {
 public:
  explicit LocalFs(FsConfig config = {});

  [[nodiscard]] InodeId root() const { return kRootInode; }

  // --- name-space operations (all take a directory inode + name) ---
  [[nodiscard]] FsResult<InodeId> lookup(InodeId dir, std::string_view name) const;
  [[nodiscard]] FsResult<InodeId> create(InodeId dir, std::string_view name,
                                         std::uint32_t mode = 0644, std::uint32_t uid = 0);
  [[nodiscard]] FsResult<InodeId> mkdir(InodeId dir, std::string_view name,
                                        std::uint32_t mode = 0755, std::uint32_t uid = 0);
  [[nodiscard]] FsResult<InodeId> symlink(InodeId dir, std::string_view name,
                                          std::string_view target);
  [[nodiscard]] FsResult<Unit> remove(InodeId dir, std::string_view name);
  [[nodiscard]] FsResult<Unit> rmdir(InodeId dir, std::string_view name);
  [[nodiscard]] FsResult<Unit> rename(InodeId from_dir, std::string_view from_name,
                                      InodeId to_dir, std::string_view to_name);
  [[nodiscard]] FsResult<std::vector<DirEntry>> readdir(InodeId dir) const;

  // --- inode operations ---
  [[nodiscard]] FsResult<Attr> getattr(InodeId inode) const;
  [[nodiscard]] FsResult<Unit> set_mode(InodeId inode, std::uint32_t mode);
  [[nodiscard]] FsResult<Unit> truncate(InodeId inode, std::uint64_t size);
  [[nodiscard]] FsResult<std::uint32_t> write(InodeId inode, std::uint64_t offset,
                                              std::string_view data);
  [[nodiscard]] FsResult<std::string> read(InodeId inode, std::uint64_t offset,
                                           std::uint32_t count) const;
  [[nodiscard]] FsResult<std::string> readlink(InodeId inode) const;

  // --- path conveniences (absolute paths within this store) ---
  [[nodiscard]] FsResult<InodeId> resolve(std::string_view path) const;
  /// mkdir -p; returns the deepest directory's inode.
  [[nodiscard]] FsResult<InodeId> mkdir_p(std::string_view path);
  /// Remove an entry and, for directories, its whole subtree.
  [[nodiscard]] FsResult<Unit> remove_recursive(InodeId dir, std::string_view name);

  // --- capacity ---
  [[nodiscard]] std::uint64_t capacity_bytes() const { return config_.capacity_bytes; }
  [[nodiscard]] std::uint64_t used_bytes() const { return used_bytes_; }
  [[nodiscard]] double utilization() const {
    return config_.capacity_bytes == 0
               ? 1.0
               : static_cast<double>(used_bytes_) / static_cast<double>(config_.capacity_bytes);
  }
  /// True when storing `extra` more bytes would cross the threshold.
  [[nodiscard]] bool would_exceed(std::uint64_t extra) const;

  /// Total bytes of all files under an inode (the inode's own data for
  /// files, recursive for directories).
  [[nodiscard]] std::uint64_t subtree_bytes(InodeId inode) const;
  /// Number of regular files under an inode (recursive).
  [[nodiscard]] std::uint64_t subtree_file_count(InodeId inode) const;

  /// Drop everything (paper §4.3: a revived node purges all Kosha data).
  void purge();

  [[nodiscard]] std::size_t live_inode_count() const { return live_inodes_; }

 private:
  static constexpr InodeId kRootInode = 1;

  struct Inode {
    bool allocated = false;
    FileType type = FileType::kFile;
    std::uint32_t mode = 0;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    std::uint64_t mtime = 0;
    std::uint64_t generation = 0;
    std::string data;                        // file content / symlink target
    std::map<std::string, InodeId> entries;  // directory children
  };

  [[nodiscard]] const Inode* get(InodeId id) const;
  [[nodiscard]] Inode* get(InodeId id);
  [[nodiscard]] InodeId allocate(FileType type, std::uint32_t mode, std::uint32_t uid);
  void release(InodeId id);
  [[nodiscard]] static bool valid_name(std::string_view name);

  FsConfig config_;
  std::vector<Inode> inodes_;  // index = InodeId - 1
  std::vector<InodeId> free_list_;
  std::uint64_t used_bytes_ = 0;
  std::uint64_t mtime_counter_ = 0;
  std::size_t live_inodes_ = 0;
};

}  // namespace kosha::fs

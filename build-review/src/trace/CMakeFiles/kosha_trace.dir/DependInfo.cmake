
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/availability.cpp" "src/trace/CMakeFiles/kosha_trace.dir/availability.cpp.o" "gcc" "src/trace/CMakeFiles/kosha_trace.dir/availability.cpp.o.d"
  "/root/repo/src/trace/fs_trace.cpp" "src/trace/CMakeFiles/kosha_trace.dir/fs_trace.cpp.o" "gcc" "src/trace/CMakeFiles/kosha_trace.dir/fs_trace.cpp.o.d"
  "/root/repo/src/trace/mab.cpp" "src/trace/CMakeFiles/kosha_trace.dir/mab.cpp.o" "gcc" "src/trace/CMakeFiles/kosha_trace.dir/mab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/kosha_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kosha/CMakeFiles/kosha_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nfs/CMakeFiles/kosha_nfs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fs/CMakeFiles/kosha_fs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pastry/CMakeFiles/kosha_pastry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/kosha_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

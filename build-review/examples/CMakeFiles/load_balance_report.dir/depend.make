# Empty dependencies file for load_balance_report.
# This may be replaced when dependencies are built.

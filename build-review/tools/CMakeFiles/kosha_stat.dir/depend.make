# Empty dependencies file for kosha_stat.
# This may be replaced when dependencies are built.

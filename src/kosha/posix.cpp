#include "kosha/posix.hpp"

#include <algorithm>
#include <cstring>

#include "common/path.hpp"
#include "common/tracing.hpp"

namespace kosha {

PosixAdapter::OpenFile* PosixAdapter::lookup_fd(Fd fd) {
  const auto it = open_.find(fd.value);
  return it == open_.end() ? nullptr : &it->second;
}

Fd PosixAdapter::open(std::string_view path, unsigned flags, std::uint32_t mode) {
  Koshad& daemon = mount_->daemon();
  SpanScope span(daemon.runtime().tracer, "posix.open", daemon.host());
  if (span.active()) span.tag("path", path);
  auto resolved = mount_->resolve(path);
  if (!resolved.ok()) {
    if (resolved.error() != nfs::NfsStat::kNoEnt || (flags & kCreate) == 0) {
      last_error_ = resolved.error();
      return {};
    }
    // O_CREAT: create in the parent directory.
    const std::string normalized = normalize_path(path);
    const auto parent = mount_->resolve(path_parent(normalized));
    if (!parent.ok()) {
      last_error_ = parent.error();
      return {};
    }
    const auto created = daemon.create(*parent, path_basename(normalized), mode);
    if (!created.ok()) {
      last_error_ = created.error();
      return {};
    }
    resolved = created->handle;
  }

  const auto attr = daemon.getattr(*resolved);
  if (!attr.ok()) {
    last_error_ = attr.error();
    return {};
  }
  if (attr->type != fs::FileType::kFile) {
    last_error_ = nfs::NfsStat::kIsDir;
    return {};
  }
  if ((flags & kTrunc) != 0 && (flags & (kWrOnly | kRdWr)) != 0) {
    if (const auto truncated = daemon.truncate(*resolved, 0); !truncated.ok()) {
      last_error_ = truncated.error();
      return {};
    }
  }

  const Fd fd{next_fd_++};
  open_[fd.value] = OpenFile{*resolved, 0, flags};
  return fd;
}

std::int64_t PosixAdapter::read(Fd fd, char* buffer, std::size_t count) {
  Koshad& daemon = mount_->daemon();
  SpanScope span(daemon.runtime().tracer, "posix.read", daemon.host());
  OpenFile* file = lookup_fd(fd);
  if (file == nullptr) {
    last_error_ = nfs::NfsStat::kStale;
    return -1;
  }
  if ((file->flags & kWrOnly) != 0) {
    last_error_ = nfs::NfsStat::kInval;
    return -1;
  }
  const auto reply = mount_->daemon().read(file->handle, file->offset,
                                           static_cast<std::uint32_t>(count));
  if (!reply.ok()) {
    last_error_ = reply.error();
    return -1;
  }
  std::memcpy(buffer, reply->data.data(), reply->data.size());
  file->offset += reply->data.size();
  return static_cast<std::int64_t>(reply->data.size());
}

std::int64_t PosixAdapter::write(Fd fd, std::string_view data) {
  Koshad& daemon = mount_->daemon();
  SpanScope span(daemon.runtime().tracer, "posix.write", daemon.host());
  OpenFile* file = lookup_fd(fd);
  if (file == nullptr) {
    last_error_ = nfs::NfsStat::kStale;
    return -1;
  }
  if ((file->flags & (kWrOnly | kRdWr)) == 0) {
    last_error_ = nfs::NfsStat::kInval;
    return -1;
  }
  if ((file->flags & kAppend) != 0) {
    const auto attr = mount_->daemon().getattr(file->handle);
    if (!attr.ok()) {
      last_error_ = attr.error();
      return -1;
    }
    file->offset = attr->size;
  }
  const auto written = mount_->daemon().write(file->handle, file->offset, data);
  if (!written.ok()) {
    last_error_ = written.error();
    return -1;
  }
  file->offset += written.value();
  return static_cast<std::int64_t>(written.value());
}

std::int64_t PosixAdapter::lseek(Fd fd, std::int64_t offset, Whence whence) {
  OpenFile* file = lookup_fd(fd);
  if (file == nullptr) {
    last_error_ = nfs::NfsStat::kStale;
    return -1;
  }
  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCur:
      base = static_cast<std::int64_t>(file->offset);
      break;
    case Whence::kEnd: {
      const auto attr = mount_->daemon().getattr(file->handle);
      if (!attr.ok()) {
        last_error_ = attr.error();
        return -1;
      }
      base = static_cast<std::int64_t>(attr->size);
      break;
    }
  }
  const std::int64_t target = base + offset;
  if (target < 0) {
    last_error_ = nfs::NfsStat::kInval;
    return -1;
  }
  file->offset = static_cast<std::uint64_t>(target);
  return target;
}

bool PosixAdapter::ftruncate(Fd fd, std::uint64_t size) {
  OpenFile* file = lookup_fd(fd);
  if (file == nullptr) return fail(nfs::NfsStat::kStale);
  const auto result = mount_->daemon().truncate(file->handle, size);
  if (!result.ok()) return fail(result.error());
  return true;
}

nfs::NfsResult<fs::Attr> PosixAdapter::fstat(Fd fd) {
  OpenFile* file = lookup_fd(fd);
  if (file == nullptr) return nfs::NfsStat::kStale;
  return mount_->daemon().getattr(file->handle);
}

bool PosixAdapter::close(Fd fd) { return open_.erase(fd.value) > 0; }

bool PosixAdapter::unlink(std::string_view path) {
  const auto result = mount_->remove(path);
  return result.ok() || fail(result.error());
}

bool PosixAdapter::mkdir(std::string_view path) {
  const auto result = mount_->mkdir_p(path);
  return result.ok() || fail(result.error());
}

bool PosixAdapter::rmdir(std::string_view path) {
  const auto result = mount_->rmdir(path);
  return result.ok() || fail(result.error());
}

bool PosixAdapter::rename(std::string_view from, std::string_view to) {
  const auto result = mount_->rename(from, to);
  return result.ok() || fail(result.error());
}

}  // namespace kosha

#pragma once

// Deterministic distributed tracing over virtual time.
//
// A trace is minted per client operation at the mount/POSIX layer and its
// context rides inside RpcContext across client -> network -> server ->
// koshad forwarding, so one CREATE yields a span tree covering every hop it
// touched. Timestamps come from the SimClock and span/trace IDs from a
// monotonic counter, so same-seed runs emit byte-identical trace streams.
//
// The simulation is single-threaded per cluster, which lets the tracer keep
// an explicit context stack: begin_span() parents under the innermost open
// span, begin_span_under() parents under an explicit remote context (the
// trace carried by an RPC). Spans close LIFO via the RAII SpanScope.
//
// Zero overhead when off: hot paths hold a nullable `Tracer*`; SpanScope is
// inert (no allocation, no clock reads) when the tracer is null or disabled.
// Recording never advances the SimClock and never consumes RNG.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/sim_clock.hpp"

namespace kosha {

/// Trace identity carried across RPC boundaries. span_id 0 means "no trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const { return span_id != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// One finished span. Tags are an ordered list so emission order (and hence
/// the serialized stream) is deterministic.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;
  std::uint32_t host = 0;  // HostId of the node the span ran on
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::string status;  // "ok" or an NfsStat name
  std::vector<std::pair<std::string, std::string>> tags;
};

/// Collects spans for one simulated cluster. Not a global: each cluster owns
/// its tracer so concurrent clusters (tests) don't interleave streams.
class Tracer {
 public:
  void set_clock(const SimClock* clock) { clock_ = clock; }
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_ && clock_ != nullptr; }

  /// Innermost open span's context; invalid when no span is open.
  [[nodiscard]] TraceContext current() const {
    return stack_.empty() ? TraceContext{} : stack_.back().ctx;
  }

  /// Open a span. Parents under the innermost open span; a root span mints a
  /// fresh trace id. Returns the new span's context.
  TraceContext begin_span(std::string_view name, std::uint32_t host);

  /// Open a span under an explicit parent (the context an RPC carried).
  /// Falls back to begin_span() parenting when `parent` is invalid.
  TraceContext begin_span_under(TraceContext parent, std::string_view name, std::uint32_t host);

  /// Attach a tag / set the final status of the innermost open span.
  void tag(std::string_view key, std::string_view value);
  void set_status(std::string_view status);

  /// Record an already-finished span with explicit timestamps, parented
  /// under `parent` (a fresh root trace when `parent` is invalid). This is
  /// how event-driven code paths record intervals they know about but do
  /// not execute inside — service-queue waits, timeout windows, retry
  /// backoffs — whose start/end are computed, not lived through. The span
  /// goes straight to the finished stream (emission order = call order,
  /// deterministic) and the context stack is untouched. Returns the new
  /// span's context (invalid when the tracer is off).
  TraceContext emit_span(TraceContext parent, std::string_view name, std::uint32_t host,
                         SimDuration start, SimDuration end,
                         std::string_view status = "ok");

  /// Close the innermost open span, stamping its end time.
  void end_span();

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] std::size_t open_depth() const { return stack_.size(); }
  void clear();

  /// One JSON object per line, in span-end order.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  struct Open {
    TraceContext ctx;
    SpanRecord record;
  };

  const SimClock* clock_ = nullptr;
  bool enabled_ = false;
  std::uint64_t next_id_ = 1;
  std::vector<Open> stack_;
  std::vector<SpanRecord> spans_;
};

/// RAII span. Inert when `tracer` is null or disabled, so instrumentation
/// sites read:
///
///   SpanScope span(tracer, "koshad.create", host);
///   ...
///   span.status(ok ? "ok" : to_string(err));
class SpanScope {
 public:
  SpanScope(Tracer* tracer, std::string_view name, std::uint32_t host)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ != nullptr) tracer_->begin_span(name, host);
  }

  /// Parent explicitly under `parent` (server side of an RPC).
  SpanScope(Tracer* tracer, TraceContext parent, std::string_view name, std::uint32_t host)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ != nullptr) tracer_->begin_span_under(parent, name, host);
  }

  ~SpanScope() {
    if (tracer_ != nullptr) tracer_->end_span();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  void tag(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) tracer_->tag(key, value);
  }

  void status(std::string_view s) {
    if (tracer_ != nullptr) tracer_->set_status(s);
  }

 private:
  Tracer* tracer_;
};

/// Render finished spans as per-trace ASCII trees (kosha_stat --tree).
[[nodiscard]] std::string render_span_forest(const std::vector<SpanRecord>& spans);

/// Parse a stream produced by Tracer::to_jsonl().
[[nodiscard]] Result<std::vector<SpanRecord>, std::string> parse_trace_jsonl(
    std::string_view text);

}  // namespace kosha

// Tests for the Result<T,E> vocabulary type, the logger plumbing, and
// overlay message-cost accounting.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "net/sim_network.hpp"
#include "pastry/overlay.hpp"

namespace kosha {
namespace {

enum class Err { kBad, kWorse };

TEST(Result, ValueSide) {
  const Result<int, Err> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, ErrorSide) {
  const Result<int, Err> r = Err::kWorse;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Err::kWorse);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyPayload) {
  Result<std::string, Err> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string taken = std::move(r.value());
  EXPECT_EQ(taken, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string, Err> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(Result, UnitEquality) {
  EXPECT_EQ(Unit{}, Unit{});
  const Result<Unit, Err> ok = Unit{};
  EXPECT_TRUE(ok.ok());
}

TEST(Log, LevelGating) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are dropped without side effects.
  KOSHA_LOG_DEBUG("dropped %d", 1);
  KOSHA_LOG_INFO("dropped %s", "too");
  set_log_level(LogLevel::kOff);
  KOSHA_LOG_ERROR("also dropped");
  set_log_level(saved);
}

TEST(Log, SinkCapturesFormattedMessages) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, std::string_view message) {
    captured.emplace_back(level, std::string(message));
  });
  KOSHA_LOG_DEBUG("below threshold %d", 0);
  KOSHA_LOG_INFO("op %s took %dus", "create", 42);
  KOSHA_LOG_WARN("retry %d", 3);
  set_log_sink({});  // restore default before asserting
  set_log_level(saved);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "op create took 42us");
  EXPECT_EQ(captured[1].first, LogLevel::kWarn);
  EXPECT_EQ(captured[1].second, "retry 3");
}

TEST(Log, ConcurrentMessagesDoNotInterleave) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  std::vector<std::string> captured;
  // The sink runs under the logger's mutex, so no locking needed here.
  set_log_sink([&](LogLevel, std::string_view message) {
    captured.emplace_back(message);
  });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        KOSHA_LOG_INFO("thread=%d seq=%d", t, i);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  set_log_sink({});
  set_log_level(saved);
  ASSERT_EQ(captured.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  // Every message must be intact (never spliced with another thread's).
  int per_thread_seen[kThreads] = {};
  for (const std::string& m : captured) {
    int t = -1;
    int seq = -1;
    ASSERT_EQ(std::sscanf(m.c_str(), "thread=%d seq=%d", &t, &seq), 2) << m;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ++per_thread_seen[t];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_thread_seen[t], kPerThread);
}

TEST(OverlayCosts, JoinTrafficStaysBounded) {
  // The join protocol contacts the bootstrap, the route path, and the
  // nodes in the new node's state — O(leaf set + log N), never O(N).
  SimClock clock;
  net::SimNetwork network({}, &clock);
  pastry::PastryOverlay overlay({}, &network);
  Rng rng(2024);
  std::uint64_t before = 0;
  std::uint64_t cost_at_64 = 0;
  std::uint64_t cost_at_256 = 0;
  for (int i = 0; i < 256; ++i) {
    before = network.stats().messages;
    overlay.join(rng.next_id(), network.add_host());
    const std::uint64_t cost = network.stats().messages - before;
    if (i == 63) cost_at_64 = cost;
    if (i == 255) cost_at_256 = cost;
  }
  EXPECT_GT(cost_at_64, 0u);
  // 4x more nodes must not cost anywhere near 4x the join messages.
  EXPECT_LT(cost_at_256, cost_at_64 * 3);
  EXPECT_LT(cost_at_256, 200u);  // absolute sanity: not O(N)
}

TEST(OverlayCosts, FailureRepairTrafficBounded) {
  SimClock clock;
  net::SimNetwork network({}, &clock);
  pastry::PastryOverlay overlay({}, &network);
  Rng rng(2025);
  std::vector<pastry::NodeId> ids;
  for (int i = 0; i < 128; ++i) {
    const auto id = rng.next_id();
    ids.push_back(id);
    overlay.join(id, network.add_host());
  }
  const std::uint64_t before = network.stats().messages;
  overlay.fail(ids[100]);
  const std::uint64_t repair = network.stats().messages - before;
  // Repair touches the failed node's leaf-set members and their members:
  // O(l^2), independent of N.
  EXPECT_GT(repair, 0u);
  EXPECT_LT(repair, 1200u);
}

}  // namespace
}  // namespace kosha

#pragma once

// kosha_lint phase 2 — the rule families, run over the phase-1 index and
// call graph. Per-file rules (D1–D3, P1–P3, S1, H1) walk tokens exactly as
// the pre-graph linter did; the interprocedural rules (D4, R1, A1, P4) and
// the edge-annotation check (E1) consume the call graph.

#include <set>
#include <vector>

#include "lint/graph.hpp"
#include "lint/index.hpp"
#include "lint/lint.hpp"

namespace kosha::lint {

struct RuleResult {
  std::vector<Diagnostic> diags;
  /// Nodes reachable from the event roots (A1's hot set) — drives the DOT
  /// highlighting.
  std::set<int> hot_nodes;
  /// Nodes containing a wall-clock/entropy/sleep sink (D4) — ditto.
  std::set<int> sink_nodes;
};

RuleResult run_rules(const Config& config, const Index& idx, const CallGraph& graph);

}  // namespace kosha::lint

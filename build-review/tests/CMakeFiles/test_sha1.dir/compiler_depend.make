# Empty compiler generated dependencies file for test_sha1.
# This may be replaced when dependencies are built.

// Microbenchmarks of the substrates (google-benchmark): SHA-1 hashing,
// ring arithmetic, Pastry routing (hop counts scale O(log N)), local-FS
// metadata ops, and koshad placement resolution. Not a paper table —
// supporting data for the overhead discussion in §6.1.2.
//
// --metrics-out=PATH additionally runs a short fixed-seed instrumented
// workload after the benchmarks and writes its metrics snapshot (the
// export_metrics_json format kosha_stat reads) to PATH; CI archives it as
// results/BENCH_micro.json.
//
// --backend=flat|cas switches the snapshot to the dedup ablation: a
// duplicate-heavy synthetic tree (many files sharing few distinct
// payloads) on a cluster backed by the chosen storage backend, with
// bench.dedup.* gauges (logical/physical bytes, dedup_ratio) added to the
// export. Without the flag the snapshot workload and its byte-stable
// export are unchanged.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "fs/storage_backend.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "pastry/overlay.hpp"

namespace {

using namespace kosha;

void BM_Sha1Name(benchmark::State& state) {
  const std::string name = "some_directory_name";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash128(name));
  }
}
BENCHMARK(BM_Sha1Name);

void BM_Sha1Throughput(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(1 << 10)->Arg(1 << 16);

void BM_RingDistance(benchmark::State& state) {
  Rng rng(1);
  const Uint128 a = rng.next_id();
  const Uint128 b = rng.next_id();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring_distance(a, b));
  }
}
BENCHMARK(BM_RingDistance);

void BM_PastryRoute(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  SimClock clock;
  net::SimNetwork network({}, &clock);
  pastry::PastryOverlay overlay({}, &network);
  Rng rng(7);
  for (std::size_t i = 0; i < nodes; ++i) overlay.join(rng.next_id(), network.add_host());

  std::uint64_t hops = 0;
  std::uint64_t routes = 0;
  for (auto _ : state) {
    const auto result = overlay.route(0, rng.next_id());
    hops += result.hops;
    ++routes;
    benchmark::DoNotOptimize(result.owner);
  }
  state.counters["mean_hops"] =
      static_cast<double>(hops) / static_cast<double>(routes ? routes : 1);
}
BENCHMARK(BM_PastryRoute)->Arg(16)->Arg(128)->Arg(1024);

void BM_StoreCreate(benchmark::State& state) {
  fs::StorageConfig config;
  if (state.range(0) != 0) config.backend = fs::BackendKind::kCas;
  const auto store = fs::make_backend(config);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->create(store->root(), "f" + std::to_string(i++)));
  }
}
BENCHMARK(BM_StoreCreate)->Arg(0)->Arg(1)->ArgName("cas");

void BM_StoreWrite4k(benchmark::State& state) {
  fs::StorageConfig config;
  if (state.range(0) != 0) config.backend = fs::BackendKind::kCas;
  config.chunk_bytes = 1024;
  const auto store = fs::make_backend(config);
  const fs::InodeId file = store->create(store->root(), "f").value();
  const std::string payload(4096, 'x');
  std::uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->write(file, offset, payload));
    offset = (offset + 4096) % (1 << 20);
  }
}
BENCHMARK(BM_StoreWrite4k)->Arg(0)->Arg(1)->ArgName("cas");

void BM_KoshaWriteSmallFile(benchmark::State& state) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.distribution_level = 2;
  // range(0) == 1 runs the identical workload with metrics + tracing live,
  // so the two rows bracket the observability overhead per client op.
  config.observability.metrics = state.range(0) != 0;
  config.observability.tracing = state.range(0) != 0;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  if (!mount.mkdir_p("/bench/dir").ok()) return;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mount.write_file("/bench/dir/f" + std::to_string(i++), "payload"));
  }
}
BENCHMARK(BM_KoshaWriteSmallFile)->Arg(0)->Arg(1)
    ->ArgName("observed");

/// The snapshot behind results/BENCH_micro.json: a fixed-seed instrumented
/// workload (mixed writes/reads/stats on an 8-node cluster) whose export is
/// byte-stable across runs, so CI can diff it between commits.
int write_metrics_snapshot(const std::string& path) {
  ClusterConfig config;
  config.nodes = 8;
  config.seed = 42;
  config.kosha.replicas = 2;
  config.observability.metrics = true;
  config.observability.tracing = true;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  Rng rng(42);
  for (int i = 0; i < 64; ++i) {
    const std::string dir = "/bench/d" + std::to_string(rng.next_below(4));
    const std::string file = dir + "/f" + std::to_string(i);
    if (!mount.mkdir_p(dir).ok() || !mount.write_file(file, rng.next_name(32)).ok()) {
      std::fprintf(stderr, "micro_bench: snapshot workload write failed\n");
      return 1;
    }
    if (!mount.read_file(file).ok() || !mount.stat(file).ok()) {
      std::fprintf(stderr, "micro_bench: snapshot workload read-back failed\n");
      return 1;
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "micro_bench: cannot write %s\n", path.c_str());
    return 1;
  }
  out << cluster.export_metrics_json();
  std::printf("metrics snapshot written to %s\n", path.c_str());
  return 0;
}

/// The dedup ablation behind results/BENCH_dedup_{flat,cas}.json: the same
/// fixed-seed cluster as the default snapshot, but the workload is
/// duplicate-heavy — 96 files drawn from only 6 distinct payloads, spread
/// over 4 directories — and the store backend is the one under test. On
/// top of the cluster's own export (which carries store.dedup_bytes /
/// store.blocks_live on the cas backend), bench.dedup.* gauges record the
/// logical footprint, the physical footprint, and their ratio so the two
/// backends' JSON files are directly comparable.
int write_dedup_snapshot(const std::string& path, fs::BackendKind backend) {
  ClusterConfig config;
  config.nodes = 8;
  config.seed = 42;
  config.kosha.replicas = 2;
  config.kosha.storage.backend = backend;
  config.kosha.storage.chunk_bytes = 512;
  config.observability.metrics = true;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  Rng rng(42);
  std::vector<std::string> payloads;
  payloads.reserve(6);
  for (int i = 0; i < 6; ++i) payloads.push_back(rng.next_name(2048));
  for (int i = 0; i < 96; ++i) {
    const std::string dir = "/dedup/d" + std::to_string(rng.next_below(4));
    const std::string file = dir + "/f" + std::to_string(i);
    const std::string& payload = payloads[rng.next_below(payloads.size())];
    if (!mount.mkdir_p(dir).ok() || !mount.write_file(file, payload).ok()) {
      std::fprintf(stderr, "micro_bench: dedup workload write failed\n");
      return 1;
    }
  }
  // Refresh the derived store gauges, then fold them into the ablation's
  // own bench.dedup.* summary and export once more.
  (void)cluster.export_metrics_json();
  std::uint64_t logical = 0;
  std::uint64_t physical = 0;
  for (net::HostId host = 0; host < config.nodes; ++host) {
    const fs::StorageBackend& store = cluster.server(host).store();
    const std::uint64_t used = store.used_bytes();
    logical += used;
    physical += used - store.stats().dedup_bytes;
  }
  cluster.metrics().gauge("bench.dedup.backend")->set(backend == fs::BackendKind::kCas ? 1 : 0);
  cluster.metrics().gauge("bench.dedup.logical_bytes")->set(static_cast<double>(logical));
  cluster.metrics().gauge("bench.dedup.physical_bytes")->set(static_cast<double>(physical));
  cluster.metrics().gauge("bench.dedup.dedup_ratio")
      ->set(physical > 0 ? static_cast<double>(logical) / static_cast<double>(physical) : 1.0);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "micro_bench: cannot write %s\n", path.c_str());
    return 1;
  }
  out << cluster.export_metrics_json();
  std::printf("dedup ablation (%s) written to %s: logical=%llu physical=%llu\n",
              fs::to_string(backend), path.c_str(),
              static_cast<unsigned long long>(logical),
              static_cast<unsigned long long>(physical));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --metrics-out / --backend before google-benchmark sees (and
  // rejects) them.
  std::string metrics_out;
  std::string backend_text;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kMetricsFlag = "--metrics-out=";
    constexpr const char* kBackendFlag = "--backend=";
    if (std::strncmp(argv[i], kMetricsFlag, std::strlen(kMetricsFlag)) == 0) {
      metrics_out = argv[i] + std::strlen(kMetricsFlag);
    } else if (std::strncmp(argv[i], kBackendFlag, std::strlen(kBackendFlag)) == 0) {
      backend_text = argv[i] + std::strlen(kBackendFlag);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  fs::BackendKind backend = fs::BackendKind::kFlat;
  if (!backend_text.empty() && !fs::parse_backend(backend_text, &backend)) {
    std::fprintf(stderr, "micro_bench: unknown --backend=%s (flat|cas)\n", backend_text.c_str());
    return 1;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    return backend_text.empty() ? write_metrics_snapshot(metrics_out)
                                : write_dedup_snapshot(metrics_out, backend);
  }
  return 0;
}

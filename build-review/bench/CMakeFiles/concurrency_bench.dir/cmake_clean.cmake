file(REMOVE_RECURSE
  "CMakeFiles/concurrency_bench.dir/concurrency_bench.cpp.o"
  "CMakeFiles/concurrency_bench.dir/concurrency_bench.cpp.o.d"
  "concurrency_bench"
  "concurrency_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_traces.dir/test_traces.cpp.o"
  "CMakeFiles/test_traces.dir/test_traces.cpp.o.d"
  "test_traces"
  "test_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_failover_paths.
# This may be replaced when dependencies are built.

#include "common/event_loop.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/profile.hpp"

namespace kosha {

EventLoop::EventLoop(SimClock* clock, std::uint64_t seed)
    : clock_(clock), rng_(seed ^ 0xC0FFEE123456789Bull) {
  assert(clock_ != nullptr);
}

EventLoop::EventId EventLoop::schedule_at(SimDuration when, std::function<void()> fn) {
  return schedule_at(when, "event", std::move(fn));
}

EventLoop::EventId EventLoop::schedule_at(SimDuration when, const char* category,
                                          std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{std::max(when, clock_->now()), id,
                        category != nullptr ? category : "event", std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++stats_.scheduled;
  return id;
}

EventLoop::EventId EventLoop::schedule_after(SimDuration delay, std::function<void()> fn) {
  return schedule_at(clock_->now() + delay, std::move(fn));
}

EventLoop::EventId EventLoop::schedule_after(SimDuration delay, const char* category,
                                             std::function<void()> fn) {
  return schedule_at(clock_->now() + delay, category, std::move(fn));
}

bool EventLoop::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  // Only mark ids still somewhere in the heap; anything else already ran.
  const bool pending = std::any_of(heap_.begin(), heap_.end(),
                                   [id](const Entry& e) { return e.id == id; });
  if (!pending || !cancelled_.insert(id).second) return false;
  ++stats_.cancelled;
  return true;
}

bool EventLoop::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    if (cancelled_.erase(entry.id) > 0) continue;  // lazily dropped
    clock_->advance_to(entry.when);
    ++stats_.executed;
    if (profiler_ != nullptr) {
      // Wall-clock self time of the callback body, read through the
      // profiler's sanctioned seam (the loop itself never names a clock).
      // Callbacks can drive nested dispatch (the synchronous RPC wrapper
      // runs the loop from inside server invokes); nested events' wall
      // time is subtracted so each event reports true self time.
      const std::uint64_t wall_begin = SimProfiler::wall_now_ns();
      const std::uint64_t saved_nested = nested_wall_ns_;
      nested_wall_ns_ = 0;
      entry.fn();
      const std::uint64_t total = SimProfiler::wall_now_ns() - wall_begin;
      profiler_->record_event(entry.category,
                              total > nested_wall_ns_ ? total - nested_wall_ns_ : 0);
      nested_wall_ns_ = saved_nested + total;
    } else {
      entry.fn();
    }
    return true;
  }
  return false;
}

std::size_t EventLoop::run_until_idle() {
  std::size_t ran = 0;
  while (step()) ++ran;
  return ran;
}

std::size_t EventLoop::run_until(const std::function<bool()>& done) {
  std::size_t ran = 0;
  while (!done() && step()) ++ran;
  return ran;
}

std::size_t EventLoop::run_until_time(SimDuration when) {
  std::size_t ran = 0;
  for (;;) {
    // Drop cancelled entries sitting at the head so the peek below sees
    // the true earliest live event.
    while (!heap_.empty() && cancelled_.count(heap_.front().id) > 0) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      cancelled_.erase(heap_.back().id);
      heap_.pop_back();
    }
    if (heap_.empty() || heap_.front().when.ns > when.ns) break;
    if (step()) ++ran;
  }
  clock_->advance_to(when);
  return ran;
}

SimDuration EventLoop::jitter(SimDuration max) {
  if (max.ns <= 0) return {};
  return SimDuration::nanos(
      static_cast<std::int64_t>(rng_.next_below(static_cast<std::uint64_t>(max.ns) + 1)));
}

}  // namespace kosha

// Load-balance report: ingest a (scaled-down) departmental trace into a
// real Kosha cluster at two distribution levels and print how evenly the
// bytes land across nodes — the live-system counterpart of Figure 5's
// simulation.

#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "trace/fs_trace.hpp"
#include "trace/mab.hpp"

namespace {

using namespace kosha;

void report(unsigned level) {
  ClusterConfig config;
  config.nodes = 16;
  config.kosha.distribution_level = level;
  config.kosha.replicas = 0;  // count primary placement only, like Fig. 5
  config.node_capacity_bytes = 8ull << 30;
  config.seed = 11;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));

  trace::FsTraceConfig trace_config;
  trace_config.users = 12;
  trace_config.files = 3000;
  trace_config.total_bytes = 96ull << 20;
  const auto trace = trace::generate_fs_trace(trace_config);

  for (const auto& dir : trace.directories) (void)mount.mkdir_p(dir);
  std::size_t stored = 0;
  for (const auto& file : trace.files) {
    if (mount.write_file(file.path, trace::mab_content(file.size, stored)).ok()) ++stored;
  }

  RunningStats share;
  std::uint64_t total = 0;
  for (const auto host : cluster.live_hosts()) total += cluster.server(host).store().used_bytes();
  std::printf("distribution level %u: %zu/%zu files stored\n", level, stored,
              trace.files.size());
  for (const auto host : cluster.live_hosts()) {
    const auto bytes = cluster.server(host).store().used_bytes();
    const double pct = 100.0 * static_cast<double>(bytes) / static_cast<double>(total);
    share.add(pct);
    std::printf("  host %2u: %6.2f%%  %s\n", host, pct,
                std::string(static_cast<std::size_t>(pct), '#').c_str());
  }
  std::printf("  mean %.2f%%  stddev %.2f%%\n\n", share.mean(), share.stddev());
}

}  // namespace

int main() {
  std::printf("How directory distribution spreads a department across 16 desktops\n\n");
  report(1);
  report(4);
  std::printf("Deeper distribution levels spread subdirectories to more nodes,\n"
              "approaching the balance of hashing every file individually (Fig. 5).\n");
  return 0;
}

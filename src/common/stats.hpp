#pragma once

// Summary statistics for experiment harnesses.

#include <cstddef>
#include <vector>

namespace kosha {

/// Single-pass accumulator for mean and (sample) standard deviation
/// (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance / standard deviation (the paper reports dispersion
  /// across a fixed set of nodes, which is a population, not a sample).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0..100) by linear interpolation; sorts a copy.
[[nodiscard]] double percentile(std::vector<double> values, double p);

}  // namespace kosha

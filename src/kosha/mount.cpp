#include "kosha/mount.hpp"

#include "common/path.hpp"

namespace kosha {

void KoshaMount::invalidate(std::string_view path) {
  const std::string normalized = normalize_path(path);
  for (auto it = handle_cache_.begin(); it != handle_cache_.end();) {
    if (path_is_within(it->first, normalized)) {
      it = handle_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

nfs::NfsResult<VirtualHandle> KoshaMount::resolve(std::string_view path) {
  const std::string normalized = normalize_path(path);
  if (const auto it = handle_cache_.find(normalized); it != handle_cache_.end()) {
    return it->second;
  }
  auto current = daemon_->root();
  if (!current.ok()) return current;
  std::string prefix;
  for (const auto& component : split_path(normalized)) {
    prefix += '/';
    prefix += component;
    const auto next = daemon_->lookup(*current, component);
    if (!next.ok()) return next.error();
    handle_cache_[prefix] = next->handle;
    current = next->handle;
  }
  return current;
}

nfs::NfsResult<std::pair<VirtualHandle, std::string>> KoshaMount::parent_of(
    std::string_view path) {
  const std::string normalized = normalize_path(path);
  if (normalized.empty() || normalized == "/") return nfs::NfsStat::kInval;
  const auto parent = resolve(path_parent(normalized));
  if (!parent.ok()) return parent.error();
  return std::make_pair(*parent, path_basename(normalized));
}

nfs::NfsResult<VirtualHandle> KoshaMount::mkdir_p(std::string_view path) {
  auto current = daemon_->root();
  if (!current.ok()) return current;
  std::string prefix;
  for (const auto& component : split_path(path)) {
    prefix += '/';
    prefix += component;
    if (const auto it = handle_cache_.find(prefix); it != handle_cache_.end()) {
      current = it->second;
      continue;
    }
    auto next = daemon_->lookup(*current, component);
    if (next.ok()) {
      if (next->attr.type != fs::FileType::kDirectory) return nfs::NfsStat::kNotDir;
      handle_cache_[prefix] = next->handle;
      current = next->handle;
      continue;
    }
    if (next.error() != nfs::NfsStat::kNoEnt) return next.error();
    const auto made = daemon_->mkdir(*current, component);
    if (!made.ok()) return made.error();
    handle_cache_[prefix] = made->handle;
    current = made->handle;
  }
  return current;
}

nfs::NfsResult<Unit> KoshaMount::write_file(std::string_view path, std::string_view content) {
  const auto parent = parent_of(path);
  if (!parent.ok()) return parent.error();
  const auto& [dir, name] = parent.value();

  auto file = daemon_->lookup(dir, name);
  if (!file.ok()) {
    if (file.error() != nfs::NfsStat::kNoEnt) return file.error();
    file = daemon_->create(dir, name);
    if (!file.ok()) return file.error();
  } else if (file->attr.type != fs::FileType::kFile) {
    return nfs::NfsStat::kIsDir;
  } else if (const auto truncated = daemon_->truncate(file->handle, 0); !truncated.ok()) {
    return truncated.error();
  }
  handle_cache_[normalize_path(path)] = file->handle;
  const auto written = daemon_->write(file->handle, 0, content);
  if (!written.ok()) return written.error();
  return Unit{};
}

nfs::NfsResult<std::string> KoshaMount::read_file(std::string_view path) {
  const auto file = resolve(path);
  if (!file.ok()) return file.error();
  std::string out;
  constexpr std::uint32_t kChunk = 64 * 1024;
  for (;;) {
    const auto chunk = daemon_->read(*file, out.size(), kChunk);
    if (!chunk.ok()) return chunk.error();
    out += chunk->data;
    if (chunk->eof || chunk->data.empty()) break;
  }
  return out;
}

nfs::NfsResult<fs::Attr> KoshaMount::stat(std::string_view path) {
  const auto handle = resolve(path);
  if (!handle.ok()) return handle.error();
  auto attr = daemon_->getattr(*handle);
  if (!attr.ok() && attr.error() == nfs::NfsStat::kStale) {
    // The cached dentry pointed at a removed object: revalidate from
    // scratch, like the kernel's NFS client would.
    invalidate(path);
    const auto fresh = resolve(path);
    if (!fresh.ok()) return fresh.error();
    attr = daemon_->getattr(*fresh);
  }
  return attr;
}

bool KoshaMount::exists(std::string_view path) { return stat(path).ok(); }

nfs::NfsResult<std::vector<fs::DirEntry>> KoshaMount::list(std::string_view path) {
  const auto handle = resolve(path);
  if (!handle.ok()) return handle.error();
  const auto listing = daemon_->readdir(*handle);
  if (!listing.ok()) return listing.error();
  return listing->entries;
}

nfs::NfsResult<Unit> KoshaMount::remove(std::string_view path) {
  const auto parent = parent_of(path);
  if (!parent.ok()) return parent.error();
  invalidate(path);
  return daemon_->remove(parent->first, parent->second);
}

nfs::NfsResult<Unit> KoshaMount::rmdir(std::string_view path) {
  const auto parent = parent_of(path);
  if (!parent.ok()) return parent.error();
  invalidate(path);
  return daemon_->rmdir(parent->first, parent->second);
}

nfs::NfsResult<Unit> KoshaMount::remove_all(std::string_view path) {
  const auto parent = parent_of(path);
  if (!parent.ok()) return parent.error();
  invalidate(path);
  return daemon_->remove_tree(parent->first, parent->second);
}

nfs::NfsResult<Unit> KoshaMount::rename(std::string_view from, std::string_view to) {
  const auto from_parent = parent_of(from);
  if (!from_parent.ok()) return from_parent.error();
  const auto to_parent = parent_of(to);
  if (!to_parent.ok()) return to_parent.error();
  invalidate(from);
  invalidate(to);
  return daemon_->rename(from_parent->first, from_parent->second, to_parent->first,
                         to_parent->second);
}

}  // namespace kosha

#include "common/tracing.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/json.hpp"

namespace kosha {

TraceContext Tracer::begin_span(std::string_view name, std::uint32_t host) {
  return begin_span_under(current(), name, host);
}

TraceContext Tracer::begin_span_under(TraceContext parent, std::string_view name,
                                      std::uint32_t host) {
  Open open;
  open.ctx.span_id = next_id_++;
  open.ctx.trace_id = parent.valid() ? parent.trace_id : next_id_++;
  open.record.trace_id = open.ctx.trace_id;
  open.record.span_id = open.ctx.span_id;
  open.record.parent_id = parent.valid() ? parent.span_id : 0;
  open.record.name = name;
  open.record.host = host;
  open.record.start_ns = clock_->now().ns;
  open.record.status = "ok";
  stack_.push_back(std::move(open));
  return stack_.back().ctx;
}

TraceContext Tracer::emit_span(TraceContext parent, std::string_view name, std::uint32_t host,
                               SimDuration start, SimDuration end, std::string_view status) {
  if (!enabled()) return {};
  SpanRecord record;
  record.span_id = next_id_++;
  record.trace_id = parent.valid() ? parent.trace_id : next_id_++;
  record.parent_id = parent.valid() ? parent.span_id : 0;
  record.name = name;
  record.host = host;
  record.start_ns = start.ns;
  record.end_ns = end.ns;
  record.status = status;
  const TraceContext ctx{record.trace_id, record.span_id};
  spans_.push_back(std::move(record));
  return ctx;
}

// Span tags own their strings by design; callers gate on enabled()/active().
// kosha-lint: allow(hot-alloc): runs only when tracing is explicitly enabled
void Tracer::tag(std::string_view key, std::string_view value) {
  if (stack_.empty()) return;
  stack_.back().record.tags.emplace_back(std::string(key), std::string(value));
}

void Tracer::set_status(std::string_view status) {
  if (stack_.empty()) return;
  stack_.back().record.status = status;
}

void Tracer::end_span() {
  if (stack_.empty()) return;
  SpanRecord record = std::move(stack_.back().record);
  stack_.pop_back();
  record.end_ns = clock_->now().ns;
  spans_.push_back(std::move(record));
}

void Tracer::clear() {
  stack_.clear();
  spans_.clear();
  next_id_ = 1;
}

std::string Tracer::to_jsonl() const {
  std::string out;
  for (const SpanRecord& s : spans_) {
    out += "{\"trace\": ";
    out += json_number(static_cast<double>(s.trace_id));
    out += ", \"span\": " + json_number(static_cast<double>(s.span_id));
    out += ", \"parent\": " + json_number(static_cast<double>(s.parent_id));
    out += ", \"name\": \"" + json_escape(s.name) + "\"";
    out += ", \"host\": " + json_number(static_cast<double>(s.host));
    out += ", \"start_ns\": " + json_number(static_cast<double>(s.start_ns));
    out += ", \"end_ns\": " + json_number(static_cast<double>(s.end_ns));
    out += ", \"status\": \"" + json_escape(s.status) + "\"";
    if (!s.tags.empty()) {
      out += ", \"tags\": {";
      bool first = true;
      for (const auto& [k, v] : s.tags) {
        if (!first) out += ", ";
        first = false;
        out += "\"";
        out += json_escape(k);
        out += "\": \"";
        out += json_escape(v);
        out += "\"";
      }
      out += "}";
    }
    out += "}\n";
  }
  return out;
}

namespace {

void render_span(std::string& out, const SpanRecord& span,
                 const std::map<std::uint64_t, std::vector<const SpanRecord*>>& children,
                 const std::string& prefix, bool last) {
  out += prefix;
  if (!prefix.empty() || last) out += last ? "`-- " : "|-- ";
  char line[256];
  std::snprintf(line, sizeof(line), "%s [host %u] %.1fus", span.name.c_str(), span.host,
                static_cast<double>(span.end_ns - span.start_ns) * 1e-3);
  out += line;
  if (span.status != "ok") {
    out += " !";
    out += span.status;
  }
  for (const auto& [k, v] : span.tags) {
    out += " ";
    out += k;
    out += "=";
    out += v;
  }
  out += "\n";
  const auto it = children.find(span.span_id);
  if (it == children.end()) return;
  std::string child_prefix = prefix;
  if (!prefix.empty() || last) child_prefix += last ? "    " : "|   ";
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    render_span(out, *it->second[i], children, child_prefix, i + 1 == it->second.size());
  }
}

}  // namespace

std::string render_span_forest(const std::vector<SpanRecord>& spans) {
  // Sort children by start time then span id; spans arrive in end order.
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent_id == 0) {
      roots.push_back(&s);
    } else {
      children[s.parent_id].push_back(&s);
    }
  }
  const auto by_start = [](const SpanRecord* a, const SpanRecord* b) {
    return a->start_ns != b->start_ns ? a->start_ns < b->start_ns : a->span_id < b->span_id;
  };
  for (auto& [id, kids] : children) {
    (void)id;
    std::sort(kids.begin(), kids.end(), by_start);
  }
  std::sort(roots.begin(), roots.end(), by_start);

  std::string out;
  for (const SpanRecord* root : roots) {
    char head[64];
    std::snprintf(head, sizeof(head), "trace %llu\n",
                  static_cast<unsigned long long>(root->trace_id));
    out += head;
    render_span(out, *root, children, "", true);
  }
  return out;
}

Result<std::vector<SpanRecord>, std::string> parse_trace_jsonl(std::string_view text) {
  std::vector<SpanRecord> spans;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    auto parsed = parse_json(line);
    if (!parsed.ok()) {
      return "line " + std::to_string(line_no) + ": " + parsed.error();
    }
    const JsonValue& v = parsed.value();
    SpanRecord s;
    s.trace_id = static_cast<std::uint64_t>(v.number_or("trace", 0));
    s.span_id = static_cast<std::uint64_t>(v.number_or("span", 0));
    s.parent_id = static_cast<std::uint64_t>(v.number_or("parent", 0));
    s.name = v.string_or("name", "");
    s.host = static_cast<std::uint32_t>(v.number_or("host", 0));
    s.start_ns = static_cast<std::int64_t>(v.number_or("start_ns", 0));
    s.end_ns = static_cast<std::int64_t>(v.number_or("end_ns", 0));
    s.status = v.string_or("status", "ok");
    if (const JsonValue* tags = v.find("tags"); tags != nullptr && tags->is_object()) {
      for (const auto& [k, tv] : tags->members()) {
        s.tags.emplace_back(k, tv.is_string() ? tv.as_string() : json_number(tv.as_number()));
      }
    }
    spans.push_back(std::move(s));
  }
  return spans;
}

}  // namespace kosha

#include "kosha/repair.hpp"

#include <cassert>
#include <string>

#include "common/tracing.hpp"
#include "kosha/replication.hpp"

namespace kosha {

RepairDaemon::RepairDaemon(RepairDaemonConfig config, Runtime* runtime, net::HostId host)
    : config_(config), runtime_(runtime), host_(host) {
  assert(runtime_ != nullptr && runtime_->loop != nullptr);
}

void RepairDaemon::start() {
  if (running_) return;
  running_ = true;
  runtime_->repair_daemons[host_] = this;
  schedule_tick();
}

void RepairDaemon::stop() {
  if (!running_) return;
  running_ = false;
  if (runtime_->repair_daemon(host_) == this) runtime_->repair_daemons.erase(host_);
}

void RepairDaemon::schedule_tick() {
  EventLoop* loop = runtime_->loop;
  const SimDuration delay = config_.period + loop->jitter(config_.jitter);
  Runtime* runtime = runtime_;
  const net::HostId host = host_;
  loop->schedule_after(delay, "repair.tick", [runtime, host] {
    if (RepairDaemon* d = runtime->repair_daemon(host)) d->tick();
  });
}

void RepairDaemon::tick() {
  if (!running_) return;
  ReplicaManager* rm = runtime_->replica_manager(host_);
  if (rm == nullptr) {  // the host died under us; the revival starts anew
    stop();
    return;
  }
  ++stats_.ticks;
  // The whole pass is background traffic: counted, never charged to
  // whatever foreground operation is in flight (DESIGN §8 invariant).
  ClockPauser pause(*runtime_->clock);
  SpanScope span(runtime_->tracer, "repair.tick", host_);
  // Priority-aware admission: when this host is already serving a burst of
  // foreground RPCs, skip the pushes this pass (audits still run) — repair
  // bandwidth is exactly the capacity the clients are short of. The missed
  // work is not lost, only deferred to a calmer tick.
  std::size_t push_limit = config_.max_pushes_per_tick;
  const auto& overload = runtime_->config.overload;
  if (overload.enabled && overload.repair_yield_inflight > 0 &&
      runtime_->network->inflight(host_) >=
          static_cast<int>(overload.repair_yield_inflight)) {
    push_limit = 0;
    ++stats_.yields;
    if (span.active()) span.tag("yield", "1");
  }
  const auto report = rm->reconcile(push_limit);
  stats_.promoted += report.promoted;
  stats_.handed_off += report.handed_off;
  stats_.pushed += report.pushed;
  stats_.dropped += report.dropped;
  stats_.last_missing = report.missing;
  if (span.active() && (report.promoted + report.handed_off + report.pushed + report.dropped +
                        report.missing) != 0) {
    // Tag only ticks that did repair work; idle sweeps stay lightweight.
    span.tag("promoted", std::to_string(report.promoted));
    span.tag("pushed", std::to_string(report.pushed));
    span.tag("missing", std::to_string(report.missing));
  }
  schedule_tick();
}

}  // namespace kosha

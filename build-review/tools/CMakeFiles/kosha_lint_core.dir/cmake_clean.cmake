file(REMOVE_RECURSE
  "CMakeFiles/kosha_lint_core.dir/lint/lint.cpp.o"
  "CMakeFiles/kosha_lint_core.dir/lint/lint.cpp.o.d"
  "libkosha_lint_core.a"
  "libkosha_lint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_lint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

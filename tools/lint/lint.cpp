#include "lint/lint.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "lint/graph.hpp"
#include "lint/index.hpp"
#include "lint/rules.hpp"

namespace kosha::lint {

// ---------------------------------------------------------------------------
// Linter — orchestration: tokenize on add, index + graph + rules on run.
// ---------------------------------------------------------------------------

struct Linter::Impl {
  Config config;
  Index index;
  CallGraph graph;
  RuleResult last;
  bool ran = false;
};

Linter::Linter(Config config) : impl_(new Impl) { impl_->config = std::move(config); }
Linter::~Linter() { delete impl_; }

void Linter::add_source(std::string path, std::string content) {
  SourceFile f;
  f.path = std::move(path);
  tokenize(content, f);
  impl_->index.add_file(std::move(f));
}

std::size_t Linter::file_count() const { return impl_->index.files().size(); }

std::vector<Diagnostic> Linter::run() {
  impl_->index.build();
  impl_->graph.build(impl_->index);
  impl_->last = run_rules(impl_->config, impl_->index, impl_->graph);
  impl_->ran = true;
  return impl_->last.diags;
}

std::string Linter::graph_dot() const {
  if (!impl_->ran) return std::string();
  return impl_->graph.to_dot(impl_->last.hot_nodes, impl_->last.sink_nodes);
}

std::vector<std::string> Linter::edge_list() const {
  std::vector<std::string> out;
  if (!impl_->ran) return out;
  const auto& nodes = impl_->graph.nodes();
  for (const CallGraph::Edge& e : impl_->graph.edges()) {
    const char* kind = "direct";
    switch (e.kind) {
      case EdgeKind::kDirect: kind = "direct"; break;
      case EdgeKind::kResolved: kind = "resolved"; break;
      case EdgeKind::kOverApprox: kind = "overapprox"; break;
      case EdgeKind::kAnnotated: kind = "annotated"; break;
    }
    out.push_back(nodes[e.from].display + " -> " + nodes[e.to].display + " [" + kind +
                  "]");
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Linter::is_header(const std::string& path) {
  return path.size() >= 4 &&
         (path.compare(path.size() - 4, 4, ".hpp") == 0 ||
          path.compare(path.size() - 2, 2, ".h") == 0);
}

bool Linter::is_cpp_source(const std::string& path) {
  for (const char* ext : {".cpp", ".cc", ".hpp", ".h"}) {
    const std::size_t len = std::char_traits<char>::length(ext);
    if (path.size() >= len && path.compare(path.size() - len, len, ext) == 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Serializers
// ---------------------------------------------------------------------------

std::string to_text(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    out << d.file << ':' << d.line << ": error: " << d.message << " [" << d.rule << ']'
        << '\n';
  }
  return out.str();
}

namespace {
void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}
}  // namespace

std::string to_json(const std::vector<Diagnostic>& diags, std::size_t files_scanned) {
  std::ostringstream out;
  out << "{\n  \"violations\": " << diags.size()
      << ",\n  \"files_scanned\": " << files_scanned << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"file\": ";
    json_escape(out, d.file);
    out << ", \"line\": " << d.line << ", \"rule\": ";
    json_escape(out, d.rule);
    out << ", \"slug\": ";
    json_escape(out, d.slug);
    out << ", \"message\": ";
    json_escape(out, d.message);
    out << '}';
  }
  out << (diags.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
         "master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"kosha_lint\",\n"
      << "          \"informationUri\": \"DESIGN.md\",\n"
      << "          \"rules\": [";
  const auto& docs = rule_docs();
  for (std::size_t i = 0; i < docs.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "            {\"id\": ";
    json_escape(out, docs[i].rule);
    out << ", \"shortDescription\": {\"text\": ";
    json_escape(out, docs[i].summary);
    out << "}}";
  }
  out << "\n          ]\n        }\n      },\n      \"results\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << (i == 0 ? "\n" : ",\n") << "        {\"ruleId\": ";
    json_escape(out, d.rule);
    out << ", \"level\": \"error\", \"message\": {\"text\": ";
    json_escape(out, d.message);
    out << "}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": ";
    json_escape(out, d.file);
    out << "}, \"region\": {\"startLine\": " << (d.line > 0 ? d.line : 1) << "}}}]}";
  }
  out << (diags.empty() ? "]" : "\n      ]") << "\n    }\n  ]\n}\n";
  return out.str();
}

const std::vector<RuleDoc>& rule_docs() {
  static const std::vector<RuleDoc> kDocs = {
      {"D1", "wall-clock",
       "no wall-clock/entropy primitives outside the sanctioned seams",
       "system_clock, steady_clock, time(), rand(), std::random_device, getenv "
       "and friends are banned outside common/rng, common/cli and "
       "common/profile.cpp: same-seed runs must be byte-identical, so every "
       "time or random value must come from SimClock or the seeded Rng."},
      {"D2", "unordered-iter",
       "no iteration over unordered containers",
       "range-for or .begin() loops over std::unordered_map/set visit elements "
       "in implementation-defined order, which leaks into traces, metrics and "
       "migration order. Iterate a sorted copy, use std::map, or annotate "
       "allow(unordered-iter) with why the loop is order-free."},
      {"D3", "event-callback",
       "no blocking sleeps; callbacks must not mutate the clock",
       "virtual time only moves when the EventLoop dispatches; sleep_for/usleep "
       "stall the simulation without advancing it, and set_now inside a "
       "scheduled callback races the loop's own clock advance."},
      {"D4", "event-reachable",
       "nothing reachable from the event loop may reach wall clock or entropy",
       "the transitive closure of D1+D3 over the call graph: starting from the "
       "event roots (callbacks passed to schedule_at/schedule_after, "
       "EventLoop::step, the SimNetwork service surface), no reachable function "
       "may contain a wall-clock/entropy/sleep token. The one sanctioned seam "
       "is src/common/profile.cpp (profiler measurement of the simulator, "
       "never input to it). Annotate the sink function's definition line with "
       "allow(event-reachable) and a reason only when the value provably "
       "cannot flow into simulated state."},
      {"R1", "must-check",
       "status returns must be consumed",
       "a call whose every candidate returns FsStatus/NfsStat/NfsStatus/"
       "RpcStatus or a Result<...> must be assigned, compared, returned, or "
       "(void)-cast. A (void) cast additionally needs an adjacent "
       "allow(ignore-status) annotation saying why dropping the status is "
       "safe — at-most-once semantics die quietly when error paths are "
       "ignored."},
      {"A1", "hot-alloc",
       "no allocation on the event hot path",
       "functions reachable from the event roots may not construct "
       "std::string, call new/std::to_string, or insert into node-based "
       "associative containers: dispatch-path allocations dominate the "
       "simulator profile (see docs/PERF.md). allow(hot-alloc) on a "
       "function's definition line excuses its body and stops hotness from "
       "propagating through it, marking a sanctioned allocation subtree "
       "(e.g. setup or report formatting)."},
      {"P1", "drc",
       "non-idempotent handlers are at-most-once through the DRC",
       "every NfsServer handler for CREATE/MKDIR/SYMLINK/LINK/REMOVE/RMDIR/"
       "RENAME/SETATTR must consult drc_find before touching store_ and record "
       "its reply with drc_store, or a retransmission re-executes the op."},
      {"P2", "rpc-ctx",
       "RpcContext carries the full {client, xid, boot} triple",
       "partial contexts defeat the duplicate-request cache's incarnation "
       "check; the empty {} default argument is the documented absent-context "
       "sentinel for direct server calls."},
      {"P3", "early-reject",
       "overload rejects fire before the DRC store",
       "a kOverloaded reply recorded in the DRC would be replayed to the "
       "retransmission of a request that never executed, shadowing the real "
       "execution forever."},
      {"P4", "deadline-prop",
       "child RpcContexts propagate the parent's deadline",
       "a child context built on the koshad failover or NFS client paths "
       "without the parent's deadline gives downstream admission control an "
       "infinite time budget, defeating deadline-based shedding."},
      {"S1", "storage-seam",
       "concrete storage backends stay behind fs::make_backend",
       "LocalFs/CasFs may be named only in src/fs/ and tests/; everything "
       "else programs against fs::StorageBackend so new backends slot in "
       "without touching consumers."},
      {"H1", "header",
       "header hygiene",
       "#pragma once present; no `using namespace` at header scope."},
      {"E1", "edge",
       "edge() annotations must resolve and carry a reason",
       "a `kosha-lint: edge(Target::fn): reason` comment asserts a call edge "
       "at a type-erased seam the resolver cannot see; one that names no "
       "indexed function or omits the reason is dropped, so it errors instead "
       "of silently losing graph coverage."},
  };
  return kDocs;
}

int exit_code(const std::vector<Diagnostic>& diags) { return diags.empty() ? 0 : 1; }

}  // namespace kosha::lint

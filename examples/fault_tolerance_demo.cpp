// Fault-tolerance demo (paper §4.3-§4.4): kill the node holding a user's
// files and watch clients keep reading through transparent failover; then
// bring the node back (it purges and rejoins under a fresh id) and kill a
// second node. Demonstrates replica promotion and continuous replica
// maintenance.

#include <cstdio>

#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

int main() {
  using namespace kosha;

  ClusterConfig config;
  config.nodes = 8;
  config.kosha.distribution_level = 1;
  config.kosha.replicas = 2;
  KoshaCluster cluster(config);

  // Find where /bob will live and run the client somewhere else, so the
  // demo can crash the storage node without crashing its own client.
  net::HostId client = 0;
  {
    KoshaMount probe(&cluster.daemon(0));
    (void)probe.mkdir_p("/bob");
    const auto handle = probe.resolve("/bob");
    const auto* entry = cluster.daemon(0).handle_table().find(*handle);
    if (entry != nullptr && entry->real.server == client) client = 1;
  }
  KoshaMount mount(&cluster.daemon(client));

  for (int i = 0; i < 20; ++i) {
    (void)mount.write_file("/bob/file" + std::to_string(i),
                           "important data #" + std::to_string(i));
  }

  // Find the primary replica node for /bob.
  const auto handle = mount.resolve("/bob/file0");
  if (!handle.ok()) return 1;
  const auto* entry = cluster.daemon(client).handle_table().find(*handle);
  const net::HostId primary = entry->real.server;
  std::printf("client runs on host %u; primary replica for /bob lives on host %u\n", client,
              primary);

  std::printf("crashing host %u ...\n", primary);
  cluster.fail_node(primary);

  int readable = 0;
  for (int i = 0; i < 20; ++i) {
    if (mount.read_file("/bob/file" + std::to_string(i)).ok()) ++readable;
  }
  std::printf("after the crash: %d/20 files still readable (failovers: %llu)\n", readable,
              static_cast<unsigned long long>(cluster.daemon(client).stats().failovers));

  std::printf("reviving host %u (Kosha purges it; it rejoins with a fresh node id)\n",
              primary);
  cluster.revive_node(primary);

  // Kill the *new* primary too — replicas were re-established meanwhile.
  const auto handle2 = mount.resolve("/bob/file0");
  if (handle2.ok()) {
    const auto* entry2 = cluster.daemon(client).handle_table().find(*handle2);
    if (entry2 != nullptr && entry2->real.server != client) {
      std::printf("crashing the promoted primary, host %u ...\n", entry2->real.server);
      cluster.fail_node(entry2->real.server);
    }
  }
  readable = 0;
  for (int i = 0; i < 20; ++i) {
    if (mount.read_file("/bob/file" + std::to_string(i)).ok()) ++readable;
  }
  std::printf("after the second crash: %d/20 files still readable\n", readable);
  std::printf("availability survives because the primary keeps %u replicas on its\n"
              "leaf-set neighbors and re-establishes them after every failure.\n",
              config.kosha.replicas);
  return 0;
}

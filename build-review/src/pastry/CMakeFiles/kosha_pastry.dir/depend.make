# Empty dependencies file for kosha_pastry.
# This may be replaced when dependencies are built.

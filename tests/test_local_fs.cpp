// LocalFs tests: namespace operations, data operations, capacity
// accounting, generation/staleness, and the path helpers.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fs/local_fs.hpp"

namespace kosha::fs {
namespace {

TEST(LocalFs, RootExists) {
  LocalFs store;
  const auto attr = store.getattr(store.root());
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, FileType::kDirectory);
  EXPECT_EQ(store.live_inode_count(), 1u);
}

TEST(LocalFs, CreateLookupRoundTrip) {
  LocalFs store;
  const auto file = store.create(store.root(), "hello.txt", 0640, 7);
  ASSERT_TRUE(file.ok());
  const auto found = store.lookup(store.root(), "hello.txt");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), file.value());
  const auto attr = store.getattr(*file);
  EXPECT_EQ(attr->mode, 0640u);
  EXPECT_EQ(attr->uid, 7u);
  EXPECT_EQ(attr->size, 0u);
}

TEST(LocalFs, CreateErrors) {
  LocalFs store;
  EXPECT_EQ(store.create(store.root(), "").error(), FsStatus::kInval);
  EXPECT_EQ(store.create(store.root(), ".").error(), FsStatus::kInval);
  EXPECT_EQ(store.create(store.root(), "..").error(), FsStatus::kInval);
  EXPECT_EQ(store.create(store.root(), "a/b").error(), FsStatus::kInval);
  ASSERT_TRUE(store.create(store.root(), "x").ok());
  EXPECT_EQ(store.create(store.root(), "x").error(), FsStatus::kExist);
  EXPECT_EQ(store.create(999, "y").error(), FsStatus::kStale);
  const auto file = store.lookup(store.root(), "x");
  EXPECT_EQ(store.create(*file, "y").error(), FsStatus::kNotDir);
}

TEST(LocalFs, LookupErrors) {
  LocalFs store;
  EXPECT_EQ(store.lookup(store.root(), "nope").error(), FsStatus::kNoEnt);
  const auto file = store.create(store.root(), "f");
  EXPECT_EQ(store.lookup(*file, "x").error(), FsStatus::kNotDir);
}

TEST(LocalFs, WriteReadRoundTrip) {
  LocalFs store;
  const auto file = store.create(store.root(), "data");
  ASSERT_TRUE(store.write(*file, 0, "hello world").ok());
  const auto text = store.read(*file, 0, 100);
  EXPECT_EQ(text.value(), "hello world");
  EXPECT_EQ(store.read(*file, 6, 5).value(), "world");
  EXPECT_EQ(store.read(*file, 100, 5).value(), "");
  EXPECT_EQ(store.used_bytes(), 11u);
}

TEST(LocalFs, SparseWriteZeroFills) {
  LocalFs store;
  const auto file = store.create(store.root(), "sparse");
  ASSERT_TRUE(store.write(*file, 5, "x").ok());
  const auto data = store.read(*file, 0, 10);
  EXPECT_EQ(data->size(), 6u);
  EXPECT_EQ((*data)[0], '\0');
  EXPECT_EQ((*data)[5], 'x');
}

TEST(LocalFs, OverwriteDoesNotGrow) {
  LocalFs store;
  const auto file = store.create(store.root(), "f");
  (void)store.write(*file, 0, "aaaa");
  (void)store.write(*file, 1, "bb");
  EXPECT_EQ(store.read(*file, 0, 10).value(), "abba");
  EXPECT_EQ(store.used_bytes(), 4u);
}

TEST(LocalFs, TruncateGrowsAndShrinks) {
  LocalFs store;
  const auto file = store.create(store.root(), "f");
  (void)store.write(*file, 0, "abcdef");
  ASSERT_TRUE(store.truncate(*file, 3).ok());
  EXPECT_EQ(store.read(*file, 0, 10).value(), "abc");
  EXPECT_EQ(store.used_bytes(), 3u);
  ASSERT_TRUE(store.truncate(*file, 5).ok());
  EXPECT_EQ(store.used_bytes(), 5u);
  EXPECT_EQ(store.getattr(*file)->size, 5u);
  const auto dir = store.mkdir(store.root(), "d");
  EXPECT_EQ(store.truncate(*dir, 0).error(), FsStatus::kIsDir);
}

TEST(LocalFs, CapacityEnforced) {
  FsConfig config;
  config.capacity_bytes = 100;
  LocalFs store(config);
  const auto file = store.create(store.root(), "f");
  EXPECT_TRUE(store.write(*file, 0, std::string(100, 'x')).ok());
  EXPECT_EQ(store.write(*file, 100, "y").error(), FsStatus::kNoSpace);
  EXPECT_EQ(store.utilization(), 1.0);
  EXPECT_TRUE(store.would_exceed(1));
  EXPECT_FALSE(store.would_exceed(0));
  // Shrinking frees space.
  ASSERT_TRUE(store.truncate(*file, 50).ok());
  EXPECT_TRUE(store.write(*file, 50, std::string(50, 'z')).ok());
}

TEST(LocalFs, UtilizationThreshold) {
  FsConfig config;
  config.capacity_bytes = 100;
  config.utilization_threshold = 0.5;
  LocalFs store(config);
  const auto file = store.create(store.root(), "f");
  EXPECT_TRUE(store.write(*file, 0, std::string(50, 'x')).ok());
  EXPECT_EQ(store.write(*file, 50, "y").error(), FsStatus::kNoSpace);
}

TEST(LocalFs, RemoveFile) {
  LocalFs store;
  const auto file = store.create(store.root(), "f");
  (void)store.write(*file, 0, "abc");
  ASSERT_TRUE(store.remove(store.root(), "f").ok());
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_EQ(store.lookup(store.root(), "f").error(), FsStatus::kNoEnt);
  EXPECT_EQ(store.remove(store.root(), "f").error(), FsStatus::kNoEnt);
  const auto dir = store.mkdir(store.root(), "d");
  (void)dir;
  EXPECT_EQ(store.remove(store.root(), "d").error(), FsStatus::kIsDir);
}

TEST(LocalFs, RmdirOnlyEmptyDirectories) {
  LocalFs store;
  const auto dir = store.mkdir(store.root(), "d");
  (void)store.create(*dir, "f");
  EXPECT_EQ(store.rmdir(store.root(), "d").error(), FsStatus::kNotEmpty);
  ASSERT_TRUE(store.remove(*dir, "f").ok());
  EXPECT_TRUE(store.rmdir(store.root(), "d").ok());
  const auto file = store.create(store.root(), "f");
  (void)file;
  EXPECT_EQ(store.rmdir(store.root(), "f").error(), FsStatus::kNotDir);
}

TEST(LocalFs, StaleHandleAfterRemove) {
  LocalFs store;
  const auto file = store.create(store.root(), "f");
  const auto gen = store.getattr(*file)->generation;
  ASSERT_TRUE(store.remove(store.root(), "f").ok());
  EXPECT_EQ(store.getattr(*file).error(), FsStatus::kStale);
  // Recreating reuses the inode slot with a bumped generation.
  const auto again = store.create(store.root(), "f2");
  if (again.value() == file.value()) {
    EXPECT_GT(store.getattr(*again)->generation, gen);
  }
}

TEST(LocalFs, RenameWithinAndAcrossDirs) {
  LocalFs store;
  const auto d1 = store.mkdir(store.root(), "d1");
  const auto d2 = store.mkdir(store.root(), "d2");
  const auto file = store.create(*d1, "f");
  (void)store.write(*file, 0, "content");
  ASSERT_TRUE(store.rename(*d1, "f", *d2, "g").ok());
  EXPECT_EQ(store.lookup(*d1, "f").error(), FsStatus::kNoEnt);
  const auto moved = store.lookup(*d2, "g");
  EXPECT_EQ(store.read(*moved, 0, 100).value(), "content");
}

TEST(LocalFs, RenameReplacesFileTarget) {
  LocalFs store;
  const auto a = store.create(store.root(), "a");
  (void)store.write(*a, 0, "aaa");
  const auto b = store.create(store.root(), "b");
  (void)store.write(*b, 0, "bb");
  ASSERT_TRUE(store.rename(store.root(), "a", store.root(), "b").ok());
  EXPECT_EQ(store.read(*store.lookup(store.root(), "b"), 0, 10).value(), "aaa");
  EXPECT_EQ(store.used_bytes(), 3u);
}

TEST(LocalFs, RenameRefusesDirectoryTarget) {
  LocalFs store;
  (void)store.create(store.root(), "a");
  (void)store.mkdir(store.root(), "d");
  EXPECT_EQ(store.rename(store.root(), "a", store.root(), "d").error(), FsStatus::kIsDir);
}

TEST(LocalFs, RenameMovesDirectories) {
  LocalFs store;
  const auto d1 = store.mkdir(store.root(), "d1");
  const auto sub = store.mkdir(*d1, "sub");
  (void)store.create(*sub, "f");
  const auto d2 = store.mkdir(store.root(), "d2");
  ASSERT_TRUE(store.rename(*d1, "sub", *d2, "moved").ok());
  EXPECT_TRUE(store.resolve("/d2/moved/f").ok());
}

TEST(LocalFs, RenameNoopOntoItself) {
  LocalFs store;
  (void)store.create(store.root(), "a");
  EXPECT_TRUE(store.rename(store.root(), "a", store.root(), "a").ok());
  EXPECT_TRUE(store.lookup(store.root(), "a").ok());
}

TEST(LocalFs, SymlinkRoundTrip) {
  LocalFs store;
  const auto link = store.symlink(store.root(), "l", "target#1");
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(store.readlink(*link).value(), "target#1");
  EXPECT_EQ(store.getattr(*link)->type, FileType::kSymlink);
  const auto file = store.create(store.root(), "f");
  EXPECT_EQ(store.readlink(*file).error(), FsStatus::kInval);
  // Symlinks are removed with remove(), like files.
  EXPECT_TRUE(store.remove(store.root(), "l").ok());
}

TEST(LocalFs, ReaddirListsSorted) {
  LocalFs store;
  (void)store.create(store.root(), "b");
  (void)store.mkdir(store.root(), "a");
  (void)store.symlink(store.root(), "c", "t");
  const auto entries = store.readdir(store.root());
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].name, "a");
  EXPECT_EQ((*entries)[0].type, FileType::kDirectory);
  EXPECT_EQ((*entries)[1].name, "b");
  EXPECT_EQ((*entries)[1].type, FileType::kFile);
  EXPECT_EQ((*entries)[2].name, "c");
  EXPECT_EQ((*entries)[2].type, FileType::kSymlink);
}

TEST(LocalFs, ResolveAndMkdirP) {
  LocalFs store;
  const auto deep = store.mkdir_p("/a/b/c");
  ASSERT_TRUE(deep.ok());
  EXPECT_EQ(store.resolve("/a/b/c").value(), deep.value());
  EXPECT_EQ(store.resolve("/").value(), store.root());
  EXPECT_EQ(store.resolve("/a/x").error(), FsStatus::kNoEnt);
  // mkdir_p over an existing chain is a no-op.
  EXPECT_EQ(store.mkdir_p("/a/b/c").value(), deep.value());
  // mkdir_p refuses to treat a file as a directory.
  (void)store.create(*deep, "f");
  EXPECT_EQ(store.mkdir_p("/a/b/c/f/g").error(), FsStatus::kNotDir);
}

TEST(LocalFs, RemoveRecursive) {
  LocalFs store;
  (void)store.mkdir_p("/a/b/c");
  const auto c = store.resolve("/a/b/c");
  (void)store.write(*store.create(*c, "f1"), 0, "xx");
  (void)store.write(*store.create(*store.resolve("/a"), "f2"), 0, "yy");
  ASSERT_TRUE(store.remove_recursive(store.root(), "a").ok());
  EXPECT_EQ(store.resolve("/a").error(), FsStatus::kNoEnt);
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_EQ(store.live_inode_count(), 1u);
}

TEST(LocalFs, SubtreeAccounting) {
  LocalFs store;
  (void)store.mkdir_p("/a/b");
  (void)store.write(*store.create(*store.resolve("/a"), "f1"), 0, "123");
  (void)store.write(*store.create(*store.resolve("/a/b"), "f2"), 0, "4567");
  (void)store.symlink(*store.resolve("/a"), "l", "t");
  EXPECT_EQ(store.subtree_bytes(*store.resolve("/a")), 7u);
  EXPECT_EQ(store.subtree_file_count(*store.resolve("/a")), 2u);
  EXPECT_EQ(store.subtree_bytes(*store.resolve("/a/b/f2")), 4u);
}

TEST(LocalFs, PurgeResetsEverythingAndStalesHandles) {
  LocalFs store;
  (void)store.mkdir_p("/a/b");
  const auto file = store.create(*store.resolve("/a"), "f");
  (void)store.write(*file, 0, "data");
  store.purge();
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_EQ(store.live_inode_count(), 1u);
  EXPECT_EQ(store.getattr(*file).error(), FsStatus::kStale);
  EXPECT_TRUE(store.readdir(store.root())->empty());
  // Still usable after purge.
  EXPECT_TRUE(store.create(store.root(), "fresh").ok());
}

TEST(LocalFs, InodeReuseStress) {
  LocalFs store;
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::string> names;
    for (int i = 0; i < 20; ++i) {
      const std::string name = "f" + std::to_string(i);
      ASSERT_TRUE(store.create(store.root(), name).ok());
      names.push_back(name);
    }
    for (const auto& name : names) ASSERT_TRUE(store.remove(store.root(), name).ok());
    EXPECT_EQ(store.live_inode_count(), 1u);
  }
}

}  // namespace
}  // namespace kosha::fs

# Empty dependencies file for test_overlay_invariants.
# This may be replaced when dependencies are built.

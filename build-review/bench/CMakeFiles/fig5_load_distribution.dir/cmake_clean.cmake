file(REMOVE_RECURSE
  "CMakeFiles/fig5_load_distribution.dir/fig5_load_distribution.cpp.o"
  "CMakeFiles/fig5_load_distribution.dir/fig5_load_distribution.cpp.o.d"
  "fig5_load_distribution"
  "fig5_load_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_load_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

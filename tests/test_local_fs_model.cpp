// Model-based property test for LocalFs: a random operation stream is
// applied both to the real file system and to a trivially-correct
// reference model (nested maps); the observable state must agree at every
// step.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fs/local_fs.hpp"

namespace kosha::fs {
namespace {

/// Reference model: a tree of nodes.
struct ModelNode {
  FileType type = FileType::kDirectory;
  std::string data;  // file content / symlink target
  std::map<std::string, std::unique_ptr<ModelNode>> children;
};

class Model {
 public:
  Model() { root_ = std::make_unique<ModelNode>(); }

  ModelNode* resolve(const std::vector<std::string>& parts) {
    ModelNode* cur = root_.get();
    for (const auto& p : parts) {
      if (cur->type != FileType::kDirectory) return nullptr;
      const auto it = cur->children.find(p);
      if (it == cur->children.end()) return nullptr;
      cur = it->second.get();
    }
    return cur;
  }

  std::unique_ptr<ModelNode> root_;
};

/// Compare model and LocalFs subtree-by-subtree.
void expect_equal(LocalFs& fs, InodeId dir, const ModelNode& model, const std::string& where) {
  ASSERT_EQ(model.type, FileType::kDirectory) << where;
  const auto entries = fs.readdir(dir);
  ASSERT_TRUE(entries.ok()) << where;
  ASSERT_EQ(entries->size(), model.children.size()) << where;
  for (const auto& entry : entries.value()) {
    const auto it = model.children.find(entry.name);
    ASSERT_NE(it, model.children.end()) << where << "/" << entry.name;
    const ModelNode& child = *it->second;
    EXPECT_EQ(entry.type, child.type) << where << "/" << entry.name;
    if (child.type == FileType::kFile) {
      const auto data = fs.read(entry.inode, 0, 1 << 20);
      ASSERT_TRUE(data.ok());
      EXPECT_EQ(data.value(), child.data) << where << "/" << entry.name;
    } else if (child.type == FileType::kSymlink) {
      EXPECT_EQ(fs.readlink(entry.inode).value(), child.data);
    } else {
      expect_equal(fs, entry.inode, child, where + "/" + entry.name);
    }
  }
}

class LocalFsModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalFsModel, RandomOperationsMatchReference) {
  LocalFs fs;
  Model model;
  Rng rng(GetParam());

  // Keep a pool of directory paths (as component vectors) to operate in.
  std::vector<std::vector<std::string>> dirs{{}};
  auto random_dir = [&]() -> std::vector<std::string>& {
    return dirs[rng.next_below(dirs.size())];
  };
  auto fs_dir = [&](const std::vector<std::string>& parts) {
    InodeId cur = fs.root();
    for (const auto& p : parts) {
      const auto next = fs.lookup(cur, p);
      if (!next.ok()) return kInvalidInode;
      cur = next.value();
    }
    return cur;
  };

  for (int op = 0; op < 600; ++op) {
    auto& parts = random_dir();
    ModelNode* mdir = model.resolve(parts);
    const InodeId fdir = fs_dir(parts);
    // Skip stale pool entries (directory removed, or replaced by a file).
    if (mdir == nullptr || mdir->type != FileType::kDirectory || fdir == kInvalidInode) {
      continue;
    }
    const std::string name = "n" + std::to_string(rng.next_below(5));
    const unsigned action = static_cast<unsigned>(rng.next_below(8));

    switch (action) {
      case 0: {  // create file
        const auto result = fs.create(fdir, name);
        const bool model_ok = mdir->children.count(name) == 0;
        EXPECT_EQ(result.ok(), model_ok);
        if (result.ok()) {
          auto node = std::make_unique<ModelNode>();
          node->type = FileType::kFile;
          mdir->children.emplace(name, std::move(node));
        }
        break;
      }
      case 1: {  // mkdir
        const auto result = fs.mkdir(fdir, name);
        const bool model_ok = mdir->children.count(name) == 0;
        EXPECT_EQ(result.ok(), model_ok);
        if (result.ok()) {
          mdir->children.emplace(name, std::make_unique<ModelNode>());
          auto path = parts;
          path.push_back(name);
          dirs.push_back(std::move(path));
        }
        break;
      }
      case 2: {  // symlink
        const auto result = fs.symlink(fdir, name, "target" + name);
        const bool model_ok = mdir->children.count(name) == 0;
        EXPECT_EQ(result.ok(), model_ok);
        if (result.ok()) {
          auto node = std::make_unique<ModelNode>();
          node->type = FileType::kSymlink;
          node->data = "target" + name;
          mdir->children.emplace(name, std::move(node));
        }
        break;
      }
      case 3: {  // write to a file
        const auto it = mdir->children.find(name);
        const bool is_file = it != mdir->children.end() && it->second->type == FileType::kFile;
        const auto inode = fs.lookup(fdir, name);
        if (!is_file || !inode.ok()) break;
        const std::uint64_t offset = rng.next_below(20);
        const std::string data = rng.next_name(1 + rng.next_below(30));
        EXPECT_TRUE(fs.write(*inode, offset, data).ok());
        auto& content = it->second->data;
        if (content.size() < offset + data.size()) content.resize(offset + data.size(), '\0');
        std::copy(data.begin(), data.end(),
                  content.begin() + static_cast<std::ptrdiff_t>(offset));
        break;
      }
      case 4: {  // truncate
        const auto it = mdir->children.find(name);
        const bool is_file = it != mdir->children.end() && it->second->type == FileType::kFile;
        const auto inode = fs.lookup(fdir, name);
        if (!is_file || !inode.ok()) break;
        const std::uint64_t size = rng.next_below(40);
        EXPECT_TRUE(fs.truncate(*inode, size).ok());
        it->second->data.resize(size, '\0');
        break;
      }
      case 5: {  // remove (file or symlink)
        const auto result = fs.remove(fdir, name);
        const auto it = mdir->children.find(name);
        const bool model_ok =
            it != mdir->children.end() && it->second->type != FileType::kDirectory;
        EXPECT_EQ(result.ok(), model_ok) << name;
        if (result.ok()) mdir->children.erase(it);
        break;
      }
      case 6: {  // rmdir (only empty)
        const auto result = fs.rmdir(fdir, name);
        const auto it = mdir->children.find(name);
        const bool model_ok = it != mdir->children.end() &&
                              it->second->type == FileType::kDirectory &&
                              it->second->children.empty();
        EXPECT_EQ(result.ok(), model_ok) << name;
        if (result.ok()) mdir->children.erase(it);
        break;
      }
      case 7: {  // rename within the same directory
        const std::string to = "n" + std::to_string(rng.next_below(5));
        const auto result = fs.rename(fdir, name, fdir, to);
        const auto src = mdir->children.find(name);
        bool model_ok = src != mdir->children.end();
        if (model_ok && name != to) {
          const auto dst = mdir->children.find(to);
          if (dst != mdir->children.end() && dst->second->type == FileType::kDirectory) {
            model_ok = false;  // refuse replacing a directory
          }
        }
        EXPECT_EQ(result.ok(), model_ok) << name << "->" << to;
        if (result.ok() && name != to) {
          auto node = std::move(src->second);
          mdir->children.erase(src);
          mdir->children.erase(to);
          mdir->children.emplace(to, std::move(node));
        }
        break;
      }
      default:
        break;
    }

    if (op % 100 == 99) {
      expect_equal(fs, fs.root(), *model.root_, "");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  expect_equal(fs, fs.root(), *model.root_, "");

  // Capacity accounting must equal the model's total content bytes.
  std::uint64_t expected_bytes = 0;
  std::vector<const ModelNode*> stack{model.root_.get()};
  while (!stack.empty()) {
    const ModelNode* node = stack.back();
    stack.pop_back();
    if (node->type == FileType::kFile) expected_bytes += node->data.size();
    for (const auto& [name, child] : node->children) {
      (void)name;
      stack.push_back(child.get());
    }
  }
  EXPECT_EQ(fs.used_bytes(), expected_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalFsModel,
                         ::testing::Values(1, 7, 42, 99, 12345, 777, 31337));

}  // namespace
}  // namespace kosha::fs

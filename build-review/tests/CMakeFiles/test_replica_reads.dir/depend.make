# Empty dependencies file for test_replica_reads.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for kosha_shell.
# This may be replaced when dependencies are built.

#include "sim/availability_sim.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "kosha/placement.hpp"

namespace kosha::sim {

namespace {

struct Group {
  pastry::Key key;
  std::uint32_t files = 0;
  std::vector<std::uint32_t> holders;  // machines holding a *complete* copy
  /// Machines whose copy is still being written: (machine, ready hour).
  std::vector<std::pair<std::uint32_t, std::size_t>> pending;
  bool dark = false;  // no complete copy reachable
};

}  // namespace

AvailabilityResult simulate_availability(const trace::FsTrace& fs_trace,
                                         const trace::AvailabilityTrace& machines,
                                         const AvailabilitySimConfig& config) {
  const std::size_t machine_count = machines.machines;
  const std::size_t hours = machines.hours;
  const std::size_t copies = config.replicas + 1;

  // Group files by anchor name: one key, one holder set, many files.
  std::vector<Group> group_template;
  {
    std::unordered_map<std::string, std::size_t> index;
    for (const auto& file : fs_trace.files) {
      const std::string anchor = trace::file_anchor_name(file.path, config.level);
      const auto [it, inserted] = index.try_emplace(anchor, group_template.size());
      if (inserted) {
        Group group;
        group.key = key_for_name(anchor);
        group_template.push_back(group);
      }
      ++group_template[it->second].files;
    }
  }
  const auto total_files = static_cast<double>(fs_trace.files.size());

  const Rng base(config.seed);
  std::vector<double> pct_sum(hours, 0.0);
  std::mutex merge_mutex;

  parallel_for(
      config.runs,
      [&](std::size_t run) {
        Rng rng = base.fork(run);
        // Sorted machine ids for "closest live holders" queries.
        std::vector<std::pair<Uint128, std::uint32_t>> ring(machine_count);
        for (std::size_t m = 0; m < machine_count; ++m) {
          ring[m] = {rng.next_id(), static_cast<std::uint32_t>(m)};
        }
        std::sort(ring.begin(), ring.end());

        const std::vector<bool>* up = &machines.up[0];
        // The `copies` closest live machines to a key.
        auto holders_for = [&](const pastry::Key& key) {
          std::vector<std::uint32_t> out;
          const auto start = static_cast<std::size_t>(
              std::lower_bound(ring.begin(), ring.end(), key,
                               [](const auto& entry, const Uint128& k) {
                                 return entry.first < k;
                               }) -
              ring.begin());
          const std::size_t n = ring.size();
          std::size_t down_i = (start + n - 1) % n;
          std::size_t up_i = start % n;
          std::size_t scanned = 0;
          while (out.size() < copies && scanned < 2 * n) {
            // Alternate outward, preferring the numerically closer side.
            const Uint128 d_up = ring_distance(ring[up_i].first, key);
            const Uint128 d_down = ring_distance(ring[down_i].first, key);
            std::size_t* advance = nullptr;
            std::uint32_t candidate = 0;
            if (d_up <= d_down) {
              candidate = ring[up_i].second;
              advance = &up_i;
            } else {
              candidate = ring[down_i].second;
              advance = &down_i;
            }
            if ((*up)[candidate] &&
                std::find(out.begin(), out.end(), candidate) == out.end()) {
              out.push_back(candidate);
            }
            *advance = (advance == &up_i) ? (up_i + 1) % n : (down_i + n - 1) % n;
            ++scanned;
          }
          return out;
        };

        std::vector<Group> groups = group_template;
        std::vector<std::vector<std::uint32_t>> held_by(machine_count);
        // Groups with in-flight copies, checked for maturation each hour.
        std::vector<std::uint32_t> maturing;
        // Repair at hour `h`: the new replica set is chosen among live
        // machines; members that already held a complete copy stay
        // complete, newcomers become pending for `repair_hours`.
        auto repair = [&](std::size_t g, std::size_t hour) {
          Group& group = groups[g];
          // Live machines with a complete copy remain the sources until the
          // fresh copies finish; newcomers are pending for `repair_hours`.
          std::vector<std::uint32_t> complete;
          for (const std::uint32_t m : group.holders) {
            if ((*up)[m]) complete.push_back(m);
          }
          std::vector<std::pair<std::uint32_t, std::size_t>> pending = group.pending;
          for (const std::uint32_t m : holders_for(group.key)) {
            const bool has_copy = std::find(complete.begin(), complete.end(), m) !=
                                  complete.end();
            const bool already_pending =
                std::find_if(pending.begin(), pending.end(),
                             [m](const auto& p) { return p.first == m; }) != pending.end();
            if (has_copy || already_pending) continue;
            if (config.repair_hours == 0) {
              complete.push_back(m);
            } else {
              pending.emplace_back(m, hour + config.repair_hours);
            }
          }
          group.holders = std::move(complete);
          group.pending = std::move(pending);
          for (const std::uint32_t m : group.holders) {
            held_by[m].push_back(static_cast<std::uint32_t>(g));
          }
          if (!group.pending.empty()) maturing.push_back(static_cast<std::uint32_t>(g));
        };
        auto assign_initial = [&](std::size_t g) {
          groups[g].holders = holders_for(groups[g].key);
          for (const std::uint32_t m : groups[g].holders) {
            held_by[m].push_back(static_cast<std::uint32_t>(g));
          }
        };

        up = &machines.up[0];
        for (std::size_t g = 0; g < groups.size(); ++g) assign_initial(g);

        double dark_files = 0;
        std::vector<double> pct(hours, 100.0);
        for (std::size_t h = 0; h < hours; ++h) {
          up = &machines.up[h];
          const std::vector<bool>& prev = machines.up[h == 0 ? 0 : h - 1];

          // 1. In-flight copies finish (if their machine survived).
          if (!maturing.empty()) {
            std::vector<std::uint32_t> still_maturing;
            for (const std::uint32_t g : maturing) {
              Group& group = groups[g];
              bool pending_left = false;
              for (auto it = group.pending.begin(); it != group.pending.end();) {
                if (it->second <= h) {
                  if ((*up)[it->first]) {
                    group.holders.push_back(it->first);
                    held_by[it->first].push_back(g);
                  }
                  it = group.pending.erase(it);
                } else {
                  pending_left = true;
                  ++it;
                }
              }
              if (pending_left) still_maturing.push_back(g);
            }
            maturing.swap(still_maturing);
          }

          // 2. React to machine state changes.
          for (std::uint32_t m = 0; m < machine_count; ++m) {
            if (h > 0 && prev[m] == (*up)[m]) continue;
            std::vector<std::uint32_t> touched;
            touched.swap(held_by[m]);
            for (const std::uint32_t g : touched) {
              Group& group = groups[g];
              if (std::find(group.holders.begin(), group.holders.end(), m) ==
                  group.holders.end()) {
                continue;  // stale index entry from an earlier repair
              }
              if (!(*up)[m]) {
                // Holder went down: repair from a surviving complete copy,
                // or go dark if none is reachable.
                const bool any_live = std::any_of(
                    group.holders.begin(), group.holders.end(),
                    [&](std::uint32_t holder) { return (*up)[holder]; });
                if (!any_live) {
                  if (!group.dark) {
                    group.dark = true;
                    dark_files += group.files;
                  }
                  // In-flight copies lost their sources and are void.
                  group.pending.clear();
                  held_by[m].push_back(g);  // keep: the copy is still on disk
                } else {
                  repair(g, h);
                }
              } else {
                // Holder came back: the on-disk copy makes the group
                // reachable again; re-establish the replica set.
                if (group.dark) {
                  group.dark = false;
                  dark_files -= group.files;
                }
                repair(g, h);
              }
            }
          }
          pct[h] = 100.0 * (1.0 - dark_files / total_files);
        }

        const std::lock_guard lock(merge_mutex);
        for (std::size_t h = 0; h < hours; ++h) pct_sum[h] += pct[h];
      },
      config.threads);

  AvailabilityResult result;
  result.available_pct.resize(hours);
  double total = 0;
  for (std::size_t h = 0; h < hours; ++h) {
    result.available_pct[h] = pct_sum[h] / static_cast<double>(config.runs);
    total += result.available_pct[h];
    if (result.available_pct[h] < result.min_pct) {
      result.min_pct = result.available_pct[h];
      result.min_hour = h;
    }
  }
  result.average_pct = total / static_cast<double>(hours);
  return result;
}

}  // namespace kosha::sim

file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_smoke.dir/test_cluster_smoke.cpp.o"
  "CMakeFiles/test_cluster_smoke.dir/test_cluster_smoke.cpp.o.d"
  "test_cluster_smoke"
  "test_cluster_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libkosha_nfs.a"
)

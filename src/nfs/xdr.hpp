#pragma once

// XDR (RFC 4506) encoding — the wire format of ONC RPC / NFS.
//
// The real Kosha interposes on SunRPC messages; koshad "modifies the RPC"
// and forwards it (paper §4). This codec provides the same wire
// discipline: big-endian 4-byte alignment, length-prefixed opaques, and
// it is what the simulated client uses to compute byte-accurate message
// sizes for the network cost model.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace kosha::nfs {

enum class XdrError { kTruncated, kOversize, kBadPadding };

/// Append-only XDR encoder.
class XdrWriter {
 public:
  void put_u32(std::uint32_t value);
  void put_u64(std::uint64_t value);
  void put_i64(std::int64_t value) { put_u64(static_cast<std::uint64_t>(value)); }
  void put_bool(bool value) { put_u32(value ? 1 : 0); }
  /// Variable-length opaque: 4-byte length + data + zero padding to 4.
  void put_opaque(std::string_view data);
  /// Strings are opaques in XDR.
  void put_string(std::string_view value) { put_opaque(value); }
  /// Fixed-length opaque: data + padding, no length prefix.
  void put_fixed(const void* data, std::size_t size);

  [[nodiscard]] const std::string& data() const { return buffer_; }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Bounds-checked XDR decoder.
class XdrReader {
 public:
  explicit XdrReader(std::string_view data) : data_(data) {}

  [[nodiscard]] Result<std::uint32_t, XdrError> get_u32();
  [[nodiscard]] Result<std::uint64_t, XdrError> get_u64();
  [[nodiscard]] Result<bool, XdrError> get_bool();
  /// Variable-length opaque; `max` bounds the accepted length.
  [[nodiscard]] Result<std::string, XdrError> get_opaque(std::size_t max = 1 << 22);
  [[nodiscard]] Result<std::string, XdrError> get_string(std::size_t max = 4096) {
    return get_opaque(max);
  }
  [[nodiscard]] Result<Unit, XdrError> get_fixed(void* out, std::size_t size);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - offset_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  std::string_view data_;
  std::size_t offset_ = 0;
};

/// XDR padding of a payload of `size` bytes.
[[nodiscard]] constexpr std::size_t xdr_pad(std::size_t size) { return (4 - size % 4) % 4; }

/// Encoded size of a variable-length opaque of `size` bytes.
[[nodiscard]] constexpr std::size_t xdr_opaque_size(std::size_t size) {
  return 4 + size + xdr_pad(size);
}

}  // namespace kosha::nfs

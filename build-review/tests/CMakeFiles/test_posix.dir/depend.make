# Empty dependencies file for test_posix.
# This may be replaced when dependencies are built.

// Table 1 — Modified Andrew Benchmark on Kosha vs unmodified NFS as the
// node count grows (paper §6.1.1).
//
// Setup mirrors the paper: distribution level 1 (isolates p2p lookup
// overhead), replication factor 1, per-node capacity large enough to rule
// out redirection. The NFS baseline is one client cross-mounting one
// central server over the same network/cost model.
//
// Flags: --runs N (default 5; paper used 50), --model (print the §6.1.2
// analytic overhead model next to the measurement), --csv.

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/nfs_mount.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "trace/mab.hpp"

namespace {

using namespace kosha;

trace::MabPhaseTimes run_nfs_baseline(std::size_t runs, std::uint64_t seed) {
  SimClock clock;
  net::SimNetwork network({}, &clock);
  const net::HostId client = network.add_host();
  const net::HostId server_host = network.add_host();
  fs::FsConfig fs_config;
  fs_config.capacity_bytes = 64ull << 30;
  nfs::NfsServer server(server_host, fs_config, {}, &clock);
  nfs::ServerDirectory directory;
  directory.add(&server);

  trace::MabPhaseTimes sum;
  for (std::size_t run = 0; run < runs; ++run) {
    baseline::NfsMount mount(&network, &directory, client, server_host);
    trace::MabConfig mab;
    mab.seed = seed + run;
    mab.prefix = "r" + std::to_string(run);
    const auto workload = trace::generate_mab(mab);
    sum += trace::run_mab(mount, workload, clock);
    trace::cleanup_mab(mount, workload);
  }
  sum /= static_cast<double>(runs);
  return sum;
}

struct KoshaRun {
  trace::MabPhaseTimes times;
  double mean_hops = 0;  // average DHT hops per lookup
};

KoshaRun run_kosha(std::size_t nodes, std::size_t runs, std::uint64_t seed) {
  trace::MabPhaseTimes sum;
  std::uint64_t hops = 0;
  std::uint64_t lookups = 0;
  // Fresh cluster (fresh node-id assignment) per run, like the paper's
  // repeated measurements.
  for (std::size_t run = 0; run < runs; ++run) {
    ClusterConfig config;
    config.nodes = nodes;
    config.kosha.distribution_level = 1;
    config.kosha.replicas = 1;
    config.node_capacity_bytes = 64ull << 30;
    config.seed = seed + run * 1000;
    KoshaCluster cluster(config);
    KoshaMount mount(&cluster.daemon(0));

    trace::MabConfig mab;
    mab.seed = seed + run;
    mab.prefix = "r" + std::to_string(run);
    const auto workload = trace::generate_mab(mab);
    sum += trace::run_mab(mount, workload, cluster.clock());
    trace::cleanup_mab(mount, workload);
    hops += cluster.daemon(0).stats().dht_hops;
    lookups += cluster.daemon(0).stats().dht_lookups;
  }
  sum /= static_cast<double>(runs);
  KoshaRun result{sum, 0.0};
  if (lookups > 0) {
    result.mean_hops = static_cast<double>(hops) / static_cast<double>(lookups);
  }
  return result;
}

std::string overhead(double kosha_s, double nfs_s) {
  if (nfs_s <= 0) return "-";
  return TextTable::pct((kosha_s - nfs_s) / nfs_s, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const kosha::CliArgs args(argc, argv);
  if (const auto err = args.check_known("runs,seed,model,csv"); !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  std::printf("Table 1: Modified Andrew Benchmark, Kosha vs NFS (runs=%zu)\n", runs);
  std::printf("distribution level 1, replication factor 1, no redirection\n\n");

  const auto nfs = run_nfs_baseline(runs, seed);
  const std::size_t node_counts[] = {1, 2, 4, 8};
  std::vector<KoshaRun> kosha_runs;
  for (const std::size_t n : node_counts) kosha_runs.push_back(run_kosha(n, runs, seed));

  kosha::TextTable table({"Benchmark", "NFS", "K-1", "ov%", "K-2", "ov%", "K-4", "ov%", "K-8",
                          "ov%"});
  auto phase_row = [&](const char* name, auto select) {
    std::vector<std::string> row{name, kosha::TextTable::fmt(select(nfs), 2)};
    for (const auto& k : kosha_runs) {
      row.push_back(kosha::TextTable::fmt(select(k.times), 2));
      row.push_back(overhead(select(k.times), select(nfs)));
    }
    table.add_row(std::move(row));
  };
  phase_row("mkdir", [](const auto& t) { return t.mkdir_s; });
  phase_row("copy", [](const auto& t) { return t.copy_s; });
  phase_row("stat", [](const auto& t) { return t.stat_s; });
  phase_row("grep", [](const auto& t) { return t.grep_s; });
  phase_row("compile", [](const auto& t) { return t.compile_s; });
  phase_row("Total", [](const auto& t) { return t.total(); });

  std::fputs(table.to_string().c_str(), stdout);
  if (args.get_bool("csv", false)) std::fputs(table.to_csv().c_str(), stdout);

  if (args.get_bool("model", false)) {
    // Analytic model of §6.1.2: D = I + H*hc*(N-1)/N per operation.
    std::printf("\nOverhead model D = I + H*hc*(N-1)/N (per-op, microseconds):\n");
    kosha::ClusterConfig model_config;
    const double interposition_us =
        static_cast<double>(model_config.kosha.interposition_cost.ns) / 1000.0;
    const double hop_us = static_cast<double>(kosha::net::NetworkConfig{}.hop_latency.ns) / 1e3;
    for (std::size_t i = 0; i < 4; ++i) {
      const auto n = static_cast<double>(node_counts[i]);
      const double model =
          interposition_us + kosha_runs[i].mean_hops * hop_us * (n - 1.0) / n;
      std::printf("  N=%zu: measured mean DHT hops=%.2f, model D=%.1f us\n", node_counts[i],
                  kosha_runs[i].mean_hops, model);
    }
  }
  return 0;
}

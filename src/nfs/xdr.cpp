#include "nfs/xdr.hpp"

#include <cstring>

namespace kosha::nfs {

void XdrWriter::put_u32(std::uint32_t value) {
  char bytes[4];
  bytes[0] = static_cast<char>(value >> 24);
  bytes[1] = static_cast<char>(value >> 16);
  bytes[2] = static_cast<char>(value >> 8);
  bytes[3] = static_cast<char>(value);
  buffer_.append(bytes, 4);
}

void XdrWriter::put_u64(std::uint64_t value) {
  put_u32(static_cast<std::uint32_t>(value >> 32));
  put_u32(static_cast<std::uint32_t>(value));
}

void XdrWriter::put_opaque(std::string_view data) {
  put_u32(static_cast<std::uint32_t>(data.size()));
  put_fixed(data.data(), data.size());
}

void XdrWriter::put_fixed(const void* data, std::size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
  buffer_.append(xdr_pad(size), '\0');
}

Result<std::uint32_t, XdrError> XdrReader::get_u32() {
  if (remaining() < 4) return XdrError::kTruncated;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data_.data() + offset_);
  offset_ += 4;
  return (static_cast<std::uint32_t>(bytes[0]) << 24) |
         (static_cast<std::uint32_t>(bytes[1]) << 16) |
         (static_cast<std::uint32_t>(bytes[2]) << 8) | static_cast<std::uint32_t>(bytes[3]);
}

Result<std::uint64_t, XdrError> XdrReader::get_u64() {
  const auto hi = get_u32();
  if (!hi.ok()) return hi.error();
  const auto lo = get_u32();
  if (!lo.ok()) return lo.error();
  return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
}

Result<bool, XdrError> XdrReader::get_bool() {
  const auto value = get_u32();
  if (!value.ok()) return value.error();
  return *value != 0;
}

Result<std::string, XdrError> XdrReader::get_opaque(std::size_t max) {
  const auto length = get_u32();
  if (!length.ok()) return length.error();
  if (*length > max) return XdrError::kOversize;
  const std::size_t padded = *length + xdr_pad(*length);
  if (remaining() < padded) return XdrError::kTruncated;
  std::string out(data_.substr(offset_, *length));
  // XDR requires the padding to be zero.
  for (std::size_t i = *length; i < padded; ++i) {
    if (data_[offset_ + i] != '\0') return XdrError::kBadPadding;
  }
  offset_ += padded;
  return out;
}

Result<Unit, XdrError> XdrReader::get_fixed(void* out, std::size_t size) {
  const std::size_t padded = size + xdr_pad(size);
  if (remaining() < padded) return XdrError::kTruncated;
  std::memcpy(out, data_.data() + offset_, size);
  offset_ += padded;
  return Unit{};
}

}  // namespace kosha::nfs

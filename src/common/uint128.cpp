#include "common/uint128.hpp"

#include <cstdio>
#include <stdexcept>

namespace kosha {

std::string Uint128::to_hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx", static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Uint128 Uint128::from_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 32) {
    throw std::invalid_argument("Uint128::from_hex: need 1..32 hex digits");
  }
  Uint128 v;
  for (const char c : hex) {
    unsigned nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<unsigned>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<unsigned>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("Uint128::from_hex: invalid hex digit");
    }
    v.hi = (v.hi << 4) | (v.lo >> 60);
    v.lo = (v.lo << 4) | nibble;
  }
  return v;
}

}  // namespace kosha

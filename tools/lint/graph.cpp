#include "lint/graph.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace kosha::lint {

bool call_blocklisted(const std::string& name) {
  static const std::set<std::string> kSet = {
      "if",           "for",        "while",      "switch",
      "return",       "sizeof",     "catch",      "new",
      "delete",       "throw",      "alignof",    "decltype",
      "operator",     "defined",    "static_assert", "assert",
      "noexcept",     "alignas",    "typeid",     "static_cast",
      "dynamic_cast", "const_cast", "reinterpret_cast"};
  return kSet.count(name) > 0;
}

int count_call_args(const std::vector<Token>& t, std::size_t open, std::size_t close) {
  int depth = 0;
  int commas = 0;
  bool any = false;
  for (std::size_t k = open; k < close; ++k) {
    if (is_punct(t[k], "(") || is_punct(t[k], "{") || is_punct(t[k], "[")) ++depth;
    else if (is_punct(t[k], ")") || is_punct(t[k], "}") || is_punct(t[k], "]")) --depth;
    else if (depth == 1 && is_punct(t[k], ",")) ++commas;
    else if (depth >= 1) any = true;
  }
  return any ? commas + 1 : 0;
}

namespace {

bool arity_compatible(const Function& f, int args) {
  return args >= f.min_arity && args <= f.arity;
}

bool in_src(const std::string& path) { return path.rfind("src/", 0) == 0; }

}  // namespace

EdgeKind resolve_call(const Index& idx, const std::vector<Token>& t, std::size_t k,
                      int args, const Function& caller, std::vector<int>* out_funcs) {
  const std::string& name = t[k].text;
  auto push = [&](const std::vector<int>* ids, bool methods_only, bool free_only) {
    if (ids == nullptr) return;
    for (const int id : *ids) {
      const Function& cand = idx.functions()[id];
      if (methods_only && cand.cls.empty()) continue;
      if (free_only && !cand.cls.empty()) continue;
      if (!arity_compatible(cand, args)) continue;
      out_funcs->push_back(id);
    }
  };
  if (k >= 2 && is_punct(t[k - 1], "::") && t[k - 2].kind == TokKind::kIdent) {
    const std::string& qual = t[k - 2].text;
    if (qual == "std") return EdgeKind::kDirect;  // std:: call, no edge
    if (idx.is_class(qual)) {
      push(idx.by_qual(qual + "::" + name), false, false);
      return EdgeKind::kDirect;
    }
    // Namespace qualifier: free-function lookup.
    push(idx.by_name(name), false, true);
    return EdgeKind::kDirect;
  }
  if (k >= 2 && (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->"))) {
    const Token& recv = t[k - 2];
    if (is_ident(recv, "this")) {
      push(idx.by_qual(caller.cls + "::" + name), false, false);
      return EdgeKind::kResolved;
    }
    if (recv.kind == TokKind::kIdent) {
      const std::string type = idx.type_of(recv.text);
      if (!type.empty()) {
        const auto* ids = idx.by_qual(type + "::" + name);
        if (ids != nullptr) {
          push(ids, false, false);
          return EdgeKind::kResolved;
        }
      }
    }
    // Unknown receiver: over-approximate across every same-name method of
    // compatible arity (virtual dispatch / unresolved member types).
    push(idx.by_name(name), true, false);
    return EdgeKind::kOverApprox;
  }
  // Plain call: the enclosing class's method, else a free function.
  if (!caller.cls.empty()) {
    const auto* ids = idx.by_qual(caller.cls + "::" + name);
    if (ids != nullptr) {
      push(ids, false, false);
      return EdgeKind::kResolved;
    }
  }
  push(idx.by_name(name), false, true);
  return EdgeKind::kDirect;
}

int CallGraph::node_for(const Index& idx, int func) {
  const Function& f = idx.functions()[func];
  const std::string key = f.qual() + "/" + std::to_string(f.arity);
  auto [it, inserted] = node_ids_.emplace(key, static_cast<int>(nodes_.size()));
  if (inserted) {
    nodes_.push_back({key, f.qual(), {}});
    out_.emplace_back();
  }
  nodes_[it->second].funcs.push_back(func);
  return it->second;
}

void CallGraph::add_edge(int from_node, int to_node, int file, int line, EdgeKind kind) {
  if (from_node < 0 || to_node < 0) return;
  if (!edge_set_.emplace(from_node, to_node).second) return;
  out_[from_node].push_back(static_cast<int>(edges_.size()));
  edges_.push_back({from_node, to_node, file, line, kind});
}

int CallGraph::find_node(const std::string& display) const {
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].display == display) return static_cast<int>(n);
  }
  return -1;
}

void CallGraph::build(const Index& idx) {
  nodes_.clear();
  edges_.clear();
  bad_edges_.clear();
  out_.clear();
  node_ids_.clear();
  event_roots_.clear();
  edge_set_.clear();

  const auto& funcs = idx.functions();
  node_of_func_.assign(funcs.size(), -1);
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    node_of_func_[i] = node_for(idx, static_cast<int>(i));
  }

  // Per-file schedule-callback line ranges, so an edge() annotation inside a
  // scheduled callback can root its target too.
  struct Region {
    int first_line, last_line;
  };
  std::vector<std::vector<Region>> regions(idx.files().size());

  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    const Function& f = funcs[fi];
    if (!f.has_body()) continue;
    const SourceFile& file = idx.files()[f.file];
    const auto& t = file.tokens;
    const bool src_file = in_src(file.path);
    const int from = node_of_func_[fi];

    // Pass 1 over the body: the argument token ranges of every
    // schedule_at/schedule_after call — those arguments are the event-loop
    // callbacks, and every callee inside them is an event root.
    struct TokRegion {
      std::size_t begin, end;
    };
    std::vector<TokRegion> local;
    for (std::size_t k = f.body_begin + 1; k + 1 < f.body_end; ++k) {
      if (t[k].kind != TokKind::kIdent) continue;
      if (t[k].text != "schedule_at" && t[k].text != "schedule_after") continue;
      if (!is_punct(t[k + 1], "(")) continue;
      const std::size_t close = skip_balanced(t, k + 1, "(", ")");
      local.push_back({k + 1, close});
      if (src_file) {
        regions[f.file].push_back(
            {t[k].line, t[close < t.size() ? close - 1 : k].line});
      }
    }
    auto in_region = [&](std::size_t tok_index) {
      for (const TokRegion& r : local) {
        if (tok_index > r.begin && tok_index < r.end) return true;
      }
      return false;
    };

    // Pass 2: call sites.
    for (std::size_t k = f.body_begin + 1; k + 1 < f.body_end; ++k) {
      if (t[k].kind != TokKind::kIdent) continue;
      std::size_t arg_open = 0;
      if (is_punct(t[k + 1], "(")) {
        arg_open = k + 1;
      } else if (is_punct(t[k + 1], "<")) {
        const std::size_t after = skip_angles(t, k + 1);
        if (after < f.body_end && is_punct(t[after], "(")) arg_open = after;
      }
      if (arg_open == 0) continue;
      if (call_blocklisted(t[k].text)) continue;
      const std::size_t close = skip_balanced(t, arg_open, "(", ")");
      const int args = count_call_args(t, arg_open, close);
      std::vector<int> targets;
      const EdgeKind kind = resolve_call(idx, t, k, args, f, &targets);
      std::vector<int> target_nodes;
      for (const int id : targets) target_nodes.push_back(node_of_func_[id]);
      std::sort(target_nodes.begin(), target_nodes.end());
      target_nodes.erase(std::unique(target_nodes.begin(), target_nodes.end()),
                         target_nodes.end());
      for (const int to : target_nodes) {
        add_edge(from, to, f.file, t[k].line, kind);
        if (src_file && in_region(k)) event_roots_.insert(to);
      }
    }
  }

  // Hand-asserted edges for dynamic seams.
  for (std::size_t fidx = 0; fidx < idx.files().size(); ++fidx) {
    const SourceFile& file = idx.files()[fidx];
    for (const EdgeAnnotation& ann : file.edge_annotations) {
      if (!ann.has_reason) {
        bad_edges_.push_back({static_cast<int>(fidx), ann.line, ann.target, true});
        continue;
      }
      const int target = find_node(ann.target);
      if (target < 0) {
        bad_edges_.push_back({static_cast<int>(fidx), ann.line, ann.target, false});
        continue;
      }
      const int encl = idx.enclosing_function(static_cast<int>(fidx), ann.line);
      if (encl >= 0) {
        add_edge(node_of_func_[encl], target, static_cast<int>(fidx), ann.line,
                 EdgeKind::kAnnotated);
      }
      // Inside a scheduled callback the asserted call runs in event context,
      // so the target is an event root as well.
      for (const auto& r : regions[fidx]) {
        if (ann.line >= r.first_line && ann.line <= r.last_line) {
          event_roots_.insert(target);
          break;
        }
      }
    }
  }

  // Named roots: the dispatch loop itself and the SimNetwork
  // service/delivery surface.
  static const char* kNamedRoots[] = {
      "EventLoop::step",          "SimNetwork::try_message", "SimNetwork::charge_message",
      "SimNetwork::plan_message", "SimNetwork::admit",       "SimNetwork::begin_service",
      "SimNetwork::end_service"};
  for (const char* name : kNamedRoots) {
    const int n = find_node(name);
    if (n >= 0) event_roots_.insert(n);
  }
}

std::vector<int> CallGraph::reach_from_roots(const std::set<int>& stop) const {
  std::vector<int> parent(nodes_.size(), -1);
  std::deque<int> queue;
  for (const int r : event_roots_) {
    parent[r] = -2;
    if (stop.count(r) == 0) queue.push_back(r);
  }
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop_front();
    for (const int e : out_[n]) {
      const int to = edges_[e].to;
      if (parent[to] != -1) continue;
      parent[to] = e;
      if (stop.count(to) == 0) queue.push_back(to);
    }
  }
  return parent;
}

std::string CallGraph::path_to(const std::vector<int>& parent, int node) const {
  std::vector<std::string> chain;
  int n = node;
  while (n >= 0 && chain.size() < 32) {
    chain.push_back(nodes_[n].display);
    const int e = parent[n];
    if (e == -2 || e == -1) break;
    n = edges_[e].from;
  }
  std::reverse(chain.begin(), chain.end());
  std::string out = "event-dispatch";
  for (const std::string& c : chain) {
    out += " -> " + c;
  }
  return out;
}

std::string CallGraph::to_dot(const std::set<int>& hot, const std::set<int>& sink) const {
  // Deterministic: nodes sorted by key; only nodes with at least one edge
  // (or a highlight) are emitted, keeping the dump readable on a real tree.
  std::vector<int> degree(nodes_.size(), 0);
  for (const Edge& e : edges_) {
    ++degree[e.from];
    ++degree[e.to];
  }
  std::vector<int> order(nodes_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return nodes_[a].key < nodes_[b].key; });

  std::ostringstream out;
  out << "digraph kosha_calls {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for (const int n : order) {
    if (degree[n] == 0 && event_roots_.count(n) == 0 && hot.count(n) == 0 &&
        sink.count(n) == 0) {
      continue;
    }
    out << "  \"" << nodes_[n].key << "\" [label=\"" << nodes_[n].display << "\"";
    if (sink.count(n) > 0) out << ", style=filled, fillcolor=orange";
    else if (hot.count(n) > 0) out << ", style=filled, fillcolor=mistyrose";
    if (event_roots_.count(n) > 0) out << ", penwidth=2, color=red";
    out << "];\n";
  }
  std::vector<int> edge_order(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) edge_order[i] = static_cast<int>(i);
  std::sort(edge_order.begin(), edge_order.end(), [&](int a, int b) {
    const Edge& ea = edges_[a];
    const Edge& eb = edges_[b];
    if (nodes_[ea.from].key != nodes_[eb.from].key)
      return nodes_[ea.from].key < nodes_[eb.from].key;
    return nodes_[ea.to].key < nodes_[eb.to].key;
  });
  for (const int ei : edge_order) {
    const Edge& e = edges_[ei];
    out << "  \"" << nodes_[e.from].key << "\" -> \"" << nodes_[e.to].key << "\"";
    switch (e.kind) {
      case EdgeKind::kDirect: break;
      case EdgeKind::kResolved: out << " [color=blue]"; break;
      case EdgeKind::kOverApprox: out << " [style=dashed]"; break;
      case EdgeKind::kAnnotated: out << " [color=red, penwidth=2]"; break;
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace kosha::lint

// Table 1 — Modified Andrew Benchmark on Kosha vs unmodified NFS as the
// node count grows (paper §6.1.1).
//
// Setup mirrors the paper: distribution level 1 (isolates p2p lookup
// overhead), replication factor 1, per-node capacity large enough to rule
// out redirection. The NFS baseline is one client cross-mounting one
// central server over the same network/cost model.
//
// Flags: --runs N (default 5; paper used 50), --model (print the §6.1.2
// analytic overhead model next to the measurement), --csv.
//
// --sweep switches to the scalability sweep (the committed perf
// trajectory): for each node count in --sweep-nodes (default 64,256,1024)
// a fully-instrumented cluster (metrics + tracing + profiling) runs a
// multi-client workload and the run's throughput (events/sec, ops/sec),
// virtual latency percentiles, and critical-path stage shares are written
// to --out (default results/BENCH_scale.json). CI diffs that file against
// results/BENCH_scale.baseline.json with kosha_prof.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/nfs_mount.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/profile.hpp"
#include "common/table.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "sim/concurrency_driver.hpp"
#include "trace/mab.hpp"

namespace {

using namespace kosha;

trace::MabPhaseTimes run_nfs_baseline(std::size_t runs, std::uint64_t seed) {
  SimClock clock;
  net::SimNetwork network({}, &clock);
  const net::HostId client = network.add_host();
  const net::HostId server_host = network.add_host();
  fs::StorageConfig storage;
  storage.fs.capacity_bytes = 64ull << 30;
  nfs::NfsServer server(server_host, storage, {}, &clock);
  nfs::ServerDirectory directory;
  directory.add(&server);

  trace::MabPhaseTimes sum;
  for (std::size_t run = 0; run < runs; ++run) {
    baseline::NfsMount mount(&network, &directory, client, server_host);
    trace::MabConfig mab;
    mab.seed = seed + run;
    mab.prefix = "r" + std::to_string(run);
    const auto workload = trace::generate_mab(mab);
    sum += trace::run_mab(mount, workload, clock);
    trace::cleanup_mab(mount, workload);
  }
  sum /= static_cast<double>(runs);
  return sum;
}

struct KoshaRun {
  trace::MabPhaseTimes times;
  double mean_hops = 0;  // average DHT hops per lookup
};

KoshaRun run_kosha(std::size_t nodes, std::size_t runs, std::uint64_t seed) {
  trace::MabPhaseTimes sum;
  std::uint64_t hops = 0;
  std::uint64_t lookups = 0;
  // Fresh cluster (fresh node-id assignment) per run, like the paper's
  // repeated measurements.
  for (std::size_t run = 0; run < runs; ++run) {
    ClusterConfig config;
    config.nodes = nodes;
    config.kosha.distribution_level = 1;
    config.kosha.replicas = 1;
    config.node_capacity_bytes = 64ull << 30;
    config.seed = seed + run * 1000;
    KoshaCluster cluster(config);
    KoshaMount mount(&cluster.daemon(0));

    trace::MabConfig mab;
    mab.seed = seed + run;
    mab.prefix = "r" + std::to_string(run);
    const auto workload = trace::generate_mab(mab);
    sum += trace::run_mab(mount, workload, cluster.clock());
    trace::cleanup_mab(mount, workload);
    hops += cluster.daemon(0).stats().dht_hops;
    lookups += cluster.daemon(0).stats().dht_lookups;
  }
  sum /= static_cast<double>(runs);
  KoshaRun result{sum, 0.0};
  if (lookups > 0) {
    result.mean_hops = static_cast<double>(hops) / static_cast<double>(lookups);
  }
  return result;
}

std::string overhead(double kosha_s, double nfs_s) {
  if (nfs_s <= 0) return "-";
  return TextTable::pct((kosha_s - nfs_s) / nfs_s, 1);
}

std::vector<std::size_t> parse_csv_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  return out;
}

/// The committed perf trajectory: one fully-instrumented run per node
/// count, measuring the simulator itself (how fast does virtual time run
/// on this host) alongside the simulated system (where does virtual time
/// go). Virtual-time figures (ops, latency percentiles, stage shares) are
/// deterministic per seed; wall-derived figures (wall_ms, *_per_sec) vary
/// run to run and kosha_prof's compare gate treats them accordingly.
int run_sweep(const CliArgs& args) {
  const auto node_list = parse_csv_sizes(args.get_string("sweep-nodes", "64,256,1024"));
  const auto clients = static_cast<std::size_t>(args.get_int("sweep-clients", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string out = args.get_string("out", "results/BENCH_scale.json");

  std::printf("Scalability sweep: %zu clients per point, seed=%llu\n\n", clients,
              static_cast<unsigned long long>(seed));
  TextTable table({"nodes", "ops", "makespan (ms)", "p50 (us)", "p99 (us)", "events",
                   "events/sec", "wall (ms)"});

  std::string json = "{\n  \"bench\": \"table1_scalability_sweep\",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"clients\": " + std::to_string(clients) + ",\n";
  json += "  \"points\": [";
  bool first_point = true;
  for (const std::size_t n : node_list) {
    ClusterConfig config;
    config.nodes = n;
    config.seed = seed;
    config.kosha.distribution_level = 1;
    config.kosha.replicas = 1;
    config.node_capacity_bytes = 64ull << 30;
    config.observability.metrics = true;
    config.observability.tracing = true;
    config.observability.profiling = true;
    KoshaCluster cluster(config);
    // Construction (N joins) is profiled too, but the workload is what the
    // trajectory tracks: reset so events/sec measures steady state.
    cluster.profiler().reset();
    cluster.tracer().clear();

    sim::WorkloadConfig workload;
    workload.clients = clients;
    const auto result = sim::run_multi_client_workload(cluster, workload);

    const SimProfiler& prof = cluster.profiler();
    const double wall_s = static_cast<double>(prof.wall_elapsed_ns()) * 1e-9;
    const double events_per_sec =
        wall_s > 0 ? static_cast<double>(prof.events()) / wall_s : 0.0;
    const double ops_per_sec = wall_s > 0 ? static_cast<double>(prof.ops()) / wall_s : 0.0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    if (const Histogram* lat = cluster.metrics().find_histogram("sim.op.latency_us");
        lat != nullptr && lat->count() > 0) {
      p50 = lat->percentile(50);
      p95 = lat->percentile(95);
      p99 = lat->percentile(99);
    }
    const auto critical = prof::analyze_critical_path(cluster.tracer().spans());

    table.add_row({std::to_string(n), std::to_string(result.ops),
                   TextTable::fmt(result.makespan.to_millis()), TextTable::fmt(p50, 1),
                   TextTable::fmt(p99, 1), std::to_string(prof.events()),
                   TextTable::fmt(events_per_sec, 0), TextTable::fmt(wall_s * 1e3, 1)});

    if (!first_point) json += ",";
    first_point = false;
    json += "\n    {\"nodes\": " + std::to_string(n);
    json += ", \"ops\": " + std::to_string(result.ops);
    json += ", \"failures\": " + std::to_string(result.failures);
    json += ", \"events\": " + std::to_string(prof.events());
    json += ", \"makespan_ms\": " + json_number(result.makespan.to_millis());
    json += ", \"virtual_ms\": " + json_number(cluster.clock().now().to_millis());
    json += ", \"wall_ms\": " + json_number(wall_s * 1e3);
    json += ", \"events_per_sec\": " + json_number(events_per_sec);
    json += ", \"ops_per_sec\": " + json_number(ops_per_sec);
    json += ", \"p50_us\": " + json_number(p50);
    json += ", \"p95_us\": " + json_number(p95);
    json += ", \"p99_us\": " + json_number(p99);
    json += ", \"stages\": {";
    bool first_stage = true;
    for (const auto& [stage, total] : critical.stages) {
      if (!first_stage) json += ", ";
      first_stage = false;
      const double share = critical.critical_total_ns > 0
                               ? static_cast<double>(total.ns) /
                                     static_cast<double>(critical.critical_total_ns)
                               : 0.0;
      json += "\"" + json_escape(stage) + "\": {\"ns\": " +
              json_number(static_cast<double>(total.ns)) +
              ", \"share\": " + json_number(share) + "}";
    }
    json += "}}";
  }
  json += "\n  ]\n}\n";

  std::fputs(table.to_string().c_str(), stdout);
  std::ofstream file(out, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot write %s (does the directory exist?)\n", out.c_str());
    return 1;
  }
  file << json;
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const kosha::CliArgs args(argc, argv);
  if (const auto err =
          args.check_known("runs,seed,model,csv,sweep,sweep-nodes,sweep-clients,out");
      !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  if (args.get_bool("sweep", false)) return run_sweep(args);
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  std::printf("Table 1: Modified Andrew Benchmark, Kosha vs NFS (runs=%zu)\n", runs);
  std::printf("distribution level 1, replication factor 1, no redirection\n\n");

  const auto nfs = run_nfs_baseline(runs, seed);
  const std::size_t node_counts[] = {1, 2, 4, 8};
  std::vector<KoshaRun> kosha_runs;
  for (const std::size_t n : node_counts) kosha_runs.push_back(run_kosha(n, runs, seed));

  kosha::TextTable table({"Benchmark", "NFS", "K-1", "ov%", "K-2", "ov%", "K-4", "ov%", "K-8",
                          "ov%"});
  auto phase_row = [&](const char* name, auto select) {
    std::vector<std::string> row{name, kosha::TextTable::fmt(select(nfs), 2)};
    for (const auto& k : kosha_runs) {
      row.push_back(kosha::TextTable::fmt(select(k.times), 2));
      row.push_back(overhead(select(k.times), select(nfs)));
    }
    table.add_row(std::move(row));
  };
  phase_row("mkdir", [](const auto& t) { return t.mkdir_s; });
  phase_row("copy", [](const auto& t) { return t.copy_s; });
  phase_row("stat", [](const auto& t) { return t.stat_s; });
  phase_row("grep", [](const auto& t) { return t.grep_s; });
  phase_row("compile", [](const auto& t) { return t.compile_s; });
  phase_row("Total", [](const auto& t) { return t.total(); });

  std::fputs(table.to_string().c_str(), stdout);
  if (args.get_bool("csv", false)) std::fputs(table.to_csv().c_str(), stdout);

  if (args.get_bool("model", false)) {
    // Analytic model of §6.1.2: D = I + H*hc*(N-1)/N per operation.
    std::printf("\nOverhead model D = I + H*hc*(N-1)/N (per-op, microseconds):\n");
    kosha::ClusterConfig model_config;
    const double interposition_us =
        static_cast<double>(model_config.kosha.interposition_cost.ns) / 1000.0;
    const double hop_us = static_cast<double>(kosha::net::NetworkConfig{}.hop_latency.ns) / 1e3;
    for (std::size_t i = 0; i < 4; ++i) {
      const auto n = static_cast<double>(node_counts[i]);
      const double model =
          interposition_us + kosha_runs[i].mean_hops * hop_us * (n - 1.0) / n;
      std::printf("  N=%zu: measured mean DHT hops=%.2f, model D=%.1f us\n", node_counts[i],
                  kosha_runs[i].mean_hops, model);
    }
  }
  return 0;
}

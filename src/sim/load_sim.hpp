#pragma once

// Load-distribution simulation (paper Figure 5).
//
// Places every file of a departmental trace on a simulated Kosha cluster
// by hashing its anchor directory name, and measures how evenly file
// counts and bytes spread across nodes as the distribution level grows.
// Level 0 selects the hypothetical finest-grained scheme — hashing every
// individual file path — which upper-bounds the achievable balance.

#include <cstddef>
#include <cstdint>

#include "trace/fs_trace.hpp"

namespace kosha::sim {

struct LoadDistribution {
  /// Mean/stddev across nodes of the per-node share (in percent) of the
  /// file count and of the total bytes, averaged over runs.
  double mean_count_pct = 0;
  double std_count_pct = 0;
  double mean_bytes_pct = 0;
  double std_bytes_pct = 0;
};

struct LoadSimConfig {
  std::size_t nodes = 16;
  /// Distribution level; 0 = per-file hashing (the upper bound).
  unsigned level = 1;
  std::size_t runs = 50;  // paper: 50 node-id assignments
  std::uint64_t seed = 1;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

[[nodiscard]] LoadDistribution simulate_load_distribution(const trace::FsTrace& trace,
                                                          const LoadSimConfig& config);

}  // namespace kosha::sim

#include "pastry/leaf_set.hpp"

#include <algorithm>

namespace kosha::pastry {

namespace {

/// Total order on (distance to target, id) used for "numerically closest"
/// with a deterministic tie-break.
bool closer(Key target, NodeId a, NodeId b) {
  const Uint128 da = ring_distance(a, target);
  const Uint128 db = ring_distance(b, target);
  if (da != db) return da < db;
  return a < b;
}

}  // namespace

LeafSet::LeafSet(NodeId owner, unsigned half) : owner_(owner), half_(half) {}

bool LeafSet::insert(NodeId id) {
  if (id == owner_ || contains(id)) return false;
  const Uint128 down = owner_ - id;  // offset walking counter-clockwise
  const Uint128 up = id - owner_;    // offset walking clockwise
  // Assign to the nearer side (ties go to the larger side).
  const bool larger_side = up <= down;
  auto& side = larger_side ? larger_ : smaller_;
  auto offset_of = [&](NodeId n) { return larger_side ? n - owner_ : owner_ - n; };
  const Uint128 offset = larger_side ? up : down;

  const auto pos = std::find_if(side.begin(), side.end(),
                                [&](NodeId n) { return offset < offset_of(n); });
  if (pos == side.end() && side.size() >= half_) return false;  // farther than all
  side.insert(pos, id);
  if (side.size() > half_) side.pop_back();
  return true;
}

bool LeafSet::remove(NodeId id) {
  for (auto* side : {&smaller_, &larger_}) {
    const auto it = std::find(side->begin(), side->end(), id);
    if (it != side->end()) {
      side->erase(it);
      return true;
    }
  }
  return false;
}

bool LeafSet::contains(NodeId id) const {
  return std::find(smaller_.begin(), smaller_.end(), id) != smaller_.end() ||
         std::find(larger_.begin(), larger_.end(), id) != larger_.end();
}

std::vector<NodeId> LeafSet::members() const {
  std::vector<NodeId> out = smaller_;
  out.insert(out.end(), larger_.begin(), larger_.end());
  return out;
}

std::vector<NodeId> LeafSet::closest_members(std::size_t k) const {
  std::vector<NodeId> out = members();
  std::sort(out.begin(), out.end(), [&](NodeId a, NodeId b) { return closer(owner_, a, b); });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<NodeId> LeafSet::alternating_members(std::size_t k) const {
  std::vector<NodeId> out;
  std::size_t si = 0;
  std::size_t li = 0;
  // Start with the closer of the two immediate neighbors, then alternate.
  bool take_larger =
      !larger_.empty() &&
      (smaller_.empty() || closer(owner_, larger_.front(), smaller_.front()));
  while (out.size() < k && (si < smaller_.size() || li < larger_.size())) {
    if (take_larger && li < larger_.size()) {
      out.push_back(larger_[li++]);
    } else if (!take_larger && si < smaller_.size()) {
      out.push_back(smaller_[si++]);
    }
    take_larger = !take_larger;
    // If one side is exhausted, keep draining the other.
    if (si >= smaller_.size()) take_larger = true;
    if (li >= larger_.size()) take_larger = false;
  }
  return out;
}

bool LeafSet::covers(Key key) const {
  if (underfull()) return true;  // the node knows the entire (small) network
  const NodeId leftmost = smaller_.back();
  const NodeId rightmost = larger_.back();
  return in_clockwise_range(key, leftmost, rightmost);
}

NodeId LeafSet::closest_to(Key key) const {
  NodeId best = owner_;
  for (const auto* side : {&smaller_, &larger_}) {
    for (const NodeId id : *side) {
      if (closer(key, id, best)) best = id;
    }
  }
  return best;
}

std::vector<NodeId> LeafSet::side(bool larger) const { return larger ? larger_ : smaller_; }

}  // namespace kosha::pastry

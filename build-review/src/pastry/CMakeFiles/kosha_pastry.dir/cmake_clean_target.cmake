file(REMOVE_RECURSE
  "libkosha_pastry.a"
)

#pragma once

// Heartbeat failure detector (paper §2.2, §4.3: "node join/failure
// triggers transparent recovery").
//
// Each overlay node runs one detector that probes its leaf-set neighbors
// on a seeded period over the simulated network, so probes are subject to
// the same drops, brownouts and partitions as any other traffic. The
// detector is the oracle-free path to failure handling: when the cluster
// runs with self-healing enabled, `fail_node` only stops the host and the
// survivors must notice.
//
// Per-peer state machine:
//
//   kAlive --(misses >= suspicion_threshold)--> kSuspected
//   kSuspected --(direct ack | indirect probe succeeds)--> kAlive
//   kSuspected --(confirm_rounds indirect rounds all fail)--> kDead
//   kDead --(probe request from the peer, boot verified)--> kAlive
//
// Two false-positive suppressions beyond the miss threshold:
//   * confirm-before-declare: a suspected peer is only declared dead after
//     `confirm_rounds` rounds of indirect probing through distinct helper
//     neighbors all fail — a short brownout that eats our probes is
//     usually survived by some helper's path, or ends before the rounds
//     run out;
//   * isolation self-quarantine: a node that has not heard an ack from
//     *anyone* within `isolation_window` assumes it is the partitioned
//     one and withholds death verdicts instead of declaring the world
//     dead.
//
// A declared death is reported to the overlay (report_failure), which
// repairs the observer's leaf set and fires the replication callback. If
// the verdict was wrong (the peer was only browned out), the peer's own
// probes reach us eventually; the probe carries its boot verifier, and a
// matching boot proves it is the same incarnation — we reinstate it
// (overlay reintroduce) rather than treating it as a new node. A genuine
// crash + revival takes a fresh node id and a fresh boot, so stale
// verdicts for the old incarnation can never capture the new one.
//
// Determinism: probe timers draw jitter from the event loop's seeded Rng
// only; message fates come from the fault plan's seeded stream via
// SimNetwork::plan_message; per-peer state lives in a std::map so every
// iteration is ordered. Scheduled callbacks never capture the detector
// itself — they re-resolve it through the overlay's registry at fire
// time, so a stopped (crashed) node's pending events become inert no-ops.

#include <cstdint>
#include <map>

#include "common/event_loop.hpp"
#include "common/sim_clock.hpp"
#include "net/sim_network.hpp"
#include "pastry/types.hpp"

namespace kosha::pastry {

class PastryOverlay;

struct FailureDetectorConfig {
  /// Base interval between probe sweeps; each sweep adds loop jitter in
  /// [0, probe_jitter] so the cluster's detectors do not phase-lock.
  SimDuration probe_period = SimDuration::millis(100);
  SimDuration probe_jitter = SimDuration::millis(15);
  /// A probe unanswered for this long counts as a miss. Must exceed the
  /// round-trip (2 hops + any latency spike) by a wide margin.
  SimDuration probe_timeout = SimDuration::millis(50);
  /// Consecutive direct misses before a peer becomes suspected.
  unsigned suspicion_threshold = 3;
  /// Helper neighbors asked to probe the suspect per indirect round.
  unsigned indirect_probes = 2;
  /// Indirect rounds that must all fail before declaring death.
  unsigned confirm_rounds = 2;
  /// Self-quarantine: withhold death verdicts unless some peer acked a
  /// direct probe within this window ending now.
  SimDuration isolation_window = SimDuration::millis(600);
};

struct FailureDetectorStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t probe_misses = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t indirect_rounds = 0;
  std::uint64_t refutations = 0;
  std::uint64_t declared_dead = 0;
  std::uint64_t reinstated = 0;
  std::uint64_t quarantined_verdicts = 0;

  friend bool operator==(const FailureDetectorStats&, const FailureDetectorStats&) = default;
};

class FailureDetector {
 public:
  FailureDetector(FailureDetectorConfig config, PastryOverlay* overlay,
                  net::SimNetwork* network, EventLoop* loop, NodeId self, net::HostId host,
                  std::uint64_t boot);

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Register with the overlay and schedule the first probe sweep.
  void start();
  /// Stop probing and deregister. Pending scheduled events become no-ops
  /// (they resolve the detector through the overlay registry).
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] net::HostId host() const { return host_; }
  [[nodiscard]] std::uint64_t boot() const { return boot_; }
  [[nodiscard]] const FailureDetectorStats& stats() const { return stats_; }
  [[nodiscard]] const FailureDetectorConfig& config() const { return config_; }

  [[nodiscard]] bool is_suspected(NodeId id) const;
  /// True when this node has declared `id` dead and not reinstated it.
  /// The overlay's leaf-set repair consults this to keep a declared-dead
  /// (but possibly still live) peer from being re-inserted.
  [[nodiscard]] bool has_declared_dead(NodeId id) const;

  // --- peer-side handlers (invoked via scheduled events) -----------------

  /// A probe from `from` (incarnation `from_boot`) arrived here. Heals a
  /// stale death verdict about `from` when the boot matches. Returns
  /// whether this node acks (it is running).
  bool on_probe_request(NodeId from, std::uint64_t from_boot);
  /// The ack for probe `seq` of `target` arrived (with its boot).
  void on_probe_ack(NodeId target, std::uint64_t seq, std::uint64_t target_boot);
  /// Probe `seq` of `target` has been outstanding for probe_timeout.
  void on_probe_timeout(NodeId target, std::uint64_t seq);
  /// An indirect confirmation round for `target` resolved.
  void on_confirmation(NodeId target, std::uint64_t generation, bool reached);
  /// Retry confirmation after a quarantined verdict.
  void on_quarantine_retry(NodeId target, std::uint64_t generation);
  /// Run one probe sweep over the current leaf set and reschedule.
  void tick();

 private:
  enum class Status { kAlive, kSuspected, kDead };

  struct PeerState {
    Status status = Status::kAlive;
    unsigned misses = 0;
    unsigned failed_rounds = 0;
    /// Sequence of the newest probe sent / newest ack received; a timeout
    /// event for seq <= last_ack_seq was answered in time.
    std::uint64_t last_seq = 0;
    std::uint64_t last_ack_seq = 0;
    /// Last boot verifier heard from the peer (0 = never heard one).
    std::uint64_t last_boot = 0;
    /// Bumped on every status change; stale in-flight confirmation events
    /// carry an older generation and are dropped.
    std::uint64_t generation = 0;
  };

  void schedule_tick();
  void probe(NodeId target);
  void start_confirmation_round(NodeId target, std::uint64_t generation);
  void declare_dead(NodeId target, PeerState& state);
  /// Record a detector lifecycle moment (suspect/refute/declare/reinstate/
  /// quarantine) as an instant root span tagged with the peer. Inert when
  /// tracing is off.
  void trace_event(const char* name, NodeId peer);
  /// Heal a death verdict about `peer` if it is live and the boot matches.
  void maybe_reinstate(NodeId peer, std::uint64_t peer_boot);
  /// Drop state for peers that left the monitored set: genuinely dead ids
  /// never return (revival takes a fresh id), and ids that merely fell out
  /// of the leaf set are forgotten unless a death verdict must be kept.
  void prune_state();

  FailureDetectorConfig config_;
  PastryOverlay* overlay_;
  net::SimNetwork* network_;
  EventLoop* loop_;
  NodeId self_;
  net::HostId host_;
  std::uint64_t boot_;
  bool running_ = false;
  /// Last virtual time any peer acked a direct probe (isolation guard).
  SimDuration last_ack_time_{};
  std::map<NodeId, PeerState> peers_;
  FailureDetectorStats stats_;
};

}  // namespace kosha::pastry

#pragma once

// NFS client: issues RPCs to servers across the simulated network.
//
// Destination selection uses the server id embedded in the (opaque) handle.
// Every call charges request and reply messages on the network. Two
// failure regimes are distinguished:
//   * hard-down — the host is marked dead (or its server was erased from
//     the directory, e.g. retirement): one timeout, kUnreachable, no
//     retries. This is the error Kosha's transparent fault handling reacts
//     to (paper §4.4).
//   * transient — the fault plan lost a message (drop/brownout/partition):
//     the client times out, backs off on the virtual clock, and
//     retransmits under the *same* xid up to RetryPolicy::max_attempts.
//     Non-idempotent retransmissions are made safe by the server's
//     duplicate-request cache (see nfs_server.hpp).
//
// When attempts run out the final status depends on what was delivered:
// kUnreachable if no request ever reached the server (the op certainly did
// not execute — safe to re-issue), kTimedOut if at least one did (the op
// may have executed with its reply lost — re-issuing a non-idempotent op
// requires adopting an already-applied result; see koshad's ladder).

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "common/event_loop.hpp"
#include "common/rng.hpp"
#include "common/tracing.hpp"
#include "nfs/nfs_server.hpp"
#include "nfs/retry_policy.hpp"
#include "nfs/wire.hpp"

namespace kosha {
class Counter;
class Histogram;
}  // namespace kosha

namespace kosha::nfs {

/// Host -> server registry (the simulation's stand-in for portmap/mountd).
class ServerDirectory {
 public:
  void add(NfsServer* server) { servers_[server->host()] = server; }
  void erase(net::HostId host) { servers_.erase(host); }
  [[nodiscard]] NfsServer* find(net::HostId host) const {
    const auto it = servers_.find(host);
    return it == servers_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<net::HostId, NfsServer*> servers_;
};

class NfsClient {
 public:
  /// `boot` is this client incarnation's verifier (see RpcContext::boot):
  /// give every restart of a host's client a value never used by that host
  /// before, so its restarted xid counter cannot match duplicate-request
  /// cache entries left over from the previous incarnation.
  NfsClient(net::SimNetwork* network, const ServerDirectory* directory, net::HostId self,
            RetryPolicy retry = {}, std::uint64_t jitter_seed = 0, std::uint64_t boot = 0);

  [[nodiscard]] net::HostId self() const { return self_; }
  [[nodiscard]] std::uint64_t boot() const { return boot_; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }
  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }

  /// The completion-based RPC core of the event-driven execution model.
  /// Sends the request now; every later step — wire arrival, admission to
  /// the destination's service queue, execution, the reply's wire trip,
  /// timeout detection, and retry backoff — is a scheduled event on the
  /// network's event loop, so other work interleaves with this RPC in
  /// virtual time. `done` fires from the loop with the final result (the
  /// reply, or kTimedOut/kUnreachable once retries are exhausted — same
  /// semantics as the synchronous path, which is now a thin wrapper that
  /// drives the loop until its own completion fires). Requires
  /// `network()->loop() != nullptr`.
  template <typename ReplyT, typename Invoke, typename ReplyBytes>
  void call_async(std::size_t proc_slot, net::HostId server, std::size_t request_bytes,
                  Invoke invoke, ReplyBytes reply_bytes,
                  std::function<void(NfsResult<ReplyT>)> done);

  /// Fetch the root handle of a server's export (MOUNT protocol stand-in).
  [[nodiscard]] NfsResult<FileHandle> mount(net::HostId server);

  [[nodiscard]] NfsResult<HandleReply> lookup(FileHandle dir, std::string_view name);
  [[nodiscard]] NfsResult<fs::Attr> getattr(FileHandle obj);
  [[nodiscard]] NfsResult<fs::Attr> set_mode(FileHandle obj, std::uint32_t mode);
  [[nodiscard]] NfsResult<fs::Attr> truncate(FileHandle obj, std::uint64_t size);
  [[nodiscard]] NfsResult<ReadReply> read(FileHandle file, std::uint64_t offset,
                                          std::uint32_t count);
  [[nodiscard]] NfsResult<std::uint32_t> write(FileHandle file, std::uint64_t offset,
                                               std::string_view data);
  /// The abbreviated wire sattr3 carries {mode, uid}; gid rides the
  /// in-process invocation only, so message sizes (and every charged byte)
  /// are unchanged by the gid plumbing.
  [[nodiscard]] NfsResult<HandleReply> create(FileHandle dir, std::string_view name,
                                              std::uint32_t mode = 0644,
                                              std::uint32_t uid = 0, std::uint32_t gid = 0);
  [[nodiscard]] NfsResult<HandleReply> mkdir(FileHandle dir, std::string_view name,
                                             std::uint32_t mode = 0755, std::uint32_t uid = 0,
                                             std::uint32_t gid = 0);
  [[nodiscard]] NfsResult<HandleReply> symlink(FileHandle dir, std::string_view name,
                                               std::string_view target);
  [[nodiscard]] NfsResult<std::string> readlink(FileHandle link);
  [[nodiscard]] NfsResult<Unit> remove(FileHandle dir, std::string_view name);
  [[nodiscard]] NfsResult<Unit> rmdir(FileHandle dir, std::string_view name);
  /// Both directories must live on the same server (always true in Kosha:
  /// files in one directory share a node).
  [[nodiscard]] NfsResult<Unit> rename(FileHandle from_dir, std::string_view from_name,
                                       FileHandle to_dir, std::string_view to_name);
  [[nodiscard]] NfsResult<ReaddirReply> readdir(FileHandle dir);
  [[nodiscard]] NfsResult<FsstatReply> fsstat(net::HostId server);

 private:
  /// What happened to one request transmission.
  enum class SendOutcome {
    kSent,      // delivered; *out points at the server
    kLost,      // lost in transit (fault plan): worth retrying
    kHardDown,  // server dead or absent: fail fast, no retries
  };

  SendOutcome send_request(net::HostId server, std::size_t request_bytes, NfsServer** out);
  [[nodiscard]] bool deliver_reply(net::HostId server, std::size_t reply_bytes);
  /// Exponential backoff (with jitter) before retry `attempt`; consumes
  /// one jitter draw. The serial path charges it on the clock, the async
  /// path turns it into a timer event.
  [[nodiscard]] SimDuration backoff_duration(unsigned attempt);
  /// Charge the exponential backoff (with jitter) before retry `attempt`.
  void backoff(unsigned attempt);

  /// Run one RPC through the full retry state machine. `invoke` performs
  /// the server-side procedure; `reply_bytes` sizes the reply message for
  /// the returned value. Wraps transact_impl with a per-procedure span and
  /// latency/outcome metrics when observability is on.
  template <typename ReplyT, typename Invoke, typename ReplyBytes>
  NfsResult<ReplyT> transact(NfsProc proc, net::HostId server, std::size_t request_bytes,
                             Invoke&& invoke, ReplyBytes&& reply_bytes);

  template <typename ReplyT, typename Invoke, typename ReplyBytes>
  NfsResult<ReplyT> transact_impl(std::size_t proc_slot, net::HostId server,
                                  std::size_t request_bytes, Invoke&& invoke,
                                  ReplyBytes&& reply_bytes);

  /// Lazily-resolved instruments for one procedure (null when metrics off).
  struct ProcMetrics {
    bool resolved = false;
    Histogram* latency = nullptr;
    Counter* ok = nullptr;
    Counter* error = nullptr;
  };
  [[nodiscard]] ProcMetrics& proc_metrics(NfsProc proc);

  /// RPC identity for a non-idempotent call, carrying the current trace
  /// context (invalid when tracing is off).
  [[nodiscard]] RpcContext rpc_ctx(std::uint32_t xid) const;

  std::uint32_t next_xid() { return ++xid_; }

  /// Replies are charged with a fixed header estimate plus payload; only
  /// the call direction is fully XDR-encoded (see nfs/wire.hpp).
  static constexpr std::size_t kReplyBytes = 96;

  net::SimNetwork* network_;
  const ServerDirectory* directory_;
  net::HostId self_;
  std::uint32_t xid_ = 0;
  std::uint64_t boot_ = 0;
  RetryPolicy retry_;
  Rng jitter_rng_;
  std::array<ProcMetrics, net::kNetProcSlots> proc_metrics_{};
};

// ---------------------------------------------------------------------------
// call_async — the event-driven RPC state machine
// ---------------------------------------------------------------------------
// One heap-allocated Call per RPC, kept alive by the events it schedules.
// The timeline replays the serial retry loop exactly when nothing else is
// in flight: the fault plan judges each message at the same virtual
// instants, the jitter stream is drawn in the same order, and every
// NetStats counter moves identically — that equivalence is what lets the
// synchronous wrapper switch execution models without changing a number.

template <typename ReplyT, typename Invoke, typename ReplyBytes>
void NfsClient::call_async(std::size_t proc_slot, net::HostId server,
                           std::size_t request_bytes, Invoke invoke,
                           ReplyBytes reply_bytes,
                           std::function<void(NfsResult<ReplyT>)> done) {
  struct Call : std::enable_shared_from_this<Call> {
    NfsClient* c = nullptr;
    EventLoop* loop = nullptr;
    std::size_t slot = 0;
    net::HostId server = net::kInvalidHost;
    std::size_t request_bytes = 0;
    Invoke invoke;
    ReplyBytes reply_bytes;
    std::function<void(NfsResult<ReplyT>)> done;
    unsigned attempt = 0;
    /// Whether any request was delivered (see transact_impl): decides
    /// kTimedOut vs kUnreachable when attempts run out.
    bool executed = false;
    /// The enclosing rpc.<proc> span, captured synchronously at submit
    /// time — under interleaved execution the tracer's context stack
    /// belongs to whichever client is running, so the completion events
    /// must carry their own parent for the wait spans they emit.
    TraceContext trace{};

    Call(Invoke&& inv, ReplyBytes&& rb) : invoke(std::move(inv)), reply_bytes(std::move(rb)) {}

    /// Record a wait interval ([start, end], known rather than lived
    /// through) as a finished child span of the rpc span. Inert when
    /// tracing is off or the RPC runs outside any trace.
    void emit_wait_span(const char* name, std::uint32_t host, SimDuration start,
                        SimDuration end) {
      Tracer* tracer = c->network_->tracer();
      if (tracer == nullptr || !tracer->enabled() || !trace.valid()) return;
      (void)tracer->emit_span(trace, name, host, start, end);
    }

    void give_up() { done(executed ? NfsStat::kTimedOut : NfsStat::kUnreachable); }

    /// Count a timeout now; let its duration elapse as an event, then
    /// continue with `next`.
    void timeout_then(void (Call::*next)()) {
      c->network_->note_timeout();
      c->network_->note_proc_timeout(slot);
      const SimDuration now = loop->now();
      emit_wait_span("rpc.timeout", c->self_, now, now + c->network_->config().rpc_timeout);
      auto self = this->shared_from_this();
      loop->schedule_after(c->network_->config().rpc_timeout, "rpc.timeout",
                           [self, next] { ((*self).*next)(); });
    }

    void retry_or_fail() {
      if (attempt + 1 >= std::max(1u, c->retry_.max_attempts)) {
        give_up();
        return;
      }
      c->network_->count_retry(slot);
      const SimDuration wait = c->backoff_duration(attempt);
      ++attempt;
      const SimDuration now = loop->now();
      emit_wait_span("rpc.backoff", c->self_, now, now + wait);
      auto self = this->shared_from_this();
      loop->schedule_after(wait, "rpc.backoff", [self] { self->start(); });
    }

    /// One transmission attempt (retransmissions re-enter here under the
    /// same xid — the invoke closure carries it).
    void start() {
      NfsServer* s = c->directory_->find(server);
      if (s == nullptr || !c->network_->is_up(server)) {
        // Permanent death: one timeout, no retries (see transact_impl).
        c->network_->note_timeout();
        c->network_->note_proc_timeout(slot);
        const SimDuration now = loop->now();
        emit_wait_span("rpc.timeout", c->self_, now,
                       now + c->network_->config().rpc_timeout);
        auto self = this->shared_from_this();
        loop->schedule_after(c->network_->config().rpc_timeout, "rpc.timeout",
                             [self] { self->give_up(); });
        return;
      }
      const auto plan = c->network_->plan_message(c->self_, server, request_bytes, loop->now());
      if (!plan.delivered) {
        timeout_then(&Call::retry_or_fail);
        return;
      }
      c->network_->note_proc_message(slot, request_bytes);
      auto self = this->shared_from_this();
      loop->schedule_at(plan.arrival, "rpc.arrive", [self] { self->arrive(); });
    }

    /// The request reached the server: queue behind whatever it is
    /// already serving (this wait is the measured `net.queue_delay`).
    void arrive() {
      const SimDuration arrival = loop->now();
      const SimDuration begin = c->network_->begin_service(server, arrival);
      if (begin > arrival) emit_wait_span("net.queue", server, arrival, begin);
      c->network_->note_inflight(server, +1);
      auto self = this->shared_from_this();
      loop->schedule_at(begin, "rpc.execute", [self] { self->execute(); });
    }

    void execute() {
      NfsServer* s = c->directory_->find(server);
      if (s == nullptr || !c->network_->is_up(server)) {
        // Died while the request sat in its queue: indistinguishable from
        // a lost reply for the client.
        c->network_->note_inflight(server, -1);
        executed = true;
        timeout_then(&Call::retry_or_fail);
        return;
      }
      executed = true;
      // The procedure's service-time charges advance the clock from the
      // service-begin instant, so server-side spans keep real virtual
      // start/end times; the elapsed cost becomes this host's queue
      // occupancy.
      const SimDuration begin = loop->now();
      NfsResult<ReplyT> reply = invoke(*s);
      const SimDuration end = loop->now();
      c->network_->end_service(server, end);
      c->network_->note_service_time(server, end - begin);
      auto self = this->shared_from_this();
      auto boxed = std::make_shared<NfsResult<ReplyT>>(std::move(reply));
      loop->schedule_at(end, "rpc.depart", [self, boxed] { self->depart(std::move(*boxed)); });
    }

    /// Service finished: send the reply back over the wire.
    void depart(NfsResult<ReplyT> reply) {
      c->network_->note_inflight(server, -1);
      const std::size_t rb = reply_bytes(reply);
      const auto plan = c->network_->plan_message(server, c->self_, rb, loop->now());
      if (!plan.delivered) {
        // Reply lost: the op may have executed — the retransmission
        // reuses the xid so the server's DRC returns this very reply.
        timeout_then(&Call::retry_or_fail);
        return;
      }
      c->network_->note_proc_message(slot, rb);
      auto self = this->shared_from_this();
      auto boxed = std::make_shared<NfsResult<ReplyT>>(std::move(reply));
      loop->schedule_at(plan.arrival, "rpc.done", [self, boxed] { self->done(std::move(*boxed)); });
    }
  };

  auto call = std::make_shared<Call>(std::move(invoke), std::move(reply_bytes));
  call->c = this;
  call->loop = network_->loop();
  call->slot = proc_slot;
  call->server = server;
  call->request_bytes = request_bytes;
  call->done = std::move(done);
  if (const Tracer* tracer = network_->tracer(); tracer != nullptr && tracer->enabled()) {
    call->trace = tracer->current();
  }
  call->start();
}

}  // namespace kosha::nfs

#pragma once

// Shared infrastructure handles threaded through the Kosha components.

#include <functional>
#include <map>

#include "common/sim_clock.hpp"
#include "kosha/config.hpp"
#include "net/sim_network.hpp"
#include "nfs/nfs_client.hpp"
#include "pastry/overlay.hpp"

namespace kosha {

class EventLoop;
class MetricsRegistry;
class RepairDaemon;
class ReplicaManager;
class Tracer;

/// One per cluster; owned by KoshaCluster, borrowed by every node-level
/// component. Bundles the simulated infrastructure plus the cluster-wide
/// Kosha configuration.
struct Runtime {
  SimClock* clock = nullptr;
  net::SimNetwork* network = nullptr;
  pastry::PastryOverlay* overlay = nullptr;
  nfs::ServerDirectory* servers = nullptr;
  KoshaConfig config;

  /// The discrete-event scheduler driving the cluster (null in the legacy
  /// serial execution model). Same pointer as network->loop(); kept here
  /// so node-level components can ask "is this run event-driven?" without
  /// reaching through the network.
  EventLoop* loop = nullptr;

  /// Cluster-wide observability sinks (nullptr = off, the default). Set by
  /// KoshaCluster before any node-level component is constructed, so
  /// components may resolve their instruments once at construction.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;

  /// Per-host replica managers, filled in by the cluster as nodes start.
  /// Ordered map on purpose: ReplicaManager::promote walks it to pick a
  /// repair donor, and that choice must be the same in every same-seed run
  /// (kosha-lint rule D2 — unordered iteration order leaks into traces).
  std::map<net::HostId, ReplicaManager*> replica_managers;

  /// Per-host anti-entropy repair daemons (self-healing mode only).
  /// Scheduled ticks resolve the daemon through this map at fire time, so
  /// a tick aimed at a crashed node's daemon is an inert no-op. Ordered
  /// for the same D2 reason as replica_managers.
  std::map<net::HostId, RepairDaemon*> repair_daemons;

  /// Fault-injection hook for tests: when set and it returns true, an
  /// in-progress subtree copy aborts midway, leaving the
  /// MIGRATION_NOT_COMPLETE flag in place (paper §4.4 failure scenario).
  std::function<bool()> migration_interrupt;

  [[nodiscard]] ReplicaManager* replica_manager(net::HostId host) const {
    const auto it = replica_managers.find(host);
    return it == replica_managers.end() ? nullptr : it->second;
  }

  [[nodiscard]] RepairDaemon* repair_daemon(net::HostId host) const {
    const auto it = repair_daemons.find(host);
    return it == repair_daemons.end() ? nullptr : it->second;
  }
};

}  // namespace kosha

// NFS duplicate-request cache: a retransmission whose original request
// executed but whose reply was lost must return the cached reply instead
// of re-executing — retried non-idempotent ops leave exactly one effect
// and never report spurious kExist/kNoEnt.

#include <gtest/gtest.h>

#include "nfs/nfs_client.hpp"

namespace kosha::nfs {
namespace {

struct Fixture {
  SimClock clock;
  net::SimNetwork network{{}, &clock};
  net::HostId client_host = network.add_host();
  net::HostId server_host = network.add_host();
  NfsServer server{server_host, {}, {}, &clock};
  ServerDirectory directory;
  NfsClient client{&network, &directory, client_host};

  Fixture() {
    directory.add(&server);
    // Pure windowed/forced plan: no random faults, so every loss below is
    // scheduled explicitly with force_drop_message.
    network.set_fault_plan(std::make_unique<net::FaultPlan>(net::FaultPlanConfig{}));
  }

  /// Drop the reply of the next RPC (message 1 = request, 2 = reply).
  void drop_next_reply() { network.fault_plan()->force_drop_message(2); }
  /// Drop the request of the next RPC: the op must not execute at all
  /// before the retransmission.
  void drop_next_request() { network.fault_plan()->force_drop_message(1); }

  [[nodiscard]] FileHandle root() { return server.root_handle(); }
};

TEST(DuplicateRequestCache, CreateRetryReturnsCachedReply) {
  Fixture fx;
  fx.drop_next_reply();
  const auto created = fx.client.create(fx.root(), "f", 0600, 7);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created->attr.mode, 0600u);
  EXPECT_EQ(fx.server.drc_stats().hits, 1u);
  EXPECT_EQ(fx.network.stats().retries, 1u);
  EXPECT_EQ(fx.network.stats().drops, 1u);
  // Exactly one file exists; the handle is live, not a re-created twin.
  const auto listing = fx.server.readdir(fx.root());
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->entries.size(), 1u);
  EXPECT_EQ(listing->entries[0].name, "f");
  EXPECT_TRUE(fx.server.getattr(created->handle).ok());
}

TEST(DuplicateRequestCache, MkdirRetryDoesNotReportExist) {
  Fixture fx;
  fx.drop_next_reply();
  const auto made = fx.client.mkdir(fx.root(), "d");
  ASSERT_TRUE(made.ok()) << to_string(made.error());
  EXPECT_EQ(fx.server.drc_stats().hits, 1u);
  const auto listing = fx.server.readdir(fx.root());
  ASSERT_EQ(listing->entries.size(), 1u);
  EXPECT_EQ(listing->entries[0].type, fs::FileType::kDirectory);
}

TEST(DuplicateRequestCache, SymlinkRetryReturnsCachedReply) {
  Fixture fx;
  fx.drop_next_reply();
  const auto linked = fx.client.symlink(fx.root(), "l", "target");
  ASSERT_TRUE(linked.ok());
  EXPECT_EQ(fx.server.drc_stats().hits, 1u);
  const auto target = fx.server.readlink(linked->handle);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(target.value(), "target");
}

TEST(DuplicateRequestCache, RemoveRetryDoesNotReportNoEnt) {
  Fixture fx;
  ASSERT_TRUE(fx.client.create(fx.root(), "f").ok());
  fx.drop_next_reply();
  // Without the DRC the retransmission would re-execute REMOVE against an
  // already-deleted name and surface kNoEnt to a client whose op worked.
  EXPECT_TRUE(fx.client.remove(fx.root(), "f").ok());
  EXPECT_EQ(fx.server.drc_stats().hits, 1u);
  EXPECT_TRUE(fx.server.readdir(fx.root())->entries.empty());
}

TEST(DuplicateRequestCache, RmdirRetryDoesNotReportNoEnt) {
  Fixture fx;
  ASSERT_TRUE(fx.client.mkdir(fx.root(), "d").ok());
  fx.drop_next_reply();
  EXPECT_TRUE(fx.client.rmdir(fx.root(), "d").ok());
  EXPECT_EQ(fx.server.drc_stats().hits, 1u);
  EXPECT_TRUE(fx.server.readdir(fx.root())->entries.empty());
}

TEST(DuplicateRequestCache, RenameRetryDoesNotReportNoEnt) {
  Fixture fx;
  ASSERT_TRUE(fx.client.create(fx.root(), "a").ok());
  fx.drop_next_reply();
  EXPECT_TRUE(fx.client.rename(fx.root(), "a", fx.root(), "b").ok());
  EXPECT_EQ(fx.server.drc_stats().hits, 1u);
  const auto listing = fx.server.readdir(fx.root());
  ASSERT_EQ(listing->entries.size(), 1u);
  EXPECT_EQ(listing->entries[0].name, "b");
}

TEST(DuplicateRequestCache, ErrorRepliesAreCachedToo) {
  Fixture fx;
  ASSERT_TRUE(fx.client.create(fx.root(), "f").ok());
  fx.drop_next_reply();
  // The first execution fails with kExist; the retransmission must return
  // that same cached error, not re-run and double-count anything.
  EXPECT_EQ(fx.client.create(fx.root(), "f").error(), NfsStat::kExist);
  EXPECT_EQ(fx.server.drc_stats().hits, 1u);
  EXPECT_EQ(fx.server.readdir(fx.root())->entries.size(), 1u);
}

TEST(DuplicateRequestCache, LostRequestExecutesOnceOnRetry) {
  Fixture fx;
  fx.drop_next_request();
  const auto created = fx.client.create(fx.root(), "f");
  ASSERT_TRUE(created.ok());
  // The original request never reached the server, so the retry was a
  // first execution: no DRC hit, exactly one file.
  EXPECT_EQ(fx.server.drc_stats().hits, 0u);
  EXPECT_EQ(fx.server.drc_stats().stores, 1u);
  EXPECT_EQ(fx.network.stats().retries, 1u);
  EXPECT_EQ(fx.server.readdir(fx.root())->entries.size(), 1u);
}

TEST(DuplicateRequestCache, RetriesExhaustToUnreachable) {
  Fixture fx;
  const unsigned attempts = fx.client.retry_policy().max_attempts;
  // Every transmission is a request (a dropped request produces no reply),
  // so dropping messages 1..attempts loses all of them.
  for (unsigned i = 0; i < attempts; ++i) {
    fx.network.fault_plan()->force_drop_message(i + 1);
  }
  EXPECT_EQ(fx.client.create(fx.root(), "f").error(), NfsStat::kUnreachable);
  EXPECT_EQ(fx.network.stats().retries, attempts - 1);
  EXPECT_TRUE(fx.server.readdir(fx.root())->entries.empty());
}

TEST(DuplicateRequestCache, RepliesLostExhaustToTimedOut) {
  Fixture fx;
  const unsigned attempts = fx.client.retry_policy().max_attempts;
  // Every request is delivered but every reply is lost: messages alternate
  // request (odd) / reply (even), so drop the even ones.
  for (unsigned i = 0; i < attempts; ++i) {
    fx.network.fault_plan()->force_drop_message(2 * (i + 1));
  }
  // The op executed (possibly via DRC replay) but the client never learned
  // so: the give-up status must be kTimedOut — "may have taken effect" —
  // not kUnreachable, which would license a blind re-issue.
  EXPECT_EQ(fx.client.create(fx.root(), "f").error(), NfsStat::kTimedOut);
  EXPECT_EQ(fx.network.stats().retries, attempts - 1);
  // Only the first transmission executed; the retransmissions hit the DRC.
  EXPECT_EQ(fx.server.drc_stats().hits, attempts - 1);
  EXPECT_EQ(fx.server.readdir(fx.root())->entries.size(), 1u);
}

TEST(DuplicateRequestCache, BootVerifierIsolatesClientIncarnations) {
  Fixture fx;
  // First incarnation of the client host creates "f" under xid 1.
  NfsClient first{&fx.network, &fx.directory, fx.client_host, {}, 0, /*boot=*/1};
  ASSERT_TRUE(first.create(fx.root(), "f").ok());
  // The host "reboots": the new incarnation restarts its xid counter, so
  // its first non-idempotent RPC reuses xid 1. Without the boot verifier
  // the server's DRC would return the stale cached "f" reply and "g" would
  // silently never be created.
  NfsClient reborn{&fx.network, &fx.directory, fx.client_host, {}, 0, /*boot=*/2};
  const auto created = reborn.create(fx.root(), "g", 0640, 9);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created->attr.mode, 0640u);
  EXPECT_EQ(fx.server.drc_stats().hits, 0u);
  const auto listing = fx.server.readdir(fx.root());
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->entries.size(), 2u);
}

TEST(DuplicateRequestCache, ShapeMismatchIsAMissNotAForgedReply) {
  Fixture fx;
  const RpcContext ctx{fx.client_host, /*xid=*/99, /*boot=*/7};
  // A handle-shaped entry sits in the cache under (client, xid) ...
  ASSERT_TRUE(fx.server.create(fx.root(), "x", 0644, 0, 0, ctx).ok());
  // ... and a unit-shaped procedure arrives under the same key. Before the
  // shape check this returned the default-constructed unit slot (kInval)
  // without executing; it must instead miss, execute, and re-cache.
  EXPECT_TRUE(fx.server.remove(fx.root(), "x", ctx).ok());
  EXPECT_EQ(fx.server.drc_stats().hits, 0u);
  EXPECT_TRUE(fx.server.readdir(fx.root())->entries.empty());
  // The entry was overwritten with the REMOVE result: its retransmission
  // replays success instead of re-executing into kNoEnt.
  EXPECT_TRUE(fx.server.remove(fx.root(), "x", ctx).ok());
  EXPECT_EQ(fx.server.drc_stats().hits, 1u);
}

TEST(DuplicateRequestCache, HardDownIsNotRetried) {
  Fixture fx;
  const auto root = fx.root();
  fx.network.set_up(fx.server_host, false);
  const auto before = fx.network.stats().timeouts;
  EXPECT_EQ(fx.client.create(root, "f").error(), NfsStat::kUnreachable);
  // Permanent death costs exactly one timeout and zero retransmissions —
  // identical to the behaviour without any fault plan installed.
  EXPECT_EQ(fx.network.stats().timeouts, before + 1);
  EXPECT_EQ(fx.network.stats().retries, 0u);
}

}  // namespace
}  // namespace kosha::nfs

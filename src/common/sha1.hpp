#pragma once

// SHA-1 (FIPS 180-1), implemented from scratch.
//
// Kosha derives DHT keys by hashing directory names with SHA-1 (paper §3.1).
// Only the first 128 bits of the 160-bit digest are used as the Pastry key.

#include <array>
#include <cstdint>
#include <string_view>

#include "common/uint128.hpp"

namespace kosha {

/// Streaming SHA-1 hasher.
class Sha1 {
 public:
  Sha1() { reset(); }

  /// Reset to the initial state so the object can be reused.
  void reset();

  /// Absorb `data` into the hash state.
  void update(std::string_view data);

  /// Finalize and return the 20-byte digest. The object must be reset()
  /// before further use.
  [[nodiscard]] std::array<std::uint8_t, 20> digest();

  /// One-shot convenience: 20-byte digest of `data`.
  [[nodiscard]] static std::array<std::uint8_t, 20> hash(std::string_view data);

  /// One-shot convenience: first 128 bits of SHA-1(data), big-endian.
  [[nodiscard]] static Uint128 hash128(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace kosha

file(REMOVE_RECURSE
  "CMakeFiles/fig7_availability.dir/fig7_availability.cpp.o"
  "CMakeFiles/fig7_availability.dir/fig7_availability.cpp.o.d"
  "fig7_availability"
  "fig7_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

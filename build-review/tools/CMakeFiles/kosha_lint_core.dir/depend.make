# Empty dependencies file for kosha_lint_core.
# This may be replaced when dependencies are built.

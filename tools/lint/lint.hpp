#pragma once

// kosha_lint — repo-specific static analysis for determinism and
// RPC-protocol invariants (DESIGN §7).
//
// The reproduction's results rest on two conventions that ordinary
// compilers cannot check: same-seed runs must be byte-identical, and every
// non-idempotent NFS procedure must be at-most-once through the server's
// duplicate-request cache. This linter walks the repo's own sources with a
// hand-rolled C++ tokenizer (comments, string/char literals, raw strings
// and preprocessor lines are understood; no libclang dependency) and
// enforces the conventions as errors:
//
//   D1 wall-clock      no wall-clock/entropy primitives (system_clock,
//                      steady_clock, time(), rand(), std::random_device,
//                      getenv, ...) outside the allowlisted seed/CLI/
//                      profiler seams (Config::entropy_allowlist).
//   D2 unordered-iter  no range-for or .begin() iteration over a
//                      std::unordered_map/set member: iteration order is
//                      implementation-defined and leaks into traces,
//                      metrics and migration order.
//   D3 event-callback  no blocking sleeps anywhere, and no set_now()/now_
//                      mutation inside arguments (callbacks) passed to
//                      EventLoop::schedule_at/schedule_after.
//   P1 drc             every NfsServer handler for a non-idempotent proc
//                      (CREATE/MKDIR/SYMLINK/REMOVE/RMDIR/RENAME/SETATTR)
//                      must consult drc_find before touching store_ and
//                      record its reply with drc_store.
//   P2 rpc-ctx         every RpcContext construction carries the full
//                      {client, xid, boot} triple (an empty `{}` default
//                      argument — the documented absent-context sentinel —
//                      is permitted).
//   H1 header          header hygiene: #pragma once present, no
//                      `using namespace` at header scope.
//   S1 storage-seam    no concrete storage backend type (LocalFs, CasFs)
//                      named outside src/fs/ and tests/: everything else
//                      must program against fs::StorageBackend and
//                      construct stores through fs::make_backend, so new
//                      backends slot in without touching consumers.
//
// A violating line can be excused with an annotation carrying a reason:
//
//   ... // kosha-lint: allow(unordered-iter): erase-sweep, order-free
//
// either on the offending line or as a comment on the line directly above
// it. An annotation without a reason does not suppress anything.

#include <string>
#include <vector>

namespace kosha::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;     // "D1".."H1"
  std::string slug;     // annotation name: "wall-clock", "unordered-iter", ...
  std::string message;
};

struct Config {
  /// Path suffixes allowed to touch wall clock / entropy: the seed and CLI
  /// seams where nondeterminism is deliberately injected exactly once, plus
  /// src/common/profile.cpp — the single sanctioned wall-clock seam
  /// (SimProfiler::wall_now_ns) behind the simulator profiler. Profiler
  /// output is measurement of the simulator, never input to it, so the
  /// read cannot leak into simulated state; every other file must go
  /// through that function rather than naming a clock directly.
  std::vector<std::string> entropy_allowlist = {
      "src/common/rng.cpp", "src/common/rng.hpp",
      "src/common/cli.cpp", "src/common/cli.hpp",
      "src/common/profile.cpp"};
};

/// Two-pass linter: add_source() collects cross-file facts (which member
/// names are declared with unordered containers), run() applies every rule
/// to every added source. Diagnostics are sorted by (file, line, rule) so
/// output is deterministic regardless of the order sources were added.
class Linter {
 public:
  explicit Linter(Config config = {});
  ~Linter();
  Linter(const Linter&) = delete;
  Linter& operator=(const Linter&) = delete;

  void add_source(std::string path, std::string content);
  [[nodiscard]] std::vector<Diagnostic> run();

  [[nodiscard]] std::size_t file_count() const;

  [[nodiscard]] static bool is_header(const std::string& path);
  /// True for files the repo-wide walk should lint (.cpp/.cc/.hpp/.h).
  [[nodiscard]] static bool is_cpp_source(const std::string& path);

 private:
  struct Impl;
  Impl* impl_;
};

/// GCC-style "file:line: error: message [rule]" lines, one per diagnostic.
[[nodiscard]] std::string to_text(const std::vector<Diagnostic>& diags);

/// Machine-readable report: {"violations": N, "files_scanned": N,
/// "diagnostics": [{file, line, rule, slug, message}...]}.
[[nodiscard]] std::string to_json(const std::vector<Diagnostic>& diags,
                                  std::size_t files_scanned);

/// Exit code the CLI maps lint results to: 0 clean, 1 diagnostics found.
[[nodiscard]] int exit_code(const std::vector<Diagnostic>& diags);

}  // namespace kosha::lint

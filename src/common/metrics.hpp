#pragma once

// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Design constraints, in order:
//   1. Determinism. Instruments only ever record values derived from the
//      virtual clock or integer counts — never wall time — so same-seed runs
//      produce byte-identical snapshots. Export iterates a sorted map.
//   2. Zero overhead when off. The hot paths hold a nullable
//      `MetricsRegistry*`; a null pointer means a single branch per seam.
//      Recording never advances the SimClock and never consumes RNG, so an
//      instrumented run is numerically identical to an uninstrumented one.
//   3. Stable references. Instruments live in node-based maps; a `Counter*`
//      cached by a client survives later registrations.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace kosha {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Bucket upper bounds are chosen at registration
/// and never change, so two runs that record the same values produce the
/// same bucket counts regardless of arrival order.
class Histogram {
 public:
  /// Default bounds: a 1/2/5 ladder from 1 to 1e7, intended for latencies
  /// recorded in microseconds (1us .. 10s), plus an overflow bucket.
  [[nodiscard]] static std::vector<double> default_bounds();

  explicit Histogram(std::vector<double> bounds = {});

  void record(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

  /// p-th percentile (0..100) estimated by linear interpolation within the
  /// containing bucket. Exact min/max are used to clamp the first and last
  /// occupied buckets so small samples don't overshoot.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<double> bounds_;           // ascending upper bounds
  std::vector<std::uint64_t> buckets_;   // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Registry of named instruments. Lookup by name registers on first use;
/// returned pointers are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter* counter(std::string_view name);
  [[nodiscard]] Gauge* gauge(std::string_view name);
  /// `bounds` applies only on first registration; later calls with the same
  /// name return the existing histogram unchanged.
  [[nodiscard]] Histogram* histogram(std::string_view name, std::vector<double> bounds = {});

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Deterministic snapshot: one JSON object with sorted "counters",
  /// "gauges", "histograms" sections. Histograms include count/sum/min/max/
  /// mean and interpolated p50/p95/p99.
  [[nodiscard]] std::string to_json() const;

  /// Flat CSV: `type,name,field,value` rows in the same sorted order.
  [[nodiscard]] std::string to_csv() const;

  void clear();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace kosha

# Figure 5 — load-distribution stddev vs distribution level.
# Input: results/fig5.csv (from fig5_load_distribution --csv).
set datafile separator ','
set terminal svg size 720,480
set output 'results/fig5.svg'
set xlabel 'distribution level'
set ylabel 'stddev of per-node share (%)'
set yrange [0:*]
set key top right
# Rows: header, levels 1..10, then the per-file bound.
plot 'results/fig5.csv' every ::1::10 using 0:3 with linespoints title 'file count', \
     'results/fig5.csv' every ::1::10 using 0:5 with linespoints title 'bytes', \
     'results/fig5.csv' every ::11::11 using (1):3 with points pt 7 title 'per-file bound'

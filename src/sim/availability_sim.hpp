#pragma once

// Availability simulation (paper Figure 7).
//
// Distributes the departmental trace across a machine population, replays
// an 840-hour availability trace, and measures the percentage of files
// reachable each hour for replica counts 0..4. Files are grouped by their
// anchor directory (everything in one anchor lives and dies with the same
// K+1 holders); a group is unavailable while all of its holders are down
// and is re-replicated onto live ring neighbors as soon as any holder is
// reachable again, matching Kosha's continuous replica maintenance (§4.2).

#include <cstdint>
#include <string>
#include <vector>

#include "kosha/cluster.hpp"
#include "trace/availability.hpp"
#include "trace/fs_trace.hpp"

namespace kosha::sim {

struct AvailabilitySimConfig {
  unsigned level = 3;  // paper: distribution level fixed at 3
  unsigned replicas = 3;
  std::size_t runs = 10;  // paper: 100 node-id assignments
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  /// Hours a freshly created replica takes before it can serve (copying
  /// an anchor's content over the LAN is not instantaneous). A copy whose
  /// source machines all fail within the window is lost with them; 0 =
  /// instantaneous repair.
  std::size_t repair_hours = 0;
};

struct AvailabilityResult {
  /// Percentage of files available per hour, averaged over runs.
  std::vector<double> available_pct;
  double average_pct = 0;
  double min_pct = 100;
  std::size_t min_hour = 0;
};

[[nodiscard]] AvailabilityResult simulate_availability(const trace::FsTrace& fs_trace,
                                                       const trace::AvailabilityTrace& machines,
                                                       const AvailabilitySimConfig& config);

// ---------------------------------------------------------------------------
// Continuous-churn soak (autonomous self-healing, DESIGN §8).
//
// Unlike the Figure-7 trace replay above, this drives a *live* KoshaCluster
// in self-healing mode: seeded exponential join/fail arrivals, no oracle —
// failures are discovered by the heartbeat detectors and repaired by the
// anti-entropy daemons while a client keeps reading. Reported per run:
// time-to-detection, time-to-repair (MTTR), read availability, and data
// durability (files with at least one live copy). Fully deterministic:
// two same-seed runs produce byte-identical timelines and digests.
// ---------------------------------------------------------------------------

struct ChurnSimConfig {
  std::size_t nodes = 12;
  unsigned replicas = 2;
  unsigned level = 2;
  std::uint64_t seed = 1;
  /// Virtual-time length of the soak (plus a convergence tail: after the
  /// last arrival the loop runs until repair converges or 4x duration).
  SimDuration duration = SimDuration::seconds(20);
  /// Mean of the exponential failure / join interarrival draws.
  SimDuration mean_fail_interarrival = SimDuration::seconds(3);
  SimDuration mean_join_interarrival = SimDuration::seconds(5);
  /// State-sampling grid (availability, durability, replication level).
  SimDuration sample_period = SimDuration::millis(500);
  std::size_t files = 24;
  /// Never fail below this many live nodes (client host 0 is never failed).
  std::size_t min_live = 5;
  /// Optional message-drop probability soaking the detectors in noise.
  double drop_probability = 0.0;
  /// Ablation: run the legacy oracle-driven repair instead of self-healing
  /// (detection is instantaneous by fiat; everything else identical).
  bool oracle = false;
  pastry::FailureDetectorConfig detector;
  RepairDaemonConfig repair;
};

struct ChurnSample {
  SimDuration at{};
  std::size_t live_nodes = 0;
  double availability_pct = 0;  // client reads that succeeded
  double durability_pct = 0;    // files with >= 1 live copy
  double full_pct = 0;          // files at full replication (K+1 live copies)
  std::size_t undetected = 0;   // real failures not yet confirmed by anyone
};

struct ChurnResult {
  std::size_t failures = 0;
  std::size_t joins = 0;
  /// Confirmed failure detections and their latency (ms). In oracle mode
  /// detection is by fiat: detected == failures, latencies all zero.
  std::size_t detected = 0;
  double detect_ms_mean = 0;
  double detect_ms_max = 0;
  /// Repair convergence: a failure is repaired at the first subsequent
  /// sample where every surviving file is back at full replication; the
  /// sample grid bounds the resolution.
  std::size_t repaired = 0;
  double mttr_ms_mean = 0;
  double mttr_ms_max = 0;
  double availability_pct = 0;     // mean over samples
  double min_durability_pct = 100;
  double final_durability_pct = 0;
  double final_full_pct = 0;
  bool converged = false;  // every surviving file at full replication at end
  std::vector<ChurnSample> timeline;
  /// Deterministic serializations for same-seed byte-identity checks:
  /// the event/sample timeline as CSV and the final durable-state digest.
  std::string timeline_csv;
  std::string digest;
};

[[nodiscard]] ChurnResult simulate_churn(const ChurnSimConfig& config);

}  // namespace kosha::sim

// Unit and property tests for the 128-bit ring arithmetic.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/uint128.hpp"

namespace kosha {
namespace {

TEST(Uint128, DefaultIsZero) {
  const Uint128 v;
  EXPECT_EQ(v, Uint128::zero());
  EXPECT_EQ(v.hi, 0u);
  EXPECT_EQ(v.lo, 0u);
}

TEST(Uint128, ComparisonOrdersHiBeforeLo) {
  EXPECT_LT(Uint128(0, 5), Uint128(1, 0));
  EXPECT_LT(Uint128(1, 0), Uint128(1, 1));
  EXPECT_GT(Uint128(2, 0), Uint128(1, ~0ull));
}

TEST(Uint128, AdditionCarriesAcrossWords) {
  const Uint128 a(0, ~0ull);
  const Uint128 one(0, 1);
  EXPECT_EQ(a + one, Uint128(1, 0));
}

TEST(Uint128, AdditionWrapsAtMax) {
  EXPECT_EQ(Uint128::max() + Uint128(0, 1), Uint128::zero());
}

TEST(Uint128, SubtractionBorrowsAcrossWords) {
  EXPECT_EQ(Uint128(1, 0) - Uint128(0, 1), Uint128(0, ~0ull));
}

TEST(Uint128, SubtractionWrapsBelowZero) {
  EXPECT_EQ(Uint128::zero() - Uint128(0, 1), Uint128::max());
}

TEST(Uint128, DigitExtractionBase16) {
  const Uint128 v = Uint128::from_hex("0123456789abcdef0123456789abcdef");
  EXPECT_EQ(v.digit(0, 4), 0x0u);
  EXPECT_EQ(v.digit(1, 4), 0x1u);
  EXPECT_EQ(v.digit(15, 4), 0xfu);
  EXPECT_EQ(v.digit(16, 4), 0x0u);
  EXPECT_EQ(v.digit(31, 4), 0xfu);
}

TEST(Uint128, SharedPrefixLength) {
  const Uint128 a = Uint128::from_hex("abcd0000000000000000000000000000");
  const Uint128 b = Uint128::from_hex("abce0000000000000000000000000000");
  EXPECT_EQ(a.shared_prefix_length(b, 4), 3u);
  EXPECT_EQ(a.shared_prefix_length(a, 4), 32u);
  const Uint128 c = Uint128::from_hex("1bcd0000000000000000000000000000");
  EXPECT_EQ(a.shared_prefix_length(c, 4), 0u);
}

TEST(Uint128, HexRoundTrip) {
  const Uint128 v(0x0123456789abcdefull, 0xfedcba9876543210ull);
  EXPECT_EQ(v.to_hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(Uint128::from_hex(v.to_hex()), v);
}

TEST(Uint128, FromHexShortStrings) {
  EXPECT_EQ(Uint128::from_hex("ff"), Uint128(0, 0xff));
  EXPECT_EQ(Uint128::from_hex("0"), Uint128::zero());
}

TEST(Uint128, FromHexRejectsBadInput) {
  EXPECT_THROW((void)Uint128::from_hex(""), std::invalid_argument);
  EXPECT_THROW((void)Uint128::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW((void)Uint128::from_hex(std::string(33, 'a')), std::invalid_argument);
}

TEST(Uint128, FromBytesBigEndian) {
  std::array<std::uint8_t, 16> bytes{};
  bytes[0] = 0x01;
  bytes[15] = 0xff;
  const Uint128 v = Uint128::from_bytes(bytes);
  EXPECT_EQ(v.hi, 0x0100000000000000ull);
  EXPECT_EQ(v.lo, 0xffull);
}

TEST(RingDistance, SymmetricAndShortWay) {
  const Uint128 a(0, 10);
  const Uint128 b(0, 4);
  EXPECT_EQ(ring_distance(a, b), Uint128(0, 6));
  EXPECT_EQ(ring_distance(b, a), Uint128(0, 6));
  // Near-opposite ends: the short way wraps.
  EXPECT_EQ(ring_distance(Uint128::zero(), Uint128::max()), Uint128(0, 1));
}

TEST(RingDistance, SelfIsZero) {
  EXPECT_EQ(ring_distance(Uint128(7, 7), Uint128(7, 7)), Uint128::zero());
}

TEST(InClockwiseRange, BasicAndWrapped) {
  EXPECT_TRUE(in_clockwise_range(Uint128(0, 5), Uint128(0, 1), Uint128(0, 9)));
  EXPECT_FALSE(in_clockwise_range(Uint128(0, 10), Uint128(0, 1), Uint128(0, 9)));
  // Wrapped range [max-1, 2]: max and 0 are inside, 5 is not.
  const Uint128 from = Uint128::max() - Uint128(0, 1);
  EXPECT_TRUE(in_clockwise_range(Uint128::max(), from, Uint128(0, 2)));
  EXPECT_TRUE(in_clockwise_range(Uint128::zero(), from, Uint128(0, 2)));
  EXPECT_FALSE(in_clockwise_range(Uint128(0, 5), from, Uint128(0, 2)));
}

// ---------------------------------------------------------------------------
// Property sweeps
// ---------------------------------------------------------------------------

class Uint128Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Uint128Property, AddSubRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Uint128 a = rng.next_id();
    const Uint128 b = rng.next_id();
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST_P(Uint128Property, AdditionCommutes) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Uint128 a = rng.next_id();
    const Uint128 b = rng.next_id();
    EXPECT_EQ(a + b, b + a);
  }
}

TEST_P(Uint128Property, RingDistanceNeverExceedsHalf) {
  Rng rng(GetParam());
  const Uint128 half(0x8000000000000000ull, 0);
  for (int i = 0; i < 200; ++i) {
    const Uint128 d = ring_distance(rng.next_id(), rng.next_id());
    EXPECT_LE(d, half);
  }
}

TEST_P(Uint128Property, HexRoundTripRandom) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const Uint128 v = rng.next_id();
    EXPECT_EQ(Uint128::from_hex(v.to_hex()), v);
  }
}

TEST_P(Uint128Property, DigitsReassembleValue) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Uint128 v = rng.next_id();
    Uint128 rebuilt;
    for (unsigned d = 0; d < 32; ++d) {
      rebuilt.hi = (rebuilt.hi << 4) | (rebuilt.lo >> 60);
      rebuilt.lo = (rebuilt.lo << 4) | v.digit(d, 4);
    }
    EXPECT_EQ(rebuilt, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Uint128Property, ::testing::Values(1, 2, 3, 17, 1234567));

}  // namespace
}  // namespace kosha

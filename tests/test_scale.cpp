// Larger-scale behaviour: overlay routing at hundreds of nodes, hop-count
// growth, and a mid-sized cluster exercising the full stack. Kept under a
// few seconds of wall time.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kosha/audit.hpp"
#include "kosha/mount.hpp"
#include "net/sim_network.hpp"
#include "pastry/overlay.hpp"

namespace kosha {
namespace {

TEST(Scale, OverlayRoutingAt512Nodes) {
  SimClock clock;
  net::SimNetwork network({}, &clock);
  pastry::PastryOverlay overlay({}, &network);
  Rng rng(1001);
  std::vector<pastry::NodeId> ids;
  for (int i = 0; i < 512; ++i) {
    const auto id = rng.next_id();
    ids.push_back(id);
    overlay.join(id, network.add_host());
  }
  // Routing agrees with ground truth from random sources.
  for (int trial = 0; trial < 300; ++trial) {
    const auto key = rng.next_id();
    const auto from = static_cast<net::HostId>(rng.next_below(512));
    EXPECT_EQ(overlay.route(from, key).owner, overlay.ring().owner(key));
  }
}

TEST(Scale, HopCountGrowsLogarithmically) {
  Rng rng(1002);
  double mean_hops_small = 0;
  double mean_hops_large = 0;
  for (const std::size_t n : {std::size_t{32}, std::size_t{512}}) {
    SimClock clock;
    net::SimNetwork network({}, &clock);
    pastry::PastryOverlay overlay({}, &network);
    for (std::size_t i = 0; i < n; ++i) overlay.join(rng.next_id(), network.add_host());
    std::uint64_t hops = 0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) hops += overlay.route(0, rng.next_id()).hops;
    const double mean = static_cast<double>(hops) / trials;
    if (n == 32) {
      mean_hops_small = mean;
    } else {
      mean_hops_large = mean;
    }
  }
  EXPECT_GT(mean_hops_large, mean_hops_small);
  // 16x more nodes must cost far less than 16x the hops (log growth).
  EXPECT_LT(mean_hops_large, mean_hops_small * 3.0);
  EXPECT_LT(mean_hops_large, 4.0);  // log16(512) ~ 2.25 plus slack
}

TEST(Scale, OverlaySurvivesHeavyChurnAt128Nodes) {
  SimClock clock;
  net::SimNetwork network({}, &clock);
  pastry::PastryOverlay overlay({}, &network);
  Rng rng(1003);
  std::vector<pastry::NodeId> live;
  for (int i = 0; i < 128; ++i) {
    const auto id = rng.next_id();
    live.push_back(id);
    overlay.join(id, network.add_host());
  }
  for (int round = 0; round < 60; ++round) {
    if (rng.next_bool(0.5) && live.size() > 8) {
      const std::size_t victim = 1 + rng.next_below(live.size() - 1);
      overlay.fail(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const auto id = rng.next_id();
      overlay.join(id, network.add_host());
      live.push_back(id);
    }
  }
  for (int trial = 0; trial < 200; ++trial) {
    const auto key = rng.next_id();
    EXPECT_EQ(overlay.route(overlay.host_of(live[0]), key).owner,
              overlay.ring().owner(key));
  }
}

TEST(Scale, FullStackThirtyTwoNodes) {
  ClusterConfig config;
  config.nodes = 32;
  config.kosha.distribution_level = 2;
  config.kosha.replicas = 2;
  config.seed = 1004;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  Rng rng(1005);

  for (int i = 0; i < 40; ++i) {
    const std::string dir = "/u" + std::to_string(i % 8) + "/p" + std::to_string(i % 5);
    ASSERT_TRUE(mount.mkdir_p(dir).ok());
    ASSERT_TRUE(mount.write_file(dir + "/f" + std::to_string(i), rng.next_name(64)).ok());
  }
  // Kill four nodes (one at a time) and add two.
  for (int k = 0; k < 4; ++k) {
    const auto hosts = cluster.live_hosts();
    cluster.fail_node(hosts[1 + rng.next_below(hosts.size() - 1)]);
  }
  (void)cluster.add_node();
  (void)cluster.add_node();

  const auto report = audit_cluster(cluster);
  EXPECT_TRUE(report.clean()) << report.to_string();
  // Data spread across many nodes.
  int holding = 0;
  for (const auto host : cluster.live_hosts()) {
    if (cluster.server(host).store().used_bytes() > 0) ++holding;
  }
  EXPECT_GT(holding, 8);
}

}  // namespace
}  // namespace kosha

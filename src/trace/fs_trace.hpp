#pragma once

// Synthetic departmental file-system trace (paper §6.2).
//
// The authors drove their load-distribution and redirection simulations
// with a trace of their department's central NFS server: 221 K files from
// 130 users totalling 17.9 GB. We synthesise a trace with the same
// aggregate statistics: Zipf-like file counts per user, log-normal file
// sizes with a heavy tail, and per-user directory trees up to a depth cap.

#include <cstdint>
#include <string>
#include <vector>

namespace kosha::trace {

struct TraceFile {
  std::string path;  // virtual path, e.g. "/u017/src/proj/main.c"
  std::uint64_t size = 0;
};

struct FsTrace {
  std::vector<std::string> directories;  // creation order, parents first
  std::vector<TraceFile> files;          // insertion order (grouped by user)
  std::uint64_t total_bytes = 0;
};

struct FsTraceConfig {
  std::uint64_t seed = 1;
  std::size_t users = 130;
  std::size_t files = 221'000;
  std::uint64_t total_bytes = 17'900ull << 20;  // 17.9 GB
  /// Average files per directory (sets the directory count).
  double files_per_dir = 14.0;
  unsigned max_depth = 8;
  /// Zipf skew of per-user file counts.
  double user_skew = 0.8;
};

[[nodiscard]] FsTrace generate_fs_trace(const FsTraceConfig& config);

/// The anchor directory name placement hashes for a *file* path under a
/// given distribution level: the component at depth min(level, dir_depth),
/// or "/" when the file sits directly under the virtual root
/// (paper §3.1-§3.2).
[[nodiscard]] std::string file_anchor_name(const std::string& path, unsigned level);

}  // namespace kosha::trace

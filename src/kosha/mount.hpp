#pragma once

// KoshaMount — path-level convenience wrapper over a koshad daemon.
//
// Applications see /kosha as an ordinary file system; this wrapper speaks
// absolute virtual paths and drives the daemon's handle-based NFS
// interface underneath (the way the kernel's NFS client would).

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kosha/koshad.hpp"

namespace kosha {

class KoshaMount {
 public:
  explicit KoshaMount(Koshad* daemon) : daemon_(daemon) {}

  /// Resolve a path to its virtual handle (lookup walk from the root).
  /// Handles are cached per path, as the kernel's NFS client would cache
  /// its dentries; virtual handles stay valid across failovers, and stale
  /// ones self-heal through the daemon's re-resolution.
  [[nodiscard]] nfs::NfsResult<VirtualHandle> resolve(std::string_view path);

  /// Create all missing directories along `path`.
  [[nodiscard]] nfs::NfsResult<VirtualHandle> mkdir_p(std::string_view path);

  /// Write a whole file (created if missing, truncated otherwise).
  [[nodiscard]] nfs::NfsResult<Unit> write_file(std::string_view path,
                                                std::string_view content);

  /// Read a whole file.
  [[nodiscard]] nfs::NfsResult<std::string> read_file(std::string_view path);

  [[nodiscard]] nfs::NfsResult<fs::Attr> stat(std::string_view path);
  [[nodiscard]] bool exists(std::string_view path);

  [[nodiscard]] nfs::NfsResult<std::vector<fs::DirEntry>> list(std::string_view path);

  [[nodiscard]] nfs::NfsResult<Unit> remove(std::string_view path);  // files only
  [[nodiscard]] nfs::NfsResult<Unit> rmdir(std::string_view path);   // empty dirs
  [[nodiscard]] nfs::NfsResult<Unit> remove_all(std::string_view path);
  [[nodiscard]] nfs::NfsResult<Unit> rename(std::string_view from, std::string_view to);

  [[nodiscard]] Koshad& daemon() { return *daemon_; }

 private:
  /// Resolve the parent directory of `path`; returns (parent vh, leaf name).
  [[nodiscard]] nfs::NfsResult<std::pair<VirtualHandle, std::string>> parent_of(
      std::string_view path);
  void invalidate(std::string_view path);

  // Uninstrumented bodies; the public wrappers add the per-operation span
  // and latency histogram (see MountOp in mount.cpp).
  [[nodiscard]] nfs::NfsResult<VirtualHandle> mkdir_p_impl(std::string_view path);
  [[nodiscard]] nfs::NfsResult<Unit> write_file_impl(std::string_view path,
                                                     std::string_view content);
  [[nodiscard]] nfs::NfsResult<std::string> read_file_impl(std::string_view path);
  [[nodiscard]] nfs::NfsResult<fs::Attr> stat_impl(std::string_view path);

  Koshad* daemon_;
  std::unordered_map<std::string, VirtualHandle> handle_cache_;
};

}  // namespace kosha

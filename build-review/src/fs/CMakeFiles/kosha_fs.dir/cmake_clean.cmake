file(REMOVE_RECURSE
  "CMakeFiles/kosha_fs.dir/local_fs.cpp.o"
  "CMakeFiles/kosha_fs.dir/local_fs.cpp.o.d"
  "libkosha_fs.a"
  "libkosha_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Multi-client workload driver: concurrency wins and determinism of the
// event-driven execution model.

#include <gtest/gtest.h>

#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "sim/concurrency_driver.hpp"

namespace kosha {
namespace {

ClusterConfig cluster_config(unsigned replicas, KoshaConfig::MirrorMode mode,
                             std::uint64_t seed = 42) {
  ClusterConfig config;
  config.nodes = 8;
  config.seed = seed;
  config.kosha.replicas = replicas;
  config.kosha.mirror_mode = mode;
  return config;
}

sim::WorkloadResult run_workload(const ClusterConfig& config, std::size_t clients,
                                 bool overlap) {
  KoshaCluster cluster(config);
  sim::WorkloadConfig workload;
  workload.clients = clients;
  workload.files_per_client = 3;
  workload.file_bytes = 2048;
  workload.reads_per_file = 1;
  workload.overlap = overlap;
  return sim::run_multi_client_workload(cluster, workload);
}

TEST(ConcurrencyDriver, AllOpsSucceedAndContentVerifies) {
  const auto result =
      run_workload(cluster_config(1, KoshaConfig::MirrorMode::kBackground), 4, true);
  EXPECT_EQ(result.failures, 0u);
  // 4 clients x (1 mkdir + 3 writes + 3 reads).
  EXPECT_EQ(result.ops, 4u * 7u);
  EXPECT_GT(result.makespan.ns, 0);
}

TEST(ConcurrencyDriver, OverlapBeatsSerialCharging) {
  const auto config = cluster_config(1, KoshaConfig::MirrorMode::kBackground);
  const auto overlap = run_workload(config, 8, true);
  const auto serial = run_workload(config, 8, false);
  EXPECT_EQ(overlap.failures, 0u);
  EXPECT_EQ(serial.failures, 0u);
  // Overlapping timelines must finish strictly earlier than paying every
  // client's ops back-to-back.
  EXPECT_LT(overlap.makespan.ns, serial.makespan.ns);
  // The per-op work itself is comparable: the win is scheduling, not
  // cheaper ops.
  EXPECT_GT(overlap.busy.ns, serial.makespan.ns / 2);
}

TEST(ConcurrencyDriver, SixteenClientsFinishWellBelowSixteenTimesOne) {
  const auto config = cluster_config(1, KoshaConfig::MirrorMode::kBackground);
  const auto one = run_workload(config, 1, true);
  const auto sixteen = run_workload(config, 16, true);
  EXPECT_EQ(sixteen.failures, 0u);
  // The acceptance bound: 16-client makespan measurably below 16 x the
  // 1-client makespan (clients overlap across distinct storage nodes).
  EXPECT_LT(sixteen.makespan.ns, 16 * one.makespan.ns * 3 / 4);
}

TEST(ConcurrencyDriver, OverlappedMirroringPaysMaxNotSum) {
  // K=3: a cross-node mutation fans out three mirror messages. Sequential
  // charging pays their sum on the foreground op; overlapped pays only the
  // slowest. Background (the paper's model) pays nothing.
  const auto background =
      run_workload(cluster_config(3, KoshaConfig::MirrorMode::kBackground), 1, true);
  const auto sequential =
      run_workload(cluster_config(3, KoshaConfig::MirrorMode::kSequential), 1, true);
  const auto overlapped =
      run_workload(cluster_config(3, KoshaConfig::MirrorMode::kOverlapped), 1, true);
  EXPECT_LT(background.makespan.ns, overlapped.makespan.ns);
  EXPECT_LT(overlapped.makespan.ns, sequential.makespan.ns);
}

TEST(ConcurrencyDriver, MirrorStatsSumAndMaxBracketTheModes) {
  KoshaCluster cluster(cluster_config(3, KoshaConfig::MirrorMode::kOverlapped));
  sim::WorkloadConfig workload;
  workload.clients = 1;
  workload.files_per_client = 3;
  workload.reads_per_file = 0;
  const auto result = sim::run_multi_client_workload(cluster, workload);
  EXPECT_EQ(result.failures, 0u);

  MirrorStats total;
  std::uint64_t daemon_rpcs = 0;
  for (const auto host : cluster.live_hosts()) {
    const MirrorStats& ms = cluster.replicas(host).mirror_stats();
    total.rpcs += ms.rpcs;
    total.batches += ms.batches;
    total.sequential += ms.sequential;
    total.overlapped += ms.overlapped;
    daemon_rpcs += cluster.daemon(host).stats().mirror_rpcs;
  }
  ASSERT_GT(total.batches, 0u);
  // K=3 targets per batch once the leaf sets are warm.
  EXPECT_GE(total.rpcs, total.batches);
  // max <= sum always, strictly less once a batch has >= 2 targets.
  EXPECT_LE(total.overlapped.ns, total.sequential.ns);
  EXPECT_GT(total.rpcs, total.batches);  // at least one multi-target batch
  EXPECT_LT(total.overlapped.ns, total.sequential.ns);
  // Koshad's own counter sees the mirrors its mutations fanned out
  // (replication-internal pushes are not counted there).
  EXPECT_GT(daemon_rpcs, 0u);
  EXPECT_LE(daemon_rpcs, total.rpcs);
}

TEST(ConcurrencyDriver, SameSeedRunsAreIdentical) {
  const auto run = [](std::uint64_t seed) {
    KoshaCluster cluster(cluster_config(2, KoshaConfig::MirrorMode::kOverlapped, seed));
    sim::WorkloadConfig workload;
    workload.clients = 6;
    workload.files_per_client = 2;
    const auto result = sim::run_multi_client_workload(cluster, workload);
    return std::make_tuple(result.makespan.ns, result.busy.ns, result.ops, result.failures,
                           cluster.network().stats().messages,
                           cluster.loop().stats().executed);
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<5>(a), 0u);  // the event loop actually drove the run
  EXPECT_NE(std::get<0>(a), std::get<0>(run(8)));
}

TEST(ConcurrencyDriver, EventDrivenMatchesLegacySerialModelForOneClient)
{
  // With a single client there is never more than one RPC in flight, so
  // the event-driven schedule must be numerically identical to the legacy
  // call-and-advance model (ClusterConfig::event_driven = false).
  const auto run = [](bool event_driven) {
    ClusterConfig config = cluster_config(1, KoshaConfig::MirrorMode::kBackground);
    config.event_driven = event_driven;
    KoshaCluster cluster(config);
    sim::WorkloadConfig workload;
    workload.clients = 1;
    workload.files_per_client = 4;
    const auto result = sim::run_multi_client_workload(cluster, workload);
    EXPECT_EQ(result.failures, 0u);
    return std::make_pair(result.makespan.ns, cluster.network().stats().messages);
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace kosha

// Replication manager tests (paper §4.2-§4.4): replica establishment,
// mutation mirroring, delete propagation, promotion on failure, key-space
// migration on join, revival purge, and the MIGRATION_NOT_COMPLETE repair
// protocol (exercised with fault injection).

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/path.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "kosha/placement.hpp"

namespace kosha {
namespace {

/// CI re-runs this suite with KOSHA_TEST_BACKEND=cas to prove the whole
/// stack is backend-agnostic; default (unset/flat) runs are untouched.
void apply_test_backend(ClusterConfig* config) {
  fs::BackendKind backend = fs::BackendKind::kFlat;
  if (fs::parse_backend(env_or("KOSHA_TEST_BACKEND", "flat"), &backend)) {
    config->kosha.storage.backend = backend;
  }
}

ClusterConfig config_for(std::size_t nodes, unsigned replicas, std::uint64_t seed = 7) {
  ClusterConfig config;
  config.nodes = nodes;
  config.kosha.distribution_level = 1;
  config.kosha.replicas = replicas;
  config.node_capacity_bytes = 1ull << 30;
  config.seed = seed;
  apply_test_backend(&config);
  return config;
}

/// Host storing the primary copy of `path`, as seen by `client`.
net::HostId primary_host(KoshaCluster& cluster, net::HostId client, std::string_view path) {
  KoshaMount mount(&cluster.daemon(client));
  const auto vh = mount.resolve(path);
  EXPECT_TRUE(vh.ok());
  return cluster.daemon(client).handle_table().find(*vh)->real.server;
}

/// Count live replica copies of `stored_path` owned by `primary_id`.
int replica_copies(KoshaCluster& cluster, pastry::NodeId primary_id,
                   const std::string& stored_path) {
  int copies = 0;
  for (const net::HostId host : cluster.live_hosts()) {
    const auto& store = cluster.server(host).store();
    if (store.resolve(ReplicaManager::hidden_root(primary_id) + stored_path).ok()) ++copies;
  }
  return copies;
}

TEST(Replication, PrimaryKeepsKReplicas) {
  KoshaCluster cluster(config_for(8, 3));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/data").ok());
  ASSERT_TRUE(mount.write_file("/data/f", "replicated").ok());

  const net::HostId primary = primary_host(cluster, 0, "/data");
  const pastry::NodeId primary_id = cluster.node_id(primary);
  EXPECT_EQ(cluster.replicas(primary).targets().size(), 3u);
  const std::string stored = stored_path({"data", "f"}, 1, "data");
  EXPECT_EQ(replica_copies(cluster, primary_id, stored), 3);
}

TEST(Replication, MirroredWritesMatchPrimaryContent) {
  KoshaCluster cluster(config_for(6, 2));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/m").ok());
  ASSERT_TRUE(mount.write_file("/m/f", "version-1").ok());
  ASSERT_TRUE(mount.write_file("/m/f", "version-2-longer").ok());

  const net::HostId primary = primary_host(cluster, 0, "/m");
  const pastry::NodeId primary_id = cluster.node_id(primary);
  const std::string stored = stored_path({"m", "f"}, 1, "m");
  int verified = 0;
  for (const pastry::NodeId target : cluster.replicas(primary).targets()) {
    auto& store = cluster.server(cluster.overlay().host_of(target)).store();
    const auto inode = store.resolve(ReplicaManager::hidden_root(primary_id) + stored);
    ASSERT_TRUE(inode.ok());
    EXPECT_EQ(store.read(*inode, 0, 100).value(), "version-2-longer");
    ++verified;
  }
  EXPECT_EQ(verified, 2);
}

TEST(Replication, DeletePropagatesToReplicas) {
  KoshaCluster cluster(config_for(6, 2));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/del").ok());
  ASSERT_TRUE(mount.write_file("/del/f", "doomed").ok());
  const net::HostId primary = primary_host(cluster, 0, "/del");
  const pastry::NodeId primary_id = cluster.node_id(primary);
  const std::string stored = stored_path({"del", "f"}, 1, "del");
  ASSERT_EQ(replica_copies(cluster, primary_id, stored), 2);

  ASSERT_TRUE(mount.remove("/del/f").ok());
  EXPECT_EQ(replica_copies(cluster, primary_id, stored), 0);
}

TEST(Replication, RenameMirroredOnReplicas) {
  KoshaCluster cluster(config_for(6, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/rn").ok());
  ASSERT_TRUE(mount.write_file("/rn/old", "x").ok());
  ASSERT_TRUE(mount.rename("/rn/old", "/rn/new").ok());
  const net::HostId primary = primary_host(cluster, 0, "/rn");
  const pastry::NodeId primary_id = cluster.node_id(primary);
  EXPECT_EQ(replica_copies(cluster, primary_id, stored_path({"rn", "old"}, 1, "rn")), 0);
  EXPECT_EQ(replica_copies(cluster, primary_id, stored_path({"rn", "new"}, 1, "rn")), 1);
}

TEST(Replication, PromotionAfterPrimaryFailure) {
  KoshaCluster cluster(config_for(8, 2));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/ha").ok());
  ASSERT_TRUE(mount.write_file("/ha/f", "survives").ok());
  net::HostId primary = primary_host(cluster, 0, "/ha");
  if (primary == 0) {
    // Use a different client so we can kill the primary.
    primary = primary_host(cluster, 1, "/ha");
  }
  ASSERT_NE(primary, 0u);
  cluster.fail_node(primary);

  // Some live node must now be primary for the anchor, with live content.
  const net::HostId new_primary = primary_host(cluster, 0, "/ha");
  EXPECT_NE(new_primary, primary);
  EXPECT_TRUE(cluster.is_up(new_primary));
  EXPECT_EQ(mount.read_file("/ha/f").value(), "survives");
  // And the new primary re-established K replicas.
  EXPECT_EQ(cluster.replicas(new_primary).targets().size(), 2u);
}

TEST(Replication, SequentialFailuresUpToK) {
  KoshaCluster cluster(config_for(10, 2, 21));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/multi").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(mount.write_file("/multi/f" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  // Kill primaries twice in a row; K=2 with re-replication tolerates this.
  for (int round = 0; round < 2; ++round) {
    const net::HostId primary = primary_host(cluster, 0, "/multi");
    if (primary == 0) break;  // cannot kill the client host in this test
    cluster.fail_node(primary);
    for (int i = 0; i < 10; ++i) {
      const auto content = mount.read_file("/multi/f" + std::to_string(i));
      ASSERT_TRUE(content.ok()) << "round " << round << " file " << i;
      EXPECT_EQ(content.value(), "v" + std::to_string(i));
    }
  }
}

TEST(Replication, NoReplicasMeansDataLossOnFailure) {
  KoshaCluster cluster(config_for(6, 0));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/fragile").ok());
  ASSERT_TRUE(mount.write_file("/fragile/f", "gone").ok());
  const net::HostId primary = primary_host(cluster, 0, "/fragile");
  if (primary != 0) {
    cluster.fail_node(primary);
    EXPECT_FALSE(mount.read_file("/fragile/f").ok());
  }
}

TEST(Replication, JoinMigratesOwnershipAndDemotesOldCopy) {
  KoshaCluster cluster(config_for(3, 1, 5));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/mig").ok());
  ASSERT_TRUE(mount.write_file("/mig/f", "follows the key space").ok());

  // Add nodes until ownership of the anchor moves.
  const net::HostId before = primary_host(cluster, 0, "/mig");
  net::HostId after = before;
  for (int i = 0; i < 12 && after == before; ++i) {
    (void)cluster.add_node();
    after = cluster.overlay().host_of(
        cluster.overlay().ring().owner(key_for_name("mig")));
  }
  if (after != before) {
    // The daemon's next access transparently reaches the new primary.
    EXPECT_EQ(mount.read_file("/mig/f").value(), "follows the key space");
    EXPECT_EQ(primary_host(cluster, 0, "/mig"), after);
    EXPECT_EQ(cluster.replicas(after).primaries().count(stored_path({"mig"}, 1, "mig")), 1u);
    EXPECT_EQ(cluster.replicas(before).primaries().count(stored_path({"mig"}, 1, "mig")), 0u);
  }
}

TEST(Replication, RevivedNodeIsPurged) {
  KoshaCluster cluster(config_for(6, 1, 9));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/purge").ok());
  ASSERT_TRUE(mount.write_file("/purge/f", "x").ok());
  const net::HostId primary = primary_host(cluster, 0, "/purge");
  if (primary == 0) return;  // can't exercise without killing the client
  cluster.fail_node(primary);
  const std::uint64_t bytes_while_dead = cluster.server(primary).store().used_bytes();
  EXPECT_GT(bytes_while_dead, 0u);  // the dead disk still holds stale data
  cluster.revive_node(primary);
  // The revival purged everything; the node only holds what the overlay
  // has since migrated or replicated to it under its *new* identity.
  auto& store = cluster.server(primary).store();
  const auto root_entries = store.readdir(store.root());
  for (const auto& entry : root_entries.value()) {
    EXPECT_TRUE(entry.name == kAnchorArea || entry.name == kReplicaArea)
        << "unexpected leftover " << entry.name;
  }
  // The file remains readable (served by whichever node now owns the key).
  EXPECT_EQ(mount.read_file("/purge/f").value(), "x");
}

TEST(Replication, InterruptedMigrationLeavesFlagAndRecovers) {
  KoshaCluster cluster(config_for(8, 2, 31));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/flag").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(mount.write_file("/flag/f" + std::to_string(i), "data").ok());
  }
  const net::HostId primary = primary_host(cluster, 0, "/flag");
  if (primary == 0) return;
  const pastry::NodeId primary_id = cluster.node_id(primary);

  // Interrupt the next replica push midway: the flag must stay behind.
  int countdown = 3;
  cluster.runtime().migration_interrupt = [&]() { return --countdown < 0; };
  // Force a full re-push by flipping a replica target: fail a target node.
  const auto targets = cluster.replicas(primary).targets();
  ASSERT_FALSE(targets.empty());
  const net::HostId target_host = cluster.overlay().host_of(targets.front());
  if (target_host == 0 || target_host == primary) return;
  cluster.fail_node(target_host);
  cluster.runtime().migration_interrupt = nullptr;

  // At least one replica may now carry the MIGRATION_NOT_COMPLETE flag.
  int flagged = 0;
  for (const net::HostId host : cluster.live_hosts()) {
    const auto& store = cluster.server(host).store();
    if (store.resolve(path_child(ReplicaManager::hidden_root(primary_id), kMigrationFlag))
            .ok()) {
      ++flagged;
    }
  }
  // Now kill the primary: promotion must repair from a complete copy and
  // the data must remain readable despite the interrupted migration.
  cluster.fail_node(primary);
  for (int i = 0; i < 6; ++i) {
    const auto content = mount.read_file("/flag/f" + std::to_string(i));
    ASSERT_TRUE(content.ok()) << "file " << i << " (flagged replicas: " << flagged << ")";
    EXPECT_EQ(content.value(), "data");
  }
}

TEST(Replication, HiddenAreaInvisibleToClients) {
  KoshaCluster cluster(config_for(4, 2));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/vis").ok());
  ASSERT_TRUE(mount.write_file("/vis/f", "x").ok());
  const auto listing = mount.list("/");
  ASSERT_TRUE(listing.ok());
  for (const auto& entry : listing.value()) {
    EXPECT_NE(entry.name, kReplicaArea);
    EXPECT_NE(entry.name, kAnchorArea);
    EXPECT_NE(entry.name, kMigrationFlag);
  }
  EXPECT_FALSE(mount.exists("/.r"));
}

TEST(Replication, ReplicasCountAgainstCapacity) {
  ClusterConfig config = config_for(4, 3);
  config.node_capacity_bytes = 1 << 20;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/cap").ok());
  ASSERT_TRUE(mount.write_file("/cap/f", std::string(100 * 1024, 'x')).ok());
  std::uint64_t total = 0;
  for (const net::HostId host : cluster.live_hosts()) {
    total += cluster.server(host).store().used_bytes();
  }
  // Primary + 3 replicas of a 100 KiB file.
  EXPECT_GE(total, 4u * 100 * 1024);
}

}  // namespace
}  // namespace kosha

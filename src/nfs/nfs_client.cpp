#include "nfs/nfs_client.hpp"

#include <cassert>

#include "nfs/wire.hpp"

namespace kosha::nfs {

NfsClient::NfsClient(net::SimNetwork* network, const ServerDirectory* directory,
                     net::HostId self)
    : network_(network), directory_(directory), self_(self) {
  assert(network_ != nullptr && directory_ != nullptr);
}

NfsServer* NfsClient::begin_rpc(net::HostId server, std::size_t request_bytes) {
  NfsServer* s = directory_->find(server);
  if (s == nullptr || !network_->is_up(server)) {
    network_->charge_timeout();
    return nullptr;
  }
  network_->charge_message(self_, server, request_bytes);
  return s;
}

void NfsClient::end_rpc(net::HostId server, std::size_t reply_bytes) {
  network_->charge_message(server, self_, reply_bytes);
}

NfsResult<FileHandle> NfsClient::mount(net::HostId server) {
  NfsServer* s = begin_rpc(server, encode_mount_call(next_xid()).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  const FileHandle root = s->root_handle();
  end_rpc(server, kReplyBytes);
  return root;
}

NfsResult<HandleReply> NfsClient::lookup(FileHandle dir, std::string_view name) {
  NfsServer* s = begin_rpc(
      dir.server, encode_diropargs_call(next_xid(), NfsProc::kLookup, dir, name).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->lookup(dir, name);
  end_rpc(dir.server, kReplyBytes);
  return r;
}

NfsResult<fs::Attr> NfsClient::getattr(FileHandle obj) {
  NfsServer* s = begin_rpc(obj.server,
                           encode_handle_call(next_xid(), NfsProc::kGetattr, obj).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->getattr(obj);
  end_rpc(obj.server, kReplyBytes);
  return r;
}

NfsResult<fs::Attr> NfsClient::set_mode(FileHandle obj, std::uint32_t mode) {
  NfsServer* s = begin_rpc(
      obj.server, encode_setattr_call(next_xid(), obj, true, mode, false, 0).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->set_mode(obj, mode);
  end_rpc(obj.server, kReplyBytes);
  return r;
}

NfsResult<fs::Attr> NfsClient::truncate(FileHandle obj, std::uint64_t size) {
  NfsServer* s = begin_rpc(
      obj.server, encode_setattr_call(next_xid(), obj, false, 0, true, size).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->truncate(obj, size);
  end_rpc(obj.server, kReplyBytes);
  return r;
}

NfsResult<ReadReply> NfsClient::read(FileHandle file, std::uint64_t offset,
                                     std::uint32_t count) {
  NfsServer* s = begin_rpc(file.server,
                           encode_read_call(next_xid(), file, offset, count).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->read(file, offset, count);
  end_rpc(file.server, kReplyBytes + (r.ok() ? r.value().data.size() : 0));
  return r;
}

NfsResult<std::uint32_t> NfsClient::write(FileHandle file, std::uint64_t offset,
                                          std::string_view data) {
  NfsServer* s = begin_rpc(file.server,
                           encode_write_call(next_xid(), file, offset, data).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->write(file, offset, data);
  end_rpc(file.server, kReplyBytes);
  return r;
}

NfsResult<HandleReply> NfsClient::create(FileHandle dir, std::string_view name,
                                         std::uint32_t mode, std::uint32_t uid) {
  NfsServer* s = begin_rpc(
      dir.server,
      encode_create_call(next_xid(), NfsProc::kCreate, dir, name, mode, uid).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->create(dir, name, mode, uid);
  end_rpc(dir.server, kReplyBytes);
  return r;
}

NfsResult<HandleReply> NfsClient::mkdir(FileHandle dir, std::string_view name,
                                        std::uint32_t mode, std::uint32_t uid) {
  NfsServer* s = begin_rpc(
      dir.server,
      encode_create_call(next_xid(), NfsProc::kMkdir, dir, name, mode, uid).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->mkdir(dir, name, mode, uid);
  end_rpc(dir.server, kReplyBytes);
  return r;
}

NfsResult<HandleReply> NfsClient::symlink(FileHandle dir, std::string_view name,
                                          std::string_view target) {
  NfsServer* s = begin_rpc(dir.server,
                           encode_symlink_call(next_xid(), dir, name, target).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->symlink(dir, name, target);
  end_rpc(dir.server, kReplyBytes);
  return r;
}

NfsResult<std::string> NfsClient::readlink(FileHandle link) {
  NfsServer* s = begin_rpc(
      link.server, encode_handle_call(next_xid(), NfsProc::kReadlink, link).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->readlink(link);
  end_rpc(link.server, kReplyBytes + (r.ok() ? r.value().size() : 0));
  return r;
}

NfsResult<Unit> NfsClient::remove(FileHandle dir, std::string_view name) {
  NfsServer* s = begin_rpc(
      dir.server, encode_diropargs_call(next_xid(), NfsProc::kRemove, dir, name).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->remove(dir, name);
  end_rpc(dir.server, kReplyBytes);
  return r;
}

NfsResult<Unit> NfsClient::rmdir(FileHandle dir, std::string_view name) {
  NfsServer* s = begin_rpc(
      dir.server, encode_diropargs_call(next_xid(), NfsProc::kRmdir, dir, name).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->rmdir(dir, name);
  end_rpc(dir.server, kReplyBytes);
  return r;
}

NfsResult<Unit> NfsClient::rename(FileHandle from_dir, std::string_view from_name,
                                  FileHandle to_dir, std::string_view to_name) {
  if (from_dir.server != to_dir.server) return NfsStat::kInval;
  NfsServer* s = begin_rpc(
      from_dir.server,
      encode_rename_call(next_xid(), from_dir, from_name, to_dir, to_name).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->rename(from_dir, from_name, to_dir, to_name);
  end_rpc(from_dir.server, kReplyBytes);
  return r;
}

NfsResult<ReaddirReply> NfsClient::readdir(FileHandle dir) {
  NfsServer* s = begin_rpc(dir.server,
                           encode_handle_call(next_xid(), NfsProc::kReaddir, dir).size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->readdir(dir);
  end_rpc(dir.server, kReplyBytes + (r.ok() ? r.value().entries.size() * 40 : 0));
  return r;
}

NfsResult<FsstatReply> NfsClient::fsstat(net::HostId server) {
  NfsServer* s = begin_rpc(
      server, encode_handle_call(next_xid(), NfsProc::kFsstat, FileHandle{server, 1, 1})
                  .size());
  if (s == nullptr) return NfsStat::kUnreachable;
  auto r = s->fsstat();
  end_rpc(server, kReplyBytes);
  return r;
}

}  // namespace kosha::nfs

#pragma once

// The Pastry overlay: a set of message-passing nodes with prefix routing.
//
// This is the substrate Kosha runs on (paper §2.2, §4.3). Nodes join by
// routing a join message to the numerically closest existing node and
// copying state from the nodes along the path; failures trigger leaf-set
// repair at affected nodes and are detected lazily in routing tables.
// All inter-node traffic is charged on the simulated network.
//
// The overlay keeps a ground-truth Ring of live nodes for verification and
// for picking deterministic bootstrap nodes; the routing protocol itself
// never consults it.

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/sim_network.hpp"
#include "pastry/leaf_set.hpp"
#include "pastry/ring.hpp"
#include "pastry/routing_table.hpp"
#include "pastry/types.hpp"

namespace kosha::pastry {

class FailureDetector;

/// Result of routing a key: the owning node and the overlay hops taken.
struct RouteResult {
  NodeId owner;
  unsigned hops = 0;
};

/// Fired on a node when its leaf set membership changes (join or repair).
/// Kosha's replication manager reacts by re-establishing replicas.
using NeighborCallback = std::function<void()>;

/// Fired when `observer` confirms `dead` as failed and repairs its own
/// state (the decentralized path; the cluster uses it to time detection).
using FailureListener = std::function<void(NodeId observer, NodeId dead)>;

class PastryOverlay {
 public:
  PastryOverlay(PastryConfig config, net::SimNetwork* network);

  /// Join a new node with identifier `id` living on `host` (one overlay
  /// node per host). Performs the Pastry join protocol against a live
  /// bootstrap node, charging overlay traffic.
  void join(NodeId id, net::HostId host);

  /// Crash-fail a node with oracle-driven repair: live nodes holding it in
  /// their leaf sets repair immediately (charged); routing-table entries
  /// decay lazily. Equivalent to mark_dead() plus telling every affected
  /// survivor at once — the legacy path used when self-healing is off.
  void fail(NodeId id);

  /// Crash-fail a node *without* telling anyone: the node stops being
  /// live, but survivors keep it in their leaf sets until their failure
  /// detectors notice and call report_failure(). The oracle-free path.
  void mark_dead(NodeId id);

  /// `observer` confirmed `dead` as failed (via its failure detector):
  /// drop it from the observer's leaf set and routing table, repair the
  /// leaf set, and fire the observer's neighbor callback so replication
  /// reacts. Safe to call with stale verdicts (no-op when already gone).
  void report_failure(NodeId observer, NodeId dead);

  /// `observer` learned that `peer` — which it had declared dead — is in
  /// fact alive (false suspicion healed): fold it back into the observer's
  /// leaf set and routing table and fire the neighbor callback.
  void reintroduce(NodeId observer, NodeId peer);

  [[nodiscard]] bool is_live(NodeId id) const;
  [[nodiscard]] std::size_t live_count() const { return ring_.size(); }

  [[nodiscard]] net::HostId host_of(NodeId id) const;
  /// The live node on `host`, or kInvalid if none.
  [[nodiscard]] NodeId node_on_host(net::HostId host) const;
  [[nodiscard]] bool host_has_node(net::HostId host) const;

  /// Route `key` from the node on `from_host`; charges one message per hop.
  [[nodiscard]] RouteResult route(net::HostId from_host, Key key);

  /// Route without charging the network (diagnostics / analytics).
  [[nodiscard]] RouteResult trace_route(NodeId from, Key key) const;

  /// The K leaf-set neighbors of `node`, closest first — Kosha's replica
  /// targets.
  [[nodiscard]] std::vector<NodeId> replica_targets(NodeId node, std::size_t k) const;

  void set_neighbor_callback(NodeId id, NeighborCallback callback);

  /// Failure-detector registry: scheduled probe events resolve detectors
  /// through here at fire time, so events aimed at a dead or stopped node
  /// become no-ops instead of dangling. mark_dead()/fail() clear the slot.
  void set_detector(NodeId id, FailureDetector* detector);
  [[nodiscard]] FailureDetector* detector(NodeId id) const;

  /// Observe confirmed failure reports (detection-latency metrics).
  void set_failure_listener(FailureListener listener) { failure_listener_ = std::move(listener); }

  /// Ground truth over live nodes (tests, simulators, bootstrap choice).
  [[nodiscard]] const Ring& ring() const { return ring_; }

  [[nodiscard]] const LeafSet& leaf_set(NodeId id) const;
  [[nodiscard]] const RoutingTable& routing_table(NodeId id) const;
  [[nodiscard]] const PastryConfig& config() const { return config_; }

 private:
  struct Node {
    NodeId id;
    net::HostId host;
    bool alive = true;
    RoutingTable table;
    LeafSet leaves;
    NeighborCallback on_leaf_change;
    /// The node's heartbeat failure detector, when the cluster runs one
    /// (self-healing mode). Not owned; cleared on death.
    FailureDetector* detector = nullptr;

    Node(NodeId node_id, net::HostId h, const PastryConfig& cfg)
        : id(node_id), host(h), table(node_id, cfg), leaves(node_id, cfg.leaf_half()) {}
  };

  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  /// One routing step from `cur` toward `key`; nullopt when `cur` is the
  /// destination. Dead routing-table entries encountered are appended to
  /// `dead_rt` (if non-null) for the caller to prune.
  [[nodiscard]] std::optional<NodeId> compute_next_hop(const Node& cur, Key key,
                                                       std::vector<NodeId>* dead_rt) const;
  void repair_leaf_set(Node& n);
  void notify_leaf_change(Node& n);

  PastryConfig config_;
  net::SimNetwork* network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<Uint128, std::size_t> index_by_id_;
  std::unordered_map<net::HostId, std::size_t> index_by_host_;
  Ring ring_;
  FailureListener failure_listener_;
};

}  // namespace kosha::pastry

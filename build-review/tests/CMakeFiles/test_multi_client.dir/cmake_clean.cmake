file(REMOVE_RECURSE
  "CMakeFiles/test_multi_client.dir/test_multi_client.cpp.o"
  "CMakeFiles/test_multi_client.dir/test_multi_client.cpp.o.d"
  "test_multi_client"
  "test_multi_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#pragma once

// Capacity / redirection simulation (paper Figure 6).
//
// Replays the departmental trace against a heterogeneous cluster (the
// paper's 8x3GB + 4x4GB + 4x5GB setup), applying Kosha's salted
// redirection when a directory's node runs hot, and records the
// cumulative ratio of failed file insertions as total disk utilization
// grows (the PAST metric the paper adopts).

#include <cstdint>
#include <vector>

#include "trace/fs_trace.hpp"

namespace kosha::sim {

struct InsertionSimConfig {
  /// Per-node contributed capacities in bytes.
  std::vector<std::uint64_t> capacities;
  unsigned level = 4;
  unsigned replicas = 3;
  /// Maximum salted rehash attempts (0 = no redirection).
  unsigned redirects = 4;
  /// Utilization fraction above which a node refuses new directories.
  double redirect_threshold = 0.9;
  std::size_t runs = 10;
  std::uint64_t seed = 1;
  std::size_t threads = 0;

  /// The paper's 16-node heterogeneous cluster.
  [[nodiscard]] static std::vector<std::uint64_t> paper_capacities();
};

struct InsertionCurve {
  /// Cumulative failure ratio sampled on a 1%-utilization grid
  /// (index i = i percent utilization); NaN where never reached.
  std::vector<double> failure_ratio_at_pct;
  double final_utilization = 0;
  double final_failure_ratio = 0;
};

[[nodiscard]] InsertionCurve simulate_insertion(const trace::FsTrace& trace,
                                                const InsertionSimConfig& config);

}  // namespace kosha::sim

file(REMOVE_RECURSE
  "libkosha_core.a"
)

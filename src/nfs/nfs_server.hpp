#pragma once

// NFS server: exports one storage backend over opaque handles.
//
// Each Kosha node runs one of these on its /kosha_store partition (paper
// §4: "The nodes are assumed to run NFS servers, so that their contributed
// disk space can be accessed via NFS"). Server-side service times (CPU +
// disk) are charged on the shared virtual clock through a cost model so the
// Table 1/2 experiments measure stable, host-independent numbers.

#include <cstddef>
#include <deque>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "common/sim_clock.hpp"
#include "nfs/nfs_types.hpp"

namespace kosha {
class Counter;
class MetricsRegistry;
class Tracer;
}  // namespace kosha

namespace kosha::nfs {

/// Virtual-time cost of server-side RPC processing. Values approximate a
/// 2 GHz P4 with a 7200 RPM disk and an in-kernel NFS server; Tables 1-2
/// only depend on their ratios to the network costs.
struct NfsCostModel {
  /// Fixed per-RPC server CPU cost (decode, handle lookup, reply).
  SimDuration rpc_base = SimDuration::micros(60);
  /// Metadata mutation (create/mkdir/remove/rename/symlink/setattr).
  SimDuration metadata_op = SimDuration::micros(400);
  /// Attribute or directory read.
  SimDuration read_meta = SimDuration::micros(80);
  /// Data transfer cost per KiB moved from/to the store.
  SimDuration data_per_kib = SimDuration::micros(25);
};

/// Duplicate-request cache accounting (tests assert on these).
struct DrcStats {
  std::uint64_t hits = 0;    // retransmissions answered from the cache
  std::uint64_t stores = 0;  // replies recorded
};

class NfsServer {
 public:
  /// The store is built through make_backend(storage): which representation
  /// backs this node's partition is a per-cluster configuration choice.
  NfsServer(net::HostId host, fs::StorageConfig storage, NfsCostModel costs, SimClock* clock);

  [[nodiscard]] net::HostId host() const { return host_; }
  [[nodiscard]] fs::StorageBackend& store() { return *store_; }
  [[nodiscard]] const fs::StorageBackend& store() const { return *store_; }

  /// Handle of the exported root directory.
  [[nodiscard]] FileHandle root_handle() const;

  // --- RPC procedures (server-side; network costs are the client's) ---
  [[nodiscard]] NfsResult<HandleReply> lookup(FileHandle dir, std::string_view name);
  [[nodiscard]] NfsResult<fs::Attr> getattr(FileHandle obj);
  // SETATTR-class procedures are non-idempotent on the wire (NFSv3 treats
  // them so: guarded SETATTR races, size-changing truncates) and therefore
  // take the caller's RpcContext like the other mutators below.
  [[nodiscard]] NfsResult<fs::Attr> set_mode(FileHandle obj, std::uint32_t mode,
                                             RpcContext ctx = {});
  [[nodiscard]] NfsResult<fs::Attr> truncate(FileHandle obj, std::uint64_t size,
                                             RpcContext ctx = {});
  [[nodiscard]] NfsResult<ReadReply> read(FileHandle file, std::uint64_t offset,
                                          std::uint32_t count);
  [[nodiscard]] NfsResult<std::uint32_t> write(FileHandle file, std::uint64_t offset,
                                               std::string_view data);
  // Non-idempotent procedures take the caller's RpcContext: a valid
  // context engages the duplicate-request cache, so a retransmission of an
  // already-executed request returns the original reply instead of
  // re-executing (and spuriously failing with kExist/kNoEnt).
  [[nodiscard]] NfsResult<HandleReply> create(FileHandle dir, std::string_view name,
                                              std::uint32_t mode, std::uint32_t uid,
                                              std::uint32_t gid = 0, RpcContext ctx = {});
  [[nodiscard]] NfsResult<HandleReply> mkdir(FileHandle dir, std::string_view name,
                                             std::uint32_t mode, std::uint32_t uid,
                                             std::uint32_t gid = 0, RpcContext ctx = {});
  [[nodiscard]] NfsResult<HandleReply> symlink(FileHandle dir, std::string_view name,
                                               std::string_view target, RpcContext ctx = {});
  [[nodiscard]] NfsResult<std::string> readlink(FileHandle link);
  [[nodiscard]] NfsResult<Unit> remove(FileHandle dir, std::string_view name,
                                       RpcContext ctx = {});
  [[nodiscard]] NfsResult<Unit> rmdir(FileHandle dir, std::string_view name,
                                      RpcContext ctx = {});
  [[nodiscard]] NfsResult<Unit> rename(FileHandle from_dir, std::string_view from_name,
                                       FileHandle to_dir, std::string_view to_name,
                                       RpcContext ctx = {});
  [[nodiscard]] NfsResult<ReaddirReply> readdir(FileHandle dir);
  [[nodiscard]] NfsResult<FsstatReply> fsstat();

  [[nodiscard]] std::uint64_t rpc_count() const { return rpc_count_; }
  [[nodiscard]] const DrcStats& drc_stats() const { return drc_stats_; }
  /// Non-idempotent requests bounced with kOverloaded because their
  /// propagated deadline (RpcContext::deadline) had already passed on
  /// arrival. Always zero while overload control is disabled.
  [[nodiscard]] std::uint64_t deadline_rejects() const { return deadline_rejects_; }

  /// Attach the cluster's observability sinks (nullptr = off). Procedures
  /// then run under server-side spans — parented by the trace context the
  /// RPC carried — and the DRC feeds hit/miss/store counters.
  void set_observability(MetricsRegistry* metrics, Tracer* tracer);

  /// Forget all cached replies. The DRC is volatile server state: a crash
  /// loses it, so revival must not resurrect replies from the previous
  /// incarnation (their handles point into the purged store).
  void clear_drc();

 private:
  /// Which of a DrcEntry's result slots is meaningful — the cached
  /// procedure's reply shape. Checked on lookup so a (client, xid) collision
  /// across procedures never yields a reply of the wrong type.
  enum class ReplyShape { kHandle, kUnit, kAttr };

  /// One remembered reply; exactly one of the results is meaningful
  /// depending on the cached procedure's reply shape, and the entry only
  /// answers requests from the same client incarnation (`boot`).
  struct DrcEntry {
    NfsResult<HandleReply> handle_reply{NfsStat::kInval};
    NfsResult<Unit> unit_reply{NfsStat::kInval};
    NfsResult<fs::Attr> attr_reply{NfsStat::kInval};
    ReplyShape shape = ReplyShape::kUnit;
    std::uint64_t boot = 0;
  };

  /// Replies remembered per (client, xid); FIFO-bounded like a real
  /// server's fixed-size DRC. Boot verifier and reply shape are checked on
  /// lookup, so a key match alone never yields a foreign reply.
  static constexpr std::size_t kDrcCapacity = 512;

  [[nodiscard]] static std::uint64_t drc_key(RpcContext ctx) {
    return (static_cast<std::uint64_t>(ctx.client) << 32) | ctx.xid;
  }
  [[nodiscard]] const DrcEntry* drc_find(RpcContext ctx, ReplyShape want);
  void drc_store(RpcContext ctx, DrcEntry entry);
  /// True iff the request's propagated op deadline has already passed —
  /// the client gave up, so executing (or even caching a reply) is dead
  /// work. Non-idempotent handlers MUST call this before their drc_store
  /// (lint rule P3): rejecting after the store would poison the DRC with
  /// a kOverloaded reply that a later retransmission of the same xid
  /// would then be served instead of executing.
  [[nodiscard]] bool reject_expired(RpcContext ctx);
  [[nodiscard]] NfsResult<fs::InodeId> resolve(FileHandle handle) const;
  [[nodiscard]] FileHandle handle_for(fs::InodeId inode) const;
  void charge(SimDuration cost);
  void charge_data(std::size_t bytes);

  net::HostId host_;
  std::unique_ptr<fs::StorageBackend> store_;
  NfsCostModel costs_;
  SimClock* clock_;
  std::uint64_t rpc_count_ = 0;
  std::uint64_t deadline_rejects_ = 0;
  std::unordered_map<std::uint64_t, DrcEntry> drc_;
  std::deque<std::uint64_t> drc_order_;
  DrcStats drc_stats_;
  Tracer* tracer_ = nullptr;
  Counter* drc_hit_ = nullptr;
  Counter* drc_miss_ = nullptr;
  Counter* drc_store_ = nullptr;
};

}  // namespace kosha::nfs

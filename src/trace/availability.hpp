#pragma once

// Synthetic machine-availability trace (paper §6.3).
//
// The paper replays a 35-day (840-hour) hourly up/down trace of desktop
// machines in a large corporation [Bolosky et al., SIGMETRICS'00],
// whose defining features are a low steady-state down fraction and a mass
// correlated failure at hour 615 (4890 simultaneous failures, which made
// >12% of files unavailable without replication). We synthesise a trace
// with those features: per-machine failure/recovery processes plus a
// configurable spike.

#include <cstdint>
#include <vector>

namespace kosha::trace {

struct AvailabilityTrace {
  std::size_t machines = 0;
  std::size_t hours = 0;
  /// up[h][m] — machine m's status during hour h.
  std::vector<std::vector<bool>> up;

  /// Number of machines down during hour h.
  [[nodiscard]] std::size_t down_count(std::size_t hour) const;
  /// Fraction of machine-hours spent up.
  [[nodiscard]] double mean_availability() const;
};

struct AvailabilityConfig {
  std::uint64_t seed = 1;
  std::size_t machines = 2000;
  std::size_t hours = 840;  // paper: 35 days
  /// P(up machine fails during an hour). With the recovery rate below the
  /// steady-state down fraction is ~1.3%.
  double hourly_failure_prob = 0.004;
  /// P(down machine comes back during an hour).
  double hourly_recovery_prob = 0.30;
  /// Mass correlated failure (paper: hour 615).
  std::size_t spike_hour = 615;
  double spike_fraction = 0.12;
  std::size_t spike_duration_hours = 2;
};

[[nodiscard]] AvailabilityTrace generate_availability_trace(const AvailabilityConfig& config);

}  // namespace kosha::trace

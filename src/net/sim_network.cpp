#include "net/sim_network.hpp"

#include <cassert>

namespace kosha::net {

SimNetwork::SimNetwork(NetworkConfig config, SimClock* clock)
    : config_(config), clock_(clock) {
  assert(clock_ != nullptr);
}

HostId SimNetwork::add_host() {
  up_.push_back(true);
  return static_cast<HostId>(up_.size() - 1);
}

void SimNetwork::charge_message(HostId src, HostId dst, std::size_t payload_bytes) {
  ++stats_.messages;
  stats_.bytes += payload_bytes;
  const SimDuration latency = (src == dst) ? config_.local_latency : config_.hop_latency;
  clock_->advance(latency + SimDuration::nanos(config_.per_byte.ns *
                                               static_cast<std::int64_t>(payload_bytes)));
}

void SimNetwork::charge_rtt(HostId src, HostId dst, std::size_t payload_bytes) {
  charge_message(src, dst, payload_bytes);
  charge_message(dst, src, 0);
}

bool SimNetwork::try_message(HostId src, HostId dst, std::size_t payload_bytes) {
  if (fault_plan_ != nullptr) {
    switch (fault_plan_->judge(src, dst, clock_->now())) {
      case FaultPlan::Delivery::kDeliver:
        break;
      case FaultPlan::Delivery::kDrop:
      case FaultPlan::Delivery::kBrownout:
        ++stats_.drops;
        return false;
      case FaultPlan::Delivery::kPartitioned:
        ++stats_.partitioned;
        return false;
    }
    charge_message(src, dst, payload_bytes);
    if (src != dst) clock_->advance(fault_plan_->draw_spike());
    return true;
  }
  charge_message(src, dst, payload_bytes);
  return true;
}

void SimNetwork::charge_overlay_hop(HostId src, HostId dst) {
  if (src != dst) ++stats_.overlay_hops;
  charge_message(src, dst, 0);
}

void SimNetwork::charge_timeout() {
  ++stats_.timeouts;
  clock_->advance(config_.rpc_timeout);
}

}  // namespace kosha::net

#pragma once

// Kosha system-wide configuration (paper §3-§4).

#include <cstdint>

#include "common/sim_clock.hpp"
#include "pastry/types.hpp"

namespace kosha {

struct KoshaConfig {
  /// Fixed cost of interposing one NFS RPC in koshad (four extra
  /// user/kernel crossings through the user-level loopback server, plus
  /// virtual-handle bookkeeping). This is the constant term I in the
  /// paper's overhead model D = I + H*hc*(N-1)/N (§6.1.2).
  SimDuration interposition_cost = SimDuration::micros(510);

  /// How many levels of subdirectories under /kosha are distributed to
  /// their own nodes (paper §3.2). Level 1 distributes only the direct
  /// children of the mount point.
  unsigned distribution_level = 1;

  /// K: number of additional replicas the primary maintains on its K
  /// closest leaf-set neighbors (paper §4.2). 0 = primary copy only.
  unsigned replicas = 1;

  /// Maximum salted-rehash attempts when the selected node is over the
  /// utilization threshold (paper §3.3, PAST-style iterative redirection).
  unsigned max_redirects = 4;

  /// Disk utilization fraction above which new directories are redirected.
  double redirect_threshold = 0.95;

  /// Serve reads round-robin from the primary and its replicas. The paper
  /// leaves this as future work ("we currently are exploring optimization
  /// techniques that allow at least read operations to be served from any
  /// one of the K replicas", §4.2); off by default to match the evaluated
  /// system. See bench/ablation_read_replicas.
  bool read_from_replicas = false;

  pastry::PastryConfig pastry;
};

}  // namespace kosha

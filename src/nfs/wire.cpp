#include "nfs/wire.hpp"

namespace kosha::nfs {

namespace {
constexpr std::uint32_t kRpcCall = 0;
constexpr std::uint32_t kNfsProgram = 100003;
constexpr std::uint32_t kNfsVersion = 3;
constexpr std::uint32_t kAuthNull = 0;
}  // namespace

void encode_handle(XdrWriter& writer, const FileHandle& handle) {
  // NFSv3 handles are variable-length opaques; ours serialize to 20 bytes.
  XdrWriter inner;
  inner.put_u32(handle.server);
  inner.put_u64(handle.inode);
  inner.put_u64(handle.generation);
  writer.put_opaque(inner.data());
}

Result<FileHandle, XdrError> decode_handle(XdrReader& reader) {
  const auto opaque = reader.get_opaque(64);
  if (!opaque.ok()) return opaque.error();
  XdrReader inner(*opaque);
  const auto server = inner.get_u32();
  if (!server.ok()) return server.error();
  const auto inode = inner.get_u64();
  if (!inode.ok()) return inode.error();
  const auto generation = inner.get_u64();
  if (!generation.ok()) return generation.error();
  return FileHandle{*server, *inode, *generation};
}

void encode_call_header(XdrWriter& writer, std::uint32_t xid, NfsProc proc) {
  writer.put_u32(xid);
  writer.put_u32(kRpcCall);
  writer.put_u32(2);  // RPC version
  writer.put_u32(kNfsProgram);
  writer.put_u32(kNfsVersion);
  writer.put_u32(static_cast<std::uint32_t>(proc));
  // AUTH_NULL credential and verifier (flavor + zero-length body).
  writer.put_u32(kAuthNull);
  writer.put_u32(0);
  writer.put_u32(kAuthNull);
  writer.put_u32(0);
}

Result<NfsProc, XdrError> decode_call_header(XdrReader& reader, std::uint32_t* xid) {
  const auto got_xid = reader.get_u32();
  if (!got_xid.ok()) return got_xid.error();
  if (xid != nullptr) *xid = *got_xid;
  // Skip message type, RPC version, program, program version.
  for (int i = 0; i < 4; ++i) {
    if (const auto skip = reader.get_u32(); !skip.ok()) return skip.error();
  }
  const auto proc = reader.get_u32();
  if (!proc.ok()) return proc.error();
  for (int i = 0; i < 4; ++i) {
    if (const auto skip = reader.get_u32(); !skip.ok()) return skip.error();
  }
  return static_cast<NfsProc>(*proc);
}

std::string encode_mount_call(std::uint32_t xid) {
  XdrWriter writer;
  encode_call_header(writer, xid, NfsProc::kMount);
  writer.put_string("/kosha_store");
  return writer.data();
}

std::string encode_handle_call(std::uint32_t xid, NfsProc proc, const FileHandle& handle) {
  XdrWriter writer;
  encode_call_header(writer, xid, proc);
  encode_handle(writer, handle);
  return writer.data();
}

std::string encode_diropargs_call(std::uint32_t xid, NfsProc proc, const FileHandle& dir,
                                  std::string_view name) {
  XdrWriter writer;
  encode_call_header(writer, xid, proc);
  encode_handle(writer, dir);
  writer.put_string(name);
  return writer.data();
}

std::string encode_create_call(std::uint32_t xid, NfsProc proc, const FileHandle& dir,
                               std::string_view name, std::uint32_t mode, std::uint32_t uid) {
  XdrWriter writer;
  encode_call_header(writer, xid, proc);
  encode_handle(writer, dir);
  writer.put_string(name);
  writer.put_u32(mode);
  writer.put_u32(uid);
  return writer.data();
}

std::string encode_symlink_call(std::uint32_t xid, const FileHandle& dir,
                                std::string_view name, std::string_view target) {
  XdrWriter writer;
  encode_call_header(writer, xid, NfsProc::kSymlink);
  encode_handle(writer, dir);
  writer.put_string(name);
  writer.put_string(target);
  return writer.data();
}

std::string encode_read_call(std::uint32_t xid, const FileHandle& file, std::uint64_t offset,
                             std::uint32_t count) {
  XdrWriter writer;
  encode_call_header(writer, xid, NfsProc::kRead);
  encode_handle(writer, file);
  writer.put_u64(offset);
  writer.put_u32(count);
  return writer.data();
}

std::string encode_write_call(std::uint32_t xid, const FileHandle& file, std::uint64_t offset,
                              std::string_view data) {
  XdrWriter writer;
  encode_call_header(writer, xid, NfsProc::kWrite);
  encode_handle(writer, file);
  writer.put_u64(offset);
  writer.put_u32(static_cast<std::uint32_t>(data.size()));
  writer.put_opaque(data);
  return writer.data();
}

std::string encode_setattr_call(std::uint32_t xid, const FileHandle& obj, bool set_mode,
                                std::uint32_t mode, bool set_size, std::uint64_t size) {
  XdrWriter writer;
  encode_call_header(writer, xid, NfsProc::kSetattr);
  encode_handle(writer, obj);
  writer.put_bool(set_mode);
  if (set_mode) writer.put_u32(mode);
  writer.put_bool(set_size);
  if (set_size) writer.put_u64(size);
  return writer.data();
}

std::string encode_rename_call(std::uint32_t xid, const FileHandle& from_dir,
                               std::string_view from_name, const FileHandle& to_dir,
                               std::string_view to_name) {
  XdrWriter writer;
  encode_call_header(writer, xid, NfsProc::kRename);
  encode_handle(writer, from_dir);
  writer.put_string(from_name);
  encode_handle(writer, to_dir);
  writer.put_string(to_name);
  return writer.data();
}

Result<DiropArgs, XdrError> decode_diropargs(XdrReader& reader) {
  const auto dir = decode_handle(reader);
  if (!dir.ok()) return dir.error();
  auto name = reader.get_string();
  if (!name.ok()) return name.error();
  return DiropArgs{*dir, std::move(*name)};
}

Result<CreateArgs, XdrError> decode_create_args(XdrReader& reader) {
  const auto dir = decode_handle(reader);
  if (!dir.ok()) return dir.error();
  auto name = reader.get_string();
  if (!name.ok()) return name.error();
  const auto mode = reader.get_u32();
  if (!mode.ok()) return mode.error();
  const auto uid = reader.get_u32();
  if (!uid.ok()) return uid.error();
  return CreateArgs{*dir, std::move(*name), *mode, *uid};
}

Result<SymlinkArgs, XdrError> decode_symlink_args(XdrReader& reader) {
  const auto dir = decode_handle(reader);
  if (!dir.ok()) return dir.error();
  auto name = reader.get_string();
  if (!name.ok()) return name.error();
  auto target = reader.get_string();
  if (!target.ok()) return target.error();
  return SymlinkArgs{*dir, std::move(*name), std::move(*target)};
}

Result<ReadArgs, XdrError> decode_read_args(XdrReader& reader) {
  const auto file = decode_handle(reader);
  if (!file.ok()) return file.error();
  const auto offset = reader.get_u64();
  if (!offset.ok()) return offset.error();
  const auto count = reader.get_u32();
  if (!count.ok()) return count.error();
  return ReadArgs{*file, *offset, *count};
}

Result<WriteArgs, XdrError> decode_write_args(XdrReader& reader) {
  const auto file = decode_handle(reader);
  if (!file.ok()) return file.error();
  const auto offset = reader.get_u64();
  if (!offset.ok()) return offset.error();
  const auto count = reader.get_u32();
  if (!count.ok()) return count.error();
  auto data = reader.get_opaque();
  if (!data.ok()) return data.error();
  if (data->size() != *count) return XdrError::kTruncated;
  return WriteArgs{*file, *offset, std::move(*data)};
}

Result<SetattrArgs, XdrError> decode_setattr_args(XdrReader& reader) {
  SetattrArgs args;
  const auto obj = decode_handle(reader);
  if (!obj.ok()) return obj.error();
  args.obj = *obj;
  const auto set_mode = reader.get_bool();
  if (!set_mode.ok()) return set_mode.error();
  args.set_mode = *set_mode;
  if (args.set_mode) {
    const auto mode = reader.get_u32();
    if (!mode.ok()) return mode.error();
    args.mode = *mode;
  }
  const auto set_size = reader.get_bool();
  if (!set_size.ok()) return set_size.error();
  args.set_size = *set_size;
  if (args.set_size) {
    const auto size = reader.get_u64();
    if (!size.ok()) return size.error();
    args.size = *size;
  }
  return args;
}

Result<RenameArgs, XdrError> decode_rename_args(XdrReader& reader) {
  const auto from_dir = decode_handle(reader);
  if (!from_dir.ok()) return from_dir.error();
  auto from_name = reader.get_string();
  if (!from_name.ok()) return from_name.error();
  const auto to_dir = decode_handle(reader);
  if (!to_dir.ok()) return to_dir.error();
  auto to_name = reader.get_string();
  if (!to_name.ok()) return to_name.error();
  return RenameArgs{*from_dir, std::move(*from_name), *to_dir, std::move(*to_name)};
}

const char* proc_name(NfsProc proc) {
  switch (proc) {
    case NfsProc::kNull:
      return "NULL";
    case NfsProc::kGetattr:
      return "GETATTR";
    case NfsProc::kSetattr:
      return "SETATTR";
    case NfsProc::kLookup:
      return "LOOKUP";
    case NfsProc::kReadlink:
      return "READLINK";
    case NfsProc::kRead:
      return "READ";
    case NfsProc::kWrite:
      return "WRITE";
    case NfsProc::kCreate:
      return "CREATE";
    case NfsProc::kMkdir:
      return "MKDIR";
    case NfsProc::kSymlink:
      return "SYMLINK";
    case NfsProc::kRemove:
      return "REMOVE";
    case NfsProc::kRmdir:
      return "RMDIR";
    case NfsProc::kRename:
      return "RENAME";
    case NfsProc::kReaddir:
      return "READDIR";
    case NfsProc::kFsstat:
      return "FSSTAT";
    case NfsProc::kMount:
      return "MOUNT";
  }
  return "?";
}

const char* rpc_span_name(NfsProc proc) {
  switch (proc) {
    case NfsProc::kNull:
      return "nfs.NULL";
    case NfsProc::kGetattr:
      return "nfs.GETATTR";
    case NfsProc::kSetattr:
      return "nfs.SETATTR";
    case NfsProc::kLookup:
      return "nfs.LOOKUP";
    case NfsProc::kReadlink:
      return "nfs.READLINK";
    case NfsProc::kRead:
      return "nfs.READ";
    case NfsProc::kWrite:
      return "nfs.WRITE";
    case NfsProc::kCreate:
      return "nfs.CREATE";
    case NfsProc::kMkdir:
      return "nfs.MKDIR";
    case NfsProc::kSymlink:
      return "nfs.SYMLINK";
    case NfsProc::kRemove:
      return "nfs.REMOVE";
    case NfsProc::kRmdir:
      return "nfs.RMDIR";
    case NfsProc::kRename:
      return "nfs.RENAME";
    case NfsProc::kReaddir:
      return "nfs.READDIR";
    case NfsProc::kFsstat:
      return "nfs.FSSTAT";
    case NfsProc::kMount:
      return "nfs.MOUNT";
  }
  return "nfs.?";
}

}  // namespace kosha::nfs


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pastry/leaf_set.cpp" "src/pastry/CMakeFiles/kosha_pastry.dir/leaf_set.cpp.o" "gcc" "src/pastry/CMakeFiles/kosha_pastry.dir/leaf_set.cpp.o.d"
  "/root/repo/src/pastry/overlay.cpp" "src/pastry/CMakeFiles/kosha_pastry.dir/overlay.cpp.o" "gcc" "src/pastry/CMakeFiles/kosha_pastry.dir/overlay.cpp.o.d"
  "/root/repo/src/pastry/ring.cpp" "src/pastry/CMakeFiles/kosha_pastry.dir/ring.cpp.o" "gcc" "src/pastry/CMakeFiles/kosha_pastry.dir/ring.cpp.o.d"
  "/root/repo/src/pastry/routing_table.cpp" "src/pastry/CMakeFiles/kosha_pastry.dir/routing_table.cpp.o" "gcc" "src/pastry/CMakeFiles/kosha_pastry.dir/routing_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/kosha_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/kosha_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kosha/audit.cpp" "src/kosha/CMakeFiles/kosha_core.dir/audit.cpp.o" "gcc" "src/kosha/CMakeFiles/kosha_core.dir/audit.cpp.o.d"
  "/root/repo/src/kosha/cluster.cpp" "src/kosha/CMakeFiles/kosha_core.dir/cluster.cpp.o" "gcc" "src/kosha/CMakeFiles/kosha_core.dir/cluster.cpp.o.d"
  "/root/repo/src/kosha/koshad.cpp" "src/kosha/CMakeFiles/kosha_core.dir/koshad.cpp.o" "gcc" "src/kosha/CMakeFiles/kosha_core.dir/koshad.cpp.o.d"
  "/root/repo/src/kosha/koshad_failover.cpp" "src/kosha/CMakeFiles/kosha_core.dir/koshad_failover.cpp.o" "gcc" "src/kosha/CMakeFiles/kosha_core.dir/koshad_failover.cpp.o.d"
  "/root/repo/src/kosha/koshad_resolve.cpp" "src/kosha/CMakeFiles/kosha_core.dir/koshad_resolve.cpp.o" "gcc" "src/kosha/CMakeFiles/kosha_core.dir/koshad_resolve.cpp.o.d"
  "/root/repo/src/kosha/mount.cpp" "src/kosha/CMakeFiles/kosha_core.dir/mount.cpp.o" "gcc" "src/kosha/CMakeFiles/kosha_core.dir/mount.cpp.o.d"
  "/root/repo/src/kosha/placement.cpp" "src/kosha/CMakeFiles/kosha_core.dir/placement.cpp.o" "gcc" "src/kosha/CMakeFiles/kosha_core.dir/placement.cpp.o.d"
  "/root/repo/src/kosha/posix.cpp" "src/kosha/CMakeFiles/kosha_core.dir/posix.cpp.o" "gcc" "src/kosha/CMakeFiles/kosha_core.dir/posix.cpp.o.d"
  "/root/repo/src/kosha/replication.cpp" "src/kosha/CMakeFiles/kosha_core.dir/replication.cpp.o" "gcc" "src/kosha/CMakeFiles/kosha_core.dir/replication.cpp.o.d"
  "/root/repo/src/kosha/virtual_handles.cpp" "src/kosha/CMakeFiles/kosha_core.dir/virtual_handles.cpp.o" "gcc" "src/kosha/CMakeFiles/kosha_core.dir/virtual_handles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/kosha_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/kosha_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fs/CMakeFiles/kosha_fs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nfs/CMakeFiles/kosha_nfs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pastry/CMakeFiles/kosha_pastry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// POSIX file-descriptor adapter tests.

#include <gtest/gtest.h>

#include "kosha/cluster.hpp"
#include "kosha/posix.hpp"

namespace kosha {
namespace {

struct Fixture {
  KoshaCluster cluster;
  KoshaMount mount;
  PosixAdapter posix;

  Fixture()
      : cluster([] {
          ClusterConfig config;
          config.nodes = 6;
          config.kosha.distribution_level = 1;
          config.kosha.replicas = 1;
          config.seed = 29;
          return config;
        }()),
        mount(&cluster.daemon(0)),
        posix(&mount) {}
};

TEST(Posix, OpenCreateWriteReadClose) {
  Fixture fx;
  ASSERT_TRUE(fx.posix.mkdir("/dir"));
  const Fd fd = fx.posix.open("/dir/file", kRdWr | kCreate);
  ASSERT_TRUE(fd.valid());
  EXPECT_EQ(fx.posix.write(fd, "hello "), 6);
  EXPECT_EQ(fx.posix.write(fd, "world"), 5);
  EXPECT_EQ(fx.posix.lseek(fd, 0, Whence::kSet), 0);
  char buffer[64];
  const auto n = fx.posix.read(fd, buffer, sizeof(buffer));
  ASSERT_EQ(n, 11);
  EXPECT_EQ(std::string(buffer, 11), "hello world");
  EXPECT_EQ(fx.posix.read(fd, buffer, sizeof(buffer)), 0);  // EOF
  EXPECT_TRUE(fx.posix.close(fd));
  EXPECT_FALSE(fx.posix.close(fd));  // double close
}

TEST(Posix, OpenMissingWithoutCreateFails) {
  Fixture fx;
  const Fd fd = fx.posix.open("/nope", kRdOnly);
  EXPECT_FALSE(fd.valid());
  EXPECT_EQ(fx.posix.last_error(), nfs::NfsStat::kNoEnt);
}

TEST(Posix, OpenDirectoryFails) {
  Fixture fx;
  ASSERT_TRUE(fx.posix.mkdir("/d"));
  EXPECT_FALSE(fx.posix.open("/d", kRdOnly).valid());
  EXPECT_EQ(fx.posix.last_error(), nfs::NfsStat::kIsDir);
}

TEST(Posix, TruncateOnOpen) {
  Fixture fx;
  {
    const Fd fd = fx.posix.open("/f", kWrOnly | kCreate);
    ASSERT_TRUE(fd.valid());
    EXPECT_EQ(fx.posix.write(fd, "long original content"), 21);
    EXPECT_TRUE(fx.posix.close(fd));
  }
  const Fd fd = fx.posix.open("/f", kWrOnly | kTrunc);
  ASSERT_TRUE(fd.valid());
  const auto attr = fx.posix.fstat(fd);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 0u);
}

TEST(Posix, AppendMode) {
  Fixture fx;
  const Fd writer = fx.posix.open("/log", kWrOnly | kCreate);
  EXPECT_EQ(fx.posix.write(writer, "line1\n"), 6);
  const Fd appender = fx.posix.open("/log", kWrOnly | kAppend);
  EXPECT_EQ(fx.posix.write(appender, "line2\n"), 6);
  const Fd reader = fx.posix.open("/log", kRdOnly);
  char buffer[64];
  const auto n = fx.posix.read(reader, buffer, sizeof(buffer));
  EXPECT_EQ(std::string(buffer, static_cast<std::size_t>(n)), "line1\nline2\n");
}

TEST(Posix, ModeEnforcement) {
  Fixture fx;
  const Fd read_only = fx.posix.open("/m", kRdOnly | kCreate);
  ASSERT_TRUE(read_only.valid());
  EXPECT_EQ(fx.posix.write(read_only, "x"), -1);
  EXPECT_EQ(fx.posix.last_error(), nfs::NfsStat::kInval);
  const Fd write_only = fx.posix.open("/m", kWrOnly);
  char buffer[8];
  EXPECT_EQ(fx.posix.read(write_only, buffer, 8), -1);
}

TEST(Posix, LseekVariants) {
  Fixture fx;
  const Fd fd = fx.posix.open("/s", kRdWr | kCreate);
  EXPECT_EQ(fx.posix.write(fd, "0123456789"), 10);
  EXPECT_EQ(fx.posix.lseek(fd, -4, Whence::kEnd), 6);
  char buffer[8];
  EXPECT_EQ(fx.posix.read(fd, buffer, 8), 4);
  EXPECT_EQ(std::string(buffer, 4), "6789");
  EXPECT_EQ(fx.posix.lseek(fd, -2, Whence::kCur), 8);
  EXPECT_EQ(fx.posix.lseek(fd, -100, Whence::kSet), -1);
}

TEST(Posix, IndependentOffsetsPerDescriptor) {
  Fixture fx;
  const Fd a = fx.posix.open("/two", kRdWr | kCreate);
  EXPECT_EQ(fx.posix.write(a, "abcdef"), 6);
  const Fd b = fx.posix.open("/two", kRdOnly);
  char buffer[4];
  EXPECT_EQ(fx.posix.read(b, buffer, 3), 3);
  EXPECT_EQ(std::string(buffer, 3), "abc");
  // Descriptor a's offset is unaffected by b's reads.
  EXPECT_EQ(fx.posix.lseek(a, 0, Whence::kCur), 6);
}

TEST(Posix, SparseWriteViaSeek) {
  Fixture fx;
  const Fd fd = fx.posix.open("/sparse", kRdWr | kCreate);
  EXPECT_EQ(fx.posix.lseek(fd, 100, Whence::kSet), 100);
  EXPECT_EQ(fx.posix.write(fd, "tail"), 4);
  const auto attr = fx.posix.fstat(fd);
  EXPECT_EQ(attr->size, 104u);
}

TEST(Posix, UnlinkRenameRmdir) {
  Fixture fx;
  ASSERT_TRUE(fx.posix.mkdir("/ops"));
  const Fd fd = fx.posix.open("/ops/a", kWrOnly | kCreate);
  (void)fx.posix.write(fd, "z");
  (void)fx.posix.close(fd);
  EXPECT_TRUE(fx.posix.rename("/ops/a", "/ops/b"));
  EXPECT_FALSE(fx.posix.open("/ops/a", kRdOnly).valid());
  EXPECT_TRUE(fx.posix.unlink("/ops/b"));
  EXPECT_TRUE(fx.posix.rmdir("/ops"));
  EXPECT_FALSE(fx.posix.rmdir("/ops"));
}

TEST(Posix, DescriptorSurvivesNodeFailure) {
  Fixture fx;
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 2;
  config.seed = 33;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  PosixAdapter posix(&mount);
  ASSERT_TRUE(posix.mkdir("/ha"));
  const Fd fd = posix.open("/ha/f", kRdWr | kCreate);
  EXPECT_EQ(posix.write(fd, "persistent"), 10);

  // Kill the storage node under the open descriptor.
  const auto vh = mount.resolve("/ha/f");
  const net::HostId primary = cluster.daemon(0).handle_table().find(*vh)->real.server;
  if (primary != 0) {
    cluster.fail_node(primary);
    EXPECT_EQ(posix.lseek(fd, 0, Whence::kSet), 0);
    char buffer[16];
    const auto n = posix.read(fd, buffer, sizeof(buffer));
    ASSERT_EQ(n, 10);
    EXPECT_EQ(std::string(buffer, 10), "persistent");
  }
}

TEST(Posix, BadDescriptorOps) {
  Fixture fx;
  const Fd bogus{999};
  char buffer[4];
  EXPECT_EQ(fx.posix.read(bogus, buffer, 4), -1);
  EXPECT_EQ(fx.posix.write(bogus, "x"), -1);
  EXPECT_EQ(fx.posix.lseek(bogus, 0, Whence::kSet), -1);
  EXPECT_FALSE(fx.posix.ftruncate(bogus, 0));
  EXPECT_FALSE(fx.posix.fstat(bogus).ok());
}

}  // namespace
}  // namespace kosha

# Empty compiler generated dependencies file for test_duplicate_request_cache.
# This may be replaced when dependencies are built.

#pragma once

// Path utilities for the virtual /kosha namespace.
//
// Paths are absolute, '/'-separated, and normalised (no '.', '..', or empty
// components). The root is "/". Kosha's placement logic operates on the
// component list; see kosha/placement.hpp.

#include <string>
#include <string_view>
#include <vector>

namespace kosha {

/// Split an absolute path into components ("/a/b/c" -> {"a","b","c"}).
/// Repeated separators are collapsed; "/" yields an empty vector.
[[nodiscard]] std::vector<std::string> split_path(std::string_view path);

/// Join components into an absolute path ({} -> "/", {"a","b"} -> "/a/b").
[[nodiscard]] std::string join_path(const std::vector<std::string>& components);

/// Append one component to an absolute path.
[[nodiscard]] std::string path_child(std::string_view parent, std::string_view name);

/// Parent directory of an absolute path ("/a/b" -> "/a", "/a" -> "/").
[[nodiscard]] std::string path_parent(std::string_view path);

/// Final component ("/a/b" -> "b", "/" -> "").
[[nodiscard]] std::string path_basename(std::string_view path);

/// Normalise: absolute, collapse separators, resolve "." (".." rejected by
/// returning the empty string — the virtual FS does not support it).
[[nodiscard]] std::string normalize_path(std::string_view path);

/// Number of components ("/" -> 0, "/a/b" -> 2).
[[nodiscard]] std::size_t path_depth(std::string_view path);

/// True if `path` equals `ancestor` or lies beneath it.
[[nodiscard]] bool path_is_within(std::string_view path, std::string_view ancestor);

}  // namespace kosha

#include "kosha/cluster.hpp"

#include <stdexcept>
#include <string>

#include "kosha/placement.hpp"
#include "nfs/wire.hpp"

namespace kosha {

KoshaCluster::KoshaCluster(ClusterConfig config)
    : config_(std::move(config)),
      loop_(&clock_, config_.seed),
      rng_(config_.seed),
      network_(config_.network, &clock_),
      overlay_(config_.kosha.pastry, &network_) {
  if (const std::string err = config_.kosha.validate(); !err.empty()) {
    throw std::invalid_argument("KoshaConfig: " + err);
  }
  if (config_.self_heal.enabled && !config_.event_driven) {
    throw std::invalid_argument(
        "ClusterConfig: self_heal requires the event-driven execution model");
  }
  if (config_.self_heal.enabled) {
    overlay_.set_failure_listener([this](pastry::NodeId observer, pastry::NodeId dead) {
      on_failure_reported(observer, dead);
    });
  }
  // Execution model: attaching the event loop flips NfsClient's
  // synchronous API onto the completion-based core (nfs_client.hpp); not
  // attaching it preserves the legacy serial call-and-advance model.
  if (config_.event_driven) {
    network_.set_event_loop(&loop_);
    runtime_.loop = &loop_;
  }
  if (config_.kosha.overload.enabled) {
    // Arm the network's per-host admission bounds; client-side controls
    // (budget, breakers) are armed per daemon in Koshad's constructor.
    network_.set_admission({config_.kosha.overload.max_inflight,
                            config_.kosha.overload.low_priority_inflight()});
  }
  runtime_.clock = &clock_;
  runtime_.network = &network_;
  runtime_.overlay = &overlay_;
  runtime_.servers = &servers_;
  runtime_.config = config_.kosha;
  runtime_.config.rng_seed = config_.seed;

  // Observability wiring happens before any node exists, so every
  // component can resolve its instruments at construction. Disabled sinks
  // stay null: the hot paths then cost one branch per seam and nothing
  // else, keeping instrumented-but-off runs byte-identical.
  tracer_.set_clock(&clock_);
  tracer_.set_enabled(config_.observability.tracing);
  runtime_.metrics = config_.observability.metrics ? &metrics_ : nullptr;
  runtime_.tracer = config_.observability.tracing ? &tracer_ : nullptr;
  network_.set_observability(runtime_.metrics, runtime_.tracer);
  if (config_.observability.profiling) {
    loop_.set_profiler(&profiler_);
    network_.set_profiler(&profiler_);
  }

  for (std::size_t i = 0; i < config_.nodes; ++i) {
    const std::uint64_t capacity =
        i < config_.capacities.size() ? config_.capacities[i] : config_.node_capacity_bytes;
    (void)add_node(capacity);
  }
}

KoshaCluster::~KoshaCluster() = default;

KoshaCluster::Node& KoshaCluster::node_ref(net::HostId host) {
  if (host >= nodes_.size() || nodes_[host] == nullptr) {
    throw std::invalid_argument("unknown host");
  }
  return *nodes_[host];
}

const KoshaCluster::Node& KoshaCluster::node_ref(net::HostId host) const {
  if (host >= nodes_.size() || nodes_[host] == nullptr) {
    throw std::invalid_argument("unknown host");
  }
  return *nodes_[host];
}

void KoshaCluster::join_overlay(Node& node) {
  const bool first = overlay_.ring().empty();
  overlay_.join(node.id, node.host);
  // The join's own leaf-set notification fired before the callback could be
  // registered; run it by hand, then subscribe for future changes.
  node.replicas->on_neighbors_changed();
  ReplicaManager* rm = node.replicas.get();
  overlay_.set_neighbor_callback(node.id, [rm] { rm->on_neighbors_changed(); });
  if (first) {
    // Bootstrap the virtual root: the first node owns every key, including
    // the root directory's. Create its anchor container and register it;
    // later ownership changes migrate it like any other anchor.
    (void)node.server->store().mkdir_p(root_stored_path());
    rm->register_primary(root_stored_path(), "/");
  }
}

net::HostId KoshaCluster::add_node(std::uint64_t capacity_bytes) {
  if (capacity_bytes == 0) capacity_bytes = config_.node_capacity_bytes;
  const net::HostId host = network_.add_host();
  auto node = std::make_unique<Node>();
  node->host = host;
  node->id = rng_.next_id();
  fs::StorageConfig storage = config_.kosha.storage;
  storage.fs.capacity_bytes = capacity_bytes;
  node->server = std::make_unique<nfs::NfsServer>(host, storage, config_.costs, &clock_);
  node->server->set_observability(runtime_.metrics, runtime_.tracer);
  servers_.add(node->server.get());
  node->replicas = std::make_unique<ReplicaManager>(&runtime_, host, node->id);
  runtime_.replica_managers[host] = node->replicas.get();
  node->boot = next_boot_++;
  node->daemon = std::make_unique<Koshad>(&runtime_, host, node->boot);
  if (nodes_.size() <= host) nodes_.resize(host + 1);
  nodes_[host] = std::move(node);
  join_overlay(*nodes_[host]);
  if (config_.self_heal.enabled) start_self_heal(*nodes_[host]);
  return host;
}

void KoshaCluster::start_self_heal(Node& node) {
  node.detector = std::make_unique<pastry::FailureDetector>(
      config_.self_heal.detector, &overlay_, &network_, &loop_, node.id, node.host, node.boot);
  node.detector->start();
  node.repair = std::make_unique<RepairDaemon>(config_.self_heal.repair, &runtime_, node.host);
  node.repair->start();
}

void KoshaCluster::fail_node(net::HostId host) {
  Node& node = node_ref(host);
  if (!node.alive) return;
  node.alive = false;
  network_.set_up(host, false);
  // Drop the server from the directory too: a dead host must fail RPCs via
  // the clean unreachable path, never through a stale server pointer.
  servers_.erase(host);
  runtime_.replica_managers.erase(host);
  if (node.detector != nullptr) node.detector->stop();
  if (node.repair != nullptr) node.repair->stop();
  if (config_.self_heal.enabled) {
    // Oracle-free: stop the host and record when — survivors must notice
    // via their detectors; the first confirmed report closes this record.
    DetectionEvent event;
    event.host = host;
    event.failed_at = clock_.now();
    death_times_[node.id] = event;
    overlay_.mark_dead(node.id);
  } else {
    overlay_.fail(node.id);  // oracle: triggers repair, promotion, re-replication
  }
}

void KoshaCluster::retire_node(net::HostId host) {
  Node& node = node_ref(host);
  if (!node.alive) return;
  // Hand over all primary content while the node is still reachable, then
  // depart like a failure (the overlay handles both identically; the data
  // is already gone from this node).
  node.replicas->evacuate();
  fail_node(host);
}

void KoshaCluster::revive_node(net::HostId host) {
  Node& node = node_ref(host);
  if (node.alive) return;
  // "All Kosha data on a revived node is purged" and it rejoins under a
  // fresh identifier (paper §4.3.2). The crash also lost the server's
  // volatile state: its duplicate-request cache must not survive into the
  // next life, or it could answer for requests the reborn store never saw.
  node.server->store().purge();
  node.server->clear_drc();
  node.id = rng_.next_id();
  node.alive = true;
  network_.set_up(host, true);
  servers_.add(node.server.get());
  node.replicas = std::make_unique<ReplicaManager>(&runtime_, host, node.id);
  runtime_.replica_managers[host] = node.replicas.get();
  // A fresh boot verifier: the reborn daemon's NfsClient restarts xids at
  // 0, and other servers' DRCs still hold (host, low-xid) entries from the
  // previous incarnation. The new verifier makes those entries inert.
  node.boot = next_boot_++;
  node.daemon = std::make_unique<Koshad>(&runtime_, host, node.boot);
  // Rejoin through the normal join protocol, exactly like a fresh node.
  join_overlay(node);
  // Self-healing mode: the new incarnation gets a fresh detector and
  // repair daemon (new id + new boot, so no peer's lingering "suspected"
  // or "dead" verdict about the previous life can capture it, and its own
  // detector starts with a clean slate).
  if (config_.self_heal.enabled) start_self_heal(node);
}

void KoshaCluster::on_failure_reported(pastry::NodeId observer, pastry::NodeId dead) {
  (void)observer;
  const auto it = death_times_.find(dead);
  if (it == death_times_.end()) return;  // false suspicion, not a real death
  DetectionEvent event = it->second;
  event.detected_at = clock_.now();
  death_times_.erase(it);
  detections_.push_back(event);
  metrics_.histogram("selfheal.detect_ms")
      ->record((event.detected_at - event.failed_at).to_millis());
}

std::vector<net::HostId> KoshaCluster::live_hosts() const {
  std::vector<net::HostId> out;
  for (const auto& node : nodes_) {
    if (node != nullptr && node->alive) out.push_back(node->host);
  }
  return out;
}

Koshad& KoshaCluster::daemon(net::HostId host) { return *node_ref(host).daemon; }

nfs::NfsServer& KoshaCluster::server(net::HostId host) { return *node_ref(host).server; }

ReplicaManager& KoshaCluster::replicas(net::HostId host) { return *node_ref(host).replicas; }

pastry::NodeId KoshaCluster::node_id(net::HostId host) const { return node_ref(host).id; }

pastry::FailureDetector* KoshaCluster::detector(net::HostId host) {
  Node& node = node_ref(host);
  return node.alive ? node.detector.get() : nullptr;
}

RepairDaemon* KoshaCluster::repair_daemon(net::HostId host) {
  Node& node = node_ref(host);
  return node.alive ? node.repair.get() : nullptr;
}

void KoshaCluster::refresh_derived_metrics() {
  // Statistics that already live in dedicated structs (NetStats,
  // KoshadStats, the servers' counters) are mirrored into gauges at export
  // time. This keeps the hot paths untouched — the numbers exist whether or
  // not per-event metrics were enabled — while giving kosha_stat one
  // uniform snapshot to read.
  const net::NetStats& net = network_.stats();
  metrics_.gauge("net.messages")->set(static_cast<double>(net.messages));
  metrics_.gauge("net.bytes")->set(static_cast<double>(net.bytes));
  metrics_.gauge("net.timeouts")->set(static_cast<double>(net.timeouts));
  metrics_.gauge("net.overlay_hops")->set(static_cast<double>(net.overlay_hops));
  metrics_.gauge("net.drops")->set(static_cast<double>(net.drops));
  metrics_.gauge("net.retries")->set(static_cast<double>(net.retries));
  metrics_.gauge("net.partitioned")->set(static_cast<double>(net.partitioned));
  metrics_.gauge("net.queue_delay_ns")->set(static_cast<double>(net.queue_delay_ns));
  metrics_.gauge("net.inflight_peak")->set(static_cast<double>(net.inflight_peak));

  for (const nfs::NfsProc proc : nfs::kAllProcs) {
    const net::ProcNetStats& slot = net.per_proc[nfs::proc_slot(proc)];
    if (slot.messages == 0 && slot.retries == 0 && slot.timeouts == 0) continue;
    const std::string prefix = std::string("net.proc.") + nfs::proc_name(proc);
    metrics_.gauge(prefix + ".messages")->set(static_cast<double>(slot.messages));
    metrics_.gauge(prefix + ".bytes")->set(static_cast<double>(slot.bytes));
    metrics_.gauge(prefix + ".retries")->set(static_cast<double>(slot.retries));
    metrics_.gauge(prefix + ".timeouts")->set(static_cast<double>(slot.timeouts));
  }

  for (const auto& node : nodes_) {
    if (node == nullptr || !node->alive) continue;
    const std::string prefix = "node." + std::to_string(node->host);
    const fs::StorageBackend& store = node->server->store();
    metrics_.gauge(prefix + ".store.used_bytes")->set(static_cast<double>(store.used_bytes()));
    metrics_.gauge(prefix + ".store.capacity_bytes")
        ->set(static_cast<double>(store.capacity_bytes()));
    if (store.kind() != fs::BackendKind::kFlat) {
      // Dedup/integrity gauges exist only on deduplicating backends, so the
      // flat backend's metrics export stays byte-identical to what it was
      // before the storage seam existed.
      const fs::StorageStats stats = store.stats();
      metrics_.gauge(prefix + ".store.dedup_bytes")
          ->set(static_cast<double>(stats.dedup_bytes));
      metrics_.gauge(prefix + ".store.blocks_live")
          ->set(static_cast<double>(stats.blocks_live));
      metrics_.gauge(prefix + ".store.verify_failures")
          ->set(static_cast<double>(stats.verify_failures));
    }
    metrics_.gauge(prefix + ".server.rpcs")->set(static_cast<double>(node->server->rpc_count()));
    metrics_.gauge(prefix + ".server.drc_hits")
        ->set(static_cast<double>(node->server->drc_stats().hits));
    metrics_.gauge(prefix + ".server.drc_stores")
        ->set(static_cast<double>(node->server->drc_stats().stores));
    const KoshadStats& ks = node->daemon->stats();
    metrics_.gauge(prefix + ".koshad.rpcs_forwarded")
        ->set(static_cast<double>(ks.rpcs_forwarded));
    metrics_.gauge(prefix + ".koshad.dht_lookups")->set(static_cast<double>(ks.dht_lookups));
    metrics_.gauge(prefix + ".koshad.dht_hops")->set(static_cast<double>(ks.dht_hops));
    metrics_.gauge(prefix + ".koshad.remote_rpcs")->set(static_cast<double>(ks.remote_rpcs));
    metrics_.gauge(prefix + ".koshad.failovers")->set(static_cast<double>(ks.failovers));
    metrics_.gauge(prefix + ".koshad.failed_failovers")
        ->set(static_cast<double>(ks.failed_failovers));
    metrics_.gauge(prefix + ".koshad.redirects")->set(static_cast<double>(ks.redirects));
    metrics_.gauge(prefix + ".koshad.replica_reads")->set(static_cast<double>(ks.replica_reads));
    metrics_.gauge(prefix + ".koshad.degraded_reads")
        ->set(static_cast<double>(ks.degraded_reads));
    metrics_.gauge(prefix + ".koshad.mirror_rpcs")->set(static_cast<double>(ks.mirror_rpcs));
  }

  if (config_.kosha.storage.backend != fs::BackendKind::kFlat) {
    // Cluster-wide dedup/integrity totals (sum over live stores). Gated to
    // non-flat backends for the same byte-identity reason as the per-node
    // variants above.
    fs::StorageStats total;
    for (const auto& node : nodes_) {
      if (node == nullptr || !node->alive) continue;
      const fs::StorageStats stats = node->server->store().stats();
      total.dedup_bytes += stats.dedup_bytes;
      total.blocks_live += stats.blocks_live;
      total.verify_failures += stats.verify_failures;
    }
    metrics_.gauge("store.dedup_bytes")->set(static_cast<double>(total.dedup_bytes));
    metrics_.gauge("store.blocks_live")->set(static_cast<double>(total.blocks_live));
    metrics_.gauge("store.verify_failures")->set(static_cast<double>(total.verify_failures));
  }

  if (config_.self_heal.enabled) {
    pastry::FailureDetectorStats fd;
    RepairDaemonStats rd;
    for (const auto& node : nodes_) {
      if (node == nullptr || !node->alive) continue;
      if (node->detector != nullptr) {
        const pastry::FailureDetectorStats& s = node->detector->stats();
        fd.probes_sent += s.probes_sent;
        fd.acks_received += s.acks_received;
        fd.probe_misses += s.probe_misses;
        fd.suspicions += s.suspicions;
        fd.indirect_rounds += s.indirect_rounds;
        fd.refutations += s.refutations;
        fd.declared_dead += s.declared_dead;
        fd.reinstated += s.reinstated;
        fd.quarantined_verdicts += s.quarantined_verdicts;
      }
      if (node->repair != nullptr) {
        const RepairDaemonStats& s = node->repair->stats();
        rd.ticks += s.ticks;
        rd.promoted += s.promoted;
        rd.handed_off += s.handed_off;
        rd.pushed += s.pushed;
        rd.dropped += s.dropped;
        rd.last_missing += s.last_missing;
      }
    }
    metrics_.gauge("selfheal.detector.probes")->set(static_cast<double>(fd.probes_sent));
    metrics_.gauge("selfheal.detector.acks")->set(static_cast<double>(fd.acks_received));
    metrics_.gauge("selfheal.detector.misses")->set(static_cast<double>(fd.probe_misses));
    metrics_.gauge("selfheal.detector.suspicions")->set(static_cast<double>(fd.suspicions));
    metrics_.gauge("selfheal.detector.refutations")->set(static_cast<double>(fd.refutations));
    metrics_.gauge("selfheal.detector.declared_dead")
        ->set(static_cast<double>(fd.declared_dead));
    metrics_.gauge("selfheal.detector.reinstated")->set(static_cast<double>(fd.reinstated));
    metrics_.gauge("selfheal.detector.quarantined")
        ->set(static_cast<double>(fd.quarantined_verdicts));
    metrics_.gauge("selfheal.repair.ticks")->set(static_cast<double>(rd.ticks));
    metrics_.gauge("selfheal.repair.promoted")->set(static_cast<double>(rd.promoted));
    metrics_.gauge("selfheal.repair.handed_off")->set(static_cast<double>(rd.handed_off));
    metrics_.gauge("selfheal.repair.pushed")->set(static_cast<double>(rd.pushed));
    metrics_.gauge("selfheal.repair.dropped")->set(static_cast<double>(rd.dropped));
    metrics_.gauge("selfheal.detections")->set(static_cast<double>(detections_.size()));
    metrics_.gauge("selfheal.undetected")->set(static_cast<double>(death_times_.size()));
  }

  if (config_.kosha.overload.enabled) {
    // Overload-control snapshot (gated for the usual byte-identity
    // reason): network-level shed decisions, then the client-side budget
    // and breaker totals summed over all live daemons.
    metrics_.gauge("overload.admission_rejected")
        ->set(static_cast<double>(net.admission_rejected));
    metrics_.gauge("overload.deadline_rejected")
        ->set(static_cast<double>(net.deadline_rejected));
    metrics_.gauge("overload.expired")->set(static_cast<double>(net.expired));
    metrics_.gauge("overload.shed_low_priority")
        ->set(static_cast<double>(net.shed_low_priority));
    nfs::OverloadClientStats oc;
    std::uint64_t server_deadline_rejects = 0;
    std::uint64_t ladder_aborts = 0;
    std::uint64_t repair_yields = 0;
    double budget_tokens = 0.0;
    for (const auto& node : nodes_) {
      if (node == nullptr || !node->alive) continue;
      const nfs::OverloadClientStats s = node->daemon->nfs_client().overload_stats();
      oc.budget_exhausted += s.budget_exhausted;
      oc.breaker_opens += s.breaker_opens;
      oc.breaker_fast_fails += s.breaker_fast_fails;
      oc.overloaded_replies += s.overloaded_replies;
      oc.breakers_open += s.breakers_open;
      budget_tokens += s.budget_tokens;
      server_deadline_rejects += node->server->deadline_rejects();
      ladder_aborts += node->daemon->stats().ladder_deadline_aborts;
      if (node->repair != nullptr) repair_yields += node->repair->stats().yields;
    }
    metrics_.gauge("overload.budget_exhausted")
        ->set(static_cast<double>(oc.budget_exhausted));
    metrics_.gauge("overload.budget_tokens")->set(budget_tokens);
    metrics_.gauge("overload.breaker_opens")->set(static_cast<double>(oc.breaker_opens));
    metrics_.gauge("overload.breaker_fast_fails")
        ->set(static_cast<double>(oc.breaker_fast_fails));
    metrics_.gauge("overload.breakers_open")->set(static_cast<double>(oc.breakers_open));
    metrics_.gauge("overload.overloaded_replies")
        ->set(static_cast<double>(oc.overloaded_replies));
    metrics_.gauge("overload.server_deadline_rejects")
        ->set(static_cast<double>(server_deadline_rejects));
    metrics_.gauge("overload.ladder_deadline_aborts")
        ->set(static_cast<double>(ladder_aborts));
    metrics_.gauge("overload.repair_yields")->set(static_cast<double>(repair_yields));
  }

  if (config_.observability.profiling) {
    profiler_.export_to(metrics_, clock_.now());
  }
}

std::string KoshaCluster::export_metrics_json() {
  refresh_derived_metrics();
  return metrics_.to_json();
}

std::string KoshaCluster::export_metrics_csv() {
  refresh_derived_metrics();
  return metrics_.to_csv();
}

}  // namespace kosha

#pragma once

// kosha_lint phase 1 — tokenizer and translation-unit indexer.
//
// The linter grew from a per-function token walker (PR 5) into a two-phase
// analyzer: this module is phase 1. It lexes every source file with the
// same dependency-free tokenizer as before (comments, string/char/raw
// literals and preprocessor lines never reach the rules), then builds a
// repo-wide symbol table:
//
//   * every function definition and declaration, free or member, with its
//     qualifying class, arity (plus the minimum arity once defaulted
//     parameters are dropped), return-type tokens, and body token range;
//   * an identifier -> class map for members, locals and parameters whose
//     declared type names an indexed class — the cross-TU member-type
//     resolution PR 5 used only for unordered containers, generalized so
//     the call-graph builder can resolve `obj->method()` through it;
//   * container-typed names split into hash-ordered (unordered_map/set,
//     for D2) and node-based (map/set/multimap and the unordered family,
//     for A1's hot-path insertion audit).
//
// The index is deliberately conservative: what it cannot parse it skips,
// and what it cannot resolve the call-graph layer over-approximates.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace kosha::lint {

enum class TokKind { kIdent, kPunct, kNumber, kDirective };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

/// One lint annotation parsed out of a comment: allow(<slug>): <reason>.
/// Annotations without a non-empty reason are recorded as malformed so the
/// rule can refuse to be suppressed (and say why).
struct Annotation {
  std::string slug;
  bool has_reason = false;
};

/// A lint comment asserting `edge(Target::fn): reason` — a hand-asserted
/// call edge for the few truly dynamic seams (type-erased std::function
/// hops, virtual dispatch the resolver cannot see). The edge source is the
/// function whose body encloses the comment line.
struct EdgeAnnotation {
  std::string target;  // "Class::name" or bare "name"
  int line = 0;
  bool has_reason = false;
};

struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  /// line -> annotations attached to that line (an annotation also covers
  /// the line directly below it, so a whole-line comment can precede the
  /// code it excuses).
  std::map<int, std::vector<Annotation>> annotations;
  std::vector<EdgeAnnotation> edge_annotations;
};

void tokenize(const std::string& src, SourceFile& out);

[[nodiscard]] bool is_ident(const Token& t, std::string_view text);
[[nodiscard]] bool is_punct(const Token& t, std::string_view text);

/// Index just past the matching closer for the opener at `open` (e.g. the
/// token after the ')' matching a '('); tokens.size() when unbalanced.
[[nodiscard]] std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                                        std::string_view opener, std::string_view closer);

/// Index just past the '>' closing a template-argument list opened at
/// `open` (which must point at '<'); tokens.size() if it never closes
/// plausibly (a comparison rather than a template list).
[[nodiscard]] std::size_t skip_angles(const std::vector<Token>& toks, std::size_t open);

/// One indexed function (definition or declaration).
struct Function {
  int file = -1;    // index into Index::files
  std::string cls;  // qualifying class; "" for free functions
  std::string name;
  /// Return-type tokens (left of the name, specifier keywords stripped).
  /// Empty for constructors/destructors.
  std::vector<std::string> ret;
  int arity = 0;      // declared parameter count
  int min_arity = 0;  // arity minus defaulted parameters
  int line = 0;
  /// Token range of the body `{ ... }` (begin at '{', end one past '}');
  /// begin == end for pure declarations.
  std::size_t body_begin = 0;
  std::size_t body_end = 0;

  [[nodiscard]] bool has_body() const { return body_end > body_begin; }
  [[nodiscard]] std::string qual() const {
    return cls.empty() ? name : cls + "::" + name;
  }
  [[nodiscard]] bool ret_contains(std::string_view type) const {
    for (const std::string& r : ret) {
      if (r == type) return true;
    }
    return false;
  }
};

class Index {
 public:
  void add_file(SourceFile f) { files_.push_back(std::move(f)); }

  /// Build the symbol table over every added file. Idempotent per build:
  /// clears derived state first.
  void build();

  [[nodiscard]] const std::vector<SourceFile>& files() const { return files_; }
  [[nodiscard]] const std::vector<Function>& functions() const { return functions_; }

  /// Function ids (indices into functions()) by unqualified name.
  [[nodiscard]] const std::vector<int>* by_name(const std::string& name) const;
  /// Function ids by "Class::name".
  [[nodiscard]] const std::vector<int>* by_qual(const std::string& qual) const;

  /// Declared class type of an identifier (member/local/param), "" unknown.
  [[nodiscard]] std::string type_of(const std::string& ident) const;

  [[nodiscard]] bool is_class(const std::string& name) const {
    return classes_.count(name) > 0;
  }

  /// Names declared with a hash-ordered container (D2).
  [[nodiscard]] const std::set<std::string>& unordered_names() const {
    return unordered_names_;
  }
  /// Names declared with a node-based associative container (A1).
  [[nodiscard]] const std::set<std::string>& node_map_names() const {
    return node_map_names_;
  }

  /// Id of the function whose body encloses (file, line); -1 when the line
  /// is outside every indexed body in that file.
  [[nodiscard]] int enclosing_function(int file, int line) const;

 private:
  void collect_aliases(const SourceFile& f);
  void collect_container_decls(const SourceFile& f);
  void collect_var_types(const SourceFile& f);
  void index_functions(int file_index);

  std::vector<SourceFile> files_;
  std::vector<Function> functions_;
  std::map<std::string, std::vector<int>> by_name_;
  std::map<std::string, std::vector<int>> by_qual_;
  std::map<std::string, std::string> var_type_;
  std::set<std::string> classes_;
  std::set<std::string> unordered_names_;
  std::set<std::string> node_map_names_;
  std::set<std::string> unordered_type_aliases_;
};

}  // namespace kosha::lint

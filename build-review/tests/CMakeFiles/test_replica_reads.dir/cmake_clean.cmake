file(REMOVE_RECURSE
  "CMakeFiles/test_replica_reads.dir/test_replica_reads.cpp.o"
  "CMakeFiles/test_replica_reads.dir/test_replica_reads.cpp.o.d"
  "test_replica_reads"
  "test_replica_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replica_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for kosha_lint.
# This may be replaced when dependencies are built.

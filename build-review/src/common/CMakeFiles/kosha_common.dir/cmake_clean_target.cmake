file(REMOVE_RECURSE
  "libkosha_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/table2_distlevel.dir/table2_distlevel.cpp.o"
  "CMakeFiles/table2_distlevel.dir/table2_distlevel.cpp.o.d"
  "table2_distlevel"
  "table2_distlevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_distlevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

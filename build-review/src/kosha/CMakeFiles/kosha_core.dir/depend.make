# Empty dependencies file for kosha_core.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig6_redirection.
# This may be replaced when dependencies are built.

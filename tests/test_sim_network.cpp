// Simulated network tests: latency charging, byte accounting, liveness,
// and timeouts.

#include <gtest/gtest.h>

#include "net/sim_network.hpp"

namespace kosha::net {
namespace {

TEST(SimNetwork, AddHostsStartUp) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(network.host_count(), 2u);
  EXPECT_TRUE(network.is_up(a));
  network.set_up(a, false);
  EXPECT_FALSE(network.is_up(a));
}

TEST(SimNetwork, RemoteMessageChargesHopLatency) {
  SimClock clock;
  NetworkConfig config;
  config.hop_latency = SimDuration::micros(100);
  config.per_byte = SimDuration::nanos(0);
  SimNetwork network(config, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  network.charge_message(a, b);
  EXPECT_EQ(clock.now().ns, SimDuration::micros(100).ns);
  EXPECT_EQ(network.stats().messages, 1u);
}

TEST(SimNetwork, LocalMessageChargesLoopbackLatency) {
  SimClock clock;
  NetworkConfig config;
  config.hop_latency = SimDuration::micros(100);
  config.local_latency = SimDuration::micros(10);
  config.per_byte = SimDuration::nanos(0);
  SimNetwork network(config, &clock);
  const HostId a = network.add_host();
  network.charge_message(a, a);
  EXPECT_EQ(clock.now().ns, SimDuration::micros(10).ns);
}

TEST(SimNetwork, PayloadBytesCharged) {
  SimClock clock;
  NetworkConfig config;
  config.hop_latency = SimDuration::micros(0);
  config.local_latency = SimDuration::micros(0);
  config.per_byte = SimDuration::nanos(80);
  SimNetwork network(config, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  network.charge_message(a, b, 1000);
  EXPECT_EQ(clock.now().ns, 80'000);
  EXPECT_EQ(network.stats().bytes, 1000u);
}

TEST(SimNetwork, RttIsTwoMessages) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  network.charge_rtt(a, b, 64);
  EXPECT_EQ(network.stats().messages, 2u);
  EXPECT_EQ(network.stats().bytes, 64u);  // reply payload not counted
}

TEST(SimNetwork, OverlayHopCountsOnlyRemote) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  network.charge_overlay_hop(a, a);
  EXPECT_EQ(network.stats().overlay_hops, 0u);
  network.charge_overlay_hop(a, b);
  EXPECT_EQ(network.stats().overlay_hops, 1u);
}

TEST(SimNetwork, TimeoutChargesAndCounts) {
  SimClock clock;
  NetworkConfig config;
  config.rpc_timeout = SimDuration::millis(500);
  SimNetwork network(config, &clock);
  network.charge_timeout();
  EXPECT_EQ(clock.now().ns, SimDuration::millis(500).ns);
  EXPECT_EQ(network.stats().timeouts, 1u);
}

TEST(FaultPlan, NoPlanDeliversEverything) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  EXPECT_TRUE(network.try_message(a, b));
  EXPECT_EQ(network.stats().messages, 1u);
  EXPECT_EQ(network.stats().drops, 0u);
}

TEST(FaultPlan, DropProbabilityOneLosesEveryRemoteMessage) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  FaultPlanConfig fault;
  fault.drop_probability = 1.0;
  network.set_fault_plan(std::make_unique<FaultPlan>(fault));
  EXPECT_FALSE(network.try_message(a, b));
  EXPECT_EQ(network.stats().drops, 1u);
  EXPECT_EQ(network.stats().messages, 0u);
  EXPECT_EQ(clock.now().ns, 0);  // the caller charges loss, not the wire
  // Loopback traffic never traverses the wire and is never judged.
  EXPECT_TRUE(network.try_message(a, a));
}

TEST(FaultPlan, BrownoutWindowIsBounded) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  auto plan = std::make_unique<FaultPlan>(FaultPlanConfig{});
  plan->add_brownout(b, SimDuration::millis(10), SimDuration::millis(20));
  network.set_fault_plan(std::move(plan));

  EXPECT_TRUE(network.try_message(a, b));  // before the window
  clock.advance(SimDuration::millis(15) - clock.now());
  EXPECT_FALSE(network.try_message(a, b));  // to the host
  EXPECT_FALSE(network.try_message(b, a));  // and from it
  EXPECT_EQ(network.stats().drops, 2u);
  EXPECT_EQ(network.fault_plan()->brownout_end(b, clock.now()).ns,
            SimDuration::millis(20).ns);
  clock.advance(SimDuration::millis(10));
  EXPECT_TRUE(network.try_message(a, b));  // after the window
}

TEST(FaultPlan, PartitionBlocksCrossGroupTrafficOnly) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  const HostId c = network.add_host();
  auto plan = std::make_unique<FaultPlan>(FaultPlanConfig{});
  plan->add_partition({a}, {b}, SimDuration::nanos(0), SimDuration::seconds(1));
  network.set_fault_plan(std::move(plan));

  EXPECT_FALSE(network.try_message(a, b));
  EXPECT_FALSE(network.try_message(b, a));
  EXPECT_EQ(network.stats().partitioned, 2u);
  EXPECT_TRUE(network.try_message(a, c));  // same side / unlisted host
  clock.advance(SimDuration::seconds(2));
  EXPECT_TRUE(network.try_message(a, b));  // window expired
}

TEST(FaultPlan, ForcedDropHitsTheScheduledMessage) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  network.set_fault_plan(std::make_unique<FaultPlan>(FaultPlanConfig{}));
  network.fault_plan()->force_drop_message(2);
  EXPECT_TRUE(network.try_message(a, b));
  EXPECT_FALSE(network.try_message(a, b));
  EXPECT_TRUE(network.try_message(a, b));
}

TEST(FaultPlan, LatencySpikeCharged) {
  SimClock clock;
  NetworkConfig config;
  config.hop_latency = SimDuration::micros(100);
  config.per_byte = SimDuration::nanos(0);
  SimNetwork network(config, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  FaultPlanConfig fault;
  fault.latency_spike_probability = 1.0;
  fault.latency_spike = SimDuration::millis(3);
  network.set_fault_plan(std::make_unique<FaultPlan>(fault));
  EXPECT_TRUE(network.try_message(a, b));
  EXPECT_EQ(clock.now().ns, (SimDuration::micros(100) + SimDuration::millis(3)).ns);
}

TEST(FaultPlan, SameSeedSameVerdicts) {
  FaultPlanConfig fault;
  fault.seed = 7;
  fault.drop_probability = 0.3;
  FaultPlan p1(fault);
  FaultPlan p2(fault);
  for (int i = 0; i < 200; ++i) {
    const auto now = SimDuration::millis(i);
    EXPECT_EQ(static_cast<int>(p1.judge(0, 1, now)), static_cast<int>(p2.judge(0, 1, now)));
  }
}

TEST(SimNetwork, StatsReset) {
  SimClock clock;
  SimNetwork network({}, &clock);
  const HostId a = network.add_host();
  const HostId b = network.add_host();
  network.charge_message(a, b, 10);
  network.stats().reset();
  EXPECT_EQ(network.stats().messages, 0u);
  EXPECT_EQ(network.stats().bytes, 0u);
}

}  // namespace
}  // namespace kosha::net

// kosha_stat — inspect Kosha observability dumps.
//
// Reads the deterministic snapshots the cluster exports and renders them for
// humans; it never re-derives numbers, so what it prints is exactly what the
// run recorded.
//
//   --metrics FILE   metrics snapshot (export_metrics_json output). Prints a
//                    readable table; --csv re-emits `type,name,field,value`
//                    rows instead (same shape as export_metrics_csv).
//   --trace FILE     trace stream (export_trace_jsonl output). Prints a
//                    per-span-name summary; --tree renders the span forest.
//   --prof FILE      simulator profile (BENCH_sim_profile.json from
//                    concurrency_bench --profile-out, or a kosha_prof
//                    --json critical-path report). Renders throughput,
//                    per-category event costs, and the critical-path stage
//                    shares as tables.
//   --detector FILE  failure-detector summary from a metrics snapshot
//                    (probes / suspicions / declarations / reinstatements).
//   --repair FILE    repair-daemon summary from a metrics snapshot.
//   --overload FILE  overload-control summary from a metrics snapshot
//                    (admission/deadline rejections, expired dead work,
//                    retry-budget and circuit-breaker state, repair yields).
//   --demo           run a small observability-enabled cluster, perform one
//                    cross-node CREATE, and print its span tree plus the
//                    metrics snapshot (--nodes N, --replicas K, --seed S).

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/tracing.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace {

using namespace kosha;

bool slurp(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

void print_section(const JsonValue& snapshot, const char* section, const char* heading) {
  const JsonValue* values = snapshot.find(section);
  if (values == nullptr || values->members().empty()) return;
  std::printf("%s\n", heading);
  for (const auto& [name, value] : values->members()) {
    std::printf("  %-48s %s\n", name.c_str(), json_number(value.as_number()).c_str());
  }
  std::printf("\n");
}

int show_metrics(const std::string& path, bool as_csv) {
  std::string text;
  if (!slurp(path, text)) {
    std::fprintf(stderr, "kosha_stat: cannot open %s\n", path.c_str());
    return 1;
  }
  const auto parsed = parse_json(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "kosha_stat: %s: %s\n", path.c_str(), parsed.error().c_str());
    return 1;
  }
  const JsonValue& snapshot = parsed.value();

  if (as_csv) {
    std::printf("type,name,field,value\n");
    for (const char* section : {"counters", "gauges"}) {
      const JsonValue* values = snapshot.find(section);
      if (values == nullptr) continue;
      const char* type = section[0] == 'c' ? "counter" : "gauge";
      for (const auto& [name, value] : values->members()) {
        std::printf("%s,%s,value,%s\n", type, name.c_str(),
                    json_number(value.as_number()).c_str());
      }
    }
    if (const JsonValue* hists = snapshot.find("histograms"); hists != nullptr) {
      for (const auto& [name, h] : hists->members()) {
        for (const auto& [field, value] : h.members()) {
          std::printf("histogram,%s,%s,%s\n", name.c_str(), field.c_str(),
                      json_number(value.as_number()).c_str());
        }
      }
    }
    return 0;
  }

  print_section(snapshot, "counters", "counters");
  print_section(snapshot, "gauges", "gauges");
  if (const JsonValue* hists = snapshot.find("histograms");
      hists != nullptr && !hists->members().empty()) {
    std::printf("histograms%42s %10s %10s %10s %10s\n", "count", "mean", "p50", "p95", "p99");
    for (const auto& [name, h] : hists->members()) {
      std::printf("  %-48s %10.0f %10.1f %10.1f %10.1f %10.1f\n", name.c_str(),
                  h.number_or("count", 0), h.number_or("mean", 0), h.number_or("p50", 0),
                  h.number_or("p95", 0), h.number_or("p99", 0));
    }
  }
  return 0;
}

int show_trace(const std::string& path, bool as_tree) {
  std::string text;
  if (!slurp(path, text)) {
    std::fprintf(stderr, "kosha_stat: cannot open %s\n", path.c_str());
    return 1;
  }
  const auto spans = parse_trace_jsonl(text);
  if (!spans.ok()) {
    std::fprintf(stderr, "kosha_stat: %s: %s\n", path.c_str(), spans.error().c_str());
    return 1;
  }
  if (as_tree) {
    std::fputs(render_span_forest(spans.value()).c_str(), stdout);
    return 0;
  }

  // Per-name rollup: how many spans, total self-reported time, error count.
  struct Roll {
    std::uint64_t count = 0;
    std::uint64_t errors = 0;
    std::int64_t total_ns = 0;
  };
  std::map<std::string, Roll> by_name;
  std::map<std::uint64_t, std::uint64_t> traces;  // trace_id -> span count
  for (const SpanRecord& span : spans.value()) {
    Roll& roll = by_name[span.name];
    ++roll.count;
    roll.total_ns += span.end_ns - span.start_ns;
    if (span.status != "ok") ++roll.errors;
    ++traces[span.trace_id];
  }
  std::printf("%zu spans across %zu traces\n\n", spans.value().size(), traces.size());
  std::printf("%-32s %8s %8s %12s\n", "span", "count", "errors", "total_us");
  for (const auto& [name, roll] : by_name) {
    std::printf("%-32s %8llu %8llu %12.1f\n", name.c_str(),
                static_cast<unsigned long long>(roll.count),
                static_cast<unsigned long long>(roll.errors),
                static_cast<double>(roll.total_ns) / 1000.0);
  }
  return 0;
}

/// Render the "critical" / critical-path-report section of a profile dump
/// (the shape critical_report_json emits): stage shares then flame paths.
void print_critical(const JsonValue& critical) {
  const double total_ns = critical.number_or("critical_ns", 0);
  std::printf("critical path: %s trace(s), %s span(s), %.3f ms total\n",
              json_number(critical.number_or("traces", 0)).c_str(),
              json_number(critical.number_or("spans", 0)).c_str(), total_ns * 1e-6);
  if (const JsonValue* stages = critical.find("stages");
      stages != nullptr && !stages->members().empty()) {
    std::printf("  %-12s %7s %12s %10s\n", "stage", "share", "ms", "slices");
    for (const auto& [name, st] : stages->members()) {
      std::printf("  %-12s %6.1f%% %12.3f %10s\n", name.c_str(),
                  st.number_or("share", 0) * 100.0, st.number_or("ns", 0) * 1e-6,
                  json_number(st.number_or("slices", 0)).c_str());
    }
  }
  if (const JsonValue* flame = critical.find("flame");
      flame != nullptr && !flame->items().empty()) {
    std::printf("  top flame paths (self ms):\n");
    for (const JsonValue& entry : flame->items()) {
      std::printf("  %12.3f %8s x  %s\n", entry.number_or("self_ns", 0) * 1e-6,
                  json_number(entry.number_or("count", 0)).c_str(),
                  entry.string_or("path", "?").c_str());
    }
  }
}

int show_prof(const std::string& path) {
  std::string text;
  if (!slurp(path, text)) {
    std::fprintf(stderr, "kosha_stat: cannot open %s\n", path.c_str());
    return 1;
  }
  const auto parsed = parse_json(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "kosha_stat: %s: %s\n", path.c_str(), parsed.error().c_str());
    return 1;
  }
  const JsonValue& dump = parsed.value();

  // A bare kosha_prof --json report has "stages" at top level; a
  // BENCH_sim_profile.json wraps one under "critical" next to throughput.
  if (dump.find("stages") != nullptr && dump.find("events") == nullptr) {
    print_critical(dump);
    return 0;
  }

  std::printf("simulator profile: %s\n", path.c_str());
  std::printf("  %-24s %s\n", "events", json_number(dump.number_or("events", 0)).c_str());
  std::printf("  %-24s %s\n", "ops", json_number(dump.number_or("ops", 0)).c_str());
  std::printf("  %-24s %.3f\n", "virtual_ms", dump.number_or("virtual_ms", 0));
  std::printf("  %-24s %.3f\n", "wall_ms", dump.number_or("wall_ms", 0));
  std::printf("  %-24s %.0f\n", "events_per_sec", dump.number_or("events_per_sec", 0));
  std::printf("  %-24s %.0f\n", "ops_per_sec", dump.number_or("ops_per_sec", 0));
  if (const JsonValue* cats = dump.find("categories");
      cats != nullptr && !cats->members().empty()) {
    std::printf("\nevent categories%20s %14s\n", "count", "wall_us");
    for (const auto& [name, c] : cats->members()) {
      std::printf("  %-32s %8s %14.1f\n", name.c_str(),
                  json_number(c.number_or("count", 0)).c_str(), c.number_or("wall_us", 0));
    }
  }
  if (const JsonValue* lat = dump.find("latency_us");
      lat != nullptr && !lat->members().empty()) {
    std::printf("\nop latency (virtual us):");
    for (const auto& [q, v] : lat->members()) {
      std::printf("  %s=%.1f", q.c_str(), v.as_number());
    }
    std::printf("\n");
  }
  if (const JsonValue* critical = dump.find("critical"); critical != nullptr) {
    std::printf("\n");
    print_critical(*critical);
  }
  return 0;
}

/// Print every gauge under `prefix` (as `name minus prefix: value`) plus any
/// histogram whose name starts with `hist_prefix`. The self-heal views are
/// exactly this filter applied to a metrics snapshot.
int show_prefixed(const std::string& path, const char* title, const std::string& prefix,
                  const std::string& hist_prefix) {
  std::string text;
  if (!slurp(path, text)) {
    std::fprintf(stderr, "kosha_stat: cannot open %s\n", path.c_str());
    return 1;
  }
  const auto parsed = parse_json(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "kosha_stat: %s: %s\n", path.c_str(), parsed.error().c_str());
    return 1;
  }
  const JsonValue& snapshot = parsed.value();
  std::printf("%s\n", title);
  bool any = false;
  if (const JsonValue* gauges = snapshot.find("gauges"); gauges != nullptr) {
    for (const auto& [name, value] : gauges->members()) {
      if (name.rfind(prefix, 0) != 0) continue;
      any = true;
      std::printf("  %-24s %s\n", name.substr(prefix.size()).c_str(),
                  json_number(value.as_number()).c_str());
    }
  }
  if (const JsonValue* hists = snapshot.find("histograms"); hists != nullptr) {
    for (const auto& [name, h] : hists->members()) {
      if (name.rfind(hist_prefix, 0) != 0) continue;
      any = true;
      std::printf("  %-24s count=%s p50=%.1f p95=%.1f p99=%.1f\n", name.c_str(),
                  json_number(h.number_or("count", 0)).c_str(), h.number_or("p50", 0),
                  h.number_or("p95", 0), h.number_or("p99", 0));
    }
  }
  if (!any) {
    std::printf("  (no matching metrics — was the feature enabled and metrics on?)\n");
  }
  return 0;
}

/// A tiny live run so operators can see a real span tree without wiring a
/// harness: one cross-node CREATE (mount -> koshad forward -> server, plus
/// the replica fan-out when replicas > 0).
int run_demo(const CliArgs& args) {
  ClusterConfig config;
  config.nodes = static_cast<std::size_t>(args.get_int("nodes", 4));
  config.kosha.replicas = static_cast<unsigned>(args.get_int("replicas", 2));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.observability.metrics = true;
  config.observability.tracing = true;
  KoshaCluster cluster(config);

  KoshaMount mount(&cluster.daemon(0));
  if (const auto made = mount.mkdir_p("/home/alice"); !made.ok()) {
    std::fprintf(stderr, "kosha_stat: demo mkdir failed: %s\n",
                 nfs::to_string(made.error()));
    return 1;
  }
  // Isolate the CREATE: everything below is the trace of this one write.
  cluster.tracer().clear();
  if (const auto wrote = mount.write_file("/home/alice/report.txt", "kosha demo\n");
      !wrote.ok()) {
    std::fprintf(stderr, "kosha_stat: demo write failed: %s\n",
                 nfs::to_string(wrote.error()));
    return 1;
  }

  std::printf("span tree for write_file(\"/home/alice/report.txt\") on a %zu-node cluster\n"
              "(seed %llu, %u replicas):\n\n",
              config.nodes, static_cast<unsigned long long>(config.seed),
              config.kosha.replicas);
  std::fputs(render_span_forest(cluster.tracer().spans()).c_str(), stdout);
  std::printf("\nmetrics snapshot:\n%s", cluster.export_metrics_json().c_str());
  return 0;
}

int usage(int code) {
  std::fputs(
      "usage: kosha_stat (--metrics FILE [--csv] | --trace FILE [--tree] | --prof FILE\n"
      "                   | --detector FILE | --repair FILE | --overload FILE | --demo)\n"
      "  --metrics FILE   render a metrics snapshot (JSON) as a table; --csv for rows\n"
      "  --trace FILE     summarize a trace stream (JSONL); --tree for the span forest\n"
      "  --prof FILE      render a simulator profile / critical-path report (JSON)\n"
      "  --detector FILE  failure-detector summary from a metrics snapshot\n"
      "  --repair FILE    repair-daemon summary from a metrics snapshot\n"
      "  --overload FILE  overload-control summary from a metrics snapshot\n"
      "  --demo           trace one cross-node CREATE on a live cluster\n"
      "                   (--nodes N, --replicas K, --seed S)\n",
      code == 0 ? stdout : stderr);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const kosha::CliArgs args(argc, argv);
    if (const std::string err = args.check_known(
            "metrics,trace,csv,tree,prof,detector,repair,overload,demo,nodes,replicas,seed,"
            "help");
        !err.empty()) {
      std::fprintf(stderr, "kosha_stat: %s\n", err.c_str());
      return usage(2);
    }
    if (args.get_bool("help", false)) return usage(0);
    if (args.has("metrics")) {
      return show_metrics(args.get_string("metrics", ""), args.get_bool("csv", false));
    }
    if (args.has("trace")) {
      return show_trace(args.get_string("trace", ""), args.get_bool("tree", false));
    }
    if (args.has("prof")) return show_prof(args.get_string("prof", ""));
    if (args.has("detector")) {
      return show_prefixed(args.get_string("detector", ""), "failure detector",
                           "selfheal.detector.", "selfheal.detect");
    }
    if (args.has("repair")) {
      return show_prefixed(args.get_string("repair", ""), "repair daemon", "selfheal.repair.",
                           "selfheal.repair");
    }
    if (args.has("overload")) {
      return show_prefixed(args.get_string("overload", ""), "overload control", "overload.",
                           "overload.");
    }
    if (args.get_bool("demo", false)) return run_demo(args);
    return usage(2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kosha_stat: %s\n", e.what());
    return 2;
  }
}

#pragma once

// Simulated LAN.
//
// The paper's testbed is a 100 Mb/s switched Ethernet of desktops. The
// simulator models it as a flat network where every message between two
// distinct hosts costs one hop latency of virtual time, plus optional
// per-byte transmission cost. Host liveness is tracked here; an RPC to a
// dead host costs a timeout. All costs accrue on a shared SimClock, and
// message/hop counters feed the analytic-model comparison in §6.1.2.
//
// An optional FaultPlan (net/fault_plan.hpp) enriches the binary up/down
// model with message drops, host brownouts, partitions, and latency
// spikes; senders that can observe loss route through try_message().

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/sim_clock.hpp"
#include "net/fault_plan.hpp"

namespace kosha {
class EventLoop;
class Gauge;
class Histogram;
class MetricsRegistry;
class SimProfiler;
class Tracer;
}  // namespace kosha

namespace kosha::net {

/// Dense host index; hosts are never removed, only marked down.
/// (The alias is introduced in net/fault_plan.hpp; re-stated here for
/// readers.)
inline constexpr HostId kInvalidHost = static_cast<HostId>(-1);

/// Latency/cost model for the simulated LAN.
struct NetworkConfig {
  /// One-way latency of a single message between two distinct hosts.
  SimDuration hop_latency = SimDuration::micros(120);
  /// One-way latency of a loopback message (src == dst): marshalling and
  /// context switches without the wire.
  SimDuration local_latency = SimDuration::micros(54);
  /// Transmission cost per byte of payload (100 Mb/s => 80 ns/byte).
  SimDuration per_byte = SimDuration::nanos(80);
  /// Time wasted detecting that a host is unreachable.
  SimDuration rpc_timeout = SimDuration::millis(500);
};

/// Per-NFS-procedure slice of the traffic accounting. Slots are indexed by
/// nfs::proc_slot(); the network layer treats them as opaque indices so it
/// stays independent of the NFS vocabulary.
struct ProcNetStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;

  friend bool operator==(const ProcNetStats&, const ProcNetStats&) = default;
};

/// Number of per-procedure slots (NFSv3 procs 0..18 plus MOUNT).
inline constexpr std::size_t kNetProcSlots = 20;

/// Message and failure accounting.
struct NetStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t overlay_hops = 0;
  /// Messages lost to the fault plan (random drops and brownouts).
  std::uint64_t drops = 0;
  /// RPC retransmissions performed by clients after a loss.
  std::uint64_t retries = 0;
  /// Messages blocked by an active partition window.
  std::uint64_t partitioned = 0;
  /// Total virtual time requests spent queued behind earlier requests at
  /// their destination's service queue (event-driven execution only — the
  /// serial model admits every request instantly).
  std::uint64_t queue_delay_ns = 0;
  /// Highest number of simultaneously in-flight (arrived, not yet
  /// completed) RPCs observed at any single host.
  std::uint64_t inflight_peak = 0;
  /// Overload control (all zero unless an AdmissionControl is installed):
  /// arrivals bounced because the destination's in-flight bound was full.
  std::uint64_t admission_rejected = 0;
  /// Arrivals bounced because their propagated deadline could not be met
  /// even at the head of the queue.
  std::uint64_t deadline_rejected = 0;
  /// Requests dropped at the service instant: their deadline had passed
  /// while they queued (dead work refused instead of executed).
  std::uint64_t expired = 0;
  /// Background (low-priority) arrivals shed at the tighter background
  /// bound while foreground traffic still fit.
  std::uint64_t shed_low_priority = 0;
  /// Per-procedure breakdown of client RPC traffic (a slice of the
  /// aggregates above; overlay/replication traffic has no procedure).
  std::array<ProcNetStats, kNetProcSlots> per_proc{};

  void reset() { *this = NetStats{}; }

  friend bool operator==(const NetStats&, const NetStats&) = default;
};

/// Flat simulated network: liveness registry + virtual-time cost charging.
class SimNetwork {
 public:
  SimNetwork(NetworkConfig config, SimClock* clock);

  /// Register a new host (initially up); returns its id.
  HostId add_host();

  [[nodiscard]] std::size_t host_count() const { return up_.size(); }
  [[nodiscard]] bool is_up(HostId host) const { return up_.at(host); }
  void set_up(HostId host, bool up) { up_.at(host) = up; }

  /// Charge one one-way message of `payload_bytes` from src to dst.
  /// Local delivery (src == dst) is free.
  void charge_message(HostId src, HostId dst, std::size_t payload_bytes = 0);

  /// Attempt delivery of one message under the installed fault plan.
  /// Returns true and charges latency (plus any spike) on delivery;
  /// returns false without charging when the message is lost (dropped,
  /// browned out, or partitioned) — the caller decides what loss costs
  /// (an RPC client charges its timeout). Without a plan this is
  /// charge_message().
  bool try_message(HostId src, HostId dst, std::size_t payload_bytes = 0);

  /// Install (or clear, with nullptr) the fault plan.
  void set_fault_plan(std::unique_ptr<FaultPlan> plan) { fault_plan_ = std::move(plan); }
  [[nodiscard]] FaultPlan* fault_plan() const { return fault_plan_.get(); }

  // --- event-driven delivery (completion-based RPC path) ------------------

  /// Attach the discrete-event scheduler. Non-null switches NfsClient's
  /// synchronous API onto the completion-based core; null (the default)
  /// keeps the legacy serial call-and-advance model.
  void set_event_loop(EventLoop* loop) { loop_ = loop; }
  [[nodiscard]] EventLoop* loop() const { return loop_; }

  /// Verdict of plan_message: whether the wire delivers, and when.
  struct WirePlan {
    bool delivered = false;
    SimDuration arrival{};
  };

  /// Plan one one-way message sent at `at` without touching the clock:
  /// judge it under the fault plan (same Rng draw order as try_message —
  /// one drop draw per judged message, one spike draw per delivered
  /// non-local message) and compute the arrival time from latency plus
  /// per-byte cost plus any spike. Counters update exactly as
  /// try_message's would; the caller turns `arrival` into a delivery
  /// event instead of advancing the clock.
  [[nodiscard]] WirePlan plan_message(HostId src, HostId dst, std::size_t payload_bytes,
                                      SimDuration at);

  // --- overload control (admission at the service queue) ------------------

  /// Per-host admission bounds; installed by the cluster when overload
  /// control is enabled. max_inflight == 0 (the default) disables every
  /// admission check, keeping the unbounded-FIFO legacy behaviour and
  /// leaving all overload counters untouched.
  struct AdmissionControl {
    unsigned max_inflight = 0;
    /// Tighter bound for background (low-priority) traffic; 0 = use
    /// max_inflight for every class.
    unsigned low_priority_inflight = 0;
  };
  void set_admission(AdmissionControl admission) { admission_ = admission; }
  [[nodiscard]] const AdmissionControl& admission() const { return admission_; }

  /// Admission verdict for one arrival.
  enum class Admit {
    kAdmit,           // queue it
    kRejectInflight,  // destination at its in-flight bound (or the
                      // background bound, for low-priority traffic)
    kRejectDeadline,  // even immediate head-of-queue service would begin
                      // after the request's propagated deadline
  };

  /// Judge one arrival at `host` against the installed admission bounds.
  /// `deadline` is the request's absolute give-up time (0 = none);
  /// `low_priority` marks background traffic (repair, anti-entropy) that
  /// sheds at the tighter bound. Pure with respect to clock and Rng —
  /// only the overload rejection counters move, and only on rejection.
  [[nodiscard]] Admit admit(HostId host, SimDuration arrival, SimDuration deadline,
                            bool low_priority);

  /// Count one request dropped at its service instant because its deadline
  /// passed while it queued (the event-driven execute step refuses the
  /// dead work instead of performing it).
  void note_expired() { ++stats_.expired; }

  /// Current in-flight RPC count at `host` (0 for never-seen hosts). The
  /// repair daemon reads this to yield to foreground load.
  [[nodiscard]] int inflight(HostId host) const {
    return host < inflight_.size() ? inflight_[host] : 0;
  }

  /// Admit a request arriving at `arrival` to `host`'s FIFO service
  /// queue: returns when service can begin (the previous request's
  /// departure, if later) and records the queueing delay in the per-node
  /// `net.queue_delay` histogram.
  [[nodiscard]] SimDuration begin_service(HostId host, SimDuration arrival);
  /// Mark `host`'s server busy until `until` (the departure time of the
  /// request admitted by begin_service).
  void end_service(HostId host, SimDuration until);
  /// Adjust `host`'s in-flight RPC count (arrived, not yet completed),
  /// feeding the per-node `server.inflight` gauge and the peak counter.
  void note_inflight(HostId host, int delta);

  /// Attribute `busy` of virtual service time to `host` in the profiler's
  /// occupancy accounting (no-op when profiling is off). Called by the RPC
  /// execute step, which knows both service bounds.
  void note_service_time(HostId host, SimDuration busy);

  /// Count a timeout whose duration elapses as a scheduled event rather
  /// than an immediate clock advance (the event-driven twin of
  /// charge_timeout).
  void note_timeout() { ++stats_.timeouts; }

  /// Record one client retransmission of procedure `proc_slot` (kept here
  /// so every chaos counter lives in NetStats).
  void count_retry(std::size_t proc_slot) {
    ++stats_.retries;
    if (proc_slot < kNetProcSlots) ++stats_.per_proc[proc_slot].retries;
  }

  /// Attribute one already-charged message to procedure `proc_slot`.
  void note_proc_message(std::size_t proc_slot, std::size_t payload_bytes) {
    if (proc_slot < kNetProcSlots) {
      ++stats_.per_proc[proc_slot].messages;
      stats_.per_proc[proc_slot].bytes += payload_bytes;
    }
  }

  /// Attribute one already-charged timeout to procedure `proc_slot`.
  void note_proc_timeout(std::size_t proc_slot) {
    if (proc_slot < kNetProcSlots) ++stats_.per_proc[proc_slot].timeouts;
  }

  /// Charge a request/response round trip.
  void charge_rtt(HostId src, HostId dst, std::size_t payload_bytes = 0);

  /// Charge one overlay routing hop (message + hop counter).
  void charge_overlay_hop(HostId src, HostId dst);

  /// Charge the cost of discovering that a host is dead.
  void charge_timeout();

  /// Install the cluster's observability sinks (nullptr = off). The network
  /// is the one object every layer already holds, so it doubles as the
  /// distribution point for the metrics registry and tracer.
  void set_observability(MetricsRegistry* metrics, Tracer* tracer) {
    metrics_ = metrics;
    tracer_ = tracer;
  }
  [[nodiscard]] MetricsRegistry* metrics() const { return metrics_; }
  [[nodiscard]] Tracer* tracer() const { return tracer_; }

  /// Attach the simulator profiler (nullptr = off). Distributed alongside
  /// metrics/tracer because every layer already reaches the network.
  void set_profiler(SimProfiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] SimProfiler* profiler() const { return profiler_; }

  [[nodiscard]] SimClock& clock() { return *clock_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] NetStats& stats() { return stats_; }
  [[nodiscard]] const NetStats& stats() const { return stats_; }

 private:
  /// Lazily-resolved per-host instruments (null until first use or when
  /// metrics are off).
  struct HostObs {
    Histogram* queue_delay = nullptr;
    Gauge* inflight = nullptr;
  };
  [[nodiscard]] HostObs& host_obs(HostId host);
  /// Cold half of host_obs: resolve the host's instruments by name (the
  /// one sanctioned allocation, first service per host only).
  void init_host_obs(HostId host, HostObs& obs);

  NetworkConfig config_;
  SimClock* clock_;
  std::vector<bool> up_;
  NetStats stats_;
  std::unique_ptr<FaultPlan> fault_plan_;
  MetricsRegistry* metrics_ = nullptr;
  Tracer* tracer_ = nullptr;
  SimProfiler* profiler_ = nullptr;
  EventLoop* loop_ = nullptr;
  /// Per-host single-server FIFO queues: when each host's service slot
  /// frees up. Only the event-driven path reads or writes these.
  std::vector<SimDuration> busy_until_;
  std::vector<int> inflight_;
  std::vector<HostObs> host_obs_;
  AdmissionControl admission_;
};

}  // namespace kosha::net

#include "lint/index.hpp"

#include <algorithm>
#include <utility>

namespace kosha::lint {
namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

void parse_annotations(std::string_view comment, int line, SourceFile& out) {
  static constexpr std::string_view kTag = "kosha-lint:";
  std::size_t pos = comment.find(kTag);
  while (pos != std::string_view::npos) {
    std::size_t p = pos + kTag.size();
    while (p < comment.size() && comment[p] == ' ') ++p;
    static constexpr std::string_view kAllow = "allow(";
    static constexpr std::string_view kEdge = "edge(";
    if (comment.compare(p, kAllow.size(), kAllow) == 0) {
      p += kAllow.size();
      const std::size_t close = comment.find(')', p);
      if (close != std::string_view::npos) {
        Annotation ann;
        ann.slug = std::string(comment.substr(p, close - p));
        std::size_t r = close + 1;
        if (r < comment.size() && comment[r] == ':') {
          ++r;
          while (r < comment.size() && (comment[r] == ' ' || comment[r] == '\t')) ++r;
          ann.has_reason = r < comment.size();
        }
        out.annotations[line].push_back(std::move(ann));
      }
    } else if (comment.compare(p, kEdge.size(), kEdge) == 0) {
      p += kEdge.size();
      const std::size_t close = comment.find(')', p);
      if (close != std::string_view::npos) {
        EdgeAnnotation edge;
        edge.target = std::string(comment.substr(p, close - p));
        edge.line = line;
        std::size_t r = close + 1;
        if (r < comment.size() && comment[r] == ':') {
          ++r;
          while (r < comment.size() && (comment[r] == ' ' || comment[r] == '\t')) ++r;
          edge.has_reason = r < comment.size();
        }
        out.edge_annotations.push_back(std::move(edge));
      }
    }
    pos = comment.find(kTag, pos + kTag.size());
  }
}

}  // namespace

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          std::string_view opener, std::string_view closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], opener)) ++depth;
    else if (is_punct(toks[i], closer) && --depth == 0) return i + 1;
  }
  return toks.size();
}

std::size_t skip_angles(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "<")) ++depth;
    else if (is_punct(toks[i], ">") && --depth == 0) return i + 1;
    else if (is_punct(toks[i], ";") || is_punct(toks[i], "{")) return toks.size();
  }
  return toks.size();
}

void tokenize(const std::string& src, SourceFile& out) {
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r') {
      advance(1);
      continue;
    }
    // Preprocessor line (only when '#' is the first non-blank character):
    // swallow it whole, honoring backslash continuations.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (src[i] == '\n') break;
        text += src[i];
        advance(1);
      }
      out.tokens.push_back({TokKind::kDirective, std::move(text), start_line});
      continue;
    }
    at_line_start = false;
    // Comments (scanned for annotations, otherwise dropped).
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int start_line = line;
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      parse_annotations(std::string_view(src).substr(i, end - i), start_line, out);
      advance(end - i);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) end = n; else end += 2;
      parse_annotations(std::string_view(src).substr(i, end - i), start_line, out);
      advance(end - i);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, p);
      end = end == std::string::npos ? n : end + closer.size();
      advance(end - i);
      continue;
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && src[p] != quote) {
        if (src[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      advance((p < n ? p + 1 : n) - i);
      continue;
    }
    if (ident_start(c)) {
      std::size_t p = i;
      while (p < n && ident_char(src[p])) ++p;
      out.tokens.push_back({TokKind::kIdent, src.substr(i, p - i), line});
      advance(p - i);
      continue;
    }
    if (c >= '0' && c <= '9') {
      std::size_t p = i;
      while (p < n && (ident_char(src[p]) || src[p] == '.' || src[p] == '\'')) ++p;
      out.tokens.push_back({TokKind::kNumber, src.substr(i, p - i), line});
      advance(p - i);
      continue;
    }
    // Punctuation; keep '::' and '->' whole so member access is one token.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line});
      advance(2);
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    advance(1);
  }
}

// ---------------------------------------------------------------------------
// Index
// ---------------------------------------------------------------------------

namespace {

/// Identifiers that look like `name(` but are never function definitions.
const std::set<std::string>& not_a_function() {
  static const std::set<std::string> kSet = {
      "if",       "for",      "while",        "switch",  "return",   "sizeof",
      "catch",    "new",      "delete",       "throw",   "alignof",  "decltype",
      "operator", "defined",  "static_assert", "assert", "noexcept", "alignas",
      "co_return", "co_await", "co_yield",    "case",    "goto",     "typeid"};
  return kSet;
}

/// Declaration-specifier keywords stripped from collected return types.
const std::set<std::string>& specifier_keywords() {
  static const std::set<std::string> kSet = {
      "static",   "inline", "virtual",  "explicit", "constexpr", "consteval",
      "friend",   "extern", "typename", "template", "const",     "constinit",
      "volatile", "auto",   "class",    "struct",   "nodiscard", "maybe_unused"};
  return kSet;
}

/// Count parameters and defaulted parameters of the list in (open..close).
void count_params(const std::vector<Token>& t, std::size_t open, std::size_t close,
                  int* arity, int* defaults) {
  *arity = 0;
  *defaults = 0;
  int depth = 0;
  bool any = false;
  for (std::size_t k = open; k < close; ++k) {
    if (is_punct(t[k], "(") || is_punct(t[k], "{") || is_punct(t[k], "[") ||
        is_punct(t[k], "<")) {
      ++depth;
    } else if (is_punct(t[k], ")") || is_punct(t[k], "}") || is_punct(t[k], "]") ||
               is_punct(t[k], ">")) {
      --depth;
    } else if (depth == 1 && is_punct(t[k], ",")) {
      ++*arity;
    } else if (depth == 1 && is_punct(t[k], "=")) {
      ++*defaults;
    } else if (depth >= 1) {
      any = true;
    }
  }
  if (any) ++*arity;
  // `f(void)` declares zero parameters.
  if (*arity == 1 && close == open + 3 && is_ident(t[open + 1], "void")) *arity = 0;
  if (*defaults > *arity) *defaults = *arity;
}

}  // namespace

const std::vector<int>* Index::by_name(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

const std::vector<int>* Index::by_qual(const std::string& qual) const {
  const auto it = by_qual_.find(qual);
  return it == by_qual_.end() ? nullptr : &it->second;
}

std::string Index::type_of(const std::string& ident) const {
  const auto it = var_type_.find(ident);
  return it == var_type_.end() ? std::string() : it->second;
}

int Index::enclosing_function(int file, int line) const {
  // Innermost wins: in-class definitions nest inside no other indexed body
  // (bodies are skipped during indexing), so ranges never overlap and the
  // first body whose line span covers `line` is the answer.
  const auto& toks = files_[file].tokens;
  int best = -1;
  int best_span = 0;
  for (std::size_t fi = 0; fi < functions_.size(); ++fi) {
    const Function& f = functions_[fi];
    if (f.file != file || !f.has_body()) continue;
    const int first = toks[f.body_begin].line;
    const int last = toks[f.body_end - 1].line;
    if (line < first || line > last) continue;
    const int span = last - first;
    if (best == -1 || span < best_span) {
      best = static_cast<int>(fi);
      best_span = span;
    }
  }
  return best;
}

void Index::collect_aliases(const SourceFile& f) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text.rfind("unordered_", 0) != 0) continue;
    // using Alias = ... unordered_map<...> ...;
    for (std::size_t back = 1; back <= 6 && back <= i; ++back) {
      const std::size_t j = i - back;
      if (is_punct(t[j], ";") || is_punct(t[j], "{") || is_punct(t[j], "}")) break;
      if (is_punct(t[j], "=") && j >= 2 && t[j - 1].kind == TokKind::kIdent &&
          is_ident(t[j - 2], "using")) {
        unordered_type_aliases_.insert(t[j - 1].text);
        break;
      }
    }
  }
}

void Index::collect_container_decls(const SourceFile& f) {
  // `Container<...> name` followed by ';', '{', '=', ',' or ')' declares
  // `name` with that container. Hash-ordered containers feed D2; every
  // node-based associative container (ordered or not) also feeds A1's
  // hot-path insertion audit.
  static const std::set<std::string> kNodeBased = {
      "map", "set", "multimap", "multiset", "unordered_map", "unordered_set",
      "unordered_multimap", "unordered_multiset"};
  const auto& t = f.tokens;
  auto record = [&](const std::vector<Token>& toks, std::size_t after_type,
                    bool unordered, bool node_based) {
    std::size_t j = after_type;
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") || is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) return;
    if (j + 1 < toks.size() &&
        (is_punct(toks[j + 1], ";") || is_punct(toks[j + 1], "{") ||
         is_punct(toks[j + 1], "=") || is_punct(toks[j + 1], ",") ||
         is_punct(toks[j + 1], ")"))) {
      if (unordered) unordered_names_.insert(toks[j].text);
      if (node_based) node_map_names_.insert(toks[j].text);
    }
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const bool unordered = t[i].text.rfind("unordered_", 0) == 0;
    const bool node_based = kNodeBased.count(t[i].text) > 0;
    if ((unordered || node_based) && i + 1 < t.size() && is_punct(t[i + 1], "<")) {
      const std::size_t end = skip_angles(t, i + 1);
      if (end < t.size() && !is_punct(t[end], "::")) {
        record(t, end, unordered, node_based);
      }
    } else if (unordered_type_aliases_.count(t[i].text) > 0) {
      record(t, i + 1, true, true);
    }
  }
}

void Index::collect_var_types(const SourceFile& f) {
  // `Type name` / `Type* name` / `Type& name` and the smart-pointer /
  // optional wrappers `W<Type> name` record name -> Type when Type is an
  // indexed class, so the call-graph builder can resolve obj->method().
  // Collisions keep the first binding: the map is a conservative hint, not
  // a scope-aware symbol table.
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    std::string type;
    std::size_t j = i + 1;
    if (classes_.count(t[i].text) > 0) {
      type = t[i].text;
    } else if ((t[i].text == "unique_ptr" || t[i].text == "shared_ptr" ||
                t[i].text == "optional") &&
               is_punct(t[i + 1], "<") && i + 2 < t.size() &&
               t[i + 2].kind == TokKind::kIdent && classes_.count(t[i + 2].text) > 0) {
      type = t[i + 2].text;
      j = skip_angles(t, i + 1);
    } else {
      continue;
    }
    while (j < t.size() &&
           (is_punct(t[j], "*") || is_punct(t[j], "&") || is_ident(t[j], "const"))) {
      ++j;
    }
    if (j >= t.size() || t[j].kind != TokKind::kIdent) continue;
    if (j + 1 < t.size() &&
        (is_punct(t[j + 1], ";") || is_punct(t[j + 1], "=") || is_punct(t[j + 1], ",") ||
         is_punct(t[j + 1], ")") || is_punct(t[j + 1], "{"))) {
      var_type_.emplace(t[j].text, type);
    }
  }
}

void Index::index_functions(int file_index) {
  const auto& t = files_[file_index].tokens;

  struct Scope {
    std::string cls;
    int entry_depth = 0;  // brace depth before the scope's '{'
  };
  std::vector<Scope> class_scopes;
  int depth = 0;

  auto collect_ret = [&](std::size_t name_start) {
    std::vector<std::string> ret;
    std::size_t k = name_start;
    while (k > 0) {
      const Token& p = t[k - 1];
      const bool type_ish =
          p.kind == TokKind::kIdent ||
          (p.kind == TokKind::kPunct &&
           (p.text == "::" || p.text == "<" || p.text == ">" || p.text == "*" ||
            p.text == "&" || p.text == ","));
      if (!type_ish) break;
      --k;
    }
    for (std::size_t m = k; m < name_start; ++m) {
      if (t[m].kind == TokKind::kIdent && specifier_keywords().count(t[m].text) > 0) continue;
      if (t[m].kind == TokKind::kIdent) ret.push_back(t[m].text);
    }
    return ret;
  };

  auto try_function = [&](std::size_t i, std::size_t* resume) -> bool {
    // t[i] is an identifier followed by '('.
    std::string cls;
    std::size_t name_start = i;
    const bool dtor = i > 0 && is_punct(t[i - 1], "~");
    if (i >= 2 && is_punct(t[i - 1], "::") && t[i - 2].kind == TokKind::kIdent) {
      cls = t[i - 2].text;
      name_start = i - 2;
      if (cls == "std") return false;
    } else if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) {
      return false;  // member call, not a definition
    } else if (!class_scopes.empty()) {
      cls = class_scopes.back().cls;
    }
    const std::size_t params_end = skip_balanced(t, i + 1, "(", ")");
    if (params_end >= t.size()) return false;

    std::size_t j = params_end;
    // Trailing cv/ref/specifier soup: const, noexcept(, override, final,
    // &, &&, -> trailing-return.
    while (j < t.size()) {
      if (t[j].kind == TokKind::kIdent &&
          (t[j].text == "const" || t[j].text == "noexcept" || t[j].text == "override" ||
           t[j].text == "final" || t[j].text == "mutable")) {
        if (j + 1 < t.size() && t[j].text == "noexcept" && is_punct(t[j + 1], "(")) {
          j = skip_balanced(t, j + 1, "(", ")");
        } else {
          ++j;
        }
        continue;
      }
      if (is_punct(t[j], "&")) { ++j; continue; }
      if (is_punct(t[j], "->")) {
        ++j;
        while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";") &&
               !is_punct(t[j], "(")) {
          ++j;
        }
        continue;
      }
      break;
    }
    // Constructor member-init list.
    if (j < t.size() && is_punct(t[j], ":")) {
      if (cls.empty() || t[i].text != cls) return false;
      ++j;
      while (j < t.size()) {
        while (j < t.size() &&
               (t[j].kind == TokKind::kIdent || is_punct(t[j], "::"))) {
          ++j;
        }
        if (j < t.size() && is_punct(t[j], "<")) j = skip_angles(t, j);
        if (j >= t.size()) return false;
        if (is_punct(t[j], "(")) j = skip_balanced(t, j, "(", ")");
        else if (is_punct(t[j], "{")) j = skip_balanced(t, j, "{", "}");
        else return false;
        if (j < t.size() && is_punct(t[j], ",")) { ++j; continue; }
        break;
      }
    }
    if (j >= t.size()) return false;

    const bool is_ctor_like = dtor || (!cls.empty() && t[i].text == cls);
    Function fn;
    fn.file = file_index;
    fn.cls = cls;
    fn.name = (dtor ? "~" : "") + t[i].text;
    fn.line = t[i].line;
    if (!is_ctor_like) fn.ret = collect_ret(name_start);
    count_params(t, i + 1, params_end, &fn.arity, &fn.min_arity);
    fn.min_arity = fn.arity - fn.min_arity;

    if (is_punct(t[j], "{")) {
      if (fn.ret.empty() && !is_ctor_like && cls.empty()) return false;
      fn.body_begin = j;
      fn.body_end = skip_balanced(t, j, "{", "}");
      *resume = fn.body_end > j ? fn.body_end - 1 : j;
    } else if (is_punct(t[j], ";") || is_punct(t[j], "=")) {
      // `= 0`, `= default`, `= delete` pure/defaulted declarations too.
      if (fn.ret.empty() && !is_ctor_like) return false;
      *resume = j;
    } else {
      return false;
    }

    const int id = static_cast<int>(functions_.size());
    by_name_[fn.name].push_back(id);
    by_qual_[fn.qual()].push_back(id);
    functions_.push_back(std::move(fn));
    return true;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") {
        ++depth;
      } else if (tok.text == "}") {
        --depth;
        while (!class_scopes.empty() && class_scopes.back().entry_depth == depth) {
          class_scopes.pop_back();
        }
      }
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;
    if ((tok.text == "class" || tok.text == "struct") &&
        (i == 0 || (!is_punct(t[i - 1], "<") && !is_punct(t[i - 1], ",") &&
                    !is_ident(t[i - 1], "enum")))) {
      if (i + 1 < t.size() && t[i + 1].kind == TokKind::kIdent) {
        const std::string cname = t[i + 1].text;
        std::size_t j = i + 2;
        int angle = 0;
        for (; j < t.size(); ++j) {
          if (is_punct(t[j], "<")) ++angle;
          else if (is_punct(t[j], ">")) --angle;
          else if (angle == 0 && is_punct(t[j], "{")) {
            classes_.insert(cname);
            class_scopes.push_back({cname, depth});
            ++depth;
            break;
          } else if (angle == 0 && (is_punct(t[j], ";") || is_punct(t[j], "=") ||
                                    is_punct(t[j], "(") || is_punct(t[j], ")"))) {
            break;  // forward declaration, parameter, or elaborated use
          }
        }
        i = j;
        continue;
      }
    }
    if (tok.text == "enum") {
      // Skip the whole enum so enumerators aren't mistaken for anything.
      std::size_t j = i + 1;
      while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";")) ++j;
      if (j < t.size() && is_punct(t[j], "{")) j = skip_balanced(t, j, "{", "}") - 1;
      i = j;
      continue;
    }
    if (i + 1 < t.size() && is_punct(t[i + 1], "(") &&
        not_a_function().count(tok.text) == 0) {
      std::size_t resume = i;
      if (try_function(i, &resume)) i = resume;
    }
  }
}

void Index::build() {
  functions_.clear();
  by_name_.clear();
  by_qual_.clear();
  var_type_.clear();
  classes_.clear();
  unordered_names_.clear();
  node_map_names_.clear();
  unordered_type_aliases_.clear();

  for (const SourceFile& f : files_) collect_aliases(f);
  for (const SourceFile& f : files_) collect_container_decls(f);
  for (int i = 0; i < static_cast<int>(files_.size()); ++i) index_functions(i);
  // Var types need the class set, which function indexing populates.
  for (const SourceFile& f : files_) collect_var_types(f);
}

}  // namespace kosha::lint

# Empty compiler generated dependencies file for test_koshad.
# This may be replaced when dependencies are built.

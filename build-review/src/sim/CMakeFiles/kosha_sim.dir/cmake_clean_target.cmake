file(REMOVE_RECURSE
  "libkosha_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fig6_redirection.dir/fig6_redirection.cpp.o"
  "CMakeFiles/fig6_redirection.dir/fig6_redirection.cpp.o.d"
  "fig6_redirection"
  "fig6_redirection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_redirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

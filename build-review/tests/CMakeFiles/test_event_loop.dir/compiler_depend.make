# Empty compiler generated dependencies file for test_event_loop.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_failover_paths.dir/test_failover_paths.cpp.o"
  "CMakeFiles/test_failover_paths.dir/test_failover_paths.cpp.o.d"
  "test_failover_paths"
  "test_failover_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failover_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

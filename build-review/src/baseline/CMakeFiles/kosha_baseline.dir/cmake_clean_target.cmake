file(REMOVE_RECURSE
  "libkosha_baseline.a"
)

# Empty compiler generated dependencies file for test_cluster_smoke.
# This may be replaced when dependencies are built.

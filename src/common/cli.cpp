#include "common/cli.hpp"

#include <cstdlib>
#include <set>
#include <stdexcept>

namespace kosha {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliArgs::get_string(const std::string& name, std::string fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(fallback) : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string CliArgs::check_known(const std::string& known) const {
  std::set<std::string> allowed;
  std::size_t start = 0;
  while (start <= known.size()) {
    const auto comma = known.find(',', start);
    const auto end = (comma == std::string::npos) ? known.size() : comma;
    if (end > start) allowed.insert(known.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    if (allowed.count(name) == 0) return "unknown flag: --" + name;
  }
  return {};
}

std::string env_or(const char* name, std::string fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? std::move(fallback) : std::string(value);
}

}  // namespace kosha

// koshad — the Kosha loopback daemon: request handlers (paper §4, §5).
//
// This file holds the virtual NFS interface: every handler charges the
// interposition cost, runs its operation through the failover ladder
// (koshad_failover.cpp) against paths resolved by the resolution layer
// (koshad_resolve.cpp), and mirrors mutations to the primary's replicas.

#include "kosha/koshad.hpp"

#include <algorithm>

#include "common/metrics.hpp"
#include "common/path.hpp"
#include "common/tracing.hpp"
#include "kosha/placement.hpp"

namespace kosha {

namespace {

/// Stamp the operation span with the failing status and pass the result on.
template <typename ResultT>
ResultT finish_span(SpanScope& span, ResultT result) {
  if (!result.ok()) span.status(nfs::to_string(result.error()));
  return result;
}

/// Fail an operation: stamp the span, return the status (converts to any
/// NfsResult<T>).
nfs::NfsStat fail(SpanScope& span, nfs::NfsStat status) {
  span.status(nfs::to_string(status));
  return status;
}

}  // namespace

Koshad::Koshad(Runtime* runtime, net::HostId host, std::uint64_t boot)
    : runtime_(runtime),
      host_(host),
      client_(runtime->network, runtime->servers, host, runtime->config.retry,
              runtime->config.rng_seed, boot) {
  if (runtime_->config.overload.enabled) client_.configure_overload(runtime_->config.overload);
  if (runtime_->metrics != nullptr) {
    route_hops_hist_ =
        runtime_->metrics->histogram("koshad.overlay.route_hops", {0, 1, 2, 3, 4, 6, 8, 12, 16});
    failover_depth_hist_ =
        runtime_->metrics->histogram("koshad.failover.depth", {0, 1, 2, 3, 4, 6, 8});
  }
}

bool Koshad::valid_user_name(std::string_view name) {
  if (name.empty() || name == "." || name == ".." || name == kReplicaArea ||
      name == kAnchorArea || name == kMigrationFlag) {
    return false;
  }
  if (name.find('/') != std::string_view::npos) return false;
  // '#' is reserved as the redirection-salt separator (paper §3.3).
  if (name.find(kSaltSeparator) != std::string_view::npos) return false;
  return true;
}

void Koshad::note_forward(net::HostId host) {
  ++stats_.rpcs_forwarded;
  if (host != host_) ++stats_.remote_rpcs;
}

void Koshad::charge_interposition() {
  runtime_->clock->advance(runtime_->config.interposition_cost);
  // Deadline propagation starts here: every handler charges interposition
  // first, so this stamp gives the whole operation — forwarded RPCs,
  // mirror fan-out, failover rounds — one absolute budget that servers
  // check before executing (and the ladder checks before re-resolving).
  const auto& overload = runtime_->config.overload;
  if (overload.enabled && overload.op_budget.ns > 0) {
    client_.set_op_deadline(runtime_->clock->now() + overload.op_budget);
  }
}

// ---------------------------------------------------------------------------
// The virtual NFS interface
// ---------------------------------------------------------------------------

nfs::NfsResult<VirtualHandle> Koshad::root() {
  SpanScope span(tracer(), "koshad.root", host_);
  charge_interposition();
  const auto resolved = resolve_path("/", false);
  if (!resolved.ok()) return fail(span, resolved.error());
  return *vht_.find_by_path("/");
}

nfs::NfsResult<VhReply> Koshad::lookup(VirtualHandle dir, std::string_view name) {
  SpanScope span(tracer(), "koshad.lookup", host_);
  charge_interposition();
  const VhEntry* entry = vht_.find(dir);
  if (entry == nullptr) return fail(span, nfs::NfsStat::kStale);
  const std::string path = path_child(entry->path, name);
  const std::string name_copy(name);
  return finish_span(
      span, with_handle(dir, [&](const Resolved& parent) -> nfs::NfsResult<VhReply> {
        const auto resolved = resolve_entry(parent, path, name_copy, false);
        if (!resolved.ok()) return resolved.error();
        return VhReply{*vht_.find_by_path(path), resolved->attr};
      }));
}

nfs::NfsResult<fs::Attr> Koshad::getattr(VirtualHandle obj) {
  SpanScope span(tracer(), "koshad.getattr", host_);
  charge_interposition();
  return finish_span(span, with_handle(obj, [&](const Resolved& r) {
                       note_forward(r.host);
                       return client_.getattr(r.handle);
                     }));
}

nfs::NfsResult<fs::Attr> Koshad::set_mode(VirtualHandle obj, std::uint32_t mode) {
  SpanScope span(tracer(), "koshad.set_mode", host_);
  charge_interposition();
  return finish_span(span, with_handle(obj, [&](const Resolved& r) {
                       note_forward(r.host);
                       auto result = client_.set_mode(r.handle, mode);
                       if (result.ok()) {
                         if (ReplicaManager* rm = manager_of(r.host)) {
                           stats_.mirror_rpcs += rm->mirror_set_mode(r.stored_path, mode);
                         }
                       }
                       return result;
                     }));
}

nfs::NfsResult<fs::Attr> Koshad::truncate(VirtualHandle obj, std::uint64_t size) {
  SpanScope span(tracer(), "koshad.truncate", host_);
  charge_interposition();
  return finish_span(span, with_handle(obj, [&](const Resolved& r) {
                       note_forward(r.host);
                       auto result = client_.truncate(r.handle, size);
                       if (result.ok()) {
                         if (ReplicaManager* rm = manager_of(r.host)) {
                           stats_.mirror_rpcs += rm->mirror_truncate(r.stored_path, size);
                         }
                       }
                       return result;
                     }));
}

nfs::NfsResult<nfs::ReadReply> Koshad::read(VirtualHandle file, std::uint64_t offset,
                                            std::uint32_t count) {
  SpanScope span(tracer(), "koshad.read", host_);
  charge_interposition();
  return finish_span(span, with_handle(file, [&](const Resolved& r)
                                                 -> nfs::NfsResult<nfs::ReadReply> {
    if (runtime_->config.read_from_replicas) {
      if (auto reply = try_replica_read(r, offset, count)) return *std::move(reply);
    }
    note_forward(r.host);
    auto primary = client_.read(r.handle, offset, count);
    if (!primary.ok() && is_error_retryable(primary.error()) &&
        runtime_->config.read_from_replicas) {
      // Degraded read (paper §4.2's future-work direction): the primary is
      // unreachable but still owns the key (no promotion yet — e.g. a
      // brownout shorter than failure detection), so serve from any
      // reachable replica copy instead of failing the ladder round.
      if (auto degraded = degraded_replica_read(r, offset, count)) return *std::move(degraded);
    }
    return primary;
  }));
}

nfs::NfsResult<std::uint32_t> Koshad::write(VirtualHandle file, std::uint64_t offset,
                                            std::string_view data) {
  SpanScope span(tracer(), "koshad.write", host_);
  charge_interposition();
  return finish_span(span, with_handle(file, [&](const Resolved& r) {
                       note_forward(r.host);
                       auto result = client_.write(r.handle, offset, data);
                       if (result.ok()) {
                         if (ReplicaManager* rm = manager_of(r.host)) {
                           stats_.mirror_rpcs += rm->mirror_write(r.stored_path, offset, data);
                         }
                       }
                       return result;
                     }));
}

nfs::NfsResult<VhReply> Koshad::create(VirtualHandle dir, std::string_view name,
                                       std::uint32_t mode, std::uint32_t uid,
                                       std::uint32_t gid) {
  SpanScope span(tracer(), "koshad.create", host_);
  if (span.active()) span.tag("name", name);
  charge_interposition();
  if (!valid_user_name(name)) return fail(span, nfs::NfsStat::kInval);
  const VhEntry* entry = vht_.find(dir);
  if (entry == nullptr) return fail(span, nfs::NfsStat::kStale);
  const std::string path = path_child(entry->path, name);
  const std::string name_copy(name);
  // Set when our CREATE timed out after transmission: it may have executed
  // with the reply lost, so a later ladder round must adopt the existing
  // file instead of surfacing a spurious kExist (ladder rounds run
  // back-to-back — nothing else can have created the name in between).
  bool maybe_created = false;
  auto result = with_handle(dir, [&](const Resolved& parent) -> nfs::NfsResult<VhReply> {
    note_forward(parent.host);
    auto created = client_.create(parent.handle, name_copy, mode, uid, gid);
    if (!created.ok() && created.error() == nfs::NfsStat::kTimedOut) maybe_created = true;
    if (!created.ok() && created.error() == nfs::NfsStat::kExist && maybe_created) {
      note_forward(parent.host);
      const auto adopted = client_.lookup(parent.handle, name_copy);
      if (!adopted.ok()) return adopted.error();
      if (adopted->attr.type != fs::FileType::kFile) return nfs::NfsStat::kExist;
      created = adopted;
    }
    if (!created.ok()) return created.error();
    const std::string stored = path_child(parent.stored_path, name_copy);
    if (ReplicaManager* rm = manager_of(parent.host)) {
      stats_.mirror_rpcs += rm->mirror_create(stored, mode, uid, gid);
    }
    const VirtualHandle vh = vht_.bind(path, stored, created->handle, fs::FileType::kFile);
    return VhReply{vh, created->attr};
  });
  // A retryable give-up after our CREATE timed out must keep saying "may
  // have executed": downgrading to kUnreachable would license a blind
  // re-issue that then misreads our own success as kExist.
  if (!result.ok() && maybe_created && is_error_retryable(result.error())) {
    return fail(span, nfs::NfsStat::kTimedOut);
  }
  return finish_span(span, result);
}

nfs::NfsResult<VhReply> Koshad::mkdir(VirtualHandle dir, std::string_view name,
                                      std::uint32_t mode, std::uint32_t uid,
                                      std::uint32_t gid) {
  SpanScope span(tracer(), "koshad.mkdir", host_);
  if (span.active()) span.tag("name", name);
  charge_interposition();
  if (!valid_user_name(name)) return fail(span, nfs::NfsStat::kInval);
  const VhEntry* entry = vht_.find(dir);
  if (entry == nullptr) return fail(span, nfs::NfsStat::kStale);
  const std::string path = path_child(entry->path, name);
  const std::string name_copy(name);
  const auto depth = static_cast<unsigned>(path_depth(path));

  // Set when our (non-distributed) MKDIR timed out after transmission: a
  // later ladder round finding the directory must adopt it, not report a
  // spurious kExist. The distributed branch needs no flag — every step of
  // it is lookup-first and re-runnable.
  bool maybe_made = false;
  auto result = with_handle(dir, [&](const Resolved& parent) -> nfs::NfsResult<VhReply> {
    note_forward(parent.host);
    const auto existing = client_.lookup(parent.handle, name_copy);
    if (existing.ok()) {
      if (!maybe_made || existing->attr.type != fs::FileType::kDirectory) {
        return nfs::NfsStat::kExist;
      }
      // Our earlier timed-out MKDIR did execute: finish its bookkeeping.
      const std::string stored = path_child(parent.stored_path, name_copy);
      if (ReplicaManager* rm = manager_of(parent.host)) {
        stats_.mirror_rpcs += rm->mirror_mkdir_p(stored);
      }
      const VirtualHandle vh =
          vht_.bind(path, stored, existing->handle, fs::FileType::kDirectory);
      return VhReply{vh, existing->attr};
    }
    if (existing.error() != nfs::NfsStat::kNoEnt) return existing.error();

    if (!is_distributed_depth(runtime_->config.distribution_level, depth)) {
      // Below the distribution level: stored with the parent (paper §3.2).
      note_forward(parent.host);
      const auto made = client_.mkdir(parent.handle, name_copy, mode, uid, gid);
      if (!made.ok()) {
        if (made.error() == nfs::NfsStat::kTimedOut) maybe_made = true;
        return made.error();
      }
      const std::string stored = path_child(parent.stored_path, name_copy);
      if (ReplicaManager* rm = manager_of(parent.host)) {
        stats_.mirror_rpcs += rm->mirror_mkdir_p(stored);
      }
      const VirtualHandle vh = vht_.bind(path, stored, made->handle, fs::FileType::kDirectory);
      return VhReply{vh, made->attr};
    }

    // Distributed directory: pick the node (with capacity redirection),
    // build the scaffolding hierarchy there, and plant the special link in
    // the parent (paper §3.1, §4.1.4).
    const auto placed = place_directory(name_copy);
    if (!placed.ok()) return placed.error();
    const auto& [node, effective] = placed.value();
    const net::HostId host = host_of(node);
    const auto components = split_path(path);
    const std::string stored = stored_path(components, depth, effective);
    const auto made = remote_mkdir_p(host, stored, mode, uid, gid);
    if (!made.ok()) return made.error();
    if (ReplicaManager* rm = manager_of(host)) rm->register_primary(stored, effective);

    // Plant the special link in the parent directory (paper §3.1/§3.3).
    note_forward(parent.host);
    const auto link = client_.symlink(parent.handle, name_copy, effective);
    if (link.ok()) {
      if (ReplicaManager* rm = manager_of(parent.host)) {
        stats_.mirror_rpcs +=
            rm->mirror_symlink(path_child(parent.stored_path, name_copy), effective);
      }
    }
    const VirtualHandle vh = vht_.bind(path, stored, made->handle, fs::FileType::kDirectory);
    return VhReply{vh, made->attr};
  });
  // Preserve the "may have executed" signal across a failed ladder (see
  // create()): the caller must not blindly re-issue and then misread our
  // own success as kExist.
  if (!result.ok() && maybe_made && is_error_retryable(result.error())) {
    return fail(span, nfs::NfsStat::kTimedOut);
  }
  return finish_span(span, result);
}

nfs::NfsResult<Unit> Koshad::remove(VirtualHandle dir, std::string_view name) {
  SpanScope span(tracer(), "koshad.remove", host_);
  if (span.active()) span.tag("name", name);
  charge_interposition();
  const VhEntry* entry = vht_.find(dir);
  if (entry == nullptr) return fail(span, nfs::NfsStat::kStale);
  const std::string path = path_child(entry->path, name);
  const std::string name_copy(name);
  // Set when our REMOVE timed out after transmission: a later ladder round
  // finding the name gone must treat that as our own success, not report a
  // spurious kNoEnt.
  bool maybe_removed = false;
  auto result = with_handle(dir, [&](const Resolved& parent) -> nfs::NfsResult<Unit> {
    note_forward(parent.host);
    const auto looked = client_.lookup(parent.handle, name_copy);
    if (!looked.ok()) {
      if (looked.error() == nfs::NfsStat::kNoEnt) {
        // Run the removal bookkeeping either way. With the flag this is
        // our own timed-out REMOVE succeeding; without it the primary —
        // the authority — says the name is gone, so any lingering replica
        // copy (e.g. left by an earlier caller that gave up mid-ambiguity)
        // is reconciled away. A no-op when everything already agrees.
        if (ReplicaManager* rm = manager_of(parent.host)) {
          stats_.mirror_rpcs +=
              rm->mirror_remove_recursive(path_child(parent.stored_path, name_copy));
        }
        vht_.drop_subtree(path);
        if (maybe_removed) return Unit{};
      }
      return looked.error();
    }
    if (looked->attr.type != fs::FileType::kFile) return nfs::NfsStat::kIsDir;
    note_forward(parent.host);
    const auto removed = client_.remove(parent.handle, name_copy);
    if (!removed.ok()) {
      if (removed.error() == nfs::NfsStat::kTimedOut) maybe_removed = true;
      return removed.error();
    }
    if (ReplicaManager* rm = manager_of(parent.host)) {
      stats_.mirror_rpcs += rm->mirror_remove(path_child(parent.stored_path, name_copy));
    }
    vht_.drop_subtree(path);
    return Unit{};
  });
  // Preserve the "may have executed" signal across a failed ladder (see
  // create()).
  if (!result.ok() && maybe_removed && is_error_retryable(result.error())) {
    return fail(span, nfs::NfsStat::kTimedOut);
  }
  return finish_span(span, result);
}

nfs::NfsResult<Unit> Koshad::rmdir(VirtualHandle dir, std::string_view name) {
  SpanScope span(tracer(), "koshad.rmdir", host_);
  if (span.active()) span.tag("name", name);
  charge_interposition();
  const VhEntry* entry = vht_.find(dir);
  if (entry == nullptr) return fail(span, nfs::NfsStat::kStale);
  const std::string path = path_child(entry->path, name);
  const std::string name_copy(name);
  const auto depth = static_cast<unsigned>(path_depth(path));

  // Set when our RMDIR (of the plain directory, or of a distributed
  // directory's stored container) timed out after transmission: a later
  // ladder round finding it gone must treat that as our own success, not
  // report a spurious kNoEnt.
  bool maybe_removed = false;
  auto result = with_handle(dir, [&](const Resolved& parent) -> nfs::NfsResult<Unit> {
    note_forward(parent.host);
    const auto looked = client_.lookup(parent.handle, name_copy);
    if (!looked.ok()) {
      if (looked.error() == nfs::NfsStat::kNoEnt) {
        // Bookkeeping either way: our own timed-out RMDIR succeeding, or
        // the authoritative primary saying the name is gone — reconcile
        // lingering replica state (no-op when already consistent).
        if (ReplicaManager* rm = manager_of(parent.host)) {
          if (maybe_removed) {
            stats_.mirror_rpcs +=
                rm->mirror_rmdir(path_child(parent.stored_path, name_copy));
          } else {
            stats_.mirror_rpcs +=
                rm->mirror_remove_recursive(path_child(parent.stored_path, name_copy));
          }
        }
        vht_.drop_subtree(path);
        if (maybe_removed) return Unit{};
      }
      return looked.error();
    }
    if (looked->attr.type == fs::FileType::kFile) return nfs::NfsStat::kNotDir;

    // Distributed directories appear in their parent as special links.
    const bool distributed = looked->attr.type == fs::FileType::kSymlink;
    (void)depth;
    if (!distributed) {
      note_forward(parent.host);
      const auto removed = client_.rmdir(parent.handle, name_copy);
      if (!removed.ok()) {
        if (removed.error() == nfs::NfsStat::kTimedOut) maybe_removed = true;
        return removed.error();
      }
      if (ReplicaManager* rm = manager_of(parent.host)) {
        stats_.mirror_rpcs += rm->mirror_rmdir(path_child(parent.stored_path, name_copy));
      }
      vht_.drop_subtree(path);
      return Unit{};
    }

    // Distributed directory (paper §4.1.5): resolve the link target by
    // hand — so a ladder round can still do the bookkeeping when a
    // timed-out removal already deleted the stored directory — verify
    // emptiness at the storage node, remove the stored directory, prune
    // the now-unused empty scaffolding, and finally drop the special link
    // in the parent.
    note_forward(parent.host);
    const auto target = client_.readlink(looked->handle);
    if (!target.ok()) return target.error();
    const auto owner = route(key_for_name(target.value()));
    const net::HostId storage = host_of(owner.owner);
    const auto components = split_path(path);
    const std::string stored =
        stored_path(components, static_cast<unsigned>(components.size()), target.value());
    ReplicaManager* srm = manager_of(storage);

    const auto child = remote_lookup_path(storage, stored);
    if (child.ok()) {
      note_forward(storage);
      const auto listing = client_.readdir(child->handle);
      if (!listing.ok()) return listing.error();
      if (!listing->entries.empty()) return nfs::NfsStat::kNotEmpty;

      const std::string stored_parent = path_parent(stored);
      const auto stored_dir = remote_lookup_path(storage, stored_parent);
      if (stored_dir.ok()) {
        note_forward(storage);
        const auto removed = client_.rmdir(stored_dir->handle, path_basename(stored));
        if (!removed.ok()) {
          if (removed.error() == nfs::NfsStat::kTimedOut) maybe_removed = true;
          return removed.error();
        }
        if (srm != nullptr) {
          stats_.mirror_rpcs += srm->mirror_rmdir(stored);
          srm->unregister_primary(stored);
        }
        prune_scaffolding(storage, stored_parent, srm);
      }
    } else if (child.error() == nfs::NfsStat::kNoEnt && maybe_removed) {
      // Our earlier timed-out RMDIR already removed the stored directory:
      // finish its bookkeeping and continue to the link cleanup.
      if (srm != nullptr) {
        stats_.mirror_rpcs += srm->mirror_rmdir(stored);
        srm->unregister_primary(stored);
      }
      prune_scaffolding(storage, path_parent(stored), srm);
    } else {
      return child.error();
    }

    // Remove the special link (absent in the directly-visible case, where
    // the stored-directory removal above already deleted the entry).
    note_forward(parent.host);
    const auto link = client_.lookup(parent.handle, name_copy);
    if (link.ok() && link->attr.type == fs::FileType::kSymlink) {
      note_forward(parent.host);
      // kosha-lint: allow(ignore-status): link confirmed present just above; a racing removal reaching absence is the goal state
      (void)client_.remove(parent.handle, name_copy);
      if (ReplicaManager* rm = manager_of(parent.host)) {
        stats_.mirror_rpcs += rm->mirror_remove(path_child(parent.stored_path, name_copy));
      }
    }
    vht_.drop_subtree(path);
    return Unit{};
  });
  // Preserve the "may have executed" signal across a failed ladder (see
  // create()).
  if (!result.ok() && maybe_removed && is_error_retryable(result.error())) {
    return fail(span, nfs::NfsStat::kTimedOut);
  }
  return finish_span(span, result);
}

nfs::NfsResult<nfs::ReaddirReply> Koshad::readdir(VirtualHandle dir) {
  SpanScope span(tracer(), "koshad.readdir", host_);
  charge_interposition();
  return finish_span(
      span, with_handle(dir, [&](const Resolved& r) -> nfs::NfsResult<nfs::ReaddirReply> {
        note_forward(r.host);
        auto listing = client_.readdir(r.handle);
        if (!listing.ok()) return listing;
        nfs::ReaddirReply filtered;
        for (auto& e : listing->entries) {
          // Hide the replica area, migration flags, and raw salted
          // directories; present special links as the directories they
          // stand for.
          if (e.name == kReplicaArea || e.name == kMigrationFlag) continue;
          if (e.name.find(kSaltSeparator) != std::string::npos) continue;
          if (e.type == fs::FileType::kSymlink) e.type = fs::FileType::kDirectory;
          filtered.entries.push_back(std::move(e));
        }
        return filtered;
      }));
}

nfs::NfsResult<Unit> Koshad::rename(VirtualHandle from_dir, std::string_view from_name,
                                    VirtualHandle to_dir, std::string_view to_name) {
  SpanScope span(tracer(), "koshad.rename", host_);
  if (span.active()) span.tag("name", from_name);
  charge_interposition();
  if (!valid_user_name(to_name)) return fail(span, nfs::NfsStat::kInval);
  const VhEntry* from_entry = vht_.find(from_dir);
  const VhEntry* to_entry = vht_.find(to_dir);
  if (from_entry == nullptr || to_entry == nullptr) return fail(span, nfs::NfsStat::kStale);
  const std::string from_path = path_child(from_entry->path, from_name);
  const std::string to_path = path_child(to_entry->path, to_name);
  if (path_is_within(to_path, from_path)) return fail(span, nfs::NfsStat::kInval);
  if (from_path == to_path) return Unit{};
  const std::string to_parent_path = to_entry->path;
  const bool same_parent = from_entry->path == to_entry->path;
  const std::string from_copy(from_name);
  const std::string to_copy(to_name);

  // maybe_renamed: our direct RENAME RPC timed out after transmission — a
  // later ladder round finding the source gone and the destination present
  // must adopt that as our success (with the mirror bookkeeping the lost
  // reply would have triggered), not surface kNoEnt. copy_started: the
  // copy+delete path began materialising the destination — later rounds
  // must not mistake that partial copy for a pre-existing destination.
  bool maybe_renamed = false;
  bool copy_started = false;
  auto result = with_handle(from_dir, [&](const Resolved& from_parent) -> nfs::NfsResult<Unit> {
    const auto to_parent = resolve_path(to_parent_path, false);
    if (!to_parent.ok()) return to_parent.error();

    note_forward(from_parent.host);
    const auto looked = client_.lookup(from_parent.handle, from_copy);
    if (!looked.ok()) {
      if (looked.error() == nfs::NfsStat::kNoEnt) {
        if (maybe_renamed || copy_started) {
          // The move may already be complete: confirm the entry now lives
          // at the destination, then finish the bookkeeping.
          note_forward(to_parent->host);
          const auto moved = client_.lookup(to_parent->handle, to_copy);
          if (moved.ok()) {
            if (maybe_renamed) {
              // Direct rename: the constituent mirror update never ran.
              // (Copy+delete mirrors through its per-op bookkeeping.)
              if (ReplicaManager* rm = manager_of(from_parent.host)) {
                stats_.mirror_rpcs +=
                    rm->mirror_rename(path_child(from_parent.stored_path, from_copy),
                                      path_child(to_parent->stored_path, to_copy));
              }
            }
            vht_.drop_subtree(from_path);
            return Unit{};
          }
        }
        // Not adopted: the authoritative primary says the source is gone,
        // so reconcile any lingering replica copy of it (no-op when
        // already consistent) before surfacing kNoEnt.
        if (ReplicaManager* rm = manager_of(from_parent.host)) {
          stats_.mirror_rpcs +=
              rm->mirror_remove_recursive(path_child(from_parent.stored_path, from_copy));
        }
        vht_.drop_subtree(from_path);
      }
      return looked.error();
    }
    note_forward(to_parent->host);
    const auto existing = client_.lookup(to_parent->handle, to_copy);
    if (existing.ok() && !copy_started) return nfs::NfsStat::kExist;
    if (!existing.ok() && existing.error() != nfs::NfsStat::kNoEnt) return existing.error();

    const bool is_link = looked->attr.type == fs::FileType::kSymlink;

    if (is_link && same_parent) {
      // The cheap case from §4.1.4: rename only the link; the stored
      // directory keeps its (hashed) name, so DHT(hash(target)) still
      // holds and nothing moves.
      note_forward(from_parent.host);
      const auto renamed =
          client_.rename(from_parent.handle, from_copy, from_parent.handle, to_copy);
      if (!renamed.ok()) {
        if (renamed.error() == nfs::NfsStat::kTimedOut) maybe_renamed = true;
        return renamed.error();
      }
      if (ReplicaManager* rm = manager_of(from_parent.host)) {
        stats_.mirror_rpcs +=
            rm->mirror_rename(path_child(from_parent.stored_path, from_copy),
                              path_child(from_parent.stored_path, to_copy));
      }
      vht_.drop_subtree(from_path);
      return Unit{};
    }

    if (is_link) {
      // Moving a distributed directory across directories: copy to the new
      // location, then delete the old (paper §4.1.4).
      copy_started = true;
      if (const auto copied = copy_tree(from_dir, from_copy, to_dir, to_copy); !copied.ok()) {
        return copied.error();
      }
      return remove_tree(from_dir, from_copy);
    }

    if (from_parent.host == to_parent->host) {
      // Plain same-node rename (files and non-distributed directories).
      note_forward(from_parent.host);
      const auto renamed =
          client_.rename(from_parent.handle, from_copy, to_parent->handle, to_copy);
      if (!renamed.ok()) {
        if (renamed.error() == nfs::NfsStat::kTimedOut) maybe_renamed = true;
        return renamed.error();
      }
      if (ReplicaManager* rm = manager_of(from_parent.host)) {
        stats_.mirror_rpcs +=
            rm->mirror_rename(path_child(from_parent.stored_path, from_copy),
                              path_child(to_parent->stored_path, to_copy));
      }
      vht_.drop_subtree(from_path);
      return Unit{};
    }

    // Cross-node move: copy + delete.
    copy_started = true;
    if (const auto copied = copy_tree(from_dir, from_copy, to_dir, to_copy); !copied.ok()) {
      return copied.error();
    }
    if (looked->attr.type == fs::FileType::kFile) return remove(from_dir, from_copy);
    return remove_tree(from_dir, from_copy);
  });
  // Preserve the "may (partially) have executed" signal across a failed
  // ladder (see create()): a direct rename may have applied with its reply
  // lost, and an interrupted copy+delete has certainly materialised state.
  if (!result.ok() && (maybe_renamed || copy_started) && is_error_retryable(result.error())) {
    return fail(span, nfs::NfsStat::kTimedOut);
  }
  return finish_span(span, result);
}

// ---------------------------------------------------------------------------
// Recursive helpers for expensive renames
// ---------------------------------------------------------------------------

nfs::NfsResult<Unit> Koshad::copy_tree(VirtualHandle src_dir, std::string_view src_name,
                                       VirtualHandle dst_dir, std::string_view dst_name) {
  const auto src = lookup(src_dir, src_name);
  if (!src.ok()) return src.error();

  // A copy interrupted by a retryable failure is restarted from the top by
  // the enclosing rename ladder, so it can run into its own partial work.
  // The destination name was verified absent before the first attempt and
  // nothing else runs between rounds, so kExist here always means "ours":
  // adopt the existing object (truncating files) instead of failing.
  if (src->attr.type == fs::FileType::kFile) {
    auto dst = create(dst_dir, dst_name, src->attr.mode, src->attr.uid, src->attr.gid);
    if (!dst.ok() && dst.error() == nfs::NfsStat::kExist) {
      const auto prior = lookup(dst_dir, dst_name);
      if (!prior.ok()) return prior.error();
      if (prior->attr.type != fs::FileType::kFile) return nfs::NfsStat::kExist;
      const auto trunc = truncate(prior->handle, 0);
      if (!trunc.ok()) return trunc.error();
      dst = VhReply{prior->handle, trunc.value()};
    }
    if (!dst.ok()) return dst.error();
    constexpr std::uint32_t kChunk = 64 * 1024;
    std::uint64_t offset = 0;
    for (;;) {
      const auto chunk = read(src->handle, offset, kChunk);
      if (!chunk.ok()) return chunk.error();
      if (!chunk->data.empty()) {
        const auto written = write(dst->handle, offset, chunk->data);
        if (!written.ok()) return written.error();
        offset += chunk->data.size();
      }
      if (chunk->eof || chunk->data.empty()) break;
    }
    return Unit{};
  }

  auto dst = mkdir(dst_dir, dst_name, src->attr.mode, src->attr.uid, src->attr.gid);
  if (!dst.ok() && dst.error() == nfs::NfsStat::kExist) {
    const auto prior = lookup(dst_dir, dst_name);
    if (!prior.ok()) return prior.error();
    if (prior->attr.type != fs::FileType::kDirectory) return nfs::NfsStat::kExist;
    dst = prior.value();
  }
  if (!dst.ok()) return dst.error();
  const auto listing = readdir(src->handle);
  if (!listing.ok()) return listing.error();
  for (const auto& entry : listing->entries) {
    if (const auto copied = copy_tree(src->handle, entry.name, dst->handle, entry.name);
        !copied.ok()) {
      return copied.error();
    }
  }
  return Unit{};
}

nfs::NfsResult<Unit> Koshad::remove_tree(VirtualHandle dir, std::string_view name) {
  const auto target = lookup(dir, name);
  if (!target.ok()) return target.error();
  if (target->attr.type == fs::FileType::kFile) return remove(dir, name);
  const auto listing = readdir(target->handle);
  if (!listing.ok()) return listing.error();
  for (const auto& entry : listing->entries) {
    if (const auto removed = remove_tree(target->handle, entry.name); !removed.ok()) {
      return removed.error();
    }
  }
  return rmdir(dir, name);
}

}  // namespace kosha

#include "pastry/failure_detector.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/tracing.hpp"
#include "pastry/overlay.hpp"

namespace kosha::pastry {

namespace {

/// Wire sizes for byte accounting: a probe/ack is a tiny datagram, an
/// indirect-probe request carries the suspect's id on top.
constexpr std::size_t kProbeBytes = 32;
constexpr std::size_t kIndirectBytes = 48;

}  // namespace

FailureDetector::FailureDetector(FailureDetectorConfig config, PastryOverlay* overlay,
                                 net::SimNetwork* network, EventLoop* loop, NodeId self,
                                 net::HostId host, std::uint64_t boot)
    : config_(config),
      overlay_(overlay),
      network_(network),
      loop_(loop),
      self_(self),
      host_(host),
      boot_(boot) {
  assert(overlay_ != nullptr && network_ != nullptr && loop_ != nullptr);
}

void FailureDetector::start() {
  if (running_) return;
  running_ = true;
  // Grace period: a fresh node has not heard from anyone yet; seed the
  // isolation guard with "now" so it cannot quarantine itself at birth.
  last_ack_time_ = loop_->now();
  overlay_->set_detector(self_, this);
  schedule_tick();
}

void FailureDetector::stop() {
  if (!running_) return;
  running_ = false;
  if (overlay_->detector(self_) == this) overlay_->set_detector(self_, nullptr);
}

bool FailureDetector::is_suspected(NodeId id) const {
  const auto it = peers_.find(id);
  return it != peers_.end() && it->second.status == Status::kSuspected;
}

bool FailureDetector::has_declared_dead(NodeId id) const {
  const auto it = peers_.find(id);
  return it != peers_.end() && it->second.status == Status::kDead;
}

void FailureDetector::schedule_tick() {
  const SimDuration delay = config_.probe_period + loop_->jitter(config_.probe_jitter);
  PastryOverlay* overlay = overlay_;
  const NodeId self = self_;
  loop_->schedule_after(delay, "fd.tick", [overlay, self] {
    if (FailureDetector* d = overlay->detector(self)) d->tick();
  });
}

void FailureDetector::trace_event(const char* name, NodeId peer) {
  Tracer* tracer = network_->tracer();
  if (tracer == nullptr || !tracer->enabled()) return;
  SpanScope span(tracer, name, host_);
  span.tag("peer", peer.to_hex().substr(0, 8));
}

void FailureDetector::prune_state() {
  const std::vector<NodeId> members = overlay_->leaf_set(self_).members();
  for (auto it = peers_.begin(); it != peers_.end();) {
    const bool member = std::find(members.begin(), members.end(), it->first) != members.end();
    const bool keep_verdict =
        it->second.status == Status::kDead && overlay_->is_live(it->first);
    // A death verdict about a still-live peer outlives leaf membership
    // (report_failure removed it from our leaf set; the verdict is what
    // keeps repair from re-inserting it until the peer proves itself).
    // Everything else is forgotten once the peer leaves the monitored set.
    if (!member && !keep_verdict) {
      it = peers_.erase(it);
    } else {
      ++it;
    }
  }
}

void FailureDetector::tick() {
  if (!running_) return;
  prune_state();
  for (const NodeId m : overlay_->leaf_set(self_).members()) {
    if (m == self_) continue;
    if (has_declared_dead(m)) continue;
    probe(m);
  }
  schedule_tick();
}

void FailureDetector::probe(NodeId target) {
  PeerState& state = peers_[target];
  const std::uint64_t seq = ++state.last_seq;
  ++stats_.probes_sent;
  PastryOverlay* overlay = overlay_;
  net::SimNetwork* network = network_;
  EventLoop* loop = loop_;
  const NodeId self = self_;
  const std::uint64_t self_boot = boot_;

  // The miss timer always runs; an ack recorded before it fires wins.
  loop_->schedule_after(config_.probe_timeout, "fd.timeout", [overlay, self, target, seq] {
    if (FailureDetector* d = overlay->detector(self)) d->on_probe_timeout(target, seq);
  });

  const net::HostId target_host = overlay_->host_of(target);
  if (!network_->is_up(target_host)) return;  // dead host: the wire eats it
  const auto request = network_->plan_message(host_, target_host, kProbeBytes, loop_->now());
  if (!request.delivered) return;

  const net::HostId self_host = host_;
  loop_->schedule_at(request.arrival, "fd.probe",
                     [overlay, network, loop, self, self_boot, self_host, target, seq] {
                       FailureDetector* peer = overlay->detector(target);
                       // The target may have crashed while the probe was in
                       // flight; a stopped node never acks.
                       if (peer == nullptr || !peer->on_probe_request(self, self_boot)) return;
                       const auto reply = network->plan_message(peer->host(), self_host,
                                                               kProbeBytes, loop->now());
                       if (!reply.delivered) return;
                       const std::uint64_t peer_boot = peer->boot();
                       loop->schedule_at(reply.arrival, "fd.ack",
                                         [overlay, self, target, seq, peer_boot] {
                                           if (FailureDetector* d = overlay->detector(self)) {
                                             d->on_probe_ack(target, seq, peer_boot);
                                           }
                                         });
                     });
}

bool FailureDetector::on_probe_request(NodeId from, std::uint64_t from_boot) {
  if (!running_) return false;
  maybe_reinstate(from, from_boot);
  return true;
}

void FailureDetector::maybe_reinstate(NodeId peer, std::uint64_t peer_boot) {
  const auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.status != Status::kDead) return;
  if (!overlay_->is_live(peer)) return;
  // Boot verification (rejoin vs split-brain): only the incarnation we
  // declared dead may be reinstated. A revived node carries a fresh boot
  // (and a fresh id), so it joins as a new peer instead.
  if (it->second.last_boot != 0 && it->second.last_boot != peer_boot) return;
  it->second.status = Status::kAlive;
  it->second.misses = 0;
  it->second.failed_rounds = 0;
  ++it->second.generation;
  ++stats_.reinstated;
  trace_event("fd.reinstate", peer);
  // Reintroduction repairs the leaf set off the critical path: the traffic
  // is counted but does not stall whatever foreground op is in flight.
  ClockPauser pause(loop_->clock());
  overlay_->reintroduce(self_, peer);
}

void FailureDetector::on_probe_ack(NodeId target, std::uint64_t seq, std::uint64_t target_boot) {
  if (!running_) return;
  const auto it = peers_.find(target);
  if (it == peers_.end()) return;
  PeerState& state = it->second;
  state.last_ack_seq = std::max(state.last_ack_seq, seq);
  state.last_boot = target_boot;
  last_ack_time_ = loop_->now();
  ++stats_.acks_received;
  state.misses = 0;
  if (state.status == Status::kSuspected) {
    // Direct refutation: the peer answered while confirmation was running.
    state.status = Status::kAlive;
    state.failed_rounds = 0;
    ++state.generation;
    ++stats_.refutations;
    trace_event("fd.refute", target);
  } else if (state.status == Status::kDead) {
    maybe_reinstate(target, target_boot);
  }
}

void FailureDetector::on_probe_timeout(NodeId target, std::uint64_t seq) {
  if (!running_) return;
  const auto it = peers_.find(target);
  if (it == peers_.end()) return;
  PeerState& state = it->second;
  if (state.last_ack_seq >= seq) return;  // answered in time
  ++state.misses;
  ++stats_.probe_misses;
  network_->note_timeout();
  if (state.status == Status::kAlive && state.misses >= config_.suspicion_threshold) {
    state.status = Status::kSuspected;
    state.failed_rounds = 0;
    ++state.generation;
    ++stats_.suspicions;
    trace_event("fd.suspect", target);
    start_confirmation_round(target, state.generation);
  }
}

void FailureDetector::start_confirmation_round(NodeId target, std::uint64_t generation) {
  if (!running_) return;
  const auto it = peers_.find(target);
  if (it == peers_.end() || it->second.status != Status::kSuspected ||
      it->second.generation != generation) {
    return;
  }
  ++stats_.indirect_rounds;
  const SimDuration now = loop_->now();
  const net::HostId target_host = overlay_->host_of(target);
  const bool target_up = network_->is_up(target_host);

  // Ask up to indirect_probes helper neighbors (leaf members this node
  // still believes alive) to probe the suspect on our behalf. Each chain
  // is four one-way legs: ask, relayed probe, ack, report. Any chain that
  // survives the wire refutes the suspicion.
  PastryOverlay* overlay = overlay_;
  const NodeId self = self_;
  bool any_success = false;
  SimDuration first_report{};
  unsigned used = 0;
  for (const NodeId helper : overlay_->leaf_set(self_).members()) {
    if (used >= config_.indirect_probes) break;
    if (helper == target || helper == self_) continue;
    const auto hs = peers_.find(helper);
    if (hs != peers_.end() && hs->second.status != Status::kAlive) continue;
    ++used;
    const net::HostId helper_host = overlay_->host_of(helper);
    if (!network_->is_up(helper_host)) continue;
    const auto ask = network_->plan_message(host_, helper_host, kIndirectBytes, now);
    if (!ask.delivered) continue;
    if (!target_up) continue;  // the relayed probe can never be answered
    const auto relayed = network_->plan_message(helper_host, target_host, kProbeBytes,
                                               ask.arrival);
    if (!relayed.delivered) continue;
    const auto ack = network_->plan_message(target_host, helper_host, kProbeBytes,
                                            relayed.arrival);
    if (!ack.delivered) continue;
    const auto report = network_->plan_message(helper_host, host_, kIndirectBytes, ack.arrival);
    if (!report.delivered) continue;
    if (!any_success || report.arrival < first_report) first_report = report.arrival;
    any_success = true;
  }

  if (any_success) {
    loop_->schedule_at(first_report, "fd.confirm", [overlay, self, target, generation] {
      if (FailureDetector* d = overlay->detector(self)) {
        d->on_confirmation(target, generation, true);
      }
    });
  } else {
    loop_->schedule_after(config_.probe_timeout, "fd.confirm",
                          [overlay, self, target, generation] {
                            if (FailureDetector* d = overlay->detector(self)) {
                              d->on_confirmation(target, generation, false);
                            }
                          });
  }
}

void FailureDetector::on_confirmation(NodeId target, std::uint64_t generation, bool reached) {
  if (!running_) return;
  const auto it = peers_.find(target);
  if (it == peers_.end() || it->second.status != Status::kSuspected ||
      it->second.generation != generation) {
    return;  // refuted or resolved while the round was in flight
  }
  PeerState& state = it->second;
  if (reached) {
    state.status = Status::kAlive;
    state.misses = 0;
    state.failed_rounds = 0;
    ++state.generation;
    ++stats_.refutations;
    trace_event("fd.refute", target);
    return;
  }
  ++state.failed_rounds;
  if (state.failed_rounds < config_.confirm_rounds) {
    start_confirmation_round(target, generation);
    return;
  }
  // All rounds failed. Two isolation signals withhold the verdict instead
  // of declaring the world dead:
  //   * stale-ack: nobody at all acked us within isolation_window;
  //   * majority-down: most of the peers we monitor look down at once AND
  //     no ack arrived for a full probe cycle. A single crash takes out
  //     one leaf-set slot; "everyone died together, silence on the wire"
  //     almost always means *we* are the partitioned one. The ack-recency
  //     gate keeps a genuine mass failure declarable: there the surviving
  //     minority keeps acking every probe period.
  std::size_t distrusted = 0;
  for (const auto& [peer, peer_state] : peers_) {
    (void)peer;
    distrusted += peer_state.status != Status::kAlive;
  }
  const SimDuration since_ack = loop_->now() - last_ack_time_;
  const bool majority_down = peers_.size() >= 4 && 2 * distrusted > peers_.size() &&
                             since_ack > config_.probe_period + config_.probe_timeout * 2;
  if (majority_down || since_ack > config_.isolation_window) {
    ++stats_.quarantined_verdicts;
    state.failed_rounds = 0;
    trace_event("fd.quarantine", target);
    PastryOverlay* overlay = overlay_;
    const NodeId self = self_;
    loop_->schedule_after(config_.probe_period, "fd.quarantine",
                          [overlay, self, target, generation] {
                            if (FailureDetector* d = overlay->detector(self)) {
                              d->on_quarantine_retry(target, generation);
                            }
                          });
    return;
  }
  declare_dead(target, state);
}

void FailureDetector::on_quarantine_retry(NodeId target, std::uint64_t generation) {
  start_confirmation_round(target, generation);
}

void FailureDetector::declare_dead(NodeId target, PeerState& state) {
  state.status = Status::kDead;
  ++state.generation;
  ++stats_.declared_dead;
  trace_event("fd.declare", target);
  // Repair traffic is anti-entropy background work: counted, not charged
  // against whatever foreground operation happens to be in flight.
  ClockPauser pause(loop_->clock());
  overlay_->report_failure(self_, target);
}

}  // namespace kosha::pastry

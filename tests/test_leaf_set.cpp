// Pastry leaf-set unit + property tests: membership maintenance, coverage,
// numerically-closest selection, and replica-target ordering.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "pastry/leaf_set.hpp"

namespace kosha::pastry {
namespace {

NodeId id_at(std::uint64_t low) { return {0, low}; }

TEST(LeafSet, InsertSplitsSides) {
  LeafSet ls(id_at(100), 2);
  EXPECT_TRUE(ls.insert(id_at(90)));
  EXPECT_TRUE(ls.insert(id_at(110)));
  EXPECT_EQ(ls.side(false), std::vector<NodeId>{id_at(90)});
  EXPECT_EQ(ls.side(true), std::vector<NodeId>{id_at(110)});
}

TEST(LeafSet, RejectsOwnerAndDuplicates) {
  LeafSet ls(id_at(100), 2);
  EXPECT_FALSE(ls.insert(id_at(100)));
  EXPECT_TRUE(ls.insert(id_at(90)));
  EXPECT_FALSE(ls.insert(id_at(90)));
  EXPECT_EQ(ls.size(), 1u);
}

TEST(LeafSet, EvictsFarthestWhenFull) {
  LeafSet ls(id_at(100), 2);
  EXPECT_TRUE(ls.insert(id_at(80)));
  EXPECT_TRUE(ls.insert(id_at(70)));
  // 95 is closer than both: evicts 70 (farthest on the smaller side).
  EXPECT_TRUE(ls.insert(id_at(95)));
  EXPECT_TRUE(ls.contains(id_at(95)));
  EXPECT_TRUE(ls.contains(id_at(80)));
  EXPECT_FALSE(ls.contains(id_at(70)));
  // 60 is farther than everything: rejected.
  EXPECT_FALSE(ls.insert(id_at(60)));
}

TEST(LeafSet, RemoveMakesRoom) {
  LeafSet ls(id_at(100), 1);
  EXPECT_TRUE(ls.insert(id_at(90)));
  EXPECT_FALSE(ls.insert(id_at(80)));
  EXPECT_TRUE(ls.remove(id_at(90)));
  EXPECT_FALSE(ls.remove(id_at(90)));
  EXPECT_TRUE(ls.insert(id_at(80)));
}

TEST(LeafSet, UnderfullCoversEverything) {
  LeafSet ls(id_at(100), 4);
  (void)ls.insert(id_at(90));
  EXPECT_TRUE(ls.underfull());
  EXPECT_TRUE(ls.covers(id_at(999'999)));
}

TEST(LeafSet, FullSetCoversOnlyItsSpan) {
  LeafSet ls(id_at(100), 1);
  (void)ls.insert(id_at(90));
  (void)ls.insert(id_at(110));
  EXPECT_FALSE(ls.underfull());
  EXPECT_TRUE(ls.covers(id_at(95)));
  EXPECT_TRUE(ls.covers(id_at(110)));
  EXPECT_FALSE(ls.covers(id_at(120)));
  EXPECT_FALSE(ls.covers(id_at(11)));
}

TEST(LeafSet, ClosestToPicksMinimumDistance) {
  LeafSet ls(id_at(100), 2);
  (void)ls.insert(id_at(90));
  (void)ls.insert(id_at(110));
  (void)ls.insert(id_at(130));
  EXPECT_EQ(ls.closest_to(id_at(89)), id_at(90));
  EXPECT_EQ(ls.closest_to(id_at(101)), id_at(100));
  EXPECT_EQ(ls.closest_to(id_at(124)), id_at(130));
}

TEST(LeafSet, AlternatingMembersInterleavesSides) {
  LeafSet ls(id_at(100), 3);
  (void)ls.insert(id_at(95));
  (void)ls.insert(id_at(90));
  (void)ls.insert(id_at(103));
  (void)ls.insert(id_at(110));
  const auto targets = ls.alternating_members(4);
  ASSERT_EQ(targets.size(), 4u);
  EXPECT_EQ(targets[0], id_at(103));  // overall closest
  EXPECT_EQ(targets[1], id_at(95));   // closest on the other side
  EXPECT_EQ(targets[2], id_at(110));
  EXPECT_EQ(targets[3], id_at(90));
}

TEST(LeafSet, AlternatingMembersDrainsExhaustedSide) {
  LeafSet ls(id_at(100), 3);
  (void)ls.insert(id_at(103));
  (void)ls.insert(id_at(110));
  (void)ls.insert(id_at(120));
  const auto targets = ls.alternating_members(3);
  EXPECT_EQ(targets, (std::vector<NodeId>{id_at(103), id_at(110), id_at(120)}));
}

class LeafSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeafSetProperty, KeepsTheClosestOnEachSide) {
  Rng rng(GetParam());
  const NodeId owner = rng.next_id();
  constexpr unsigned kHalf = 4;
  LeafSet ls(owner, kHalf);
  std::vector<NodeId> all;
  for (int i = 0; i < 200; ++i) {
    const NodeId id = rng.next_id();
    all.push_back(id);
    (void)ls.insert(id);
  }
  // Brute-force the expected sides.
  std::vector<NodeId> smaller = all;
  std::sort(smaller.begin(), smaller.end(),
            [&](NodeId a, NodeId b) { return (owner - a) < (owner - b); });
  std::vector<NodeId> larger = all;
  std::sort(larger.begin(), larger.end(),
            [&](NodeId a, NodeId b) { return (a - owner) < (b - owner); });
  // With 200 random ids, side assignment matches pure direction (no id is
  // near the antipode by chance with overwhelming probability).
  for (unsigned i = 0; i < kHalf; ++i) {
    EXPECT_TRUE(ls.contains(smaller[i])) << "missing close smaller neighbor";
    EXPECT_TRUE(ls.contains(larger[i])) << "missing close larger neighbor";
  }
  EXPECT_EQ(ls.size(), 2 * kHalf);
}

TEST_P(LeafSetProperty, ClosestToMatchesBruteForce) {
  Rng rng(GetParam());
  const NodeId owner = rng.next_id();
  LeafSet ls(owner, 8);
  std::vector<NodeId> members{owner};
  for (int i = 0; i < 16; ++i) {
    const NodeId id = rng.next_id();
    if (ls.insert(id)) members.push_back(id);
  }
  // Re-collect the actual membership (eviction may have dropped some).
  members = ls.members();
  members.push_back(owner);
  for (int trial = 0; trial < 100; ++trial) {
    const Key key = rng.next_id();
    const NodeId expected = *std::min_element(
        members.begin(), members.end(), [&](NodeId a, NodeId b) {
          const auto da = ring_distance(a, key);
          const auto db = ring_distance(b, key);
          return da != db ? da < db : a < b;
        });
    EXPECT_EQ(ls.closest_to(key), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeafSetProperty, ::testing::Values(31, 32, 33, 34, 35));

}  // namespace
}  // namespace kosha::pastry

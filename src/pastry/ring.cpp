#include "pastry/ring.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace kosha::pastry {

namespace {

bool closer(Key target, NodeId a, NodeId b) {
  const Uint128 da = ring_distance(a, target);
  const Uint128 db = ring_distance(b, target);
  if (da != db) return da < db;
  return a < b;
}

}  // namespace

Ring::Ring(std::vector<std::pair<NodeId, Tag>> nodes) : nodes_(std::move(nodes)) {
  std::sort(nodes_.begin(), nodes_.end());
}

std::size_t Ring::lower_bound_index(NodeId id) const {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), id,
                                   [](const auto& p, NodeId v) { return p.first < v; });
  return static_cast<std::size_t>(it - nodes_.begin());
}

void Ring::insert(NodeId id, Tag tag) {
  const std::size_t i = lower_bound_index(id);
  if (i < nodes_.size() && nodes_[i].first == id) {
    throw std::invalid_argument("Ring::insert: duplicate node id");
  }
  nodes_.insert(nodes_.begin() + static_cast<std::ptrdiff_t>(i), {id, tag});
}

void Ring::remove(NodeId id) {
  const std::size_t i = lower_bound_index(id);
  if (i >= nodes_.size() || nodes_[i].first != id) return;
  nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(i));
}

bool Ring::contains(NodeId id) const {
  const std::size_t i = lower_bound_index(id);
  return i < nodes_.size() && nodes_[i].first == id;
}

NodeId Ring::owner(Key key) const {
  assert(!nodes_.empty());
  const std::size_t n = nodes_.size();
  const std::size_t i = lower_bound_index(key);
  // Candidates: the id at/after the key and the one before (circularly).
  const NodeId after = nodes_[i % n].first;
  const NodeId before = nodes_[(i + n - 1) % n].first;
  return closer(key, before, after) ? before : after;
}

Ring::Tag Ring::owner_tag(Key key) const { return tag_of(owner(key)); }

std::vector<NodeId> Ring::neighbors(NodeId id, std::size_t k) const {
  std::vector<NodeId> out;
  const std::size_t n = nodes_.size();
  if (n <= 1 || k == 0) return out;

  const std::size_t self = lower_bound_index(id);
  assert(self < n && nodes_[self].first == id);
  // Two-pointer merge walking outward in both directions.
  std::size_t down = (self + n - 1) % n;
  std::size_t up = (self + 1) % n;
  const std::size_t limit = std::min(k, n - 1);
  while (out.size() < limit) {
    if (down == up) {  // pointers met: one candidate left
      out.push_back(nodes_[up].first);
      break;
    }
    const NodeId a = nodes_[down].first;
    const NodeId b = nodes_[up].first;
    if (closer(id, a, b)) {
      out.push_back(a);
      down = (down + n - 1) % n;
    } else {
      out.push_back(b);
      up = (up + 1) % n;
    }
  }
  return out;
}

Ring::Tag Ring::tag_of(NodeId id) const {
  const std::size_t i = lower_bound_index(id);
  if (i >= nodes_.size() || nodes_[i].first != id) {
    throw std::invalid_argument("Ring::tag_of: unknown node id");
  }
  return nodes_[i].second;
}

}  // namespace kosha::pastry

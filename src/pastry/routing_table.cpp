#include "pastry/routing_table.hpp"

namespace kosha::pastry {

RoutingTable::RoutingTable(NodeId owner, const PastryConfig& config)
    : owner_(owner), config_(config) {
  slots_.resize(static_cast<std::size_t>(config_.digits()) * config_.columns());
}

std::size_t RoutingTable::slot_index(unsigned row, unsigned column) const {
  return static_cast<std::size_t>(row) * config_.columns() + column;
}

std::optional<NodeId> RoutingTable::entry(unsigned row, unsigned column) const {
  return slots_.at(slot_index(row, column));
}

bool RoutingTable::insert(NodeId id) {
  if (id == owner_) return false;
  const unsigned row = owner_.shared_prefix_length(id, config_.bits_per_digit);
  const unsigned column = id.digit(row, config_.bits_per_digit);
  auto& slot = slots_.at(slot_index(row, column));
  if (slot.has_value()) return false;
  slot = id;
  ++populated_;
  return true;
}

bool RoutingTable::remove(NodeId id) {
  if (id == owner_) return false;
  const unsigned row = owner_.shared_prefix_length(id, config_.bits_per_digit);
  const unsigned column = id.digit(row, config_.bits_per_digit);
  auto& slot = slots_.at(slot_index(row, column));
  if (slot != id) return false;
  slot.reset();
  --populated_;
  return true;
}

bool RoutingTable::contains(NodeId id) const {
  const unsigned row = owner_.shared_prefix_length(id, config_.bits_per_digit);
  const unsigned column = id.digit(row, config_.bits_per_digit);
  return slots_.at(slot_index(row, column)) == id;
}

std::optional<NodeId> RoutingTable::next_hop(Key key) const {
  const unsigned row = owner_.shared_prefix_length(key, config_.bits_per_digit);
  if (row >= config_.digits()) return std::nullopt;  // key == owner id
  const unsigned column = key.digit(row, config_.bits_per_digit);
  return slots_.at(slot_index(row, column));
}

std::vector<NodeId> RoutingTable::entries() const {
  std::vector<NodeId> out;
  out.reserve(populated_);
  for (const auto& slot : slots_) {
    if (slot.has_value()) out.push_back(*slot);
  }
  return out;
}

}  // namespace kosha::pastry

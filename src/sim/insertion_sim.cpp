#include "sim/insertion_sim.hpp"

#include <cmath>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/path.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "kosha/placement.hpp"
#include "pastry/ring.hpp"

namespace kosha::sim {

std::vector<std::uint64_t> InsertionSimConfig::paper_capacities() {
  std::vector<std::uint64_t> caps;
  for (int i = 0; i < 8; ++i) caps.push_back(3ull << 30);
  for (int i = 0; i < 4; ++i) caps.push_back(4ull << 30);
  for (int i = 0; i < 4; ++i) caps.push_back(5ull << 30);
  return caps;
}

namespace {

/// Anchor-directory path of a file (the unit of placement/redirection).
std::string anchor_path_of(const std::string& file_path, unsigned level) {
  const auto components = split_path(file_path);
  if (components.size() <= 1) return "/";
  const auto dir_depth = static_cast<unsigned>(components.size() - 1);
  const unsigned anchor = anchor_depth(level, dir_depth);
  if (anchor == 0) return "/";
  std::string out;
  for (unsigned i = 0; i < anchor; ++i) {
    out += '/';
    out += components[i];
  }
  return out;
}

struct Placement {
  pastry::Ring::Tag node = 0;
  unsigned salt = 0;
};

}  // namespace

InsertionCurve simulate_insertion(const trace::FsTrace& trace,
                                  const InsertionSimConfig& config) {
  const std::size_t node_count = config.capacities.size();
  std::uint64_t total_capacity = 0;
  for (const auto capacity : config.capacities) total_capacity += capacity;

  // Precompute each file's anchor path index and anchor name.
  std::vector<std::uint32_t> file_anchor(trace.files.size());
  std::vector<std::string> anchor_names;  // plain name of each anchor path
  {
    std::unordered_map<std::string, std::uint32_t> index;
    for (std::size_t i = 0; i < trace.files.size(); ++i) {
      const std::string path = anchor_path_of(trace.files[i].path, config.level);
      const auto [it, inserted] =
          index.try_emplace(path, static_cast<std::uint32_t>(anchor_names.size()));
      if (inserted) anchor_names.push_back(path_basename(path).empty()
                                               ? std::string("/")
                                               : path_basename(path));
      file_anchor[i] = it->second;
    }
  }

  const Rng base(config.seed);
  const std::size_t grid = 101;
  std::vector<double> grid_sum(grid, 0.0);
  std::vector<std::size_t> grid_n(grid, 0);
  double final_util_sum = 0;
  double final_ratio_sum = 0;
  std::mutex merge_mutex;

  parallel_for(
      config.runs,
      [&](std::size_t run) {
        Rng rng = base.fork(run);
        std::vector<std::pair<pastry::NodeId, pastry::Ring::Tag>> ids;
        ids.reserve(node_count);
        std::vector<pastry::NodeId> id_of_node(node_count);
        for (std::size_t n = 0; n < node_count; ++n) {
          const pastry::NodeId id = rng.next_id();
          id_of_node[n] = id;
          ids.emplace_back(id, static_cast<pastry::Ring::Tag>(n));
        }
        const pastry::Ring ring(std::move(ids));

        std::vector<std::uint64_t> used(node_count, 0);
        std::vector<Placement> placement(anchor_names.size(), Placement{0, ~0u});
        std::vector<double> local_grid(grid, std::nan(""));

        auto node_for_salt = [&](std::uint32_t anchor, unsigned salt) {
          return ring.owner_tag(key_for_name(salted_name(anchor_names[anchor], salt)));
        };
        auto over_threshold = [&](pastry::Ring::Tag node) {
          return static_cast<double>(used[node]) >
                 config.redirect_threshold * static_cast<double>(config.capacities[node]);
        };

        std::uint64_t inserted_bytes = 0;
        std::size_t failures = 0;
        for (std::size_t i = 0; i < trace.files.size(); ++i) {
          const std::uint32_t anchor = file_anchor[i];
          Placement& place = placement[anchor];
          if (place.salt == ~0u) {
            // First file of this directory: place it, redirecting away from
            // hot nodes (paper §3.3).
            place.salt = 0;
            place.node = node_for_salt(anchor, 0);
            for (unsigned s = 0; s < config.redirects && over_threshold(place.node); ++s) {
              place.salt = s + 1;
              place.node = node_for_salt(anchor, place.salt);
            }
          }

          const std::uint64_t size = trace.files[i].size;
          // The iterative redirection also applies when a directory's node
          // can no longer hold a new file: the directory overflows to the
          // next salted location.
          while (used[place.node] + size > config.capacities[place.node] &&
                 place.salt < config.redirects) {
            ++place.salt;
            place.node = node_for_salt(anchor, place.salt);
          }
          if (used[place.node] + size > config.capacities[place.node]) {
            ++failures;
          } else {
            used[place.node] += size;
            inserted_bytes += size;
            // Best-effort replicas on the primary's ring neighbors.
            for (const auto& neighbor :
                 ring.neighbors(id_of_node[place.node], config.replicas)) {
              const auto tag = ring.tag_of(neighbor);
              if (used[tag] + size <= config.capacities[tag]) {
                used[tag] += size;
                inserted_bytes += size;
              }
            }
          }
          const double utilization =
              static_cast<double>(inserted_bytes) / static_cast<double>(total_capacity);
          const auto bucket = static_cast<std::size_t>(utilization * 100.0);
          if (bucket < grid) {
            local_grid[bucket] =
                static_cast<double>(failures) / static_cast<double>(i + 1);
          }
        }

        const std::lock_guard lock(merge_mutex);
        for (std::size_t b = 0; b < grid; ++b) {
          if (!std::isnan(local_grid[b])) {
            grid_sum[b] += local_grid[b];
            ++grid_n[b];
          }
        }
        final_util_sum +=
            static_cast<double>(inserted_bytes) / static_cast<double>(total_capacity);
        final_ratio_sum +=
            static_cast<double>(failures) / static_cast<double>(trace.files.size());
      },
      config.threads);

  InsertionCurve curve;
  curve.failure_ratio_at_pct.assign(grid, std::nan(""));
  for (std::size_t b = 0; b < grid; ++b) {
    if (grid_n[b] > 0) {
      curve.failure_ratio_at_pct[b] = grid_sum[b] / static_cast<double>(grid_n[b]);
    }
  }
  curve.final_utilization = final_util_sum / static_cast<double>(config.runs);
  curve.final_failure_ratio = final_ratio_sum / static_cast<double>(config.runs);
  return curve;
}

}  // namespace kosha::sim

#pragma once

// Deterministic fault injection for the simulated LAN.
//
// A FaultPlan sits between a sender and the wire: every message is judged
// against (in order) link partitions, host brownouts, and a per-message
// drop probability; delivered messages may additionally suffer a latency
// spike. All stochastic draws come from the plan's own seeded Rng, so a
// chaos run with a given plan replays bit-for-bit — the property the
// determinism-guard tests and the Fig-7 fault sweeps rely on.
//
// Failure vocabulary (distinct from SimNetwork's permanent up/down flag):
//   * drop      — one message silently lost; the sender times out.
//   * brownout  — a host stalls for a virtual-time window [start, end):
//                 messages to or from it are lost until it recovers.
//   * partition — no traffic crosses between two host groups during a
//                 virtual-time window; both sides stay individually alive.
//   * spike     — a delivered message pays extra latency.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"

namespace kosha::net {

using HostId = std::uint32_t;

/// Stochastic knobs of a fault plan; windows are added imperatively.
struct FaultPlanConfig {
  std::uint64_t seed = 1;
  /// Probability that any single remote message is silently dropped.
  double drop_probability = 0.0;
  /// Probability that a delivered remote message pays `latency_spike`.
  double latency_spike_probability = 0.0;
  SimDuration latency_spike = SimDuration::millis(2);
};

class FaultPlan {
 public:
  /// Verdict for one message attempt.
  enum class Delivery { kDeliver, kDrop, kBrownout, kPartitioned };

  explicit FaultPlan(FaultPlanConfig config) : config_(config), rng_(config.seed) {}

  /// Stall `host` during the virtual-time window [start, end).
  void add_brownout(HostId host, SimDuration start, SimDuration end) {
    brownouts_.push_back({host, start, end});
  }

  /// Block all traffic between the two groups during [start, end).
  void add_partition(std::vector<HostId> group_a, std::vector<HostId> group_b,
                     SimDuration start, SimDuration end) {
    partitions_.push_back({std::move(group_a), std::move(group_b), start, end});
  }

  /// Test hook: force the n-th subsequently judged remote message
  /// (1 = the very next one) to drop, regardless of probabilities.
  void force_drop_message(std::uint64_t nth_from_now) {
    forced_drops_.push_back(judged_ + nth_from_now);
  }

  /// Judge one remote message sent at virtual time `now`. Local messages
  /// (src == dst) never traverse the wire and are not judged.
  [[nodiscard]] Delivery judge(HostId src, HostId dst, SimDuration now);

  /// Extra latency for one delivered message; zero unless a spike fires.
  /// Consumes one Rng draw iff spikes are configured.
  [[nodiscard]] SimDuration draw_spike();

  [[nodiscard]] bool in_brownout(HostId host, SimDuration now) const;
  /// Latest end of any brownout window covering `now` on `host`
  /// (`now` itself when none is active).
  [[nodiscard]] SimDuration brownout_end(HostId host, SimDuration now) const;
  [[nodiscard]] bool partitioned(HostId a, HostId b, SimDuration now) const;

  [[nodiscard]] const FaultPlanConfig& config() const { return config_; }

 private:
  struct Brownout {
    HostId host;
    SimDuration start, end;
  };
  struct Partition {
    std::vector<HostId> a, b;
    SimDuration start, end;
  };

  FaultPlanConfig config_;
  Rng rng_;
  std::vector<Brownout> brownouts_;
  std::vector<Partition> partitions_;
  std::uint64_t judged_ = 0;
  std::vector<std::uint64_t> forced_drops_;
};

}  // namespace kosha::net

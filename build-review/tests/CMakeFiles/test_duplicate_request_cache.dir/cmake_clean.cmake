file(REMOVE_RECURSE
  "CMakeFiles/test_duplicate_request_cache.dir/test_duplicate_request_cache.cpp.o"
  "CMakeFiles/test_duplicate_request_cache.dir/test_duplicate_request_cache.cpp.o.d"
  "test_duplicate_request_cache"
  "test_duplicate_request_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_duplicate_request_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

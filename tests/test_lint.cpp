// kosha_lint rule-engine tests: every rule (D1-D3, P1-P3, S1, H1) is driven
// over a known-bad fixture snippet and must fire with its exact rule id;
// the annotation escape hatch, the clean path and the exit-code contract
// are covered alongside. Fixtures live in raw strings — the tokenizer
// ignores string literals, which is also why this file survives the
// repo-wide lint walk.

#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using kosha::lint::Diagnostic;
using kosha::lint::Linter;

std::vector<Diagnostic> lint_one(const std::string& path, const std::string& src) {
  Linter linter;
  linter.add_source(path, src);
  return linter.run();
}

std::vector<std::string> rules_of(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> rules;
  rules.reserve(diags.size());
  for (const Diagnostic& d : diags) rules.push_back(d.rule);
  return rules;
}

// ---------------------------------------------------------------------------
// D1 — wall clock / entropy
// ---------------------------------------------------------------------------

TEST(LintD1, FlagsSystemClock) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include <chrono>
void f() { auto t = std::chrono::system_clock::now(); (void)t; }
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].slug, "wall-clock");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintD1, FlagsLibcTimeAndRand) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
long f() { return time(nullptr) + rand(); }
long g() { return std::time(nullptr); }
)cpp");
  EXPECT_EQ(rules_of(diags), (std::vector<std::string>{"D1", "D1", "D1"}));
}

TEST(LintD1, IgnoresMemberFunctionsNamedLikeLibc) {
  // cluster.clock(), network->clock().now(), SimClock::time-style statics:
  // member access and non-std qualification are different symbols.
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
void f(Cluster& cluster) {
  auto& c = cluster.clock();
  auto t = network_->clock().now();
  auto r = runtime();
  auto s = SomeClass::time(3);
  (void)c; (void)t; (void)r; (void)s;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintD1, AllowlistedSeedSeamMayTouchEntropy) {
  const auto diags = lint_one("src/common/rng.cpp", R"cpp(
unsigned seed_from_wall_clock() { return (unsigned)time(nullptr); }
)cpp");
  EXPECT_TRUE(diags.empty());
}

TEST(LintD1, ProfilerSeamMayReadSteadyClock) {
  // src/common/profile.cpp is the one sanctioned wall-clock seam: the
  // profiler measures the simulator and never feeds readings back in.
  const auto diags = lint_one("src/common/profile.cpp", R"cpp(
#include <chrono>
unsigned long long wall_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintD1, SteadyClockOutsideTheProfilerSeamIsStillFlagged) {
  // The identical code anywhere else must trip D1 — the allowlist is a
  // path property, not a pattern property.
  const auto diags = lint_one("src/common/profile_helpers.cpp", R"cpp(
#include <chrono>
unsigned long long wall_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].slug, "wall-clock");
}

TEST(LintD1, StringsAndCommentsAreInvisible) {
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
// rand() and system_clock in a comment are fine
const char* k = "time(nullptr) rand() std::random_device";
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// D2 — unordered iteration
// ---------------------------------------------------------------------------

TEST(LintD2, FlagsRangeForOverUnorderedMember) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include <unordered_map>
struct S {
  std::unordered_map<int, int> members_;
  int sum() {
    int s = 0;
    for (const auto& [k, v] : members_) s += v;
    return s;
  }
};
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
  EXPECT_EQ(diags[0].slug, "unordered-iter");
  EXPECT_EQ(diags[0].line, 7);
}

TEST(LintD2, FlagsIteratorLoop) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include <unordered_set>
struct S {
  std::unordered_set<int> seen_;
  void sweep() {
    for (auto it = seen_.begin(); it != seen_.end();) { ++it; }
  }
};
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
}

TEST(LintD2, SeesDeclarationsAcrossFiles) {
  // The member is declared in a header, iterated in a .cpp — the linter's
  // shared name set ties the two together.
  Linter linter;
  linter.add_source("src/kosha/s.hpp", R"cpp(
#pragma once
#include <unordered_map>
struct S {
  void dump();
  std::unordered_map<long, long> table_;
};
)cpp");
  linter.add_source("src/kosha/s.cpp", R"cpp(
#include "s.hpp"
void S::dump() {
  for (const auto& [k, v] : table_) { (void)k; (void)v; }
}
)cpp");
  const auto diags = linter.run();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
  EXPECT_EQ(diags[0].file, "src/kosha/s.cpp");
}

TEST(LintD2, AnnotationWithReasonSuppresses) {
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
#include <unordered_map>
struct S {
  std::unordered_map<int, int> cache_;
  void sweep() {
    // kosha-lint: allow(unordered-iter): erase-sweep, result independent of order
    for (auto it = cache_.begin(); it != cache_.end();) { ++it; }
  }
};
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintD2, AnnotationWithoutReasonDoesNotSuppress) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include <unordered_map>
struct S {
  std::unordered_map<int, int> cache_;
  void sweep() {
    // kosha-lint: allow(unordered-iter)
    for (auto it = cache_.begin(); it != cache_.end();) { ++it; }
  }
};
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
}

TEST(LintD2, OrderedMapIsFine) {
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
#include <map>
struct S {
  std::map<int, int> sorted_;
  int sum() {
    int s = 0;
    for (const auto& [k, v] : sorted_) s += v;
    return s;
  }
};
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// D3 — event-loop callback discipline
// ---------------------------------------------------------------------------

TEST(LintD3, FlagsBlockingSleep) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include <chrono>
#include <thread>
void f() { std::this_thread::sleep_for(std::chrono::seconds(1)); }
)cpp");
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].rule, "D3");
  EXPECT_EQ(diags[0].slug, "event-callback");
}

TEST(LintD3, FlagsClockMutationInsideScheduledCallback) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
void f(EventLoop& loop, SimClock& clock, SimDuration t) {
  loop.schedule_after(t, [&] { clock.set_now(t); });
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D3");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintD3, SchedulingWithoutClockMutationIsFine) {
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
void f(EventLoop& loop, SimDuration t) {
  loop.schedule_after(t, [&] { do_work(); });
  loop.schedule_at(t, [] { more_work(); });
}
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// Heartbeat/repair-callback-shaped fixtures: the periodic-timer pattern the
// failure detector and anti-entropy daemon use must stay inside the rules.
// ---------------------------------------------------------------------------

TEST(LintD1, FlagsHeartbeatTimerDrivenByWallClock) {
  // A probe deadline taken from the host's clock instead of the loop's
  // virtual time — the classic way a detector stops replaying.
  const auto diags = lint_one("src/pastry/bad_detector.cpp", R"cpp(
#include <chrono>
void FailureDetector::probe_deadline() {
  auto deadline = std::chrono::steady_clock::now();
  (void)deadline;
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
}

TEST(LintD1, LoopJitteredHeartbeatIsClean) {
  const auto diags = lint_one("src/pastry/ok_detector.cpp", R"cpp(
void FailureDetector::schedule_tick(EventLoop* loop, SimDuration period,
                                    SimDuration jitter) {
  loop->schedule_after(period + loop->jitter(jitter), [] { resolve_and_tick(); });
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintD2, FlagsRepairSweepOverUnorderedPeerMap) {
  // A repair pass iterating an unordered peer map: the push order (and so
  // the wire transcript) would depend on hash seeding.
  const auto diags = lint_one("src/kosha/bad_repair.cpp", R"cpp(
#include <unordered_map>
struct RepairDaemon {
  std::unordered_map<unsigned, int> peers_;
  void sweep() {
    for (const auto& [peer, state] : peers_) push_to(peer, state);
  }
};
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
}

TEST(LintD3, FlagsRepairTickMutatingTheClock) {
  // A daemon tick must never warp virtual time; background work pauses the
  // clock (ClockPauser), it does not set it.
  const auto diags = lint_one("src/kosha/bad_repair.cpp", R"cpp(
void RepairDaemon::schedule_tick(EventLoop& loop, SimClock& clock, SimDuration t) {
  loop.schedule_after(t, [&] { clock.set_now(t); tick(); });
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D3");
}

TEST(LintD3, RegistryResolvingRepairTickIsClean) {
  // The sanctioned shape: the callback captures ids, resolves the daemon
  // through the runtime registry at fire time, and reschedules itself.
  const auto diags = lint_one("src/kosha/ok_repair.cpp", R"cpp(
void schedule_tick(EventLoop* loop, Runtime* runtime, unsigned host, SimDuration delay) {
  loop->schedule_after(delay, [runtime, host] {
    if (RepairDaemon* d = runtime->repair_daemon(host)) d->tick();
  });
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

// ---------------------------------------------------------------------------
// P1 — non-idempotent handlers must engage the DRC
// ---------------------------------------------------------------------------

TEST(LintP1, FlagsHandlerMutatingBeforeDrcLookup) {
  const auto diags = lint_one("src/nfs/bad_server.cpp", R"cpp(
NfsResult<HandleReply> NfsServer::create(FileHandle dir, std::string_view name,
                                         RpcContext ctx) {
  const auto inode = store_.create(dir.inode, name);
  if (const DrcEntry* hit = drc_find(ctx, true)) return hit->handle_reply;
  drc_store(ctx, {});
  return HandleReply{};
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P1");
  EXPECT_EQ(diags[0].slug, "drc");
}

TEST(LintP1, FlagsHandlerThatNeverRecordsItsReply) {
  const auto diags = lint_one("src/nfs/bad_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::remove(FileHandle dir, std::string_view name,
                                  RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  return from_fs(store_.remove(dir.inode, name));
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P1");
  EXPECT_NE(diags[0].message.find("drc_store"), std::string::npos);
}

TEST(LintP1, WellFormedHandlerIsClean) {
  const auto diags = lint_one("src/nfs/ok_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::rmdir(FileHandle dir, std::string_view name,
                                 RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.rmdir(dir.inode, name));
  drc_store(ctx, reply);
  return reply;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintP1, IdempotentHandlerNeedsNoDrc) {
  const auto diags = lint_one("src/nfs/ok_server.cpp", R"cpp(
NfsResult<ReadReply> NfsServer::read(FileHandle file) {
  return store_read(file);
}
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// P3 — early rejects must precede the DRC store
// ---------------------------------------------------------------------------

TEST(LintP3, FlagsRejectExpiredAfterDrcStore) {
  const auto diags = lint_one("src/nfs/bad_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::remove(FileHandle dir, std::string_view name,
                                  RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.remove(dir.inode, name));
  drc_store(ctx, reply);
  if (reject_expired(ctx)) return NfsStat::kOverloaded;
  return reply;
}
)cpp");
  ASSERT_GE(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P3");
  EXPECT_EQ(diags[0].slug, "early-reject");
}

TEST(LintP3, FlagsOverloadReplyProducedAfterDrcStore) {
  const auto diags = lint_one("src/nfs/bad_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::rmdir(FileHandle dir, std::string_view name,
                                 RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.rmdir(dir.inode, name));
  drc_store(ctx, reply);
  if (queue_full()) return NfsStat::kOverloaded;
  return reply;
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P3");
  EXPECT_NE(diags[0].message.find("kOverloaded"), std::string::npos);
}

TEST(LintP3, RejectBeforeDrcEngagementIsClean) {
  const auto diags = lint_one("src/nfs/ok_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::remove(FileHandle dir, std::string_view name,
                                  RpcContext ctx) {
  if (reject_expired(ctx)) return NfsStat::kOverloaded;
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.remove(dir.inode, name));
  drc_store(ctx, reply);
  return reply;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintP3, HandlerWithoutEarlyRejectIsClean) {
  const auto diags = lint_one("src/nfs/ok_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::rmdir(FileHandle dir, std::string_view name,
                                 RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.rmdir(dir.inode, name));
  drc_store(ctx, reply);
  return reply;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintP3, AnnotationWithReasonSuppresses) {
  const auto diags = lint_one("src/nfs/annotated_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::remove(FileHandle dir, std::string_view name,
                                  RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.remove(dir.inode, name));
  drc_store(ctx, reply);
  // kosha-lint: allow(early-reject): reply below is advisory, never cached
  if (reject_expired(ctx)) return NfsStat::kOverloaded;
  return reply;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

// ---------------------------------------------------------------------------
// P2 — full RpcContext construction
// ---------------------------------------------------------------------------

TEST(LintP2, FlagsPartialContext) {
  const auto diags = lint_one("src/nfs/bad.cpp", R"cpp(
RpcContext make(net::HostId self, std::uint32_t xid) {
  return RpcContext{self, xid};
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P2");
  EXPECT_EQ(diags[0].slug, "rpc-ctx");
}

TEST(LintP2, FlagsDefaultConstructedLocal) {
  const auto diags = lint_one("src/nfs/bad.cpp", R"cpp(
void f() {
  RpcContext ctx;
  use(ctx);
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P2");
}

TEST(LintP2, FullTripleAndDefaultedParamAreClean) {
  const auto diags = lint_one("src/nfs/ok.cpp", R"cpp(
NfsResult<Unit> handler(FileHandle dir, RpcContext ctx = {});
RpcContext make(net::HostId self, std::uint32_t xid, std::uint64_t boot) {
  RpcContext ctx{self, xid, boot};
  return ctx;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

// ---------------------------------------------------------------------------
// S1 — storage backend seam
// ---------------------------------------------------------------------------

TEST(LintS1, FlagsConcreteBackendOutsideFs) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include "fs/local_fs.hpp"
void f() { kosha::fs::LocalFs store; (void)store; }
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "S1");
  EXPECT_EQ(diags[0].slug, "storage-seam");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintS1, FlagsCasFsInBench) {
  const auto diags = lint_one("bench/bad_bench.cpp", R"cpp(
void f() { kosha::fs::CasFs* store = nullptr; (void)store; }
)cpp");
  EXPECT_EQ(rules_of(diags), (std::vector<std::string>{"S1"}));
}

TEST(LintS1, AllowsConcreteTypesInFsLayerAndTests) {
  const std::string src = R"cpp(
void f() { kosha::fs::LocalFs a; kosha::fs::CasFs* b = nullptr; (void)a; (void)b; }
)cpp";
  EXPECT_TRUE(lint_one("src/fs/cas_fs.cpp", src).empty());
  EXPECT_TRUE(lint_one("tests/test_storage_backend.cpp", src).empty());
}

TEST(LintS1, IgnoresCommentsAndStrings) {
  // Doc comments explaining the LocalFs/CasFs split are fine anywhere; the
  // tokenizer never sees comments or string literals.
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
// LocalFs is wrapped by CasFs; see fs/storage_backend.hpp.
const char* kName = "LocalFs";
)cpp");
  EXPECT_TRUE(diags.empty());
}

TEST(LintS1, InterfaceUseIsClean) {
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
#include "fs/storage_backend.hpp"
void f(kosha::fs::StorageBackend& store) { (void)store.kind(); }
std::unique_ptr<kosha::fs::StorageBackend> g() { return kosha::fs::make_backend({}); }
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// H1 — header hygiene
// ---------------------------------------------------------------------------

TEST(LintH1, FlagsMissingPragmaOnce) {
  const auto diags = lint_one("src/kosha/bad.hpp", R"cpp(
struct S { int x = 0; };
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "H1");
  EXPECT_EQ(diags[0].slug, "header");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(LintH1, FlagsUsingNamespaceInHeader) {
  const auto diags = lint_one("src/kosha/bad.hpp", R"cpp(
#pragma once
using namespace std;
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "H1");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintH1, CleanHeaderPasses) {
  const auto diags = lint_one("src/kosha/ok.hpp", R"cpp(
#pragma once
namespace kosha {
struct S { int x = 0; };
}  // namespace kosha
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// Output and exit codes
// ---------------------------------------------------------------------------

TEST(LintOutput, ExitCodesAndFormats) {
  const auto clean = lint_one("src/kosha/ok.cpp", "int f() { return 1; }\n");
  EXPECT_EQ(kosha::lint::exit_code(clean), 0);

  const auto bad = lint_one("src/kosha/bad.cpp", R"cpp(
void f() { auto r = rand(); (void)r; }
)cpp");
  EXPECT_EQ(kosha::lint::exit_code(bad), 1);
  ASSERT_EQ(bad.size(), 1u);

  const std::string text = kosha::lint::to_text(bad);
  EXPECT_NE(text.find("src/kosha/bad.cpp:2: error:"), std::string::npos);
  EXPECT_NE(text.find("[D1]"), std::string::npos);

  const std::string json = kosha::lint::to_json(bad, 1);
  EXPECT_NE(json.find("\"violations\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"D1\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
}

TEST(LintOutput, DiagnosticsSortedDeterministically) {
  Linter linter;
  linter.add_source("src/z.cpp", "void f() { auto r = rand(); (void)r; }\n");
  linter.add_source("src/a.cpp", "void f() { auto r = rand(); (void)r; }\n");
  const auto diags = linter.run();
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].file, "src/a.cpp");
  EXPECT_EQ(diags[1].file, "src/z.cpp");
}

}  // namespace

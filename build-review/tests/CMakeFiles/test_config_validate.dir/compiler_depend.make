# Empty compiler generated dependencies file for test_config_validate.
# This may be replaced when dependencies are built.

#pragma once

// Content-addressed storage backend (kCas).
//
// Same namespace, inode and attribute semantics as the flat store — CasFs
// inherits LocalFs's directory machinery wholesale — but regular-file
// content lives in a refcounted block store keyed by SHA-1 of the block's
// bytes, with a Merkle-style manifest per file (ordered list of block
// addresses + logical size). Identical content, wherever it appears —
// two users' copies of the same file, or a replica pushed from another
// node's primary — resolves to the same blocks, so the physical footprint
// dedups across files and replicas (the IPFS/Merkle-DAG idea applied to
// the paper's per-node /kosha_store partition).
//
// Integrity by hash: when verify_reads is on, every block a read touches
// is re-hashed against its address; a mismatch fails the read with
// FsStatus::kCorrupt, which the failover ladder treats as a degraded read
// (serve from a replica) and the anti-entropy sweep treats as a hole
// (re-push from the primary). verify_subtree() is the sweep's probe.
//
// Accounting stays LOGICAL (see storage_backend.hpp): used_bytes() moves
// exactly as the flat store's would, and the dedup saving is reported
// separately as stats().dedup_bytes = logical - physical.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "fs/local_fs.hpp"
#include "fs/storage_backend.hpp"

namespace kosha::fs {

class CasFs : public LocalFs {
 public:
  explicit CasFs(const StorageConfig& config);

  [[nodiscard]] BackendKind kind() const override { return BackendKind::kCas; }

  [[nodiscard]] FsResult<Unit> truncate(InodeId inode, std::uint64_t size) override;
  [[nodiscard]] FsResult<std::uint32_t> write(InodeId inode, std::uint64_t offset,
                                              std::string_view data) override;
  [[nodiscard]] FsResult<std::string> read(InodeId inode, std::uint64_t offset,
                                           std::uint32_t count) const override;

  void purge() override;

  [[nodiscard]] StorageStats stats() const override;
  [[nodiscard]] std::vector<BlockRef> file_blocks(InodeId inode) const override;
  [[nodiscard]] bool has_block(const BlockId& id) const override;
  [[nodiscard]] std::uint64_t verify_subtree(std::string_view path) const override;
  bool corrupt_file_block(InodeId inode, std::size_t chunk_index) override;

 protected:
  /// The namespace is letting go of an inode (remove/rename-over/
  /// recursive removal): drop its manifest before the base frees it.
  void release(InodeId id) override;
  /// Files answer getattr/subtree_bytes from the manifest, not the
  /// (always empty) inline data.
  [[nodiscard]] std::uint64_t file_content_bytes(InodeId id) const override;

 private:
  struct Block {
    std::string bytes;
    std::uint64_t refs = 0;
  };
  struct Manifest {
    std::uint64_t size = 0;          // logical file size
    std::vector<BlockId> blocks;     // chunk i covers [i*chunk, ...)
  };

  /// Reassemble a file's full logical content (no verification — this is
  /// the internal read-modify-write path; verified reads go through
  /// read()).
  [[nodiscard]] std::string materialize(const Manifest& manifest) const;
  /// Replace a file's content: chunk, store blocks (new refs first, so
  /// blocks shared with the old manifest never hit refcount zero), drop
  /// the old manifest, and move used_bytes by the size delta.
  void set_content(InodeId id, const std::string& content);
  /// Drop every block reference of the file's manifest (if any) and the
  /// logical bytes it accounted for.
  void drop_manifest(InodeId id);
  void ref_block(const BlockId& id, std::string_view bytes);
  void unref_block(const BlockId& id);
  /// Corrupt-chunk count for one file inode.
  [[nodiscard]] std::uint64_t verify_inode(InodeId id) const;
  /// Recursive corrupt-chunk count under an inode.
  [[nodiscard]] std::uint64_t verify_walk(InodeId id) const;

  std::uint64_t chunk_bytes_;
  bool verify_reads_;
  std::map<BlockId, Block> blocks_;
  std::map<InodeId, Manifest> manifests_;
  std::uint64_t physical_bytes_ = 0;
  /// Mutable: read() is logically const but counts verification failures.
  mutable std::uint64_t verify_failures_ = 0;
};

}  // namespace kosha::fs

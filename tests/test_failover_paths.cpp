// Failover through every operation type: each koshad op must survive the
// crash of the node it is about to talk to (paper §4.4 claims transparent
// handling for all accesses, not just reads).

#include <gtest/gtest.h>

#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "kosha/placement.hpp"

namespace kosha {
namespace {

struct Scenario {
  KoshaCluster cluster;
  KoshaMount mount;

  explicit Scenario(std::uint64_t seed)
      : cluster([seed] {
          ClusterConfig config;
          config.nodes = 8;
          config.kosha.distribution_level = 1;
          config.kosha.replicas = 2;
          config.seed = seed;
          return config;
        }()),
        mount(&cluster.daemon(0)) {}

  /// Crash the node currently storing `path` (never host 0). Returns false
  /// if it happens to live on the client host.
  bool crash_primary_of(const std::string& path) {
    const auto vh = mount.resolve(path);
    if (!vh.ok()) return false;
    const net::HostId primary =
        cluster.daemon(0).handle_table().find(*vh)->real.server;
    if (primary == 0) return false;
    cluster.fail_node(primary);
    return true;
  }
};

TEST(FailoverPaths, GetattrAfterCrash) {
  Scenario s(201);
  ASSERT_TRUE(s.mount.mkdir_p("/a").ok());
  ASSERT_TRUE(s.mount.write_file("/a/f", "x").ok());
  if (!s.crash_primary_of("/a/f")) return;
  const auto attr = s.mount.stat("/a/f");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 1u);
}

TEST(FailoverPaths, WriteAfterCrash) {
  Scenario s(202);
  ASSERT_TRUE(s.mount.mkdir_p("/w").ok());
  ASSERT_TRUE(s.mount.write_file("/w/f", "before").ok());
  if (!s.crash_primary_of("/w/f")) return;
  ASSERT_TRUE(s.mount.write_file("/w/f", "after").ok());
  EXPECT_EQ(s.mount.read_file("/w/f").value(), "after");
}

TEST(FailoverPaths, CreateInDirectoryWhoseNodeCrashed) {
  Scenario s(203);
  ASSERT_TRUE(s.mount.mkdir_p("/c").ok());
  ASSERT_TRUE(s.mount.write_file("/c/first", "1").ok());
  if (!s.crash_primary_of("/c")) return;
  // Creating a new file must re-resolve the promoted directory.
  ASSERT_TRUE(s.mount.write_file("/c/second", "2").ok());
  EXPECT_EQ(s.mount.read_file("/c/first").value(), "1");
  EXPECT_EQ(s.mount.read_file("/c/second").value(), "2");
  EXPECT_EQ(s.mount.list("/c")->size(), 2u);
}

TEST(FailoverPaths, RemoveAfterCrash) {
  Scenario s(204);
  ASSERT_TRUE(s.mount.mkdir_p("/r").ok());
  ASSERT_TRUE(s.mount.write_file("/r/f", "x").ok());
  if (!s.crash_primary_of("/r")) return;
  ASSERT_TRUE(s.mount.remove("/r/f").ok());
  EXPECT_FALSE(s.mount.exists("/r/f"));
}

TEST(FailoverPaths, MkdirAfterRootOwnerCrash) {
  Scenario s(205);
  ASSERT_TRUE(s.mount.mkdir_p("/warm").ok());  // warm the root handle cache
  const net::HostId root_owner = s.cluster.overlay().ring().owner_tag(root_key());
  if (root_owner == 0) return;
  s.cluster.fail_node(root_owner);
  // New top-level directory requires the (promoted) root.
  ASSERT_TRUE(s.mount.mkdir_p("/fresh").ok());
  ASSERT_TRUE(s.mount.write_file("/fresh/f", "ok").ok());
  EXPECT_EQ(s.mount.read_file("/fresh/f").value(), "ok");
}

TEST(FailoverPaths, ReaddirAfterCrash) {
  Scenario s(206);
  ASSERT_TRUE(s.mount.mkdir_p("/ls").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(s.mount.write_file("/ls/f" + std::to_string(i), "x").ok());
  }
  if (!s.crash_primary_of("/ls")) return;
  const auto listing = s.mount.list("/ls");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 5u);
}

TEST(FailoverPaths, RenameAfterCrash) {
  Scenario s(207);
  ASSERT_TRUE(s.mount.mkdir_p("/mv").ok());
  ASSERT_TRUE(s.mount.write_file("/mv/old", "data").ok());
  if (!s.crash_primary_of("/mv")) return;
  ASSERT_TRUE(s.mount.rename("/mv/old", "/mv/new").ok());
  EXPECT_EQ(s.mount.read_file("/mv/new").value(), "data");
  EXPECT_FALSE(s.mount.exists("/mv/old"));
}

TEST(FailoverPaths, RmdirDistributedAfterCrash) {
  Scenario s(208);
  ASSERT_TRUE(s.mount.mkdir_p("/gone").ok());
  if (!s.crash_primary_of("/gone")) return;
  ASSERT_TRUE(s.mount.rmdir("/gone").ok());
  EXPECT_FALSE(s.mount.exists("/gone"));
}

TEST(FailoverPaths, ErrorWhenAllCopiesLost) {
  // With K=1, killing the primary and its single replica in quick
  // succession loses the data; the client gets a clean error, not a hang
  // or corruption.
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 1;
  config.seed = 209;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/doomed").ok());
  ASSERT_TRUE(mount.write_file("/doomed/f", "x").ok());
  const auto vh = mount.resolve("/doomed/f");
  const net::HostId primary = cluster.daemon(0).handle_table().find(*vh)->real.server;
  if (primary == 0) return;
  const auto targets = cluster.replicas(primary).targets();
  ASSERT_EQ(targets.size(), 1u);
  const net::HostId replica = cluster.overlay().host_of(targets[0]);
  if (replica == 0) return;
  // Kill both before any repair can complete on the second.
  cluster.fail_node(primary);
  // The replica has been promoted; kill it and its fresh replica too, so
  // no copy survives anywhere.
  const auto vh2 = mount.resolve("/doomed/f");
  if (vh2.ok()) {
    const net::HostId promoted = cluster.daemon(0).handle_table().find(*vh2)->real.server;
    if (promoted == 0) return;
    const auto new_targets = cluster.replicas(promoted).targets();
    cluster.fail_node(promoted);
    for (const auto t : new_targets) {
      if (!cluster.overlay().is_live(t)) continue;
      const auto host = cluster.overlay().host_of(t);
      if (host != 0) cluster.fail_node(host);
    }
  }
  const auto read = mount.read_file("/doomed/f");
  if (!read.ok()) {
    EXPECT_EQ(read.error(), nfs::NfsStat::kNoEnt);
  }
}

}  // namespace
}  // namespace kosha

file(REMOVE_RECURSE
  "CMakeFiles/test_nfs.dir/test_nfs.cpp.o"
  "CMakeFiles/test_nfs.dir/test_nfs.cpp.o.d"
  "test_nfs"
  "test_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// KoshaConfig::validate(): each cross-field constraint is rejected with a
// diagnostic, and KoshaCluster refuses to construct on an invalid config.

#include <gtest/gtest.h>

#include <stdexcept>

#include "kosha/cluster.hpp"

namespace kosha {
namespace {

TEST(ConfigValidate, DefaultConfigIsValid) {
  KoshaConfig config;
  EXPECT_TRUE(config.validate().empty()) << config.validate();
}

TEST(ConfigValidate, RejectsZeroDistributionLevel) {
  KoshaConfig config;
  config.distribution_level = 0;
  const std::string err = config.validate();
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("distribution_level"), std::string::npos) << err;
}

TEST(ConfigValidate, RejectsZeroMaxRedirects) {
  KoshaConfig config;
  config.max_redirects = 0;
  const std::string err = config.validate();
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("max_redirects"), std::string::npos) << err;
}

TEST(ConfigValidate, RejectsMoreReplicasThanLeafSetHalf) {
  KoshaConfig config;
  config.replicas = config.pastry.leaf_half() + 1;
  const std::string err = config.validate();
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("replicas"), std::string::npos) << err;
  // Exactly the leaf-set half is the boundary and must be accepted.
  config.replicas = config.pastry.leaf_half();
  EXPECT_TRUE(config.validate().empty()) << config.validate();
}

TEST(ConfigValidate, RejectsOutOfRangeRedirectThreshold) {
  KoshaConfig config;
  config.redirect_threshold = 0.0;
  EXPECT_FALSE(config.validate().empty());
  config.redirect_threshold = 1.5;
  EXPECT_FALSE(config.validate().empty());
  config.redirect_threshold = 1.0;
  EXPECT_TRUE(config.validate().empty());
}

TEST(ConfigValidate, RejectsDegenerateStorageChunkSize) {
  KoshaConfig config;
  config.storage.chunk_bytes = 0;
  const std::string err = config.validate();
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("chunk_bytes"), std::string::npos) << err;
  config.storage.chunk_bytes = (64ull << 20) + 1;
  EXPECT_FALSE(config.validate().empty());
  // The 64 MiB boundary itself is accepted, as is a 1-byte chunk.
  config.storage.chunk_bytes = 64ull << 20;
  EXPECT_TRUE(config.validate().empty()) << config.validate();
  config.storage.chunk_bytes = 1;
  EXPECT_TRUE(config.validate().empty()) << config.validate();
}

TEST(ConfigValidate, StorageBackendChoicesAreValid) {
  KoshaConfig config;
  config.storage.backend = fs::BackendKind::kCas;
  EXPECT_TRUE(config.validate().empty()) << config.validate();
}

TEST(ConfigValidate, ClusterConstructionThrowsOnInvalidConfig) {
  ClusterConfig config;
  config.nodes = 2;
  config.kosha.distribution_level = 0;
  EXPECT_THROW({ KoshaCluster cluster(config); }, std::invalid_argument);
}

TEST(ConfigValidate, ClusterConstructionThrowsOnExcessReplicas) {
  ClusterConfig config;
  config.nodes = 2;
  config.kosha.replicas = config.kosha.pastry.leaf_half() + 1;
  EXPECT_THROW({ KoshaCluster cluster(config); }, std::invalid_argument);
}

}  // namespace
}  // namespace kosha

// The paper's deployment story (§1): an administrator moves users' home
// directories onto /kosha mount points. Users keep their workflows; the
// cluster absorbs growth by adding desktops, and capacity-pressured
// directories are redirected transparently (§3.3).

#include <cstdio>
#include <string>

#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "trace/mab.hpp"

int main() {
  using namespace kosha;

  // Start small: four desktops with modest contributions.
  ClusterConfig config;
  config.nodes = 4;
  config.node_capacity_bytes = 24ull << 20;  // deliberately tight
  config.kosha.distribution_level = 2;  // project dirs get their own nodes
  config.kosha.replicas = 1;
  config.kosha.max_redirects = 4;
  config.kosha.redirect_threshold = 0.55;
  KoshaCluster cluster(config);
  KoshaMount admin(&cluster.daemon(0));

  // The administrator provisions home directories.
  const char* users[] = {"ursula", "victor", "wanda", "xavier", "yolanda", "zach"};
  for (const auto* user : users) {
    (void)admin.mkdir_p(std::string("/") + user);
  }
  std::printf("provisioned %zu home directories across %zu desktops\n\n",
              std::size(users), cluster.live_hosts().size());

  // Users fill their homes until redirection starts kicking in.
  std::size_t written = 0;
  std::size_t failed = 0;
  for (int round = 0; round < 12; ++round) {
    for (const auto* user : users) {
      const std::string dir = std::string("/") + user + "/proj" + std::to_string(round);
      if (!admin.mkdir_p(dir).ok()) {
        ++failed;
        continue;
      }
      for (int f = 0; f < 4; ++f) {
        const auto result = admin.write_file(dir + "/data" + std::to_string(f),
                                             trace::mab_content(96 * 1024, written));
        if (result.ok()) {
          ++written;
        } else {
          ++failed;
        }
      }
    }
  }
  std::printf("wrote %zu files (%zu failures); koshad performed %llu capacity "
              "redirections\n",
              written, failed,
              static_cast<unsigned long long>(cluster.daemon(0).stats().redirects));
  for (const auto host : cluster.live_hosts()) {
    std::printf("  host %u utilization: %5.1f%%\n", host,
                100.0 * cluster.server(host).store().utilization());
  }

  // IT buys four more desktops; the overlay re-divides the key space and
  // migrates directories to the newcomers automatically.
  std::printf("\nadding 4 desktops...\n");
  for (int i = 0; i < 4; ++i) (void)cluster.add_node(64ull << 20);
  for (const auto host : cluster.live_hosts()) {
    std::printf("  host %u utilization: %5.1f%%\n", host,
                100.0 * cluster.server(host).store().utilization());
  }

  // Everything is still where the users expect it.
  std::size_t intact = 0;
  std::size_t checked = 0;
  for (const auto* user : users) {
    for (int round = 0; round < 12; ++round) {
      const std::string path =
          std::string("/") + user + "/proj" + std::to_string(round) + "/data0";
      if (!admin.exists(path)) continue;
      ++checked;
      if (admin.read_file(path).ok()) ++intact;
    }
  }
  std::printf("\nspot check after expansion: %zu/%zu sampled files intact\n", intact, checked);
  return 0;
}

# Empty compiler generated dependencies file for test_routing_table.
# This may be replaced when dependencies are built.

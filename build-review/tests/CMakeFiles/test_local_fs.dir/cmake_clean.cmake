file(REMOVE_RECURSE
  "CMakeFiles/test_local_fs.dir/test_local_fs.cpp.o"
  "CMakeFiles/test_local_fs.dir/test_local_fs.cpp.o.d"
  "test_local_fs"
  "test_local_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "common/metrics.hpp"

#include <algorithm>

#include "common/json.hpp"

namespace kosha {

std::vector<double> Histogram::default_bounds() {
  std::vector<double> bounds;
  double decade = 1.0;
  for (int i = 0; i < 8; ++i) {  // 1 .. 5e7
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
    decade *= 10.0;
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_bounds();
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  sum_ += v;
  ++count_;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= rank) {
      // Bucket i spans (lo, hi]; interpolate by the fraction of the rank
      // that falls inside it, clamped to the observed extremes.
      double lo = i == 0 ? min_ : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : max_;
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi <= lo) return hi;
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen = next;
  }
  return max_;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return &it->second;
  return &counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return &it->second;
  return &gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram* MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return &it->second;
  return &histograms_.emplace(std::string(name), Histogram(std::move(bounds))).first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? &it->second : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? &it->second : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(static_cast<double>(c.value()));
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(g.value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {";
    out += "\"count\": " + json_number(static_cast<double>(h.count()));
    out += ", \"sum\": " + json_number(h.sum());
    out += ", \"min\": " + json_number(h.min());
    out += ", \"max\": " + json_number(h.max());
    out += ", \"mean\": " + json_number(h.mean());
    out += ", \"p50\": " + json_number(h.percentile(50.0));
    out += ", \"p95\": " + json_number(h.percentile(95.0));
    out += ", \"p99\": " + json_number(h.percentile(99.0));
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {
void csv_row(std::string& out, const char* type, const std::string& name, const char* field,
             double value) {
  out += type;
  out += ',';
  out += name;
  out += ',';
  out += field;
  out += ',';
  out += json_number(value);
  out += '\n';
}
}  // namespace

std::string MetricsRegistry::to_csv() const {
  std::string out = "type,name,field,value\n";
  for (const auto& [name, c] : counters_) {
    csv_row(out, "counter", name, "value", static_cast<double>(c.value()));
  }
  for (const auto& [name, g] : gauges_) {
    csv_row(out, "gauge", name, "value", g.value());
  }
  for (const auto& [name, h] : histograms_) {
    csv_row(out, "histogram", name, "count", static_cast<double>(h.count()));
    csv_row(out, "histogram", name, "sum", h.sum());
    csv_row(out, "histogram", name, "min", h.min());
    csv_row(out, "histogram", name, "max", h.max());
    csv_row(out, "histogram", name, "mean", h.mean());
    csv_row(out, "histogram", name, "p50", h.percentile(50.0));
    csv_row(out, "histogram", name, "p95", h.percentile(95.0));
    csv_row(out, "histogram", name, "p99", h.percentile(99.0));
  }
  return out;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace kosha

#pragma once

// NFS call marshalling over XDR.
//
// Each RPC the client issues is encoded into its on-the-wire form (RPC
// header + procedure arguments, RFC 1813 shapes) so the network cost model
// charges the true message sizes, and so the protocol layer is testable as
// a codec: every call encoder has a matching decoder and they round-trip.

#include <string>
#include <string_view>

#include "nfs/nfs_types.hpp"
#include "nfs/xdr.hpp"

namespace kosha::nfs {

/// NFS procedure numbers (NFSv3 order where applicable).
enum class NfsProc : std::uint32_t {
  kNull = 0,
  kGetattr = 1,
  kSetattr = 2,
  kLookup = 3,
  kReadlink = 5,
  kRead = 6,
  kWrite = 7,
  kCreate = 8,
  kMkdir = 9,
  kSymlink = 10,
  kRemove = 12,
  kRmdir = 13,
  kRename = 14,
  kReaddir = 16,
  kFsstat = 18,
  kMount = 100,  // stand-in for the separate MOUNT protocol
};

/// Every procedure the client can issue, in slot order (for iterating the
/// per-procedure NetStats breakdown).
inline constexpr NfsProc kAllProcs[] = {
    NfsProc::kNull,   NfsProc::kGetattr, NfsProc::kSetattr, NfsProc::kLookup,
    NfsProc::kReadlink, NfsProc::kRead,  NfsProc::kWrite,   NfsProc::kCreate,
    NfsProc::kMkdir,  NfsProc::kSymlink, NfsProc::kRemove,  NfsProc::kRmdir,
    NfsProc::kRename, NfsProc::kReaddir, NfsProc::kFsstat,  NfsProc::kMount,
};

/// Wire name of a procedure ("LOOKUP", "CREATE", ...).
[[nodiscard]] const char* proc_name(NfsProc proc);

/// Index of `proc` in the per-procedure NetStats arrays: the NFSv3 number
/// for regular procedures, slot 19 for the MOUNT stand-in.
[[nodiscard]] constexpr std::size_t proc_slot(NfsProc proc) {
  return proc == NfsProc::kMount ? 19 : static_cast<std::size_t>(proc);
}

/// Client-side RPC span name ("nfs.LOOKUP", ...). Stable storage: returns
/// pointers to string literals.
[[nodiscard]] const char* rpc_span_name(NfsProc proc);

void encode_handle(XdrWriter& writer, const FileHandle& handle);
[[nodiscard]] Result<FileHandle, XdrError> decode_handle(XdrReader& reader);

/// The fixed RPC call header (xid, message type, program, version, proc;
/// AUTH_NULL credentials/verifier).
void encode_call_header(XdrWriter& writer, std::uint32_t xid, NfsProc proc);
[[nodiscard]] Result<NfsProc, XdrError> decode_call_header(XdrReader& reader,
                                                           std::uint32_t* xid = nullptr);

// --- per-procedure argument encoders (full message incl. header) -----------
[[nodiscard]] std::string encode_mount_call(std::uint32_t xid);
[[nodiscard]] std::string encode_handle_call(std::uint32_t xid, NfsProc proc,
                                             const FileHandle& handle);
[[nodiscard]] std::string encode_diropargs_call(std::uint32_t xid, NfsProc proc,
                                                const FileHandle& dir, std::string_view name);
[[nodiscard]] std::string encode_create_call(std::uint32_t xid, NfsProc proc,
                                             const FileHandle& dir, std::string_view name,
                                             std::uint32_t mode, std::uint32_t uid);
[[nodiscard]] std::string encode_symlink_call(std::uint32_t xid, const FileHandle& dir,
                                              std::string_view name, std::string_view target);
[[nodiscard]] std::string encode_read_call(std::uint32_t xid, const FileHandle& file,
                                           std::uint64_t offset, std::uint32_t count);
[[nodiscard]] std::string encode_write_call(std::uint32_t xid, const FileHandle& file,
                                            std::uint64_t offset, std::string_view data);
[[nodiscard]] std::string encode_setattr_call(std::uint32_t xid, const FileHandle& obj,
                                              bool set_mode, std::uint32_t mode, bool set_size,
                                              std::uint64_t size);
[[nodiscard]] std::string encode_rename_call(std::uint32_t xid, const FileHandle& from_dir,
                                             std::string_view from_name,
                                             const FileHandle& to_dir,
                                             std::string_view to_name);

// --- matching argument decoders (assume the header was consumed) -----------
struct DiropArgs {
  FileHandle dir;
  std::string name;
};
[[nodiscard]] Result<DiropArgs, XdrError> decode_diropargs(XdrReader& reader);

struct CreateArgs {
  FileHandle dir;
  std::string name;
  std::uint32_t mode = 0;
  std::uint32_t uid = 0;
};
[[nodiscard]] Result<CreateArgs, XdrError> decode_create_args(XdrReader& reader);

struct SymlinkArgs {
  FileHandle dir;
  std::string name;
  std::string target;
};
[[nodiscard]] Result<SymlinkArgs, XdrError> decode_symlink_args(XdrReader& reader);

struct ReadArgs {
  FileHandle file;
  std::uint64_t offset = 0;
  std::uint32_t count = 0;
};
[[nodiscard]] Result<ReadArgs, XdrError> decode_read_args(XdrReader& reader);

struct WriteArgs {
  FileHandle file;
  std::uint64_t offset = 0;
  std::string data;
};
[[nodiscard]] Result<WriteArgs, XdrError> decode_write_args(XdrReader& reader);

struct SetattrArgs {
  FileHandle obj;
  bool set_mode = false;
  std::uint32_t mode = 0;
  bool set_size = false;
  std::uint64_t size = 0;
};
[[nodiscard]] Result<SetattrArgs, XdrError> decode_setattr_args(XdrReader& reader);

struct RenameArgs {
  FileHandle from_dir;
  std::string from_name;
  FileHandle to_dir;
  std::string to_name;
};
[[nodiscard]] Result<RenameArgs, XdrError> decode_rename_args(XdrReader& reader);

}  // namespace kosha::nfs

file(REMOVE_RECURSE
  "CMakeFiles/test_chaos_soak.dir/test_chaos_soak.cpp.o"
  "CMakeFiles/test_chaos_soak.dir/test_chaos_soak.cpp.o.d"
  "test_chaos_soak"
  "test_chaos_soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chaos_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

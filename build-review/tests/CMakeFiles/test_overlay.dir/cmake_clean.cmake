file(REMOVE_RECURSE
  "CMakeFiles/test_overlay.dir/test_overlay.cpp.o"
  "CMakeFiles/test_overlay.dir/test_overlay.cpp.o.d"
  "test_overlay"
  "test_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table1_scalability.dir/table1_scalability.cpp.o"
  "CMakeFiles/table1_scalability.dir/table1_scalability.cpp.o.d"
  "table1_scalability"
  "table1_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_cluster_churn.
# This may be replaced when dependencies are built.

#include "common/path.hpp"

namespace kosha {

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) parts.emplace_back(path.substr(i, j - i));
    i = j;
  }
  return parts;
}

std::string join_path(const std::vector<std::string>& components) {
  if (components.empty()) return "/";
  std::string out;
  for (const auto& c : components) {
    out += '/';
    out += c;
  }
  return out;
}

std::string path_child(std::string_view parent, std::string_view name) {
  std::string out(parent);
  if (out.empty() || out.back() != '/') out += '/';
  out += name;
  return out;
}

std::string path_parent(std::string_view path) {
  auto parts = split_path(path);
  if (parts.empty()) return "/";
  parts.pop_back();
  return join_path(parts);
}

std::string path_basename(std::string_view path) {
  const auto parts = split_path(path);
  return parts.empty() ? std::string{} : parts.back();
}

std::string normalize_path(std::string_view path) {
  std::vector<std::string> out;
  for (auto& part : split_path(path)) {
    if (part == ".") continue;
    if (part == "..") return {};
    out.push_back(std::move(part));
  }
  return join_path(out);
}

std::size_t path_depth(std::string_view path) { return split_path(path).size(); }

bool path_is_within(std::string_view path, std::string_view ancestor) {
  const auto p = split_path(path);
  const auto a = split_path(ancestor);
  if (a.size() > p.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (p[i] != a[i]) return false;
  }
  return true;
}

}  // namespace kosha

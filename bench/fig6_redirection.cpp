// Figure 6 — cumulative insertion-failure ratio vs storage utilization as
// the number of redirection attempts grows (paper §6.2). 16 heterogeneous
// nodes (8x3GB + 4x4GB + 4x5GB), distribution level 4, 3 replicas.
//
// Flags: --runs N (default 5; paper used 50), --files N, --seed, --csv.

#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/insertion_sim.hpp"

int main(int argc, char** argv) {
  using namespace kosha;
  const CliArgs args(argc, argv);
  if (const auto err = args.check_known("runs,seed,files,csv"); !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 5));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  trace::FsTraceConfig trace_config;
  trace_config.seed = seed;
  trace_config.files = static_cast<std::size_t>(args.get_int("files", 221'000));
  const auto trace = trace::generate_fs_trace(trace_config);

  std::printf("Figure 6: cumulative failure ratio vs utilization "
              "(16 nodes: 8x3GB+4x4GB+4x5GB, level 4, 3 replicas, runs=%zu)\n\n",
              runs);

  const unsigned redirect_counts[] = {0, 1, 2, 4, 8, 15};
  std::vector<sim::InsertionCurve> curves;
  for (const unsigned redirects : redirect_counts) {
    sim::InsertionSimConfig config;
    config.capacities = sim::InsertionSimConfig::paper_capacities();
    config.redirects = redirects;
    config.runs = runs;
    config.seed = seed;
    curves.push_back(sim::simulate_insertion(trace, config));
  }

  TextTable table({"util%", "no redir", "1 redir", "2 redir", "4 redir", "8 redir",
                   "15 redir"});
  for (int pct = 10; pct <= 100; pct += 10) {
    std::vector<std::string> row{std::to_string(pct)};
    for (const auto& curve : curves) {
      // Report the last observed ratio at or below this utilization.
      double value = std::nan("");
      for (int b = pct; b >= 0; --b) {
        if (!std::isnan(curve.failure_ratio_at_pct[static_cast<std::size_t>(b)])) {
          value = curve.failure_ratio_at_pct[static_cast<std::size_t>(b)];
          break;
        }
      }
      row.push_back(std::isnan(value) ? "-" : TextTable::pct(value, 2));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nfinal state (average over runs):\n");
  for (std::size_t i = 0; i < curves.size(); ++i) {
    std::printf("  %2u redirects: utilization %s, failure ratio %s\n", redirect_counts[i],
                TextTable::pct(curves[i].final_utilization, 1).c_str(),
                TextTable::pct(curves[i].final_failure_ratio, 2).c_str());
  }
  if (args.get_bool("csv", false)) std::fputs(table.to_csv().c_str(), stdout);
  return 0;
}

#include "common/thread_pool.hpp"

#include <algorithm>

namespace kosha {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace kosha

# Empty dependencies file for test_at_most_once.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_concurrency_driver.dir/test_concurrency_driver.cpp.o"
  "CMakeFiles/test_concurrency_driver.dir/test_concurrency_driver.cpp.o.d"
  "test_concurrency_driver"
  "test_concurrency_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrency_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#pragma once

// Virtual time.
//
// The performance experiments (Tables 1-2) charge calibrated service times —
// disk, CPU, per-hop network latency — against a simulated clock so results
// are deterministic and host-independent. Durations are kept in integer
// nanoseconds to avoid floating-point drift across accumulation orders.

#include <compare>
#include <cstdint>

namespace kosha {

/// Duration in integer nanoseconds of virtual time.
struct SimDuration {
  std::int64_t ns = 0;

  [[nodiscard]] static constexpr SimDuration nanos(std::int64_t v) { return {v}; }
  [[nodiscard]] static constexpr SimDuration micros(double v) {
    return {static_cast<std::int64_t>(v * 1e3)};
  }
  [[nodiscard]] static constexpr SimDuration millis(double v) {
    return {static_cast<std::int64_t>(v * 1e6)};
  }
  [[nodiscard]] static constexpr SimDuration seconds(double v) {
    return {static_cast<std::int64_t>(v * 1e9)};
  }

  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns) * 1e-9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns) * 1e-6; }
  [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns) * 1e-3; }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) { return {a.ns + b.ns}; }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) { return {a.ns - b.ns}; }
  friend constexpr SimDuration operator*(SimDuration a, std::int64_t k) { return {a.ns * k}; }
  constexpr SimDuration& operator+=(SimDuration other) {
    ns += other.ns;
    return *this;
  }
  friend constexpr auto operator<=>(const SimDuration&, const SimDuration&) = default;
};

/// Monotonic virtual clock advanced explicitly by the simulation.
///
/// The clock can be paused: advances become no-ops. This models work that
/// happens off the client's critical path (asynchronous replica mirroring,
/// background migration) — the traffic is still counted by the network
/// statistics, but it does not delay the foreground operation.
class SimClock {
 public:
  [[nodiscard]] SimDuration now() const { return now_; }

  void advance(SimDuration d) {
    if (pause_depth_ == 0) now_ += d;
  }

  /// Jump forward to absolute time `t`; no-op when paused or `t <= now`.
  /// Used by the event loop when dispatching an event scheduled at `t`.
  void advance_to(SimDuration t) {
    if (pause_depth_ == 0 && t > now_) now_ = t;
  }

  /// Set the clock to exactly `t`, possibly rewinding (no-op when paused).
  /// Reserved for simulation drivers that evaluate alternative timelines
  /// branching from one instant — overlapped replica fan-out charges each
  /// mirror from the same start and keeps only the slowest finish, and the
  /// multi-client workload driver hops between per-client timelines. Never
  /// call this from component code: components only ever move time forward.
  void set_now(SimDuration t) {
    if (pause_depth_ == 0) now_ = t;
  }

  void reset() { now_ = {}; }

  [[nodiscard]] bool paused() const { return pause_depth_ > 0; }

 private:
  friend class ClockPauser;
  SimDuration now_{};
  int pause_depth_ = 0;
};

/// RAII pause of a SimClock (nestable).
class ClockPauser {
 public:
  explicit ClockPauser(SimClock& clock) : clock_(clock) { ++clock_.pause_depth_; }
  ~ClockPauser() { --clock_.pause_depth_; }
  ClockPauser(const ClockPauser&) = delete;
  ClockPauser& operator=(const ClockPauser&) = delete;

 private:
  SimClock& clock_;
};

/// Scoped stopwatch over a SimClock.
class SimStopwatch {
 public:
  explicit SimStopwatch(const SimClock& clock) : clock_(clock), start_(clock.now()) {}

  [[nodiscard]] SimDuration elapsed() const { return clock_.now() - start_; }

 private:
  const SimClock& clock_;
  SimDuration start_;
};

}  // namespace kosha

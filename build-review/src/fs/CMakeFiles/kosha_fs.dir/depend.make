# Empty dependencies file for kosha_fs.
# This may be replaced when dependencies are built.

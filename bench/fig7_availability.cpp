// Figure 7 — file availability over an 840-hour machine-availability trace
// for replica counts 0-4 (paper §6.3). Distribution level 3. The trace has
// a mass correlated failure at hour 615 (the paper's 4890-machine event).
//
// Flags: --runs N (default 3; paper used 100), --machines N (default 2000),
// --files N, --seed, --repair-hours H (default 1: a fresh replica takes an
// hour to copy), --csv (per-hour series).
//
// --faults switches to the fault-injection sweep: a live KoshaCluster under
// a seeded FaultPlan, drop rates {0,1,2,5}% x replicas {0,2}, reporting
// first-try op success plus the retry/timeout/failover counters
// (--ops N sets the per-cell operation count, --nodes N the cluster size).
// A second table breaks the retry/timeout totals down per NFS procedure so
// loss-sensitive operations (multi-RPC writes vs. single-RPC stats) are
// visible separately.
//
// --flashcrowd switches to the overload-control A/B: the same seeded flash
// crowd with overload control off (must go metastable — goodput pinned
// below 50% of baseline after the spike) then on (must shed and recover to
// >= 95%). Knobs: --nodes, --base, --spike, --duration S, --seed, --csv;
// exits non-zero when either arm breaks its half of the story. The
// full-knob version with the JSON snapshot is bench/overload_bench.
//
// --churn switches to the continuous-churn soak (DESIGN §8): a live
// self-healing cluster under seeded exponential join/fail arrivals with no
// failure oracle, reporting time-to-detection, MTTR, read availability and
// data durability. Knobs: --nodes, --replicas, --duration S, --fail-mean S,
// --join-mean S, --churn-files N, --drop P, --oracle (ablation: legacy
// oracle repair), --seed; --csv dumps the deterministic timeline and
// --metrics-out=FILE writes the JSON summary CI archives.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "nfs/wire.hpp"
#include "sim/availability_sim.hpp"
#include "sim/overload_sim.hpp"

namespace {

/// One cell of the fault sweep: a fresh cluster soaked at `drop_probability`.
int run_fault_sweep(const kosha::CliArgs& args) {
  using namespace kosha;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 16));
  const auto ops = static_cast<int>(args.get_int("ops", 300));

  std::printf("Fault-injection sweep: %zu nodes, %d ops/cell, seed %llu\n"
              "success%% counts first-try completions (the retry schedule and\n"
              "failover ladder run underneath each op).\n\n",
              nodes, ops, static_cast<unsigned long long>(seed));

  TextTable table({"replicas", "drop%", "ops", "success%", "drops", "retries", "timeouts",
                   "failovers", "degraded"});
  TextTable proc_table({"replicas", "drop%", "proc", "messages", "bytes", "retries",
                        "timeouts"});
  bool any_proc_rows = false;
  for (const unsigned k : {0u, 2u}) {
    for (const double drop : {0.0, 0.01, 0.02, 0.05}) {
      ClusterConfig config;
      config.nodes = nodes;
      config.kosha.replicas = k;
      config.kosha.read_from_replicas = k > 0;
      config.seed = seed;
      KoshaCluster cluster(config);

      net::FaultPlanConfig fault;
      fault.seed = seed + 7;
      fault.drop_probability = drop;
      cluster.network().set_fault_plan(std::make_unique<net::FaultPlan>(fault));

      KoshaMount mount(&cluster.daemon(0));
      Rng rng(seed ^ 0xFA17ull);
      std::vector<std::string> written;
      int succeeded = 0;
      for (int i = 0; i < ops; ++i) {
        bool ok = false;
        if (written.empty() || rng.next_below(3) == 0) {
          const std::string dir = "/w" + std::to_string(rng.next_below(8));
          const std::string file = dir + "/f" + std::to_string(rng.next_below(4));
          ok = mount.mkdir_p(dir).ok() && mount.write_file(file, rng.next_name(16)).ok();
          if (ok) written.push_back(file);
        } else {
          // Read or stat a file known to exist, so every failure is
          // fault-attributable.
          const std::string& file = written[rng.next_below(written.size())];
          ok = rng.next_bool(0.5) ? mount.read_file(file).ok() : mount.stat(file).ok();
        }
        if (ok) ++succeeded;
      }

      const auto& nstats = cluster.network().stats();
      const auto& dstats = cluster.daemon(0).stats();
      table.add_row({"Kosha-" + std::to_string(k), TextTable::fmt(drop * 100.0, 1),
                     std::to_string(ops),
                     TextTable::pct(ops > 0 ? static_cast<double>(succeeded) / ops : 0.0, 2),
                     std::to_string(nstats.drops), std::to_string(nstats.retries),
                     std::to_string(nstats.timeouts), std::to_string(dstats.failovers),
                     std::to_string(dstats.degraded_reads)});

      // Per-procedure breakdown, restricted to procedures that actually had
      // to retry or time out in this cell — the fault-attributable traffic.
      for (const nfs::NfsProc proc : nfs::kAllProcs) {
        const net::ProcNetStats& slot = nstats.per_proc[nfs::proc_slot(proc)];
        if (slot.retries == 0 && slot.timeouts == 0) continue;
        any_proc_rows = true;
        proc_table.add_row({"Kosha-" + std::to_string(k), TextTable::fmt(drop * 100.0, 1),
                            nfs::proc_name(proc), std::to_string(slot.messages),
                            std::to_string(slot.bytes), std::to_string(slot.retries),
                            std::to_string(slot.timeouts)});
      }
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (any_proc_rows) {
    std::printf("\nPer-procedure retry/timeout breakdown (procedures with none are "
                "omitted):\n");
    std::fputs(proc_table.to_string().c_str(), stdout);
  }
  return 0;
}

/// Flash-crowd availability A/B (overload control): the same seeded spike
/// with overload control off, then on. The uncontrolled arm must go
/// metastable (goodput pinned below 50% of baseline after the spike ends);
/// the controlled arm must shed and recover to >= 95%. Exits non-zero when
/// either fails — bench/overload_bench is the full-knob version of this.
int run_flash_crowd(const kosha::CliArgs& args) {
  using namespace kosha;
  sim::FlashCrowdConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.nodes = static_cast<std::size_t>(args.get_int("nodes", 4));
  config.base_clients = static_cast<std::size_t>(args.get_int("base", 24));
  config.spike_clients = static_cast<std::size_t>(args.get_int("spike", 60));
  if (const double d = args.get_double("duration", 0.0); d > 0) {
    config.duration = SimDuration::seconds(d);
  }

  std::printf("Flash-crowd A/B: %zu base + %zu spike clients, %zu nodes, "
              "spike [%.1fs, %.1fs) of %.1fs, seed %llu\n\n",
              config.base_clients, config.spike_clients, config.nodes,
              config.spike_start.to_seconds(), config.spike_end.to_seconds(),
              config.duration.to_seconds(), static_cast<unsigned long long>(config.seed));

  config.controlled = false;
  const auto uncontrolled = sim::simulate_flash_crowd(config);
  config.controlled = true;
  const auto controlled = sim::simulate_flash_crowd(config);

  TextTable table({"arm", "baseline", "spike", "post", "post/base", "recovered", "digest"});
  for (const auto* arm : {&uncontrolled, &controlled}) {
    table.add_row({arm == &uncontrolled ? "uncontrolled" : "controlled",
                   TextTable::fmt(arm->baseline_ops, 1), TextTable::fmt(arm->spike_ops, 1),
                   TextTable::fmt(arm->post_ops, 1), TextTable::fmt(arm->post_over_baseline, 3),
                   arm->recovered
                       ? "yes +" + TextTable::fmt(arm->recovery_after_spike.to_millis(), 0) + "ms"
                       : "NO",
                   arm->digest});
  }
  std::fputs(table.to_string().c_str(), stdout);

  if (args.get_bool("csv", false)) {
    std::printf("\n%s\n%s", uncontrolled.timeline_csv.c_str(), controlled.timeline_csv.c_str());
  }

  if (uncontrolled.post_over_baseline >= 0.5 || !controlled.recovered ||
      controlled.post_over_baseline < 0.95) {
    std::fprintf(stderr,
                 "flash crowd FAILED: uncontrolled post/base %.3f (want < 0.5), controlled "
                 "recovered=%s post/base %.3f (want >= 0.95)\n",
                 uncontrolled.post_over_baseline, controlled.recovered ? "yes" : "no",
                 controlled.post_over_baseline);
    return 1;
  }
  return 0;
}

/// Continuous-churn soak (DESIGN §8): seeded join/fail arrivals against a
/// self-healing cluster, no oracle.
int run_churn(const kosha::CliArgs& args) {
  using namespace kosha;
  sim::ChurnSimConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.nodes = static_cast<std::size_t>(args.get_int("nodes", 12));
  config.replicas = static_cast<unsigned>(args.get_int("replicas", 2));
  config.duration = SimDuration::seconds(args.get_double("duration", 20.0));
  config.mean_fail_interarrival = SimDuration::seconds(args.get_double("fail-mean", 3.0));
  config.mean_join_interarrival = SimDuration::seconds(args.get_double("join-mean", 5.0));
  config.files = static_cast<std::size_t>(args.get_int("churn-files", 24));
  config.drop_probability = args.get_double("drop", 0.0);
  config.oracle = args.get_bool("oracle", false);

  std::printf("Continuous-churn soak: %zu nodes, K=%u, %.0fs, fail mean %.1fs, "
              "join mean %.1fs, drop %.1f%%, seed %llu, %s repair\n\n",
              config.nodes, config.replicas, config.duration.to_seconds(),
              config.mean_fail_interarrival.to_seconds(),
              config.mean_join_interarrival.to_seconds(), config.drop_probability * 100.0,
              static_cast<unsigned long long>(config.seed),
              config.oracle ? "oracle-driven" : "self-healing");

  const auto result = sim::simulate_churn(config);

  TextTable table({"metric", "value"});
  table.add_row({"failures / joins",
                 std::to_string(result.failures) + " / " + std::to_string(result.joins)});
  table.add_row({"detected", std::to_string(result.detected) + "/" +
                                 std::to_string(result.failures)});
  table.add_row({"detection ms (mean/max)", TextTable::fmt(result.detect_ms_mean, 1) + " / " +
                                                TextTable::fmt(result.detect_ms_max, 1)});
  table.add_row({"repaired", std::to_string(result.repaired) + "/" +
                                 std::to_string(result.failures)});
  table.add_row({"MTTR ms (mean/max)", TextTable::fmt(result.mttr_ms_mean, 1) + " / " +
                                           TextTable::fmt(result.mttr_ms_max, 1)});
  table.add_row({"availability%", TextTable::fmt(result.availability_pct, 2)});
  table.add_row({"durability% (min/final)", TextTable::fmt(result.min_durability_pct, 2) +
                                                " / " +
                                                TextTable::fmt(result.final_durability_pct, 2)});
  table.add_row({"full replication% (final)", TextTable::fmt(result.final_full_pct, 2)});
  table.add_row({"converged", result.converged ? "yes" : "no"});
  table.add_row({"state digest", result.digest});
  std::fputs(table.to_string().c_str(), stdout);

  if (args.get_bool("csv", false)) {
    std::printf("\ntype,at_ns,...\n%s", result.timeline_csv.c_str());
  }

  if (const std::string out = args.get_string("metrics-out", ""); !out.empty()) {
    std::ostringstream json;
    json << "{\n  \"seed\": " << config.seed << ",\n  \"nodes\": " << config.nodes
         << ",\n  \"replicas\": " << config.replicas
         << ",\n  \"oracle\": " << (config.oracle ? "true" : "false")
         << ",\n  \"failures\": " << result.failures << ",\n  \"joins\": " << result.joins
         << ",\n  \"detected\": " << result.detected
         << ",\n  \"detect_ms_mean\": " << result.detect_ms_mean
         << ",\n  \"detect_ms_max\": " << result.detect_ms_max
         << ",\n  \"repaired\": " << result.repaired
         << ",\n  \"mttr_ms_mean\": " << result.mttr_ms_mean
         << ",\n  \"mttr_ms_max\": " << result.mttr_ms_max
         << ",\n  \"availability_pct\": " << result.availability_pct
         << ",\n  \"min_durability_pct\": " << result.min_durability_pct
         << ",\n  \"final_durability_pct\": " << result.final_durability_pct
         << ",\n  \"final_full_pct\": " << result.final_full_pct
         << ",\n  \"converged\": " << (result.converged ? "true" : "false")
         << ",\n  \"samples\": " << result.timeline.size() << ",\n  \"digest\": \""
         << result.digest << "\"\n}\n";
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    file << json.str();
    std::printf("\nwrote %s\n", out.c_str());
  }
  // The soak fails loudly when self-healing did not do its job: every real
  // failure must be detected and the surviving files fully re-replicated.
  if (result.detected != result.failures || !result.converged) {
    std::fprintf(stderr, "churn soak FAILED: detected %zu/%zu, converged=%s\n", result.detected,
                 result.failures, result.converged ? "true" : "false");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kosha;
  const CliArgs args(argc, argv);
  if (const auto err = args.check_known(
          "runs,seed,files,machines,repair-hours,csv,faults,ops,nodes,churn,replicas,duration,"
          "fail-mean,join-mean,churn-files,drop,oracle,metrics-out,flashcrowd,base,spike");
      !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  if (args.get_bool("flashcrowd", false)) return run_flash_crowd(args);
  if (args.get_bool("churn", false)) return run_churn(args);
  if (args.get_bool("faults", false)) return run_fault_sweep(args);
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  trace::FsTraceConfig fs_config;
  fs_config.seed = seed;
  fs_config.files = static_cast<std::size_t>(args.get_int("files", 221'000));
  const auto fs = trace::generate_fs_trace(fs_config);

  trace::AvailabilityConfig avail_config;
  avail_config.seed = seed + 1;
  avail_config.machines = static_cast<std::size_t>(args.get_int("machines", 2000));
  const auto machines = trace::generate_availability_trace(avail_config);

  std::printf("Figure 7: file availability over %zu hours, %zu machines "
              "(mean machine availability %s), level 3, runs=%zu\n",
              machines.hours, machines.machines,
              TextTable::pct(machines.mean_availability(), 2).c_str(), runs);
  std::printf("mass failure at hour %zu: %zu machines down\n\n", avail_config.spike_hour,
              machines.down_count(avail_config.spike_hour));

  TextTable table({"replicas", "avg avail%", "min avail%", "min hour", "avail@615%"});
  std::vector<sim::AvailabilityResult> results;
  for (unsigned k = 0; k <= 4; ++k) {
    sim::AvailabilitySimConfig config;
    config.replicas = k;
    config.runs = runs;
    config.seed = seed + 2;
    config.repair_hours = static_cast<std::size_t>(args.get_int("repair-hours", 1));
    results.push_back(sim::simulate_availability(fs, machines, config));
    const auto& r = results.back();
    table.add_row({"Kosha-" + std::to_string(k), TextTable::fmt(r.average_pct, 4),
                   TextTable::fmt(r.min_pct, 2), std::to_string(r.min_hour),
                   TextTable::fmt(r.available_pct[avail_config.spike_hour], 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  if (args.get_bool("csv", false)) {
    std::printf("\nhour,k0,k1,k2,k3,k4\n");
    for (std::size_t h = 0; h < machines.hours; ++h) {
      std::printf("%zu,%.4f,%.4f,%.4f,%.4f,%.4f\n", h, results[0].available_pct[h],
                  results[1].available_pct[h], results[2].available_pct[h],
                  results[3].available_pct[h], results[4].available_pct[h]);
    }
  }
  return 0;
}

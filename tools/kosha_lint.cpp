// kosha_lint CLI — walk the repo's sources and enforce the determinism and
// RPC-protocol invariants described in DESIGN §7.
//
// Usage:
//   kosha_lint [--root=DIR] [--json[=FILE]] [--sarif[=FILE]]
//              [--graph-out=FILE] [--explain[=RULE]] [paths...]
//
// With no paths, lints src/ tools/ bench/ tests/ under --root (default:
// the current directory). Paths may be files or directories; directories
// are walked recursively, skipping build trees and hidden directories.
// --graph-out writes the call graph the interprocedural rules ran over as
// GraphViz DOT; --sarif emits a SARIF 2.1.0 log for code scanning;
// --explain prints the rule table (optionally for one rule) and exits.
// Exit status: 0 clean, 1 diagnostics found, 2 usage or I/O error.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

namespace fs = std::filesystem;
using kosha::lint::Linter;

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  if (name.empty()) return false;
  if (name[0] == '.') return true;                 // .git and friends
  return name.rfind("build", 0) == 0 || name == "results";
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (Linter::is_cpp_source(root.string())) out.push_back(root);
    return;
  }
  fs::recursive_directory_iterator it(root, fs::directory_options::skip_permission_denied,
                                      ec);
  if (ec) return;
  for (const fs::recursive_directory_iterator end; it != end; it.increment(ec)) {
    if (ec) break;
    if (it->is_directory(ec)) {
      if (skip_dir(it->path())) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file(ec) && Linter::is_cpp_source(it->path().string())) {
      out.push_back(it->path());
    }
  }
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "kosha_lint: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

int explain(const std::string& rule) {
  bool found = false;
  for (const kosha::lint::RuleDoc& doc : kosha::lint::rule_docs()) {
    if (!rule.empty() && doc.rule != rule) continue;
    found = true;
    std::printf("%s  allow(%s)\n  %s\n  %s\n\n", doc.rule.c_str(), doc.slug.c_str(),
                doc.summary.c_str(), doc.detail.c_str());
  }
  if (!found) {
    std::fprintf(stderr, "kosha_lint: unknown rule %s\n", rule.c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  std::string json_file;
  bool sarif = false;
  std::string sarif_file;
  std::string graph_file;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_file = arg.substr(7);
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif = true;
      sarif_file = arg.substr(8);
    } else if (arg.rfind("--graph-out=", 0) == 0) {
      graph_file = arg.substr(12);
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--explain") {
      return explain("");
    } else if (arg.rfind("--explain=", 0) == 0) {
      return explain(arg.substr(10));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: kosha_lint [--root=DIR] [--json[=FILE]] [--sarif[=FILE]]\n"
          "                  [--graph-out=FILE] [--explain[=RULE]] [paths...]\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "kosha_lint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench", "tests"};

  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    const fs::path full = fs::path(root) / p;
    std::error_code ec;
    if (!fs::exists(full, ec)) {
      std::fprintf(stderr, "kosha_lint: no such path: %s\n", full.string().c_str());
      return 2;
    }
    collect(full, files);
  }

  // Lint wall time is an operator-facing measurement of the linter itself
  // (CI budgets it); it never feeds simulated state.
  // kosha-lint: allow(wall-clock): CLI timing of the lint run, outside any simulation
  const auto t_start = std::chrono::steady_clock::now();

  Linter linter;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "kosha_lint: cannot read %s\n", file.string().c_str());
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    // Report paths relative to --root so diagnostics are stable across
    // checkouts (and clickable from the repo root).
    const std::string rel =
        fs::path(file).lexically_relative(root).generic_string();
    linter.add_source(rel.empty() ? file.generic_string() : rel, content.str());
  }

  const auto diags = linter.run();

  // kosha-lint: allow(wall-clock): CLI timing of the lint run, outside any simulation
  const auto t_end = std::chrono::steady_clock::now();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(t_end - t_start).count();

  std::fputs(kosha::lint::to_text(diags).c_str(), stdout);
  if (json) {
    const std::string report = kosha::lint::to_json(diags, linter.file_count());
    if (json_file.empty()) {
      std::fputs(report.c_str(), stdout);
    } else if (!write_file(json_file, report)) {
      return 2;
    }
  }
  if (sarif) {
    const std::string report = kosha::lint::to_sarif(diags);
    if (sarif_file.empty()) {
      std::fputs(report.c_str(), stdout);
    } else if (!write_file(sarif_file, report)) {
      return 2;
    }
  }
  if (!graph_file.empty() && !write_file(graph_file, linter.graph_dot())) {
    return 2;
  }
  std::fprintf(stderr, "kosha_lint: %zu file%s, %lld ms\n", linter.file_count(),
               linter.file_count() == 1 ? "" : "s", static_cast<long long>(ms));
  if (!diags.empty()) {
    std::fprintf(stderr, "kosha_lint: %zu violation%s in %zu files scanned\n",
                 diags.size(), diags.size() == 1 ? "" : "s", linter.file_count());
  }
  return kosha::lint::exit_code(diags);
}

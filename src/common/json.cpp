#include "common/json.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace kosha {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string JsonValue::string_or(std::string_view key, std::string fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::move(fallback);
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue, std::string> parse_document() {
    skip_ws();
    JsonValue v;
    if (std::string err = parse_value(v); !err.empty()) return err;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  [[nodiscard]] std::string fail(const char* what) const {
    return std::string(what) + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  // Each parse_* returns "" on success, an error message on failure.
  std::string parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"': {
        std::string s;
        if (std::string err = parse_string(s); !err.empty()) return err;
        out = JsonValue::make_string(std::move(s));
        return {};
      }
      case 't':
        if (!consume_word("true")) return fail("bad literal");
        out = JsonValue::make_bool(true);
        return {};
      case 'f':
        if (!consume_word("false")) return fail("bad literal");
        out = JsonValue::make_bool(false);
        return {};
      case 'n':
        if (!consume_word("null")) return fail("bad literal");
        out = JsonValue::make_null();
        return {};
      default:
        return parse_number(out);
    }
  }

  std::string parse_object(JsonValue& out) {
    ++pos_;  // '{'
    out = JsonValue::make_object();
    skip_ws();
    if (consume('}')) return {};
    for (;;) {
      skip_ws();
      std::string key;
      if (std::string err = parse_string(key); !err.empty()) return err;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue v;
      if (std::string err = parse_value(v); !err.empty()) return err;
      out.set(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return {};
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  std::string parse_array(JsonValue& out) {
    ++pos_;  // '['
    out = JsonValue::make_array();
    skip_ws();
    if (consume(']')) return {};
    for (;;) {
      skip_ws();
      JsonValue v;
      if (std::string err = parse_value(v); !err.empty()) return err;
      out.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return {};
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  std::string parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return {};
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            // The exporters only emit \u00XX for control characters; decode
            // BMP code points as UTF-8 and leave surrogates unpaired.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  std::string parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out = JsonValue::make_number(v);
    return {};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue, std::string> parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace kosha

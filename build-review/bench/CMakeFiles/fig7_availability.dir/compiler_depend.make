# Empty compiler generated dependencies file for fig7_availability.
# This may be replaced when dependencies are built.

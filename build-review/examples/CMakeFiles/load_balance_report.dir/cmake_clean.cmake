file(REMOVE_RECURSE
  "CMakeFiles/load_balance_report.dir/load_balance_report.cpp.o"
  "CMakeFiles/load_balance_report.dir/load_balance_report.cpp.o.d"
  "load_balance_report"
  "load_balance_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balance_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

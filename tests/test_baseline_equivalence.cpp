// The headline semantic claim (paper §4.1.1): "The semantics of Kosha are
// the same as NFS in the absence of failures." These tests run identical
// operation sequences against a plain NFS mount and a Kosha cluster and
// require the observable namespaces to match.

#include <gtest/gtest.h>

#include <map>

#include "baseline/nfs_mount.hpp"
#include "common/rng.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

/// Collect (path -> type:size:content-prefix) for the whole namespace.
template <typename Mount>
std::map<std::string, std::string> snapshot(Mount& mount, const std::string& path = "/") {
  std::map<std::string, std::string> out;
  const auto listing = mount.list(path);
  if (!listing.ok()) return out;
  for (const auto& entry : listing.value()) {
    const std::string child = path == "/" ? "/" + entry.name : path + "/" + entry.name;
    if (entry.type == fs::FileType::kDirectory) {
      out[child] = "dir";
      auto sub = snapshot(mount, child);
      out.insert(sub.begin(), sub.end());
    } else {
      const auto content = mount.read_file(child);
      out[child] = "file:" + (content.ok() ? content.value() : "<unreadable>");
    }
  }
  return out;
}

struct BaselineFixture {
  SimClock clock;
  net::SimNetwork network{{}, &clock};
  net::HostId client = network.add_host();
  net::HostId server_host = network.add_host();
  nfs::NfsServer server{server_host, {}, {}, &clock};
  nfs::ServerDirectory directory;
  baseline::NfsMount mount{&network, &directory, client, server_host};

  BaselineFixture() { directory.add(&server); }
};

class Equivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Equivalence, RandomOperationSequencesAgree) {
  BaselineFixture nfs;
  ClusterConfig config;
  config.nodes = 6;
  config.kosha.distribution_level = 2;
  config.kosha.replicas = 1;
  config.seed = GetParam();
  KoshaCluster cluster(config);
  KoshaMount kosha_mount(&cluster.daemon(0));

  Rng rng(GetParam() * 97 + 13);
  auto random_path = [&](int max_depth) {
    std::string path;
    const int depth = 1 + static_cast<int>(rng.next_below(max_depth));
    for (int d = 0; d < depth; ++d) path += "/n" + std::to_string(rng.next_below(4));
    return path;
  };

  for (int op = 0; op < 80; ++op) {
    const unsigned action = static_cast<unsigned>(rng.next_below(6));
    const std::string path = random_path(4);
    switch (action) {
      case 0:
      case 1: {  // mkdir -p
        const auto a = nfs.mount.mkdir_p(path);
        const auto b = kosha_mount.mkdir_p(path);
        EXPECT_EQ(a.ok(), b.ok()) << "mkdir_p " << path;
        break;
      }
      case 2:
      case 3: {  // write file (parent may not exist / may be a file)
        const std::string file = path + "/f" + std::to_string(rng.next_below(3));
        const std::string content = rng.next_name(20);
        const auto a = nfs.mount.write_file(file, content);
        const auto b = kosha_mount.write_file(file, content);
        EXPECT_EQ(a.ok(), b.ok()) << "write " << file;
        break;
      }
      case 4: {  // remove (may fail identically)
        const auto a = nfs.mount.remove(path);
        const auto b = kosha_mount.remove(path);
        EXPECT_EQ(a.ok(), b.ok()) << "remove " << path;
        break;
      }
      case 5: {  // rmdir
        const auto a = nfs.mount.rmdir(path);
        const auto b = kosha_mount.rmdir(path);
        EXPECT_EQ(a.ok(), b.ok()) << "rmdir " << path;
        break;
      }
      default:
        break;
    }
  }

  EXPECT_EQ(snapshot(nfs.mount), snapshot(kosha_mount));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(BaselineNfsMount, BasicRoundTrip) {
  BaselineFixture fx;
  ASSERT_TRUE(fx.mount.mkdir_p("/home/u").ok());
  ASSERT_TRUE(fx.mount.write_file("/home/u/f", "nfs data").ok());
  EXPECT_EQ(fx.mount.read_file("/home/u/f").value(), "nfs data");
  EXPECT_TRUE(fx.mount.exists("/home/u"));
  EXPECT_EQ(fx.mount.list("/home")->size(), 1u);
  ASSERT_TRUE(fx.mount.rename("/home/u/f", "/home/u/g").ok());
  EXPECT_FALSE(fx.mount.exists("/home/u/f"));
  EXPECT_EQ(fx.mount.read_file("/home/u/g").value(), "nfs data");
  ASSERT_TRUE(fx.mount.remove_all("/home").ok());
  EXPECT_FALSE(fx.mount.exists("/home"));
}

TEST(BaselineNfsMount, ServerDownIsVisible) {
  BaselineFixture fx;
  ASSERT_TRUE(fx.mount.write_file("/f", "x").ok());
  fx.network.set_up(fx.server_host, false);
  // Unlike Kosha, plain NFS has no replicas to fail over to.
  EXPECT_FALSE(fx.mount.read_file("/f").ok());
}

}  // namespace
}  // namespace kosha

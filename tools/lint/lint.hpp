#pragma once

// kosha_lint — repo-specific static analysis for determinism and
// RPC-protocol invariants (DESIGN §7).
//
// The reproduction's results rest on conventions that ordinary compilers
// cannot check: same-seed runs must be byte-identical, every non-idempotent
// NFS procedure must be at-most-once through the server's duplicate-request
// cache, and the event-dispatch path must stay allocation-lean. The linter
// is a two-phase analyzer with no libclang dependency:
//
//   phase 1 (lint/index.*, lint/graph.*) lexes every TU with a hand-rolled
//   tokenizer (comments, string/char/raw literals and preprocessor lines
//   never reach the rules), indexes every function — free or member, with
//   class, arity and return type — and builds a conservative call graph:
//   direct calls, receiver-resolved method calls, name+arity
//   over-approximation for unknown receivers, and hand-asserted
//   `edge(Target): reason` lint comments for type-erased seams.
//
//   phase 2 (lint/rules.*) runs the rule families:
//
//   D1 wall-clock        no wall-clock/entropy primitive outside the
//                        allowlisted seed/CLI/profiler seams.
//   D2 unordered-iter    no iteration over unordered containers (order is
//                        implementation-defined and leaks into traces).
//   D3 event-callback    no blocking sleeps; no clock mutation inside
//                        callbacks passed to schedule_at/schedule_after.
//   D4 event-reachable   transitive closure of D1+D3: nothing reachable
//                        from the event-loop roots (scheduled callbacks,
//                        EventLoop::step, the SimNetwork service surface)
//                        may reach a wall-clock/entropy/sleep sink, except
//                        the sanctioned src/common/profile.cpp seam.
//   R1 must-check        every call returning FsStatus/NfsStat/Result<...>
//                        must be consumed — assigned, compared, returned,
//                        or (void)-cast with an allow(ignore-status)
//                        annotation carrying a reason.
//   A1 hot-alloc         functions reachable from the event roots may not
//                        construct std::string, call new, or insert into
//                        node-based containers; allow(hot-alloc) on a
//                        function excuses it and stops propagation through
//                        it (a sanctioned allocation subtree).
//   P1 drc               non-idempotent NfsServer handlers consult
//                        drc_find before mutating and record via drc_store.
//   P2 rpc-ctx           every RpcContext construction carries the full
//                        {client, xid, boot} triple.
//   P3 early-reject      overload rejects fire before the DRC store.
//   P4 deadline-prop     child RpcContexts on src/kosha/ and src/nfs/
//                        paths propagate the parent's deadline.
//   S1 storage-seam      concrete storage backends named only in src/fs/
//                        and tests/.
//   H1 header            #pragma once present; no `using namespace` at
//                        header scope.
//   E1 edge              every edge() annotation resolves and carries a
//                        reason.
//
// A violating line can be excused with an annotation carrying a reason:
//
//   ... // kosha-lint: allow(unordered-iter): erase-sweep, order-free
//
// either on the offending line or as a comment on the line directly above
// it. An annotation without a reason does not suppress anything.

#include <string>
#include <vector>

namespace kosha::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;     // "D1".."E1"
  std::string slug;     // annotation name: "wall-clock", "hot-alloc", ...
  std::string message;
};

struct Config {
  /// Path suffixes allowed to touch wall clock / entropy: the seed and CLI
  /// seams where nondeterminism is deliberately injected exactly once, plus
  /// src/common/profile.cpp — the single sanctioned wall-clock seam
  /// (SimProfiler::wall_now_ns) behind the simulator profiler. Profiler
  /// output is measurement of the simulator, never input to it, so the
  /// read cannot leak into simulated state; every other file must go
  /// through that function rather than naming a clock directly.
  std::vector<std::string> entropy_allowlist = {
      "src/common/rng.cpp", "src/common/rng.hpp",
      "src/common/cli.cpp", "src/common/cli.hpp",
      "src/common/profile.cpp"};
};

/// Two-phase linter: add_source() tokenizes, run() indexes every added TU,
/// builds the call graph, and applies every rule. Diagnostics are sorted by
/// (file, line, rule) so output is deterministic regardless of the order
/// sources were added.
class Linter {
 public:
  explicit Linter(Config config = {});
  ~Linter();
  Linter(const Linter&) = delete;
  Linter& operator=(const Linter&) = delete;

  void add_source(std::string path, std::string content);
  [[nodiscard]] std::vector<Diagnostic> run();

  [[nodiscard]] std::size_t file_count() const;

  /// GraphViz dump of the call graph built by the last run() (empty string
  /// before run()). Event roots get a bold red border, the A1 hot set a
  /// light fill, D4 sink functions an orange fill; over-approximated edges
  /// are dashed, hand-asserted edge() edges bold red.
  [[nodiscard]] std::string graph_dot() const;

  /// Call-graph edges from the last run() as "Caller -> Callee [kind]"
  /// strings (kind: direct/resolved/overapprox/annotated), sorted. Test
  /// seam for call-graph construction coverage.
  [[nodiscard]] std::vector<std::string> edge_list() const;

  [[nodiscard]] static bool is_header(const std::string& path);
  /// True for files the repo-wide walk should lint (.cpp/.cc/.hpp/.h).
  [[nodiscard]] static bool is_cpp_source(const std::string& path);

 private:
  struct Impl;
  Impl* impl_;
};

/// GCC-style "file:line: error: message [rule]" lines, one per diagnostic.
[[nodiscard]] std::string to_text(const std::vector<Diagnostic>& diags);

/// Machine-readable report: {"violations": N, "files_scanned": N,
/// "diagnostics": [{file, line, rule, slug, message}...]}.
[[nodiscard]] std::string to_json(const std::vector<Diagnostic>& diags,
                                  std::size_t files_scanned);

/// SARIF 2.1.0 log for GitHub code scanning: one run, one rule entry per
/// rule id, one result per diagnostic with the repo-relative artifact
/// location.
[[nodiscard]] std::string to_sarif(const std::vector<Diagnostic>& diags);

/// One row of the --explain table.
struct RuleDoc {
  std::string rule;     // "D1".."E1"
  std::string slug;     // annotation slug the rule honors
  std::string summary;  // one line
  std::string detail;   // what it checks, why, and how to annotate
};

/// Documentation for every rule, ordered as listed above.
[[nodiscard]] const std::vector<RuleDoc>& rule_docs();

/// Exit code the CLI maps lint results to: 0 clean, 1 diagnostics found.
[[nodiscard]] int exit_code(const std::vector<Diagnostic>& diags);

}  // namespace kosha::lint

#include "kosha/virtual_handles.hpp"

#include "common/path.hpp"

namespace kosha {

VirtualHandle VirtualHandleTable::bind(const std::string& path, const std::string& stored_path,
                                       const nfs::FileHandle& real, fs::FileType type) {
  if (const auto it = by_path_.find(path); it != by_path_.end()) {
    VhEntry& entry = entries_[it->second];
    entry.stored_path = stored_path;
    entry.real = real;
    entry.type = type;
    return {it->second};
  }
  const std::uint64_t id = next_++;
  entries_[id] = {path, stored_path, real, type};
  by_path_[path] = id;
  return {id};
}

const VhEntry* VirtualHandleTable::find(VirtualHandle vh) const {
  const auto it = entries_.find(vh.value);
  return it == entries_.end() ? nullptr : &it->second;
}

std::optional<VirtualHandle> VirtualHandleTable::find_by_path(const std::string& path) const {
  const auto it = by_path_.find(path);
  if (it == by_path_.end()) return std::nullopt;
  return VirtualHandle{it->second};
}

void VirtualHandleTable::drop(VirtualHandle vh) {
  const auto it = entries_.find(vh.value);
  if (it == entries_.end()) return;
  by_path_.erase(it->second.path);
  entries_.erase(it);
}

void VirtualHandleTable::drop_subtree(const std::string& path) {
  // kosha-lint: allow(unordered-iter): erase-sweep — survivors independent of visit order
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (path_is_within(it->second.path, path)) {
      by_path_.erase(it->second.path);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

bool VirtualHandleTable::rebind(VirtualHandle vh, const std::string& stored_path,
                                const nfs::FileHandle& real) {
  const auto it = entries_.find(vh.value);
  if (it == entries_.end()) return false;
  it->second.stored_path = stored_path;
  it->second.real = real;
  return true;
}

}  // namespace kosha

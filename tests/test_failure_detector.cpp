// Failure-detector behavior under a live self-healing cluster: real
// crashes are detected and repaired without an oracle; brownouts cause
// suspicion that is refuted (no false declarations, no data loss, no
// duplicate replicas); an isolated node quarantines its own verdicts
// instead of declaring the whole ring dead; false declarations heal by
// boot-verified reinstatement; same-seed runs are byte-identical.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "fs/local_fs.hpp"
#include "kosha/audit.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "net/fault_plan.hpp"
#include "nfs/nfs_server.hpp"

namespace kosha {
namespace {

ClusterConfig self_heal_config(std::size_t nodes, std::uint64_t seed) {
  ClusterConfig config;
  config.nodes = nodes;
  config.kosha.replicas = 2;
  config.kosha.distribution_level = 2;
  config.seed = seed;
  config.self_heal.enabled = true;
  return config;
}

void run_for(KoshaCluster& cluster, SimDuration d) {
  cluster.loop().run_until_time(cluster.clock().now() + d);
}

bool store_holds(const fs::StorageBackend& store, fs::InodeId dir, const std::string& content) {
  const auto entries = store.readdir(dir);
  if (!entries.ok()) return false;
  for (const auto& entry : entries.value()) {
    if (entry.type == fs::FileType::kDirectory) {
      if (store_holds(store, entry.inode, content)) return true;
    } else if (entry.type == fs::FileType::kFile) {
      const auto data = store.read(entry.inode, 0, 1 << 20);
      if (data.ok() && data.value() == content) return true;
    }
  }
  return false;
}

/// Live hosts holding `content` anywhere in their store (primary or
/// replica copy) — the oracle view of a file's replication level.
std::size_t count_copies(KoshaCluster& cluster, const std::string& content) {
  std::size_t copies = 0;
  for (const net::HostId host : cluster.live_hosts()) {
    const fs::StorageBackend& store = cluster.server(host).store();
    copies += store_holds(store, store.root(), content);
  }
  return copies;
}

/// Aggregate detector stats over all live nodes.
pastry::FailureDetectorStats total_stats(KoshaCluster& cluster) {
  pastry::FailureDetectorStats total;
  for (const net::HostId host : cluster.live_hosts()) {
    if (const pastry::FailureDetector* d = cluster.detector(host)) {
      const auto& s = d->stats();
      total.probes_sent += s.probes_sent;
      total.acks_received += s.acks_received;
      total.probe_misses += s.probe_misses;
      total.suspicions += s.suspicions;
      total.indirect_rounds += s.indirect_rounds;
      total.refutations += s.refutations;
      total.declared_dead += s.declared_dead;
      total.reinstated += s.reinstated;
      total.quarantined_verdicts += s.quarantined_verdicts;
    }
  }
  return total;
}

std::vector<std::string> write_dataset(KoshaMount& mount, std::size_t files,
                                       const std::string& tag) {
  std::vector<std::string> contents;
  for (std::size_t i = 0; i < files; ++i) {
    const std::string dir = "/fd/d" + std::to_string(i % 3);
    EXPECT_TRUE(mount.mkdir_p(dir).ok());
    const std::string content = tag + "-" + std::to_string(i);
    EXPECT_TRUE(mount.write_file(dir + "/f" + std::to_string(i), content).ok());
    contents.push_back(content);
  }
  return contents;
}

TEST(FailureDetector, DetectsCrashRepairsRingAndConverges) {
  KoshaCluster cluster(self_heal_config(10, 71));
  KoshaMount mount(&cluster.daemon(0));
  const auto contents = write_dataset(mount, 10, "crash");

  const net::HostId victim = cluster.live_hosts().back();
  cluster.fail_node(victim);
  ASSERT_EQ(cluster.undetected_failures(), 1u);
  ASSERT_TRUE(cluster.detections().empty());

  // Detection: some survivor must confirm the death without any oracle.
  run_for(cluster, SimDuration::seconds(5));
  ASSERT_EQ(cluster.detections().size(), 1u);
  EXPECT_EQ(cluster.undetected_failures(), 0u);
  EXPECT_EQ(cluster.detections()[0].host, victim);
  EXPECT_GT(cluster.detections()[0].detected_at, cluster.detections()[0].failed_at);

  // Convergence: anti-entropy restores every file to K+1 live copies and
  // the full audit (placement, namespace, byte-identical replicas) passes.
  run_for(cluster, SimDuration::seconds(10));
  for (const auto& content : contents) EXPECT_EQ(count_copies(cluster, content), 3u);
  const auto audit = audit_cluster(cluster);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
  for (std::size_t i = 0; i < contents.size(); ++i) {
    const auto read = mount.read_file("/fd/d" + std::to_string(i % 3) + "/f" + std::to_string(i));
    ASSERT_TRUE(read.ok()) << i;
    EXPECT_EQ(read.value(), contents[i]);
  }
}

TEST(FailureDetector, BrownoutCausesSuspicionButIsRefuted) {
  ClusterConfig config = self_heal_config(10, 72);
  // Stretch the confirmation phase so a short brownout trips suspicion but
  // ends before the confirm rounds can all fail.
  config.self_heal.detector.confirm_rounds = 4;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  const auto contents = write_dataset(mount, 8, "brownout");

  const SimDuration t0 = cluster.clock().now();
  auto plan = std::make_unique<net::FaultPlan>(net::FaultPlanConfig{73, 0.0, 0.0, {}});
  const net::HostId victim = cluster.live_hosts().back();
  plan->add_brownout(victim, t0 + SimDuration::millis(100), t0 + SimDuration::millis(550));
  cluster.network().set_fault_plan(std::move(plan));

  run_for(cluster, SimDuration::seconds(8));
  const auto stats = total_stats(cluster);
  EXPECT_GT(stats.suspicions, 0u);   // the brownout was noticed...
  EXPECT_GT(stats.refutations, 0u);  // ...and refuted, not acted on
  EXPECT_TRUE(cluster.detections().empty());
  EXPECT_EQ(cluster.undetected_failures(), 0u);
  EXPECT_TRUE(cluster.is_up(victim));

  // No data loss and no duplicate replicas: exactly K+1 copies per file.
  for (const auto& content : contents) EXPECT_EQ(count_copies(cluster, content), 3u);
  const auto audit = audit_cluster(cluster);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
}

TEST(FailureDetector, IsolatedNodeQuarantinesItsVerdicts) {
  KoshaCluster cluster(self_heal_config(10, 74));
  KoshaMount mount(&cluster.daemon(0));
  const auto contents = write_dataset(mount, 8, "island");

  const SimDuration t0 = cluster.clock().now();
  const net::HostId victim = cluster.live_hosts().back();
  std::vector<net::HostId> others;
  for (const net::HostId host : cluster.live_hosts()) {
    if (host != victim) others.push_back(host);
  }
  auto plan = std::make_unique<net::FaultPlan>(net::FaultPlanConfig{75, 0.0, 0.0, {}});
  plan->add_partition({victim}, others, t0, t0 + SimDuration::seconds(2));
  cluster.network().set_fault_plan(std::move(plan));

  run_for(cluster, SimDuration::seconds(2));
  // The isolated node lost contact with everyone — it must recognise its
  // own isolation and withhold verdicts rather than declare the ring dead.
  const pastry::FailureDetector* island = cluster.detector(victim);
  ASSERT_NE(island, nullptr);
  EXPECT_GT(island->stats().suspicions, 0u);
  EXPECT_GT(island->stats().quarantined_verdicts, 0u);
  EXPECT_EQ(island->stats().declared_dead, 0u);

  // The majority side may have falsely declared the island dead; after the
  // partition heals its probes answer again and boot-verified reinstatement
  // plus stale-copy reclamation restore the exact pre-fault state.
  run_for(cluster, SimDuration::seconds(15));
  const auto stats = total_stats(cluster);
  if (stats.declared_dead > 0) {
    EXPECT_GT(stats.reinstated, 0u);
  }
  EXPECT_TRUE(cluster.detections().empty());  // nobody actually died
  for (const auto& content : contents) EXPECT_EQ(count_copies(cluster, content), 3u);
  const auto audit = audit_cluster(cluster);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
  for (std::size_t i = 0; i < contents.size(); ++i) {
    const auto read = mount.read_file("/fd/d" + std::to_string(i % 3) + "/f" + std::to_string(i));
    ASSERT_TRUE(read.ok()) << i;
  }
}

TEST(FailureDetector, FlappingRunsAreByteIdenticalUnderOneSeed) {
  const auto fingerprint = [](std::uint64_t seed) {
    KoshaCluster cluster(self_heal_config(9, seed));
    KoshaMount mount(&cluster.daemon(0));
    (void)write_dataset(mount, 6, "det");
    const SimDuration t0 = cluster.clock().now();
    auto plan = std::make_unique<net::FaultPlan>(net::FaultPlanConfig{seed + 1, 0.03, 0.0, {}});
    plan->add_brownout(cluster.live_hosts().back(), t0 + SimDuration::millis(200),
                       t0 + SimDuration::millis(700));
    cluster.network().set_fault_plan(std::move(plan));
    run_for(cluster, SimDuration::seconds(4));
    cluster.fail_node(cluster.live_hosts()[3]);
    run_for(cluster, SimDuration::seconds(8));

    const auto stats = total_stats(cluster);
    std::string fp = audit_digest(cluster);
    fp += "|" + std::to_string(stats.probes_sent) + "," + std::to_string(stats.probe_misses) +
          "," + std::to_string(stats.suspicions) + "," + std::to_string(stats.refutations) +
          "," + std::to_string(stats.declared_dead) + "," + std::to_string(stats.reinstated) +
          "," + std::to_string(stats.quarantined_verdicts);
    fp += "|" + std::to_string(cluster.detections().size()) + "," +
          std::to_string(cluster.undetected_failures());
    fp += "|@" + std::to_string(cluster.clock().now().ns);
    return fp;
  };
  EXPECT_EQ(fingerprint(76), fingerprint(76));
  EXPECT_NE(fingerprint(76), fingerprint(77));  // the seed actually steers it
}

}  // namespace
}  // namespace kosha

#pragma once

// 128-bit unsigned integer used as the Pastry identifier/key space.
//
// Pastry (Rowstron & Druschel, Middleware'01) places node identifiers and
// object keys in a circular 2^128 space. This type provides the exact ring
// arithmetic the overlay needs: modular add/subtract, circular distance, and
// base-2^b digit extraction for prefix routing.

#include <array>
#include <cstdint>
#include <functional>
#include <string>

namespace kosha {

/// Unsigned 128-bit integer with wrap-around (ring) semantics.
struct Uint128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  constexpr Uint128() = default;
  constexpr Uint128(std::uint64_t high, std::uint64_t low) : hi(high), lo(low) {}

  /// Smallest and largest representable values.
  [[nodiscard]] static constexpr Uint128 zero() { return {0, 0}; }
  [[nodiscard]] static constexpr Uint128 max() {
    return {~std::uint64_t{0}, ~std::uint64_t{0}};
  }

  friend constexpr bool operator==(const Uint128&, const Uint128&) = default;
  friend constexpr auto operator<=>(const Uint128& a, const Uint128& b) {
    if (auto c = a.hi <=> b.hi; c != 0) return c;
    return a.lo <=> b.lo;
  }

  /// Modular addition (wraps at 2^128).
  friend constexpr Uint128 operator+(const Uint128& a, const Uint128& b) {
    const std::uint64_t lo = a.lo + b.lo;
    const std::uint64_t carry = (lo < a.lo) ? 1 : 0;
    return {a.hi + b.hi + carry, lo};
  }

  /// Modular subtraction (wraps at 2^128).
  friend constexpr Uint128 operator-(const Uint128& a, const Uint128& b) {
    const std::uint64_t lo = a.lo - b.lo;
    const std::uint64_t borrow = (a.lo < b.lo) ? 1 : 0;
    return {a.hi - b.hi - borrow, lo};
  }

  /// Digit at position `index` (0 = most significant) in base 2^bits_per_digit.
  [[nodiscard]] constexpr unsigned digit(unsigned index, unsigned bits_per_digit) const {
    const unsigned total_digits = 128 / bits_per_digit;
    const unsigned shift = (total_digits - 1 - index) * bits_per_digit;
    const std::uint64_t word = (shift >= 64) ? hi : lo;
    const unsigned word_shift = (shift >= 64) ? shift - 64 : shift;
    const std::uint64_t mask = (bits_per_digit == 64)
                                   ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << bits_per_digit) - 1);
    return static_cast<unsigned>((word >> word_shift) & mask);
  }

  /// Length of the shared digit prefix with `other` in base 2^bits_per_digit.
  [[nodiscard]] constexpr unsigned shared_prefix_length(const Uint128& other,
                                                        unsigned bits_per_digit) const {
    const unsigned total_digits = 128 / bits_per_digit;
    for (unsigned i = 0; i < total_digits; ++i) {
      if (digit(i, bits_per_digit) != other.digit(i, bits_per_digit)) return i;
    }
    return total_digits;
  }

  /// Lowercase hexadecimal representation, 32 characters.
  [[nodiscard]] std::string to_hex() const;

  /// Parse a hexadecimal string (up to 32 hex digits, no prefix).
  [[nodiscard]] static Uint128 from_hex(const std::string& hex);

  /// Build from 16 big-endian bytes (e.g. the first half of a SHA-1 digest).
  [[nodiscard]] static constexpr Uint128 from_bytes(const std::array<std::uint8_t, 16>& b) {
    std::uint64_t h = 0;
    std::uint64_t l = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | b[static_cast<std::size_t>(i)];
    for (int i = 8; i < 16; ++i) l = (l << 8) | b[static_cast<std::size_t>(i)];
    return {h, l};
  }
};

/// Circular (ring) distance: min(|a-b|, 2^128 - |a-b|).
[[nodiscard]] constexpr Uint128 ring_distance(const Uint128& a, const Uint128& b) {
  const Uint128 d1 = a - b;
  const Uint128 d2 = b - a;
  return (d1 < d2) ? d1 : d2;
}

/// True if moving clockwise (increasing ids, with wrap) from `from` reaches
/// `x` no later than `to`. Used for key-space ownership checks.
[[nodiscard]] constexpr bool in_clockwise_range(const Uint128& x, const Uint128& from,
                                                const Uint128& to) {
  return (x - from) <= (to - from);
}

}  // namespace kosha

template <>
struct std::hash<kosha::Uint128> {
  std::size_t operator()(const kosha::Uint128& v) const noexcept {
    // Mix the halves; ids are uniformly random so this is already strong.
    return static_cast<std::size_t>(v.hi ^ (v.lo * 0x9E3779B97F4A7C15ull));
  }
};

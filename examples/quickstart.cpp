// Quickstart: stand up an 8-node Kosha cluster, mount it from one host,
// and use it like an ordinary file system. Shows the single file-system
// image, location transparency, and where the data physically lives.

#include <cstdio>

#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

int main() {
  using namespace kosha;

  // 1. Eight desktops contribute 4 GB each and join the Pastry overlay.
  ClusterConfig config;
  config.nodes = 8;
  config.node_capacity_bytes = 4ull << 30;
  config.kosha.distribution_level = 2;  // distribute two directory levels
  config.kosha.replicas = 2;            // two extra copies of everything
  KoshaCluster cluster(config);
  std::printf("cluster up: %zu nodes, distribution level %u, %u replicas\n\n",
              cluster.live_hosts().size(), config.kosha.distribution_level,
              config.kosha.replicas);

  // 2. Mount /kosha on host 0 and use it like a normal file system.
  KoshaMount mount(&cluster.daemon(0));
  if (!mount.mkdir_p("/alice/papers").ok() || !mount.mkdir_p("/alice/src/kosha").ok()) {
    std::fprintf(stderr, "mkdir failed\n");
    return 1;
  }
  (void)mount.write_file("/alice/papers/sc04.txt", "Kosha: a p2p enhancement for NFS");
  (void)mount.write_file("/alice/src/kosha/main.c", "int main() { return 0; }");

  const auto text = mount.read_file("/alice/papers/sc04.txt");
  std::printf("read back: \"%s\"\n\n", text.ok() ? text->c_str() : "<error>");

  // 3. The same namespace is visible from every other host.
  KoshaMount other(&cluster.daemon(5));
  const auto listing = other.list("/alice");
  std::printf("/alice as seen from host 5:\n");
  if (listing.ok()) {
    for (const auto& entry : listing.value()) {
      std::printf("  %-8s %s\n",
                  entry.type == fs::FileType::kDirectory ? "dir" : "file",
                  entry.name.c_str());
    }
  }

  // 4. Peek under the hood: which nodes actually store the bytes?
  std::printf("\nphysical placement (bytes in each node's kosha_store):\n");
  for (const auto host : cluster.live_hosts()) {
    std::printf("  host %u: %8llu bytes, primary for %zu anchors\n", host,
                static_cast<unsigned long long>(cluster.server(host).store().used_bytes()),
                cluster.replicas(host).primaries().size());
  }
  return 0;
}

file(REMOVE_RECURSE
  "libkosha_fs.a"
)

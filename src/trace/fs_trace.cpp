#include "trace/fs_trace.hpp"

#include <algorithm>
#include <cmath>

#include "common/path.hpp"
#include "common/rng.hpp"
#include "kosha/placement.hpp"

namespace kosha::trace {

FsTrace generate_fs_trace(const FsTraceConfig& config) {
  Rng rng(config.seed);
  FsTrace trace;

  // Zipf-like file counts per user.
  std::vector<double> weight(config.users);
  double weight_sum = 0;
  for (std::size_t u = 0; u < config.users; ++u) {
    weight[u] = 1.0 / std::pow(static_cast<double>(u + 1), config.user_skew);
    weight_sum += weight[u];
  }
  std::vector<std::size_t> files_per_user(config.users);
  std::size_t assigned = 0;
  for (std::size_t u = 0; u < config.users; ++u) {
    files_per_user[u] = static_cast<std::size_t>(
        static_cast<double>(config.files) * weight[u] / weight_sum);
    assigned += files_per_user[u];
  }
  for (std::size_t u = 0; assigned < config.files; u = (u + 1) % config.users) {
    ++files_per_user[u];
    ++assigned;
  }

  // Log-normal sizes with a heavy tail, scaled to the configured total.
  // A second scaling pass compensates for the min/max clamping so the
  // aggregate matches the paper's 17.9 GB closely.
  std::vector<double> raw(config.files);
  double raw_sum = 0;
  for (auto& value : raw) {
    value = std::exp(rng.next_gaussian() * 1.8 + 2.0);
    raw_sum += value;
  }
  double scale = static_cast<double>(config.total_bytes) / raw_sum;
  constexpr double kMinBytes = 128.0;
  constexpr double kMaxBytes = 512.0 * 1024 * 1024;
  for (int pass = 0; pass < 4; ++pass) {
    double clamped_sum = 0;
    for (const auto value : raw) {
      clamped_sum += std::clamp(value * scale, kMinBytes, kMaxBytes);
    }
    scale *= static_cast<double>(config.total_bytes) / clamped_sum;
  }

  trace.files.reserve(config.files);
  std::size_t file_index = 0;
  for (std::size_t u = 0; u < config.users; ++u) {
    const std::string home = "/u" + std::to_string(u);
    trace.directories.push_back(home);

    // Per-user directory tree sized to the user's file count.
    struct Dir {
      std::string path;
      unsigned depth;
    };
    std::vector<Dir> dirs{{home, 1}};
    const std::size_t dir_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(files_per_user[u]) /
                                    config.files_per_dir));
    while (dirs.size() < dir_count) {
      const Dir& parent = dirs[rng.next_below(dirs.size())];
      if (parent.depth >= config.max_depth) continue;
      Dir child{parent.path + "/" + rng.next_name(4), parent.depth + 1};
      trace.directories.push_back(child.path);
      dirs.push_back(std::move(child));
    }

    for (std::size_t f = 0; f < files_per_user[u]; ++f, ++file_index) {
      const Dir& dir = dirs[rng.next_below(dirs.size())];
      TraceFile file;
      file.path = dir.path + "/" + rng.next_name(6);
      file.size = static_cast<std::uint64_t>(
          std::clamp(raw[file_index] * scale, kMinBytes, kMaxBytes));
      trace.total_bytes += file.size;
      trace.files.push_back(std::move(file));
    }
  }
  return trace;
}

std::string file_anchor_name(const std::string& path, unsigned level) {
  const auto components = split_path(path);
  if (components.size() <= 1) return "/";  // file directly under the root
  const auto dir_depth = static_cast<unsigned>(components.size() - 1);
  const unsigned anchor = anchor_depth(level, dir_depth);
  if (anchor == 0) return "/";
  return components[anchor - 1];
}

}  // namespace kosha::trace

# Empty dependencies file for posix_app.
# This may be replaced when dependencies are built.

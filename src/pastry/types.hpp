#pragma once

// Shared Pastry types.

#include "common/uint128.hpp"

namespace kosha::pastry {

/// 128-bit node identifier in the circular Pastry id space.
using NodeId = Uint128;
/// 128-bit object key; lives in the same space as NodeId.
using Key = Uint128;

/// Overlay tuning parameters (defaults follow Rowstron & Druschel).
struct PastryConfig {
  /// b: digits are base 2^b. The paper quotes typical bases of 16 or 32.
  unsigned bits_per_digit = 4;
  /// l: leaf set size; l/2 numerically smaller and l/2 larger neighbors.
  unsigned leaf_set_size = 16;

  [[nodiscard]] constexpr unsigned digits() const { return 128 / bits_per_digit; }
  [[nodiscard]] constexpr unsigned columns() const { return 1u << bits_per_digit; }
  [[nodiscard]] constexpr unsigned leaf_half() const { return leaf_set_size / 2; }
};

}  // namespace kosha::pastry

#pragma once

// Lightweight Result<T, E>: value-or-error without exceptions on hot paths.
//
// NFS-style layers report errno-like status codes; Result keeps those codes
// in-band (C++ Core Guidelines E.27 style) while remaining cheap to return.

#include <cassert>
#include <utility>
#include <variant>

namespace kosha {

template <typename T, typename E>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(E error) : storage_(std::in_place_index<1>, std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] E error() const {
    assert(!ok());
    return std::get<1>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, E> storage_;
};

/// Result specialisation for operations that return no value.
struct Unit {
  friend constexpr bool operator==(const Unit&, const Unit&) = default;
};

}  // namespace kosha

// An "unmodified application" on Kosha (paper §1): a small log-structured
// journal written through the POSIX descriptor layer. The app never learns
// it is talking to a distributed file system — and its journal survives
// the crash of the node storing it.

#include <cstdio>
#include <string>

#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "kosha/posix.hpp"

namespace {

// The "application": appends entries to a journal and replays it.
int journal_append(kosha::PosixAdapter& posix, const char* path, const std::string& entry) {
  const kosha::Fd fd = posix.open(path, kosha::kWrOnly | kosha::kCreate | kosha::kAppend);
  if (!fd.valid()) return -1;
  const auto n = posix.write(fd, entry + "\n");
  (void)posix.close(fd);
  return n < 0 ? -1 : 0;
}

int journal_replay(kosha::PosixAdapter& posix, const char* path) {
  const kosha::Fd fd = posix.open(path, kosha::kRdOnly);
  if (!fd.valid()) return -1;
  std::string all;
  char buffer[256];
  for (;;) {
    const auto n = posix.read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    all.append(buffer, static_cast<std::size_t>(n));
  }
  (void)posix.close(fd);
  int entries = 0;
  std::size_t start = 0;
  while (start < all.size()) {
    const auto end = all.find('\n', start);
    if (end == std::string::npos) break;
    std::printf("    replay: %s\n", all.substr(start, end - start).c_str());
    ++entries;
    start = end + 1;
  }
  return entries;
}

}  // namespace

int main() {
  using namespace kosha;

  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 2;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  PosixAdapter posix(&mount);

  std::printf("a plain POSIX application writing its journal to /kosha:\n\n");
  (void)posix.mkdir("/app");
  for (int i = 0; i < 5; ++i) {
    if (journal_append(posix, "/app/journal", "transaction " + std::to_string(i)) != 0) {
      std::fprintf(stderr, "append failed\n");
      return 1;
    }
  }
  std::printf("  wrote 5 entries; replaying:\n");
  int entries = journal_replay(posix, "/app/journal");
  std::printf("  -> %d entries\n\n", entries);

  // Crash whichever node holds the journal; the app never notices.
  const auto vh = mount.resolve("/app/journal");
  const net::HostId primary = cluster.daemon(0).handle_table().find(*vh)->real.server;
  if (primary != 0) {
    std::printf("crashing storage node %u mid-run...\n", primary);
    cluster.fail_node(primary);
  }
  if (journal_append(posix, "/app/journal", "transaction after crash") != 0) {
    std::fprintf(stderr, "append after crash failed\n");
    return 1;
  }
  std::printf("  appended one more entry; replaying:\n");
  entries = journal_replay(posix, "/app/journal");
  std::printf("  -> %d entries (failovers performed by koshad: %llu)\n", entries,
              static_cast<unsigned long long>(cluster.daemon(0).stats().failovers));
  return 0;
}

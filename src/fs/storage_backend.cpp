#include "fs/storage_backend.hpp"

#include "fs/cas_fs.hpp"
#include "fs/local_fs.hpp"

namespace kosha::fs {

const char* to_string(FsStatus status) {
  switch (status) {
    case FsStatus::kOk:
      return "OK";
    case FsStatus::kNoEnt:
      return "NOENT";
    case FsStatus::kExist:
      return "EXIST";
    case FsStatus::kNotDir:
      return "NOTDIR";
    case FsStatus::kIsDir:
      return "ISDIR";
    case FsStatus::kNotEmpty:
      return "NOTEMPTY";
    case FsStatus::kNoSpace:
      return "NOSPC";
    case FsStatus::kInval:
      return "INVAL";
    case FsStatus::kStale:
      return "STALE";
    case FsStatus::kCorrupt:
      return "CORRUPT";
  }
  return "?";
}

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kFlat:
      return "flat";
    case BackendKind::kCas:
      return "cas";
  }
  return "?";
}

bool parse_backend(std::string_view text, BackendKind* out) {
  if (text == "flat") {
    *out = BackendKind::kFlat;
    return true;
  }
  if (text == "cas") {
    *out = BackendKind::kCas;
    return true;
  }
  return false;
}

std::unique_ptr<StorageBackend> make_backend(const StorageConfig& config) {
  switch (config.backend) {
    case BackendKind::kCas:
      return std::make_unique<CasFs>(config);
    case BackendKind::kFlat:
      break;
  }
  return std::make_unique<LocalFs>(config.fs);
}

}  // namespace kosha::fs

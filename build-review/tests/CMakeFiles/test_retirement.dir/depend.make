# Empty dependencies file for test_retirement.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kosha_shell.dir/kosha_shell.cpp.o"
  "CMakeFiles/kosha_shell.dir/kosha_shell.cpp.o.d"
  "kosha_shell"
  "kosha_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

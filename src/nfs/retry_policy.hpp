#pragma once

// Client-side RPC retry policy and overload-control primitives.
//
// Transient message loss (fault-plan drops, brownouts, partitions) is
// retried with exponential backoff charged on the virtual clock; a host
// that is *permanently* down (SimNetwork liveness flag) or absent from the
// server directory fails in one timeout without retries, so the binary
// up/down experiments keep their seed cost model. Retransmissions reuse
// the original xid — the server's duplicate-request cache relies on that
// to make retried non-idempotent ops safe (NFSv3 practice).
//
// Retransmission without restraint is how flash crowds turn into
// metastable congestive collapse: every abandoned-but-queued request still
// burns server service time ("dead work"), so once queueing delay exceeds
// the client's patience, retries multiply offered load past capacity and
// the system stays collapsed after the trigger is gone. The primitives
// below (token-bucket RetryBudget, per-server CircuitBreaker, and the
// OverloadControlConfig knobs that bound server admission) exist to make
// that amplification impossible; see DESIGN's overload-control section and
// bench/overload_bench for the A/B demonstration.

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"

namespace kosha::nfs {

struct RetryPolicy {
  /// Total attempts per RPC (first try included). 1 = never retry.
  unsigned max_attempts = 4;
  /// Backoff before the first retransmission; doubles per attempt.
  SimDuration initial_backoff = SimDuration::millis(10);
  double multiplier = 2.0;
  /// Backoff ceiling.
  SimDuration max_backoff = SimDuration::millis(320);
  /// Uniform jitter added per backoff, as a fraction of the backoff
  /// (decorrelates clients that lost the same message).
  double jitter = 0.25;
  /// How long the event-driven client waits for a *delivered* request's
  /// reply before abandoning the attempt and retransmitting. 0 (default)
  /// keeps the legacy model: a delivered request is awaited forever, only
  /// outright message loss costs the network rpc_timeout. Setting this is
  /// what makes retry storms possible at all — an overloaded server whose
  /// queueing delay exceeds the timeout sees every request twice — so it
  /// is the knob the overload-control experiments turn.
  SimDuration response_timeout{};

  /// Backoff before retry `attempt` (0-based): the clamped exponential
  /// min(initial_backoff * multiplier^attempt, max_backoff), computed
  /// directly instead of re-deriving the whole doubling chain per call.
  /// The multiplier-2 fast path is exact integer doubling (bit shifts with
  /// an overflow guard), matching the historical per-step loop bit for
  /// bit; other multipliers evaluate one pow() with the same clamp.
  [[nodiscard]] SimDuration backoff_for(unsigned attempt) const {
    const std::int64_t cap = max_backoff.ns;
    std::int64_t d = initial_backoff.ns;
    if (d >= cap) return max_backoff;
    if (multiplier == 2.0) {
      // d << attempt, saturating at the ceiling: d exceeds it iff
      // d > floor(cap / 2^shift), which also rules out the overflow.
      const unsigned shift = std::min(attempt, 62u);
      if (d > (cap >> shift)) return max_backoff;
      return SimDuration::nanos(d << shift);
    }
    const double scaled =
        static_cast<double>(d) * std::pow(multiplier, static_cast<double>(attempt));
    if (!(scaled < static_cast<double>(cap))) return max_backoff;
    return SimDuration::nanos(static_cast<std::int64_t>(scaled));
  }

  /// backoff_for plus one uniform jitter draw from `rng` (the caller's
  /// seeded stream, so same seed => same backoff sequence). Consumes
  /// exactly one draw when jitter > 0, none otherwise.
  [[nodiscard]] SimDuration jittered_backoff(unsigned attempt, Rng& rng) const {
    SimDuration wait = backoff_for(attempt);
    if (jitter > 0.0) {
      wait += SimDuration::nanos(static_cast<std::int64_t>(
          static_cast<double>(wait.ns) * jitter * rng.next_double()));
    }
    return wait;
  }
};

/// Overload-control knobs, shared by client, network admission, servers,
/// koshad, and the repair daemon (KoshaConfig::overload). Everything is
/// inert while `enabled` is false: no counter moves, no Rng draw happens,
/// no deadline is stamped — runs with the struct present but disabled are
/// numerically identical to runs predating it.
struct OverloadControlConfig {
  bool enabled = false;

  /// Per-host bound on simultaneously admitted (arrived, not yet departed)
  /// RPCs. Arrivals beyond it are bounced with kOverloaded instead of
  /// queuing — a rejection costs one cheap reply message, not service time.
  unsigned max_inflight = 32;
  /// Background (low-priority) traffic sheds earlier: it is bounced once a
  /// host's in-flight count reaches this fraction of max_inflight, keeping
  /// headroom for client RPCs (anti-entropy yields to the foreground).
  double low_priority_fraction = 0.5;

  /// Token-bucket retry budget per client: a retransmission spends one
  /// token, every *issued* operation earns `retry_budget_refill`. With a
  /// refill rate r, retries can never exceed fraction r of offered load —
  /// the amplification bound that prevents metastable collapse.
  double retry_budget_cap = 16.0;
  double retry_budget_refill = 0.2;

  /// Per-server circuit breaker: this many consecutive failed attempts
  /// (abandonments or kOverloaded rejections) open the breaker, which then
  /// fails calls to that server fast — no messages, no queueing — for
  /// `breaker_cooldown` of virtual time before letting one probe through.
  unsigned breaker_threshold = 8;
  SimDuration breaker_cooldown = SimDuration::millis(50);

  /// Operation budget stamped by koshad at handler entry: the absolute
  /// deadline propagated through RpcContext so servers drop (and the
  /// failover ladder abandons) work the client has already given up on.
  /// 0 = no deadline propagation.
  SimDuration op_budget{};

  /// The repair daemon performs no pushes in a tick whose host has at
  /// least this many RPCs in flight (0 = never yield): repair tightens
  /// its own rate limit exactly when the foreground needs the capacity.
  unsigned repair_yield_inflight = 4;

  /// Low-priority admission bound derived from the knobs above (>= 1).
  [[nodiscard]] unsigned low_priority_inflight() const {
    const double bound = static_cast<double>(max_inflight) * low_priority_fraction;
    return std::max(1u, static_cast<unsigned>(bound));
  }
};

/// Token bucket bounding retransmissions (client-side). Deterministic and
/// allocation-free; fractional tokens let refill rates below one retry per
/// op express "at most r% retry amplification".
class RetryBudget {
 public:
  RetryBudget(double cap, double refill)
      : cap_(cap), refill_(refill), tokens_(cap) {}

  /// Credit for one issued operation.
  void earn() { tokens_ = std::min(cap_, tokens_ + refill_); }

  /// Try to pay for one retransmission. False = budget exhausted: the
  /// caller must fail fast instead of adding load.
  bool spend() {
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    ++exhausted_;
    return false;
  }

  [[nodiscard]] double tokens() const { return tokens_; }
  /// Retransmissions suppressed because the bucket was empty.
  [[nodiscard]] std::uint64_t exhausted() const { return exhausted_; }

 private:
  double cap_;
  double refill_;
  double tokens_;
  std::uint64_t exhausted_ = 0;
};

/// Per-server circuit breaker (client-side). Closed passes calls through;
/// `threshold` consecutive failures open it; an open breaker fails calls
/// fast until `cooldown` has elapsed, then admits a single half-open probe
/// whose outcome closes or re-opens it. All times are virtual.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(unsigned threshold, SimDuration cooldown)
      : threshold_(threshold), cooldown_(cooldown) {}

  /// May a call be attempted at `now`? An open breaker past its cooldown
  /// transitions to half-open and admits this one call as the probe.
  [[nodiscard]] bool allow(SimDuration now) {
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kHalfOpen:
        return false;  // one probe at a time
      case State::kOpen:
        if (now >= opened_at_ + cooldown_) {
          state_ = State::kHalfOpen;
          return true;
        }
        ++fast_fails_;
        return false;
    }
    return true;
  }

  void on_success() {
    state_ = State::kClosed;
    consecutive_failures_ = 0;
  }

  void on_failure(SimDuration now) {
    if (state_ == State::kHalfOpen) {
      // Failed probe: straight back to open for another cooldown.
      state_ = State::kOpen;
      opened_at_ = now;
      ++opens_;
      return;
    }
    ++consecutive_failures_;
    if (state_ == State::kClosed && threshold_ > 0 && consecutive_failures_ >= threshold_) {
      state_ = State::kOpen;
      opened_at_ = now;
      ++opens_;
    }
  }

  [[nodiscard]] State state() const { return state_; }
  /// closed->open and probe-failure re-open transitions.
  [[nodiscard]] std::uint64_t opens() const { return opens_; }
  /// Calls refused while open (within the cooldown window).
  [[nodiscard]] std::uint64_t fast_fails() const { return fast_fails_; }

 private:
  unsigned threshold_;
  SimDuration cooldown_;
  State state_ = State::kClosed;
  unsigned consecutive_failures_ = 0;
  SimDuration opened_at_{};
  std::uint64_t opens_ = 0;
  std::uint64_t fast_fails_ = 0;
};

/// One client's overload-control counters (NfsClient aggregates its budget
/// and breakers into this snapshot for the cluster's overload.* gauges).
struct OverloadClientStats {
  std::uint64_t budget_exhausted = 0;   // retransmissions suppressed: no tokens
  std::uint64_t breaker_opens = 0;      // breaker transitions to open
  std::uint64_t breaker_fast_fails = 0; // calls refused by an open breaker
  std::uint64_t overloaded_replies = 0; // kOverloaded outcomes observed
  std::uint64_t breakers_open = 0;      // breakers currently not closed
  double budget_tokens = 0.0;           // current token level

  friend bool operator==(const OverloadClientStats&, const OverloadClientStats&) = default;
};

}  // namespace kosha::nfs

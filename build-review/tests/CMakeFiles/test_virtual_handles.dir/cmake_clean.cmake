file(REMOVE_RECURSE
  "CMakeFiles/test_virtual_handles.dir/test_virtual_handles.cpp.o"
  "CMakeFiles/test_virtual_handles.dir/test_virtual_handles.cpp.o.d"
  "test_virtual_handles"
  "test_virtual_handles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtual_handles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_multi_client.
# This may be replaced when dependencies are built.

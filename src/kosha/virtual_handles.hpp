#pragma once

// Virtual file handle table (paper §4.1.2).
//
// NFS handles are opaque, so koshad hands the kernel *virtual* handles and
// keeps the mapping virtual handle -> (real handle, full virtual path).
// The full path is stored with every entry — it is what makes transparent
// failover possible: when the primary dies, the entry is dropped and the
// path is re-resolved to a replica. The table is deliberately not
// persistent: if koshad crashes the whole machine crashed (§4.4).

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "nfs/nfs_types.hpp"

namespace kosha {

/// Opaque identifier handed to clients of koshad.
struct VirtualHandle {
  std::uint64_t value = 0;

  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(const VirtualHandle&, const VirtualHandle&) = default;
};

/// What a virtual handle stands for.
struct VhEntry {
  std::string path;         // full virtual path (e.g. "/alice/src/main.c")
  std::string stored_path;  // path within the storage node's /kosha_store
  nfs::FileHandle real;     // current real handle on the storage node
  fs::FileType type = fs::FileType::kFile;
};

class VirtualHandleTable {
 public:
  /// Insert or refresh the mapping for `path`; returns its virtual handle
  /// (stable across refreshes of the same path).
  VirtualHandle bind(const std::string& path, const std::string& stored_path,
                     const nfs::FileHandle& real, fs::FileType type);

  [[nodiscard]] const VhEntry* find(VirtualHandle vh) const;
  [[nodiscard]] std::optional<VirtualHandle> find_by_path(const std::string& path) const;

  /// Drop one handle (e.g. after an RPC error, before re-resolution).
  void drop(VirtualHandle vh);
  /// Drop every handle under `path` (inclusive) — used after removes,
  /// renames and failovers that invalidate a subtree.
  void drop_subtree(const std::string& path);

  /// Rebind an existing handle to a new real handle (transparent failover:
  /// the client's virtual handle survives).
  bool rebind(VirtualHandle vh, const std::string& stored_path, const nfs::FileHandle& real);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::uint64_t next_ = 1;
  std::unordered_map<std::uint64_t, VhEntry> entries_;
  std::unordered_map<std::string, std::uint64_t> by_path_;
};

}  // namespace kosha

template <>
struct std::hash<kosha::VirtualHandle> {
  std::size_t operator()(const kosha::VirtualHandle& vh) const noexcept {
    return std::hash<std::uint64_t>{}(vh.value);
  }
};

// End-to-end smoke tests of the full Kosha stack: cluster + overlay +
// koshad + replication, through the path-level mount API.

#include <gtest/gtest.h>

#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

ClusterConfig small_cluster(std::size_t nodes, unsigned level, unsigned replicas) {
  ClusterConfig config;
  config.nodes = nodes;
  config.kosha.distribution_level = level;
  config.kosha.replicas = replicas;
  config.node_capacity_bytes = 1ull << 30;
  config.seed = 7;
  return config;
}

TEST(ClusterSmoke, WriteAndReadBack) {
  KoshaCluster cluster(small_cluster(8, 2, 1));
  KoshaMount mount(&cluster.daemon(0));

  ASSERT_TRUE(mount.mkdir_p("/alice/projects/kosha").ok());
  ASSERT_TRUE(mount.write_file("/alice/projects/kosha/readme.txt", "hello kosha").ok());
  const auto content = mount.read_file("/alice/projects/kosha/readme.txt");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "hello kosha");
}

TEST(ClusterSmoke, VisibleFromEveryClient) {
  KoshaCluster cluster(small_cluster(4, 1, 1));
  KoshaMount writer(&cluster.daemon(0));
  ASSERT_TRUE(writer.mkdir_p("/shared").ok());
  ASSERT_TRUE(writer.write_file("/shared/note", "location transparent").ok());

  for (const net::HostId host : cluster.live_hosts()) {
    KoshaMount reader(&cluster.daemon(host));
    const auto content = reader.read_file("/shared/note");
    ASSERT_TRUE(content.ok()) << "host " << host;
    EXPECT_EQ(content.value(), "location transparent");
  }
}

TEST(ClusterSmoke, ListingAndRemove) {
  KoshaCluster cluster(small_cluster(4, 2, 1));
  KoshaMount mount(&cluster.daemon(1));
  ASSERT_TRUE(mount.mkdir_p("/u/docs").ok());
  ASSERT_TRUE(mount.write_file("/u/docs/a.txt", "a").ok());
  ASSERT_TRUE(mount.write_file("/u/docs/b.txt", "b").ok());
  ASSERT_TRUE(mount.mkdir_p("/u/docs/old").ok());

  const auto listing = mount.list("/u/docs");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing.value().size(), 3u);

  ASSERT_TRUE(mount.remove("/u/docs/a.txt").ok());
  EXPECT_FALSE(mount.exists("/u/docs/a.txt"));
  ASSERT_TRUE(mount.rmdir("/u/docs/old").ok());
  EXPECT_FALSE(mount.exists("/u/docs/old"));
  EXPECT_TRUE(mount.exists("/u/docs/b.txt"));
}

TEST(ClusterSmoke, TransparentFailover) {
  KoshaCluster cluster(small_cluster(6, 1, 2));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/ha").ok());
  ASSERT_TRUE(mount.write_file("/ha/data", "survives failures").ok());

  // Find and kill the node that stores /ha (but never our client host 0).
  const auto vh = mount.resolve("/ha/data");
  ASSERT_TRUE(vh.ok());
  const auto* entry = cluster.daemon(0).handle_table().find(*vh);
  ASSERT_NE(entry, nullptr);
  const net::HostId victim = entry->real.server;
  if (victim != 0) {
    cluster.fail_node(victim);
    const auto content = mount.read_file("/ha/data");
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(content.value(), "survives failures");
  }
}

TEST(ClusterSmoke, RenameFileSameDirectory) {
  KoshaCluster cluster(small_cluster(4, 1, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/r").ok());
  ASSERT_TRUE(mount.write_file("/r/old", "x").ok());
  ASSERT_TRUE(mount.rename("/r/old", "/r/new").ok());
  EXPECT_FALSE(mount.exists("/r/old"));
  const auto content = mount.read_file("/r/new");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "x");
}

TEST(ClusterSmoke, NodeJoinMigratesOwnership) {
  KoshaCluster cluster(small_cluster(3, 1, 1));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/grow").ok());
  ASSERT_TRUE(mount.write_file("/grow/file", "here").ok());
  for (int i = 0; i < 5; ++i) (void)cluster.add_node();

  KoshaMount fresh(&cluster.daemon(cluster.live_hosts().back()));
  const auto content = fresh.read_file("/grow/file");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "here");
}

}  // namespace
}  // namespace kosha

# Empty dependencies file for kosha_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_equivalence.dir/test_baseline_equivalence.cpp.o"
  "CMakeFiles/test_baseline_equivalence.dir/test_baseline_equivalence.cpp.o.d"
  "test_baseline_equivalence"
  "test_baseline_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libkosha_lint_core.a"
)

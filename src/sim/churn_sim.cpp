// Continuous-churn soak: a live self-healing cluster under seeded
// exponential join/fail arrivals (see availability_sim.hpp for the API).
//
// Measurement is split between two vantage points:
//   * the client view — host 0 (never failed) re-reads every file each
//     sample through its mount; availability is the fraction that return
//     the right bytes, failovers and degraded replica reads included;
//   * the oracle view — walks every live store directly (no RPCs, no
//     clock) and counts how many live hosts hold each file's unique
//     content. >= 1 copy = durable; >= min(K+1, live) copies = fully
//     replicated. MTTR is the gap from a failure to the first sample
//     where every surviving file is back at full replication.
//
// Everything stochastic draws from seeded streams (the arrival Rng here,
// the loop's jitter stream inside the cluster), so two same-seed runs
// produce byte-identical timelines and final-state digests.

#include "sim/availability_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "fs/local_fs.hpp"
#include "kosha/audit.hpp"
#include "kosha/mount.hpp"
#include "net/fault_plan.hpp"
#include "nfs/nfs_server.hpp"

namespace kosha::sim {
namespace {

/// Two-decimal fixed-point rendering; keeps the timeline CSV byte-stable.
std::string fmt_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

/// All regular-file contents under `dir` in one store (oracle view; each
/// dataset file carries unique bytes, so content identifies the file and
/// primary copies and /.r/ replica copies count alike).
void collect_contents(const fs::StorageBackend& store, fs::InodeId dir, std::set<std::string>* out) {
  const auto entries = store.readdir(dir);
  if (!entries.ok()) return;
  for (const auto& entry : entries.value()) {
    if (entry.type == fs::FileType::kDirectory) {
      collect_contents(store, entry.inode, out);
    } else if (entry.type == fs::FileType::kFile) {
      const auto attr = store.getattr(entry.inode);
      if (!attr.ok()) continue;
      const auto data =
          store.read(entry.inode, 0, static_cast<std::uint32_t>(attr.value().size));
      if (data.ok()) out->insert(std::move(data).value());
    }
  }
}

struct Dataset {
  std::vector<std::string> paths;
  std::vector<std::string> contents;
};

ChurnSample take_sample(KoshaCluster& cluster, KoshaMount& mount, const Dataset& dataset,
                        unsigned replicas) {
  ChurnSample sample;
  sample.at = cluster.clock().now();
  const auto live = cluster.live_hosts();
  sample.live_nodes = live.size();
  sample.undetected = cluster.undetected_failures();

  // Oracle view: which live hosts hold each file's content.
  std::vector<std::set<std::string>> held(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    const fs::StorageBackend& store = cluster.server(live[i]).store();
    collect_contents(store, store.root(), &held[i]);
  }
  const std::size_t need =
      std::min<std::size_t>(static_cast<std::size_t>(replicas) + 1, live.size());
  std::size_t durable = 0;
  std::size_t full = 0;
  for (const auto& content : dataset.contents) {
    std::size_t copies = 0;
    for (const auto& host_contents : held) copies += host_contents.count(content);
    durable += copies >= 1;
    full += copies >= need;
  }

  // Client view: re-read everything through the mount (charges time,
  // exercises failover and degraded replica reads).
  std::size_t readable = 0;
  for (std::size_t i = 0; i < dataset.paths.size(); ++i) {
    const auto read = mount.read_file(dataset.paths[i]);
    readable += read.ok() && read.value() == dataset.contents[i];
  }

  const auto pct = [](std::size_t num, std::size_t den) {
    return den == 0 ? 100.0 : 100.0 * static_cast<double>(num) / static_cast<double>(den);
  };
  sample.availability_pct = pct(readable, dataset.paths.size());
  sample.durability_pct = pct(durable, dataset.contents.size());
  sample.full_pct = pct(full, dataset.contents.size());
  return sample;
}

void append_sample_csv(const ChurnSample& sample, std::string* csv) {
  *csv += "S," + std::to_string(sample.at.ns) + "," + std::to_string(sample.live_nodes) + "," +
          fmt_pct(sample.availability_pct) + "," + fmt_pct(sample.durability_pct) + "," +
          fmt_pct(sample.full_pct) + "," + std::to_string(sample.undetected) + "\n";
}

}  // namespace

ChurnResult simulate_churn(const ChurnSimConfig& config) {
  ClusterConfig cc;
  cc.nodes = config.nodes;
  cc.seed = config.seed;
  cc.event_driven = true;
  cc.kosha.replicas = config.replicas;
  cc.kosha.distribution_level = config.level;
  cc.self_heal.enabled = !config.oracle;
  cc.self_heal.detector = config.detector;
  cc.self_heal.repair = config.repair;
  KoshaCluster cluster(cc);
  KoshaMount mount(&cluster.daemon(0));  // host 0 is the never-failed client

  // Seed the dataset before any fault injection: every file gets unique
  // content so the oracle walk can identify copies by bytes alone.
  Dataset dataset;
  for (std::size_t i = 0; i < config.files; ++i) {
    const std::string dir = "/churn/d" + std::to_string(i % 6);
    if (!mount.mkdir_p(dir).ok()) continue;
    const std::string path = dir + "/f" + std::to_string(i);
    const std::string content =
        "content-" + std::to_string(i) + "-" + std::to_string(config.seed);
    if (!mount.write_file(path, content).ok()) continue;
    dataset.paths.push_back(path);
    dataset.contents.push_back(content);
  }

  if (config.drop_probability > 0.0) {
    net::FaultPlanConfig fault;
    fault.seed = config.seed ^ 0x9E3779B97F4A7C15ull;
    fault.drop_probability = config.drop_probability;
    cluster.network().set_fault_plan(std::make_unique<net::FaultPlan>(fault));
  }

  ChurnResult result;
  Rng arrivals(config.seed ^ 0xC2B2AE3D27D4EB4Full);
  const auto exp_draw = [&arrivals](SimDuration mean) {
    const double drawn =
        -static_cast<double>(mean.ns) * std::log(1.0 - arrivals.next_double());
    return SimDuration::nanos(std::max<std::int64_t>(1, static_cast<std::int64_t>(drawn)));
  };

  EventLoop& loop = cluster.loop();
  const SimDuration start = cluster.clock().now();
  const SimDuration end = start + config.duration;
  SimDuration next_fail = start + exp_draw(config.mean_fail_interarrival);
  SimDuration next_join = start + exp_draw(config.mean_join_interarrival);
  SimDuration next_sample = start + config.sample_period;
  std::vector<SimDuration> fail_times;

  const auto bump = [](SimDuration* next, SimDuration step, SimDuration now) {
    do {
      *next += step;
    } while (*next <= now);
  };

  while (true) {
    const SimDuration t = std::min({next_fail, next_join, next_sample});
    if (t > end) break;
    loop.run_until_time(t);
    if (next_fail == t) {
      auto live = cluster.live_hosts();
      live.erase(std::remove(live.begin(), live.end(), net::HostId{0}), live.end());
      if (live.size() + 1 > config.min_live && !live.empty()) {
        const net::HostId victim = live[arrivals.next_below(live.size())];
        cluster.fail_node(victim);
        ++result.failures;
        fail_times.push_back(cluster.clock().now());
        result.timeline_csv +=
            "F," + std::to_string(t.ns) + "," + std::to_string(victim) + "\n";
      }
      next_fail = t + exp_draw(config.mean_fail_interarrival);
    }
    if (next_join == t) {
      const net::HostId added = cluster.add_node();
      ++result.joins;
      result.timeline_csv += "J," + std::to_string(t.ns) + "," + std::to_string(added) + "\n";
      next_join = t + exp_draw(config.mean_join_interarrival);
    }
    if (next_sample == t) {
      const ChurnSample sample = take_sample(cluster, mount, dataset, config.replicas);
      append_sample_csv(sample, &result.timeline_csv);
      result.timeline.push_back(sample);
      bump(&next_sample, config.sample_period, cluster.clock().now());
    }
  }

  // Convergence tail: no more arrivals; keep sampling until every
  // surviving file is fully replicated and no failure is undetected, or
  // give up at 4x the soak duration.
  const SimDuration hard_stop = start + config.duration * 4;
  while (true) {
    loop.run_until_time(next_sample);
    const ChurnSample sample = take_sample(cluster, mount, dataset, config.replicas);
    append_sample_csv(sample, &result.timeline_csv);
    result.timeline.push_back(sample);
    bump(&next_sample, config.sample_period, cluster.clock().now());
    if (sample.full_pct >= 100.0 && sample.undetected == 0) {
      result.converged = true;
      break;
    }
    if (cluster.clock().now() >= hard_stop) break;
  }

  // Detection latency: recorded by the cluster when the first survivor
  // confirms each real death. Oracle mode detects by fiat.
  if (config.oracle) {
    result.detected = result.failures;
  } else {
    for (const auto& detection : cluster.detections()) {
      const double ms = (detection.detected_at - detection.failed_at).to_millis();
      ++result.detected;
      result.detect_ms_mean += ms;
      result.detect_ms_max = std::max(result.detect_ms_max, ms);
    }
    if (result.detected > 0) result.detect_ms_mean /= static_cast<double>(result.detected);
  }

  // MTTR: failure -> first subsequent sample at 100% full replication
  // (sample-grid resolution).
  for (const SimDuration failed_at : fail_times) {
    for (const ChurnSample& sample : result.timeline) {
      if (sample.at <= failed_at || sample.full_pct < 100.0) continue;
      const double ms = (sample.at - failed_at).to_millis();
      ++result.repaired;
      result.mttr_ms_mean += ms;
      result.mttr_ms_max = std::max(result.mttr_ms_max, ms);
      break;
    }
  }
  if (result.repaired > 0) result.mttr_ms_mean /= static_cast<double>(result.repaired);

  for (const ChurnSample& sample : result.timeline) {
    result.availability_pct += sample.availability_pct;
    result.min_durability_pct = std::min(result.min_durability_pct, sample.durability_pct);
  }
  if (!result.timeline.empty()) {
    result.availability_pct /= static_cast<double>(result.timeline.size());
    result.final_durability_pct = result.timeline.back().durability_pct;
    result.final_full_pct = result.timeline.back().full_pct;
  }
  result.digest = audit_digest(cluster);
  result.timeline_csv += "D," + result.digest + "\n";
  return result;
}

}  // namespace kosha::sim

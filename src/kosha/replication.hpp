#pragma once

// Replica management (paper §4.2-§4.4).
//
// Each node's primary content (the anchor subtrees it owns) is replicated
// on its K closest leaf-set neighbors. Replicas live in a hidden area of
// the replica node's store (/.r/<primary-id>/...), inaccessible through
// koshad, and count against the node's capacity. The primary:
//   * mirrors every mutation to its replicas. How the fan-out charges the
//     foreground op depends on KoshaConfig::mirror_mode: off the critical
//     path entirely (kBackground, the paper's model — traffic counted, no
//     delay), one wire at a time (kSequential — the op pays the sum), or
//     all K wires at once (kOverlapped — the op pays only the slowest
//     target),
//   * re-establishes replicas when its leaf set changes,
//   * migrates anchors whose key space moved to a newly joined node,
//   * and is replaced on failure by the neighbor that now owns its keys,
//     which promotes its hidden copy to live state (transparent fault
//     handling; incomplete copies are detected via MIGRATION_NOT_COMPLETE
//     and repaired from a complete replica).

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kosha/runtime.hpp"

namespace kosha {

class Counter;

/// Name of the in-band flag guarding content migration (paper §4.4).
inline constexpr const char* kMigrationFlag = "MIGRATION_NOT_COMPLETE";
/// Reserved top-level directory holding replica copies on each node.
inline constexpr const char* kReplicaArea = ".r";

/// Per-primary mirroring costs, kept in both charging models so any mode's
/// run can report what the other two would have cost (bench/concurrency
/// compares them without re-running).
struct MirrorStats {
  std::uint64_t rpcs = 0;     // individual mirror messages sent
  std::uint64_t batches = 0;  // mutations that fanned out (>=1 live target)
  /// Mirror applications that failed on a target (typically NOSPC): the
  /// replica is stale until the repair daemon's audit re-pushes it.
  std::uint64_t errors = 0;
  /// Total wire time one-at-a-time execution would charge (sum over
  /// targets) vs. all-at-once execution (max per batch, accumulated).
  SimDuration sequential{};
  SimDuration overlapped{};

  friend bool operator==(const MirrorStats&, const MirrorStats&) = default;
};

class ReplicaManager {
 public:
  ReplicaManager(Runtime* runtime, net::HostId host, pastry::NodeId id);

  [[nodiscard]] net::HostId host() const { return host_; }
  [[nodiscard]] pastry::NodeId id() const { return id_; }

  // --- primary registry -------------------------------------------------
  /// Record that this node is primary for an anchor subtree rooted at
  /// `stored_anchor_path` whose DHT name is `effective_name`, and push the
  /// (initially empty) subtree to the current replica targets.
  void register_primary(const std::string& stored_anchor_path,
                        const std::string& effective_name);
  void unregister_primary(const std::string& stored_anchor_path);
  [[nodiscard]] const std::map<std::string, std::string>& primaries() const {
    return primaries_;
  }
  [[nodiscard]] const std::vector<pastry::NodeId>& targets() const { return targets_; }

  // --- mutation mirroring (called by koshad after the primary op) -------
  // Each returns the number of mirror messages actually sent (0 when the
  // path is outside any registered anchor or no target is live), so the
  // caller can account the fan-out it triggered.
  std::size_t mirror_mkdir_p(const std::string& stored_path);
  std::size_t mirror_create(const std::string& stored_path, std::uint32_t mode,
                            std::uint32_t uid, std::uint32_t gid);
  std::size_t mirror_write(const std::string& stored_path, std::uint64_t offset,
                           std::string_view data);
  std::size_t mirror_truncate(const std::string& stored_path, std::uint64_t size);
  std::size_t mirror_set_mode(const std::string& stored_path, std::uint32_t mode);
  std::size_t mirror_symlink(const std::string& stored_path, const std::string& target);
  std::size_t mirror_remove(const std::string& stored_path);
  std::size_t mirror_rmdir(const std::string& stored_path);
  std::size_t mirror_remove_recursive(const std::string& stored_path);
  std::size_t mirror_rename(const std::string& from_path, const std::string& to_path);

  [[nodiscard]] const MirrorStats& mirror_stats() const { return mirror_stats_; }

  // --- membership events (wired to the overlay leaf-set callback) -------
  /// React to a leaf-set change: refresh replica targets, migrate anchors
  /// whose owner changed (node join), and promote replicas whose primary
  /// died (node failure).
  void on_neighbors_changed();

  /// One anti-entropy pass (repair daemon): everything
  /// on_neighbors_changed() does, plus a per-anchor audit that re-pushes
  /// anchors missing or incomplete on a replica target (at most
  /// `max_pushes` re-pushes per pass — the repair rate limit) and
  /// reclaims stale hidden copies whose live primary no longer lists this
  /// node as a target (e.g. a delete_from that could not reach us while
  /// we were down or browned out).
  struct ReconcileReport {
    std::size_t promoted = 0;     // anchors promoted from a dead primary
    std::size_t handed_off = 0;   // anchors copied to their new owner
    std::size_t pushed = 0;       // anchors re-pushed by the audit
    std::size_t dropped = 0;      // stale hidden copies reclaimed
    std::size_t missing = 0;      // (anchor, target) holes observed
  };
  ReconcileReport reconcile(std::size_t max_pushes);

  /// Graceful departure (paper §4.3: nodes may *leave*, not only fail):
  /// hand every primary anchor to the node that will own its key once this
  /// node is gone. Called before the overlay removes the node; loses
  /// nothing even with zero replicas.
  void evacuate();

  // --- replica-holder side ----------------------------------------------
  /// Invoked by a primary when it starts replicating to this node.
  void accept_replica(pastry::NodeId primary, const std::string& stored_anchor_path,
                      const std::string& effective_name);
  /// Invoked by a primary that stops using this node as a replica.
  void drop_replicas_of(pastry::NodeId primary);

  /// Hidden-area root for copies of `primary`'s content on any node.
  [[nodiscard]] static std::string hidden_root(pastry::NodeId primary);

  /// Introspection for tests.
  [[nodiscard]] const std::map<Uint128, std::map<std::string, std::string>>& held() const {
    return replicas_held_;
  }

 private:
  [[nodiscard]] fs::StorageBackend& local_store() const;
  [[nodiscard]] fs::StorageBackend* store_of(net::HostId host) const;
  /// Longest registered anchor path containing `stored_path`, or empty.
  [[nodiscard]] std::string anchor_of(const std::string& stored_path) const;
  /// Live replica target hosts for mirroring.
  [[nodiscard]] std::vector<net::HostId> live_target_hosts() const;
  /// Charge + apply one mirror message per live target, under the
  /// configured MirrorMode's timing model. `apply` receives the target
  /// host; returns the number of messages sent.
  std::size_t fan_out(std::size_t payload, const std::function<void(net::HostId)>& apply);
  /// fan_out specialised to "apply `op` at the replicated stored path on
  /// every live target" (every mirror op except rename).
  std::size_t for_each_replica(
      const std::string& stored_path, std::size_t payload,
      const std::function<void(fs::StorageBackend&, const std::string&)>& op);

  /// Record a failed mirror application: counted in MirrorStats and the
  /// replica.mirror.errors metric so staleness is visible, never fatal —
  /// the audit pass re-pushes the anchor.
  void note_mirror_error();

  /// If a fault plan has `peer` (or this host) in a brownout right now,
  /// advance the virtual clock past the window (chained windows included)
  /// before starting a repair copy: membership-driven re-replication waits
  /// for a stalled neighbor instead of replicating into the outage. No-op
  /// without a fault plan, and while the clock is paused (store-direct
  /// async mirroring is already immune to message loss).
  void stall_through_brownout(net::HostId peer);

  /// Copy one anchor subtree to a target's hidden area (flag-guarded).
  /// Returns false if interrupted by fault injection.
  bool push_anchor_to(pastry::NodeId target, const std::string& stored_anchor_path);
  /// Push all anchors to one target under a single migration flag.
  void push_all_to(pastry::NodeId target);
  void delete_from(pastry::NodeId target);

  /// Take over a dead primary's anchor: move the hidden copy live,
  /// register, and re-replicate. Repairs from a complete replica if this
  /// node's copy carries the migration flag.
  void promote(pastry::NodeId dead_primary,
               const std::map<std::string, std::string>& anchors);
  /// Give a dead primary's anchor to the node that now owns its key but
  /// holds no copy of it (replica-holder-driven promotion). Returns true
  /// when content was actually copied over.
  bool hand_off_replica(pastry::NodeId dead_primary, pastry::NodeId owner,
                        const std::string& anchor, const std::string& name);

  // --- shared membership-reaction stages (on_neighbors_changed and
  // reconcile run the same three, reconcile adds the audit) --------------
  /// Stage 1: promote/hand off/discard anchors of dead primaries.
  /// Returns true when local primary content changed (promotion).
  bool reconcile_dead_primaries(ReconcileReport* report);
  /// Stage 2: re-derive replica targets from the leaf set; tear down
  /// removed targets, push to new ones (all of them if content changed).
  void refresh_targets(bool content_changed, ReconcileReport* report);
  /// Stage 3: migrate anchors whose key space moved to another owner.
  void migrate_moved_anchors();
  /// Audit stage (reconcile only): verify each registered anchor exists,
  /// flag-free, on each live target; re-push at most `max_pushes` holes
  /// and reclaim hidden copies no live primary wants here any more.
  void audit_replicas(std::size_t max_pushes, ReconcileReport* report);
  /// Drop a (stale) hidden copy held for `primary`.
  void discard_replica(pastry::NodeId primary, const std::string& anchor);

  /// Hand an anchor over to `new_owner` (key space moved on join); the
  /// local copy is demoted to a replica (paper §4.3.1).
  void migrate_anchor_to(pastry::NodeId new_owner, const std::string& stored_anchor_path,
                         const std::string& effective_name);

  Runtime* runtime_;
  net::HostId host_;
  pastry::NodeId id_;

  /// Replication-event counters, resolved once at construction (all null
  /// when metrics are off).
  Counter* mirror_ops_ = nullptr;     // per-target mirrored mutations
  Counter* mirror_errors_ = nullptr;  // mirror applications that failed
  Counter* pushes_ = nullptr;         // anchor subtrees pushed to a target
  Counter* promotions_ = nullptr;     // replicas promoted to primary
  Counter* repairs_ = nullptr;        // incomplete copies repaired from a peer
  Counter* migrations_ = nullptr;     // anchors migrated to a new owner
  Counter* handoffs_ = nullptr;       // dead primaries' anchors handed off

  MirrorStats mirror_stats_;

  /// stored anchor path -> effective (possibly salted) directory name.
  std::map<std::string, std::string> primaries_;
  /// Current replica targets (K closest live leaf-set neighbors).
  std::vector<pastry::NodeId> targets_;
  /// Content this node holds *for others*: primary id -> anchors.
  std::map<Uint128, std::map<std::string, std::string>> replicas_held_;
};

/// Copy a subtree between two stores, charging one message per entry plus
/// payload bytes on the network. Does not follow symlinks (special links
/// are copied as links). When both ends are content-addressed, a file's
/// message charges only the bytes of blocks the destination does not
/// already hold (delta transfer over the Merkle manifest); flat stores
/// charge the full file size as before. Returns false if interrupted by
/// the runtime's fault-injection hook.
bool copy_subtree(Runtime& runtime, net::HostId src_host, fs::StorageBackend& src,
                  const std::string& src_path, net::HostId dst_host, fs::StorageBackend& dst,
                  const std::string& dst_path);

}  // namespace kosha

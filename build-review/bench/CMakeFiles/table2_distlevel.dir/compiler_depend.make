# Empty compiler generated dependencies file for table2_distlevel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_config_validate.dir/test_config_validate.cpp.o"
  "CMakeFiles/test_config_validate.dir/test_config_validate.cpp.o.d"
  "test_config_validate"
  "test_config_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_virtual_handles.
# This may be replaced when dependencies are built.

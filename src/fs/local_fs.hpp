#pragma once

// Per-node local file system — the node's /kosha_store partition.
//
// The kFlat StorageBackend: an in-memory, inode-based hierarchical file
// system with the operation vocabulary NFS needs (lookup/create/read/
// write/remove/rename/readdir/symlink) plus byte-capacity accounting,
// file content held inline in each inode. Each Kosha node dedicates one
// store instance as its contributed storage (paper §5: "A local disk
// partition is created and used for space contribution"); capacity and the
// utilization threshold drive the redirection mechanism of §3.3.
//
// The internals are protected rather than private: CasFs (cas_fs.hpp)
// reuses the namespace/inode machinery wholesale and overrides only the
// file-content operations, so both backends share one set of name-space,
// mtime and generation semantics — which is what makes backend parity
// testable op-for-op.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "fs/storage_backend.hpp"

namespace kosha::fs {

class LocalFs : public StorageBackend {
 public:
  explicit LocalFs(FsConfig config = {});

  [[nodiscard]] BackendKind kind() const override { return BackendKind::kFlat; }
  [[nodiscard]] InodeId root() const override { return kRootInode; }

  // --- name-space operations (all take a directory inode + name) ---
  [[nodiscard]] FsResult<InodeId> lookup(InodeId dir, std::string_view name) const override;
  [[nodiscard]] FsResult<InodeId> create(InodeId dir, std::string_view name,
                                         std::uint32_t mode = 0644, std::uint32_t uid = 0,
                                         std::uint32_t gid = 0) override;
  [[nodiscard]] FsResult<InodeId> mkdir(InodeId dir, std::string_view name,
                                        std::uint32_t mode = 0755, std::uint32_t uid = 0,
                                        std::uint32_t gid = 0) override;
  [[nodiscard]] FsResult<InodeId> symlink(InodeId dir, std::string_view name,
                                          std::string_view target) override;
  [[nodiscard]] FsResult<Unit> remove(InodeId dir, std::string_view name) override;
  [[nodiscard]] FsResult<Unit> rmdir(InodeId dir, std::string_view name) override;
  [[nodiscard]] FsResult<Unit> rename(InodeId from_dir, std::string_view from_name,
                                      InodeId to_dir, std::string_view to_name) override;
  [[nodiscard]] FsResult<std::vector<DirEntry>> readdir(InodeId dir) const override;

  // --- inode operations ---
  [[nodiscard]] FsResult<Attr> getattr(InodeId inode) const override;
  [[nodiscard]] FsResult<Unit> set_mode(InodeId inode, std::uint32_t mode) override;
  [[nodiscard]] FsResult<Unit> truncate(InodeId inode, std::uint64_t size) override;
  [[nodiscard]] FsResult<std::uint32_t> write(InodeId inode, std::uint64_t offset,
                                              std::string_view data) override;
  [[nodiscard]] FsResult<std::string> read(InodeId inode, std::uint64_t offset,
                                           std::uint32_t count) const override;
  [[nodiscard]] FsResult<std::string> readlink(InodeId inode) const override;

  // --- path conveniences (absolute paths within this store) ---
  [[nodiscard]] FsResult<InodeId> resolve(std::string_view path) const override;
  /// mkdir -p; returns the deepest directory's inode.
  [[nodiscard]] FsResult<InodeId> mkdir_p(std::string_view path) override;
  /// Remove an entry and, for directories, its whole subtree.
  [[nodiscard]] FsResult<Unit> remove_recursive(InodeId dir, std::string_view name) override;

  // --- capacity ---
  [[nodiscard]] std::uint64_t capacity_bytes() const override { return config_.capacity_bytes; }
  [[nodiscard]] std::uint64_t used_bytes() const override { return used_bytes_; }
  [[nodiscard]] double utilization() const override {
    return config_.capacity_bytes == 0
               ? 1.0
               : static_cast<double>(used_bytes_) / static_cast<double>(config_.capacity_bytes);
  }
  /// True when storing `extra` more bytes would cross the threshold.
  [[nodiscard]] bool would_exceed(std::uint64_t extra) const override;

  /// Total bytes of all files under an inode (the inode's own data for
  /// files, recursive for directories).
  [[nodiscard]] std::uint64_t subtree_bytes(InodeId inode) const override;
  /// Number of regular files under an inode (recursive).
  [[nodiscard]] std::uint64_t subtree_file_count(InodeId inode) const override;

  /// Drop everything (paper §4.3: a revived node purges all Kosha data).
  void purge() override;

  [[nodiscard]] std::size_t live_inode_count() const override { return live_inodes_; }

 protected:
  static constexpr InodeId kRootInode = 1;

  struct Inode {
    bool allocated = false;
    FileType type = FileType::kFile;
    std::uint32_t mode = 0;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    std::uint64_t mtime = 0;
    std::uint64_t generation = 0;
    std::string data;                        // file content / symlink target
    std::map<std::string, InodeId> entries;  // directory children
  };

  [[nodiscard]] const Inode* get(InodeId id) const;
  [[nodiscard]] Inode* get(InodeId id);
  [[nodiscard]] InodeId allocate(FileType type, std::uint32_t mode, std::uint32_t uid,
                                 std::uint32_t gid);
  /// Free one inode (never the root). CasFs hooks this to drop the file's
  /// block manifest whenever the namespace lets go of an inode — remove,
  /// rename-over, recursive removal all funnel through here.
  virtual void release(InodeId id);
  /// Logical byte size of a regular file's content. The flat store keeps
  /// content inline; CasFs answers from the manifest. getattr and
  /// subtree_bytes report through this hook so both agree per backend.
  [[nodiscard]] virtual std::uint64_t file_content_bytes(InodeId id) const;
  [[nodiscard]] static bool valid_name(std::string_view name);
  /// Bump and return the logical mtime counter (shared by CasFs so the
  /// attr timeline is identical across backends).
  std::uint64_t next_mtime() { return ++mtime_counter_; }
  void add_used_bytes(std::uint64_t bytes) { used_bytes_ += bytes; }
  void sub_used_bytes(std::uint64_t bytes) { used_bytes_ -= bytes; }

 private:
  FsConfig config_;
  std::vector<Inode> inodes_;  // index = InodeId - 1
  std::vector<InodeId> free_list_;
  std::uint64_t used_bytes_ = 0;
  std::uint64_t mtime_counter_ = 0;
  std::size_t live_inodes_ = 0;
};

}  // namespace kosha::fs

#include "common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace kosha {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Protects the sink pointer and serializes sink invocations. Construct-on-
// first-use so logging from static initializers/destructors stays safe.
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

LogSink& sink_slot() {
  static LogSink sink;
  return sink;
}

void default_sink(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[%s] %.*s\n", log_level_name(level),
               static_cast<int>(message.size()), message.data());
}
}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot() = std::move(sink);
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  const int len = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (len < 0) return;
  const std::string_view message(buf, std::min<std::size_t>(static_cast<std::size_t>(len),
                                                            sizeof(buf) - 1));
  const std::lock_guard<std::mutex> lock(sink_mutex());
  const LogSink& sink = sink_slot();
  if (sink) {
    sink(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace kosha

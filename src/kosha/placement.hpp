#pragma once

// Placement: mapping virtual /kosha paths to DHT keys and stored paths.
//
// Kosha distributes at *directory* granularity (paper §3.1): a path's
// storage node is found by hashing the name of its "anchor" directory —
// the component at depth min(distribution_level, dir_depth). Everything
// below the anchor lives on the anchor's node; the anchor's entry in its
// parent directory is a special link whose target is the anchor's
// *effective* name (the name plus an optional "#salt" from capacity
// redirection, §3.3). Hashing uses only the final component name — name
// collisions simply co-locate directories; full paths disambiguate.
//
// Stored layout on the chosen node: each anchor subtree lives inside a
// private container /.a/<effective-name>/, and within it the full virtual
// path is mirrored with plain ancestor names and the effective name at the
// anchor position — the paper's Fig. 3 empty-hierarchy layout, one level
// down. The container keeps one anchor's scaffolding from colliding with
// special links or scaffolding of *other* anchors stored on the same node
// (same-name anchors share a container and are disambiguated by their full
// paths, exactly as the paper argues in §3.1).

#include <string>
#include <string_view>
#include <vector>

#include "common/sha1.hpp"
#include "pastry/types.hpp"

namespace kosha {

/// Marker separating a directory name from its redirection salt.
inline constexpr char kSaltSeparator = '#';

/// Reserved top-level directory holding anchor containers on each node.
inline constexpr const char* kAnchorArea = ".a";

/// Container directory name for an anchor's effective name ("/" maps to a
/// reserved name no user path can produce).
[[nodiscard]] std::string anchor_container(std::string_view effective_name);

/// Key for the virtual root directory "/" (files directly under /kosha).
[[nodiscard]] pastry::Key root_key();

/// DHT key of a directory's effective name (paper §3.1: SHA-1 of the name).
[[nodiscard]] pastry::Key key_for_name(std::string_view effective_name);

/// Effective name for redirection attempt `salt` (0 = unsalted).
[[nodiscard]] std::string salted_name(std::string_view name, unsigned salt);

/// Strip a salt suffix, returning the plain name.
[[nodiscard]] std::string plain_name(std::string_view effective_name);

/// Depth (1-based component index) of the anchor directory governing a
/// path. `component_count` is the number of components of the *object's
/// directory chain*: for a file /a/x/f pass 2 (chain a,x); for directory
/// /a/x itself pass 2 as well — a directory is its own anchor when within
/// the distribution level. Returns 0 when the anchor is the virtual root.
[[nodiscard]] unsigned anchor_depth(unsigned distribution_level, unsigned component_count);

/// True if a directory at `depth` (1-based) is itself distributed — i.e.
/// it is an anchor and appears in its parent as a special link.
[[nodiscard]] bool is_distributed_depth(unsigned distribution_level, unsigned depth);

/// Build the path stored on the anchor node for a virtual path whose
/// components are `components`, where the anchor sits at `anchor` (1-based;
/// 0 = root anchor) and carries `effective_anchor_name`:
/// "/.a/<container>/<plain ancestors>/<effective>/<rest>".
[[nodiscard]] std::string stored_path(const std::vector<std::string>& components,
                                      unsigned anchor, std::string_view effective_anchor_name);

/// Stored path of the virtual root directory itself.
[[nodiscard]] std::string root_stored_path();

}  // namespace kosha

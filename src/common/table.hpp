#pragma once

// Fixed-width text tables for benchmark output.
//
// Every bench binary regenerates one of the paper's tables/figures as rows
// on stdout; TextTable keeps that output aligned and also exports CSV.

#include <string>
#include <vector>

namespace kosha {

/// Simple right-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; cells beyond the header width are dropped.
  void add_row(std::vector<std::string> row);

  /// Render with aligned columns and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (no quoting; experiment cells never contain commas).
  [[nodiscard]] std::string to_csv() const;

  /// Format helpers used by the bench harnesses.
  [[nodiscard]] static std::string fmt(double v, int precision = 2);
  [[nodiscard]] static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kosha

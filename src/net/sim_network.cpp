#include "net/sim_network.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/metrics.hpp"
#include "common/profile.hpp"

namespace kosha::net {

SimNetwork::SimNetwork(NetworkConfig config, SimClock* clock)
    : config_(config), clock_(clock) {
  assert(clock_ != nullptr);
}

HostId SimNetwork::add_host() {
  up_.push_back(true);
  return static_cast<HostId>(up_.size() - 1);
}

void SimNetwork::charge_message(HostId src, HostId dst, std::size_t payload_bytes) {
  ++stats_.messages;
  stats_.bytes += payload_bytes;
  const SimDuration latency = (src == dst) ? config_.local_latency : config_.hop_latency;
  clock_->advance(latency + SimDuration::nanos(config_.per_byte.ns *
                                               static_cast<std::int64_t>(payload_bytes)));
}

void SimNetwork::charge_rtt(HostId src, HostId dst, std::size_t payload_bytes) {
  charge_message(src, dst, payload_bytes);
  charge_message(dst, src, 0);
}

bool SimNetwork::try_message(HostId src, HostId dst, std::size_t payload_bytes) {
  if (fault_plan_ != nullptr) {
    switch (fault_plan_->judge(src, dst, clock_->now())) {
      case FaultPlan::Delivery::kDeliver:
        break;
      case FaultPlan::Delivery::kDrop:
      case FaultPlan::Delivery::kBrownout:
        ++stats_.drops;
        return false;
      case FaultPlan::Delivery::kPartitioned:
        ++stats_.partitioned;
        return false;
    }
    charge_message(src, dst, payload_bytes);
    if (src != dst) clock_->advance(fault_plan_->draw_spike());
    return true;
  }
  charge_message(src, dst, payload_bytes);
  return true;
}

void SimNetwork::charge_overlay_hop(HostId src, HostId dst) {
  if (src != dst) ++stats_.overlay_hops;
  charge_message(src, dst, 0);
}

void SimNetwork::charge_timeout() {
  ++stats_.timeouts;
  clock_->advance(config_.rpc_timeout);
}

SimNetwork::WirePlan SimNetwork::plan_message(HostId src, HostId dst,
                                              std::size_t payload_bytes, SimDuration at) {
  // Mirrors try_message byte-for-byte on the counters and the Rng stream
  // (judge, then one spike draw per delivered non-local message) so a
  // single-in-flight event-driven schedule replays the serial model's
  // numbers exactly.
  SimDuration spike{};
  if (fault_plan_ != nullptr) {
    switch (fault_plan_->judge(src, dst, at)) {
      case FaultPlan::Delivery::kDeliver:
        break;
      case FaultPlan::Delivery::kDrop:
      case FaultPlan::Delivery::kBrownout:
        ++stats_.drops;
        return {};
      case FaultPlan::Delivery::kPartitioned:
        ++stats_.partitioned;
        return {};
    }
    if (src != dst) spike = fault_plan_->draw_spike();
  }
  ++stats_.messages;
  stats_.bytes += payload_bytes;
  const SimDuration latency = (src == dst) ? config_.local_latency : config_.hop_latency;
  const SimDuration wire =
      latency + SimDuration::nanos(config_.per_byte.ns * static_cast<std::int64_t>(payload_bytes));
  return {true, at + wire + spike};
}

SimNetwork::Admit SimNetwork::admit(HostId host, SimDuration arrival, SimDuration deadline,
                                    bool low_priority) {
  if (admission_.max_inflight == 0) return Admit::kAdmit;
  const unsigned bound = (low_priority && admission_.low_priority_inflight > 0)
                             ? admission_.low_priority_inflight
                             : admission_.max_inflight;
  const int current = inflight(host);
  if (current >= static_cast<int>(bound)) {
    if (low_priority) {
      ++stats_.shed_low_priority;
    } else {
      ++stats_.admission_rejected;
    }
    return Admit::kRejectInflight;
  }
  if (deadline.ns > 0) {
    const SimDuration begin =
        host < busy_until_.size() ? std::max(arrival, busy_until_[host]) : arrival;
    if (begin > deadline) {
      ++stats_.deadline_rejected;
      return Admit::kRejectDeadline;
    }
  }
  return Admit::kAdmit;
}

SimNetwork::HostObs& SimNetwork::host_obs(HostId host) {
  if (host_obs_.size() <= host) host_obs_.resize(host + 1);
  HostObs& obs = host_obs_[host];
  if (obs.queue_delay == nullptr && metrics_ != nullptr) init_host_obs(host, obs);
  return obs;
}

// Label interning at the metrics registry, never on the steady-state path.
// kosha-lint: allow(hot-alloc): once per host at its first service only
void SimNetwork::init_host_obs(HostId host, HostObs& obs) {
  const std::string prefix = "node." + std::to_string(host);
  obs.queue_delay = metrics_->histogram(prefix + ".net.queue_delay_us");
  obs.inflight = metrics_->gauge(prefix + ".server.inflight");
}

SimDuration SimNetwork::begin_service(HostId host, SimDuration arrival) {
  if (busy_until_.size() <= host) busy_until_.resize(host + 1, SimDuration{});
  const SimDuration begin = std::max(arrival, busy_until_[host]);
  const SimDuration delay = begin - arrival;
  stats_.queue_delay_ns += static_cast<std::uint64_t>(delay.ns);
  if (metrics_ != nullptr) {
    if (Histogram* h = host_obs(host).queue_delay) h->record(delay.to_micros());
  }
  if (profiler_ != nullptr) profiler_->add_host_queue_wait(host, delay);
  return begin;
}

void SimNetwork::end_service(HostId host, SimDuration until) {
  if (busy_until_.size() <= host) busy_until_.resize(host + 1, SimDuration{});
  busy_until_[host] = std::max(busy_until_[host], until);
}

void SimNetwork::note_service_time(HostId host, SimDuration busy) {
  if (profiler_ != nullptr) profiler_->add_host_busy(host, busy);
}

void SimNetwork::note_inflight(HostId host, int delta) {
  if (inflight_.size() <= host) inflight_.resize(host + 1, 0);
  inflight_[host] += delta;
  stats_.inflight_peak =
      std::max(stats_.inflight_peak, static_cast<std::uint64_t>(std::max(0, inflight_[host])));
  if (metrics_ != nullptr) {
    if (Gauge* g = host_obs(host).inflight) g->set(static_cast<double>(inflight_[host]));
  }
}

}  // namespace kosha::net

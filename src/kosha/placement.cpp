#include "kosha/placement.hpp"

#include <algorithm>

namespace kosha {

pastry::Key root_key() { return key_for_name("/"); }

pastry::Key key_for_name(std::string_view effective_name) {
  return Sha1::hash128(effective_name);
}

std::string salted_name(std::string_view name, unsigned salt) {
  if (salt == 0) return std::string(name);
  return std::string(name) + kSaltSeparator + std::to_string(salt);
}

std::string plain_name(std::string_view effective_name) {
  const auto pos = effective_name.rfind(kSaltSeparator);
  if (pos == std::string_view::npos) return std::string(effective_name);
  return std::string(effective_name.substr(0, pos));
}

unsigned anchor_depth(unsigned distribution_level, unsigned component_count) {
  return std::min(distribution_level, component_count);
}

bool is_distributed_depth(unsigned distribution_level, unsigned depth) {
  return depth >= 1 && depth <= distribution_level;
}

std::string anchor_container(std::string_view effective_name) {
  // '#' cannot appear in user names, so "#root" never collides.
  if (effective_name == "/") return "#root";
  return std::string(effective_name);
}

std::string stored_path(const std::vector<std::string>& components, unsigned anchor,
                        std::string_view effective_anchor_name) {
  std::string out = "/";
  out += kAnchorArea;
  out += '/';
  out += anchor_container(effective_anchor_name);
  for (unsigned i = 0; i < components.size(); ++i) {
    out += '/';
    if (i + 1 == anchor) {
      out += effective_anchor_name;
    } else {
      out += components[i];
    }
  }
  return out;
}

std::string root_stored_path() { return stored_path({}, 0, "/"); }

}  // namespace kosha

// Figure-level simulator tests: invariants the paper's curves rely on.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/availability_sim.hpp"
#include "sim/insertion_sim.hpp"
#include "sim/load_sim.hpp"

namespace kosha::sim {
namespace {

trace::FsTrace small_trace() {
  trace::FsTraceConfig config;
  config.files = 20'000;
  config.users = 40;
  config.total_bytes = 2ull << 30;
  return trace::generate_fs_trace(config);
}

// --- Figure 5: load distribution ---------------------------------------------

TEST(LoadSim, MeanShareIsExactlyOneOverN) {
  const auto trace = small_trace();
  LoadSimConfig config;
  config.nodes = 16;
  config.runs = 3;
  const auto result = simulate_load_distribution(trace, config);
  EXPECT_NEAR(result.mean_count_pct, 100.0 / 16, 1e-9);
  EXPECT_NEAR(result.mean_bytes_pct, 100.0 / 16, 1e-9);
}

TEST(LoadSim, DeeperLevelsBalanceBetter) {
  const auto trace = small_trace();
  auto std_at = [&](unsigned level) {
    LoadSimConfig config;
    config.level = level;
    config.runs = 10;
    return simulate_load_distribution(trace, config).std_count_pct;
  };
  const double level1 = std_at(1);
  const double level4 = std_at(4);
  const double level8 = std_at(8);
  EXPECT_GT(level1, level4);
  EXPECT_GE(level4 * 1.05, level8);  // still decreasing (or flat)
}

TEST(LoadSim, PerFileHashingIsTheLowerBound) {
  const auto trace = small_trace();
  LoadSimConfig per_file;
  per_file.level = 0;
  per_file.runs = 10;
  const double bound = simulate_load_distribution(trace, per_file).std_count_pct;
  LoadSimConfig level1;
  level1.runs = 10;
  EXPECT_LE(bound, simulate_load_distribution(trace, level1).std_count_pct);
  // Level >= 6 is within a small factor of the bound (paper: level >= 4
  // "comparable").
  LoadSimConfig deep;
  deep.level = 8;
  deep.runs = 10;
  EXPECT_LE(simulate_load_distribution(trace, deep).std_count_pct, bound * 1.15);
}

TEST(LoadSim, Deterministic) {
  const auto trace = small_trace();
  LoadSimConfig config;
  config.runs = 4;
  const auto a = simulate_load_distribution(trace, config);
  const auto b = simulate_load_distribution(trace, config);
  EXPECT_DOUBLE_EQ(a.std_count_pct, b.std_count_pct);
  EXPECT_DOUBLE_EQ(a.std_bytes_pct, b.std_bytes_pct);
}

// --- Figure 6: redirection -----------------------------------------------------

TEST(InsertionSim, MoreRedirectsNeverHurt) {
  const auto trace = small_trace();
  InsertionSimConfig base;
  // Scale capacities so the 2 GiB trace (x4 copies) stresses them.
  base.capacities.assign(16, 600ull << 20);
  base.runs = 3;
  double previous_ratio = 1.0;
  double previous_util = 0.0;
  for (const unsigned redirects : {0u, 2u, 8u}) {
    InsertionSimConfig config = base;
    config.redirects = redirects;
    const auto curve = simulate_insertion(trace, config);
    EXPECT_LE(curve.final_failure_ratio, previous_ratio * 1.001) << redirects;
    EXPECT_GE(curve.final_utilization, previous_util - 0.001) << redirects;
    previous_ratio = curve.final_failure_ratio;
    previous_util = curve.final_utilization;
  }
}

TEST(InsertionSim, AmpleCapacityNoFailures) {
  const auto trace = small_trace();
  InsertionSimConfig config;
  config.capacities.assign(16, 64ull << 30);
  config.runs = 2;
  const auto curve = simulate_insertion(trace, config);
  EXPECT_EQ(curve.final_failure_ratio, 0.0);
}

TEST(InsertionSim, LowUtilizationHasNoFailures) {
  const auto trace = small_trace();
  InsertionSimConfig config;
  config.capacities = InsertionSimConfig::paper_capacities();
  config.runs = 2;
  config.redirects = 4;
  const auto curve = simulate_insertion(trace, config);
  // The 2 GiB trace barely dents the 56 GB cluster.
  EXPECT_EQ(curve.final_failure_ratio, 0.0);
  EXPECT_LT(curve.final_utilization, 0.5);
}

TEST(InsertionSim, PaperCapacityVector) {
  const auto caps = InsertionSimConfig::paper_capacities();
  ASSERT_EQ(caps.size(), 16u);
  std::uint64_t total = 0;
  for (const auto c : caps) total += c;
  EXPECT_EQ(total, (8ull * 3 + 4ull * 4 + 4ull * 5) << 30);
}

// --- Figure 7: availability ----------------------------------------------------

TEST(AvailabilitySim, PerfectUptimeIsFullAvailability) {
  const auto fs = small_trace();
  trace::AvailabilityTrace machines;
  machines.machines = 64;
  machines.hours = 48;
  machines.up.assign(48, std::vector<bool>(64, true));
  AvailabilitySimConfig config;
  config.replicas = 0;
  config.runs = 2;
  const auto result = simulate_availability(fs, machines, config);
  EXPECT_DOUBLE_EQ(result.average_pct, 100.0);
  EXPECT_DOUBLE_EQ(result.min_pct, 100.0);
}

TEST(AvailabilitySim, ReplicasImproveAvailability) {
  const auto fs = small_trace();
  trace::AvailabilityConfig trace_config;
  trace_config.machines = 300;
  trace_config.hours = 200;
  trace_config.spike_hour = 150;
  trace_config.spike_fraction = 0.3;
  const auto machines = trace::generate_availability_trace(trace_config);

  double previous_min = 0.0;
  for (const unsigned k : {0u, 1u, 3u}) {
    AvailabilitySimConfig config;
    config.replicas = k;
    config.runs = 2;
    const auto result = simulate_availability(fs, machines, config);
    EXPECT_GE(result.min_pct, previous_min - 1e-9) << "k=" << k;
    previous_min = result.min_pct;
  }
}

TEST(AvailabilitySim, UnreplicatedDipsTrackMachineFailures) {
  const auto fs = small_trace();
  trace::AvailabilityConfig trace_config;
  trace_config.machines = 400;
  trace_config.hours = 200;
  trace_config.spike_hour = 100;
  trace_config.spike_fraction = 0.25;
  const auto machines = trace::generate_availability_trace(trace_config);
  AvailabilitySimConfig config;
  config.replicas = 0;
  config.runs = 2;
  const auto result = simulate_availability(fs, machines, config);
  const double down_fraction =
      static_cast<double>(machines.down_count(100)) / 400.0;
  // With no replicas, unavailable files ~ fraction of machines down.
  EXPECT_NEAR(100.0 - result.available_pct[100], down_fraction * 100.0, 6.0);
  EXPECT_EQ(result.min_hour, 100u);
}

TEST(AvailabilitySim, SlowerRepairNeverImprovesAvailability) {
  const auto fs = small_trace();
  trace::AvailabilityConfig trace_config;
  trace_config.machines = 300;
  trace_config.hours = 300;
  trace_config.spike_hour = 150;
  trace_config.spike_fraction = 0.25;
  const auto machines = trace::generate_availability_trace(trace_config);
  double previous = 0.0;
  for (const std::size_t repair : {std::size_t{12}, std::size_t{4}, std::size_t{0}}) {
    AvailabilitySimConfig config;
    config.replicas = 2;
    config.runs = 2;
    config.repair_hours = repair;
    const auto result = simulate_availability(fs, machines, config);
    EXPECT_GE(result.average_pct, previous - 1e-9) << "repair_hours=" << repair;
    previous = result.average_pct;
  }
}

TEST(AvailabilitySim, RecoversAfterSpike) {
  const auto fs = small_trace();
  trace::AvailabilityConfig trace_config;
  trace_config.machines = 300;
  trace_config.hours = 200;
  trace_config.spike_hour = 100;
  trace_config.spike_fraction = 0.3;
  const auto machines = trace::generate_availability_trace(trace_config);
  AvailabilitySimConfig config;
  config.replicas = 0;
  config.runs = 1;
  const auto result = simulate_availability(fs, machines, config);
  EXPECT_LT(result.available_pct[100], 85.0);
  EXPECT_GT(result.available_pct[150], 95.0);  // files came back with machines
}

}  // namespace
}  // namespace kosha::sim

file(REMOVE_RECURSE
  "CMakeFiles/kosha_net.dir/fault_plan.cpp.o"
  "CMakeFiles/kosha_net.dir/fault_plan.cpp.o.d"
  "CMakeFiles/kosha_net.dir/sim_network.cpp.o"
  "CMakeFiles/kosha_net.dir/sim_network.cpp.o.d"
  "libkosha_net.a"
  "libkosha_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

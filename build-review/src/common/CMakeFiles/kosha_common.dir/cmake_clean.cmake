file(REMOVE_RECURSE
  "CMakeFiles/kosha_common.dir/cli.cpp.o"
  "CMakeFiles/kosha_common.dir/cli.cpp.o.d"
  "CMakeFiles/kosha_common.dir/event_loop.cpp.o"
  "CMakeFiles/kosha_common.dir/event_loop.cpp.o.d"
  "CMakeFiles/kosha_common.dir/json.cpp.o"
  "CMakeFiles/kosha_common.dir/json.cpp.o.d"
  "CMakeFiles/kosha_common.dir/log.cpp.o"
  "CMakeFiles/kosha_common.dir/log.cpp.o.d"
  "CMakeFiles/kosha_common.dir/metrics.cpp.o"
  "CMakeFiles/kosha_common.dir/metrics.cpp.o.d"
  "CMakeFiles/kosha_common.dir/path.cpp.o"
  "CMakeFiles/kosha_common.dir/path.cpp.o.d"
  "CMakeFiles/kosha_common.dir/rng.cpp.o"
  "CMakeFiles/kosha_common.dir/rng.cpp.o.d"
  "CMakeFiles/kosha_common.dir/sha1.cpp.o"
  "CMakeFiles/kosha_common.dir/sha1.cpp.o.d"
  "CMakeFiles/kosha_common.dir/stats.cpp.o"
  "CMakeFiles/kosha_common.dir/stats.cpp.o.d"
  "CMakeFiles/kosha_common.dir/table.cpp.o"
  "CMakeFiles/kosha_common.dir/table.cpp.o.d"
  "CMakeFiles/kosha_common.dir/thread_pool.cpp.o"
  "CMakeFiles/kosha_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/kosha_common.dir/tracing.cpp.o"
  "CMakeFiles/kosha_common.dir/tracing.cpp.o.d"
  "CMakeFiles/kosha_common.dir/uint128.cpp.o"
  "CMakeFiles/kosha_common.dir/uint128.cpp.o.d"
  "libkosha_common.a"
  "libkosha_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

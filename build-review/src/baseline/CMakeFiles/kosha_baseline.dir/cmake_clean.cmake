file(REMOVE_RECURSE
  "CMakeFiles/kosha_baseline.dir/nfs_mount.cpp.o"
  "CMakeFiles/kosha_baseline.dir/nfs_mount.cpp.o.d"
  "libkosha_baseline.a"
  "libkosha_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kosha_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_concurrency_driver.
# This may be replaced when dependencies are built.

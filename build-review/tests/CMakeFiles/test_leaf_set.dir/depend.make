# Empty dependencies file for test_leaf_set.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_baseline_equivalence.
# This may be replaced when dependencies are built.

// Cluster-audit tests: the auditor passes on healthy clusters (including
// after heavy churn) and catches deliberately injected corruption.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kosha/audit.hpp"
#include "kosha/mount.hpp"
#include "kosha/placement.hpp"

namespace kosha {
namespace {

ClusterConfig healthy_config(std::uint64_t seed) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.distribution_level = 2;
  config.kosha.replicas = 2;
  config.seed = seed;
  return config;
}

TEST(Audit, CleanOnFreshCluster) {
  KoshaCluster cluster(healthy_config(3));
  const auto report = audit_cluster(cluster);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(Audit, CleanAfterWorkload) {
  KoshaCluster cluster(healthy_config(4));
  KoshaMount mount(&cluster.daemon(0));
  for (int u = 0; u < 3; ++u) {
    for (int d = 0; d < 3; ++d) {
      const std::string dir = "/user" + std::to_string(u) + "/dir" + std::to_string(d);
      ASSERT_TRUE(mount.mkdir_p(dir).ok());
      for (int f = 0; f < 4; ++f) {
        ASSERT_TRUE(
            mount.write_file(dir + "/f" + std::to_string(f), "data-" + std::to_string(f))
                .ok());
      }
    }
  }
  (void)mount.remove("/user0/dir0/f0");
  (void)mount.rename("/user1/dir1/f1", "/user1/dir1/renamed");
  const auto report = audit_cluster(cluster);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

class AuditChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuditChurn, CleanAfterChurn) {
  KoshaCluster cluster(healthy_config(GetParam()));
  Rng rng(GetParam() * 17 + 3);
  KoshaMount mount(&cluster.daemon(0));
  for (int round = 0; round < 40; ++round) {
    const unsigned action = static_cast<unsigned>(rng.next_below(10));
    if (action < 6) {
      const std::string dir = "/w" + std::to_string(rng.next_below(3));
      (void)mount.mkdir_p(dir);
      (void)mount.write_file(dir + "/f" + std::to_string(rng.next_below(5)),
                             rng.next_name(16));
    } else if (action < 7) {
      const auto hosts = cluster.live_hosts();
      if (hosts.size() > 5) cluster.fail_node(hosts[1 + rng.next_below(hosts.size() - 1)]);
    } else if (action < 8) {
      for (net::HostId host = 0; host < cluster.network().host_count(); ++host) {
        if (!cluster.is_up(host)) {
          cluster.revive_node(host);
          break;
        }
      }
    } else if (action < 9) {
      (void)cluster.add_node();
    } else {
      (void)mount.remove("/w0/f" + std::to_string(rng.next_below(5)));
    }
  }
  const auto report = audit_cluster(cluster);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditChurn, ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(Audit, DetectsMissingAnchorOnDisk) {
  KoshaCluster cluster(healthy_config(5));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/victim").ok());
  // Corrupt: delete the anchor container from its node behind Kosha's back.
  for (const auto host : cluster.live_hosts()) {
    auto& store = cluster.server(host).store();
    const auto area = store.resolve(std::string("/") + kAnchorArea);
    if (!area.ok()) continue;
    if (store.lookup(*area, "victim").ok()) {
      ASSERT_TRUE(store.remove_recursive(*area, "victim").ok());
    }
  }
  const auto report = audit_cluster(cluster);
  EXPECT_FALSE(report.clean());
}

TEST(Audit, DetectsReplicaDivergence) {
  KoshaCluster cluster(healthy_config(6));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/div").ok());
  ASSERT_TRUE(mount.write_file("/div/f", "authoritative").ok());
  // Corrupt one replica copy directly.
  const auto vh = mount.resolve("/div/f");
  const net::HostId primary = cluster.daemon(0).handle_table().find(*vh)->real.server;
  const auto targets = cluster.replicas(primary).targets();
  ASSERT_FALSE(targets.empty());
  auto& replica_store =
      cluster.server(cluster.overlay().host_of(targets.front())).store();
  const std::string hidden = ReplicaManager::hidden_root(cluster.node_id(primary));
  const auto copy = replica_store.resolve(hidden + stored_path({"div", "f"}, 1, "div"));
  ASSERT_TRUE(copy.ok());
  ASSERT_TRUE(replica_store.write(*copy, 0, "CORRUPTEDBYTES").ok());

  const auto report = audit_cluster(cluster);
  EXPECT_FALSE(report.clean());
}

TEST(Audit, DetectsDanglingSpecialLink) {
  KoshaCluster cluster(healthy_config(7));
  KoshaMount mount(&cluster.daemon(0));
  // Plant a link to a directory that was never created.
  const net::HostId root_owner = cluster.overlay().ring().owner_tag(root_key());
  auto& store = cluster.server(root_owner).store();
  const auto root_dir = store.resolve(root_stored_path());
  ASSERT_TRUE(root_dir.ok());
  ASSERT_TRUE(store.symlink(*root_dir, "ghost", "ghost").ok());

  const auto report = audit_cluster(cluster);
  EXPECT_FALSE(report.clean());
}

}  // namespace
}  // namespace kosha

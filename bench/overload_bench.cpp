// Overload-control A/B: the flash-crowd metastability experiment.
//
// Runs sim::simulate_flash_crowd twice on the same seed — overload control
// disabled, then enabled — and prints the goodput trajectory of each arm
// side by side. The uncontrolled arm must exhibit the metastable failure
// (post-spike goodput pinned below 50% of the pre-spike baseline: dead work
// plus retry amplification sustain the collapse after the trigger ends);
// the controlled arm must shed during the spike and return to >= 95% of
// baseline within the recovery bound. The binary exits non-zero when either
// half of that story fails, so CI runs it as a gate, not a demo.
//
// Flags: --nodes N, --seed S, --base N, --spike N, --hot-files N,
// --file-kib K, --zipf S, --duration S, --spike-start S, --spike-end S,
// --window-ms MS, --base-think-ms MS, --spike-think-ms MS,
// --recovery-limit-ms MS (controlled arm must recover within this many ms
// of the spike ending; default 2000), --csv (both deterministic timelines),
// --metrics-out=FILE (flat JSON snapshot for the kosha_prof baseline gate).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/overload_sim.hpp"

namespace {

kosha::sim::FlashCrowdConfig config_from(const kosha::CliArgs& args) {
  using kosha::SimDuration;
  kosha::sim::FlashCrowdConfig config;
  config.nodes = static_cast<std::size_t>(args.get_int("nodes", 4));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.base_clients = static_cast<std::size_t>(args.get_int("base", 24));
  config.spike_clients = static_cast<std::size_t>(args.get_int("spike", 60));
  config.hot_files = static_cast<std::size_t>(args.get_int("hot-files", 8));
  config.file_bytes = static_cast<std::size_t>(args.get_int("file-kib", 16)) * 1024;
  config.zipf_s = args.get_double("zipf", 1.1);
  config.duration = SimDuration::seconds(args.get_double("duration", 12.0));
  config.spike_start = SimDuration::seconds(args.get_double("spike-start", 3.0));
  config.spike_end = SimDuration::seconds(args.get_double("spike-end", 5.0));
  config.window = SimDuration::millis(args.get_double("window-ms", 500.0));
  config.base_think = SimDuration::millis(args.get_double("base-think-ms", 25.0));
  config.spike_think = SimDuration::millis(args.get_double("spike-think-ms", 2.0));
  return config;
}

void add_arm_rows(kosha::TextTable& table, const char* arm,
                  const kosha::sim::FlashCrowdResult& r) {
  using kosha::TextTable;
  table.add_row({arm, "goodput baseline/spike/post (ops per window)",
                 TextTable::fmt(r.baseline_ops, 1) + " / " + TextTable::fmt(r.spike_ops, 1) +
                     " / " + TextTable::fmt(r.post_ops, 1)});
  table.add_row({arm, "post/baseline ratio", TextTable::fmt(r.post_over_baseline, 3)});
  table.add_row({arm, "recovered (time after spike)",
                 std::string(r.recovered ? "yes" : "NO") + " (" +
                     TextTable::fmt(r.recovery_after_spike.to_millis(), 0) + " ms)"});
  table.add_row({arm, "ops ok/failed",
                 std::to_string(r.ops_ok) + " / " + std::to_string(r.ops_failed)});
  table.add_row({arm, "timeouts/retries",
                 std::to_string(r.timeouts) + " / " + std::to_string(r.retries)});
  table.add_row({arm, "rejected inflight/deadline, expired, shed-bg",
                 std::to_string(r.admission_rejected) + " / " +
                     std::to_string(r.deadline_rejected) + ", " + std::to_string(r.expired) +
                     ", " + std::to_string(r.shed_low_priority)});
  table.add_row({arm, "overloaded replies / budget exhausted",
                 std::to_string(r.overloaded_replies) + " / " +
                     std::to_string(r.budget_exhausted)});
  table.add_row({arm, "breaker opens / fast-fails",
                 std::to_string(r.breaker_opens) + " / " + std::to_string(r.breaker_fast_fails)});
  table.add_row({arm, "server deadline rejects / ladder aborts",
                 std::to_string(r.server_deadline_rejects) + " / " +
                     std::to_string(r.ladder_deadline_aborts)});
  table.add_row({arm, "digest", r.digest});
}

void emit_arm_json(std::ostringstream& json, const char* arm,
                   const kosha::sim::FlashCrowdResult& r) {
  json << "  \"" << arm << ".baseline_ops\": " << r.baseline_ops << ",\n"
       << "  \"" << arm << ".spike_ops\": " << r.spike_ops << ",\n"
       << "  \"" << arm << ".post_ops\": " << r.post_ops << ",\n"
       << "  \"" << arm << ".post_over_baseline\": " << r.post_over_baseline << ",\n"
       << "  \"" << arm << ".recovered\": " << (r.recovered ? 1 : 0) << ",\n"
       << "  \"" << arm << ".recovery_ms\": " << r.recovery_after_spike.to_millis() << ",\n"
       << "  \"" << arm << ".ops_ok\": " << r.ops_ok << ",\n"
       << "  \"" << arm << ".ops_failed\": " << r.ops_failed << ",\n"
       << "  \"" << arm << ".timeouts\": " << r.timeouts << ",\n"
       << "  \"" << arm << ".retries\": " << r.retries << ",\n"
       << "  \"" << arm << ".admission_rejected\": " << r.admission_rejected << ",\n"
       << "  \"" << arm << ".deadline_rejected\": " << r.deadline_rejected << ",\n"
       << "  \"" << arm << ".expired\": " << r.expired << ",\n"
       << "  \"" << arm << ".shed_low_priority\": " << r.shed_low_priority << ",\n"
       << "  \"" << arm << ".overloaded_replies\": " << r.overloaded_replies << ",\n"
       << "  \"" << arm << ".budget_exhausted\": " << r.budget_exhausted << ",\n"
       << "  \"" << arm << ".breaker_opens\": " << r.breaker_opens << ",\n"
       << "  \"" << arm << ".server_deadline_rejects\": " << r.server_deadline_rejects << ",\n"
       << "  \"" << arm << ".ladder_deadline_aborts\": " << r.ladder_deadline_aborts << ",\n"
       << "  \"" << arm << ".digest\": \"" << r.digest << "\",\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kosha;
  const CliArgs args(argc, argv);
  if (const auto err = args.check_known(
          "nodes,seed,base,spike,hot-files,file-kib,zipf,duration,spike-start,spike-end,"
          "window-ms,base-think-ms,spike-think-ms,recovery-limit-ms,csv,metrics-out");
      !err.empty()) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }

  sim::FlashCrowdConfig config = config_from(args);
  const double recovery_limit_ms = args.get_double("recovery-limit-ms", 2000.0);

  std::printf("Flash crowd: %zu base + %zu spike clients on %zu nodes, %zu hot files "
              "(%zu KiB, Zipf %.2f), spike [%.1fs, %.1fs) of %.1fs, seed %llu\n\n",
              config.base_clients, config.spike_clients, config.nodes, config.hot_files,
              config.file_bytes / 1024, config.zipf_s, config.spike_start.to_seconds(),
              config.spike_end.to_seconds(), config.duration.to_seconds(),
              static_cast<unsigned long long>(config.seed));

  config.controlled = false;
  const auto uncontrolled = sim::simulate_flash_crowd(config);
  config.controlled = true;
  const auto controlled = sim::simulate_flash_crowd(config);

  TextTable table({"arm", "metric", "value"});
  add_arm_rows(table, "uncontrolled", uncontrolled);
  add_arm_rows(table, "controlled", controlled);
  std::fputs(table.to_string().c_str(), stdout);

  // Goodput trajectory side by side (ops OK per window).
  std::printf("\nwindow_ms  uncontrolled  controlled\n");
  for (std::size_t w = 0; w < uncontrolled.windows.size(); ++w) {
    const char* phase =
        uncontrolled.windows[w].start < config.spike_start          ? ""
        : uncontrolled.windows[w].start < config.spike_end ? "  <- spike"
                                                                    : "";
    std::printf("%9lld  %12zu  %10zu%s\n",
                static_cast<long long>(uncontrolled.windows[w].start.ns / 1'000'000),
                uncontrolled.windows[w].ok,
                w < controlled.windows.size() ? controlled.windows[w].ok : 0, phase);
  }

  if (args.get_bool("csv", false)) {
    std::printf("\n%s\n%s", uncontrolled.timeline_csv.c_str(), controlled.timeline_csv.c_str());
  }

  if (const std::string out = args.get_string("metrics-out", ""); !out.empty()) {
    std::ostringstream json;
    json << "{\n  \"bench\": \"overload_bench\",\n  \"seed\": " << config.seed << ",\n";
    emit_arm_json(json, "uncontrolled", uncontrolled);
    emit_arm_json(json, "controlled", controlled);
    json << "  \"recovery_limit_ms\": " << recovery_limit_ms << "\n}\n";
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    file << json.str();
    std::printf("\nwrote %s\n", out.c_str());
  }

  // The gate: collapse without overload control, shed-and-recover with it.
  bool ok = true;
  if (uncontrolled.post_over_baseline >= 0.5) {
    std::fprintf(stderr,
                 "FAIL: uncontrolled arm did not collapse (post/baseline %.3f >= 0.5) — "
                 "the metastable regime was not reached\n",
                 uncontrolled.post_over_baseline);
    ok = false;
  }
  if (!controlled.recovered || controlled.post_over_baseline < 0.95) {
    std::fprintf(stderr,
                 "FAIL: controlled arm did not recover (recovered=%s, post/baseline %.3f)\n",
                 controlled.recovered ? "yes" : "no", controlled.post_over_baseline);
    ok = false;
  } else if (controlled.recovery_after_spike.to_millis() > recovery_limit_ms) {
    std::fprintf(stderr, "FAIL: controlled arm recovered too slowly (%.0f ms > %.0f ms)\n",
                 controlled.recovery_after_spike.to_millis(), recovery_limit_ms);
    ok = false;
  }
  return ok ? 0 : 1;
}

// SHA-1 correctness against the FIPS 180-1 test vectors, plus streaming
// and key-derivation properties.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.hpp"
#include "common/sha1.hpp"

namespace kosha {
namespace {

std::string hex_digest(const std::array<std::uint8_t, 20>& digest) {
  std::string out;
  for (const auto byte : digest) {
    char buf[3];
    std::snprintf(buf, sizeof(buf), "%02x", byte);
    out += buf;
  }
  return out;
}

TEST(Sha1, FipsVectorAbc) {
  EXPECT_EQ(hex_digest(Sha1::hash("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, FipsVectorTwoBlockMessage) {
  EXPECT_EQ(hex_digest(Sha1::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex_digest(Sha1::hash("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(hex_digest(hasher.digest()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64-byte input exercises the padding-into-second-block path.
  EXPECT_EQ(hex_digest(Sha1::hash(std::string(64, 'x'))),
            "bb2fa3ee7afb9f54c6dfb5d021f14b1ffe40c163");
}

TEST(Sha1, FiftyFiveAndFiftySixBytes) {
  // 55 bytes: length fits in the same block as the terminator.
  // 56 bytes: the length must spill into the next block.
  const auto d55 = Sha1::hash(std::string(55, 'q'));
  const auto d56 = Sha1::hash(std::string(56, 'q'));
  EXPECT_NE(hex_digest(d55), hex_digest(d56));
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 hasher;
  hasher.update("abc");
  const auto first = hasher.digest();
  hasher.reset();
  hasher.update("abc");
  EXPECT_EQ(hex_digest(hasher.digest()), hex_digest(first));
}

TEST(Sha1, Hash128IsDigestPrefix) {
  const auto digest = Sha1::hash("kosha");
  const Uint128 key = Sha1::hash128("kosha");
  std::array<std::uint8_t, 16> prefix{};
  std::copy(digest.begin(), digest.begin() + 16, prefix.begin());
  EXPECT_EQ(key, Uint128::from_bytes(prefix));
}

class Sha1Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Sha1Property, StreamingMatchesOneShot) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t length = rng.next_below(5000);
    std::string data;
    data.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      data.push_back(static_cast<char>(rng.next_below(256)));
    }
    Sha1 streaming;
    std::size_t offset = 0;
    while (offset < data.size()) {
      const std::size_t chunk = std::min<std::size_t>(1 + rng.next_below(97),
                                                      data.size() - offset);
      streaming.update(std::string_view(data).substr(offset, chunk));
      offset += chunk;
    }
    EXPECT_EQ(hex_digest(streaming.digest()), hex_digest(Sha1::hash(data)));
  }
}

TEST_P(Sha1Property, DistinctShortNamesDistinctKeys) {
  Rng rng(GetParam());
  std::set<std::string> names;
  std::set<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    const std::string name = rng.next_name(8);
    names.insert(name);
    keys.insert(Sha1::hash128(name).to_hex());
  }
  EXPECT_EQ(names.size(), keys.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sha1Property, ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace kosha

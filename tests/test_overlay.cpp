// Pastry overlay integration tests: joins, routing consistency against the
// ground-truth ring, hop-count scaling, failure repair, and callbacks.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "net/sim_network.hpp"
#include "pastry/overlay.hpp"

namespace kosha::pastry {
namespace {

struct Fixture {
  SimClock clock;
  net::SimNetwork network{{}, &clock};
  PastryOverlay overlay{{}, &network};
  Rng rng;

  explicit Fixture(std::uint64_t seed) : rng(seed) {}

  NodeId join_one() {
    const NodeId id = rng.next_id();
    overlay.join(id, network.add_host());
    return id;
  }
  std::vector<NodeId> join(std::size_t n) {
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < n; ++i) ids.push_back(join_one());
    return ids;
  }
};

TEST(Overlay, SingleNodeOwnsAllKeys) {
  Fixture fx(1);
  const NodeId only = fx.join_one();
  for (int i = 0; i < 10; ++i) {
    const auto result = fx.overlay.route(0, fx.rng.next_id());
    EXPECT_EQ(result.owner, only);
    EXPECT_EQ(result.hops, 0u);
  }
}

TEST(Overlay, DuplicateJoinRejected) {
  Fixture fx(2);
  const NodeId id = fx.join_one();
  EXPECT_THROW(fx.overlay.join(id, fx.network.add_host()), std::invalid_argument);
}

TEST(Overlay, OneNodePerHost) {
  Fixture fx(3);
  (void)fx.join_one();
  EXPECT_THROW(fx.overlay.join(fx.rng.next_id(), 0), std::invalid_argument);
}

TEST(Overlay, HostNodeMapping) {
  Fixture fx(4);
  const auto ids = fx.join(4);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(fx.overlay.host_of(ids[i]), static_cast<net::HostId>(i));
    EXPECT_EQ(fx.overlay.node_on_host(static_cast<net::HostId>(i)), ids[i]);
    EXPECT_TRUE(fx.overlay.host_has_node(static_cast<net::HostId>(i)));
  }
}

class OverlayRouting : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OverlayRouting, RouteAgreesWithGroundTruth) {
  Fixture fx(GetParam() * 7 + 1);
  fx.join(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const Key key = fx.rng.next_id();
    const net::HostId from = static_cast<net::HostId>(fx.rng.next_below(GetParam()));
    const auto result = fx.overlay.route(from, key);
    EXPECT_EQ(result.owner, fx.overlay.ring().owner(key)) << "key " << key.to_hex();
  }
}

TEST_P(OverlayRouting, TraceRouteMatchesRoute) {
  Fixture fx(GetParam() * 11 + 3);
  fx.join(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const Key key = fx.rng.next_id();
    const NodeId from = fx.overlay.node_on_host(0);
    const auto traced = fx.overlay.trace_route(from, key);
    const auto routed = fx.overlay.route(0, key);
    EXPECT_EQ(traced.owner, routed.owner);
    EXPECT_EQ(traced.hops, routed.hops);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, OverlayRouting, ::testing::Values(2, 3, 8, 16, 64, 200));

TEST(Overlay, HopCountScalesLogarithmically) {
  Fixture fx(99);
  fx.join(256);
  double total_hops = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    total_hops += fx.overlay.route(0, fx.rng.next_id()).hops;
  }
  // log16(256) = 2; leaf sets shortcut further. Generous upper bound.
  EXPECT_LE(total_hops / trials, 4.0);
  EXPECT_GE(total_hops / trials, 0.5);
}

TEST(Overlay, RoutingSurvivesFailures) {
  Fixture fx(123);
  auto ids = fx.join(32);
  // Fail a third of the nodes (but keep host 0's node for routing).
  std::set<std::size_t> dead;
  while (dead.size() < 10) {
    const std::size_t victim = 1 + fx.rng.next_below(31);
    if (dead.insert(victim).second) fx.overlay.fail(ids[victim]);
  }
  EXPECT_EQ(fx.overlay.live_count(), 22u);
  for (int trial = 0; trial < 200; ++trial) {
    const Key key = fx.rng.next_id();
    const auto result = fx.overlay.route(0, key);
    EXPECT_EQ(result.owner, fx.overlay.ring().owner(key));
  }
}

TEST(Overlay, LeafSetsMatchGroundTruthAfterChurn) {
  Fixture fx(321);
  auto ids = fx.join(40);
  // Interleave failures and joins.
  for (int round = 0; round < 10; ++round) {
    // Fail a random live node (not host 0's).
    for (int attempts = 0; attempts < 100; ++attempts) {
      const NodeId victim = ids[1 + fx.rng.next_below(ids.size() - 1)];
      if (fx.overlay.is_live(victim)) {
        fx.overlay.fail(victim);
        break;
      }
    }
    ids.push_back(fx.join_one());
  }
  // Every live node's leaf set must hold exactly its ring neighbors.
  const auto& ring = fx.overlay.ring();
  const unsigned half = fx.overlay.config().leaf_half();
  for (const auto& [id, host] : ring.sorted()) {
    (void)host;
    const auto& leaves = fx.overlay.leaf_set(id);
    const auto expected = ring.neighbors(id, 2 * half);
    // All of the closest `half` neighbors on each side must be present;
    // compare via the 2*half closest overall (a superset of both sides).
    std::size_t present = 0;
    for (const NodeId n : expected) {
      if (leaves.contains(n)) ++present;
    }
    // The leaf set must contain at least the `half` closest overall.
    for (std::size_t i = 0; i < std::min<std::size_t>(half, expected.size()); ++i) {
      EXPECT_TRUE(leaves.contains(expected[i]))
          << "node " << id.to_hex() << " missing close neighbor " << expected[i].to_hex();
    }
    EXPECT_GE(present, std::min<std::size_t>(expected.size(), half));
  }
}

TEST(Overlay, NeighborCallbackFiresOnJoinAndFail) {
  Fixture fx(55);
  const NodeId a = fx.join_one();
  int fired = 0;
  fx.overlay.set_neighbor_callback(a, [&] { ++fired; });
  const NodeId b = fx.join_one();
  EXPECT_GE(fired, 1);
  const int after_join = fired;
  fx.overlay.fail(b);
  EXPECT_GT(fired, after_join);
}

TEST(Overlay, ReplicaTargetsAreLiveAndDistinct) {
  Fixture fx(77);
  auto ids = fx.join(20);
  fx.overlay.fail(ids[5]);
  fx.overlay.fail(ids[6]);
  for (const NodeId id : ids) {
    if (!fx.overlay.is_live(id)) continue;
    const auto targets = fx.overlay.replica_targets(id, 4);
    EXPECT_EQ(targets.size(), 4u);
    std::set<std::string> unique;
    for (const NodeId t : targets) {
      EXPECT_TRUE(fx.overlay.is_live(t));
      EXPECT_NE(t, id);
      unique.insert(t.to_hex());
    }
    EXPECT_EQ(unique.size(), targets.size());
  }
}

TEST(Overlay, ReplicaTargetsStraddleTheRing) {
  // With K >= 2, the two immediate ring neighbors must both be targets so
  // a failed primary's key range is always covered by a replica.
  Fixture fx(88);
  auto ids = fx.join(24);
  const auto& ring = fx.overlay.ring();
  for (const NodeId id : ids) {
    const auto targets = fx.overlay.replica_targets(id, 2);
    ASSERT_EQ(targets.size(), 2u);
    // Immediate neighbors: one on each side.
    const auto sorted = ring.sorted();
    std::size_t index = 0;
    while (sorted[index].first != id) ++index;
    const NodeId prev = sorted[(index + sorted.size() - 1) % sorted.size()].first;
    const NodeId next = sorted[(index + 1) % sorted.size()].first;
    const bool has_prev = targets[0] == prev || targets[1] == prev;
    const bool has_next = targets[0] == next || targets[1] == next;
    EXPECT_TRUE(has_prev && has_next) << "targets do not straddle node " << id.to_hex();
  }
}

TEST(Overlay, FailedHostLosesItsNode) {
  Fixture fx(66);
  const auto ids = fx.join(3);
  fx.overlay.fail(ids[1]);
  EXPECT_FALSE(fx.overlay.host_has_node(1));
  EXPECT_THROW((void)fx.overlay.node_on_host(1), std::invalid_argument);
  EXPECT_FALSE(fx.overlay.is_live(ids[1]));
  // Failing twice is harmless.
  fx.overlay.fail(ids[1]);
}

TEST(Overlay, RouteChargesNetworkTime) {
  Fixture fx(44);
  fx.join(16);
  const auto before = fx.clock.now();
  std::uint64_t hops = 0;
  for (int i = 0; i < 50; ++i) hops += fx.overlay.route(0, fx.rng.next_id()).hops;
  if (hops > 0) {
    EXPECT_GT(fx.clock.now().ns, before.ns);
  }
  EXPECT_GE(fx.network.stats().overlay_hops, hops);
}

}  // namespace
}  // namespace kosha::pastry

file(REMOVE_RECURSE
  "CMakeFiles/posix_app.dir/posix_app.cpp.o"
  "CMakeFiles/posix_app.dir/posix_app.cpp.o.d"
  "posix_app"
  "posix_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/home_directories.dir/home_directories.cpp.o"
  "CMakeFiles/home_directories.dir/home_directories.cpp.o.d"
  "home_directories"
  "home_directories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_directories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Randomised churn property tests: interleave file-system operations with
// node joins, crashes and revivals, and check that (a) data written is
// readable as long as failures never outpace the replication factor
// between repair rounds, and (b) the namespace stays consistent across
// clients.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

class ChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnProperty, DataSurvivesBoundedChurn) {
  ClusterConfig config;
  config.nodes = 10;
  config.kosha.distribution_level = 2;
  config.kosha.replicas = 2;
  config.node_capacity_bytes = 1ull << 30;
  config.seed = GetParam();
  KoshaCluster cluster(config);
  Rng rng(GetParam() * 31 + 5);
  KoshaMount mount(&cluster.daemon(0));  // host 0 is never killed

  std::map<std::string, std::string> expected;  // path -> content

  auto random_dir = [&] {
    return "/u" + std::to_string(rng.next_below(4)) + "/d" + std::to_string(rng.next_below(3));
  };

  for (int round = 0; round < 60; ++round) {
    const unsigned action = static_cast<unsigned>(rng.next_below(10));
    if (action < 5) {
      // Write or overwrite a file.
      const std::string dir = random_dir();
      ASSERT_TRUE(mount.mkdir_p(dir).ok());
      const std::string path = dir + "/f" + std::to_string(rng.next_below(6));
      const std::string content = "r" + std::to_string(round) + "-" + rng.next_name(12);
      ASSERT_TRUE(mount.write_file(path, content).ok()) << path;
      expected[path] = content;
    } else if (action < 7) {
      // Delete a known file.
      if (!expected.empty()) {
        auto it = expected.begin();
        std::advance(it, static_cast<long>(rng.next_below(expected.size())));
        ASSERT_TRUE(mount.remove(it->first).ok()) << it->first;
        expected.erase(it);
      }
    } else if (action < 8) {
      // Crash one random non-client node (single failure, then repair
      // completes synchronously — within the replication factor).
      const auto hosts = cluster.live_hosts();
      if (hosts.size() > 4) {
        const net::HostId victim = hosts[1 + rng.next_below(hosts.size() - 1)];
        cluster.fail_node(victim);
      }
    } else if (action < 9) {
      // Revive a crashed node, if any.
      for (net::HostId host = 0; host < 16; ++host) {
        if (host < cluster.network().host_count() && !cluster.is_up(host)) {
          cluster.revive_node(host);
          break;
        }
      }
    } else {
      (void)cluster.add_node();
    }

    // Invariant: everything written is readable with the right content.
    for (const auto& [path, content] : expected) {
      const auto read = mount.read_file(path);
      ASSERT_TRUE(read.ok()) << "round " << round << " lost " << path;
      ASSERT_EQ(read.value(), content) << "round " << round << " corrupted " << path;
    }
  }

  // Final cross-client consistency check from a surviving host.
  const auto hosts = cluster.live_hosts();
  KoshaMount other(&cluster.daemon(hosts.back()));
  for (const auto& [path, content] : expected) {
    const auto read = other.read_file(path);
    ASSERT_TRUE(read.ok()) << path;
    EXPECT_EQ(read.value(), content);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

TEST(ClusterChurn, MassJoinThenMassFailure) {
  ClusterConfig config;
  config.nodes = 4;
  config.kosha.distribution_level = 1;
  config.kosha.replicas = 3;
  config.seed = 61;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/grow").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(mount.write_file("/grow/f" + std::to_string(i), std::to_string(i)).ok());
  }
  // Triple the cluster.
  for (int i = 0; i < 8; ++i) (void)cluster.add_node();
  // Then kill three non-client nodes, one at a time (repair in between).
  Rng rng(62);
  for (int k = 0; k < 3; ++k) {
    const auto hosts = cluster.live_hosts();
    cluster.fail_node(hosts[1 + rng.next_below(hosts.size() - 1)]);
  }
  for (int i = 0; i < 10; ++i) {
    const auto content = mount.read_file("/grow/f" + std::to_string(i));
    ASSERT_TRUE(content.ok()) << i;
    EXPECT_EQ(content.value(), std::to_string(i));
  }
}

// --- self-healing mode (DESIGN §8): no oracle, detectors + daemons -------

TEST(ClusterChurn, SelfHealingChurnConvergesWithoutOracle) {
  ClusterConfig config;
  config.nodes = 10;
  config.kosha.distribution_level = 2;
  config.kosha.replicas = 2;
  config.seed = 911;
  config.self_heal.enabled = true;
  KoshaCluster cluster(config);
  Rng rng(912);
  KoshaMount mount(&cluster.daemon(0));

  std::map<std::string, std::string> expected;
  const auto settle = [&](double seconds) {
    cluster.loop().run_until_time(cluster.clock().now() + SimDuration::seconds(seconds));
  };

  for (int round = 0; round < 8; ++round) {
    // Write a couple of files.
    const std::string dir = "/sh/d" + std::to_string(rng.next_below(3));
    ASSERT_TRUE(mount.mkdir_p(dir).ok());
    for (int i = 0; i < 2; ++i) {
      const std::string path = dir + "/f" + std::to_string(rng.next_below(5));
      const std::string content = "r" + std::to_string(round) + "-" + rng.next_name(10);
      ASSERT_TRUE(mount.write_file(path, content).ok()) << path;
      expected[path] = content;
    }

    // One failure per round — discovered and repaired autonomously while
    // virtual time runs (fail_node only stops the host here).
    const auto hosts = cluster.live_hosts();
    if (hosts.size() > 6 && round % 2 == 0) {
      cluster.fail_node(hosts[1 + rng.next_below(hosts.size() - 1)]);
    } else if (round % 3 == 1) {
      (void)cluster.add_node();
    }
    settle(6.0);

    // Everything written is still readable with the right bytes.
    for (const auto& [path, content] : expected) {
      const auto read = mount.read_file(path);
      ASSERT_TRUE(read.ok()) << "round " << round << " lost " << path;
      ASSERT_EQ(read.value(), content) << "round " << round << " corrupted " << path;
    }
  }

  // Every real failure was detected; nothing is pending.
  EXPECT_EQ(cluster.undetected_failures(), 0u);
  EXPECT_FALSE(cluster.detections().empty());
}

TEST(ClusterChurn, ReviveRejoinsThroughJoinProtocolWithCleanDetectorState) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 2;
  config.seed = 913;
  config.self_heal.enabled = true;
  KoshaCluster cluster(config);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/rv").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(mount.write_file("/rv/f" + std::to_string(i), std::to_string(i)).ok());
  }

  const net::HostId victim = cluster.live_hosts().back();
  const pastry::NodeId old_id = cluster.node_id(victim);
  cluster.fail_node(victim);
  EXPECT_EQ(cluster.detector(victim), nullptr);
  EXPECT_EQ(cluster.repair_daemon(victim), nullptr);
  // Let the survivors actually detect and repair before the revival.
  cluster.loop().run_until_time(cluster.clock().now() + SimDuration::seconds(5));
  ASSERT_EQ(cluster.detections().size(), 1u);

  cluster.revive_node(victim);
  // The revival routes through the normal join protocol: fresh node id,
  // fresh detector and repair daemon, running from the start.
  const pastry::NodeId new_id = cluster.node_id(victim);
  EXPECT_NE(new_id, old_id);
  ASSERT_NE(cluster.detector(victim), nullptr);
  EXPECT_TRUE(cluster.detector(victim)->running());
  ASSERT_NE(cluster.repair_daemon(victim), nullptr);
  EXPECT_TRUE(cluster.repair_daemon(victim)->running());

  cluster.loop().run_until_time(cluster.clock().now() + SimDuration::seconds(8));
  // No survivor may hold a lingering verdict against the reborn node: the
  // new incarnation must be a first-class member again.
  for (const net::HostId host : cluster.live_hosts()) {
    if (const pastry::FailureDetector* d = cluster.detector(host)) {
      EXPECT_FALSE(d->is_suspected(new_id)) << host;
      EXPECT_FALSE(d->has_declared_dead(new_id)) << host;
    }
  }
  for (int i = 0; i < 6; ++i) {
    const auto read = mount.read_file("/rv/f" + std::to_string(i));
    ASSERT_TRUE(read.ok()) << i;
    EXPECT_EQ(read.value(), std::to_string(i));
  }
}

TEST(ClusterChurn, ClientHandlesStayValidAcrossFailover) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.replicas = 2;
  config.seed = 63;
  KoshaCluster cluster(config);
  auto& daemon = cluster.daemon(0);
  KoshaMount mount(&daemon);
  ASSERT_TRUE(mount.mkdir_p("/h").ok());
  ASSERT_TRUE(mount.write_file("/h/f", "before").ok());
  const auto vh = mount.resolve("/h/f");
  ASSERT_TRUE(vh.ok());

  const net::HostId primary = daemon.handle_table().find(*vh)->real.server;
  if (primary != 0) {
    cluster.fail_node(primary);
    // The *same* virtual handle keeps working (paper §4.4).
    const auto read = daemon.read(*vh, 0, 100);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->data, "before");
    const auto written = daemon.write(*vh, 0, "after!");
    ASSERT_TRUE(written.ok());
    EXPECT_EQ(mount.read_file("/h/f").value(), "after!");
    EXPECT_GE(daemon.stats().failovers, 1u);
  }
}

}  // namespace
}  // namespace kosha

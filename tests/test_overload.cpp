// Overload control end to end: retry-backoff arithmetic, token-bucket retry
// budgets, circuit breakers, deadline-aware admission, server-side shedding
// that preserves at-most-once (reject before any DRC store), the repair
// daemon yielding to foreground load, Zipf workload skew, zero-overhead
// numeric identity while the subsystem is disabled, and the flash-crowd A/B:
// the uncontrolled system collapses metastably, the controlled one sheds
// during the spike and recovers to baseline within a bounded window.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"
#include "kosha/repair.hpp"
#include "net/sim_network.hpp"
#include "nfs/nfs_server.hpp"
#include "nfs/retry_policy.hpp"
#include "sim/concurrency_driver.hpp"
#include "sim/overload_sim.hpp"

namespace kosha {
namespace {

// --- retry backoff arithmetic -------------------------------------------

/// The historical per-step doubling chain backoff_for replaced: re-derive
/// the whole sequence one clamped multiplication at a time.
[[nodiscard]] SimDuration reference_backoff(const nfs::RetryPolicy& policy, unsigned attempt) {
  SimDuration wait = policy.initial_backoff;
  for (unsigned i = 0; i < attempt; ++i) {
    if (wait.ns > policy.max_backoff.ns / 2) return policy.max_backoff;
    wait = SimDuration::nanos(wait.ns * 2);
  }
  return std::min(wait, policy.max_backoff);
}

TEST(RetryBackoff, DirectComputationMatchesDoublingChainBitForBit) {
  nfs::RetryPolicy policy;
  policy.initial_backoff = SimDuration::millis(10);
  policy.multiplier = 2.0;
  policy.max_backoff = SimDuration::millis(320);
  for (unsigned attempt = 0; attempt < 80; ++attempt) {
    EXPECT_EQ(policy.backoff_for(attempt).ns, reference_backoff(policy, attempt).ns)
        << "attempt " << attempt;
  }
  // Odd initial values must clamp identically too (10ms -> 320ms is exact).
  policy.initial_backoff = SimDuration::nanos(3'333'333);
  for (unsigned attempt = 0; attempt < 80; ++attempt) {
    EXPECT_EQ(policy.backoff_for(attempt).ns, reference_backoff(policy, attempt).ns)
        << "attempt " << attempt;
  }
}

TEST(RetryBackoff, CeilingClampAndHugeAttemptsDoNotOverflow) {
  nfs::RetryPolicy policy;
  policy.initial_backoff = SimDuration::millis(1);
  policy.max_backoff = SimDuration::millis(64);
  // Attempts far past the point where 1ms << attempt would overflow int64.
  for (const unsigned attempt : {7u, 20u, 62u, 63u, 80u, 1000u}) {
    EXPECT_EQ(policy.backoff_for(attempt).ns, policy.max_backoff.ns) << "attempt " << attempt;
  }
  // initial >= ceiling: every attempt is the ceiling, including attempt 0.
  policy.initial_backoff = SimDuration::millis(100);
  EXPECT_EQ(policy.backoff_for(0).ns, policy.max_backoff.ns);
}

TEST(RetryBackoff, NonPowerOfTwoMultiplierIsMonotoneAndClamped) {
  nfs::RetryPolicy policy;
  policy.initial_backoff = SimDuration::millis(2);
  policy.multiplier = 1.7;
  policy.max_backoff = SimDuration::millis(100);
  EXPECT_EQ(policy.backoff_for(0).ns, policy.initial_backoff.ns);
  std::int64_t prev = 0;
  for (unsigned attempt = 0; attempt < 40; ++attempt) {
    const std::int64_t ns = policy.backoff_for(attempt).ns;
    EXPECT_GE(ns, prev) << "attempt " << attempt;
    EXPECT_LE(ns, policy.max_backoff.ns) << "attempt " << attempt;
    prev = ns;
  }
  EXPECT_EQ(policy.backoff_for(39).ns, policy.max_backoff.ns);
  // Pre-clamp values follow the closed form.
  const double expect3 = 2e6 * std::pow(1.7, 3.0);
  EXPECT_EQ(policy.backoff_for(3).ns, static_cast<std::int64_t>(expect3));
}

TEST(RetryBackoff, JitterIsDeterministicPerSeedAndZeroJitterDrawsNothing) {
  nfs::RetryPolicy policy;
  policy.jitter = 0.25;
  Rng a(1234);
  Rng b(1234);
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    const SimDuration wa = policy.jittered_backoff(attempt, a);
    const SimDuration wb = policy.jittered_backoff(attempt, b);
    EXPECT_EQ(wa.ns, wb.ns) << "attempt " << attempt;
    EXPECT_GE(wa.ns, policy.backoff_for(attempt).ns);
    EXPECT_LE(wa.ns, policy.backoff_for(attempt).ns +
                         static_cast<std::int64_t>(policy.backoff_for(attempt).ns * 0.25) + 1);
  }
  // jitter == 0: exact backoff_for and no Rng draw consumed.
  policy.jitter = 0.0;
  Rng c(77);
  Rng untouched(77);
  EXPECT_EQ(policy.jittered_backoff(3, c).ns, policy.backoff_for(3).ns);
  EXPECT_EQ(c.next_u64(), untouched.next_u64());
}

// --- retry budget and circuit breaker -----------------------------------

TEST(RetryBudget, SpendDrainsEarnRefillsAndCapHolds) {
  nfs::RetryBudget budget(2.0, 0.5);
  EXPECT_TRUE(budget.spend());
  EXPECT_TRUE(budget.spend());
  EXPECT_FALSE(budget.spend()) << "empty bucket must refuse";
  EXPECT_EQ(budget.exhausted(), 1u);
  budget.earn();  // 0.5 tokens: still below one whole retry
  EXPECT_FALSE(budget.spend());
  EXPECT_EQ(budget.exhausted(), 2u);
  budget.earn();
  EXPECT_TRUE(budget.spend());
  for (int i = 0; i < 100; ++i) budget.earn();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0) << "earn must saturate at the cap";
}

TEST(CircuitBreaker, OpensAtThresholdProbesAfterCooldownAndRecloses) {
  nfs::CircuitBreaker breaker(3, SimDuration::millis(50));
  SimDuration now = SimDuration::millis(1);
  breaker.on_failure(now);
  breaker.on_failure(now);
  EXPECT_EQ(breaker.state(), nfs::CircuitBreaker::State::kClosed);
  breaker.on_failure(now);
  EXPECT_EQ(breaker.state(), nfs::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  // Within the cooldown: fast-fail, counted.
  EXPECT_FALSE(breaker.allow(now + SimDuration::millis(10)));
  EXPECT_FALSE(breaker.allow(now + SimDuration::millis(49)));
  EXPECT_EQ(breaker.fast_fails(), 2u);
  // Cooldown elapsed: exactly one half-open probe.
  now = now + SimDuration::millis(50);
  EXPECT_TRUE(breaker.allow(now));
  EXPECT_EQ(breaker.state(), nfs::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(now)) << "one probe at a time";
  breaker.on_success();
  EXPECT_EQ(breaker.state(), nfs::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(now));
}

TEST(CircuitBreaker, FailedProbeReopensForAnotherCooldown) {
  nfs::CircuitBreaker breaker(2, SimDuration::millis(20));
  breaker.on_failure(SimDuration::millis(1));
  breaker.on_failure(SimDuration::millis(1));
  ASSERT_EQ(breaker.state(), nfs::CircuitBreaker::State::kOpen);
  ASSERT_TRUE(breaker.allow(SimDuration::millis(30)));
  breaker.on_failure(SimDuration::millis(30));  // probe fails
  EXPECT_EQ(breaker.state(), nfs::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.allow(SimDuration::millis(40)));
  EXPECT_TRUE(breaker.allow(SimDuration::millis(51)));
}

// --- network admission ---------------------------------------------------

class AdmissionTest : public ::testing::Test {
 protected:
  SimClock clock_;
  net::SimNetwork network_{net::NetworkConfig{}, &clock_};
};

TEST_F(AdmissionTest, DefaultAdmissionAdmitsEverythingAndMovesNoCounter) {
  network_.note_inflight(0, 100);
  EXPECT_EQ(network_.admit(0, SimDuration::millis(1), SimDuration::nanos(1), false),
            net::SimNetwork::Admit::kAdmit);
  EXPECT_EQ(network_.admit(0, SimDuration::millis(1), SimDuration{}, true),
            net::SimNetwork::Admit::kAdmit);
  EXPECT_EQ(network_.stats().admission_rejected, 0u);
  EXPECT_EQ(network_.stats().deadline_rejected, 0u);
  EXPECT_EQ(network_.stats().shed_low_priority, 0u);
}

TEST_F(AdmissionTest, InflightBoundRejectsForegroundAndTighterBoundShedsBackground) {
  network_.set_admission({.max_inflight = 4, .low_priority_inflight = 2});
  network_.note_inflight(3, 2);
  // Background already at its bound; foreground still fits.
  EXPECT_EQ(network_.admit(3, SimDuration{}, SimDuration{}, true),
            net::SimNetwork::Admit::kRejectInflight);
  EXPECT_EQ(network_.stats().shed_low_priority, 1u);
  EXPECT_EQ(network_.admit(3, SimDuration{}, SimDuration{}, false),
            net::SimNetwork::Admit::kAdmit);
  network_.note_inflight(3, 2);
  EXPECT_EQ(network_.admit(3, SimDuration{}, SimDuration{}, false),
            net::SimNetwork::Admit::kRejectInflight);
  EXPECT_EQ(network_.stats().admission_rejected, 1u);
  // A different host is unaffected.
  EXPECT_EQ(network_.admit(4, SimDuration{}, SimDuration{}, false),
            net::SimNetwork::Admit::kAdmit);
}

TEST_F(AdmissionTest, DeadlineRejectsWhenHeadOfQueueServiceWouldStartTooLate) {
  network_.set_admission({.max_inflight = 64, .low_priority_inflight = 0});
  network_.end_service(5, SimDuration::millis(50));  // busy until t=50ms
  const SimDuration arrival = SimDuration::millis(10);
  EXPECT_EQ(network_.admit(5, arrival, SimDuration::millis(20), false),
            net::SimNetwork::Admit::kRejectDeadline);
  EXPECT_EQ(network_.stats().deadline_rejected, 1u);
  EXPECT_EQ(network_.admit(5, arrival, SimDuration::millis(60), false),
            net::SimNetwork::Admit::kAdmit);
  // No deadline (0) never deadline-rejects, however busy the host.
  EXPECT_EQ(network_.admit(5, arrival, SimDuration{}, false), net::SimNetwork::Admit::kAdmit);
  EXPECT_EQ(network_.stats().deadline_rejected, 1u);
}

// --- server-side shedding preserves at-most-once -------------------------

TEST(ServerShedding, ExpiredDeadlineRejectsBeforeAnyDrcStoreAndRetryExecutesOnce) {
  ClusterConfig config;
  config.nodes = 1;
  config.seed = 4242;
  KoshaCluster cluster(config);
  nfs::NfsServer& server = cluster.server(0);
  cluster.clock().advance(SimDuration::millis(10));

  nfs::RpcContext ctx{/*client=*/1, /*xid=*/99, /*boot=*/1};
  ctx.deadline = SimDuration::millis(5);  // already in the past

  const std::uint64_t stores_before = server.drc_stats().stores;
  const auto shed = server.create(server.root_handle(), "shedme", 0644, 0, 0, ctx);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error(), nfs::NfsStat::kOverloaded);
  EXPECT_EQ(server.deadline_rejects(), 1u);
  // P3: the rejection must NOT have been recorded in the duplicate-request
  // cache — a cached kOverloaded would answer every retransmission of this
  // xid with the rejection forever (at-most-once becomes at-most-never).
  EXPECT_EQ(server.drc_stats().stores, stores_before);

  // The client retransmits the same request (same xid) once the overload
  // clears, now with a fresh (or no) deadline: it must actually execute.
  ctx.deadline = SimDuration{};
  const auto retry = server.create(server.root_handle(), "shedme", 0644, 0, 0, ctx);
  ASSERT_TRUE(retry.ok()) << nfs::to_string(retry.error());
  EXPECT_EQ(server.drc_stats().stores, stores_before + 1);

  // And a further retransmission is answered from the cache, not re-executed
  // (a re-execution would surface a spurious kExist).
  const std::uint64_t hits_before = server.drc_stats().hits;
  const auto dup = server.create(server.root_handle(), "shedme", 0644, 0, 0, ctx);
  ASSERT_TRUE(dup.ok()) << nfs::to_string(dup.error());
  EXPECT_EQ(server.drc_stats().hits, hits_before + 1);

  // A deadline still in the future does not shed.
  ctx.xid = 100;
  ctx.deadline = cluster.clock().now() + SimDuration::millis(5);
  EXPECT_TRUE(server.create(server.root_handle(), "fresh", 0644, 0, 0, ctx).ok());
  EXPECT_EQ(server.deadline_rejects(), 1u);
}

// --- config validation ---------------------------------------------------

TEST(OverloadConfigValidate, EachKnobIsRangeChecked) {
  KoshaConfig base;
  base.overload.enabled = true;
  ASSERT_TRUE(base.validate().empty()) << base.validate();

  auto expect_rejected = [&](auto mutate, const char* what) {
    KoshaConfig config = base;
    mutate(config.overload);
    const std::string err = config.validate();
    EXPECT_FALSE(err.empty()) << what;
    EXPECT_NE(err.find("overload."), std::string::npos) << what << ": " << err;
  };
  expect_rejected([](auto& o) { o.max_inflight = 0; }, "max_inflight zero");
  expect_rejected([](auto& o) { o.low_priority_fraction = 0.0; }, "fraction zero");
  expect_rejected([](auto& o) { o.low_priority_fraction = 1.5; }, "fraction above one");
  expect_rejected([](auto& o) { o.retry_budget_cap = 0.5; }, "cap below one");
  expect_rejected([](auto& o) { o.retry_budget_refill = 0.0; }, "refill zero");
  expect_rejected([](auto& o) { o.retry_budget_refill = o.retry_budget_cap + 1; },
                  "refill above cap");
  expect_rejected([](auto& o) { o.breaker_cooldown = SimDuration{}; }, "cooldown zero");
  expect_rejected([](auto& o) { o.op_budget = SimDuration::nanos(-1); }, "negative budget");

  // Disabled: only op_budget sign is checked; odd knob values are inert.
  KoshaConfig off = base;
  off.overload.enabled = false;
  off.overload.max_inflight = 0;
  off.overload.retry_budget_cap = 0.0;
  EXPECT_TRUE(off.validate().empty()) << off.validate();
}

// --- Zipf sampler and workload skew --------------------------------------

TEST(Zipf, SamplerIsDeterministicSkewedAndInRange) {
  const sim::ZipfSampler sampler(16, 1.1);
  ASSERT_EQ(sampler.size(), 16u);
  Rng a(2026);
  Rng b(2026);
  std::vector<std::size_t> counts(16, 0);
  for (int i = 0; i < 20'000; ++i) {
    const std::size_t rank = sampler.sample(a);
    ASSERT_LT(rank, 16u);
    EXPECT_EQ(rank, sampler.sample(b)) << "same seed must give the same sequence";
    ++counts[rank];
  }
  // Zipf(1.1) over 16 ranks: rank 0 carries ~28% of the mass, the tail
  // rank ~1.4% — the head must dominate and the distribution must be
  // monotone in expectation (allow sampling noise between neighbors by
  // only comparing head, middle, and tail).
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[8]);
  EXPECT_GT(counts[8], 0u);
  EXPECT_GT(counts[0], 20'000 / 5) << "head rank must carry the bulk of the draws";
}

TEST(Zipf, SkewedWorkloadRunsCleanAndDeterministically) {
  auto run = [] {
    ClusterConfig config;
    config.nodes = 4;
    config.kosha.replicas = 2;
    config.seed = 913;
    config.event_driven = true;
    KoshaCluster cluster(config);
    sim::WorkloadConfig workload;
    workload.clients = 4;
    workload.files_per_client = 8;
    workload.file_bytes = 2048;
    workload.reads_per_file = 4;
    workload.zipf_s = 1.2;
    return sim::run_multi_client_workload(cluster, workload);
  };
  const sim::WorkloadResult first = run();
  const sim::WorkloadResult second = run();
  EXPECT_GT(first.ops, 0u);
  EXPECT_EQ(first.failures, 0u);
  EXPECT_EQ(first.makespan.ns, second.makespan.ns);
  EXPECT_EQ(first.busy.ns, second.busy.ns);
  EXPECT_EQ(first.ops, second.ops);
}

// --- zero overhead while disabled ----------------------------------------

TEST(DisabledIdentity, PresentButDisabledOverloadConfigChangesNothing) {
  auto run = [](bool configure_knobs) {
    ClusterConfig config;
    config.nodes = 4;
    config.kosha.replicas = 2;
    config.seed = 515;
    config.event_driven = true;
    if (configure_knobs) {
      // Every knob set to a non-default value — but enabled stays false,
      // so none of it may influence the run.
      config.kosha.overload.enabled = false;
      config.kosha.overload.max_inflight = 2;
      config.kosha.overload.low_priority_fraction = 0.9;
      config.kosha.overload.retry_budget_cap = 1.0;
      config.kosha.overload.retry_budget_refill = 0.01;
      config.kosha.overload.breaker_threshold = 1;
      config.kosha.overload.breaker_cooldown = SimDuration::millis(1);
      config.kosha.overload.op_budget = SimDuration::millis(1);
      config.kosha.overload.repair_yield_inflight = 1;
    }
    KoshaCluster cluster(config);
    sim::WorkloadConfig workload;
    workload.clients = 3;
    workload.files_per_client = 6;
    workload.file_bytes = 4096;
    const sim::WorkloadResult result = sim::run_multi_client_workload(cluster, workload);
    return std::pair(result, cluster.network().stats());
  };
  const auto [plain_result, plain_net] = run(false);
  const auto [knobs_result, knobs_net] = run(true);
  EXPECT_EQ(plain_result.makespan.ns, knobs_result.makespan.ns);
  EXPECT_EQ(plain_result.busy.ns, knobs_result.busy.ns);
  EXPECT_EQ(plain_result.ops, knobs_result.ops);
  EXPECT_EQ(plain_result.failures, knobs_result.failures);
  EXPECT_EQ(plain_net, knobs_net) << "disabled overload control moved a network counter";
  EXPECT_EQ(knobs_net.admission_rejected, 0u);
  EXPECT_EQ(knobs_net.deadline_rejected, 0u);
  EXPECT_EQ(knobs_net.expired, 0u);
  EXPECT_EQ(knobs_net.shed_low_priority, 0u);
}

// --- repair daemon yields to foreground load -----------------------------

TEST(RepairYield, TickPerformsNoPushesWhileForegroundInflightIsHigh) {
  ClusterConfig config;
  config.nodes = 4;
  config.kosha.replicas = 2;
  config.seed = 606;
  config.self_heal.enabled = true;
  config.kosha.overload.enabled = true;
  config.kosha.overload.repair_yield_inflight = 4;
  KoshaCluster cluster(config);
  cluster.loop().run_until_time(cluster.clock().now() + SimDuration::millis(500));
  RepairDaemon* daemon = cluster.repair_daemon(0);
  ASSERT_NE(daemon, nullptr);

  cluster.network().note_inflight(0, 8);
  const std::uint64_t yields_before = daemon->stats().yields;
  daemon->tick();
  EXPECT_EQ(daemon->stats().yields, yields_before + 1)
      << "a loaded host's repair tick must yield";

  cluster.network().note_inflight(0, -8);
  daemon->tick();
  EXPECT_EQ(daemon->stats().yields, yields_before + 1)
      << "an idle host's repair tick must not yield";
}

// --- flash crowd: metastable collapse and its cure ------------------------

TEST(FlashCrowd, UncontrolledSystemCollapsesAndStaysCollapsed) {
  sim::FlashCrowdConfig config;
  config.controlled = false;
  const sim::FlashCrowdResult result = sim::simulate_flash_crowd(config);
  EXPECT_GT(result.baseline_ops, 0.0);
  // The failure is metastable: long after the spike ends, goodput is still
  // pinned far below baseline, because abandoned-but-queued requests eat
  // the server's capacity (dead work) and retries replace every casualty.
  EXPECT_LT(result.post_over_baseline, 0.5)
      << "post-spike goodput recovered; the metastable trap did not arm";
  EXPECT_FALSE(result.recovered);
  EXPECT_GT(result.timeouts, 0u) << "collapse requires abandoned attempts";
  EXPECT_GT(result.retries, 0u) << "collapse requires retry amplification";
  // No overload machinery ran in this arm.
  EXPECT_EQ(result.admission_rejected, 0u);
  EXPECT_EQ(result.deadline_rejected, 0u);
  EXPECT_EQ(result.overloaded_replies, 0u);
  EXPECT_EQ(result.breaker_opens, 0u);
}

TEST(FlashCrowd, ControlledSystemShedsDuringSpikeAndRecovers) {
  sim::FlashCrowdConfig config;
  config.controlled = true;
  const sim::FlashCrowdResult result = sim::simulate_flash_crowd(config);
  EXPECT_TRUE(result.recovered) << "post-spike goodput never returned to baseline";
  EXPECT_GE(result.post_over_baseline, 0.95);
  EXPECT_LE(result.recovery_after_spike.ns, SimDuration::millis(2000).ns)
      << "recovery took longer than the bounded window";
  // The cure is visible in the mechanism counters: load was refused
  // cheaply rather than served late.
  EXPECT_GT(result.deadline_rejected, 0u) << "deadline-aware admission never fired";
  EXPECT_GT(result.overloaded_replies, 0u);
  EXPECT_GT(result.budget_exhausted, 0u) << "retry budgets never clamped";
  EXPECT_GT(result.breaker_opens, 0u) << "breakers never opened";
}

TEST(FlashCrowd, SameSeedRunsAreByteIdenticalAndArmsAgreeBeforeTheSpike) {
  sim::FlashCrowdConfig config;
  config.controlled = false;
  const sim::FlashCrowdResult u1 = sim::simulate_flash_crowd(config);
  const sim::FlashCrowdResult u2 = sim::simulate_flash_crowd(config);
  EXPECT_EQ(u1.timeline_csv, u2.timeline_csv);
  EXPECT_EQ(u1.digest, u2.digest);

  config.controlled = true;
  const sim::FlashCrowdResult c1 = sim::simulate_flash_crowd(config);
  const sim::FlashCrowdResult c2 = sim::simulate_flash_crowd(config);
  EXPECT_EQ(c1.timeline_csv, c2.timeline_csv);
  EXPECT_EQ(c1.digest, c2.digest);
  EXPECT_NE(c1.digest, u1.digest) << "arms must differ once the spike hits";

  // Until the spike arrives the controlled arm's machinery has nothing to
  // do, and doing nothing must cost nothing: pre-spike windows match the
  // uncontrolled arm count for count.
  const std::size_t pre_spike_windows =
      static_cast<std::size_t>(config.spike_start.ns / config.window.ns);
  ASSERT_GE(u1.windows.size(), pre_spike_windows);
  ASSERT_GE(c1.windows.size(), pre_spike_windows);
  for (std::size_t w = 0; w < pre_spike_windows; ++w) {
    EXPECT_EQ(u1.windows[w].ok, c1.windows[w].ok) << "window " << w;
    EXPECT_EQ(u1.windows[w].failed, c1.windows[w].failed) << "window " << w;
  }
}

}  // namespace
}  // namespace kosha

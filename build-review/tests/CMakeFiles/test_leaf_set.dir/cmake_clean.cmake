file(REMOVE_RECURSE
  "CMakeFiles/test_leaf_set.dir/test_leaf_set.cpp.o"
  "CMakeFiles/test_leaf_set.dir/test_leaf_set.cpp.o.d"
  "test_leaf_set"
  "test_leaf_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leaf_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

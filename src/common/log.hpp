#pragma once

// Minimal leveled logger.
//
// Off by default; experiments enable kInfo for progress lines, tests enable
// kDebug when diagnosing a failure. Not thread-safe beyond the atomicity of
// a single fprintf — fine for the coarse progress messages used here.

#include <cstdarg>

namespace kosha {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// printf-style logging at `level`.
void log_message(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define KOSHA_LOG_DEBUG(...) ::kosha::log_message(::kosha::LogLevel::kDebug, __VA_ARGS__)
#define KOSHA_LOG_INFO(...) ::kosha::log_message(::kosha::LogLevel::kInfo, __VA_ARGS__)
#define KOSHA_LOG_WARN(...) ::kosha::log_message(::kosha::LogLevel::kWarn, __VA_ARGS__)
#define KOSHA_LOG_ERROR(...) ::kosha::log_message(::kosha::LogLevel::kError, __VA_ARGS__)

}  // namespace kosha

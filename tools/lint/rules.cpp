#include "lint/rules.hpp"

#include <algorithm>
#include <string_view>

namespace kosha::lint {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

bool allowed(const SourceFile& f, int line, std::string_view slug) {
  for (const int l : {line, line - 1}) {
    const auto it = f.annotations.find(l);
    if (it == f.annotations.end()) continue;
    for (const Annotation& ann : it->second) {
      if (ann.slug == slug && ann.has_reason) return true;
    }
  }
  return false;
}

bool entropy_allowlisted(const Config& config, const std::string& path) {
  for (const std::string& suffix : config.entropy_allowlist) {
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

struct Ctx {
  const Config& config;
  const Index& idx;
  const CallGraph& graph;
  RuleResult* result;

  void report(const SourceFile& f, int line, std::string rule, std::string slug,
              std::string message) const {
    if (allowed(f, line, slug)) return;
    result->diags.push_back(
        {f.path, line, std::move(rule), std::move(slug), std::move(message)});
  }
};

/// First wall-clock/entropy/sleep token inside [begin, end) of `t`, with the
/// same member-access and qualification filters as D1/D3; (npos, "") when
/// clean. Shared by D1's per-file scan and D4's per-function sink scan.
std::pair<std::size_t, std::string> find_sink(const std::vector<Token>& t,
                                              std::size_t begin, std::size_t end) {
  static const std::set<std::string, std::less<>> kForbidden = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "random_device", "getenv",       "srand",
      "mt19937",       "mt19937_64",   "default_random_engine",
      "sleep_for",     "sleep_until",  "usleep",
      "nanosleep"};
  static const std::set<std::string, std::less<>> kCallLike = {"time", "rand", "sleep"};
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (kForbidden.count(t[i].text) > 0) return {i, t[i].text};
    if (kCallLike.count(t[i].text) == 0) continue;
    if (i + 1 >= t.size() || !is_punct(t[i + 1], "(")) continue;
    if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) continue;
    if (i > 0 && is_punct(t[i - 1], "::")) {
      if (i >= 2 && t[i - 2].kind == TokKind::kIdent && t[i - 2].text != "std") continue;
    }
    return {i, t[i].text};
  }
  return {std::string::npos, std::string()};
}

// ---------------------------------------------------------------------------
// D1: wall clock / entropy
// ---------------------------------------------------------------------------

void rule_wall_clock(const Ctx& ctx, const SourceFile& f) {
  if (entropy_allowlisted(ctx.config, f.path)) return;
  static const std::set<std::string, std::less<>> kForbidden = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "random_device", "getenv",       "srand",
      "mt19937",       "mt19937_64",   "default_random_engine"};
  static const std::set<std::string, std::less<>> kCallLike = {"time", "rand"};
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (kForbidden.count(t[i].text) > 0) {
      ctx.report(f, t[i].line, "D1", "wall-clock",
                 "nondeterministic primitive `" + t[i].text +
                     "` outside common/rng or common/cli; derive values from the "
                     "seeded Rng or the SimClock");
      continue;
    }
    if (kCallLike.count(t[i].text) == 0) continue;
    if (i + 1 >= t.size() || !is_punct(t[i + 1], "(")) continue;
    if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) continue;
    if (i > 0 && is_punct(t[i - 1], "::")) {
      // Qualified: `std::time(` and global `::time(` are the libc calls;
      // `SomeClass::time(` is a different symbol.
      if (i >= 2 && t[i - 2].kind == TokKind::kIdent && t[i - 2].text != "std") continue;
    }
    ctx.report(f, t[i].line, "D1", "wall-clock",
               "call to wall-clock/entropy function `" + t[i].text +
                   "()`; simulations must use SimClock / seeded Rng");
  }
}

// ---------------------------------------------------------------------------
// D2: unordered iteration
// ---------------------------------------------------------------------------

void rule_unordered_iter(const Ctx& ctx, const SourceFile& f) {
  const auto& unordered = ctx.idx.unordered_names();
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "for") || !is_punct(t[i + 1], "(")) continue;
    const std::size_t open = i + 1;
    const std::size_t end = skip_balanced(t, open, "(", ")");
    // Split at a ':' on paren depth 1 — a range-for. ('::' is one token,
    // so it cannot masquerade as the range separator.)
    std::size_t colon = end;
    int depth = 0;
    for (std::size_t j = open; j < end; ++j) {
      if (is_punct(t[j], "(")) ++depth;
      else if (is_punct(t[j], ")")) --depth;
      else if (depth == 1 && is_punct(t[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon < end) {
      for (std::size_t j = colon + 1; j < end; ++j) {
        if (t[j].kind == TokKind::kIdent && unordered.count(t[j].text) > 0) {
          ctx.report(f, t[j].line, "D2", "unordered-iter",
                     "range-for over unordered container `" + t[j].text +
                         "`: iteration order is implementation-defined and leaks "
                         "into traces/metrics/migration order; iterate a sorted "
                         "copy or use std::map");
          break;
        }
      }
    } else {
      // Classic for: flag `name.begin()` / `name->begin()` iterator loops.
      for (std::size_t j = open; j + 2 < end; ++j) {
        if (t[j].kind == TokKind::kIdent && unordered.count(t[j].text) > 0 &&
            (is_punct(t[j + 1], ".") || is_punct(t[j + 1], "->")) &&
            (is_ident(t[j + 2], "begin") || is_ident(t[j + 2], "cbegin"))) {
          ctx.report(f, t[j].line, "D2", "unordered-iter",
                     "iterator loop over unordered container `" + t[j].text +
                         "`: iteration order is implementation-defined; sort or "
                         "annotate if provably order-insensitive");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D3: event-loop callback discipline (direct checks; D4 is the transitive
// closure of the same discipline)
// ---------------------------------------------------------------------------

void rule_event_callbacks(const Ctx& ctx, const SourceFile& f) {
  static const std::set<std::string, std::less<>> kSleeps = {
      "sleep_for", "sleep_until", "usleep", "nanosleep"};
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (kSleeps.count(t[i].text) > 0 ||
        (t[i].text == "sleep" && i + 1 < t.size() && is_punct(t[i + 1], "(") &&
         (i == 0 || (!is_punct(t[i - 1], ".") && !is_punct(t[i - 1], "->"))))) {
      ctx.report(f, t[i].line, "D3", "event-callback",
                 "blocking sleep `" + t[i].text +
                     "`: virtual time only moves via SimClock/EventLoop; real "
                     "sleeps stall the simulation without advancing it");
      continue;
    }
    if ((t[i].text == "schedule_at" || t[i].text == "schedule_after") &&
        i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      const std::size_t end = skip_balanced(t, i + 1, "(", ")");
      for (std::size_t j = i + 2; j < end; ++j) {
        if (is_ident(t[j], "set_now") || is_ident(t[j], "now_")) {
          ctx.report(f, t[j].line, "D3", "event-callback",
                     "`" + t[j].text + "` inside a callback passed to " + t[i].text +
                         ": event callbacks must not mutate the clock directly — "
                         "the loop advances it when dispatching");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// P1: non-idempotent handlers must engage the DRC
// ---------------------------------------------------------------------------

const std::set<std::string, std::less<>>& non_idempotent_procs() {
  static const std::set<std::string, std::less<>> kSet = {
      "create", "mkdir",  "symlink", "link",     "remove",
      "rmdir",  "rename", "setattr", "set_mode", "truncate"};
  return kSet;
}

void rule_drc(const Ctx& ctx, const SourceFile& f) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (!is_ident(t[i], "NfsServer") || !is_punct(t[i + 1], "::")) continue;
    if (t[i + 2].kind != TokKind::kIdent ||
        non_idempotent_procs().count(t[i + 2].text) == 0) {
      continue;
    }
    if (!is_punct(t[i + 3], "(")) continue;
    std::size_t j = skip_balanced(t, i + 3, "(", ")");
    while (j < t.size() && t[j].kind == TokKind::kIdent) ++j;  // const, noexcept
    if (j >= t.size() || !is_punct(t[j], "{")) continue;       // declaration only
    const std::size_t body_end = skip_balanced(t, j, "{", "}");
    std::size_t first_store = body_end, first_find = body_end, first_record = body_end;
    for (std::size_t k = j; k < body_end; ++k) {
      if (t[k].kind != TokKind::kIdent) continue;
      if (t[k].text == "store_" && first_store == body_end) first_store = k;
      if (t[k].text == "drc_find" && first_find == body_end) first_find = k;
      if (t[k].text == "drc_store" && first_record == body_end) first_record = k;
    }
    const std::string proc = t[i + 2].text;
    if (first_store == body_end) continue;  // no mutation: nothing to protect
    if (first_find > first_store) {
      ctx.report(f, t[i].line, "P1", "drc",
                 "non-idempotent handler NfsServer::" + proc +
                     " touches store_ before consulting drc_find: a retransmission "
                     "of an executed request would re-execute (at-most-once "
                     "violation)");
    }
    if (first_record == body_end) {
      ctx.report(f, t[i].line, "P1", "drc",
                 "non-idempotent handler NfsServer::" + proc +
                     " never records its reply via drc_store: the DRC cannot "
                     "answer the retransmission");
    }
  }
}

// ---------------------------------------------------------------------------
// P3: early rejects must precede the DRC store
// ---------------------------------------------------------------------------
// Overload control lets a server refuse work before executing it
// (deadline-expired requests answer kOverloaded). In a non-idempotent
// handler that refusal MUST happen before the handler records a reply in
// the duplicate-request cache: a cached kOverloaded would be replayed to
// the retransmission of a request that never executed, permanently
// shadowing the real execution (at-most-once becomes at-most-never).

void rule_early_reject(const Ctx& ctx, const SourceFile& f) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (!is_ident(t[i], "NfsServer") || !is_punct(t[i + 1], "::")) continue;
    if (t[i + 2].kind != TokKind::kIdent ||
        non_idempotent_procs().count(t[i + 2].text) == 0) {
      continue;
    }
    if (!is_punct(t[i + 3], "(")) continue;
    std::size_t j = skip_balanced(t, i + 3, "(", ")");
    while (j < t.size() && t[j].kind == TokKind::kIdent) ++j;  // const, noexcept
    if (j >= t.size() || !is_punct(t[j], "{")) continue;       // declaration only
    const std::size_t body_end = skip_balanced(t, j, "{", "}");
    std::size_t first_record = body_end, first_reject = body_end, first_overload = body_end;
    for (std::size_t k = j; k < body_end; ++k) {
      if (t[k].kind != TokKind::kIdent) continue;
      if (t[k].text == "drc_store" && first_record == body_end) first_record = k;
      if (t[k].text == "reject_expired" && first_reject == body_end) first_reject = k;
      if (t[k].text == "kOverloaded" && first_overload == body_end) first_overload = k;
    }
    const std::string proc = t[i + 2].text;
    if (first_record == body_end) continue;  // nothing cached: nothing to poison
    if (first_reject != body_end && first_reject > first_record) {
      ctx.report(f, t[first_reject].line, "P3", "early-reject",
                 "non-idempotent handler NfsServer::" + proc +
                     " calls reject_expired after drc_store: the shed reply could "
                     "be recorded in the DRC and replayed to a retransmission that "
                     "deserves the real execution");
    }
    if (first_overload != body_end && first_overload > first_record) {
      ctx.report(f, t[first_overload].line, "P3", "early-reject",
                 "non-idempotent handler NfsServer::" + proc +
                     " produces kOverloaded after drc_store: early-reject paths "
                     "must fire before the reply is cached (a stored overload "
                     "reply shadows the execution forever)");
    }
  }
}

// ---------------------------------------------------------------------------
// P2: full RpcContext construction
// ---------------------------------------------------------------------------

void rule_rpc_ctx(const Ctx& ctx, const SourceFile& f) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i], "RpcContext")) continue;
    if (i > 0 && (is_ident(t[i - 1], "struct") || is_ident(t[i - 1], "class"))) {
      continue;  // the type's own definition
    }
    std::size_t j = i + 1;
    if (j < t.size() && t[j].kind == TokKind::kIdent) {
      if (j + 1 < t.size() && is_punct(t[j + 1], "::")) continue;  // return type
      ++j;
      if (j < t.size() && is_punct(t[j], ";")) {
        ctx.report(f, t[j].line, "P2", "rpc-ctx",
                   "default-constructed RpcContext: outbound RPCs must carry the "
                   "full {client, xid, boot} triple (see NfsClient::rpc_ctx)");
        continue;
      }
    }
    if (j < t.size() && is_punct(t[j], "=")) ++j;
    if (j >= t.size() || !is_punct(t[j], "{")) continue;
    const std::size_t end = skip_balanced(t, j, "{", "}");
    int args = 0, depth = 0;
    bool any = false;
    for (std::size_t k = j; k < end; ++k) {
      if (is_punct(t[k], "{") || is_punct(t[k], "(") || is_punct(t[k], "[")) ++depth;
      else if (is_punct(t[k], "}") || is_punct(t[k], ")") || is_punct(t[k], "]")) --depth;
      else if (depth == 1 && is_punct(t[k], ",")) ++args;
      else if (depth >= 1) any = true;
    }
    if (any) ++args;
    if (args >= 3) continue;
    // An empty `{}` that is a defaulted parameter (followed by ')' or ',')
    // is the documented absent-context sentinel for direct server calls.
    if (args == 0 && end < t.size() &&
        (is_punct(t[end], ")") || is_punct(t[end], ","))) {
      continue;
    }
    ctx.report(f, t[j].line, "P2", "rpc-ctx",
               "RpcContext constructed with " + std::to_string(args) +
                   " of 3 required fields {client, xid, boot}: partial contexts "
                   "defeat the duplicate-request cache's incarnation check");
  }
}

// ---------------------------------------------------------------------------
// S1: storage backend seam
// ---------------------------------------------------------------------------

void rule_storage_seam(const Ctx& ctx, const SourceFile& f) {
  if (f.path.rfind("src/fs/", 0) == 0 || f.path.rfind("tests/", 0) == 0) return;
  static const std::set<std::string, std::less<>> kConcrete = {"LocalFs", "CasFs"};
  for (const Token& tok : f.tokens) {
    if (tok.kind != TokKind::kIdent || kConcrete.count(tok.text) == 0) continue;
    ctx.report(f, tok.line, "S1", "storage-seam",
               "concrete storage backend `" + tok.text +
                   "` named outside src/fs/ and tests/; program against "
                   "fs::StorageBackend and construct via fs::make_backend");
  }
}

// ---------------------------------------------------------------------------
// H1: header hygiene
// ---------------------------------------------------------------------------

void rule_header(const Ctx& ctx, const SourceFile& f) {
  if (!Linter::is_header(f.path)) return;
  const auto& t = f.tokens;
  bool pragma_once = false;
  for (const Token& tok : t) {
    if (tok.kind == TokKind::kDirective &&
        tok.text.find("pragma") != std::string::npos &&
        tok.text.find("once") != std::string::npos) {
      pragma_once = true;
      break;
    }
  }
  if (!pragma_once) {
    ctx.report(f, 1, "H1", "header",
               "header is missing `#pragma once` (double inclusion breaks the "
               "one-definition rule)");
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (is_ident(t[i], "using") && is_ident(t[i + 1], "namespace")) {
      ctx.report(f, t[i].line, "H1", "header",
                 "`using namespace` at header scope pollutes every includer's "
                 "namespace");
    }
  }
}

// ---------------------------------------------------------------------------
// D4: transitive determinism — no function reachable from the event loop
// may reach a wall-clock/entropy/sleep primitive. The one sanctioned seam
// is src/common/profile.cpp (profiler measurement of the simulator, never
// input to it). Subsumes D3's direct-only sleep check with a whole-graph
// reachability argument.
// ---------------------------------------------------------------------------

void rule_transitive_determinism(const Ctx& ctx) {
  static constexpr std::string_view kSeam = "src/common/profile.cpp";
  const std::vector<int> parent = ctx.graph.reach_from_roots({});
  const auto& funcs = ctx.idx.functions();
  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    const Function& fn = funcs[fi];
    if (!fn.has_body()) continue;
    const SourceFile& f = ctx.idx.files()[fn.file];
    if (f.path.size() >= kSeam.size() &&
        f.path.compare(f.path.size() - kSeam.size(), kSeam.size(), kSeam) == 0) {
      continue;  // the sanctioned wall-clock seam
    }
    const auto [tok, name] = find_sink(f.tokens, fn.body_begin, fn.body_end);
    if (name.empty()) continue;
    const int node = ctx.graph.node_of_function(static_cast<int>(fi));
    if (parent[node] == -1) continue;  // not event-reachable
    ctx.result->sink_nodes.insert(node);
    const int line = f.tokens[tok].line;
    if (allowed(f, fn.line, "event-reachable")) continue;
    std::string msg = "`";
    msg += fn.qual();
    msg += "` touches `";
    msg += name;
    msg += "` and is reachable from the event loop (";
    msg += ctx.graph.path_to(parent, node);
    msg += "); nondeterminism on this path breaks same-seed replay";
    ctx.report(f, line, "D4", "event-reachable", std::move(msg));
  }
}

// ---------------------------------------------------------------------------
// R1: must-check statuses — a call whose every candidate returns a status
// type must be consumed: assigned, compared, returned, or (void)-cast with
// an adjacent allow(ignore-status) annotation carrying a reason.
// ---------------------------------------------------------------------------

bool returns_status(const Function& f) {
  static const char* kStatus[] = {"FsStatus", "NfsStat",   "NfsStatus", "RpcStatus",
                                  "FsResult", "NfsResult", "Result"};
  for (const char* s : kStatus) {
    if (f.ret_contains(s)) return true;
  }
  return false;
}

void rule_must_check(const Ctx& ctx) {
  const auto& funcs = ctx.idx.functions();
  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    const Function& caller = funcs[fi];
    if (!caller.has_body()) continue;
    const SourceFile& f = ctx.idx.files()[caller.file];
    const auto& t = f.tokens;
    for (std::size_t k = caller.body_begin + 1; k + 1 < caller.body_end; ++k) {
      if (t[k].kind != TokKind::kIdent) continue;
      std::size_t arg_open = 0;
      if (is_punct(t[k + 1], "(")) {
        arg_open = k + 1;
      } else if (is_punct(t[k + 1], "<")) {
        const std::size_t after = skip_angles(t, k + 1);
        if (after < caller.body_end && is_punct(t[after], "(")) arg_open = after;
      }
      if (arg_open == 0 || call_blocklisted(t[k].text)) continue;
      const std::size_t close = skip_balanced(t, arg_open, "(", ")");
      std::vector<int> cands;
      resolve_call(ctx.idx, t, k, count_call_args(t, arg_open, close), caller, &cands);
      if (cands.empty()) continue;
      bool all_status = true;
      for (const int id : cands) {
        if (!returns_status(ctx.idx.functions()[id])) {
          all_status = false;
          break;
        }
      }
      if (!all_status) continue;
      // Walk back over the receiver chain to the start of the expression.
      std::size_t start = k;
      while (start >= 2 &&
             (is_punct(t[start - 1], ".") || is_punct(t[start - 1], "->") ||
              is_punct(t[start - 1], "::")) &&
             t[start - 2].kind == TokKind::kIdent) {
        start -= 2;
      }
      // (void)-cast: sanctioned only with an annotated reason.
      if (start >= 3 && is_punct(t[start - 1], ")") && is_ident(t[start - 2], "void") &&
          is_punct(t[start - 3], "(")) {
        ctx.report(f, t[k].line, "R1", "ignore-status",
                   "status of `" + t[k].text +
                       "` discarded with a (void) cast but no adjacent "
                       "`kosha-lint: allow(ignore-status): <why>` annotation");
        continue;
      }
      // Expression statement: starts a statement and ends at ';' with the
      // value never touched.
      bool stmt_start = start == caller.body_begin + 1;
      if (!stmt_start && start > 0) {
        const Token& p = t[start - 1];
        stmt_start = is_punct(p, ";") || is_punct(p, "{") || is_punct(p, "}") ||
                     is_punct(p, ")") || is_ident(p, "else") || is_ident(p, "do");
      }
      if (!stmt_start) continue;
      if (close < t.size() && is_punct(t[close], ";")) {
        ctx.report(f, t[k].line, "R1", "must-check",
                   "status returned by `" + t[k].text +
                       "` is silently discarded; assign, compare, return, or "
                       "(void)-cast it with an annotated reason");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A1: hot-path allocation audit — functions reachable from the event-loop
// dispatch or the SimNetwork service surface may not construct std::string,
// call new, or insert into node-based associative containers. An
// allow(hot-alloc) annotation on a function's definition line both excuses
// its body and stops hotness from propagating through it (a sanctioned
// allocation subtree).
// ---------------------------------------------------------------------------

void rule_hot_alloc(const Ctx& ctx) {
  const auto& funcs = ctx.idx.functions();
  std::set<int> stop;
  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    const Function& fn = funcs[fi];
    const SourceFile& f = ctx.idx.files()[fn.file];
    if (allowed(f, fn.line, "hot-alloc")) {
      stop.insert(ctx.graph.node_of_function(static_cast<int>(fi)));
    }
  }
  const std::vector<int> parent = ctx.graph.reach_from_roots(stop);
  for (std::size_t n = 0; n < ctx.graph.nodes().size(); ++n) {
    if (parent[n] != -1) ctx.result->hot_nodes.insert(static_cast<int>(n));
  }
  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    const Function& fn = funcs[fi];
    if (!fn.has_body()) continue;
    const SourceFile& f = ctx.idx.files()[fn.file];
    if (f.path.rfind("src/", 0) != 0) continue;
    const int node = ctx.graph.node_of_function(static_cast<int>(fi));
    if (parent[node] == -1 || stop.count(node) > 0) continue;
    const std::string path = ctx.graph.path_to(parent, node);
    const auto& t = f.tokens;
    // node_map_names() is repo-global, so a local std::vector can share a
    // name with a map in another TU. A contiguous container declared in
    // this very body shadows the global verdict — inserting into it is not
    // a node allocation.
    const auto contiguous_local = [&](const std::string& name) {
      for (std::size_t j = fn.body_begin; j + 1 < fn.body_end; ++j) {
        if (t[j].kind != TokKind::kIdent ||
            (t[j].text != "vector" && t[j].text != "deque" && t[j].text != "array")) {
          continue;
        }
        if (!is_punct(t[j + 1], "<")) continue;
        std::size_t after = skip_angles(t, j + 1);
        while (after < fn.body_end &&
               (is_punct(t[after], "&") || is_punct(t[after], "*"))) {
          ++after;
        }
        if (after < fn.body_end && t[after].kind == TokKind::kIdent &&
            t[after].text == name) {
          return true;
        }
      }
      return false;
    };
    for (std::size_t k = fn.body_begin + 1; k + 1 < fn.body_end; ++k) {
      if (t[k].kind != TokKind::kIdent) continue;
      const std::string& w = t[k].text;
      if (w == "new") {
        ctx.report(f, t[k].line, "A1", "hot-alloc",
                   "`new` on the event hot path (" + path +
                       "); pre-allocate outside the dispatch path or annotate "
                       "allow(hot-alloc) with a reason");
        continue;
      }
      if (w == "string") {
        // Construction only: `string name`, `string(...)`, `string{...}`.
        // References, pointers and template arguments don't allocate.
        if (k + 1 < fn.body_end &&
            (t[k + 1].kind == TokKind::kIdent || is_punct(t[k + 1], "(") ||
             is_punct(t[k + 1], "{"))) {
          ctx.report(f, t[k].line, "A1", "hot-alloc",
                     "std::string constructed on the event hot path (" + path +
                         "); build labels/keys at setup time or annotate "
                         "allow(hot-alloc) with a reason");
        }
        continue;
      }
      if (w == "to_string" && k + 1 < fn.body_end && is_punct(t[k + 1], "(")) {
        ctx.report(f, t[k].line, "A1", "hot-alloc",
                   "std::to_string allocates on the event hot path (" + path +
                       "); format at setup/report time or annotate "
                       "allow(hot-alloc) with a reason");
        continue;
      }
      if ((w == "insert" || w == "emplace" || w == "try_emplace" ||
           w == "emplace_hint") &&
          k >= 2 && (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->")) &&
          t[k - 2].kind == TokKind::kIdent &&
          ctx.idx.node_map_names().count(t[k - 2].text) > 0 &&
          !contiguous_local(t[k - 2].text) && k + 1 < fn.body_end &&
          is_punct(t[k + 1], "(")) {
        ctx.report(f, t[k].line, "A1", "hot-alloc",
                   "insertion into node-based container `" + t[k - 2].text +
                       "` on the event hot path (" + path +
                       "); each node is a heap allocation — reserve a flat "
                       "structure or annotate allow(hot-alloc) with a reason");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// P4: deadline propagation — a child RpcContext built on the koshad
// failover / NFS client-server paths must carry the parent's deadline, or
// downstream overload control silently loses the time budget.
// ---------------------------------------------------------------------------

void rule_deadline_prop(const Ctx& ctx) {
  for (std::size_t fidx = 0; fidx < ctx.idx.files().size(); ++fidx) {
    const SourceFile& f = ctx.idx.files()[fidx];
    if (f.path.rfind("src/kosha/", 0) != 0 && f.path.rfind("src/nfs/", 0) != 0) continue;
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_ident(t[i], "RpcContext")) continue;
      if (i > 0 && (is_ident(t[i - 1], "struct") || is_ident(t[i - 1], "class"))) continue;
      std::size_t j = i + 1;
      if (j < t.size() && t[j].kind == TokKind::kIdent) {
        if (j + 1 < t.size() && is_punct(t[j + 1], "::")) continue;  // return type
        ++j;
      }
      if (j < t.size() && is_punct(t[j], "=")) ++j;
      if (j >= t.size() || !is_punct(t[j], "{")) continue;
      const std::size_t end = skip_balanced(t, j, "{", "}");
      bool any = false;
      for (std::size_t k = j + 1; k + 1 < end; ++k) {
        any = true;
        break;
      }
      if (!any) continue;  // empty sentinel — P2's domain
      const int encl = ctx.idx.enclosing_function(static_cast<int>(fidx), t[i].line);
      if (encl < 0) continue;
      const Function& fn = ctx.idx.functions()[encl];
      bool carries_deadline = false;
      for (std::size_t k = fn.body_begin; k < fn.body_end; ++k) {
        if (is_ident(t[k], "deadline")) {
          carries_deadline = true;
          break;
        }
      }
      if (carries_deadline) continue;
      ctx.report(f, t[i].line, "P4", "deadline-prop",
                 "child RpcContext constructed in `" + fn.qual() +
                     "` without propagating the parent's deadline; downstream "
                     "admission control sees an infinite time budget");
    }
  }
}

// ---------------------------------------------------------------------------
// E1: edge-annotation hygiene — a hand-asserted call edge the builder could
// not honor must fail loudly, or the call graph silently loses coverage.
// ---------------------------------------------------------------------------

void rule_edge_annotations(const Ctx& ctx) {
  for (const CallGraph::BadEdge& be : ctx.graph.bad_edges()) {
    const SourceFile& f = ctx.idx.files()[be.file];
    if (be.missing_reason) {
      ctx.result->diags.push_back(
          {f.path, be.line, "E1", "edge",
           "edge(" + be.target +
               ") annotation carries no reason; an unexplained asserted edge "
               "is dropped from the call graph"});
    } else {
      ctx.result->diags.push_back(
          {f.path, be.line, "E1", "edge",
           "edge(" + be.target +
               ") names no indexed function; fix the target so the asserted "
               "edge reaches the graph"});
    }
  }
}

}  // namespace

RuleResult run_rules(const Config& config, const Index& idx, const CallGraph& graph) {
  RuleResult result;
  Ctx ctx{config, idx, graph, &result};
  for (const SourceFile& f : idx.files()) {
    rule_wall_clock(ctx, f);
    rule_unordered_iter(ctx, f);
    rule_event_callbacks(ctx, f);
    rule_drc(ctx, f);
    rule_early_reject(ctx, f);
    rule_rpc_ctx(ctx, f);
    rule_storage_seam(ctx, f);
    rule_header(ctx, f);
  }
  rule_transitive_determinism(ctx);
  rule_must_check(ctx);
  rule_hot_alloc(ctx);
  rule_deadline_prop(ctx);
  rule_edge_annotations(ctx);
  std::sort(result.diags.begin(), result.diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

}  // namespace kosha::lint

// kosha_lint rule-engine tests: every rule (D1-D3, P1-P3, S1, H1) is driven
// over a known-bad fixture snippet and must fire with its exact rule id;
// the annotation escape hatch, the clean path and the exit-code contract
// are covered alongside. Fixtures live in raw strings — the tokenizer
// ignores string literals, which is also why this file survives the
// repo-wide lint walk.

#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using kosha::lint::Diagnostic;
using kosha::lint::Linter;

std::vector<Diagnostic> lint_one(const std::string& path, const std::string& src) {
  Linter linter;
  linter.add_source(path, src);
  return linter.run();
}

std::vector<std::string> rules_of(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> rules;
  rules.reserve(diags.size());
  for (const Diagnostic& d : diags) rules.push_back(d.rule);
  return rules;
}

// ---------------------------------------------------------------------------
// D1 — wall clock / entropy
// ---------------------------------------------------------------------------

TEST(LintD1, FlagsSystemClock) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include <chrono>
void f() { auto t = std::chrono::system_clock::now(); (void)t; }
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].slug, "wall-clock");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintD1, FlagsLibcTimeAndRand) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
long f() { return time(nullptr) + rand(); }
long g() { return std::time(nullptr); }
)cpp");
  EXPECT_EQ(rules_of(diags), (std::vector<std::string>{"D1", "D1", "D1"}));
}

TEST(LintD1, IgnoresMemberFunctionsNamedLikeLibc) {
  // cluster.clock(), network->clock().now(), SimClock::time-style statics:
  // member access and non-std qualification are different symbols.
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
void f(Cluster& cluster) {
  auto& c = cluster.clock();
  auto t = network_->clock().now();
  auto r = runtime();
  auto s = SomeClass::time(3);
  (void)c; (void)t; (void)r; (void)s;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintD1, AllowlistedSeedSeamMayTouchEntropy) {
  const auto diags = lint_one("src/common/rng.cpp", R"cpp(
unsigned seed_from_wall_clock() { return (unsigned)time(nullptr); }
)cpp");
  EXPECT_TRUE(diags.empty());
}

TEST(LintD1, ProfilerSeamMayReadSteadyClock) {
  // src/common/profile.cpp is the one sanctioned wall-clock seam: the
  // profiler measures the simulator and never feeds readings back in.
  const auto diags = lint_one("src/common/profile.cpp", R"cpp(
#include <chrono>
unsigned long long wall_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintD1, SteadyClockOutsideTheProfilerSeamIsStillFlagged) {
  // The identical code anywhere else must trip D1 — the allowlist is a
  // path property, not a pattern property.
  const auto diags = lint_one("src/common/profile_helpers.cpp", R"cpp(
#include <chrono>
unsigned long long wall_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].slug, "wall-clock");
}

TEST(LintD1, StringsAndCommentsAreInvisible) {
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
// rand() and system_clock in a comment are fine
const char* k = "time(nullptr) rand() std::random_device";
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// D2 — unordered iteration
// ---------------------------------------------------------------------------

TEST(LintD2, FlagsRangeForOverUnorderedMember) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include <unordered_map>
struct S {
  std::unordered_map<int, int> members_;
  int sum() {
    int s = 0;
    for (const auto& [k, v] : members_) s += v;
    return s;
  }
};
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
  EXPECT_EQ(diags[0].slug, "unordered-iter");
  EXPECT_EQ(diags[0].line, 7);
}

TEST(LintD2, FlagsIteratorLoop) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include <unordered_set>
struct S {
  std::unordered_set<int> seen_;
  void sweep() {
    for (auto it = seen_.begin(); it != seen_.end();) { ++it; }
  }
};
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
}

TEST(LintD2, SeesDeclarationsAcrossFiles) {
  // The member is declared in a header, iterated in a .cpp — the linter's
  // shared name set ties the two together.
  Linter linter;
  linter.add_source("src/kosha/s.hpp", R"cpp(
#pragma once
#include <unordered_map>
struct S {
  void dump();
  std::unordered_map<long, long> table_;
};
)cpp");
  linter.add_source("src/kosha/s.cpp", R"cpp(
#include "s.hpp"
void S::dump() {
  for (const auto& [k, v] : table_) { (void)k; (void)v; }
}
)cpp");
  const auto diags = linter.run();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
  EXPECT_EQ(diags[0].file, "src/kosha/s.cpp");
}

TEST(LintD2, AnnotationWithReasonSuppresses) {
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
#include <unordered_map>
struct S {
  std::unordered_map<int, int> cache_;
  void sweep() {
    // kosha-lint: allow(unordered-iter): erase-sweep, result independent of order
    for (auto it = cache_.begin(); it != cache_.end();) { ++it; }
  }
};
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintD2, AnnotationWithoutReasonDoesNotSuppress) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include <unordered_map>
struct S {
  std::unordered_map<int, int> cache_;
  void sweep() {
    // kosha-lint: allow(unordered-iter)
    for (auto it = cache_.begin(); it != cache_.end();) { ++it; }
  }
};
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
}

TEST(LintD2, OrderedMapIsFine) {
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
#include <map>
struct S {
  std::map<int, int> sorted_;
  int sum() {
    int s = 0;
    for (const auto& [k, v] : sorted_) s += v;
    return s;
  }
};
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// D3 — event-loop callback discipline
// ---------------------------------------------------------------------------

TEST(LintD3, FlagsBlockingSleep) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include <chrono>
#include <thread>
void f() { std::this_thread::sleep_for(std::chrono::seconds(1)); }
)cpp");
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].rule, "D3");
  EXPECT_EQ(diags[0].slug, "event-callback");
}

TEST(LintD3, FlagsClockMutationInsideScheduledCallback) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
void f(EventLoop& loop, SimClock& clock, SimDuration t) {
  loop.schedule_after(t, [&] { clock.set_now(t); });
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D3");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintD3, SchedulingWithoutClockMutationIsFine) {
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
void f(EventLoop& loop, SimDuration t) {
  loop.schedule_after(t, [&] { do_work(); });
  loop.schedule_at(t, [] { more_work(); });
}
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// Heartbeat/repair-callback-shaped fixtures: the periodic-timer pattern the
// failure detector and anti-entropy daemon use must stay inside the rules.
// ---------------------------------------------------------------------------

TEST(LintD1, FlagsHeartbeatTimerDrivenByWallClock) {
  // A probe deadline taken from the host's clock instead of the loop's
  // virtual time — the classic way a detector stops replaying.
  const auto diags = lint_one("src/pastry/bad_detector.cpp", R"cpp(
#include <chrono>
void FailureDetector::probe_deadline() {
  auto deadline = std::chrono::steady_clock::now();
  (void)deadline;
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
}

TEST(LintD1, LoopJitteredHeartbeatIsClean) {
  const auto diags = lint_one("src/pastry/ok_detector.cpp", R"cpp(
void FailureDetector::schedule_tick(EventLoop* loop, SimDuration period,
                                    SimDuration jitter) {
  loop->schedule_after(period + loop->jitter(jitter), [] { resolve_and_tick(); });
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintD2, FlagsRepairSweepOverUnorderedPeerMap) {
  // A repair pass iterating an unordered peer map: the push order (and so
  // the wire transcript) would depend on hash seeding.
  const auto diags = lint_one("src/kosha/bad_repair.cpp", R"cpp(
#include <unordered_map>
struct RepairDaemon {
  std::unordered_map<unsigned, int> peers_;
  void sweep() {
    for (const auto& [peer, state] : peers_) push_to(peer, state);
  }
};
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
}

TEST(LintD3, FlagsRepairTickMutatingTheClock) {
  // A daemon tick must never warp virtual time; background work pauses the
  // clock (ClockPauser), it does not set it.
  const auto diags = lint_one("src/kosha/bad_repair.cpp", R"cpp(
void RepairDaemon::schedule_tick(EventLoop& loop, SimClock& clock, SimDuration t) {
  loop.schedule_after(t, [&] { clock.set_now(t); tick(); });
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D3");
}

TEST(LintD3, RegistryResolvingRepairTickIsClean) {
  // The sanctioned shape: the callback captures ids, resolves the daemon
  // through the runtime registry at fire time, and reschedules itself.
  const auto diags = lint_one("src/kosha/ok_repair.cpp", R"cpp(
void schedule_tick(EventLoop* loop, Runtime* runtime, unsigned host, SimDuration delay) {
  loop->schedule_after(delay, [runtime, host] {
    if (RepairDaemon* d = runtime->repair_daemon(host)) d->tick();
  });
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

// ---------------------------------------------------------------------------
// P1 — non-idempotent handlers must engage the DRC
// ---------------------------------------------------------------------------

TEST(LintP1, FlagsHandlerMutatingBeforeDrcLookup) {
  const auto diags = lint_one("src/nfs/bad_server.cpp", R"cpp(
NfsResult<HandleReply> NfsServer::create(FileHandle dir, std::string_view name,
                                         RpcContext ctx) {
  const auto inode = store_.create(dir.inode, name);
  if (const DrcEntry* hit = drc_find(ctx, true)) return hit->handle_reply;
  drc_store(ctx, {});
  return HandleReply{};
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P1");
  EXPECT_EQ(diags[0].slug, "drc");
}

TEST(LintP1, FlagsHandlerThatNeverRecordsItsReply) {
  const auto diags = lint_one("src/nfs/bad_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::remove(FileHandle dir, std::string_view name,
                                  RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  return from_fs(store_.remove(dir.inode, name));
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P1");
  EXPECT_NE(diags[0].message.find("drc_store"), std::string::npos);
}

TEST(LintP1, WellFormedHandlerIsClean) {
  const auto diags = lint_one("src/nfs/ok_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::rmdir(FileHandle dir, std::string_view name,
                                 RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.rmdir(dir.inode, name));
  drc_store(ctx, reply);
  return reply;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintP1, IdempotentHandlerNeedsNoDrc) {
  const auto diags = lint_one("src/nfs/ok_server.cpp", R"cpp(
NfsResult<ReadReply> NfsServer::read(FileHandle file) {
  return store_read(file);
}
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// P3 — early rejects must precede the DRC store
// ---------------------------------------------------------------------------

TEST(LintP3, FlagsRejectExpiredAfterDrcStore) {
  const auto diags = lint_one("src/nfs/bad_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::remove(FileHandle dir, std::string_view name,
                                  RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.remove(dir.inode, name));
  drc_store(ctx, reply);
  if (reject_expired(ctx)) return NfsStat::kOverloaded;
  return reply;
}
)cpp");
  ASSERT_GE(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P3");
  EXPECT_EQ(diags[0].slug, "early-reject");
}

TEST(LintP3, FlagsOverloadReplyProducedAfterDrcStore) {
  const auto diags = lint_one("src/nfs/bad_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::rmdir(FileHandle dir, std::string_view name,
                                 RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.rmdir(dir.inode, name));
  drc_store(ctx, reply);
  if (queue_full()) return NfsStat::kOverloaded;
  return reply;
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P3");
  EXPECT_NE(diags[0].message.find("kOverloaded"), std::string::npos);
}

TEST(LintP3, RejectBeforeDrcEngagementIsClean) {
  const auto diags = lint_one("src/nfs/ok_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::remove(FileHandle dir, std::string_view name,
                                  RpcContext ctx) {
  if (reject_expired(ctx)) return NfsStat::kOverloaded;
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.remove(dir.inode, name));
  drc_store(ctx, reply);
  return reply;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintP3, HandlerWithoutEarlyRejectIsClean) {
  const auto diags = lint_one("src/nfs/ok_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::rmdir(FileHandle dir, std::string_view name,
                                 RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.rmdir(dir.inode, name));
  drc_store(ctx, reply);
  return reply;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintP3, AnnotationWithReasonSuppresses) {
  const auto diags = lint_one("src/nfs/annotated_server.cpp", R"cpp(
NfsResult<Unit> NfsServer::remove(FileHandle dir, std::string_view name,
                                  RpcContext ctx) {
  if (const DrcEntry* hit = drc_find(ctx, false)) return hit->unit_reply;
  NfsResult<Unit> reply = from_fs(store_.remove(dir.inode, name));
  drc_store(ctx, reply);
  // kosha-lint: allow(early-reject): reply below is advisory, never cached
  if (reject_expired(ctx)) return NfsStat::kOverloaded;
  return reply;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

// ---------------------------------------------------------------------------
// P2 — full RpcContext construction
// ---------------------------------------------------------------------------

TEST(LintP2, FlagsPartialContext) {
  const auto diags = lint_one("src/nfs/bad.cpp", R"cpp(
RpcContext make(net::HostId self, std::uint32_t xid, SimDuration deadline) {
  RpcContext ctx{self, xid};
  ctx.deadline = deadline;
  return ctx;
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P2");
  EXPECT_EQ(diags[0].slug, "rpc-ctx");
}

TEST(LintP2, FlagsDefaultConstructedLocal) {
  const auto diags = lint_one("src/nfs/bad.cpp", R"cpp(
void f() {
  RpcContext ctx;
  use(ctx);
}
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "P2");
}

TEST(LintP2, FullTripleAndDefaultedParamAreClean) {
  const auto diags = lint_one("src/nfs/ok.cpp", R"cpp(
NfsResult<Unit> handler(FileHandle dir, RpcContext ctx = {});
RpcContext make(net::HostId self, std::uint32_t xid, std::uint64_t boot,
                SimDuration deadline) {
  RpcContext ctx{self, xid, boot};
  ctx.deadline = deadline;
  return ctx;
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

// ---------------------------------------------------------------------------
// S1 — storage backend seam
// ---------------------------------------------------------------------------

TEST(LintS1, FlagsConcreteBackendOutsideFs) {
  const auto diags = lint_one("src/kosha/bad.cpp", R"cpp(
#include "fs/local_fs.hpp"
void f() { kosha::fs::LocalFs store; (void)store; }
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "S1");
  EXPECT_EQ(diags[0].slug, "storage-seam");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintS1, FlagsCasFsInBench) {
  const auto diags = lint_one("bench/bad_bench.cpp", R"cpp(
void f() { kosha::fs::CasFs* store = nullptr; (void)store; }
)cpp");
  EXPECT_EQ(rules_of(diags), (std::vector<std::string>{"S1"}));
}

TEST(LintS1, AllowsConcreteTypesInFsLayerAndTests) {
  const std::string src = R"cpp(
void f() { kosha::fs::LocalFs a; kosha::fs::CasFs* b = nullptr; (void)a; (void)b; }
)cpp";
  EXPECT_TRUE(lint_one("src/fs/cas_fs.cpp", src).empty());
  EXPECT_TRUE(lint_one("tests/test_storage_backend.cpp", src).empty());
}

TEST(LintS1, IgnoresCommentsAndStrings) {
  // Doc comments explaining the LocalFs/CasFs split are fine anywhere; the
  // tokenizer never sees comments or string literals.
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
// LocalFs is wrapped by CasFs; see fs/storage_backend.hpp.
const char* kName = "LocalFs";
)cpp");
  EXPECT_TRUE(diags.empty());
}

TEST(LintS1, InterfaceUseIsClean) {
  const auto diags = lint_one("src/kosha/ok.cpp", R"cpp(
#include "fs/storage_backend.hpp"
void f(kosha::fs::StorageBackend& store) { (void)store.kind(); }
std::unique_ptr<kosha::fs::StorageBackend> g() { return kosha::fs::make_backend({}); }
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// H1 — header hygiene
// ---------------------------------------------------------------------------

TEST(LintH1, FlagsMissingPragmaOnce) {
  const auto diags = lint_one("src/kosha/bad.hpp", R"cpp(
struct S { int x = 0; };
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "H1");
  EXPECT_EQ(diags[0].slug, "header");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(LintH1, FlagsUsingNamespaceInHeader) {
  const auto diags = lint_one("src/kosha/bad.hpp", R"cpp(
#pragma once
using namespace std;
)cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "H1");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintH1, CleanHeaderPasses) {
  const auto diags = lint_one("src/kosha/ok.hpp", R"cpp(
#pragma once
namespace kosha {
struct S { int x = 0; };
}  // namespace kosha
)cpp");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// Output and exit codes
// ---------------------------------------------------------------------------

TEST(LintOutput, ExitCodesAndFormats) {
  const auto clean = lint_one("src/kosha/ok.cpp", "int f() { return 1; }\n");
  EXPECT_EQ(kosha::lint::exit_code(clean), 0);

  const auto bad = lint_one("src/kosha/bad.cpp", R"cpp(
void f() { auto r = rand(); (void)r; }
)cpp");
  EXPECT_EQ(kosha::lint::exit_code(bad), 1);
  ASSERT_EQ(bad.size(), 1u);

  const std::string text = kosha::lint::to_text(bad);
  EXPECT_NE(text.find("src/kosha/bad.cpp:2: error:"), std::string::npos);
  EXPECT_NE(text.find("[D1]"), std::string::npos);

  const std::string json = kosha::lint::to_json(bad, 1);
  EXPECT_NE(json.find("\"violations\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"D1\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
}

TEST(LintOutput, DiagnosticsSortedDeterministically) {
  Linter linter;
  linter.add_source("src/z.cpp", "void f() { auto r = rand(); (void)r; }\n");
  linter.add_source("src/a.cpp", "void f() { auto r = rand(); (void)r; }\n");
  const auto diags = linter.run();
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].file, "src/a.cpp");
  EXPECT_EQ(diags[1].file, "src/z.cpp");
}

TEST(LintOutput, SarifCarriesRulesAndResults) {
  const auto bad = lint_one("src/kosha/bad.cpp", R"cpp(
void f() { auto r = rand(); (void)r; }
)cpp");
  ASSERT_EQ(bad.size(), 1u);
  const std::string sarif = kosha::lint::to_sarif(bad);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"D1\""), std::string::npos);      // rule metadata
  EXPECT_NE(sarif.find("\"ruleId\": \"D1\""), std::string::npos);  // the result
  EXPECT_NE(sarif.find("src/kosha/bad.cpp"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 2"), std::string::npos);
}

TEST(LintOutput, RuleDocsCoverEveryRuleId) {
  const auto& docs = kosha::lint::rule_docs();
  std::vector<std::string> ids;
  for (const auto& d : docs) ids.push_back(d.rule);
  for (const char* rule : {"D1", "D2", "D3", "D4", "R1", "A1", "P1", "P2", "P3",
                           "P4", "S1", "H1", "E1"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), rule), ids.end()) << rule;
  }
  for (const auto& d : docs) {
    EXPECT_FALSE(d.slug.empty()) << d.rule;
    EXPECT_FALSE(d.summary.empty()) << d.rule;
    EXPECT_FALSE(d.detail.empty()) << d.rule;
  }
}

// ---------------------------------------------------------------------------
// Call-graph construction (phase 1b) via the edge_list()/graph_dot() seams
// ---------------------------------------------------------------------------

std::vector<std::string> edges_of(const std::string& path, const std::string& src) {
  Linter linter;
  linter.add_source(path, src);
  (void)linter.run();  // kosha-lint: allow(ignore-status): graph inspection only
  return linter.edge_list();
}

bool has_edge(const std::vector<std::string>& edges, const std::string& want) {
  return std::find(edges.begin(), edges.end(), want) != edges.end();
}

TEST(LintGraph, DirectFreeCallAndQualifiedCall) {
  const auto edges = edges_of("src/kosha/g.cpp", R"cpp(
void leaf(int n);
struct C { static void go(int v); };
void caller(int v) {
  leaf(v);
  C::go(v);
}
)cpp");
  EXPECT_TRUE(has_edge(edges, "caller -> leaf [direct]"));
  EXPECT_TRUE(has_edge(edges, "caller -> C::go [direct]"));
}

TEST(LintGraph, MethodResolvedThroughReceiverType) {
  const auto edges = edges_of("src/kosha/g.cpp", R"cpp(
struct C { void m(int v); };
void C::m(int v) {}
void caller(C& c_, int v) { c_.m(v); }
)cpp");
  EXPECT_TRUE(has_edge(edges, "caller -> C::m [resolved]"));
}

TEST(LintGraph, ThisAndPlainCallsResolveToOwnClass) {
  const auto edges = edges_of("src/kosha/g.cpp", R"cpp(
struct D { void a(); void b(); void c(); };
void D::a() {
  this->b();
  c();
}
)cpp");
  EXPECT_TRUE(has_edge(edges, "D::a -> D::b [resolved]"));
  EXPECT_TRUE(has_edge(edges, "D::a -> D::c [resolved]"));
}

TEST(LintGraph, UnknownReceiverOverApproximatesByNameAndArity) {
  const auto edges = edges_of("src/kosha/g.cpp", R"cpp(
struct A { void m(int v); };
struct B { void m(int v); };
struct Z { void m(int v, int w); };
void caller(Unknown* x, int v) { x->m(v); }
)cpp");
  // Both compatible-arity methods are linked; the two-arg one is not.
  EXPECT_TRUE(has_edge(edges, "caller -> A::m [overapprox]"));
  EXPECT_TRUE(has_edge(edges, "caller -> B::m [overapprox]"));
  EXPECT_FALSE(has_edge(edges, "caller -> Z::m [overapprox]"));
}

TEST(LintGraph, RecursionYieldsSelfEdge) {
  const auto edges = edges_of("src/kosha/g.cpp", R"cpp(
void r(int n) {
  if (n) r(n - 1);
}
)cpp");
  EXPECT_TRUE(has_edge(edges, "r -> r [direct]"));
}

TEST(LintGraph, EdgeAnnotationAddsHandAssertedEdge) {
  const auto edges = edges_of("src/kosha/g.cpp", R"cpp(
struct Worker { void run(); };
void Worker::run() {}
void pump(int q) {
  // kosha-lint: edge(Worker::run): the queue only ever holds Worker::run thunks
  drain(q);
}
)cpp");
  EXPECT_TRUE(has_edge(edges, "pump -> Worker::run [annotated]"));
}

TEST(LintGraph, DotDumpIsDeterministicAndStylesEdgeKinds) {
  const std::string src = R"cpp(
struct A { void m(int v); };
struct B { void m(int v); };
struct Worker { void run(); };
void Worker::run() {}
void leaf(int n);
void caller(Unknown* x, int v) {
  leaf(v);
  x->m(v);
  // kosha-lint: edge(Worker::run): drained thunks are always Worker::run
  drain(v);
}
)cpp";
  Linter a;
  a.add_source("src/kosha/g.cpp", src);
  (void)a.run();  // kosha-lint: allow(ignore-status): graph inspection only
  const std::string dot = a.graph_dot();
  EXPECT_NE(dot.find("digraph kosha_calls {"), std::string::npos);
  EXPECT_NE(dot.find("\"caller/2\" -> \"leaf/1\";"), std::string::npos);
  EXPECT_NE(dot.find("[style=dashed];"), std::string::npos);         // over-approx
  EXPECT_NE(dot.find("[color=red, penwidth=2];"), std::string::npos);  // annotated

  Linter b;
  b.add_source("src/kosha/g.cpp", src);
  (void)b.run();  // kosha-lint: allow(ignore-status): graph inspection only
  EXPECT_EQ(dot, b.graph_dot());
}

// ---------------------------------------------------------------------------
// D4 — transitive determinism (event-reachable sinks)
// ---------------------------------------------------------------------------
// Fixtures use sleep_for as the sink; D3 (blocking sleep) also fires on the
// same token by design, so the D4 tests filter for their own rule.

std::vector<Diagnostic> of_rule(const std::vector<Diagnostic>& diags,
                                const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const auto& d : diags) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

TEST(LintD4, FlagsSinkReachableFromScheduledCallback) {
  const auto d4 = of_rule(lint_one("src/kosha/d4.cpp", R"cpp(
void helper() { std::this_thread::sleep_for(pause); }
void tick() { helper(); }
void wire(EventLoop& loop) {
  loop.schedule_after(delay, [] { tick(); });
}
)cpp"),
                          "D4");
  ASSERT_EQ(d4.size(), 1u) << kosha::lint::to_text(d4);
  EXPECT_EQ(d4[0].slug, "event-reachable");
  EXPECT_EQ(d4[0].line, 2);
  EXPECT_NE(d4[0].message.find("event-dispatch -> tick -> helper"),
            std::string::npos)
      << d4[0].message;
}

TEST(LintD4, EventLoopStepIsANamedRoot) {
  const auto d4 = of_rule(lint_one("src/common/d4.cpp", R"cpp(
void work() { std::this_thread::sleep_for(pause); }
void EventLoop::step() { work(); }
)cpp"),
                          "D4");
  ASSERT_EQ(d4.size(), 1u) << kosha::lint::to_text(d4);
  EXPECT_NE(d4[0].message.find("EventLoop::step -> work"), std::string::npos)
      << d4[0].message;
}

TEST(LintD4, AnnotationOnTheSinkFunctionSuppresses) {
  const auto d4 = of_rule(lint_one("src/kosha/d4.cpp", R"cpp(
// kosha-lint: allow(event-reachable): latency model stub, burns virtual time only
void helper() { std::this_thread::sleep_for(pause); }
void tick() { helper(); }
void wire(EventLoop& loop) {
  loop.schedule_after(delay, [] { tick(); });
}
)cpp"),
                          "D4");
  EXPECT_TRUE(d4.empty()) << kosha::lint::to_text(d4);
}

TEST(LintD4, UnreachedSinkIsNotFlagged) {
  const auto d4 = of_rule(lint_one("src/kosha/d4.cpp", R"cpp(
void never_scheduled() { std::this_thread::sleep_for(pause); }
void tick() {}
void wire(EventLoop& loop) {
  loop.schedule_after(delay, [] { tick(); });
}
)cpp"),
                          "D4");
  EXPECT_TRUE(d4.empty()) << kosha::lint::to_text(d4);
}

TEST(LintD4, AnnotatedEdgeCarriesReachabilityThroughTypeErasedSeam) {
  const auto d4 = of_rule(lint_one("src/kosha/d4.cpp", R"cpp(
void sink_fn() { std::this_thread::sleep_for(pause); }
struct Worker { void run(); };
void Worker::run() { sink_fn(); }
void pump(std::function<void()> f) {
  // kosha-lint: edge(Worker::run): the queued thunk is always Worker::run
  f();
}
void wire(EventLoop& loop) {
  loop.schedule_after(delay, [] { pump(cb); });
}
)cpp"),
                          "D4");
  ASSERT_EQ(d4.size(), 1u) << kosha::lint::to_text(d4);
  EXPECT_NE(d4[0].message.find("pump -> Worker::run -> sink_fn"),
            std::string::npos)
      << d4[0].message;
}

// ---------------------------------------------------------------------------
// R1 — must-check statuses
// ---------------------------------------------------------------------------

TEST(LintR1, FlagsBareDiscard) {
  const auto diags = lint_one("src/kosha/r1.cpp", R"cpp(
FsStatus do_write(int n);
void f(int n) { do_write(n); }
)cpp");
  ASSERT_EQ(diags.size(), 1u) << kosha::lint::to_text(diags);
  EXPECT_EQ(diags[0].rule, "R1");
  EXPECT_EQ(diags[0].slug, "must-check");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintR1, FlagsVoidCastWithoutReason) {
  const auto diags = lint_one("src/kosha/r1.cpp", R"cpp(
FsStatus do_write(int n);
void f(int n) { (void)do_write(n); }
)cpp");
  ASSERT_EQ(diags.size(), 1u) << kosha::lint::to_text(diags);
  EXPECT_EQ(diags[0].rule, "R1");
  EXPECT_EQ(diags[0].slug, "ignore-status");
}

TEST(LintR1, AnnotatedVoidCastIsClean) {
  const auto diags = lint_one("src/kosha/r1.cpp", R"cpp(
FsStatus do_write(int n);
void f(int n) {
  // kosha-lint: allow(ignore-status): best-effort cleanup, failure leaves no residue
  (void)do_write(n);
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintR1, ConsumedFormsAreClean) {
  const auto diags = lint_one("src/kosha/r1.cpp", R"cpp(
FsStatus do_write(int n);
FsStatus g(int n) {
  FsStatus s = do_write(n);
  if (do_write(n) == FsStatus::kOk) return s;
  return do_write(n);
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintR1, ResolvedMethodCallMustBeChecked) {
  const auto diags = lint_one("src/kosha/r1.cpp", R"cpp(
struct Store { NfsResult<Unit> flush(int n); };
void f(Store& store_, int n) { store_.flush(n); }
)cpp");
  ASSERT_EQ(diags.size(), 1u) << kosha::lint::to_text(diags);
  EXPECT_EQ(diags[0].rule, "R1");
  EXPECT_EQ(diags[0].slug, "must-check");
}

TEST(LintR1, NonStatusAndUnknownCalleesAreClean) {
  const auto diags = lint_one("src/kosha/r1.cpp", R"cpp(
int counter(int n);
void f(int n) {
  counter(n);
  mystery(n);
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

// ---------------------------------------------------------------------------
// A1 — hot-path allocation audit
// ---------------------------------------------------------------------------

TEST(LintA1, FlagsStringConstructionOnHotPath) {
  const auto diags = lint_one("src/kosha/a1.cpp", R"cpp(
void hot_path() { std::string label = build(); }
void wire(EventLoop& loop) {
  loop.schedule_after(delay, [] { hot_path(); });
}
)cpp");
  ASSERT_EQ(diags.size(), 1u) << kosha::lint::to_text(diags);
  EXPECT_EQ(diags[0].rule, "A1");
  EXPECT_EQ(diags[0].slug, "hot-alloc");
  EXPECT_NE(diags[0].message.find("event-dispatch -> hot_path"), std::string::npos)
      << diags[0].message;
}

TEST(LintA1, FlagsNewOnHotPath) {
  const auto diags = lint_one("src/kosha/a1.cpp", R"cpp(
void hot_path(int n) { use(new Thing(n)); }
void wire(EventLoop& loop) {
  loop.schedule_after(delay, [] { hot_path(seq); });
}
)cpp");
  ASSERT_EQ(diags.size(), 1u) << kosha::lint::to_text(diags);
  EXPECT_EQ(diags[0].rule, "A1");
  EXPECT_NE(diags[0].message.find("`new`"), std::string::npos) << diags[0].message;
}

TEST(LintA1, FlagsNodeMapInsertOnHotPath) {
  const auto diags = lint_one("src/kosha/a1.cpp", R"cpp(
struct S { std::map<int, int> table_; };
void hot_path(S& s, int x) { s.table_.insert(x); }
void wire(EventLoop& loop) {
  loop.schedule_after(delay, [] { hot_path(s, x); });
}
)cpp");
  ASSERT_EQ(diags.size(), 1u) << kosha::lint::to_text(diags);
  EXPECT_EQ(diags[0].rule, "A1");
  EXPECT_NE(diags[0].message.find("`table_`"), std::string::npos) << diags[0].message;
}

TEST(LintA1, AllowAnnotationStopsPropagationThroughSubtree) {
  const auto diags = lint_one("src/kosha/a1.cpp", R"cpp(
void helper_alloc() { std::string s = make(); }
// kosha-lint: allow(hot-alloc): scratch rebuilt once per epoch, pre-sized
void sanctioned() { helper_alloc(); }
void wire(EventLoop& loop) {
  loop.schedule_after(delay, [] { sanctioned(); });
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintA1, LocalVectorShadowingANodeMapNameIsClean) {
  // `out` is a node-based map in one TU but a local std::vector here; the
  // contiguous local shadows the repo-global container verdict.
  Linter linter;
  linter.add_source("src/kosha/maps.cpp", R"cpp(
struct M { std::map<int, int> out; };
)cpp");
  linter.add_source("src/kosha/a1.cpp", R"cpp(
void hot_path(int y) {
  std::vector<int> out = seed();
  out.insert(out.end(), y);
}
void wire(EventLoop& loop) {
  loop.schedule_after(delay, [] { hot_path(y); });
}
)cpp");
  const auto diags = linter.run();
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintA1, UnreachedAllocationIsClean) {
  const auto diags = lint_one("src/kosha/a1.cpp", R"cpp(
void cold_path() { std::string s = build(); }
void wire(EventLoop& loop) {
  loop.schedule_after(delay, [] { tick(); });
}
void tick() {}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

// ---------------------------------------------------------------------------
// P4 — deadline propagation
// ---------------------------------------------------------------------------

TEST(LintP4, FlagsChildContextWithoutDeadline) {
  const auto diags = lint_one("src/kosha/p4.cpp", R"cpp(
void forward(RpcContext parent) {
  RpcContext child{parent.client, parent.xid, parent.boot};
  send(child);
}
)cpp");
  ASSERT_EQ(diags.size(), 1u) << kosha::lint::to_text(diags);
  EXPECT_EQ(diags[0].rule, "P4");
  EXPECT_EQ(diags[0].slug, "deadline-prop");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintP4, PropagatedDeadlineIsClean) {
  const auto diags = lint_one("src/kosha/p4.cpp", R"cpp(
void forward(RpcContext parent) {
  RpcContext child{parent.client, parent.xid, parent.boot};
  child.deadline = parent.deadline;
  send(child);
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintP4, AnnotationWithReasonSuppresses) {
  const auto diags = lint_one("src/kosha/p4.cpp", R"cpp(
void probe(RpcContext parent) {
  // kosha-lint: allow(deadline-prop): fire-and-forget probe, no caller budget to inherit
  RpcContext child{parent.client, parent.xid, parent.boot};
  send(child);
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

TEST(LintP4, OutsideTheRpcPathsIsClean) {
  const auto diags = lint_one("src/sim/p4.cpp", R"cpp(
void forward(RpcContext parent) {
  RpcContext child{parent.client, parent.xid, parent.boot};
  send(child);
}
)cpp");
  EXPECT_TRUE(diags.empty()) << kosha::lint::to_text(diags);
}

// ---------------------------------------------------------------------------
// E1 — edge-annotation hygiene
// ---------------------------------------------------------------------------

TEST(LintE1, EdgeWithoutReasonIsFlagged) {
  const auto diags = lint_one("src/kosha/e1.cpp", R"cpp(
struct Worker { void run(); };
void f(int q) {
  // kosha-lint: edge(Worker::run)
  drain(q);
}
)cpp");
  ASSERT_EQ(diags.size(), 1u) << kosha::lint::to_text(diags);
  EXPECT_EQ(diags[0].rule, "E1");
  EXPECT_EQ(diags[0].slug, "edge");
  EXPECT_NE(diags[0].message.find("no reason"), std::string::npos) << diags[0].message;
}

TEST(LintE1, EdgeWithUnresolvableTargetIsFlagged) {
  const auto diags = lint_one("src/kosha/e1.cpp", R"cpp(
void f(int q) {
  // kosha-lint: edge(NoSuch::fn): the queue always holds this
  drain(q);
}
)cpp");
  ASSERT_EQ(diags.size(), 1u) << kosha::lint::to_text(diags);
  EXPECT_EQ(diags[0].rule, "E1");
  EXPECT_NE(diags[0].message.find("names no indexed function"), std::string::npos)
      << diags[0].message;
}

}  // namespace

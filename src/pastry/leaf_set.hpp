#pragma once

// Pastry leaf set.
//
// Each node tracks the l/2 numerically closest smaller and l/2 closest
// larger node ids (with wrap-around). The leaf set delivers messages in the
// final routing step and — in Kosha — defines where the K file replicas
// live (paper §4.2).

#include <vector>

#include "pastry/types.hpp"

namespace kosha::pastry {

class LeafSet {
 public:
  /// `half` is l/2: the capacity of each side.
  LeafSet(NodeId owner, unsigned half);

  [[nodiscard]] NodeId owner() const { return owner_; }

  /// Offer a node id; keeps it only if it belongs among the closest on its
  /// side. Returns true if membership changed.
  bool insert(NodeId id);

  /// Remove an id if present; returns true if it was a member.
  bool remove(NodeId id);

  [[nodiscard]] bool contains(NodeId id) const;

  /// All members, smaller side then larger side, each closest-first.
  [[nodiscard]] std::vector<NodeId> members() const;

  /// Members sorted by ring distance from the owner, closest first.
  [[nodiscard]] std::vector<NodeId> closest_members(std::size_t k) const;

  /// Members alternating sides (closest smaller, closest larger, second
  /// smaller, ...), starting with the overall closest. Kosha places its K
  /// replicas on the first K of these: with K >= 2 both immediate ring
  /// neighbors hold a copy, so whichever node inherits a failed primary's
  /// key space already stores the data (paper §4.4).
  [[nodiscard]] std::vector<NodeId> alternating_members(std::size_t k) const;

  /// True when `key` falls inside the id range spanned by the leaf set
  /// (routing can finish here). An underfull leaf set — the node knows the
  /// whole network — covers everything.
  [[nodiscard]] bool covers(Key key) const;

  /// Numerically closest node to `key` among the owner and all members.
  [[nodiscard]] NodeId closest_to(Key key) const;

  /// Farthest member on the smaller/larger side, if any.
  [[nodiscard]] std::vector<NodeId> side(bool larger) const;

  [[nodiscard]] std::size_t size() const { return smaller_.size() + larger_.size(); }
  [[nodiscard]] bool underfull() const {
    return smaller_.size() < half_ || larger_.size() < half_;
  }

 private:
  // Offsets: smaller side keyed by (owner - id), larger by (id - owner);
  // both sorted ascending (closest neighbor first).
  NodeId owner_;
  unsigned half_;
  std::vector<NodeId> smaller_;
  std::vector<NodeId> larger_;
};

}  // namespace kosha::pastry

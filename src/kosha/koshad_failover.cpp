// koshad — transparent fault handling (paper §4.2, §4.4).
//
// The failover half of the daemon: the bounded re-resolve-and-retry ladder
// every handler runs through (via the with_handle shim in koshad.hpp), the
// round-robin replica read path, and the degraded read that serves from a
// replica copy while the primary is unreachable. In the event-driven
// execution model the degraded read probes every replica concurrently and
// keeps the earliest success; the legacy serial model scans them one at a
// time. Request handlers live in koshad.cpp; path resolution in
// koshad_resolve.cpp.

#include "kosha/koshad.hpp"

#include <algorithm>

#include "common/event_loop.hpp"
#include "common/metrics.hpp"
#include "common/path.hpp"
#include "common/tracing.hpp"

namespace kosha {

nfs::NfsStat Koshad::failover_ladder(
    VirtualHandle vh, const std::function<nfs::NfsStat(const Resolved&)>& attempt) {
  const VhEntry* entry = vht_.find(vh);
  if (entry == nullptr) return nfs::NfsStat::kStale;
  const std::string path = entry->path;  // copy: the table may rehash below
  const Resolved cached{entry->real.server, entry->real, entry->stored_path, entry->type};

  // kosha-lint: edge(Koshad::with_handle): attempt is the type-erased retry
  // thunk with_handle builds; its calls are attributed to with_handle.
  nfs::NfsStat status = attempt(cached);
  if (status == nfs::NfsStat::kOk || !is_error_retryable(status)) {
    if (failover_depth_hist_ != nullptr) failover_depth_hist_->record(0.0);
    return status;
  }

  // Transparent fault handling (paper §4.4), widened into a bounded
  // ladder: each round drops the mapping, re-resolves the full path from
  // scratch (reaching a promoted replica), rebinds, and retries the
  // operation. One round reproduces the paper's retry-once behaviour;
  // additional rounds survive a promotion racing a brownout, since every
  // re-resolve routes through the overlay's *current* owner.
  const unsigned rounds = std::max(1u, runtime_->config.failover_rounds);
  unsigned depth = 0;
  for (unsigned round = 0; round < rounds; ++round) {
    // Deadline propagation reaches the ladder too: once the operation's
    // budget (stamped at handler entry) has passed, the caller has given
    // up — burning more rounds on re-resolves and retries is dead work.
    // The op keeps its maybe-executed verdict: an earlier attempt may
    // have applied, so surface the retryable status we already hold.
    if (runtime_->config.overload.enabled && client_.op_deadline().ns > 0 &&
        runtime_->clock->now() > client_.op_deadline()) {
      ++stats_.ladder_deadline_aborts;
      ++stats_.failed_failovers;
      if (failover_depth_hist_ != nullptr) failover_depth_hist_->record(static_cast<double>(depth));
      return status;
    }
    ++stats_.failovers;
    depth = round + 1;
    SpanScope span(tracer(), "koshad.failover", host_);
    if (span.active()) span.tag("round", std::to_string(depth));
    const auto fresh = resolve_path(path, /*fresh=*/true);
    if (!fresh.ok()) {
      if (is_error_retryable(fresh.error()) && round + 1 < rounds) {
        span.status(nfs::to_string(fresh.error()));
        continue;
      }
      ++stats_.failed_failovers;
      span.status(nfs::to_string(fresh.error()));
      if (failover_depth_hist_ != nullptr) {
        failover_depth_hist_->record(static_cast<double>(depth));
      }
      return fresh.error();
    }
    vht_.rebind(vh, fresh->stored_path, fresh->handle);
    status = attempt(*fresh);
    if (status == nfs::NfsStat::kOk || !is_error_retryable(status)) {
      if (status != nfs::NfsStat::kOk) span.status(nfs::to_string(status));
      if (failover_depth_hist_ != nullptr) {
        failover_depth_hist_->record(static_cast<double>(depth));
      }
      return status;
    }
    span.status(nfs::to_string(status));
  }
  ++stats_.failed_failovers;
  if (failover_depth_hist_ != nullptr) failover_depth_hist_->record(static_cast<double>(depth));
  return status;
}

std::optional<nfs::NfsResult<nfs::ReadReply>> Koshad::degraded_replica_read(
    const Resolved& resolved, std::uint64_t offset, std::uint32_t count) {
  ReplicaManager* rm = manager_of(resolved.host);
  if (rm == nullptr) return std::nullopt;
  const std::string hidden = ReplicaManager::hidden_root(rm->id()) + resolved.stored_path;
  SimClock& clock = *runtime_->clock;
  // Event-driven runs probe every replica concurrently: each probe departs
  // at the same instant and the earliest success wins, so the degraded
  // read costs one probe's latency instead of a sequential scan's. The
  // serial model (no loop, or clock paused) keeps the legacy early-return
  // scan — there a probe cannot overlap anything.
  const bool concurrent = runtime_->loop != nullptr && !clock.paused();
  const SimDuration t0 = clock.now();
  std::optional<nfs::NfsResult<nfs::ReadReply>> best;
  SimDuration best_finish{};
  SimDuration slowest = t0;
  for (const pastry::NodeId target : rm->targets()) {
    if (!runtime_->overlay->is_live(target)) continue;
    const net::HostId host = runtime_->overlay->host_of(target);
    if (concurrent) clock.set_now(t0);
    const auto looked = remote_lookup_path(host, hidden);
    if (clock.now() > slowest) slowest = clock.now();
    if (!looked.ok()) continue;  // replica lagging or also unreachable
    note_forward(host);
    auto reply = client_.read(looked->handle, offset, count);
    if (clock.now() > slowest) slowest = clock.now();
    if (!reply.ok()) continue;
    if (!concurrent) {
      ++stats_.degraded_reads;
      return reply;
    }
    const SimDuration finish = clock.now();
    if (!best.has_value() || finish < best_finish) {  // strict <: ties keep the
      best = std::move(reply);                        // first-probed replica
      best_finish = finish;
    }
  }
  if (!concurrent) return std::nullopt;
  if (best.has_value()) {
    clock.set_now(best_finish);
    ++stats_.degraded_reads;
    return best;
  }
  // Every probe failed: the read waited out the slowest of them.
  clock.set_now(slowest);
  return std::nullopt;
}

std::optional<nfs::NfsResult<nfs::ReadReply>> Koshad::try_replica_read(
    const Resolved& resolved, std::uint64_t offset, std::uint32_t count) {
  ReplicaManager* rm = manager_of(resolved.host);
  if (rm == nullptr || rm->targets().empty()) return std::nullopt;
  const auto& targets = rm->targets();
  // Round-robin over {replica_0, ..., replica_{K-1}, primary}.
  const std::size_t pick = replica_read_cursor_++ % (targets.size() + 1);
  if (pick == targets.size()) return std::nullopt;  // the primary's turn
  const pastry::NodeId target = targets[pick];
  if (!runtime_->overlay->is_live(target)) return std::nullopt;
  const net::HostId host = runtime_->overlay->host_of(target);

  const std::string hidden =
      ReplicaManager::hidden_root(rm->id()) + resolved.stored_path;
  const std::string cache_key = std::to_string(host) + ":" + hidden;
  nfs::FileHandle handle;
  if (const auto it = replica_handle_cache_.find(cache_key);
      it != replica_handle_cache_.end()) {
    handle = it->second;
  } else {
    const auto looked = remote_lookup_path(host, hidden);
    if (!looked.ok()) return std::nullopt;  // replica lagging: use the primary
    handle = looked->handle;
    replica_handle_cache_[cache_key] = handle;
  }

  note_forward(host);
  auto reply = client_.read(handle, offset, count);
  if (!reply.ok()) {
    replica_handle_cache_.erase(cache_key);
    return std::nullopt;  // fall back to the primary copy
  }
  ++stats_.replica_reads;
  return reply;
}

}  // namespace kosha

// Attribute-preservation tests (paper §4.1.6: "files in Kosha maintain
// their permissions"): modes and ownership survive replication, failover,
// and key-space migration.

#include <gtest/gtest.h>

#include "kosha/cluster.hpp"
#include "kosha/mount.hpp"

namespace kosha {
namespace {

ClusterConfig base_config(std::uint64_t seed) {
  ClusterConfig config;
  config.nodes = 8;
  config.kosha.distribution_level = 1;
  config.kosha.replicas = 2;
  config.seed = seed;
  return config;
}

TEST(Attributes, ModeAndUidSetAtCreation) {
  KoshaCluster cluster(base_config(41));
  auto& daemon = cluster.daemon(0);
  const auto root = daemon.root();
  const auto dir = daemon.mkdir(*root, "home", 0750, 1001);
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir->attr.mode, 0750u);
  EXPECT_EQ(dir->attr.uid, 1001u);
  const auto file = daemon.create(dir->handle, "private", 0600, 1001);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->attr.mode, 0600u);
  EXPECT_EQ(file->attr.uid, 1001u);
}

TEST(Attributes, SetModeVisibleFromOtherClients) {
  KoshaCluster cluster(base_config(42));
  auto& daemon = cluster.daemon(0);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.write_file("/f", "x").ok());
  const auto vh = mount.resolve("/f");
  ASSERT_TRUE(daemon.set_mode(*vh, 0400).ok());

  KoshaMount other(&cluster.daemon(3));
  EXPECT_EQ(other.stat("/f")->mode, 0400u);
}

TEST(Attributes, ModeSurvivesFailover) {
  KoshaCluster cluster(base_config(43));
  auto& daemon = cluster.daemon(0);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/secure").ok());
  ASSERT_TRUE(mount.write_file("/secure/key", "secret").ok());
  const auto vh = mount.resolve("/secure/key");
  ASSERT_TRUE(daemon.set_mode(*vh, 0600).ok());

  const net::HostId primary = daemon.handle_table().find(*vh)->real.server;
  if (primary == 0) return;
  cluster.fail_node(primary);

  const auto attr = mount.stat("/secure/key");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->mode, 0600u);  // the replica carried the chmod
  EXPECT_EQ(mount.read_file("/secure/key").value(), "secret");
}

TEST(Attributes, ModeSurvivesMigration) {
  ClusterConfig config = base_config(44);
  config.nodes = 3;
  KoshaCluster cluster(config);
  auto& daemon = cluster.daemon(0);
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/mig").ok());
  ASSERT_TRUE(mount.write_file("/mig/f", "x").ok());
  const auto vh = mount.resolve("/mig/f");
  ASSERT_TRUE(daemon.set_mode(*vh, 0640).ok());

  for (int i = 0; i < 8; ++i) (void)cluster.add_node();
  KoshaMount fresh(&cluster.daemon(cluster.live_hosts().back()));
  const auto attr = fresh.stat("/mig/f");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->mode, 0640u);
}

TEST(Attributes, SizeAndTypeReportedThroughVirtualHandles) {
  KoshaCluster cluster(base_config(45));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.mkdir_p("/t").ok());
  ASSERT_TRUE(mount.write_file("/t/f", std::string(12345, 'q')).ok());
  const auto file_attr = mount.stat("/t/f");
  EXPECT_EQ(file_attr->type, fs::FileType::kFile);
  EXPECT_EQ(file_attr->size, 12345u);
  const auto dir_attr = mount.stat("/t");
  EXPECT_EQ(dir_attr->type, fs::FileType::kDirectory);
}

TEST(Attributes, MtimeAdvancesOnWrite) {
  KoshaCluster cluster(base_config(46));
  KoshaMount mount(&cluster.daemon(0));
  ASSERT_TRUE(mount.write_file("/m", "v1").ok());
  const auto before = mount.stat("/m")->mtime;
  ASSERT_TRUE(mount.write_file("/m", "v2").ok());
  EXPECT_GT(mount.stat("/m")->mtime, before);
}

}  // namespace
}  // namespace kosha

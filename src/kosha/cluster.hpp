#pragma once

// KoshaCluster — the top-level public API of the reproduction.
//
// Owns the simulated infrastructure (clock, network, Pastry overlay, NFS
// servers) and one Kosha node per host: an NFS server exporting the host's
// /kosha_store partition, a replica manager, and a koshad loopback daemon.
// Drives node lifecycle: join (with key-space migration), crash failure
// (with replica promotion), and revival (with purge + fresh node id, paper
// §4.3).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/event_loop.hpp"
#include "common/metrics.hpp"
#include "common/profile.hpp"
#include "common/rng.hpp"
#include "common/tracing.hpp"
#include "kosha/koshad.hpp"
#include "kosha/repair.hpp"
#include "kosha/replication.hpp"
#include "kosha/runtime.hpp"
#include "nfs/nfs_server.hpp"
#include "pastry/failure_detector.hpp"

namespace kosha {

/// Observability switches. All default off: the Table 1/2 numbers must be
/// byte-identical with the instrumentation compiled in but disabled, so
/// every seam holds a nullable pointer that these flags populate.
struct ObservabilityConfig {
  bool metrics = false;
  bool tracing = false;
  /// Simulator self-profiling: per-event-category wall-clock cost, host
  /// occupancy, events/sec. Wall-derived figures vary run-to-run (the one
  /// sanctioned non-determinism, confined to kosha_prof outputs); virtual-
  /// time figures stay deterministic. Off keeps runs numerically identical.
  bool profiling = false;
};

/// Autonomous failure handling (DESIGN §8). Off by default: fail_node then
/// tells the survivors directly (the oracle) and repair runs synchronously
/// — the model every pre-existing test assumes. Enabled, fail_node only
/// stops the host: each node runs a heartbeat failure detector and an
/// anti-entropy repair daemon on the event loop, and the survivors must
/// detect the death, repair the ring, and converge replication themselves.
/// Requires the event-driven execution model.
struct SelfHealConfig {
  bool enabled = false;
  pastry::FailureDetectorConfig detector;
  RepairDaemonConfig repair;
};

struct ClusterConfig {
  /// Nodes created by the constructor (more can be added later).
  std::size_t nodes = 8;
  /// Per-node contributed capacity; `capacities` overrides per node.
  std::uint64_t node_capacity_bytes = 35ull << 30;
  std::vector<std::uint64_t> capacities;
  std::uint64_t seed = 42;
  /// Execution model: true (default) drives every RPC through the
  /// discrete-event scheduler — concurrent in-flight RPCs, real per-node
  /// service queues, overlapped failover probes. false keeps the legacy
  /// serial call-and-advance model (one RPC at a time, no queueing); kept
  /// for A/B comparison in bench/concurrency_bench. For single-in-flight
  /// schedules the two models produce identical numbers.
  bool event_driven = true;
  KoshaConfig kosha;
  net::NetworkConfig network;
  nfs::NfsCostModel costs;
  ObservabilityConfig observability;
  SelfHealConfig self_heal;
};

class KoshaCluster {
 public:
  explicit KoshaCluster(ClusterConfig config);
  ~KoshaCluster();

  KoshaCluster(const KoshaCluster&) = delete;
  KoshaCluster& operator=(const KoshaCluster&) = delete;

  /// Add a node contributing `capacity_bytes` (0 = config default).
  /// Triggers the join protocol and any key-space migration.
  net::HostId add_node(std::uint64_t capacity_bytes = 0);

  /// Crash a node. Without self-healing its leaf-set neighbors repair
  /// immediately (oracle-driven) and replicas are promoted before this
  /// returns. With self-healing this only stops the host: survivors
  /// discover the death via their failure detectors as virtual time runs
  /// (drive the loop, e.g. loop().run_until_time), repair the ring, and
  /// the repair daemons converge replication. Clients fail over
  /// transparently on their next access either way.
  void fail_node(net::HostId host);

  /// Gracefully retire a node (paper §4.3: leaving is distinct from
  /// failing): its primaries are evacuated to their successor owners
  /// before it departs, so nothing is lost even without replicas.
  void retire_node(net::HostId host);

  /// Bring a crashed node back: Kosha purges all its data and it rejoins
  /// the overlay under a fresh node id (paper §4.3.2).
  void revive_node(net::HostId host);

  [[nodiscard]] bool is_up(net::HostId host) const { return network_.is_up(host); }
  [[nodiscard]] std::vector<net::HostId> live_hosts() const;

  [[nodiscard]] Koshad& daemon(net::HostId host);
  [[nodiscard]] nfs::NfsServer& server(net::HostId host);
  [[nodiscard]] ReplicaManager& replicas(net::HostId host);
  [[nodiscard]] pastry::NodeId node_id(net::HostId host) const;
  /// The node's failure detector / repair daemon (self-healing mode only;
  /// null otherwise or while the node is down).
  [[nodiscard]] pastry::FailureDetector* detector(net::HostId host);
  [[nodiscard]] RepairDaemon* repair_daemon(net::HostId host);

  /// One confirmed-detection record per real failure (self-healing mode):
  /// filled when the first survivor declares the dead node and repairs.
  struct DetectionEvent {
    net::HostId host = net::kInvalidHost;
    SimDuration failed_at{};
    SimDuration detected_at{};
  };
  [[nodiscard]] const std::vector<DetectionEvent>& detections() const { return detections_; }
  /// Real failures whose death no survivor has confirmed yet.
  [[nodiscard]] std::size_t undetected_failures() const { return death_times_.size(); }

  [[nodiscard]] SimClock& clock() { return clock_; }
  /// The cluster's discrete-event scheduler (attached to the network only
  /// when config().event_driven).
  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] net::SimNetwork& network() { return network_; }
  [[nodiscard]] pastry::PastryOverlay& overlay() { return overlay_; }
  [[nodiscard]] Runtime& runtime() { return runtime_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  /// The cluster's instruments and trace collector. Both exist regardless
  /// of the observability flags; the flags only decide whether hot paths
  /// feed them (derived gauges are filled at export either way).
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  /// Simulator self-profiler (fed only when observability.profiling).
  [[nodiscard]] SimProfiler& profiler() { return profiler_; }

  /// Snapshot the registry (refreshing gauges derived from NetStats,
  /// server and daemon counters, and per-node storage occupancy) as the
  /// deterministic JSON / CSV formats kosha_stat consumes.
  [[nodiscard]] std::string export_metrics_json();
  [[nodiscard]] std::string export_metrics_csv();
  /// Finished spans as JSONL (empty when tracing was off).
  [[nodiscard]] std::string export_trace_jsonl() const { return tracer_.to_jsonl(); }

 private:
  struct Node {
    net::HostId host = net::kInvalidHost;
    pastry::NodeId id;
    /// Boot verifier of the current daemon incarnation (see
    /// nfs::RpcContext::boot). A revival allocates a fresh value so the
    /// reborn client's restarted xids cannot match servers' DRC entries
    /// from the previous life.
    std::uint64_t boot = 0;
    std::unique_ptr<nfs::NfsServer> server;
    std::unique_ptr<ReplicaManager> replicas;
    std::unique_ptr<Koshad> daemon;
    /// Self-healing mode only: the node's heartbeat detector and repair
    /// daemon. Stopped (not destroyed — their scheduled events resolve
    /// through registries, so stale objects are inert) on failure and
    /// replaced on revival.
    std::unique_ptr<pastry::FailureDetector> detector;
    std::unique_ptr<RepairDaemon> repair;
    bool alive = true;
  };

  Node& node_ref(net::HostId host);
  const Node& node_ref(net::HostId host) const;
  void join_overlay(Node& node);
  /// Self-healing mode: create and start the node's detector and repair
  /// daemon (fresh objects per incarnation).
  void start_self_heal(Node& node);
  /// Failure listener: `observer` confirmed `dead`; record first-detection
  /// latency for the real failure, if that is what it was.
  void on_failure_reported(pastry::NodeId observer, pastry::NodeId dead);
  /// Recompute the gauges derived from externally-held statistics.
  void refresh_derived_metrics();

  ClusterConfig config_;
  SimClock clock_;
  EventLoop loop_;
  Rng rng_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  SimProfiler profiler_;
  net::SimNetwork network_;
  pastry::PastryOverlay overlay_;
  nfs::ServerDirectory servers_;
  Runtime runtime_;
  std::vector<std::unique_ptr<Node>> nodes_;  // indexed by host id
  /// Monotonic boot-verifier source: deterministic (no wall clock) so a
  /// seeded run replays identically across crash/revive cycles.
  std::uint64_t next_boot_ = 1;
  /// Self-healing bookkeeping: when each still-undetected real failure
  /// happened (keyed by the dead incarnation's node id), and the detection
  /// record once the first survivor confirms it.
  std::map<Uint128, DetectionEvent> death_times_;
  std::vector<DetectionEvent> detections_;
};

}  // namespace kosha

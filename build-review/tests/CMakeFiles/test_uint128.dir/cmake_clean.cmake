file(REMOVE_RECURSE
  "CMakeFiles/test_uint128.dir/test_uint128.cpp.o"
  "CMakeFiles/test_uint128.dir/test_uint128.cpp.o.d"
  "test_uint128"
  "test_uint128.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uint128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_local_fs_model.dir/test_local_fs_model.cpp.o"
  "CMakeFiles/test_local_fs_model.dir/test_local_fs_model.cpp.o.d"
  "test_local_fs_model"
  "test_local_fs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_fs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

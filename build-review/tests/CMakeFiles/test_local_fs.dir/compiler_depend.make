# Empty compiler generated dependencies file for test_local_fs.
# This may be replaced when dependencies are built.

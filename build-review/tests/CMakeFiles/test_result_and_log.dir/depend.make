# Empty dependencies file for test_result_and_log.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sim_vs_stack.dir/test_sim_vs_stack.cpp.o"
  "CMakeFiles/test_sim_vs_stack.dir/test_sim_vs_stack.cpp.o.d"
  "test_sim_vs_stack"
  "test_sim_vs_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_vs_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

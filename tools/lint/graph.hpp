#pragma once

// kosha_lint phase 1b — conservative call graph over the Index.
//
// Nodes are functions grouped by qualified-name/arity (a declaration in a
// header and its definition in a .cpp collapse into one node; same-named
// same-arity functions in different namespaces collapse too — conservative
// over-approximation, never under-approximation). Edges come in four
// flavors, recorded so the DOT dump and the diagnostics can say how sure
// the analyzer is:
//
//   kDirect      free-function or explicitly qualified call (`Class::f()`);
//   kResolved    method call whose receiver's class the index knows
//                (`client_.create(...)` with `NfsClient client_`);
//   kOverApprox  method call with an unknown receiver, linked to every
//                indexed method of the same name and compatible arity —
//                the virtual/type-erased over-approximation;
//   kAnnotated   a lint comment asserting `edge(Target): reason` inside
//                the caller's body — the hand-asserted edge for truly
//                dynamic seams (std::function trampolines like
//                failover_ladder).
//
// Event roots: every callee resolved inside the argument list of an
// EventLoop::schedule_at/schedule_after call in src/ (those arguments are
// the event-loop callbacks), the loop's own dispatch (EventLoop::step) and
// the SimNetwork service/delivery surface. D4 and A1 run reachability from
// these roots.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/index.hpp"

namespace kosha::lint {

enum class EdgeKind { kDirect, kResolved, kOverApprox, kAnnotated };

/// Keywords and casts that look like `name(` but are never call sites.
[[nodiscard]] bool call_blocklisted(const std::string& name);

/// Argument count of the call whose '(' sits at `open` (close = one past
/// the matching ')').
[[nodiscard]] int count_call_args(const std::vector<Token>& t, std::size_t open,
                                  std::size_t close);

/// Resolve the call site whose callee identifier sits at `k` (the argument
/// list or template-argument list follows) to candidate function ids, using
/// the qualifier / receiver tokens before `k` and the caller's own class.
/// Shared by the graph builder and the R1 must-check rule so both agree on
/// what a call can reach.
EdgeKind resolve_call(const Index& idx, const std::vector<Token>& t, std::size_t k,
                      int args, const Function& caller, std::vector<int>* out_funcs);

class CallGraph {
 public:
  struct Node {
    std::string key;           // "qual/arity"
    std::string display;       // "Class::name" or "name"
    std::vector<int> funcs;    // function ids sharing this node
  };
  struct Edge {
    int from = -1;
    int to = -1;
    int file = -1;  // call-site file
    int line = 0;   // call-site line
    EdgeKind kind = EdgeKind::kDirect;
  };
  /// An edge() annotation the builder could not honor (missing reason or
  /// unresolvable target); surfaced as an E1 diagnostic by the rule layer.
  struct BadEdge {
    int file = -1;
    int line = 0;
    std::string target;
    bool missing_reason = false;
  };

  void build(const Index& idx);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<BadEdge>& bad_edges() const { return bad_edges_; }
  [[nodiscard]] const std::set<int>& event_roots() const { return event_roots_; }
  [[nodiscard]] const std::vector<int>& out_edges(int node) const { return out_[node]; }
  [[nodiscard]] int node_of_function(int func) const { return node_of_func_[func]; }
  /// Node id for "Class::name"/"name" with any arity; -1 when absent.
  [[nodiscard]] int find_node(const std::string& display) const;

  /// BFS from the event roots. Returns, per node, the edge index that first
  /// reached it (-1 unreached, -2 a root). `stop` nodes are reached (and
  /// reported reachable) but not expanded — A1 uses this for functions
  /// annotated allow(hot-alloc), whose subtree is a sanctioned allocation
  /// region.
  [[nodiscard]] std::vector<int> reach_from_roots(const std::set<int>& stop) const;

  /// Human-readable chain "root -> ... -> node" following parent edges.
  [[nodiscard]] std::string path_to(const std::vector<int>& parent, int node) const;

  /// Deterministic GraphViz dump. `hot` and `sink` nodes are highlighted
  /// (filled red / orange); roots get a bold border.
  [[nodiscard]] std::string to_dot(const std::set<int>& hot, const std::set<int>& sink) const;

 private:
  int node_for(const Index& idx, int func);
  void add_edge(int from_node, int to_node, int file, int line, EdgeKind kind);

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<BadEdge> bad_edges_;
  std::vector<std::vector<int>> out_;
  std::vector<int> node_of_func_;
  std::map<std::string, int> node_ids_;
  std::set<int> event_roots_;
  std::set<std::pair<int, int>> edge_set_;  // dedupe (from, to)
};

}  // namespace kosha::lint
